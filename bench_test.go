package nestwrf_test

// One benchmark per table and figure of the paper's evaluation: each
// bench re-runs the corresponding experiment of internal/experiments
// (the same code `go run ./cmd/experiments -run <id>` executes) and
// reports the headline simulated metric via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the entire evaluation.

import (
	"runtime"
	"strconv"
	"testing"

	"nestwrf"
	"nestwrf/internal/driver"
	"nestwrf/internal/experiments"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
)

// benchExperiment runs a registered experiment b.N times.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig2Scalability(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkPredictionModel(b *testing.B)     { benchExperiment(b, "predict") }
func BenchmarkFig3Partition(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4SplitDim(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig56Mappings(b *testing.B)       { benchExperiment(b, "fig56") }
func BenchmarkPerIteration85(b *testing.B)      { benchExperiment(b, "periter") }
func BenchmarkFig8IOImprovement(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTable1Wait(b *testing.B)          { benchExperiment(b, "tab1") }
func BenchmarkTable2Fig9Siblings(b *testing.B)  { benchExperiment(b, "tab2fig9") }
func BenchmarkFig10LargeSiblings(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkVaryingSiblingCount(b *testing.B) { benchExperiment(b, "nsib") }
func BenchmarkTable3NestSizes(b *testing.B)     { benchExperiment(b, "tab3") }
func BenchmarkTable4Fig11BGL(b *testing.B)      { benchExperiment(b, "tab4fig11") }
func BenchmarkTable5Fig12BGP(b *testing.B)      { benchExperiment(b, "tab5fig12") }
func BenchmarkFig13IO(b *testing.B)             { benchExperiment(b, "fig1314") }
func BenchmarkAllocEfficiency(b *testing.B)     { benchExperiment(b, "alloceff") }
func BenchmarkFig15Speedup(b *testing.B)        { benchExperiment(b, "fig15") }

// Ablations of the design choices DESIGN.md calls out, plus the
// future-work 5D-torus mapping.
func BenchmarkAblationContention(b *testing.B) { benchExperiment(b, "abl-contention") }
func BenchmarkAblationShape(b *testing.B)      { benchExperiment(b, "abl-shape") }
func BenchmarkAblationExchanges(b *testing.B)  { benchExperiment(b, "abl-exchanges") }
func BenchmarkBGQ5DFold(b *testing.B)          { benchExperiment(b, "bgq") }
func BenchmarkCampaign(b *testing.B)           { benchExperiment(b, "campaign") }
func BenchmarkSEAsia(b *testing.B)             { benchExperiment(b, "seasia") }
func BenchmarkSteering(b *testing.B)           { benchExperiment(b, "steer") }

// benchAll regenerates the entire evaluation with the given fan-out
// (experiment-level and intra-experiment). Comparing the two
// benchmarks below shows the harness speedup on multi-core hardware;
// the rendered output is byte-identical either way.
func benchAll(b *testing.B, parallel int) {
	prev := experiments.Parallelism()
	experiments.SetParallelism(parallel)
	defer experiments.SetParallelism(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range experiments.RunAll(parallel) {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.Experiment.ID, o.Err)
			}
			if len(o.Table.Rows) == 0 {
				b.Fatalf("%s produced no rows", o.Experiment.ID)
			}
		}
	}
}

func BenchmarkAllExperimentsSequential(b *testing.B) { benchAll(b, 1) }

func BenchmarkAllExperimentsParallel(b *testing.B) {
	benchAll(b, runtime.GOMAXPROCS(0))
}

// Component micro-benchmarks: the costs of the paper's pipeline pieces.

func benchConfig() *nestwrf.Domain {
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("sibling1", 394, 418, 3, 5, 5)
	cfg.AddChild("sibling2", 232, 202, 3, 150, 10)
	cfg.AddChild("sibling3", 232, 256, 3, 10, 160)
	cfg.AddChild("sibling4", 313, 337, 3, 140, 150)
	return cfg
}

func BenchmarkTrainPredictor(b *testing.B) {
	m := nestwrf.BlueGeneL()
	for i := 0; i < b.N; i++ {
		if _, err := nestwrf.TrainPredictor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanPipeline(b *testing.B) {
	cfg := benchConfig()
	m := nestwrf.BlueGeneL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nestwrf.Plan(cfg, m, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// coldPlanJobs builds 32 distinct multi-sibling configurations (two
// typhoon nests, one carrying a finer inner nest) with jittered
// geometries, so every job is a distinct plan-cache key that must plan
// from scratch.
func coldPlanJobs() []driver.PlanJob {
	jobs := make([]driver.PlanJob, 32)
	for i := range jobs {
		cfg := nest.Root("pacific", 286, 307)
		t1 := cfg.AddChild("t1", 390-6*(i%8), 410+8*(i%4), 3, 5, 5)
		t1.AddChild("t1i", 150+10*(i%3), 140, 3, 20, 20)
		cfg.AddChild("t2", 310-10*(i%5), 330, 3, 140, 150)
		jobs[i] = driver.PlanJob{Config: cfg, Options: driver.Options{
			Machine:  nestwrf.BlueGeneL(),
			Ranks:    1024,
			Strategy: nestwrf.StrategyConcurrent,
			MapKind:  nestwrf.MapMultiLevel,
			Alloc:    nestwrf.AllocPredicted,
		}}
	}
	return jobs
}

// BenchmarkColdPlan measures the cold-planning path — a batch of 32
// distinct multi-sibling plans, as an ensemble generation or a churn
// of new regions of interest produces — under the retained sequential
// reference and the parallel builder. The model-layer phase cache is
// dropped every iteration so each batch genuinely replans; the
// machine's predictor is trained once up front (both modes share the
// singleflighted predictor cache, and training time is not what this
// benchmark tracks). The parallel/sequential ratio is the PR's
// headline: parallel must be at least 2x faster on multi-core hosts.
func BenchmarkColdPlan(b *testing.B) {
	jobs := coldPlanJobs()
	if _, err := driver.CachedPredictor(nestwrf.BlueGeneL()); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, reference bool, workers int) {
		driver.SetReference(reference)
		defer driver.SetReference(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model.ResetCache()
			plans, errs := driver.BuildPlans(jobs, workers)
			for j := range jobs {
				if errs[j] != nil {
					b.Fatal(errs[j])
				}
				if plans[j] == nil || plans[j].Cost.IterTime <= 0 {
					b.Fatalf("job %d: incomplete plan", j)
				}
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, true, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, false, runtime.GOMAXPROCS(0)) })
}

// BenchmarkSimulate measures one virtual-time iteration at several
// machine sizes; the reported metric is the simulated iteration time.
func BenchmarkSimulate(b *testing.B) {
	cfg := benchConfig()
	pred, err := nestwrf.TrainPredictor(nestwrf.BlueGeneP())
	if err != nil {
		b.Fatal(err)
	}
	for _, ranks := range []int{512, 1024, 2048, 4096, 8192} {
		b.Run(strconv.Itoa(ranks), func(b *testing.B) {
			opt := nestwrf.Options{
				Machine:   nestwrf.BlueGeneP(),
				Ranks:     ranks,
				Strategy:  nestwrf.StrategyConcurrent,
				MapKind:   nestwrf.MapMultiLevel,
				Alloc:     nestwrf.AllocPredicted,
				Predictor: pred,
			}
			var last nestwrf.Result
			for i := 0; i < b.N; i++ {
				res, err := nestwrf.Simulate(cfg, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.IterTime, "sim-s/iter")
		})
	}
}

// BenchmarkFunctional runs the real mini-WRF on the goroutine MPI
// runtime under both strategies.
func BenchmarkFunctional(b *testing.B) {
	cfg := nestwrf.NewDomain("parent", 64, 64)
	cfg.AddChild("nest1", 60, 48, 3, 2, 2)
	cfg.AddChild("nest2", 48, 36, 3, 30, 30)
	for _, s := range []struct {
		name     string
		strategy nestwrf.FunctionalStrategy
	}{
		{"sequential", nestwrf.FunctionalSequential},
		{"concurrent", nestwrf.FunctionalConcurrent},
	} {
		b.Run(s.name, func(b *testing.B) {
			var clock float64
			for i := 0; i < b.N; i++ {
				out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
					Ranks:     32,
					Steps:     2,
					Strategy:  s.strategy,
					PointCost: 1e-6,
					TM:        nestwrf.AlphaBeta{Alpha: 5e-5, Beta: 1e-9},
				})
				if err != nil {
					b.Fatal(err)
				}
				clock = out.MaxClock
			}
			b.ReportMetric(clock*1e3, "sim-ms")
		})
	}
}

// BenchmarkFunctionalRanks sweeps the functional mini-WRF from 32 up
// to the paper's full 8192-rank BG/P scale on the paper's Table 2
// multi-sibling domain (the only fixture whose domains decompose at
// every size). Every size executes the real message-passing run — the
// sweep exists to prove the sharded mpi runtime sustains the paper's
// largest configuration end to end, and to pin its real-time cost.
func BenchmarkFunctionalRanks(b *testing.B) {
	cfg := benchConfig()
	for _, ranks := range []int{32, 128, 512, 2048, 8192} {
		b.Run(strconv.Itoa(ranks), func(b *testing.B) {
			var clock float64
			for i := 0; i < b.N; i++ {
				out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
					Ranks:     ranks,
					Steps:     1,
					Strategy:  nestwrf.FunctionalConcurrent,
					PointCost: 1e-6,
					TM:        nestwrf.AlphaBeta{Alpha: 5e-5, Beta: 1e-9},
				})
				if err != nil {
					b.Fatal(err)
				}
				clock = out.MaxClock
			}
			b.ReportMetric(clock*1e3, "sim-ms")
		})
	}
}
