package nestwrf_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nestwrf"
)

func table2() *nestwrf.Domain {
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("sibling1", 394, 418, 3, 5, 5)
	cfg.AddChild("sibling2", 232, 202, 3, 150, 10)
	cfg.AddChild("sibling3", 232, 256, 3, 10, 160)
	cfg.AddChild("sibling4", 313, 337, 3, 140, 150)
	return cfg
}

func TestPlanPipeline(t *testing.T) {
	plan, err := nestwrf.Plan(table2(), nestwrf.BlueGeneL(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Px*plan.Py != 1024 {
		t.Errorf("grid %dx%d", plan.Px, plan.Py)
	}
	var sum float64
	for _, w := range plan.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum %v", sum)
	}
	if len(plan.Rects) != 4 {
		t.Fatalf("rects = %v", plan.Rects)
	}
	area := 0
	for _, r := range plan.Rects {
		area += r.Area()
	}
	if area != 1024 {
		t.Errorf("partition areas cover %d of 1024", area)
	}
	// All four mappings are feasible at this size.
	for _, name := range []string{"oblivious", "txyz", "partition", "multilevel"} {
		rep, ok := plan.MappingReports[name]
		if !ok {
			t.Errorf("missing mapping report %q", name)
			continue
		}
		if rep.OverallAvgHops <= 0 {
			t.Errorf("%s: overall hops %v", name, rep.OverallAvgHops)
		}
	}
	if plan.MappingReports["multilevel"].OverallAvgHops >=
		plan.MappingReports["oblivious"].OverallAvgHops {
		t.Error("multilevel mapping should reduce average hops")
	}
}

func TestPlanRejectsInvalidConfig(t *testing.T) {
	bad := nestwrf.NewDomain("bad", -3, 10)
	if _, err := nestwrf.Plan(bad, nestwrf.BlueGeneL(), 64); err == nil {
		t.Error("invalid domain should fail")
	}
}

func TestCompareHeadlineResult(t *testing.T) {
	cmp, err := nestwrf.Compare(table2(), nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   1024,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ImprovementPct < 10 || cmp.ImprovementPct > 50 {
		t.Errorf("improvement %.1f%% out of expected band", cmp.ImprovementPct)
	}
	if cmp.WaitImprovementPct <= 0 {
		t.Errorf("wait improvement %.1f%% should be positive", cmp.WaitImprovementPct)
	}
	if cmp.Concurrent.IterTime >= cmp.Default.IterTime {
		t.Error("concurrent should beat default")
	}
}

func TestSimulateDirect(t *testing.T) {
	res, err := nestwrf.Simulate(table2(), nestwrf.Options{
		Machine:  nestwrf.BlueGeneL(),
		Ranks:    1024,
		Strategy: nestwrf.StrategyConcurrent,
		MapKind:  nestwrf.MapPartition,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime <= 0 || len(res.Siblings) != 4 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunFunctionalSmoke(t *testing.T) {
	cfg := nestwrf.NewDomain("parent", 48, 48)
	cfg.AddChild("nest", 36, 36, 3, 4, 4)
	out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
		Ranks:    8,
		Steps:    2,
		Strategy: nestwrf.FunctionalConcurrent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Parent == nil || out.Nests[0] == nil {
		t.Fatal("missing functional states")
	}
	if out.MaxClock <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestRunCampaign(t *testing.T) {
	res, err := nestwrf.RunCampaign(nestwrf.TyphoonSeason(10), nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   1024,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.ImprovementPct() <= 0 {
		t.Errorf("campaign improvement %.1f%% should be positive", res.ImprovementPct())
	}
}

func TestForecastFacadeRoundTrip(t *testing.T) {
	cfg := nestwrf.NewDomain("parent", 32, 32)
	cfg.AddChild("nest", 24, 24, 3, 4, 4)
	out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
		Ranks:    4,
		Steps:    2,
		Strategy: nestwrf.FunctionalSequential,
		Params:   nestwrf.GeophysicalSolverParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nestwrf.EncodeForecast(&buf, "parent", 2, out.Parent); err != nil {
		t.Fatal(err)
	}
	domain, step, st, err := nestwrf.DecodeForecast(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if domain != "parent" || step != 2 || st.NX != 32 {
		t.Errorf("decoded %q step %d %dx%d", domain, step, st.NX, st.NY)
	}
	if d := st.MaxDiff(out.Parent); d != 0 {
		t.Errorf("round trip differs by %v", d)
	}
	if err := nestwrf.WriteForecastPGM(&buf, st, nestwrf.FieldHeight); err != nil {
		t.Fatal(err)
	}
	if art := nestwrf.ForecastASCII(st, nestwrf.FieldSpeed, 20); art == "" {
		t.Error("empty ASCII art")
	}
}

func TestRenderMappingFacade(t *testing.T) {
	for _, kind := range []nestwrf.MapKind{
		nestwrf.MapOblivious, nestwrf.MapTXYZ, nestwrf.MapMultiLevel,
	} {
		art, err := nestwrf.RenderMapping(kind, nestwrf.BlueGeneL(), 32, nil)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if !strings.Contains(art, "z=1") {
			t.Errorf("kind %v: render missing planes:\n%s", kind, art)
		}
	}
	rects := []nestwrf.Rect{{X: 0, Y: 0, W: 4, H: 4}, {X: 4, Y: 0, W: 4, H: 4}}
	if _, err := nestwrf.RenderMapping(nestwrf.MapPartition, nestwrf.BlueGeneL(), 32, rects); err != nil {
		t.Fatal(err)
	}
	if _, err := nestwrf.RenderMapping(nestwrf.MapOblivious, nestwrf.BlueGeneL(), 0, nil); err == nil {
		t.Error("zero ranks should fail")
	}
}

func TestTraceIterationFacade(t *testing.T) {
	res, err := nestwrf.Simulate(table2(), nestwrf.Options{
		Machine:  nestwrf.BlueGeneL(),
		Ranks:    1024,
		Strategy: nestwrf.StrategyConcurrent,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := nestwrf.TraceIteration(res, nestwrf.StrategyConcurrent)
	if len(log.Spans) != 5 {
		t.Errorf("spans = %d, want parent + 4 siblings", len(log.Spans))
	}
	if !strings.Contains(log.Render(60), "sibling1") {
		t.Error("render missing sibling")
	}
}

func TestTrainPredictorAccessible(t *testing.T) {
	p, err := nestwrf.TrainPredictor(nestwrf.BlueGeneP())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(1.0, 100000); got <= 0 {
		t.Errorf("prediction %v", got)
	}
}

// TestObservabilityFacade drives the new run-report, metrics and
// Chrome-trace surface through the public API only.
func TestObservabilityFacade(t *testing.T) {
	reg := nestwrf.NewMetricsRegistry()
	opt := nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   1024,
		MapKind: nestwrf.MapMultiLevel,
		Metrics: reg,
	}
	cmp, rep, err := nestwrf.CompareWithReport(table2(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Default == nil || rep.Concurrent == nil {
		t.Fatalf("comparison report missing runs: %+v", rep)
	}
	if rep.ImprovementPct != cmp.ImprovementPct {
		t.Errorf("report improvement %v != comparison %v", rep.ImprovementPct, cmp.ImprovementPct)
	}
	if len(rep.Concurrent.Siblings) != 4 {
		t.Errorf("siblings = %+v", rep.Concurrent.Siblings)
	}
	for _, s := range rep.Concurrent.Siblings {
		if s.PredictedShare <= 0 || s.PhaseSeconds <= 0 {
			t.Errorf("sibling %s missing prediction data: %+v", s.Name, s)
		}
	}

	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := nestwrf.DecodeComparisonReport(&buf); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	err = nestwrf.WriteChromeTrace(&buf,
		nestwrf.TraceProcess{Name: "sequential", Log: nestwrf.TraceIteration(cmp.Default, nestwrf.StrategySequential)},
		nestwrf.TraceProcess{Name: "concurrent", Log: nestwrf.TraceIteration(cmp.Concurrent, nestwrf.StrategyConcurrent)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) || !strings.Contains(buf.String(), "sibling1") {
		t.Errorf("chrome trace missing content: %s", buf.String()[:200])
	}

	if text := reg.Snapshot().Text(); !strings.Contains(text, "driver_runs_total") {
		t.Errorf("metrics registry empty:\n%s", text)
	}
}

func TestParseIOModeFacade(t *testing.T) {
	m, err := nestwrf.ParseIOMode("split")
	if err != nil || m != nestwrf.IOSplit {
		t.Errorf("ParseIOMode(split) = %v, %v", m, err)
	}
	if _, err := nestwrf.ParseIOMode("hdf5"); err == nil {
		t.Error("unknown mode accepted")
	}
}
