// Pacific typhoon season: the paper's Section 4.1.2 scenario. Several
// depressions form over the western Pacific during July 2010; each
// triggers a high-resolution nest. This example sweeps a season of
// randomly generated multi-depression configurations, evaluates the
// default and concurrent strategies on a BG/P partition, and reports
// the distribution of improvements — the experiment behind the paper's
// headline "up to 33%" number.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nestwrf"
)

const (
	ranks   = 2048
	season  = 25 // tracked multi-depression episodes
	nestRes = 3  // 24 km parent, 8 km nests
)

func main() {
	machine := nestwrf.BlueGeneP()
	rng := rand.New(rand.NewSource(2010)) // July 2010 typhoon season

	fmt.Printf("sweeping %d multi-depression episodes on %s (%d cores)\n\n",
		season, machine.Name, ranks)
	fmt.Printf("%-8s %-9s %-12s %-12s %-12s %s\n",
		"episode", "nests", "default s", "concurrent s", "improvement", "slowest nest")

	var sum, max float64
	var worst string
	for ep := 0; ep < season; ep++ {
		cfg := randomEpisode(rng, ep)
		cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
			Machine: machine,
			Ranks:   ranks,
			MapKind: nestwrf.MapMultiLevel,
			Alloc:   nestwrf.AllocPredicted,
		})
		if err != nil {
			log.Fatal(err)
		}
		slowest := ""
		var sl float64
		for _, s := range cmp.Concurrent.Siblings {
			if s.PhaseTime > sl {
				sl, slowest = s.PhaseTime, s.Name
			}
		}
		fmt.Printf("%-8d %-9d %-12.3f %-12.3f %-12s %s\n",
			ep+1, len(cfg.Children), cmp.Default.IterTime, cmp.Concurrent.IterTime,
			fmt.Sprintf("%.1f%%", cmp.ImprovementPct), slowest)
		sum += cmp.ImprovementPct
		if cmp.ImprovementPct > max {
			max = cmp.ImprovementPct
			worst = fmt.Sprintf("episode %d", ep+1)
		}
	}
	fmt.Printf("\naverage improvement %.1f%%, maximum %.1f%% (%s)\n",
		sum/season, max, worst)
	fmt.Println("paper (85 configs, 1024 BG/L cores): average 21.14%, maximum 33.04%")
}

// randomEpisode builds one multi-depression configuration following the
// paper's workload distribution: 2-4 simultaneous depressions, nest
// sizes between 94x124 and 415x445, aspect ratios 0.5-1.5.
func randomEpisode(rng *rand.Rand, ep int) *nestwrf.Domain {
	cfg := nestwrf.NewDomain(fmt.Sprintf("episode%d", ep+1), 286, 307)
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		points := 11656 + rng.Float64()*(184675-11656)
		aspect := 0.5 + rng.Float64()
		nx := intSqrt(points * aspect)
		ny := intSqrt(points / aspect)
		fw, fh := (nx+nestRes-1)/nestRes, (ny+nestRes-1)/nestRes
		ox := rng.Intn(286 - fw + 1)
		oy := rng.Intn(307 - fh + 1)
		cfg.AddChild(fmt.Sprintf("depression%d", i+1), nx, ny, nestRes, ox, oy)
	}
	return cfg
}

func intSqrt(v float64) int {
	n := 2
	for n*n < int(v) {
		n++
	}
	return n
}
