// South-East Asia operational forecasting: the paper's Section 4.1.1
// scenario. A 4.5 km parent covers Malaysia, Singapore, Thailand,
// Cambodia, Vietnam, Brunei and the Philippines, with 1.5 km nests over
// the major business centres — including two-level nesting — and
// high-frequency forecast output for simultaneous visualization. The
// example shows how the concurrent strategy also rescues parallel-I/O
// scalability (the paper's Figs. 13-14).
package main

import (
	"fmt"
	"log"

	"nestwrf"
)

func main() {
	machine := nestwrf.BlueGeneP()

	// Innermost nests over the business centres (Fig. 7 of the paper).
	cfg := nestwrf.NewDomain("sea", 340, 360)
	cfg.AddChild("singapore", 220, 180, 3, 5, 10)
	cfg.AddChild("bangkok", 260, 220, 3, 100, 100)
	cfg.AddChild("manila", 180, 240, 3, 210, 200)
	cfg.AddChild("hanoi", 200, 200, 3, 20, 250)

	fmt.Println("high-frequency output: forecast files every 5 iterations (PnetCDF)")
	fmt.Printf("%-7s %-26s %-26s %s\n", "cores",
		"sequential (integ+I/O)", "concurrent (integ+I/O)", "total gain")
	for _, ranks := range []int{512, 1024, 2048, 4096, 8192} {
		cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
			Machine:          machine,
			Ranks:            ranks,
			MapKind:          nestwrf.MapMultiLevel,
			Alloc:            nestwrf.AllocPredicted,
			IOMode:           nestwrf.IOCollective,
			OutputEverySteps: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %6.3f + %-6.3f = %-9.3f %6.3f + %-6.3f = %-9.3f %.1f%%\n",
			ranks,
			cmp.Default.IterTime, cmp.Default.IOTime, cmp.Default.Total(),
			cmp.Concurrent.IterTime, cmp.Concurrent.IOTime, cmp.Concurrent.Total(),
			cmp.TotalImprovementPct)
	}

	// Two-level nesting: a 1.5 km mid-level domain over the Malay
	// peninsula whose own children resolve the metro areas at 500 m.
	deep := nestwrf.NewDomain("sea-2level", 340, 360)
	mid := deep.AddChild("peninsula", 600, 540, 3, 60, 80)
	mid.AddChild("kl-metro", 280, 240, 3, 40, 50)
	mid.AddChild("sg-metro", 260, 220, 3, 320, 280)

	cmp, err := nestwrf.Compare(deep, nestwrf.Options{
		Machine: machine,
		Ranks:   4096,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-level nesting (siblings at the second level), 4096 cores:\n")
	fmt.Printf("  sequential %.3f s, concurrent %.3f s: %.1f%% improvement\n",
		cmp.Default.IterTime, cmp.Concurrent.IterTime, cmp.ImprovementPct)
	fmt.Println("\nnote how the I/O share of the sequential strategy grows with scale —")
	fmt.Println("PnetCDF collective writes do not scale with the writer count, so fewer")
	fmt.Println("writers per sibling file (the concurrent strategy) restores scalability.")
}
