// Mapping explorer: visualizes the 2D-to-3D torus mappings of the
// paper's Section 3.3 on the Figs. 5-6 example (32 ranks, two sibling
// partitions, a 4x4x2 torus) and then measures their effect at
// production scale.
package main

import (
	"fmt"
	"log"

	"nestwrf"
)

func main() {
	// Part 1: the paper's illustration — which rank sits on which torus
	// node under each mapping. We reproduce it through the public Plan
	// API at 32 ranks with two equal siblings.
	cfg := nestwrf.NewDomain("illustration", 96, 48)
	cfg.AddChild("sibling1", 144, 144, 3, 0, 0)
	cfg.AddChild("sibling2", 144, 144, 3, 48, 0)

	plan, err := nestwrf.Plan(cfg, nestwrf.BlueGeneL(), 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("32 ranks form an %dx%d grid; siblings get %v and %v\n\n",
		plan.Px, plan.Py, plan.Rects[0], plan.Rects[1])
	fmt.Println("average torus hops between neighbouring ranks (4x4x2 torus):")
	fmt.Printf("%-12s %-8s %-8s %-8s\n", "mapping", "parent", "sib1", "sib2")
	for _, name := range []string{"oblivious", "txyz", "partition", "multilevel"} {
		rep, ok := plan.MappingReports[name]
		if !ok {
			continue
		}
		fmt.Printf("%-12s %-8.2f %-8.2f %-8.2f\n",
			name, rep.ParentAvgHops, rep.SiblingAvgHops[0], rep.SiblingAvgHops[1])
	}
	fmt.Println("\nthe multi-level fold keeps every neighbour pair 1 hop apart —")
	fmt.Println("'this universal mapping scheme benefits both the nested simulations")
	fmt.Println("and the parent simulation' (Section 3.3.2)")

	// Draw the actual placements, the textual counterpart of Figs. 5-6.
	for _, kind := range []struct {
		name string
		k    nestwrf.MapKind
	}{
		{"oblivious (Fig. 5b)", nestwrf.MapOblivious},
		{"partition (Fig. 6a)", nestwrf.MapPartition},
		{"multi-level (Fig. 6b)", nestwrf.MapMultiLevel},
	} {
		art, err := nestwrf.RenderMapping(kind.k, nestwrf.BlueGeneL(), 32, plan.Rects)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n%s", kind.name, art)
	}

	// Part 2: what the mappings buy at production scale (Table 4).
	prod := nestwrf.NewDomain("production", 286, 307)
	prod.AddChild("sibling1", 394, 418, 3, 5, 5)
	prod.AddChild("sibling2", 232, 202, 3, 150, 10)
	prod.AddChild("sibling3", 232, 256, 3, 10, 160)
	prod.AddChild("sibling4", 313, 337, 3, 140, 150)

	fmt.Println("\nper-iteration times on 1024 BG/L cores (Table 4 of the paper):")
	fmt.Printf("%-12s %-10s %-10s %-10s\n", "mapping", "iter (s)", "wait (s)", "avg hops")
	for _, mk := range []struct {
		name string
		kind nestwrf.MapKind
	}{
		{"oblivious", nestwrf.MapOblivious},
		{"txyz", nestwrf.MapTXYZ},
		{"partition", nestwrf.MapPartition},
		{"multilevel", nestwrf.MapMultiLevel},
	} {
		res, err := nestwrf.Simulate(prod, nestwrf.Options{
			Machine:  nestwrf.BlueGeneL(),
			Ranks:    1024,
			Strategy: nestwrf.StrategyConcurrent,
			MapKind:  mk.kind,
			Alloc:    nestwrf.AllocPredicted,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10.3f %-10.3f %-10.2f\n", mk.name, res.IterTime, res.WaitAvg, res.HopsAvg)
	}
}
