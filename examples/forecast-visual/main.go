// Forecast visualization: the paper's introduction motivates
// "simultaneous online visualization to comprehend the simulation
// output on-the-fly". This example runs the functional mini-WRF on a
// rotating (Coriolis) shallow-water parent with one nest, renders the
// evolving height field as terminal heatmaps, and — when -out is given
// — writes the forecast series in the library's binary format plus PGM
// images any viewer can open.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nestwrf"
)

func main() {
	outDir := flag.String("out", "", "directory for forecast files (empty = terminal only)")
	flag.Parse()

	cfg := nestwrf.NewDomain("cyclone", 64, 64)
	cfg.AddChild("eye", 48, 48, 3, 24, 24)

	type snap struct {
		domain string
		step   int
		state  *nestwrf.ForecastState
	}
	fmt.Println("functional mini-WRF, rotating shallow water (64x64 parent, 48x48 nest)")
	var snaps []snap
	for _, steps := range []int{1, 4, 8} {
		res, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
			Ranks:    16,
			Steps:    steps,
			Strategy: nestwrf.FunctionalConcurrent,
			Params:   nestwrf.GeophysicalSolverParams(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nparent height field after %d parent steps:\n", steps)
		fmt.Print(nestwrf.ForecastASCII(res.Parent, nestwrf.FieldHeight, 48))
		snaps = append(snaps,
			snap{"cyclone", steps, res.Parent},
			snap{"eye", steps, res.Nests[0]},
		)
	}

	if *outDir == "" {
		fmt.Println("\n(pass -out DIR to write the forecast series and PGM images)")
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	series := filepath.Join(*outDir, "forecast.nwrf")
	f, err := os.Create(series)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range snaps {
		if err := nestwrf.EncodeForecast(f, s.domain, s.step, s.state); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, s := range snaps {
		name := filepath.Join(*outDir, fmt.Sprintf("%s-step%02d.pgm", s.domain, s.step))
		img, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := nestwrf.WriteForecastPGM(img, s.state, nestwrf.FieldHeight); err != nil {
			log.Fatal(err)
		}
		if err := img.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nwrote %s and %d PGM images to %s\n", series, len(snaps), *outDir)

	// Round-trip check: read the series back.
	rf, err := os.Open(series)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	verified := 0
	for range snaps {
		if _, _, _, err := nestwrf.DecodeForecast(rf); err != nil {
			log.Fatal(err)
		}
		verified++
	}
	fmt.Printf("verified: %d snapshots decode cleanly (checksums OK)\n", verified)
}
