// Functional validation: runs the real shallow-water mini-WRF — actual
// numerics, halo exchanges and nesting over the goroutine MPI runtime —
// under both strategies and shows that they compute the same weather
// while the concurrent strategy finishes in less virtual time. This is
// the end-to-end proof that the paper's restructuring changes the
// schedule, not the forecast.
package main

import (
	"fmt"
	"log"

	"nestwrf"
)

func main() {
	cfg := nestwrf.NewDomain("parent", 64, 64)
	cfg.AddChild("nest-east", 60, 48, 3, 2, 2)
	cfg.AddChild("nest-west", 48, 36, 3, 30, 30)

	// Per-message latency chosen so communication matters relative to
	// the small per-rank tiles — the sub-linear-scaling regime in which
	// the paper's strategy pays off.
	opts := nestwrf.FunctionalOptions{
		Ranks:     32,
		Steps:     4,
		PointCost: 1e-6,
		TM:        nestwrf.AlphaBeta{Alpha: 5e-5, Beta: 1e-9},
	}

	opts.Strategy = nestwrf.FunctionalSequential
	seq, err := nestwrf.RunFunctional(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Strategy = nestwrf.FunctionalConcurrent
	con, err := nestwrf.RunFunctional(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("functional mini-WRF: 64x64 parent, two nests, 32 ranks, 4 steps")
	fmt.Printf("%-22s %-14s %-14s\n", "", "sequential", "concurrent")
	fmt.Printf("%-22s %-14.6f %-14.6f\n", "virtual makespan (s)", seq.MaxClock, con.MaxClock)
	fmt.Printf("%-22s %-14.6f %-14.6f\n", "avg MPI wait (s)", seq.AvgWait, con.AvgWait)

	fmt.Printf("\nfield agreement (max abs difference across all cells):\n")
	fmt.Printf("  parent: %.3g\n", seq.Parent.MaxDiff(con.Parent))
	for i := range seq.Nests {
		fmt.Printf("  %s: %.3g\n", cfg.Children[i].Name, seq.Nests[i].MaxDiff(con.Nests[i]))
	}
	fmt.Printf("\nparent water mass: %.9f (sequential) vs %.9f (concurrent)\n",
		seq.Parent.Mass(), con.Parent.Mass())

	gain := 100 * (seq.MaxClock - con.MaxClock) / seq.MaxClock
	fmt.Printf("\nsame forecast, %.1f%% less virtual time with concurrent siblings\n", gain)
}
