// Quickstart: plan and evaluate concurrent nested simulations in a few
// lines — the minimal end-to-end use of the nestwrf public API.
package main

import (
	"fmt"
	"log"

	"nestwrf"
)

func main() {
	// Two tropical depressions tracked inside a Pacific parent domain
	// (the scenario of the paper's Fig. 1): a 24 km parent with two 8 km
	// nests, i.e. a refinement ratio of 3.
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("depression-east", 394, 418, 3, 5, 5)
	cfg.AddChild("depression-west", 313, 337, 3, 140, 150)

	machine := nestwrf.BlueGeneL()
	const ranks = 1024 // one BG/L rack in virtual-node mode

	// Step 1: the paper's pipeline — predict sibling execution times,
	// partition the 32x32 processor grid with Algorithm 1, and assess
	// the torus mappings.
	plan, err := nestwrf.Plan(cfg, machine, ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processor grid %dx%d\n", plan.Px, plan.Py)
	for i, c := range cfg.Children {
		fmt.Printf("  %-16s predicted share %.2f -> partition %v\n",
			c.Name, plan.Weights[i], plan.Rects[i])
	}
	fmt.Printf("  avg hops: oblivious %.2f vs multi-level fold %.2f\n\n",
		plan.MappingReports["oblivious"].OverallAvgHops,
		plan.MappingReports["multilevel"].OverallAvgHops)

	// Step 2: simulate both strategies and compare, with the
	// topology-aware multi-level mapping for the concurrent run.
	cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
		Machine: machine,
		Ranks:   ranks,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default WRF (sequential nests): %.3f s/iteration\n", cmp.Default.IterTime)
	fmt.Printf("concurrent siblings:            %.3f s/iteration\n", cmp.Concurrent.IterTime)
	fmt.Printf("improvement: %.1f%% (MPI_Wait: %.1f%%)\n",
		cmp.ImprovementPct, cmp.WaitImprovementPct)
}
