// Package nestwrf reproduces "A divide and conquer strategy for
// scaling weather simulations with multiple regions of interest"
// (Malakar et al., SC 2012): concurrent execution of nested weather
// simulation domains on disjoint rectangular processor partitions,
// sized by an interpolation-based performance model and placed on 3D
// torus networks with topology-aware mappings.
//
// The package is the public facade over the internal substrates:
//
//   - Performance prediction (Section 3.1): Delaunay-interpolated
//     execution times over the (aspect ratio, point count) plane.
//   - Processor allocation (Section 3.2, Algorithm 1): Huffman-tree
//     recursive bisection of the virtual processor grid.
//   - Topology-aware mapping (Section 3.3): partition and multi-level
//     2D-to-3D torus mappings.
//   - A virtual-time Blue Gene simulator (machines, torus network with
//     contention, parallel I/O) on which every table and figure of the
//     paper's evaluation is regenerated, and a functional shallow-water
//     mini-WRF on a goroutine-based MPI runtime for end-to-end
//     validation.
//
// # Quick start
//
//	cfg := nestwrf.NewDomain("pacific", 286, 307)
//	cfg.AddChild("typhoon1", 394, 418, 3, 5, 5)
//	cfg.AddChild("typhoon2", 313, 337, 3, 140, 150)
//
//	plan, err := nestwrf.Plan(cfg, nestwrf.BlueGeneL(), 1024)
//	// plan.Weights: predicted time shares; plan.Rects: partitions
//
//	cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
//	    Machine: nestwrf.BlueGeneL(), Ranks: 1024,
//	    MapKind: nestwrf.MapMultiLevel,
//	})
//	// cmp.ImprovementPct: gain of the paper's strategy over default WRF
package nestwrf

import (
	"io"

	"nestwrf/internal/alloc"
	"nestwrf/internal/campaign"
	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/metrics"
	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/output"
	"nestwrf/internal/predict"
	"nestwrf/internal/solver"
	"nestwrf/internal/stats"
	"nestwrf/internal/steer"
	"nestwrf/internal/topotime"
	"nestwrf/internal/trace"
	"nestwrf/internal/wrfsim"
)

// Domain is a simulation domain tree: a parent with nested children
// ("siblings" at the same level). See NewDomain and Domain.AddChild.
type Domain = nest.Domain

// NewDomain constructs a top-level (parent) domain of nx x ny grid
// points.
func NewDomain(name string, nx, ny int) *Domain { return nest.Root(name, nx, ny) }

// Machine describes a simulated system (Blue Gene/L or /P).
type Machine = machine.Machine

// BlueGeneL returns the Blue Gene/L machine model of the paper's
// Section 4.2.1.
func BlueGeneL() Machine { return machine.BGL() }

// BlueGeneP returns the Blue Gene/P machine model of the paper's
// Section 4.2.2.
func BlueGeneP() Machine { return machine.BGP() }

// Rect is a rectangular processor-grid partition.
type Rect = alloc.Rect

// Options configure a simulated run (see Simulate).
type Options = driver.Options

// Result is a simulated run's per-iteration metrics.
type Result = driver.Result

// Strategy selects sequential (default WRF) or concurrent (the paper's)
// sibling execution.
type Strategy = driver.Strategy

// Strategies.
const (
	StrategySequential = driver.Sequential
	StrategyConcurrent = driver.Concurrent
)

// MapKind selects the rank-to-torus mapping.
type MapKind = driver.MapKind

// Mappings of Section 3.3.
const (
	MapOblivious  = driver.MapSequential
	MapTXYZ       = driver.MapTXYZ
	MapPartition  = driver.MapPartition
	MapMultiLevel = driver.MapMultiLevel
)

// AllocPolicy selects the partition-sizing policy.
type AllocPolicy = driver.AllocPolicy

// Allocation policies of Sections 3.2 and 4.6.
const (
	AllocPredicted       = driver.AllocPredicted
	AllocNaivePoints     = driver.AllocNaivePoints
	AllocEqual           = driver.AllocEqual
	AllocStripsPredicted = driver.AllocStripsPredicted
)

// I/O modes of the evaluation platforms.
const (
	IOCollective = iosim.Collective // PnetCDF (BG/P)
	IOSplit      = iosim.Split      // split files (BG/L)
)

// ParseIOMode parses an I/O mode name ("pnetcdf"/"collective" or
// "split", any case), the inverse of the mode's String.
func ParseIOMode(s string) (iosim.Mode, error) { return iosim.ParseMode(s) }

// ParseStrategy parses a strategy name ("sequential" or "concurrent",
// any case), the inverse of the strategy's String.
func ParseStrategy(s string) (Strategy, error) { return driver.ParseStrategy(s) }

// ParseMapKind parses a mapping name ("oblivious", "txyz", "partition"
// or "multilevel", any case), the inverse of the kind's String.
func ParseMapKind(s string) (MapKind, error) { return driver.ParseMapKind(s) }

// ParseAllocPolicy parses an allocation-policy name ("predicted",
// "naive-points", "equal" or "strips-predicted", any case), the
// inverse of the policy's String.
func ParseAllocPolicy(s string) (AllocPolicy, error) { return driver.ParseAllocPolicy(s) }

// Predictor is the interpolation-based performance model of
// Section 3.1.
type Predictor = predict.Model

// TrainPredictor fits a Predictor from the machine's cost model on the
// paper's 13-shape profiling basis.
func TrainPredictor(m Machine) (*Predictor, error) { return driver.TrainPredictor(m) }

// ExecutionPlan is the outcome of the paper's pipeline for one
// configuration: predicted sibling weights, the processor partitions of
// Algorithm 1, and the mapping quality on the machine's torus.
type ExecutionPlan struct {
	// Ranks is the total processor count; the virtual grid is Px x Py.
	Ranks, Px, Py int
	// Weights are the predicted relative execution times of the
	// first-level siblings (summing to 1).
	Weights []float64
	// Rects are the processor partitions, one per sibling.
	Rects []Rect
	// MappingReports summarize hop counts per mapping kind.
	MappingReports map[string]MappingReport
}

// MappingReport summarizes the communication locality of one mapping.
type MappingReport = driver.MappingQuality

// FullPlan is the reusable, immutable plan value behind Plan and the
// plan server: partitions and mapping quality plus the predicted cost
// of executing the configuration under specific options.
type FullPlan = driver.Plan

// BuildPlan runs the complete planning pipeline (prediction,
// allocation, mapping analysis, cost prediction) for cfg under the
// given options. The returned plan is immutable and safe to share
// across goroutines.
func BuildPlan(cfg *Domain, opt Options) (*FullPlan, error) { return driver.BuildPlan(cfg, opt) }

// Plan runs performance prediction, processor allocation and mapping
// analysis for cfg on the given machine and rank count.
func Plan(cfg *Domain, m Machine, ranks int) (*ExecutionPlan, error) {
	p, err := driver.BuildPlan(cfg, driver.Options{
		Machine:  m,
		Ranks:    ranks,
		Strategy: driver.Concurrent,
		Alloc:    driver.AllocPredicted,
	})
	if err != nil {
		return nil, err
	}
	plan := &ExecutionPlan{
		Ranks: p.Ranks, Px: p.Px, Py: p.Py,
		Weights: p.Weights, Rects: p.Rects,
		MappingReports: p.Mapping,
	}
	return plan, nil
}

// Simulate runs one configuration under the given options on the
// virtual-time simulator and returns per-iteration metrics.
func Simulate(cfg *Domain, opt Options) (Result, error) { return driver.Run(cfg, opt) }

// Comparison contrasts the default sequential strategy with the
// paper's concurrent strategy under identical options.
type Comparison struct {
	Default    Result
	Concurrent Result
	// ImprovementPct is the per-iteration integration-time gain.
	ImprovementPct float64
	// TotalImprovementPct includes I/O when enabled.
	TotalImprovementPct float64
	// WaitImprovementPct is the average MPI_Wait gain.
	WaitImprovementPct float64
}

// Compare runs cfg under both strategies (the given options select the
// machine, rank count, mapping, allocation and I/O settings) and
// reports the improvements the paper's tables quote.
func Compare(cfg *Domain, opt Options) (Comparison, error) {
	seqOpt := opt
	seqOpt.Strategy = driver.Sequential
	seqOpt.MapKind = driver.MapSequential // the stock WRF baseline
	seq, err := driver.Run(cfg, seqOpt)
	if err != nil {
		return Comparison{}, err
	}
	conOpt := opt
	conOpt.Strategy = driver.Concurrent
	con, err := driver.Run(cfg, conOpt)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Default:             seq,
		Concurrent:          con,
		ImprovementPct:      stats.Improvement(seq.IterTime, con.IterTime),
		TotalImprovementPct: stats.Improvement(seq.Total(), con.Total()),
		WaitImprovementPct:  stats.Improvement(seq.WaitAvg, con.WaitAvg),
	}, nil
}

// FunctionalOptions configure an end-to-end functional run of the
// shallow-water mini-WRF on the goroutine MPI runtime.
type FunctionalOptions = wrfsim.Options

// AlphaBeta is the latency/bandwidth virtual transfer-time model of the
// functional MPI runtime.
type AlphaBeta = mpi.AlphaBeta

// TimeModel computes virtual transfer durations for the functional MPI
// runtime.
type TimeModel = mpi.TimeModel

// NewTopologyTimeModel returns a transfer-time model for RunFunctional
// whose per-message cost follows the hop distance of the given mapping
// on the machine's torus — the functional counterpart of the paper's
// topology-aware placement. rects are needed only for MapPartition.
func NewTopologyTimeModel(kind MapKind, m Machine, ranks int, rects []Rect) (TimeModel, error) {
	g, err := machine.GridFor(ranks)
	if err != nil {
		return nil, err
	}
	tor, err := machine.TorusFor(ranks)
	if err != nil {
		return nil, err
	}
	var mp *mapping.Mapping
	switch kind {
	case MapTXYZ:
		mp, err = mapping.TXYZ(g, tor, m.CoresPerNode)
	case MapPartition:
		mp, err = mapping.PartitionMapping(g, tor, rects)
	case MapMultiLevel:
		mp, err = mapping.MultiLevel(g, tor)
	default:
		mp, err = mapping.Sequential(g, tor)
	}
	if err != nil {
		return nil, err
	}
	return topotime.New(mp, m.Net)
}

// FunctionalOutput is a functional run's final fields and virtual-time
// metrics.
type FunctionalOutput = wrfsim.Output

// FunctionalStrategy selects the functional mini-WRF's execution
// strategy.
type FunctionalStrategy = wrfsim.Strategy

// Functional strategies.
const (
	FunctionalSequential = wrfsim.Sequential
	FunctionalConcurrent = wrfsim.Concurrent
)

// RunFunctional executes the functional mini-WRF: real shallow-water
// numerics with nesting, halo exchanges and communicator splits. Both
// strategies produce matching fields; the concurrent one finishes in
// less virtual time.
func RunFunctional(cfg *Domain, opt FunctionalOptions) (*FunctionalOutput, error) {
	return wrfsim.Run(cfg, opt)
}

// CampaignPhase is one segment of a multi-day forecast campaign: a
// domain configuration active for a number of parent iterations.
type CampaignPhase = campaign.Phase

// CampaignResult aggregates a campaign's totals, including the
// concurrent strategy's partition-redistribution costs.
type CampaignResult = campaign.Result

// SolverParams are the functional solver's integration parameters.
type SolverParams = solver.Params

// DefaultSolverParams returns stable shallow-water parameters without
// rotation.
func DefaultSolverParams() SolverParams { return solver.DefaultParams() }

// GeophysicalSolverParams returns rotating (Coriolis) shallow-water
// parameters for cyclone-like demonstrations.
func GeophysicalSolverParams() SolverParams { return solver.GeophysicalParams() }

// ForecastState is a full-domain field snapshot from the functional
// simulator.
type ForecastState = solver.State

// ForecastField selects a state variable for rendering.
type ForecastField = output.Field

// Forecast output fields for rendering.
const (
	FieldHeight    = output.FieldH
	FieldMomentumU = output.FieldHU
	FieldMomentumV = output.FieldHV
	FieldSpeed     = output.FieldSpeed
)

// EncodeForecast writes a domain state as one record of the library's
// self-describing binary forecast format (the wrfout stand-in).
func EncodeForecast(w io.Writer, domain string, step int, st *ForecastState) error {
	return output.Encode(w, output.Snapshot{Domain: domain, Step: step, State: st})
}

// DecodeForecast reads one forecast record.
func DecodeForecast(r io.Reader) (domain string, step int, st *ForecastState, err error) {
	s, err := output.Decode(r)
	if err != nil {
		return "", 0, nil, err
	}
	return s.Domain, s.Step, s.State, nil
}

// WriteForecastPGM renders a state field as a binary PGM greymap.
func WriteForecastPGM(w io.Writer, st *ForecastState, field ForecastField) error {
	return output.WritePGM(w, st, field)
}

// ForecastASCII renders a coarse terminal heatmap of a state field.
func ForecastASCII(st *ForecastState, field ForecastField, width int) string {
	return output.ASCIIArt(st, field, width)
}

// PartitionsSVG renders an execution plan's processor partitions as an
// SVG diagram, the counterpart of the paper's Fig. 3(b).
func PartitionsSVG(plan *ExecutionPlan) string {
	return output.PartitionsSVG(plan.Rects, plan.Px, plan.Py)
}

// RenderMapping draws the given mapping kind for a machine size as one
// rank grid per torus z-plane (the textual counterpart of the paper's
// Figs. 5-6); rects are needed only for the partition mapping.
func RenderMapping(kind MapKind, m Machine, ranks int, rects []Rect) (string, error) {
	g, err := machine.GridFor(ranks)
	if err != nil {
		return "", err
	}
	tor, err := machine.TorusFor(ranks)
	if err != nil {
		return "", err
	}
	var mp *mapping.Mapping
	switch kind {
	case MapTXYZ:
		mp, err = mapping.TXYZ(g, tor, m.CoresPerNode)
	case MapPartition:
		mp, err = mapping.PartitionMapping(g, tor, rects)
	case MapMultiLevel:
		mp, err = mapping.MultiLevel(g, tor)
	default:
		mp, err = mapping.Sequential(g, tor)
	}
	if err != nil {
		return "", err
	}
	return mp.RenderPlanes(), nil
}

// TraceLog is a recorded virtual-time schedule (see TraceIteration).
type TraceLog = trace.Log

// TraceIteration reconstructs the virtual-time schedule of one
// iteration from a Result, renderable as a text Gantt chart with
// TraceLog.Render.
func TraceIteration(res Result, strategy Strategy) *TraceLog {
	return driver.TraceIteration(res, strategy)
}

// MetricsRegistry collects run-level counters, gauges and histograms;
// set Options.Metrics to one to have Simulate record into it, and
// render with its Snapshot().Text() or WriteJSON. A nil registry is a
// valid no-op sink.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty, race-safe metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Report is the structured record of one simulated run: configuration,
// totals, per-domain phase breakdowns (compute / transfer / wait /
// coupling), per-sibling predicted-vs-realized shares, link-congestion
// summaries and I/O events, under the stable JSON schema
// "nestwrf/run-report/v1".
type Report = driver.Report

// ComparisonReport pairs both strategies' run reports with the
// headline improvements, under "nestwrf/compare-report/v1".
type ComparisonReport = driver.ComparisonReport

// SimulateWithReport is Simulate plus the structured run report.
func SimulateWithReport(cfg *Domain, opt Options) (Result, *Report, error) {
	return driver.RunWithReport(cfg, opt)
}

// CompareWithReport is Compare plus the structured comparison report
// (both strategies' full reports and the improvement headlines).
func CompareWithReport(cfg *Domain, opt Options) (Comparison, *ComparisonReport, error) {
	seqOpt := opt
	seqOpt.Strategy = driver.Sequential
	seqOpt.MapKind = driver.MapSequential
	seq, seqRep, err := driver.RunWithReport(cfg, seqOpt)
	if err != nil {
		return Comparison{}, nil, err
	}
	conOpt := opt
	conOpt.Strategy = driver.Concurrent
	con, conRep, err := driver.RunWithReport(cfg, conOpt)
	if err != nil {
		return Comparison{}, nil, err
	}
	cmp := Comparison{
		Default:             seq,
		Concurrent:          con,
		ImprovementPct:      stats.Improvement(seq.IterTime, con.IterTime),
		TotalImprovementPct: stats.Improvement(seq.Total(), con.Total()),
		WaitImprovementPct:  stats.Improvement(seq.WaitAvg, con.WaitAvg),
	}
	return cmp, driver.NewComparisonReport(seqRep, conRep), nil
}

// DecodeRunReport reads a JSON run report, rejecting unknown schemas.
func DecodeRunReport(r io.Reader) (*Report, error) { return driver.DecodeReport(r) }

// DecodeComparisonReport reads a JSON comparison report.
func DecodeComparisonReport(r io.Reader) (*ComparisonReport, error) {
	return driver.DecodeComparisonReport(r)
}

// TraceProcess names one TraceLog for Chrome trace export.
type TraceProcess = trace.ChromeProcess

// WriteChromeTrace serializes trace logs in the Chrome trace-event
// JSON format, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing; each process becomes its own track group.
func WriteChromeTrace(w io.Writer, procs ...TraceProcess) error {
	return trace.WriteChrome(w, procs...)
}

// RunCampaign simulates a campaign whose regions of interest change
// over time (nests spawning and retiring), re-planning the processor
// allocation at each change — the dynamic extension of the paper's
// strategy.
func RunCampaign(phases []CampaignPhase, opt Options) (CampaignResult, error) {
	return campaign.Run(phases, opt)
}

// SteerController tunes the sibling allocation from measured phase
// times (the paper's future-work steering).
type SteerController = steer.Controller

// SteerOutcome reports a steering session's rounds and final result.
type SteerOutcome = steer.Outcome

// Steer runs closed-loop allocation steering: the configuration
// executes concurrently, the controller observes the siblings' phase
// times, and the partition is corrected until balanced.
func Steer(cfg *Domain, ctrl SteerController, opt Options) (SteerOutcome, error) {
	return ctrl.Run(cfg, opt)
}

// DefaultSteerController returns sensible steering defaults (5%
// imbalance threshold, up to 5 rounds).
func DefaultSteerController() SteerController { return steer.DefaultController() }

// TyphoonSeason returns a five-phase Pacific typhoon-season storyline
// (formation, pairing, peak, landfall, decay) with the given number of
// parent iterations per phase.
func TyphoonSeason(stepsPerPhase int) []CampaignPhase {
	return campaign.Season(stepsPerPhase)
}
