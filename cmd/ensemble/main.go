// Command ensemble runs perturbed-scenario campaigns: thousands of
// members — storm-track-jittered season storylines, sampled nest
// hierarchies, machine/allocation sweeps — executed over a bounded
// worker pool sharing one plan cache, streamed into online aggregate
// statistics (mean, variance, p10/p50/p90) with memory independent of
// campaign size.
//
// Usage:
//
//	ensemble -gen mixed -members 1000 -seed 7
//	ensemble -members 1000 -checkpoint camp.ckpt           # resumable
//	ensemble -members 1000 -checkpoint camp.ckpt -stop-after 200
//	ensemble -members 1000 -checkpoint camp.ckpt           # resumes
//
// A checkpointed campaign killed mid-run (SIGINT/SIGTERM, or
// -stop-after for rehearsals) resumes from its checkpoint and
// reproduces the uninterrupted run's aggregates bit for bit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"nestwrf/internal/ensemble"
	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
	"nestwrf/internal/stats"
	"nestwrf/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ensemble", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gen := fs.String("gen", ensemble.GenMixed,
		"generator: "+strings.Join(ensemble.Generators(), ", "))
	members := fs.Int("members", 1000, "campaign size")
	seed := fs.Int64("seed", 1, "campaign seed")
	mach := fs.String("machine", "bgl", "base machine (bgl, bgp)")
	ranks := fs.Int("ranks", 1024, "base processor count")
	steps := fs.Int("steps", 100, "steps per storyline phase")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	window := fs.Int("window", 0, "members in flight (0 = 4*workers)")
	cacheSize := fs.Int("cache-size", 4096, "plan cache entries")
	checkpoint := fs.String("checkpoint", "", "checkpoint file (enables kill/resume)")
	every := fs.Int("checkpoint-every", 64, "commits between checkpoint writes")
	stopAfter := fs.Int("stop-after", 0, "stop after N commits this run (0 = run to completion)")
	generation := fs.Int("generation", 0,
		"batch-prewarm plans in generations of N members before dispatch (0 = off)")
	fresh := fs.Bool("fresh", false, "ignore an existing checkpoint and start over")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	showMetrics := fs.Bool("metrics", false, "dump engine metrics to stderr")
	traceOut := fs.String("trace-out", "",
		"write a Chrome/Perfetto trace (campaign -> sampled members -> driver phases) to this file")
	spansOut := fs.String("spans-out", "", "write the raw span dump (nestwrf/spans/v1 JSON) to this file")
	traceSample := fs.Int("trace-sample", 100, "trace every Nth member (head sampling; 1 traces all)")
	debugAddr := fs.String("debug-addr", "",
		"serve GET /debug/progress and /metrics on this address while the campaign runs")
	logLines := fs.Bool("log", false, "structured campaign logging (slog) to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fresh && *checkpoint != "" {
		if err := os.Remove(*checkpoint); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "ensemble: %v\n", err)
			return 1
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	cache := planserve.NewPlanCache(*cacheSize)
	defer cache.Close()
	reg := metrics.NewRegistry()
	cache.Instrument(reg)

	var tracer *telemetry.Tracer
	if *traceOut != "" || *spansOut != "" {
		tracer = telemetry.New(telemetry.Config{SampleEvery: *traceSample})
	}
	var logger *slog.Logger
	if *logLines {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}

	eng := &ensemble.Engine{
		Spec: ensemble.Spec{
			Generator:     *gen,
			Members:       *members,
			Seed:          *seed,
			Machine:       *mach,
			Ranks:         *ranks,
			StepsPerPhase: *steps,
		},
		Workers:         *workers,
		Window:          *window,
		Cache:           cache,
		Metrics:         reg,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *every,
		StopAfter:       *stopAfter,
		Generation:      *generation,
		Tracer:          tracer,
		Log:             logger,
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ensemble: debug listen %s: %v\n", *debugAddr, err)
			return 1
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /debug/progress", func(w http.ResponseWriter, _ *http.Request) {
			p, ok := eng.Progress()
			w.Header().Set("Content-Type", "application/json")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(p)
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Snapshot().WriteText(w)
		})
		fmt.Fprintf(stderr, "ensemble: live telemetry on http://%s/debug/progress\n", ln.Addr())
		go func() { _ = http.Serve(ln, mux) }()
	}

	sum, err := eng.Run(ctx)
	// Traces are worth writing even for failed or interrupted
	// campaigns — that is when they are most needed.
	if werr := writeTraces(tracer, *traceOut, *spansOut); werr != nil {
		fmt.Fprintf(stderr, "ensemble: %v\n", werr)
		if err == nil {
			return 1
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "ensemble: %v\n", err)
		if errors.Is(err, context.Canceled) && *checkpoint != "" {
			fmt.Fprintf(stderr, "ensemble: interrupted; rerun with -checkpoint %s to resume\n", *checkpoint)
		}
		return 1
	}
	if *showMetrics {
		reg.Snapshot().WriteText(stderr)
	}
	if *asJSON {
		encErr := json.NewEncoder(stdout).Encode(sum)
		if encErr != nil {
			fmt.Fprintf(stderr, "ensemble: %v\n", encErr)
			return 1
		}
		return 0
	}
	printSummary(stdout, sum)
	return 0
}

// writeTraces flushes the tracer to the requested output files. A nil
// tracer (tracing disabled) writes nothing and returns nil.
func writeTraces(tr *telemetry.Tracer, traceOut, spansOut string) error {
	if tr == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f, "ensemble campaign"); err != nil {
			f.Close()
			return fmt.Errorf("write trace %s: %w", traceOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if spansOut != "" {
		f, err := os.Create(spansOut)
		if err != nil {
			return err
		}
		if err := tr.Dump().EncodeJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write spans %s: %w", spansOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func printSummary(w *os.File, sum *ensemble.Summary) {
	fmt.Fprintf(w, "campaign %s seed=%d: %d/%d members committed",
		sum.Spec.Generator, sum.Spec.Seed, sum.Committed, sum.Spec.Members)
	if sum.ResumedFrom > 0 {
		fmt.Fprintf(w, " (resumed from %d)", sum.ResumedFrom)
	}
	if sum.Stopped {
		fmt.Fprint(w, " [stopped]")
	}
	fmt.Fprintf(w, "\nplan cache: %d hits, %d distinct geometries planned\n",
		sum.CacheHits, sum.CacheMisses)
	if sum.MembersPerSec > 0 {
		fmt.Fprintf(w, "throughput: %.0f members/sec (%.2fs)\n", sum.MembersPerSec, sum.ElapsedSec)
	}
	row := func(name string, s *stats.Stream) {
		if s == nil || s.Count == 0 {
			return
		}
		p10, _ := s.Quantile(0.1)
		p50, _ := s.Quantile(0.5)
		p90, _ := s.Quantile(0.9)
		fmt.Fprintf(w, "  %-16s mean %12.4f  sd %12.4f  p10 %12.4f  p50 %12.4f  p90 %12.4f\n",
			name, s.Mean, s.Stddev(), p10, p50, p90)
	}
	fmt.Fprintln(w, "aggregates (virtual seconds / percent):")
	row("default", sum.Aggregates.DefaultTime)
	row("concurrent", sum.Aggregates.ConcurrentTime)
	row("improvement%", sum.Aggregates.ImprovementPct)
}
