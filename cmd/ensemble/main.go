// Command ensemble runs perturbed-scenario campaigns: thousands of
// members — storm-track-jittered season storylines, sampled nest
// hierarchies, machine/allocation sweeps — executed over a bounded
// worker pool sharing one plan cache, streamed into online aggregate
// statistics (mean, variance, p10/p50/p90) with memory independent of
// campaign size.
//
// Usage:
//
//	ensemble -gen mixed -members 1000 -seed 7
//	ensemble -members 1000 -checkpoint camp.ckpt           # resumable
//	ensemble -members 1000 -checkpoint camp.ckpt -stop-after 200
//	ensemble -members 1000 -checkpoint camp.ckpt           # resumes
//
// A checkpointed campaign killed mid-run (SIGINT/SIGTERM, or
// -stop-after for rehearsals) resumes from its checkpoint and
// reproduces the uninterrupted run's aggregates bit for bit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"nestwrf/internal/ensemble"
	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
	"nestwrf/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ensemble", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gen := fs.String("gen", ensemble.GenMixed,
		"generator: "+strings.Join(ensemble.Generators(), ", "))
	members := fs.Int("members", 1000, "campaign size")
	seed := fs.Int64("seed", 1, "campaign seed")
	mach := fs.String("machine", "bgl", "base machine (bgl, bgp)")
	ranks := fs.Int("ranks", 1024, "base processor count")
	steps := fs.Int("steps", 100, "steps per storyline phase")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	window := fs.Int("window", 0, "members in flight (0 = 4*workers)")
	cacheSize := fs.Int("cache-size", 4096, "plan cache entries")
	checkpoint := fs.String("checkpoint", "", "checkpoint file (enables kill/resume)")
	every := fs.Int("checkpoint-every", 64, "commits between checkpoint writes")
	stopAfter := fs.Int("stop-after", 0, "stop after N commits this run (0 = run to completion)")
	fresh := fs.Bool("fresh", false, "ignore an existing checkpoint and start over")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	showMetrics := fs.Bool("metrics", false, "dump engine metrics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fresh && *checkpoint != "" {
		if err := os.Remove(*checkpoint); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "ensemble: %v\n", err)
			return 1
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	cache := planserve.NewPlanCache(*cacheSize)
	defer cache.Close()
	reg := metrics.NewRegistry()
	eng := &ensemble.Engine{
		Spec: ensemble.Spec{
			Generator:     *gen,
			Members:       *members,
			Seed:          *seed,
			Machine:       *mach,
			Ranks:         *ranks,
			StepsPerPhase: *steps,
		},
		Workers:         *workers,
		Window:          *window,
		Cache:           cache,
		Metrics:         reg,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *every,
		StopAfter:       *stopAfter,
	}
	sum, err := eng.Run(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "ensemble: %v\n", err)
		if errors.Is(err, context.Canceled) && *checkpoint != "" {
			fmt.Fprintf(stderr, "ensemble: interrupted; rerun with -checkpoint %s to resume\n", *checkpoint)
		}
		return 1
	}
	if *showMetrics {
		reg.Snapshot().WriteText(stderr)
	}
	if *asJSON {
		encErr := json.NewEncoder(stdout).Encode(sum)
		if encErr != nil {
			fmt.Fprintf(stderr, "ensemble: %v\n", encErr)
			return 1
		}
		return 0
	}
	printSummary(stdout, sum)
	return 0
}

func printSummary(w *os.File, sum *ensemble.Summary) {
	fmt.Fprintf(w, "campaign %s seed=%d: %d/%d members committed",
		sum.Spec.Generator, sum.Spec.Seed, sum.Committed, sum.Spec.Members)
	if sum.ResumedFrom > 0 {
		fmt.Fprintf(w, " (resumed from %d)", sum.ResumedFrom)
	}
	if sum.Stopped {
		fmt.Fprint(w, " [stopped]")
	}
	fmt.Fprintf(w, "\nplan cache: %d hits, %d distinct geometries planned\n",
		sum.CacheHits, sum.CacheMisses)
	if sum.MembersPerSec > 0 {
		fmt.Fprintf(w, "throughput: %.0f members/sec (%.2fs)\n", sum.MembersPerSec, sum.ElapsedSec)
	}
	row := func(name string, s *stats.Stream) {
		if s == nil || s.Count == 0 {
			return
		}
		p10, _ := s.Quantile(0.1)
		p50, _ := s.Quantile(0.5)
		p90, _ := s.Quantile(0.9)
		fmt.Fprintf(w, "  %-16s mean %12.4f  sd %12.4f  p10 %12.4f  p50 %12.4f  p90 %12.4f\n",
			name, s.Mean, s.Stddev(), p10, p50, p90)
	}
	fmt.Fprintln(w, "aggregates (virtual seconds / percent):")
	row("default", sum.Aggregates.DefaultTime)
	row("concurrent", sum.Aggregates.ConcurrentTime)
	row("improvement%", sum.Aggregates.ImprovementPct)
}
