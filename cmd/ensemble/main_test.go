package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nestwrf/internal/ensemble"
)

// runJSON invokes the CLI entry point with -json, returning the decoded
// summary and raw aggregate bytes.
func runJSON(t *testing.T, args ...string) (ensemble.Summary, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if code := run(append(args, "-json"), out, os.Stderr); code != 0 {
		t.Fatalf("run %v: exit %d", args, code)
	}
	raw, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var sum ensemble.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("bad summary JSON %q: %v", raw, err)
	}
	agg, err := json.Marshal(sum.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	return sum, string(agg)
}

// The CLI's kill/resume path must reproduce an uninterrupted run's
// aggregates exactly.
func TestKillResumeReproducesAggregates(t *testing.T) {
	base := []string{"-members", "90", "-steps", "5", "-seed", "13", "-workers", "4"}
	full, fullAgg := runJSON(t, base...)
	if full.Committed != 90 || full.Stopped {
		t.Fatalf("full run: %+v", full)
	}

	ckpt := filepath.Join(t.TempDir(), "c.ckpt")
	stopped, _ := runJSON(t, append(base, "-checkpoint", ckpt, "-checkpoint-every", "8", "-stop-after", "33")...)
	if !stopped.Stopped || stopped.Committed != 33 {
		t.Fatalf("stopped run: %+v", stopped)
	}
	resumed, resumedAgg := runJSON(t, append(base, "-checkpoint", ckpt)...)
	if resumed.ResumedFrom != 33 || resumed.Committed != 90 {
		t.Fatalf("resumed run: %+v", resumed)
	}
	if fullAgg != resumedAgg {
		t.Errorf("resume diverged:\nfull:    %s\nresumed: %s", fullAgg, resumedAgg)
	}

	// -fresh discards the checkpoint and starts over.
	freshRun, freshAgg := runJSON(t, append(base, "-checkpoint", ckpt, "-fresh")...)
	if freshRun.ResumedFrom != 0 || freshRun.Committed != 90 {
		t.Fatalf("fresh run: %+v", freshRun)
	}
	if freshAgg != fullAgg {
		t.Error("fresh rerun diverged from original")
	}
}

func TestBadFlagsFail(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-gen", "chaos", "-members", "5"}, devnull, devnull); code == 0 {
		t.Error("unknown generator accepted")
	}
	if code := run([]string{"-members", "0"}, devnull, devnull); code == 0 {
		t.Error("zero members accepted")
	}
}
