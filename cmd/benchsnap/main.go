// Command benchsnap runs the repository benchmarks and writes a JSON
// snapshot of ns/op, B/op and allocs/op per benchmark. Snapshots are
// committed alongside performance PRs (BENCH_<pr>.json) so regressions
// are visible in review without re-running the suite.
//
// Usage:
//
//	go run ./cmd/benchsnap -bench 'PerIteration85|Table1Wait|AllExperimentsSequential' -o BENCH_4.json
//
// By default it runs each benchmark for a single iteration
// (-benchtime 1x), which is what the committed snapshots use: the
// experiment benchmarks are long enough that one iteration is a stable
// signal, and the snapshot is about orders of magnitude, not
// nanosecond precision.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit -> value columns: custom metrics
	// reported with b.ReportMetric (e.g. sim-ms, qps) and throughput
	// (MB/s).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file format: benchmark name -> result, plus the
// settings used to take it.
type Snapshot struct {
	BenchTime string            `json:"benchtime"`
	Pattern   string            `json:"pattern"`
	GoVersion string            `json:"go_version"`
	Results   map[string]Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("o", "", "output JSON file (default stdout)")
	)
	flag.Parse()

	raw, err := runBench(*pkg, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	snap, err := parse(raw, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d results to %s\n", len(snap.Results), *out)
}

// runBench shells out to go test with run disabled so only benchmarks
// execute, and returns the combined output.
func runBench(pkg, bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return buf.Bytes(), fmt.Errorf("go test -bench: %w", err)
	}
	return buf.Bytes(), nil
}

// isNumber reports whether a token is a plain numeric value (the value
// half of a benchmark measurement column).
func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// parseLine parses one `go test -bench` output line of the form
//
//	BenchmarkName-8   1   166000000 ns/op   4.2 sim-ms   12345 B/op   67 allocs/op
//
// into its benchmark name (GOMAXPROCS suffix stripped) and Result, or
// ok=false for any non-benchmark line. Measurement columns are matched
// by unit name, never by position: the known units fill the typed
// fields wherever they appear, unknown units (custom b.ReportMetric
// columns, MB/s) land in Metrics, and a stray token that is not part
// of a value/unit pair resynchronizes the scan instead of shifting
// every later column onto the wrong field. This keeps lines with
// custom metrics but no -benchmem columns — and vice versa — correct.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 && isNumber(name[i+1:]) {
		name = name[:i]
	}
	r := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); {
		value, unit := fields[i], fields[i+1]
		if !isNumber(value) || isNumber(unit) {
			// Not a value/unit pair at this position; resynchronize on
			// the next token rather than misattributing what follows.
			i++
			continue
		}
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(value, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(value, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(value, 10, 64)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit], _ = strconv.ParseFloat(value, 64)
		}
		seen = true
		i += 2
	}
	if !seen {
		return "", Result{}, false
	}
	return name, r, true
}

// parse extracts benchmark lines from go test output into a Snapshot.
func parse(raw []byte, pattern, benchtime string) (*Snapshot, error) {
	snap := &Snapshot{
		BenchTime: benchtime,
		Pattern:   pattern,
		GoVersion: runtime.Version(),
		Results:   map[string]Result{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			snap.Results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in go test output")
	}
	// Echo a sorted summary so a terminal run reads like benchstat.
	names := make([]string, 0, len(snap.Results))
	for n := range snap.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := snap.Results[n]
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %12d B/op %10d allocs/op\n",
			n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return snap, nil
}
