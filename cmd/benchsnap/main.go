// Command benchsnap runs the repository benchmarks and writes a JSON
// snapshot of ns/op, B/op and allocs/op per benchmark. Snapshots are
// committed alongside performance PRs (BENCH_<pr>.json) so regressions
// are visible in review without re-running the suite.
//
// Usage:
//
//	go run ./cmd/benchsnap -bench 'PerIteration85|Table1Wait|AllExperimentsSequential' -o BENCH_4.json
//
// By default it runs each benchmark for a single iteration
// (-benchtime 1x), which is what the committed snapshots use: the
// experiment benchmarks are long enough that one iteration is a stable
// signal, and the snapshot is about orders of magnitude, not
// nanosecond precision.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the file format: benchmark name -> result, plus the
// settings used to take it.
type Snapshot struct {
	BenchTime string            `json:"benchtime"`
	Pattern   string            `json:"pattern"`
	GoVersion string            `json:"go_version"`
	Results   map[string]Result `json:"results"`
}

// benchLine matches the prefix of `go test -bench` output lines such as
// "BenchmarkPerIteration85-8   1   166000000 ns/op   12345 B/op ...";
// the measurement columns after the iteration count are value/unit
// pairs parsed separately (custom metrics like sim-ms can appear
// between ns/op and the -benchmem columns).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)((?:\s+[\d.eE+-]+ \S+)+)$`)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("o", "", "output JSON file (default stdout)")
	)
	flag.Parse()

	raw, err := runBench(*pkg, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	snap, err := parse(raw, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d results to %s\n", len(snap.Results), *out)
}

// runBench shells out to go test with run disabled so only benchmarks
// execute, and returns the combined output.
func runBench(pkg, bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return buf.Bytes(), fmt.Errorf("go test -bench: %w", err)
	}
	return buf.Bytes(), nil
}

// parse extracts benchmark lines from go test output into a Snapshot.
func parse(raw []byte, pattern, benchtime string) (*Snapshot, error) {
	snap := &Snapshot{
		BenchTime: benchtime,
		Pattern:   pattern,
		GoVersion: runtime.Version(),
		Results:   map[string]Result{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(fields[i], 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		snap.Results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in go test output")
	}
	// Echo a sorted summary so a terminal run reads like benchstat.
	names := make([]string, 0, len(snap.Results))
	for n := range snap.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := snap.Results[n]
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %12d B/op %10d allocs/op\n",
			n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return snap, nil
}
