// Command benchsnap runs the repository benchmarks and writes a JSON
// snapshot of ns/op, B/op and allocs/op per benchmark. Snapshots are
// committed alongside performance PRs (BENCH_<pr>.json) so regressions
// are visible in review without re-running the suite.
//
// Usage:
//
//	go run ./cmd/benchsnap -bench 'PerIteration85|Table1Wait|AllExperimentsSequential' -o BENCH_4.json
//
// With -compare it re-runs the suite and diffs against a committed
// snapshot, printing per-benchmark deltas and exiting non-zero when
// any benchmark's ns/op or allocs/op regressed by more than -threshold
// percent (default 15):
//
//	go run ./cmd/benchsnap -bench 'PerIteration85$' -compare BENCH_4.json
//
// By default it runs each benchmark for a single iteration
// (-benchtime 1x), which is what the committed snapshots use: the
// experiment benchmarks are long enough that one iteration is a stable
// signal, and the snapshot is about orders of magnitude, not
// nanosecond precision.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit -> value columns: custom metrics
	// reported with b.ReportMetric (e.g. sim-ms, qps) and throughput
	// (MB/s).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file format: benchmark name -> result, plus the
// settings used to take it.
type Snapshot struct {
	BenchTime string            `json:"benchtime"`
	Pattern   string            `json:"pattern"`
	GoVersion string            `json:"go_version"`
	Results   map[string]Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("o", "", "output JSON file (default stdout)")
		compare   = flag.String("compare", "", "baseline snapshot JSON; report deltas and exit 1 on regressions")
		threshold = flag.Float64("threshold", 15, "regression threshold in percent for -compare")
	)
	flag.Parse()

	raw, err := runBench(*pkg, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	snap, err := parse(raw, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" && *compare == "" {
		os.Stdout.Write(data)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: wrote %d results to %s\n", len(snap.Results), *out)
	}
	if *compare != "" {
		old, err := loadSnapshot(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		rows, regressions := compareSnapshots(old, snap, *threshold)
		for _, row := range rows {
			fmt.Println(row)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: %d regression(s) beyond %.0f%% vs %s\n",
				regressions, *threshold, *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: no regressions beyond %.0f%% vs %s\n", *threshold, *compare)
	}
}

// loadSnapshot reads a committed benchmark snapshot.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compareSnapshots diffs cur against old, one row per benchmark, and
// counts regressions: benchmarks whose ns/op or allocs/op grew by more
// than threshold percent. Benchmarks present on only one side are
// reported but never counted — a renamed or new benchmark is not a
// regression. Single-iteration snapshots are noisy, so the threshold
// should stay coarse (the default 15% flags order-of-magnitude slips,
// not jitter).
func compareSnapshots(old, cur *Snapshot, threshold float64) (rows []string, regressions int) {
	names := make([]string, 0, len(cur.Results))
	for n := range cur.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	pct := func(was, now float64) float64 {
		if was == 0 {
			return 0
		}
		return 100 * (now - was) / was
	}
	for _, n := range names {
		now := cur.Results[n]
		was, ok := old.Results[n]
		if !ok {
			rows = append(rows, fmt.Sprintf("%-40s %12.0f ns/op  (new benchmark, no baseline)", n, now.NsPerOp))
			continue
		}
		dns := pct(was.NsPerOp, now.NsPerOp)
		dalloc := pct(float64(was.AllocsPerOp), float64(now.AllocsPerOp))
		mark := ""
		if dns > threshold || dalloc > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		rows = append(rows, fmt.Sprintf("%-40s %12.0f -> %12.0f ns/op (%+6.1f%%)  %6d -> %6d allocs/op (%+6.1f%%)%s",
			n, was.NsPerOp, now.NsPerOp, dns, was.AllocsPerOp, now.AllocsPerOp, dalloc, mark))
	}
	for n := range old.Results {
		if _, ok := cur.Results[n]; !ok {
			rows = append(rows, fmt.Sprintf("%-40s (baseline only; not run)", n))
		}
	}
	return rows, regressions
}

// runBench shells out to go test with run disabled so only benchmarks
// execute, and returns the combined output.
func runBench(pkg, bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return buf.Bytes(), fmt.Errorf("go test -bench: %w", err)
	}
	return buf.Bytes(), nil
}

// isNumber reports whether a token is a plain numeric value (the value
// half of a benchmark measurement column).
func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// parseLine parses one `go test -bench` output line of the form
//
//	BenchmarkName-8   1   166000000 ns/op   4.2 sim-ms   12345 B/op   67 allocs/op
//
// into its benchmark name (GOMAXPROCS suffix stripped) and Result, or
// ok=false for any non-benchmark line. Measurement columns are matched
// by unit name, never by position: the known units fill the typed
// fields wherever they appear, unknown units (custom b.ReportMetric
// columns, MB/s) land in Metrics, and a stray token that is not part
// of a value/unit pair resynchronizes the scan instead of shifting
// every later column onto the wrong field. This keeps lines with
// custom metrics but no -benchmem columns — and vice versa — correct.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the -N GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 && isNumber(name[i+1:]) {
		name = name[:i]
	}
	r := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); {
		value, unit := fields[i], fields[i+1]
		if !isNumber(value) || isNumber(unit) {
			// Not a value/unit pair at this position; resynchronize on
			// the next token rather than misattributing what follows.
			i++
			continue
		}
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(value, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(value, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(value, 10, 64)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit], _ = strconv.ParseFloat(value, 64)
		}
		seen = true
		i += 2
	}
	if !seen {
		return "", Result{}, false
	}
	return name, r, true
}

// parse extracts benchmark lines from go test output into a Snapshot.
func parse(raw []byte, pattern, benchtime string) (*Snapshot, error) {
	snap := &Snapshot{
		BenchTime: benchtime,
		Pattern:   pattern,
		GoVersion: runtime.Version(),
		Results:   map[string]Result{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			snap.Results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in go test output")
	}
	// Echo a sorted summary so a terminal run reads like benchstat.
	names := make([]string, 0, len(snap.Results))
	for n := range snap.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := snap.Results[n]
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %12d B/op %10d allocs/op\n",
			n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return snap, nil
}
