package main

import (
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		in   string
		name string
		want Result
		ok   bool
	}{
		{
			// Classic -benchmem line.
			in:   "BenchmarkPerIteration85-8   \t       1\t 166000000 ns/op\t   12345 B/op\t     678 allocs/op",
			name: "BenchmarkPerIteration85",
			want: Result{Iterations: 1, NsPerOp: 166000000, BytesPerOp: 12345, AllocsPerOp: 678},
			ok:   true,
		},
		{
			// Custom metric between ns/op and the -benchmem columns (the
			// wrfsim functional benchmarks report sim-ms).
			in:   "BenchmarkFunctional/concurrent-8         \t       1\t   2700000 ns/op\t         15.30 sim-ms\t 4640000 B/op\t    4640 allocs/op",
			name: "BenchmarkFunctional/concurrent",
			want: Result{Iterations: 1, NsPerOp: 2700000, BytesPerOp: 4640000, AllocsPerOp: 4640,
				Metrics: map[string]float64{"sim-ms": 15.30}},
			ok: true,
		},
		{
			// Custom metrics without -benchmem: every column must still
			// land on the right field.
			in:   "BenchmarkPlanServerCacheHot-16   \t   10000\t     45120 ns/op\t     22163 qps",
			name: "BenchmarkPlanServerCacheHot",
			want: Result{Iterations: 10000, NsPerOp: 45120,
				Metrics: map[string]float64{"qps": 22163}},
			ok: true,
		},
		{
			// -benchmem with a zero-allocation benchmark.
			in:   "BenchmarkTileExchange-8  \t 1000000\t      1052 ns/op\t       0 B/op\t       0 allocs/op",
			name: "BenchmarkTileExchange",
			want: Result{Iterations: 1000000, NsPerOp: 1052},
			ok:   true,
		},
		{
			// Throughput column.
			in:   "BenchmarkEncode-4  \t    5000\t    250000 ns/op\t 400.00 MB/s\t    1024 B/op\t       2 allocs/op",
			name: "BenchmarkEncode",
			want: Result{Iterations: 5000, NsPerOp: 250000, BytesPerOp: 1024, AllocsPerOp: 2,
				Metrics: map[string]float64{"MB/s": 400}},
			ok: true,
		},
		{
			// Scientific-notation value.
			in:   "BenchmarkBig-8  \t       2\t 1.5e+09 ns/op",
			name: "BenchmarkBig",
			want: Result{Iterations: 2, NsPerOp: 1.5e9},
			ok:   true,
		},
		{
			// No GOMAXPROCS suffix (GOMAXPROCS=1 omits it).
			in:   "BenchmarkSolo  \t     100\t    9999 ns/op",
			name: "BenchmarkSolo",
			want: Result{Iterations: 100, NsPerOp: 9999},
			ok:   true,
		},
		// Non-benchmark lines from real go test output.
		{in: "goos: linux", ok: false},
		{in: "goarch: amd64", ok: false},
		{in: "pkg: nestwrf", ok: false},
		{in: "cpu: Intel(R) Xeon(R) CPU", ok: false},
		{in: "PASS", ok: false},
		{in: "ok  \tnestwrf\t1.305s", ok: false},
		{in: "", ok: false},
		{in: "BenchmarkBroken-8", ok: false},                   // no columns at all
		{in: "BenchmarkNaN-8  \t  abc\t  12 ns/op", ok: false}, // bad iteration count
	}
	for _, c := range cases {
		name, got, ok := parseLine(c.in)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != c.name {
			t.Errorf("parseLine(%q) name = %q, want %q", c.in, name, c.name)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseLine(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFullOutput(t *testing.T) {
	raw := []byte(`goos: linux
goarch: amd64
pkg: nestwrf
cpu: Intel(R) Xeon(R) Platinum
BenchmarkPerIteration85-8   	       1	 190000000 ns/op	 5000000 B/op	   50000 allocs/op
BenchmarkFunctional/sequential-8 	       1	   3050000 ns/op	        16.10 sim-ms	  475000 B/op	    4750 allocs/op
BenchmarkPlanServerCacheHot-8    	   20000	     48000 ns/op	     20833 qps
PASS
ok  	nestwrf	1.305s
`)
	snap, err := parse(raw, ".", "1x")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(snap.Results), snap.Results)
	}
	r := snap.Results["BenchmarkFunctional/sequential"]
	if r.NsPerOp != 3050000 || r.AllocsPerOp != 4750 || r.Metrics["sim-ms"] != 16.10 {
		t.Errorf("functional line misparsed: %+v", r)
	}
	hot := snap.Results["BenchmarkPlanServerCacheHot"]
	if hot.NsPerOp != 48000 || hot.BytesPerOp != 0 || hot.AllocsPerOp != 0 || hot.Metrics["qps"] != 20833 {
		t.Errorf("cache-hot line misparsed: %+v", hot)
	}
}

func TestParseNoResults(t *testing.T) {
	if _, err := parse([]byte("PASS\nok \tnestwrf\t0.1s\n"), ".", "1x"); err == nil {
		t.Error("parse of benchmark-free output should error")
	}
}
