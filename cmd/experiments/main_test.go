package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"nestwrf/internal/experiments"
)

// capture runs fn with stdout and stderr redirected and returns what it
// printed to each.
func capture(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	fn()
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	var bo, be bytes.Buffer
	if _, err := bo.ReadFrom(ro); err != nil {
		t.Fatal(err)
	}
	if _, err := be.ReadFrom(re); err != nil {
		t.Fatal(err)
	}
	return bo.String(), be.String()
}

// runIDs executes the named registered experiments sequentially.
func runIDs(t *testing.T, ids ...string) []experiments.Outcome {
	t.Helper()
	exps, err := selectExperiments(strings.Join(ids, ","))
	if err != nil {
		t.Fatal(err)
	}
	return experiments.RunConcurrent(exps, 1)
}

func TestEmitText(t *testing.T) {
	out, _ := capture(t, func() {
		if code := emitAll(runIDs(t, "fig3"), false); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	if !strings.Contains(out, "== fig3:") {
		t.Errorf("text output missing header:\n%s", out)
	}
}

func TestEmitMarkdown(t *testing.T) {
	out, _ := capture(t, func() {
		if code := emitAll(runIDs(t, "fig4"), true); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	if !strings.Contains(out, "### fig4:") {
		t.Errorf("markdown output missing header:\n%s", out)
	}
}

func TestSelectExperimentsList(t *testing.T) {
	exps, err := selectExperiments("fig4, fig3,fig56")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(exps))
	for i, e := range exps {
		got[i] = e.ID
	}
	want := []string{"fig4", "fig3", "fig56"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v (order preserved)", got, want)
		}
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	if _, err := selectExperiments("fig3,nope"); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := selectExperiments(",,"); err == nil {
		t.Error("empty list should fail")
	}
}

// emitAll must keep going past a failing experiment, print the
// surviving tables, summarize the failures, and return non-zero.
func TestEmitAllContinuesPastFailure(t *testing.T) {
	broken := experiments.Experiment{
		ID:    "broken",
		Title: "always fails",
		Run: func() (*experiments.Table, error) {
			return nil, os.ErrInvalid
		},
	}
	fig3, ok := experiments.ByID("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	outcomes := experiments.RunConcurrent([]experiments.Experiment{broken, fig3}, 1)
	out, errOut := capture(t, func() {
		if code := emitAll(outcomes, false); code != 1 {
			t.Errorf("exit code = %d, want 1", code)
		}
	})
	if !strings.Contains(out, "== fig3:") {
		t.Errorf("fig3 should still be printed after the failure:\n%s", out)
	}
	if !strings.Contains(errOut, "broken") || !strings.Contains(errOut, "1 of 2 experiments failed") {
		t.Errorf("failure summary missing:\n%s", errOut)
	}
}
