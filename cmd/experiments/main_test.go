package main

import (
	"bytes"
	"os"
	"testing"

	"nestwrf/internal/experiments"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestEmitText(t *testing.T) {
	e, ok := experiments.ByID("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	out, err := capture(t, func() error { return emit(e, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(out), []byte("== fig3:")) {
		t.Errorf("text output missing header:\n%s", out)
	}
}

func TestEmitMarkdown(t *testing.T) {
	e, ok := experiments.ByID("fig4")
	if !ok {
		t.Fatal("fig4 not registered")
	}
	out, err := capture(t, func() error { return emit(e, true) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(out), []byte("### fig4:")) {
		t.Errorf("markdown output missing header:\n%s", out)
	}
}

func TestEmitPropagatesErrors(t *testing.T) {
	broken := experiments.Experiment{
		ID:    "broken",
		Title: "always fails",
		Run: func() (*experiments.Table, error) {
			return nil, os.ErrInvalid
		},
	}
	if _, err := capture(t, func() error { return emit(broken, false) }); err == nil {
		t.Error("emit should propagate experiment errors")
	}
}
