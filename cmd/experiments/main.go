// Command experiments regenerates the tables and figures of the
// paper's evaluation on the virtual-time simulator.
//
// Usage:
//
//	experiments -list            # list experiment ids
//	experiments -run fig8        # run one experiment
//	experiments -all             # run everything (text)
//	experiments -all -md         # run everything (markdown, for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"nestwrf/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *run != "":
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		if err := emit(e, *md); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := emit(e, *md); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(e experiments.Experiment, md bool) error {
	t, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if md {
		fmt.Println(t.Markdown())
	} else {
		fmt.Println(t.String())
	}
	return nil
}
