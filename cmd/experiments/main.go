// Command experiments regenerates the tables and figures of the
// paper's evaluation on the virtual-time simulator.
//
// Usage:
//
//	experiments -list                # list experiment ids
//	experiments -run fig8            # run one experiment
//	experiments -run fig8,tab1,nsib  # run several, in the given order
//	experiments -all                 # run everything (text)
//	experiments -all -md             # run everything (markdown, for EXPERIMENTS.md)
//	experiments -all -parallel 8     # fan out over 8 workers (same output)
//
// Experiments are fanned out over -parallel workers (default: the
// number of CPUs), and the heavy experiments additionally fan out over
// their independent configurations. Virtual time keeps every result
// deterministic, so the output is byte-identical to -parallel 1.
//
// -all runs every experiment even when some fail; the failures are
// summarized on stderr and the exit status is non-zero.
package main

import (
	"expvar"
	"flag"
	"fmt"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nestwrf/internal/experiments"
	"nestwrf/internal/planserve"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "run experiments by id (comma-separated list)")
	all := flag.Bool("all", false, "run every experiment")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent experiments and per-experiment configurations")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address while running, e.g. localhost:6060")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	experiments.SetParallelism(*parallel)
	var stopDebug func() error
	if *debugAddr != "" {
		stopDebug = startDebugServer(*debugAddr)
	}

	// The work runs inside realMain so the profile defers flush before
	// os.Exit; os.Exit itself would skip them.
	code := realMain(*list, *run, *all, *md, *parallel, *cpuProfile, *memProfile)
	if stopDebug != nil {
		// Shut the debug server down before exiting so a serve failure
		// is reported rather than lost in an orphaned goroutine.
		if err := stopDebug(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: debug server: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func realMain(list bool, run string, all, md bool, parallel int, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}

	switch {
	case list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	case run != "":
		exps, err := selectExperiments(run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v; try -list\n", err)
			return 2
		}
		return emitAll(experiments.RunConcurrent(exps, parallel), md)
	case all:
		return emitAll(experiments.RunAll(parallel), md)
	default:
		flag.Usage()
		return 2
	}
}

// startDebugServer serves the process's expvar and pprof endpoints in
// the background so long experiment sweeps can be profiled live. The
// handlers register on http.DefaultServeMux via their package imports
// (a nil handler serves that mux); a listen failure is fatal so a
// typoed address does not silently run unprofiled. The returned stop
// function shuts the server down gracefully and surfaces any serve
// error.
func startDebugServer(addr string) func() error {
	expvar.NewString("nestwrf_component").Set("experiments")
	bound, stop, err := planserve.StartServer(addr, nil, 2*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: debug server on %s: %v\n", addr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof and /debug/vars\n", bound)
	return stop
}

// selectExperiments resolves a comma-separated id list in the order
// given.
func selectExperiments(spec string) ([]experiments.Experiment, error) {
	var exps []experiments.Experiment
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", spec)
	}
	return exps, nil
}

// emitAll prints every successful table in order, reports failures on
// stderr, and returns the process exit code: 0 when everything
// succeeded, 1 otherwise.
func emitAll(outcomes []experiments.Outcome, md bool) int {
	var failed []string
	for _, o := range outcomes {
		if o.Err != nil {
			failed = append(failed, o.Experiment.ID)
			fmt.Fprintf(os.Stderr, "%s: %v\n", o.Experiment.ID, o.Err)
			continue
		}
		if md {
			fmt.Println(o.Table.Markdown())
		} else {
			fmt.Println(o.Table.String())
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d experiments failed: %s\n",
			len(failed), len(outcomes), strings.Join(failed, ", "))
		return 1
	}
	return 0
}
