// Command planserve runs the planning service: an HTTP/JSON server
// answering plan and compare queries over a shared bounded plan cache
// with singleflight deduplication and a worker pool for cache-miss
// planning.
//
// Usage:
//
//	planserve -addr localhost:8080
//	planserve -addr localhost:8080 -cache-size 4096 -workers 8
//	planserve -loadgen http://localhost:8080 -duration 2s -concurrency 16
//
// Endpoints:
//
//	POST /v1/plan     full plan (weights, partitions, mapping quality, cost)
//	POST /v1/compare  sequential-vs-concurrent comparison
//	GET  /v1/stats    plan-cache occupancy and hit/miss/join counters
//	GET  /healthz     liveness
//	GET  /metrics     request counters, latency histograms and quantile summaries (text)
//	GET  /debug/progress  live request/cache effectiveness snapshot (JSON)
//	GET  /debug/vars  expvar (includes the metrics snapshot)
//	GET  /debug/pprof live profiling
//
// Whether a response came from the shared cache is reported in the
// X-Plan-Cache header ("hit" or "miss"); hit and cold bodies are
// byte-identical.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -grace.
//
// -loadgen turns the binary into a load-test client: it hammers a
// running server with the canonical two-typhoon plan query and reports
// sustained throughput and the cache hit ratio. With -churn the client
// cycles through distinct jittered sibling-rect geometries instead,
// exercising the cold-miss planning path, and reports cold (miss) and
// warm (hit) throughput separately.
//
// -snapshot makes the plan cache persistent: the server warm-loads the
// snapshot before accepting traffic (entries whose machine identity no
// longer matches are rejected), saves it every -snapshot-every, and
// saves once more on graceful shutdown — so a restarted server answers
// its first repeat query as a cache hit with a byte-identical body.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
	"nestwrf/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	cacheSize := flag.Int("cache-size", 1024, "maximum cached plans")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent cache-miss planning jobs")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain window")
	loadgen := flag.String("loadgen", "", "run as a load-test client against this base URL instead of serving")
	duration := flag.Duration("duration", 2*time.Second, "loadgen: how long to hammer")
	concurrency := flag.Int("concurrency", 2*runtime.GOMAXPROCS(0), "loadgen: concurrent clients")
	churn := flag.Bool("churn", false,
		"loadgen: cycle distinct jittered geometries (cold-miss mode) instead of one repeated query")
	snapshot := flag.String("snapshot", "",
		"plan-cache snapshot file: warm-load on start, save on shutdown")
	snapshotEvery := flag.Duration("snapshot-every", 0,
		"also save the snapshot at this interval while serving (0 = only on shutdown)")
	traceOut := flag.String("trace-out", "",
		"on shutdown, write a Chrome/Perfetto trace (request -> cache lookup -> driver phases) to this file")
	spansOut := flag.String("spans-out", "", "on shutdown, write the raw span dump (nestwrf/spans/v1 JSON) to this file")
	logLines := flag.Bool("log", false, "structured request logging (slog) to stderr")
	flag.Parse()

	if *loadgen != "" {
		os.Exit(runLoadgen(*loadgen, *duration, *concurrency, *churn))
	}
	os.Exit(serve(serveOpts{
		addr: *addr, cacheSize: *cacheSize, workers: *workers,
		timeout: *timeout, grace: *grace,
		traceOut: *traceOut, spansOut: *spansOut, logLines: *logLines,
		snapshot: *snapshot, snapshotEvery: *snapshotEvery,
	}))
}

// serveOpts bundles the serving-mode flags.
type serveOpts struct {
	addr               string
	cacheSize, workers int
	timeout, grace     time.Duration
	traceOut, spansOut string
	logLines           bool
	snapshot           string
	snapshotEvery      time.Duration
}

// serve runs the planning service until SIGINT/SIGTERM.
func serve(o serveOpts) int {
	reg := metrics.NewRegistry()
	var tracer *telemetry.Tracer
	if o.traceOut != "" || o.spansOut != "" {
		tracer = telemetry.New(telemetry.Config{})
	}
	var logger *slog.Logger
	if o.logLines {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := planserve.New(planserve.Config{
		CacheSize:      o.cacheSize,
		Workers:        o.workers,
		RequestTimeout: o.timeout,
		Metrics:        reg,
		Tracer:         tracer,
		Log:            logger,
	})
	defer srv.Close()

	if o.snapshot != "" {
		loaded, rejected, err := srv.LoadSnapshot(o.snapshot)
		switch {
		case err != nil && os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "planserve: snapshot %s absent, starting cold\n", o.snapshot)
		case err != nil:
			// A bad snapshot degrades to a cold start; it must never
			// keep the service down.
			fmt.Fprintf(os.Stderr, "planserve: snapshot load: %v (starting cold)\n", err)
		default:
			fmt.Fprintf(os.Stderr, "planserve: snapshot %s: warm-loaded %d entries, rejected %d\n",
				o.snapshot, loaded, rejected)
		}
	}

	expvar.NewString("nestwrf_component").Set("planserve")
	expvar.Publish("nestwrf_planserve_metrics", expvar.Func(func() any { return reg.Snapshot() }))

	// The service mux handles its own routes; /debug/* (expvar, pprof)
	// falls through to the default mux, except /debug/progress, which
	// the service itself serves and would otherwise be shadowed.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/progress", srv.Handler())
	mux.Handle("/debug/", http.DefaultServeMux)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planserve: listen %s: %v\n", o.addr, err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.snapshot != "" && o.snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(o.snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if _, err := srv.SaveSnapshot(o.snapshot); err != nil {
						fmt.Fprintf(os.Stderr, "planserve: snapshot save: %v\n", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "planserve: serving on http://%s (cache %d, workers %d)\n",
		ln.Addr(), o.cacheSize, o.workers)
	if err := planserve.ServeUntil(ctx, ln, mux, o.grace); err != nil {
		fmt.Fprintf(os.Stderr, "planserve: %v\n", err)
		return 1
	}
	if o.snapshot != "" {
		// Save after draining but before Close empties the cache.
		saved, err := srv.SaveSnapshot(o.snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planserve: snapshot save: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "planserve: snapshot %s: saved %d entries\n", o.snapshot, saved)
		}
	}
	entries, hits, misses, evictions := srv.CacheStats()
	fmt.Fprintf(os.Stderr, "planserve: shut down cleanly (cache entries %d, hits %d, misses %d, evictions %d, joins %d)\n",
		entries, hits, misses, evictions, srv.CacheJoins())
	if err := writeTraces(tracer, o.traceOut, o.spansOut); err != nil {
		fmt.Fprintf(os.Stderr, "planserve: %v\n", err)
		return 1
	}
	return 0
}

// writeTraces flushes the tracer to the requested output files. A nil
// tracer (tracing disabled) writes nothing and returns nil.
func writeTraces(tr *telemetry.Tracer, traceOut, spansOut string) error {
	if tr == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f, "planserve"); err != nil {
			f.Close()
			return fmt.Errorf("write trace %s: %w", traceOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if spansOut != "" {
		f, err := os.Create(spansOut)
		if err != nil {
			return err
		}
		if err := tr.Dump().EncodeJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write spans %s: %w", spansOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// loadgenBody is the canonical two-typhoon Pacific query (the paper's
// Table 5 configuration shape).
const loadgenBody = `{
	"machine": "bgl",
	"ranks": 256,
	"strategy": "concurrent",
	"alloc": "predicted",
	"mapping": "multilevel",
	"domain": {
		"name": "pacific", "nx": 286, "ny": 307,
		"children": [
			{"name": "t1", "nx": 394, "ny": 418, "ratio": 3, "off_x": 5, "off_y": 5},
			{"name": "t2", "nx": 313, "ny": 337, "ratio": 3, "off_x": 140, "off_y": 150}
		]
	}
}`

// churnVariants is the size of the churn mode's geometry space: each
// variant jitters the two sibling rects on a quantized grid, so a
// churn run issues this many distinct plan-cache keys before cycling.
const churnVariants = 512

// churnBody builds the i-th distinct two-sibling geometry. The four
// jitter axes (8 x 4 x 4 x 4 = 512) move the typhoon nests' sizes and
// one track offset, mimicking ensemble storm-track perturbations.
func churnBody(i int) string {
	v := i % churnVariants
	a := v % 8
	b := (v / 8) % 4
	c := (v / 32) % 4
	d := (v / 128) % 4
	return fmt.Sprintf(`{
		"machine": "bgl",
		"ranks": 256,
		"strategy": "concurrent",
		"alloc": "predicted",
		"mapping": "multilevel",
		"domain": {
			"name": "pacific", "nx": 286, "ny": 307,
			"children": [
				{"name": "t1", "nx": %d, "ny": %d, "ratio": 3, "off_x": 5, "off_y": 5},
				{"name": "t2", "nx": %d, "ny": 337, "ratio": 3, "off_x": %d, "off_y": 150}
			]
		}
	}`, 394-6*a, 418+8*b, 313+10*c, 128+12*d)
}

// runLoadgen hammers base's /v1/plan from workers goroutines for the
// given duration. In the default mode every query is the canonical
// two-typhoon body: the first query warms the cache and the steady
// state measures the cache-hot path. In churn mode the clients cycle
// through churnVariants distinct jittered geometries, so the run
// exercises the cold-miss planning path and reports cold (miss) and
// warm (hit) throughput separately.
func runLoadgen(base string, duration time.Duration, workers int, churn bool) int {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	if !churn {
		if _, err := postPlan(client, base, loadgenBody); err != nil {
			fmt.Fprintf(os.Stderr, "planserve: loadgen warmup: %v\n", err)
			return 1
		}
	}

	var requests, hits, failures, seq atomic.Int64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				body := loadgenBody
				if churn {
					body = churnBody(int(seq.Add(1) - 1))
				}
				hit, err := postPlan(client, base, body)
				if err != nil {
					failures.Add(1)
					continue
				}
				requests.Add(1)
				if hit {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	n := requests.Load()
	h := hits.Load()
	misses := n - h
	fmt.Printf("requests: %d in %.2fs (%d clients)\n", n, elapsed, workers)
	if churn {
		fmt.Printf("cold (miss) throughput: %.0f plan-queries/sec (%d requests)\n",
			float64(misses)/elapsed, misses)
		fmt.Printf("warm (hit) throughput:  %.0f plan-queries/sec (%d requests)\n",
			float64(h)/elapsed, h)
	} else {
		fmt.Printf("throughput: %.0f plan-queries/sec\n", float64(n)/elapsed)
	}
	fmt.Printf("cache hits: %d (%.1f%%), failures: %d\n",
		h, 100*float64(h)/float64(max(n, 1)), failures.Load())
	if failures.Load() > 0 || n == 0 {
		return 1
	}
	return 0
}

// postPlan sends one plan query and reports whether it was a cache
// hit.
func postPlan(client *http.Client, base, body string) (hit bool, err error) {
	resp, err := client.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	return resp.Header.Get(planserve.CacheHeader) == "hit", nil
}
