// Command planserve runs the planning service: an HTTP/JSON server
// answering plan and compare queries over a shared bounded plan cache
// with singleflight deduplication and a worker pool for cache-miss
// planning.
//
// Usage:
//
//	planserve -addr localhost:8080
//	planserve -addr localhost:8080 -cache-size 4096 -workers 8
//	planserve -loadgen http://localhost:8080 -duration 2s -concurrency 16
//
// Endpoints:
//
//	POST /v1/plan     full plan (weights, partitions, mapping quality, cost)
//	POST /v1/compare  sequential-vs-concurrent comparison
//	GET  /v1/stats    plan-cache occupancy and hit/miss/join counters
//	GET  /healthz     liveness
//	GET  /metrics     request counters, latency histograms and quantile summaries (text)
//	GET  /debug/progress  live request/cache effectiveness snapshot (JSON)
//	GET  /debug/vars  expvar (includes the metrics snapshot)
//	GET  /debug/pprof live profiling
//
// Whether a response came from the shared cache is reported in the
// X-Plan-Cache header ("hit" or "miss"); hit and cold bodies are
// byte-identical.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -grace.
//
// -loadgen turns the binary into a load-test client: it hammers a
// running server with the canonical two-typhoon plan query and reports
// sustained throughput and the cache hit ratio.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
	"nestwrf/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	cacheSize := flag.Int("cache-size", 1024, "maximum cached plans")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent cache-miss planning jobs")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain window")
	loadgen := flag.String("loadgen", "", "run as a load-test client against this base URL instead of serving")
	duration := flag.Duration("duration", 2*time.Second, "loadgen: how long to hammer")
	concurrency := flag.Int("concurrency", 2*runtime.GOMAXPROCS(0), "loadgen: concurrent clients")
	traceOut := flag.String("trace-out", "",
		"on shutdown, write a Chrome/Perfetto trace (request -> cache lookup -> driver phases) to this file")
	spansOut := flag.String("spans-out", "", "on shutdown, write the raw span dump (nestwrf/spans/v1 JSON) to this file")
	logLines := flag.Bool("log", false, "structured request logging (slog) to stderr")
	flag.Parse()

	if *loadgen != "" {
		os.Exit(runLoadgen(*loadgen, *duration, *concurrency))
	}
	os.Exit(serve(*addr, *cacheSize, *workers, *timeout, *grace, *traceOut, *spansOut, *logLines))
}

// serve runs the planning service until SIGINT/SIGTERM.
func serve(addr string, cacheSize, workers int, timeout, grace time.Duration, traceOut, spansOut string, logLines bool) int {
	reg := metrics.NewRegistry()
	var tracer *telemetry.Tracer
	if traceOut != "" || spansOut != "" {
		tracer = telemetry.New(telemetry.Config{})
	}
	var logger *slog.Logger
	if logLines {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := planserve.New(planserve.Config{
		CacheSize:      cacheSize,
		Workers:        workers,
		RequestTimeout: timeout,
		Metrics:        reg,
		Tracer:         tracer,
		Log:            logger,
	})
	defer srv.Close()

	expvar.NewString("nestwrf_component").Set("planserve")
	expvar.Publish("nestwrf_planserve_metrics", expvar.Func(func() any { return reg.Snapshot() }))

	// The service mux handles its own routes; /debug/* (expvar, pprof)
	// falls through to the default mux, except /debug/progress, which
	// the service itself serves and would otherwise be shadowed.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/progress", srv.Handler())
	mux.Handle("/debug/", http.DefaultServeMux)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planserve: listen %s: %v\n", addr, err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "planserve: serving on http://%s (cache %d, workers %d)\n",
		ln.Addr(), cacheSize, workers)
	if err := planserve.ServeUntil(ctx, ln, mux, grace); err != nil {
		fmt.Fprintf(os.Stderr, "planserve: %v\n", err)
		return 1
	}
	entries, hits, misses, evictions := srv.CacheStats()
	fmt.Fprintf(os.Stderr, "planserve: shut down cleanly (cache entries %d, hits %d, misses %d, evictions %d, joins %d)\n",
		entries, hits, misses, evictions, srv.CacheJoins())
	if err := writeTraces(tracer, traceOut, spansOut); err != nil {
		fmt.Fprintf(os.Stderr, "planserve: %v\n", err)
		return 1
	}
	return 0
}

// writeTraces flushes the tracer to the requested output files. A nil
// tracer (tracing disabled) writes nothing and returns nil.
func writeTraces(tr *telemetry.Tracer, traceOut, spansOut string) error {
	if tr == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f, "planserve"); err != nil {
			f.Close()
			return fmt.Errorf("write trace %s: %w", traceOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if spansOut != "" {
		f, err := os.Create(spansOut)
		if err != nil {
			return err
		}
		if err := tr.Dump().EncodeJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write spans %s: %w", spansOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// loadgenBody is the canonical two-typhoon Pacific query (the paper's
// Table 5 configuration shape).
const loadgenBody = `{
	"machine": "bgl",
	"ranks": 256,
	"strategy": "concurrent",
	"alloc": "predicted",
	"mapping": "multilevel",
	"domain": {
		"name": "pacific", "nx": 286, "ny": 307,
		"children": [
			{"name": "t1", "nx": 394, "ny": 418, "ratio": 3, "off_x": 5, "off_y": 5},
			{"name": "t2", "nx": 313, "ny": 337, "ratio": 3, "off_x": 140, "off_y": 150}
		]
	}
}`

// runLoadgen hammers base's /v1/plan with identical queries from
// workers goroutines for the given duration and reports sustained
// throughput; the first query warms the cache so the steady state
// measures the cache-hot path.
func runLoadgen(base string, duration time.Duration, workers int) int {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	if _, err := postPlan(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "planserve: loadgen warmup: %v\n", err)
		return 1
	}

	var requests, hits, failures atomic.Int64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				hit, err := postPlan(client, base)
				if err != nil {
					failures.Add(1)
					continue
				}
				requests.Add(1)
				if hit {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	n := requests.Load()
	qps := float64(n) / elapsed
	fmt.Printf("requests: %d in %.2fs (%d clients)\n", n, elapsed, workers)
	fmt.Printf("throughput: %.0f plan-queries/sec\n", qps)
	fmt.Printf("cache hits: %d (%.1f%%), failures: %d\n",
		hits.Load(), 100*float64(hits.Load())/float64(max(n, 1)), failures.Load())
	if failures.Load() > 0 || n == 0 {
		return 1
	}
	return 0
}

// postPlan sends one plan query and reports whether it was a cache
// hit.
func postPlan(client *http.Client, base string) (hit bool, err error) {
	resp, err := client.Post(base+"/v1/plan", "application/json", strings.NewReader(loadgenBody))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &e)
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	return resp.Header.Get(planserve.CacheHeader) == "hit", nil
}
