// Command wrfdump inspects forecast files written in the library's
// binary format (the wrfout stand-in produced by EncodeForecast and the
// forecast-visual example).
//
// Usage:
//
//	wrfdump forecast.nwrf              # list records
//	wrfdump -render forecast.nwrf     # list + terminal heatmaps
//	wrfdump -field speed -render f.nwrf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nestwrf"
)

func main() {
	render := flag.Bool("render", false, "draw each record as a terminal heatmap")
	width := flag.Int("width", 48, "heatmap width in characters")
	field := flag.String("field", "height", "field to render: height, hu, hv, speed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wrfdump [-render] [-field height|hu|hv|speed] FILE")
		os.Exit(2)
	}
	var fld nestwrf.ForecastField
	switch *field {
	case "height":
		fld = nestwrf.FieldHeight
	case "hu":
		fld = nestwrf.FieldMomentumU
	case "hv":
		fld = nestwrf.FieldMomentumV
	case "speed":
		fld = nestwrf.FieldSpeed
	default:
		fmt.Fprintf(os.Stderr, "wrfdump: unknown field %q\n", *field)
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrfdump:", err)
		os.Exit(1)
	}
	defer f.Close()

	n := 0
	for {
		domain, step, st, err := nestwrf.DecodeForecast(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrfdump: record %d: %v\n", n, err)
			os.Exit(1)
		}
		n++
		min, max, mass := summarize(st)
		fmt.Printf("record %d: domain %q step %d  %dx%d  h=[%.4f, %.4f]  mass=%.3f\n",
			n, domain, step, st.NX, st.NY, min, max, mass)
		if *render {
			fmt.Print(nestwrf.ForecastASCII(st, fld, *width))
		}
	}
	if n == 0 {
		fmt.Println("no records")
	}
}

func summarize(st *nestwrf.ForecastState) (min, max, mass float64) {
	min, max = st.H[0], st.H[0]
	for _, h := range st.H {
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
		mass += h
	}
	return min, max, mass
}
