package main

import (
	"testing"

	"nestwrf"
)

func TestSummarize(t *testing.T) {
	st := &nestwrf.ForecastState{NX: 2, NY: 2, H: []float64{1, 2, 3, 4},
		HU: make([]float64, 4), HV: make([]float64, 4)}
	min, max, mass := summarize(st)
	if min != 1 || max != 4 || mass != 10 {
		t.Errorf("summarize = %v %v %v", min, max, mass)
	}
}
