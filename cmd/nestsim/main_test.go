package main

import (
	"strings"
	"testing"

	"nestwrf"
)

func TestBuildConfigCustom(t *testing.T) {
	cfg, err := buildConfig("", "286x307", 3, nestFlags{"394x418@5,5", "313x337@140,150"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NX != 286 || cfg.NY != 307 || len(cfg.Children) != 2 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.Children[0].NX != 394 || cfg.Children[0].OffX != 5 {
		t.Errorf("nest 1 = %+v", cfg.Children[0])
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig("", "banana", 3, nestFlags{"10x10@0,0"}); err == nil {
		t.Error("bad parent spec should fail")
	}
	if _, err := buildConfig("", "100x100", 3, nestFlags{"oops"}); err == nil {
		t.Error("bad nest spec should fail")
	}
	if _, err := buildConfig("", "100x100", 3, nil); err == nil {
		t.Error("no nests should fail")
	}
	if _, err := buildConfig("", "100x100", 3, nestFlags{"900x900@0,0"}); err == nil {
		t.Error("out-of-bounds nest should fail")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"table2", "fig10", "fig15", "fig2"} {
		cfg, err := presetConfig(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := presetConfig("nope"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestPickers(t *testing.T) {
	if m, err := pickMachine("BGL"); err != nil || !strings.Contains(m.Name, "L") {
		t.Errorf("bgl: %v %v", m.Name, err)
	}
	if m, err := pickMachine("bgp"); err != nil || !strings.Contains(m.Name, "P") {
		t.Errorf("bgp: %v %v", m.Name, err)
	}
	if _, err := pickMachine("cray"); err == nil {
		t.Error("unknown machine should fail")
	}
	for _, name := range []string{"oblivious", "txyz", "partition", "multilevel"} {
		if _, err := pickMap(name); err != nil {
			t.Errorf("map %s: %v", name, err)
		}
	}
	if _, err := pickMap("x"); err == nil {
		t.Error("unknown map should fail")
	}
	for _, name := range []string{"predicted", "points", "equal"} {
		if _, err := pickAlloc(name); err != nil {
			t.Errorf("alloc %s: %v", name, err)
		}
	}
	if _, err := pickAlloc("x"); err == nil {
		t.Error("unknown alloc should fail")
	}
}

func TestPickAllocAliases(t *testing.T) {
	cases := map[string]nestwrf.AllocPolicy{
		"predicted":        nestwrf.AllocPredicted,
		"points":           nestwrf.AllocNaivePoints,
		"naive":            nestwrf.AllocNaivePoints,
		"naive-points":     nestwrf.AllocNaivePoints,
		"equal":            nestwrf.AllocEqual,
		"strips-predicted": nestwrf.AllocStripsPredicted,
		"strips":           nestwrf.AllocStripsPredicted,
	}
	for in, want := range cases {
		got, err := pickAlloc(in)
		if err != nil || got != want {
			t.Errorf("pickAlloc(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestNestFlags(t *testing.T) {
	var n nestFlags
	if err := n.Set("1x2@3,4"); err != nil {
		t.Fatal(err)
	}
	if err := n.Set("5x6@7,8"); err != nil {
		t.Fatal(err)
	}
	if n.String() != "1x2@3,4,5x6@7,8" {
		t.Errorf("String = %q", n.String())
	}
}
