// Command nestsim plans and simulates nested weather-simulation runs
// with the strategies of Malakar et al. (SC 2012).
//
// Examples:
//
//	# Plan a 4-sibling Pacific run on one BG/L rack: predicted weights,
//	# partitions, mapping quality.
//	nestsim -preset table2 -machine bgl -ranks 1024 -plan
//
//	# Compare the default sequential strategy with concurrent siblings.
//	nestsim -preset table2 -machine bgl -ranks 1024 -compare
//
//	# A custom configuration: parent 286x307, two nests at ratio 3.
//	nestsim -parent 286x307 -nest 394x418@5,5 -nest 313x337@140,150 \
//	        -machine bgp -ranks 4096 -map multilevel -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nestwrf"
)

type nestFlags []string

func (n *nestFlags) String() string { return strings.Join(*n, ",") }
func (n *nestFlags) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	var nests nestFlags
	machineName := flag.String("machine", "bgl", "machine model: bgl or bgp")
	ranks := flag.Int("ranks", 1024, "number of cores (ranks in VN mode)")
	parent := flag.String("parent", "286x307", "parent domain size WxH")
	ratio := flag.Int("ratio", 3, "parent-to-nest refinement ratio")
	preset := flag.String("preset", "", "named configuration: table2, fig10, fig15, fig2")
	mapKind := flag.String("map", "oblivious", "mapping: oblivious, txyz, partition, multilevel")
	allocPolicy := flag.String("alloc", "predicted", "allocation: predicted, strips-predicted, naive-points, equal")
	ioEvery := flag.Int("output-every", 0, "write forecast output every N steps (0 = no I/O)")
	ioMode := flag.String("io-mode", "pnetcdf", "I/O model with -output-every: pnetcdf (collective) or split")
	jsonOut := flag.Bool("json", false, "emit the structured run report (or comparison report with -compare) as JSON")
	showMetrics := flag.Bool("metrics", false, "print the run's metrics registry in text exposition format")
	traceOut := flag.String("trace-out", "", "write the iteration schedule as Chrome trace-event JSON to this file (view in Perfetto)")
	plan := flag.Bool("plan", false, "print the execution plan (weights, partitions, mappings)")
	compare := flag.Bool("compare", false, "compare default sequential vs concurrent strategies")
	showTrace := flag.Bool("trace", false, "render the virtual-time schedule of one iteration")
	campaignSteps := flag.Int("campaign", 0, "run the typhoon-season campaign with N iterations per phase (ignores -preset/-nest)")
	steerRounds := flag.Int("steer", 0, "steer the allocation for up to N rounds from measured phase times")
	svgPath := flag.String("svg", "", "with -plan: write the partition diagram (Fig. 3b style) to this SVG file")
	flag.Var(&nests, "nest", "nested domain WxH@X,Y (repeatable)")
	flag.Parse()

	m0, err := pickMachine(*machineName)
	if err != nil {
		fatal(err)
	}
	if *campaignSteps > 0 {
		runCampaign(m0, *ranks, *campaignSteps)
		return
	}
	cfg, err := buildConfig(*preset, *parent, *ratio, nests)
	if err != nil {
		fatal(err)
	}
	m, err := pickMachine(*machineName)
	if err != nil {
		fatal(err)
	}
	kind, err := pickMap(*mapKind)
	if err != nil {
		fatal(err)
	}
	alloc, err := pickAlloc(*allocPolicy)
	if err != nil {
		fatal(err)
	}

	if !*jsonOut {
		fmt.Printf("configuration: %s parent %dx%d, %d nests, ratio %d\n",
			cfg.Name, cfg.NX, cfg.NY, len(cfg.Children), *ratio)
		for _, c := range cfg.Children {
			fmt.Printf("  %-10s %4dx%-4d at (%d,%d)\n", c.Name, c.NX, c.NY, c.OffX, c.OffY)
		}
		fmt.Printf("machine: %s, %d cores\n\n", m.Name, *ranks)
	}

	if *plan {
		p, err := nestwrf.Plan(cfg, m, *ranks)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("virtual processor grid: %dx%d\n", p.Px, p.Py)
		fmt.Println("predicted execution-time shares and partitions (Algorithm 1):")
		for i, c := range cfg.Children {
			fmt.Printf("  %-10s weight %.3f -> %s (%d cores)\n",
				c.Name, p.Weights[i], p.Rects[i], p.Rects[i].Area())
		}
		fmt.Println("\nmapping quality (average torus hops between neighbours):")
		for _, name := range []string{"oblivious", "txyz", "partition", "multilevel"} {
			if rep, ok := p.MappingReports[name]; ok {
				fmt.Printf("  %-10s parent %.2f, overall %.2f\n", name, rep.ParentAvgHops, rep.OverallAvgHops)
			}
		}
		if *svgPath != "" {
			if err := os.WriteFile(*svgPath, []byte(nestwrf.PartitionsSVG(p)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote partition diagram to %s\n", *svgPath)
		}
		fmt.Println()
	}

	opts := nestwrf.Options{
		Machine:          m,
		Ranks:            *ranks,
		MapKind:          kind,
		Alloc:            alloc,
		OutputEverySteps: *ioEvery,
	}
	if *ioEvery > 0 {
		opts.IOMode, err = nestwrf.ParseIOMode(*ioMode)
		if err != nil {
			fatal(err)
		}
	}
	if *showMetrics {
		opts.Metrics = nestwrf.NewMetricsRegistry()
	}

	if *compare {
		var cmp nestwrf.Comparison
		var rep *nestwrf.ComparisonReport
		if *jsonOut {
			cmp, rep, err = nestwrf.CompareWithReport(cfg, opts)
		} else {
			cmp, err = nestwrf.Compare(cfg, opts)
		}
		if err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			writeTrace(*traceOut,
				nestwrf.TraceProcess{Name: "sequential", Log: nestwrf.TraceIteration(cmp.Default, nestwrf.StrategySequential)},
				nestwrf.TraceProcess{Name: "concurrent", Log: nestwrf.TraceIteration(cmp.Concurrent, nestwrf.StrategyConcurrent)},
			)
		}
		if *jsonOut {
			if err := rep.EncodeJSON(os.Stdout); err != nil {
				fatal(err)
			}
			printMetrics(opts.Metrics)
			return
		}
		fmt.Printf("default sequential:  %.3f s/iteration (wait %.3f s/rank)\n",
			cmp.Default.IterTime, cmp.Default.WaitAvg)
		fmt.Printf("concurrent siblings: %.3f s/iteration (wait %.3f s/rank)\n",
			cmp.Concurrent.IterTime, cmp.Concurrent.WaitAvg)
		fmt.Printf("improvement: %.2f%% integration, %.2f%% MPI_Wait\n",
			cmp.ImprovementPct, cmp.WaitImprovementPct)
		if *ioEvery > 0 {
			fmt.Printf("with I/O: %.3f vs %.3f s/iteration (%.2f%%)\n",
				cmp.Default.Total(), cmp.Concurrent.Total(), cmp.TotalImprovementPct)
		}
		fmt.Println("\nper-sibling nest phases (concurrent):")
		for _, s := range cmp.Concurrent.Siblings {
			fmt.Printf("  %-10s %4d cores %s: step %.3f s, phase %.3f s\n",
				s.Name, s.Ranks, s.Rect, s.StepTime, s.PhaseTime)
		}
		if *showTrace {
			fmt.Println("\nvirtual-time schedule, default sequential:")
			fmt.Print(nestwrf.TraceIteration(cmp.Default, nestwrf.StrategySequential).Render(64))
			fmt.Println("\nvirtual-time schedule, concurrent siblings:")
			fmt.Print(nestwrf.TraceIteration(cmp.Concurrent, nestwrf.StrategyConcurrent).Render(64))
		}
		printMetrics(opts.Metrics)
		return
	}

	if *steerRounds > 0 {
		ctrl := nestwrf.DefaultSteerController()
		ctrl.MaxRounds = *steerRounds
		out, err := nestwrf.Steer(cfg, ctrl, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("steering (%d rounds, converged=%v):\n", len(out.Rounds), out.Converged)
		for i, r := range out.Rounds {
			fmt.Printf("  round %d: %.3f s/iteration, imbalance %.3f\n", i+1, r.IterTime, r.Imbalance)
		}
		return
	}

	if !*plan {
		opts.Strategy = nestwrf.StrategyConcurrent
		var res nestwrf.Result
		var rep *nestwrf.Report
		if *jsonOut {
			res, rep, err = nestwrf.SimulateWithReport(cfg, opts)
		} else {
			res, err = nestwrf.Simulate(cfg, opts)
		}
		if err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			writeTrace(*traceOut,
				nestwrf.TraceProcess{Name: "concurrent", Log: nestwrf.TraceIteration(res, nestwrf.StrategyConcurrent)})
		}
		if *jsonOut {
			if err := rep.EncodeJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Printf("concurrent strategy: %.3f s/iteration, wait %.3f s/rank, %.2f avg hops\n",
				res.IterTime, res.WaitAvg, res.HopsAvg)
			if *ioEvery > 0 {
				fmt.Printf("I/O: %.3f s/iteration\n", res.IOTime)
			}
		}
		printMetrics(opts.Metrics)
	}
}

// writeTrace writes the logs as a Chrome trace-event file.
func writeTrace(path string, procs ...nestwrf.TraceProcess) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := nestwrf.WriteChromeTrace(f, procs...); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in ui.perfetto.dev)\n", path)
}

// printMetrics renders the registry on stderr so it composes with
// -json on stdout; a nil registry (no -metrics flag) prints nothing.
func printMetrics(reg *nestwrf.MetricsRegistry) {
	if reg == nil {
		return
	}
	fmt.Fprint(os.Stderr, "\n"+reg.Snapshot().Text())
}

func buildConfig(preset, parent string, ratio int, nests nestFlags) (*nestwrf.Domain, error) {
	if preset != "" {
		return presetConfig(preset)
	}
	var pw, ph int
	if _, err := fmt.Sscanf(parent, "%dx%d", &pw, &ph); err != nil {
		return nil, fmt.Errorf("bad -parent %q: want WxH", parent)
	}
	cfg := nestwrf.NewDomain("custom", pw, ph)
	for i, spec := range nests {
		var w, h, x, y int
		if _, err := fmt.Sscanf(spec, "%dx%d@%d,%d", &w, &h, &x, &y); err != nil {
			return nil, fmt.Errorf("bad -nest %q: want WxH@X,Y", spec)
		}
		cfg.AddChild(fmt.Sprintf("nest%d", i+1), w, h, ratio, x, y)
	}
	if len(cfg.Children) == 0 {
		return nil, fmt.Errorf("no nests given; use -nest or -preset")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func presetConfig(name string) (*nestwrf.Domain, error) {
	mk := func(pnx, pny int, sibs [][4]int) *nestwrf.Domain {
		cfg := nestwrf.NewDomain(name, pnx, pny)
		for i, s := range sibs {
			cfg.AddChild(fmt.Sprintf("sibling%d", i+1), s[0], s[1], 3, s[2], s[3])
		}
		return cfg
	}
	switch name {
	case "table2":
		return mk(286, 307, [][4]int{{394, 418, 5, 5}, {232, 202, 150, 10}, {232, 256, 10, 160}, {313, 337, 140, 150}}), nil
	case "fig10":
		return mk(640, 660, [][4]int{{586, 643, 10, 10}, {856, 919, 230, 10}, {925, 850, 10, 330}}), nil
	case "fig15":
		return mk(286, 307, [][4]int{{259, 229, 10, 20}, {259, 229, 150, 180}}), nil
	case "fig2":
		return mk(286, 307, [][4]int{{415, 445, 50, 50}}), nil
	}
	return nil, fmt.Errorf("unknown preset %q (table2, fig10, fig15, fig2)", name)
}

func pickMachine(name string) (nestwrf.Machine, error) {
	switch strings.ToLower(name) {
	case "bgl", "bg/l":
		return nestwrf.BlueGeneL(), nil
	case "bgp", "bg/p":
		return nestwrf.BlueGeneP(), nil
	}
	return nestwrf.Machine{}, fmt.Errorf("unknown machine %q (bgl, bgp)", name)
}

func pickMap(name string) (nestwrf.MapKind, error) {
	return nestwrf.ParseMapKind(name)
}

func pickAlloc(name string) (nestwrf.AllocPolicy, error) {
	return nestwrf.ParseAllocPolicy(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nestsim:", err)
	os.Exit(1)
}

func runCampaign(m nestwrf.Machine, ranks, steps int) {
	res, err := nestwrf.RunCampaign(nestwrf.TyphoonSeason(steps), nestwrf.Options{
		Machine: m,
		Ranks:   ranks,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("typhoon-season campaign on %s, %d cores, %d iterations/phase\n\n", m.Name, ranks, steps)
	fmt.Printf("%-12s %-6s %-14s %-16s %s\n", "phase", "nests", "default s/it", "concurrent s/it", "redistribution")
	for _, ph := range res.Phases {
		fmt.Printf("%-12s %-6d %-14.3f %-16.3f %.3f s\n",
			ph.Name, ph.Nests, ph.DefaultIter, ph.ConcIter, ph.Redistribute)
	}
	fmt.Printf("\ntotals: default %.1f s, concurrent %.1f s (%.1f%% improvement, %d re-plans)\n",
		res.TotalDefault, res.TotalConcurrent, res.ImprovementPct(), res.Replans)
}
