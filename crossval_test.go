package nestwrf_test

// Cross-validation between the two worlds of the library: the
// virtual-time cost model (driver) and the functional mini-WRF (wrfsim)
// must agree on the paper's qualitative claims for the same
// configuration — concurrent beats sequential, and the topology-aware
// fold beats the oblivious mapping.

import (
	"strings"
	"testing"

	"nestwrf"
)

func crossConfig() *nestwrf.Domain {
	cfg := nestwrf.NewDomain("parent", 64, 64)
	cfg.AddChild("nest1", 60, 48, 3, 2, 2)
	cfg.AddChild("nest2", 48, 36, 3, 30, 30)
	return cfg
}

func TestModeledAndFunctionalAgreeOnStrategy(t *testing.T) {
	cfg := crossConfig()

	// Modeled verdict at 32 ranks.
	cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   32,
		MapKind: nestwrf.MapOblivious,
		Alloc:   nestwrf.AllocNaivePoints, // same weights the functional run uses
	})
	if err != nil {
		t.Fatal(err)
	}
	modeledWin := cmp.Concurrent.IterTime < cmp.Default.IterTime

	// Functional verdict with communication-significant transfer times.
	run := func(s nestwrf.FunctionalStrategy) float64 {
		out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
			Ranks:     32,
			Steps:     3,
			Strategy:  s,
			PointCost: 1e-6,
			TM:        nestwrf.AlphaBeta{Alpha: 5e-5, Beta: 1e-9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.MaxClock
	}
	functionalWin := run(nestwrf.FunctionalConcurrent) < run(nestwrf.FunctionalSequential)

	if modeledWin != functionalWin {
		t.Errorf("worlds disagree: modeled concurrent-wins=%v, functional concurrent-wins=%v",
			modeledWin, functionalWin)
	}
	if !modeledWin {
		t.Error("both worlds should find the concurrent strategy faster here")
	}
}

func TestModeledAndFunctionalAgreeOnMapping(t *testing.T) {
	cfg := crossConfig()

	// Modeled: multilevel <= oblivious at 32 ranks.
	run := func(kind nestwrf.MapKind) float64 {
		res, err := nestwrf.Simulate(cfg, nestwrf.Options{
			Machine:  nestwrf.BlueGeneL(),
			Ranks:    32,
			Strategy: nestwrf.StrategyConcurrent,
			MapKind:  kind,
			Alloc:    nestwrf.AllocNaivePoints,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IterTime
	}
	modeledGain := run(nestwrf.MapOblivious) - run(nestwrf.MapMultiLevel)

	// Functional: topology time model with heavy per-hop latency.
	m := nestwrf.BlueGeneL()
	m.Net.LatencyPerHop = 2e-5
	m.Net.Overhead = 1e-5
	frun := func(kind nestwrf.MapKind) float64 {
		tm, err := nestwrf.NewTopologyTimeModel(kind, m, 32, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := nestwrf.RunFunctional(cfg, nestwrf.FunctionalOptions{
			Ranks:     32,
			Steps:     3,
			Strategy:  nestwrf.FunctionalConcurrent,
			PointCost: 1e-6,
			TM:        tm,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.MaxClock
	}
	functionalGain := frun(nestwrf.MapOblivious) - frun(nestwrf.MapMultiLevel)

	if modeledGain < 0 || functionalGain < 0 {
		t.Errorf("fold should not lose in either world: modeled %+e, functional %+e",
			modeledGain, functionalGain)
	}
}

func TestPartitionsSVGFacade(t *testing.T) {
	plan, err := nestwrf.Plan(table2(), nestwrf.BlueGeneL(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	svg := nestwrf.PartitionsSVG(plan)
	if !strings.HasPrefix(svg, "<svg ") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "<rect ") != len(plan.Rects)+1 {
		t.Errorf("rect count %d for %d partitions", strings.Count(svg, "<rect "), len(plan.Rects))
	}
}
