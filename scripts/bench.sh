#!/bin/sh
# bench.sh — take a benchmark snapshot for a performance PR.
#
# Usage:
#   scripts/bench.sh [output.json] [bench-regex]
#
# Defaults snapshot the headline benchmarks the perf PRs track
# (per-iteration model, Table 1 wait-time sweep, full experiment suite,
# functional mini-WRF run, functional rank sweep up to 8192, modeled
# simulation sweep, cold-planning batch) at one iteration
# each with -benchmem, matching the committed BENCH_<pr>.json files.
# Pass '.' as the regex for the full suite.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_snapshot.json}"
BENCH="${2:-PerIteration85\$|Table1Wait\$|AllExperimentsSequential\$|Functional\$|FunctionalRanks\$|Simulate\$|ColdPlan\$}"

go run ./cmd/benchsnap -bench "$BENCH" -benchtime 1x -o "$OUT"
