#!/bin/sh
# loadtest.sh — start the plan server, hammer it with the built-in
# load generator, and report sustained cache-hot throughput plus the
# in-process handler benchmark.
#
# Usage:
#   scripts/loadtest.sh [-churn] [duration] [concurrency]
#
# The script builds cmd/planserve, serves on an ephemeral localhost
# port, runs the loadgen client for the given duration (default 2s)
# with the given client count (default 2x CPUs), verifies a clean
# SIGTERM shutdown, and finishes with the in-process cache-hot
# benchmark (the number committed in BENCH_6.json).
#
# With -churn the loadgen cycles through distinct jittered sibling-rect
# geometries instead of repeating one query, exercising the cold-miss
# planning path (parallel BuildPlan + miss coalescing); the report
# separates cold (miss) from warm (hit) throughput, and the closing
# benchmark is the cold-planning batch instead of the cache-hot path.
set -eu
cd "$(dirname "$0")/.."

CHURN=""
if [ "${1:-}" = "-churn" ]; then
  CHURN="-churn"
  shift
fi
DURATION="${1:-2s}"
CONCURRENCY="${2:-0}"
ADDR="localhost:18080"

BIN="$(mktemp -d)/planserve"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/planserve

"$BIN" -addr "$ADDR" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the server to come up.
i=0
until "$BIN" -loadgen "http://$ADDR" -duration 1ms -concurrency 1 >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 50 ] || { echo "loadtest: server did not come up" >&2; exit 1; }
  sleep 0.1
done

if [ -n "$CHURN" ]; then
  echo "== loadgen over TCP, churn / cold-miss mode ($DURATION) =="
else
  echo "== loadgen over TCP ($DURATION) =="
fi
if [ "$CONCURRENCY" -gt 0 ]; then
  "$BIN" -loadgen "http://$ADDR" $CHURN -duration "$DURATION" -concurrency "$CONCURRENCY"
else
  "$BIN" -loadgen "http://$ADDR" $CHURN -duration "$DURATION"
fi

kill -TERM "$SRV"
wait "$SRV" || { echo "loadtest: server exited uncleanly" >&2; exit 1; }
trap 'rm -rf "$(dirname "$BIN")"' EXIT

echo
if [ -n "$CHURN" ]; then
  echo "== in-process cold-planning benchmark (sequential vs parallel) =="
  go test . -run '^$' -bench 'ColdPlan$' -benchtime 1x -benchmem
else
  echo "== in-process handler benchmark (cache-hot) =="
  go test ./internal/planserve -run '^$' -bench 'PlanQueryCacheHot$' -benchtime 2s -benchmem
fi
