#!/bin/sh
# bench_compare.sh — re-run the headline benchmarks and diff against a
# committed snapshot, flagging regressions beyond a threshold.
#
# Usage:
#   scripts/bench_compare.sh [baseline.json] [threshold-pct] [bench-regex]
#
# Exits non-zero when any benchmark's ns/op or allocs/op grew by more
# than the threshold (default 15%). Single-iteration snapshots are
# noisy; treat a failure as "look at the numbers", not proof. The most
# recent committed BENCH_<pr>.json is the natural baseline:
#
#   scripts/bench_compare.sh "$(ls BENCH_*.json | sort -V | tail -1)"
set -eu
cd "$(dirname "$0")/.."

BASE="${1:-$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)}"
THRESHOLD="${2:-15}"
BENCH="${3:-PerIteration85\$|Table1Wait\$|AllExperimentsSequential\$|Functional\$|FunctionalRanks\$|Simulate\$|ColdPlan\$}"

if [ -z "$BASE" ] || [ ! -f "$BASE" ]; then
    echo "bench_compare.sh: no baseline snapshot found (pass one, or commit a BENCH_<pr>.json)" >&2
    exit 2
fi

echo "comparing against $BASE (threshold ${THRESHOLD}%)" >&2
go run ./cmd/benchsnap -bench "$BENCH" -benchtime 1x \
    -compare "$BASE" -threshold "$THRESHOLD"
