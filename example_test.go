package nestwrf_test

import (
	"fmt"

	"nestwrf"
)

// ExamplePlan shows the paper's pipeline: predict sibling execution
// times, partition the processor grid with Algorithm 1, and inspect the
// mapping quality. All timings are deterministic virtual times, so the
// output is stable.
func ExamplePlan() {
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("east", 394, 418, 3, 5, 5)
	cfg.AddChild("west", 313, 337, 3, 140, 150)

	plan, err := nestwrf.Plan(cfg, nestwrf.BlueGeneL(), 1024)
	if err != nil {
		panic(err)
	}
	fmt.Printf("grid %dx%d\n", plan.Px, plan.Py)
	for i, c := range cfg.Children {
		fmt.Printf("%s: share %.2f, partition %d cores\n",
			c.Name, plan.Weights[i], plan.Rects[i].Area())
	}
	// Output:
	// grid 32x32
	// east: share 0.60, partition 608 cores
	// west: share 0.40, partition 416 cores
}

// ExampleCompare contrasts WRF's default sequential nest execution with
// the paper's concurrent strategy on one BG/L rack.
func ExampleCompare() {
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("east", 394, 418, 3, 5, 5)
	cfg.AddChild("west", 313, 337, 3, 140, 150)

	cmp, err := nestwrf.Compare(cfg, nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   1024,
		MapKind: nestwrf.MapMultiLevel,
		Alloc:   nestwrf.AllocPredicted,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("concurrent wins: %v\n", cmp.Concurrent.IterTime < cmp.Default.IterTime)
	fmt.Printf("siblings ran on %d and %d cores\n",
		cmp.Concurrent.Siblings[0].Ranks, cmp.Concurrent.Siblings[1].Ranks)
	// Output:
	// concurrent wins: true
	// siblings ran on 608 and 416 cores
}

// ExampleRunFunctional runs the real shallow-water mini-WRF: both
// strategies compute the same forecast.
func ExampleRunFunctional() {
	cfg := nestwrf.NewDomain("parent", 48, 48)
	cfg.AddChild("nest", 36, 36, 3, 4, 4)

	opt := nestwrf.FunctionalOptions{Ranks: 8, Steps: 2}
	opt.Strategy = nestwrf.FunctionalSequential
	seq, err := nestwrf.RunFunctional(cfg, opt)
	if err != nil {
		panic(err)
	}
	opt.Strategy = nestwrf.FunctionalConcurrent
	con, err := nestwrf.RunFunctional(cfg, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fields agree within 1e-9: %v\n", seq.Parent.MaxDiff(con.Parent) < 1e-9)
	// Output:
	// fields agree within 1e-9: true
}

// ExampleSteer lets measured phase times correct a deliberately bad
// (equal-split) allocation.
func ExampleSteer() {
	cfg := nestwrf.NewDomain("pacific", 286, 307)
	cfg.AddChild("big", 394, 418, 3, 5, 5)
	cfg.AddChild("small", 232, 202, 3, 150, 10)

	out, err := nestwrf.Steer(cfg, nestwrf.DefaultSteerController(), nestwrf.Options{
		Machine: nestwrf.BlueGeneL(),
		Ranks:   1024,
		Alloc:   nestwrf.AllocEqual,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("steering improved the run: %v\n", out.Final.IterTime <= out.Rounds[0].IterTime)
	// Output:
	// steering improved the run: true
}
