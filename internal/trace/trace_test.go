package trace

import (
	"strings"
	"testing"
)

func TestAddAndDuration(t *testing.T) {
	var l Log
	l.Add("a", "lane1", 0, 1)
	l.Add("b", "lane2", 0.5, 2)
	l.Add("dropped", "lane1", 3, 3)  // zero length
	l.Add("dropped2", "lane1", 5, 4) // negative length
	if len(l.Spans) != 2 {
		t.Fatalf("spans = %d", len(l.Spans))
	}
	if l.Duration() != 2 {
		t.Errorf("Duration = %v", l.Duration())
	}
}

func TestAddOnNil(t *testing.T) {
	var l *Log
	l.Add("x", "y", 0, 1) // must not panic
}

// Every query method must be nil-receiver safe, like Add.
func TestNilReceiverQueries(t *testing.T) {
	var l *Log
	if d := l.Duration(); d != 0 {
		t.Errorf("nil Duration = %v", d)
	}
	if lanes := l.Lanes(); lanes != nil {
		t.Errorf("nil Lanes = %v", lanes)
	}
	if out := l.Render(40); !strings.Contains(out, "empty") {
		t.Errorf("nil Render = %q", out)
	}
	if s := l.Summary(); s != "" {
		t.Errorf("nil Summary = %q", s)
	}
}

func TestLanesOrder(t *testing.T) {
	var l Log
	l.Add("a", "z-lane", 0, 1)
	l.Add("b", "a-lane", 0, 1)
	l.Add("c", "z-lane", 1, 2)
	lanes := l.Lanes()
	if len(lanes) != 2 || lanes[0] != "z-lane" || lanes[1] != "a-lane" {
		t.Errorf("lanes = %v (want first-appearance order)", lanes)
	}
}

func TestRender(t *testing.T) {
	var l Log
	l.Add("parent", "all ranks", 0, 1)
	l.Add("nest1", "part1", 1, 3)
	l.Add("nest2", "part2", 1, 2.5)
	out := l.Render(60)
	if !strings.Contains(out, "all ranks") || !strings.Contains(out, "part1") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "parent") || !strings.Contains(out, "nest1") {
		t.Errorf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 lanes
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Parallel lanes start at the same column: nest bars begin after the
	// parent bar (1/3 of the width).
	if strings.Index(lines[2], "nest1") <= strings.Index(lines[1], "parent") {
		t.Errorf("nest1 should start after parent begins:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var l Log
	if got := l.Render(40); !strings.Contains(got, "empty") {
		t.Errorf("empty render = %q", got)
	}
}

func TestRenderNarrowWidthClamped(t *testing.T) {
	var l Log
	l.Add("x", "lane", 0, 1)
	out := l.Render(1)
	if len(out) == 0 {
		t.Error("narrow render empty")
	}
}

func TestSummaryOrder(t *testing.T) {
	var l Log
	l.Add("second", "lane", 1, 2)
	l.Add("first", "lane", 0, 1)
	s := l.Summary()
	if strings.Index(s, "first") > strings.Index(s, "second") {
		t.Errorf("summary not time-ordered:\n%s", s)
	}
}

// A duration string wider than the plot used to drive the header pad
// negative and panic strings.Repeat.
func TestRenderHugeDurationHeader(t *testing.T) {
	var l Log
	l.Add("x", "lane", 0, 1e15)
	out := l.Render(20)
	if !strings.Contains(out, "lane") {
		t.Errorf("render = %q", out)
	}
}
