package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// ChromeProcess names one Log for export. Each process becomes a pid
// in the Chrome trace, so two strategies (e.g. sequential vs
// concurrent) can be compared side by side in one Perfetto view.
type ChromeProcess struct {
	Name string
	Log  *Log
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order is the serialized key order, which the golden test pins.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Cat  string            `json:"cat,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the logs in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Virtual seconds map to trace microseconds. Lanes become threads in
// first-appearance order; spans become complete ("X") events sorted by
// start time, so the output is deterministic for a given input.
func WriteChrome(w io.Writer, procs ...ChromeProcess) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pi, p := range procs {
		pid := pi + 1
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("process %d", pid)
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": name},
		})
		lanes := p.Log.Lanes()
		tids := make(map[string]int, len(lanes))
		for li, ln := range lanes {
			tids[ln] = li + 1
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: li + 1,
				Args: map[string]string{"name": ln},
			})
		}
		var spans []Span
		if p.Log != nil {
			spans = append(spans, p.Log.Spans...)
		}
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			if tids[spans[i].Lane] != tids[spans[j].Lane] {
				return tids[spans[i].Lane] < tids[spans[j].Lane]
			}
			return spans[i].Name < spans[j].Name
		})
		for _, s := range spans {
			dur := int64(math.Round((s.End - s.Start) * 1e6))
			if dur < 1 {
				dur = 1 // keep sub-microsecond spans visible
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.Name, Ph: "X", Cat: "phase", Pid: pid, Tid: tids[s.Lane],
				Ts: int64(math.Round(s.Start * 1e6)), Dur: dur,
				Args: s.Args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
