package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func chromeFixture() (Log, Log) {
	var seq, con Log
	seq.Add("parent", "all ranks", 0, 1)
	seq.Add("nest1", "all ranks", 1, 3)
	seq.Add("nest2", "all ranks", 3, 4.5)
	con.Add("parent", "all ranks", 0, 1)
	con.Add("nest1", "part1", 1, 2.5)
	con.Add("nest2", "part2", 1, 2.4)
	return seq, con
}

// TestWriteChromeGolden pins the exporter's exact bytes for a fixed
// two-process trace: any schema or ordering drift fails the test.
func TestWriteChromeGolden(t *testing.T) {
	seq, con := chromeFixture()
	var buf bytes.Buffer
	err := WriteChrome(&buf,
		ChromeProcess{Name: "sequential", Log: &seq},
		ChromeProcess{Name: "concurrent", Log: &con},
	)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// Byte stability: a second write of the same input is identical.
	var again bytes.Buffer
	if err := WriteChrome(&again,
		ChromeProcess{Name: "sequential", Log: &seq},
		ChromeProcess{Name: "concurrent", Log: &con},
	); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two writes of the same trace differ")
	}
}

// TestWriteChromeWellFormed decodes the output as generic JSON and
// checks the trace-event invariants Perfetto relies on.
func TestWriteChromeWellFormed(t *testing.T) {
	seq, con := chromeFixture()
	var buf bytes.Buffer
	if err := WriteChrome(&buf,
		ChromeProcess{Name: "sequential", Log: &seq},
		ChromeProcess{Name: "concurrent", Log: &con},
	); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   *float64          `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	var lastTs = map[int]float64{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == "" {
				t.Errorf("metadata event without name: %+v", e)
			}
		case "X":
			complete++
			if e.Name == "" || e.Pid < 1 || e.Tid < 1 || e.Ts == nil || e.Dur < 1 {
				t.Errorf("bad complete event: %+v", e)
			}
			if *e.Ts < lastTs[e.Pid] {
				t.Errorf("events not time-sorted within pid %d: %+v", e.Pid, e)
			}
			lastTs[e.Pid] = *e.Ts
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 2 process_name + 1+3 thread_name metadata, 3+3 spans.
	if meta != 6 || complete != 6 {
		t.Errorf("meta = %d, complete = %d, want 6 and 6", meta, complete)
	}
}

// TestWriteChromeEmpty keeps the exporter total on degenerate input.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, ChromeProcess{Name: "empty", Log: nil}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("traceEvents key missing")
	}
}
