// Package trace records the virtual-time phases of one simulated
// iteration (parent step, per-sibling nest phases, I/O) and renders
// them as a text Gantt chart, making the difference between the
// sequential and concurrent schedules visible at a glance.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one timed phase on one lane (a processor group).
type Span struct {
	Name       string
	Lane       string
	Start, End float64 // virtual seconds within the iteration
	// Args, when non-nil, are carried into the Chrome export as the
	// event's args (key/value annotations visible in Perfetto). The
	// text renderers ignore them.
	Args map[string]string
}

// Log collects spans.
type Log struct {
	Spans []Span
}

// Add records a span; zero- or negative-length spans are dropped.
func (l *Log) Add(name, lane string, start, end float64) {
	if l == nil || end <= start {
		return
	}
	l.Spans = append(l.Spans, Span{Name: name, Lane: lane, Start: start, End: end})
}

// Duration returns the end of the latest span. A nil log has duration
// zero.
func (l *Log) Duration() float64 {
	if l == nil {
		return 0
	}
	var d float64
	for _, s := range l.Spans {
		if s.End > d {
			d = s.End
		}
	}
	return d
}

// Lanes returns the distinct lanes in first-appearance order. A nil
// log has no lanes.
func (l *Log) Lanes() []string {
	if l == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, s := range l.Spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	return out
}

// Render draws the log as a text Gantt chart with the given plot width
// in characters. Each lane is one row; spans appear as labelled bars.
// A nil log renders as an empty trace.
func (l *Log) Render(width int) string {
	if l == nil || len(l.Spans) == 0 {
		return "(empty trace)\n"
	}
	if width < 20 {
		width = 20
	}
	total := l.Duration()
	if total <= 0 {
		return "(empty trace)\n"
	}
	lanes := l.Lanes()
	laneWidth := 0
	for _, ln := range lanes {
		if len(ln) > laneWidth {
			laneWidth = len(ln)
		}
	}
	scale := float64(width) / total

	var b strings.Builder
	// The pad squeezes to nothing when the duration string is wider
	// than the plot; strings.Repeat panics on a negative count.
	pad := width - len(fmt.Sprintf("%.3fs", total)) - 1
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(&b, "%*s  0%s%.3fs\n", laneWidth, "", strings.Repeat(" ", pad), total)
	for _, ln := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		spans := make([]Span, 0)
		for _, s := range l.Spans {
			if s.Lane == ln {
				spans = append(spans, s)
			}
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			from := int(s.Start * scale)
			to := int(s.End * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			label := s.Name
			for i := from; i < to; i++ {
				ch := byte('#')
				if li := i - from; li < len(label) {
					ch = label[li]
				}
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "%*s |%s|\n", laneWidth, ln, row)
	}
	return b.String()
}

// Summary lists the spans in order with their times. A nil log has an
// empty summary.
func (l *Log) Summary() string {
	if l == nil {
		return ""
	}
	spans := append([]Span(nil), l.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Lane < spans[j].Lane
	})
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "%8.3f - %8.3f  %-20s %s\n", s.Start, s.End, s.Lane, s.Name)
	}
	return b.String()
}
