package iosim

import (
	"math"
	"strings"
	"testing"
)

func params() Params {
	return Params{
		BaseLatency:         5e-3,
		PerWriterOverhead:   3.5e-4,
		AggregateBandwidth:  2e9,
		PerProcessBandwidth: 8e6,
	}
}

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := params()
	bad.AggregateBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero aggregate bandwidth should fail")
	}
	bad = params()
	bad.BaseLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative latency should fail")
	}
}

// The PnetCDF scalability problem of Fig. 13(b): for a fixed output
// size, collective write time increases with the number of writers.
func TestCollectiveTimeGrowsWithWriters(t *testing.T) {
	p := params()
	bytes := 100e6
	prev := 0.0
	for _, w := range []int{512, 1024, 2048, 4096, 8192} {
		got := p.CollectiveWriteTime(w, bytes)
		if got <= prev {
			t.Errorf("writers=%d: time %v not increasing (prev %v)", w, got, prev)
		}
		prev = got
	}
}

// The paper's fix: fewer ranks writing each sibling file means less
// coordination. Four sibling files written by quarter-sized groups must
// beat one group of all ranks writing them in sequence.
func TestSubsetWritersBeatFullCommunicator(t *testing.T) {
	p := params()
	bytes := 50e6
	full := 4 * p.CollectiveWriteTime(4096, bytes) // 4 files, all ranks each
	// 4 files written concurrently by disjoint quarters: max of the four.
	subset := p.CollectiveWriteTime(1024, bytes)
	if subset >= full/2 {
		t.Errorf("subset writers %v should be far below sequential full %v", subset, full)
	}
}

func TestSplitWriteBandwidthCap(t *testing.T) {
	p := params()
	// 10 writers: 80 MB/s total, below the filesystem cap.
	few := p.SplitWriteTime(10, 80e6)
	wantFew := p.BaseLatency + 80e6/(10*p.PerProcessBandwidth)
	if math.Abs(few-wantFew) > 1e-12 {
		t.Errorf("few writers = %v, want %v", few, wantFew)
	}
	// 10^6 writers: capped by the aggregate filesystem bandwidth.
	many := p.SplitWriteTime(1e6, 80e6)
	wantMany := p.BaseLatency + 80e6/p.AggregateBandwidth
	if math.Abs(many-wantMany) > 1e-12 {
		t.Errorf("many writers = %v, want %v", many, wantMany)
	}
}

func TestZeroWritersOrBytes(t *testing.T) {
	p := params()
	if p.CollectiveWriteTime(0, 100) != 0 {
		t.Error("zero writers should cost 0")
	}
	if p.CollectiveWriteTime(10, 0) != 0 {
		t.Error("zero bytes should cost 0")
	}
	if p.SplitWriteTime(0, 100) != 0 || p.SplitWriteTime(5, 0) != 0 {
		t.Error("split zero cases should cost 0")
	}
}

func TestWriteTimeDispatch(t *testing.T) {
	p := params()
	if p.WriteTime(Collective, 100, 1e6) != p.CollectiveWriteTime(100, 1e6) {
		t.Error("Collective dispatch wrong")
	}
	if p.WriteTime(Split, 100, 1e6) != p.SplitWriteTime(100, 1e6) {
		t.Error("Split dispatch wrong")
	}
}

func TestModeString(t *testing.T) {
	if Collective.String() != "pnetcdf" || Split.String() != "split" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode string wrong")
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{
		"pnetcdf": Collective, "collective": Collective, "split": Split,
		// Mixed-case spellings must parse too: the plan server's JSON
		// fields and CLI users write "PnetCDF" as the format is branded.
		"PnetCDF": Collective, "COLLECTIVE": Collective, "Split": Split,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("mode %v has empty String", got)
		}
	}
	if _, err := ParseMode("netcdf4"); err == nil {
		t.Error("ParseMode accepted unknown mode")
	} else if !strings.Contains(err.Error(), "pnetcdf") || !strings.Contains(err.Error(), "split") {
		t.Errorf("ParseMode error %q does not list the accepted names", err)
	}
}
