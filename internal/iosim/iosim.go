// Package iosim models the parallel-I/O costs of high-frequency
// weather-forecast output (paper Sections 1 and 4.5). Two modes are
// provided, matching the paper's experimental setup:
//
//   - Collective (PnetCDF on BG/P): all ranks of a domain's
//     communicator participate in writing one file. The coordination
//     cost grows with the number of writers, so per-iteration I/O time
//     *increases* with scale — the scalability problem of Fig. 13(b).
//     Running siblings on processor subsets shrinks each file's writer
//     group and restores I/O scalability.
//   - Split (WRF's split I/O on BG/L): every process writes its own
//     piece, aggregate bandwidth capped by the filesystem.
package iosim

import (
	"errors"
	"fmt"
	"strings"
)

// Params are the I/O cost-model parameters. Times in seconds, sizes in
// bytes.
type Params struct {
	// BaseLatency is the fixed cost of opening/creating one output file.
	BaseLatency float64
	// PerWriterOverhead is the collective-coordination cost added per
	// participating rank of a PnetCDF-style collective write.
	PerWriterOverhead float64
	// AggregateBandwidth is the filesystem's total write bandwidth.
	AggregateBandwidth float64
	// PerProcessBandwidth is one process's attainable write bandwidth in
	// split-I/O mode.
	PerProcessBandwidth float64
}

// ErrBadParams is returned for invalid parameters.
var ErrBadParams = errors.New("iosim: parameters must be positive")

// Validate checks p.
func (p Params) Validate() error {
	if p.BaseLatency < 0 || p.PerWriterOverhead < 0 ||
		p.AggregateBandwidth <= 0 || p.PerProcessBandwidth <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// CollectiveWriteTime models a PnetCDF collective write of the given
// total size by the given number of writers.
func (p Params) CollectiveWriteTime(writers int, bytes float64) float64 {
	if writers <= 0 || bytes <= 0 {
		return 0
	}
	return p.BaseLatency + p.PerWriterOverhead*float64(writers) + bytes/p.AggregateBandwidth
}

// SplitWriteTime models WRF's split I/O: each of the writers streams
// its share concurrently, bounded by the filesystem's aggregate
// bandwidth.
func (p Params) SplitWriteTime(writers int, bytes float64) float64 {
	if writers <= 0 || bytes <= 0 {
		return 0
	}
	bw := float64(writers) * p.PerProcessBandwidth
	if bw > p.AggregateBandwidth {
		bw = p.AggregateBandwidth
	}
	return p.BaseLatency + bytes/bw
}

// Mode selects the I/O model.
type Mode int

// I/O modes.
const (
	Collective Mode = iota // PnetCDF-style collective writes (BG/P)
	Split                  // one file per process (BG/L)
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Collective:
		return "pnetcdf"
	case Split:
		return "split"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode is the inverse of Mode.String, for CLI flags, JSON fields
// and report configs. It accepts the canonical names plus common
// aliases, case-insensitively ("PnetCDF" and "pnetcdf" are the same
// mode), so callers must not pre-lower their input.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "pnetcdf", "collective":
		return Collective, nil
	case "split":
		return Split, nil
	}
	return 0, fmt.Errorf("iosim: unknown I/O mode %q (accepted: pnetcdf, collective, split)", s)
}

// WriteTime dispatches on the mode.
func (p Params) WriteTime(m Mode, writers int, bytes float64) float64 {
	if m == Split {
		return p.SplitWriteTime(writers, bytes)
	}
	return p.CollectiveWriteTime(writers, bytes)
}
