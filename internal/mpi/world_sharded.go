package mpi

import "sync"

// Sharded runtime (DESIGN.md Section 13): per-rank mailbox locks, an
// atomic packed (blocked, queued) counter pair, and a slow-path
// deadlock detector. Lock order is strictly mailbox-at-a-time —
// no code path ever holds two mailbox locks — and the detector mutex
// is only ever taken with no mailbox lock held, so the runtime is
// trivially deadlock-free itself.

// queuedMask extracts the queued half of World.packed; the blocked
// half lives in the upper 32 bits.
const queuedMask = (1 << 32) - 1

// mailbox is one rank's receive state: its queues, its private lock,
// and the condition variable only the owning rank ever waits on.
// Senders lock exactly the destination mailbox, so traffic between
// disjoint rank pairs never contends, and a delivery wakes exactly the
// receiving rank.
type mailbox struct {
	mu    sync.Mutex
	cond  sync.Cond // L is &mu, set at world setup
	boxes map[matchKey]*msgq

	// waiting describes the receive this rank is currently blocked on,
	// valid while the rank is counted in the blocked half of
	// World.packed; it feeds the deadlock report's sample.
	waiting           bool
	wsrc, wtag, wcomm int

	// Pad mailboxes apart so neighboring ranks' hot send/recv locks do
	// not false-share one cache line.
	_ [24]byte
}

// shardSend queues msg for dst. The queued counter is incremented
// before the message becomes visible, so the deadlock predicate
// (blocked >= alive && queued == 0) can never hold while a delivery is
// in flight.
func (w *World) shardSend(dst int, key matchKey, msg *message) {
	w.packed.Add(1)
	mb := &w.mboxes[dst]
	mb.mu.Lock()
	q, ok := mb.boxes[key]
	if !ok {
		q = &msgq{}
		mb.boxes[key] = q
	}
	q.q = append(q.q, msg)
	mb.cond.Signal()
	mb.mu.Unlock()
}

// shardRecv blocks rank p until a message matching key is available.
//
// Counter protocol: on first finding the queue empty the receiver
// atomically enters the blocked count (and publishes what it waits on
// under its mailbox lock); when a blocked receiver finally consumes a
// message it leaves the blocked count and consumes the queued count in
// ONE atomic add, so no interleaving shows "everyone blocked, nothing
// queued" while a handoff is mid-flight.
//
// Deadlock check ordering: alive is loaded BEFORE packed. alive only
// decreases, so a stale value can only make the predicate harder to
// satisfy (under-detect); every rank exit re-wakes all waiters to
// re-check, so detection is never lost — and a false positive is
// impossible without a mailbox-lock-free proof, which is why a
// positive fast-path check is re-confirmed under detectMu in
// declareDeadlock before anything is declared.
func (w *World) shardRecv(p *Proc, key matchKey) (*message, error) {
	mb := &w.mboxes[p.rank]
	blocked := false
	mb.mu.Lock()
	for {
		if q, ok := mb.boxes[key]; ok && q.head < len(q.q) {
			msg := q.pop()
			if blocked {
				mb.waiting = false
				w.packed.Add(-(1 << 32) - 1) // leave blocked, consume queued
			} else {
				w.packed.Add(-1)
			}
			mb.mu.Unlock()
			return msg, nil
		}
		if w.failedS.Load() {
			if blocked {
				mb.waiting = false
				w.packed.Add(-(1 << 32))
			}
			mb.mu.Unlock()
			return nil, w.shardFailure()
		}
		if !blocked {
			blocked = true
			mb.waiting = true
			mb.wsrc, mb.wtag, mb.wcomm = key.src, key.tag, key.comm
			w.packed.Add(1 << 32)
		}
		alive := w.aliveS.Load()
		st := w.packed.Load()
		if st>>32 >= alive && st&queuedMask == 0 {
			// Possible deadlock. Confirm and declare outside the mailbox
			// lock; stay counted as blocked meanwhile so the predicate
			// keeps holding for the confirmation re-check.
			mb.mu.Unlock()
			err := w.declareDeadlock()
			mb.mu.Lock()
			if err != nil {
				mb.waiting = false
				w.packed.Add(-(1 << 32))
				mb.mu.Unlock()
				return nil, err
			}
			continue // raced with a delivery; re-scan the queue
		}
		mb.cond.Wait()
	}
}

// declareDeadlock re-confirms the deadlock predicate under detectMu
// with fresh counter loads and, if it still holds, builds the rich
// error, marks the world failed and wakes every rank. It returns nil
// when the caller's lock-free observation raced with a concurrent
// delivery, and the already-recorded failure when another rank
// declared first.
func (w *World) declareDeadlock() error {
	w.detectMu.Lock()
	defer w.detectMu.Unlock()
	if w.failedS.Load() {
		return w.failErrS
	}
	alive := w.aliveS.Load()
	st := w.packed.Load()
	if !(st>>32 >= alive && st&queuedMask == 0) {
		return nil
	}
	err := w.shardDeadlockError(int(st>>32), int(alive))
	w.failErrS = err
	w.failedS.Store(true)
	w.wakeAllSharded()
	return err
}

// shardDeadlockError samples what the blocked ranks are waiting on.
// Called under detectMu (never with a mailbox lock held).
func (w *World) shardDeadlockError(blocked, alive int) error {
	e := &DeadlockError{Blocked: blocked, Alive: alive}
	for r := range w.mboxes {
		if len(e.Sample) == deadlockSampleCap {
			break
		}
		mb := &w.mboxes[r]
		mb.mu.Lock()
		if mb.waiting {
			e.Sample = append(e.Sample, RankWait{Rank: r, Src: mb.wsrc, Tag: mb.wtag, Comm: mb.wcomm})
		}
		mb.mu.Unlock()
	}
	return e
}

// shardFailure returns the recorded failure. Only called after
// failedS is observed true, and failErrS is published before failedS
// is set, so the detectMu round trip always finds it.
func (w *World) shardFailure() error {
	w.detectMu.Lock()
	err := w.failErrS
	w.detectMu.Unlock()
	if err == nil {
		err = ErrDeadlock
	}
	return err
}

// wakeAllSharded broadcasts every rank's condition variable, locking
// each mailbox in turn so a waiter between its predicate check and its
// cond.Wait cannot miss the wakeup. Failure/exit paths only — never in
// steady state.
func (w *World) wakeAllSharded() {
	for r := range w.mboxes {
		mb := &w.mboxes[r]
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}
