package mpi

// Retained reference runtime (SetReference): the pre-sharding design —
// one world-wide mutex guarding every mailbox, the payload pool and
// the blocked/queued/alive counters, with per-rank condition variables
// (all sharing that mutex) for targeted wakeups. Kept verbatim as the
// equivalence oracle for the sharded runtime; it is bit-identical in
// every virtual-time observable and differs only in real-time
// scalability.

// waitRecord is one rank's current blocked receive (reference runtime;
// guarded by World.mu). It feeds the deadlock report's sample.
type waitRecord struct {
	active         bool
	src, tag, comm int
}

// refSend queues msg for dst under the world mutex.
func (w *World) refSend(dst int, key matchKey, msg *message) {
	w.mu.Lock()
	q, ok := w.boxes[dst][key]
	if !ok {
		q = &msgq{}
		w.boxes[dst][key] = q
	}
	q.q = append(q.q, msg)
	w.queued++
	w.conds[dst].Signal() // wake only the receiver, not the whole world
	w.mu.Unlock()
}

// refRecv blocks rank p until a message matching key is available,
// holding the world mutex across the scan/wait loop. When every live
// rank is blocked and nothing is queued, the job is deadlocked.
func (w *World) refRecv(p *Proc, key matchKey) (*message, error) {
	w.mu.Lock()
	w.blocked++
	rw := &w.waits[p.rank]
	rw.active, rw.src, rw.tag, rw.comm = true, key.src, key.tag, key.comm
	for {
		if q, ok := w.boxes[p.rank][key]; ok && q.head < len(q.q) {
			msg := q.pop()
			w.queued--
			w.blocked--
			rw.active = false
			w.mu.Unlock()
			return msg, nil
		}
		if w.failed || (w.blocked >= w.alive && w.queued == 0) {
			if !w.failed {
				w.failed = true
				w.failErr = w.refDeadlockError()
			}
			err := w.failErr
			if err == nil {
				err = ErrDeadlock
			}
			w.blocked--
			rw.active = false
			w.wakeAll()
			w.mu.Unlock()
			return nil, err
		}
		w.conds[p.rank].Wait()
	}
}

// refDeadlockError samples what the blocked ranks are waiting on.
// Called with w.mu held, by the rank that first detects the deadlock
// (which is still counted in w.blocked and still has an active wait
// record at this point).
func (w *World) refDeadlockError() error {
	e := &DeadlockError{Blocked: w.blocked, Alive: w.alive}
	for r := range w.waits {
		if len(e.Sample) == deadlockSampleCap {
			break
		}
		rw := &w.waits[r]
		if rw.active {
			e.Sample = append(e.Sample, RankWait{Rank: r, Src: rw.src, Tag: rw.tag, Comm: rw.comm})
		}
	}
	return e
}

// wakeAll signals every rank's condition variable. Called with mu held,
// and only on failure/deadlock paths — never in steady state.
func (w *World) wakeAll() {
	for _, c := range w.conds {
		c.Broadcast()
	}
}
