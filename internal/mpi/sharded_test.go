package mpi

import (
	"errors"
	"runtime"
	"testing"
)

// mixedProgram exercises every runtime feature whose virtual-time
// behavior must match between the sharded and reference runtimes:
// point-to-point rings with per-rank payload sizes and compute,
// phase accounting, barriers, reductions, splits and sub-communicator
// traffic.
func mixedProgram(n int) func(p *Proc) error {
	return func(p *Proc) error {
		w := p.World()
		me := w.Rank()
		p.BeginPhase("ring")
		for it := 0; it < 3; it++ {
			buf := w.AllocPayload(16 + 8*(me%4))
			for i := range buf {
				buf[i] = float64(me*1000 + it)
			}
			w.SendOwned((me+1)%n, 7, buf)
			d, err := w.Recv((me+n-1)%n, 7)
			if err != nil {
				return err
			}
			p.Compute(float64(me%5) * 1e-6)
			w.FreePayload(d)
		}
		p.BeginPhase("collectives")
		if err := w.Barrier(); err != nil {
			return err
		}
		if _, err := w.Allreduce(OpSum, []float64{float64(me), 1}); err != nil {
			return err
		}
		sub, err := w.Split(me%2, me)
		if err != nil {
			return err
		}
		if sn := sub.Size(); sn > 1 {
			sub.Send((sub.Rank()+1)%sn, 9, []float64{float64(me)})
			d, err := sub.Recv((sub.Rank()+sn-1)%sn, 9)
			if err != nil {
				return err
			}
			sub.FreePayload(d)
		}
		return sub.Barrier()
	}
}

// runSnapshot captures every virtual-time observable of a finished
// run. Wall is real time and legitimately varies, so it is zeroed.
type runSnapshot struct {
	clocks, waits []float64
	phases        [][]Phase
}

func snapshotRun(t *testing.T, n int, fn func(p *Proc) error) runSnapshot {
	t.Helper()
	procs, err := Run(n, tm(), fn)
	if err != nil {
		t.Fatal(err)
	}
	s := runSnapshot{
		clocks: make([]float64, n),
		waits:  make([]float64, n),
		phases: make([][]Phase, n),
	}
	for i, p := range procs {
		s.clocks[i] = p.Clock()
		s.waits[i] = p.WaitTime()
		phs := p.Phases()
		for j := range phs {
			phs[j].Stats.Wall = 0
		}
		s.phases[i] = phs
	}
	return s
}

// equalRuns compares two snapshots for exact (bitwise) equality.
func equalRuns(t *testing.T, label string, a, b runSnapshot) {
	t.Helper()
	for r := range a.clocks {
		if a.clocks[r] != b.clocks[r] {
			t.Fatalf("%s: rank %d clock %v != %v", label, r, a.clocks[r], b.clocks[r])
		}
		if a.waits[r] != b.waits[r] {
			t.Fatalf("%s: rank %d wait %v != %v", label, r, a.waits[r], b.waits[r])
		}
		if len(a.phases[r]) != len(b.phases[r]) {
			t.Fatalf("%s: rank %d phase count %d != %d", label, r, len(a.phases[r]), len(b.phases[r]))
		}
		for j := range a.phases[r] {
			if a.phases[r][j] != b.phases[r][j] {
				t.Fatalf("%s: rank %d phase %q differs: %+v != %+v",
					label, r, a.phases[r][j].Name, a.phases[r][j], b.phases[r][j])
			}
		}
	}
}

// The sharded runtime must be bit-identical to the retained reference
// runtime in every virtual-time observable: per-rank clocks, wait
// times and phase stats.
func TestShardedMatchesReference(t *testing.T) {
	const n = 24
	sharded := snapshotRun(t, n, mixedProgram(n))
	SetReference(true)
	defer SetReference(false)
	ref := snapshotRun(t, n, mixedProgram(n))
	equalRuns(t, "sharded vs reference", sharded, ref)
}

// Virtual time must not depend on goroutine scheduling: repeated runs
// and GOMAXPROCS=1 vs N are bit-identical, at a rank count well beyond
// anything a single mutex was tuned for.
func TestHighRankDeterminism(t *testing.T) {
	n := 2048
	if raceEnabled {
		n = 256 // the race detector multiplies per-goroutine cost
	}
	first := snapshotRun(t, n, mixedProgram(n))
	again := snapshotRun(t, n, mixedProgram(n))
	equalRuns(t, "run-to-run", first, again)

	old := runtime.GOMAXPROCS(1)
	serial := snapshotRun(t, n, mixedProgram(n))
	runtime.GOMAXPROCS(old)
	equalRuns(t, "GOMAXPROCS=1 vs N", first, serial)
}

// Deadlock reports must say how many ranks were stuck and what a
// sample of them was waiting on, in both runtimes, while remaining
// errors.Is-compatible with the ErrDeadlock sentinel.
func TestDeadlockErrorDetail(t *testing.T) {
	for _, ref := range []bool{false, true} {
		SetReference(ref)
		const n = 3
		_, err := Run(n, tm(), func(p *Proc) error {
			_, err := p.World().Recv((p.Rank()+1)%n, 99)
			return err
		})
		SetReference(false)
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("ref=%v: errors.Is(err, ErrDeadlock) = false for %v", ref, err)
		}
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("ref=%v: error %v is not a *DeadlockError", ref, err)
		}
		if de.Blocked != n || de.Alive != n {
			t.Errorf("ref=%v: Blocked=%d Alive=%d, want %d/%d", ref, de.Blocked, de.Alive, n, n)
		}
		if len(de.Sample) != n {
			t.Fatalf("ref=%v: sample has %d entries, want %d", ref, len(de.Sample), n)
		}
		for _, s := range de.Sample {
			if s.Tag != 99 || s.Comm != 0 || s.Src != (s.Rank+1)%n {
				t.Errorf("ref=%v: unexpected sample entry %+v", ref, s)
			}
		}
	}
}

// The deadlock sample must stay bounded on big worlds.
func TestDeadlockSampleBounded(t *testing.T) {
	const n = 64
	_, err := Run(n, tm(), func(p *Proc) error {
		_, err := p.World().Recv((p.Rank()+1)%n, 5)
		return err
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DeadlockError", err)
	}
	if de.Blocked != n {
		t.Errorf("Blocked=%d, want %d", de.Blocked, n)
	}
	if len(de.Sample) != deadlockSampleCap {
		t.Errorf("sample has %d entries, want cap %d", len(de.Sample), deadlockSampleCap)
	}
}

// Payload pools must be bounded (drops once a class is at capacity)
// and accounted: PoolStats balances frees/drops against what was
// recycled and retains only the bounded free-list population.
func TestPoolBoundedAndStats(t *testing.T) {
	for _, ref := range []bool{false, true} {
		SetReference(ref)
		procs, err := Run(1, tm(), func(p *Proc) error {
			w := p.World()
			const batch = 100 // well past classCap(5)=64
			bufs := make([][]float64, batch)
			for i := range bufs {
				bufs[i] = w.AllocPayload(32) // class 5
			}
			for _, b := range bufs {
				w.FreePayload(b)
			}
			for i := 0; i < 10; i++ {
				bufs[i] = w.AllocPayload(32) // all served from the pool
			}
			return nil
		})
		SetReference(false)
		if err != nil {
			t.Fatal(err)
		}
		s := procs[0].PoolStats()
		if s.Hits != 10 || s.Misses != 100 {
			t.Errorf("ref=%v: hits/misses = %d/%d, want 10/100", ref, s.Hits, s.Misses)
		}
		if s.Drops == 0 {
			t.Errorf("ref=%v: no drops despite freeing %d buffers into a bounded class", ref, 100)
		}
		if s.Frees+s.Drops != 100 {
			t.Errorf("ref=%v: frees %d + drops %d != 100", ref, s.Frees, s.Drops)
		}
		if got, want := s.Buffers, int(s.Frees)-10; got != want {
			t.Errorf("ref=%v: retained buffers %d, want frees-hits = %d", ref, got, want)
		}
		if got, want := s.Bytes, int64(s.Buffers)*32*8; got != want {
			t.Errorf("ref=%v: retained bytes %d, want %d", ref, got, want)
		}
		if hr := s.HitRate(); hr <= 0 || hr >= 1 {
			t.Errorf("ref=%v: hit rate %v out of (0, 1)", ref, hr)
		}
	}
}

// World setup and splits must share canonical rank lists: every rank's
// world communicator aliases one slice, and every member of a split
// group aliases the root's canonical list (this is what makes setup
// O(n) total instead of O(n²)).
func TestCanonicalRankListAliasing(t *testing.T) {
	const n = 8
	subs := make([]*Comm, n)
	procs, err := Run(n, tm(), func(p *Proc) error {
		sub, err := p.World().Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		subs[p.Rank()] = sub
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if &procs[0].World().ranks[0] != &procs[r].World().ranks[0] {
			t.Fatalf("rank %d world comm does not alias the shared rank list", r)
		}
	}
	for r := 2; r < n; r++ {
		if &subs[r].ranks[0] != &subs[r%2].ranks[0] {
			t.Fatalf("rank %d split comm does not alias its group's canonical list", r)
		}
	}
}
