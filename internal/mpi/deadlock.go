package mpi

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDeadlock is reported when every rank is blocked in Recv with no
// messages in flight. Concrete failures carry a *DeadlockError (which
// wraps this sentinel, so errors.Is(err, ErrDeadlock) keeps working)
// with the blocked-rank count and a bounded sample of what each was
// waiting on.
var ErrDeadlock = errors.New("mpi: deadlock: all ranks blocked in Recv with empty queues")

// deadlockSampleCap bounds DeadlockError.Sample so the report stays
// readable at 10k-rank worlds.
const deadlockSampleCap = 8

// RankWait is one blocked rank and the (source, tag, communicator)
// of the receive it is stuck in. Src is a global rank; Comm is the
// communicator id (0 is the world).
type RankWait struct {
	Rank, Src, Tag, Comm int
}

// DeadlockError describes a detected deadlock: how many of the
// still-alive ranks were blocked, with a bounded lowest-rank-first
// sample of their pending receives. It wraps ErrDeadlock for
// errors.Is.
type DeadlockError struct {
	Blocked int
	Alive   int
	Sample  []RankWait
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: deadlock: %d of %d live ranks blocked in Recv with empty queues", e.Blocked, e.Alive)
	if len(e.Sample) > 0 {
		b.WriteString("; waiting on")
		for i, s := range e.Sample {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " rank %d<-(src %d, tag %d, comm %d)", s.Rank, s.Src, s.Tag, s.Comm)
		}
		if e.Blocked > len(e.Sample) {
			fmt.Fprintf(&b, ", ... (%d more)", e.Blocked-len(e.Sample))
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrDeadlock) hold for DeadlockError.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// errBadRanks rejects a non-positive world size.
func errBadRanks(n int) error {
	return fmt.Errorf("mpi: need at least 1 rank, got %d", n)
}

// errSplitCache reports a Split member that could not resolve its
// group's canonical rank list — unreachable unless the split protocol
// is broken.
func errSplitCache(id int) error {
	return fmt.Errorf("mpi: split: no canonical rank list registered for comm %d", id)
}
