package mpi

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func tm() AlphaBeta { return AlphaBeta{Alpha: 1e-6, Beta: 1e-9} }

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, tm(), func(p *Proc) error { return nil }); err == nil {
		t.Error("zero ranks should fail")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	want := errors.New("rank 2 exploded")
	_, err := Run(4, tm(), func(p *Proc) error {
		if p.Rank() == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	procs, err := Run(2, tm(), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			return nil
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(data) != 3 || data[0] != 1 || data[2] != 3 {
			t.Errorf("data = %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver's clock advanced to the arrival time.
	if procs[1].Clock() <= 0 {
		t.Error("receiver clock did not advance")
	}
	if procs[1].WaitTime() <= 0 {
		t.Error("receiver should have waited")
	}
	if procs[0].WaitTime() != 0 {
		t.Error("sender should not wait in the eager model")
	}
}

func TestVirtualTimeDeterministic(t *testing.T) {
	runOnce := func() []float64 {
		procs, err := Run(8, tm(), func(p *Proc) error {
			c := p.World()
			p.Compute(float64(p.Rank()) * 1e-3)
			next := (p.Rank() + 1) % c.Size()
			prev := (p.Rank() + c.Size() - 1) % c.Size()
			c.Send(next, 0, []float64{float64(p.Rank())})
			if _, err := c.Recv(prev, 0); err != nil {
				return err
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(procs))
		for i, p := range procs {
			out[i] = p.Clock()*1e9 + p.WaitTime()
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: clocks differ between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	_, err := Run(2, tm(), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 3, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			d, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if d[0] != float64(i) {
				t.Errorf("message %d arrived out of order: %v", i, d[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsAreIndependent(t *testing.T) {
	_, err := Run(2, tm(), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
			return nil
		}
		// Receive in reverse tag order.
		d2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if d2[0] != 2 || d1[0] != 1 {
			t.Errorf("tag routing wrong: %v %v", d1, d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	_, err := Run(4, tm(), func(p *Proc) error {
		c := p.World()
		n := c.Size()
		var reqs []*Request
		for r := 0; r < n; r++ {
			if r == p.Rank() {
				continue
			}
			reqs = append(reqs, c.Isend(r, 5, []float64{float64(p.Rank())}))
			reqs = append(reqs, c.Irecv(r, 5))
		}
		return WaitAll(reqs...)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	procs, err := Run(4, tm(), func(p *Proc) error {
		p.Compute(float64(p.Rank()) * 0.5) // skewed clocks
		return p.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the barrier, all clocks are at least the slowest rank's.
	slowest := 1.5
	for i, p := range procs {
		if p.Clock() < slowest {
			t.Errorf("rank %d clock %v below slowest compute %v", i, p.Clock(), slowest)
		}
	}
	// Fast ranks accumulated wait time.
	if procs[0].WaitTime() <= procs[3].WaitTime() {
		t.Error("fastest rank should wait longest")
	}
}

func TestAllreduce(t *testing.T) {
	_, err := Run(5, tm(), func(p *Proc) error {
		c := p.World()
		sum, err := c.Allreduce(OpSum, []float64{float64(p.Rank()), 1})
		if err != nil {
			return err
		}
		if sum[0] != 10 || sum[1] != 5 {
			t.Errorf("rank %d: sum = %v", p.Rank(), sum)
		}
		max, err := c.Allreduce(OpMax, []float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		if max[0] != 4 {
			t.Errorf("max = %v", max)
		}
		min, err := c.Allreduce(OpMin, []float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		if min[0] != 0 {
			t.Errorf("min = %v", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(6, tm(), func(p *Proc) error {
		c := p.World()
		var data []float64
		if p.Rank() == 2 {
			data = []float64{3.14, 2.72}
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 {
			t.Errorf("rank %d: bcast got %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(4, tm(), func(p *Proc) error {
		c := p.World()
		all, err := c.Gather([]float64{float64(p.Rank() * 10)})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			for r, d := range all {
				if d[0] != float64(r*10) {
					t.Errorf("gather[%d] = %v", r, d)
				}
			}
		} else if all != nil {
			t.Error("non-root should receive nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	var evenSum int64
	_, err := Run(8, tm(), func(p *Proc) error {
		c := p.World()
		sub, err := c.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			t.Errorf("rank %d: sub size %d", p.Rank(), sub.Size())
		}
		// Sub-communicator collective.
		sum, err := sub.Allreduce(OpSum, []float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		if p.Rank()%2 == 0 {
			atomic.AddInt64(&evenSum, int64(sum[0]))
			if sum[0] != 0+2+4+6 {
				t.Errorf("even group sum = %v", sum[0])
			}
		} else if sum[0] != 1+3+5+7 {
			t.Errorf("odd group sum = %v", sum[0])
		}
		// Local ranks ordered by key (= world rank here).
		if sub.Global(sub.Rank()) != p.Rank() {
			t.Errorf("rank %d: wrong identity mapping", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	_, err := Run(4, tm(), func(p *Proc) error {
		c := p.World()
		color := 0
		if p.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if p.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color should give nil comm")
			}
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	_, err := Run(8, tm(), func(p *Proc) error {
		c := p.World()
		half, err := c.Split(p.Rank()/4, p.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			t.Errorf("quarter size = %d", quarter.Size())
		}
		sum, err := quarter.Allreduce(OpSum, []float64{1})
		if err != nil {
			return err
		}
		if sum[0] != 2 {
			t.Errorf("quarter sum = %v", sum[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(2, tm(), func(p *Proc) error {
		// Both ranks receive; nobody sends.
		_, err := p.World().Recv((p.Rank()+1)%2, 0)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestDeadlockWhenPeerExits(t *testing.T) {
	_, err := Run(2, tm(), func(p *Proc) error {
		if p.Rank() == 0 {
			return nil // exits without sending
		}
		_, err := p.World().Recv(0, 0)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestSendDataIsCopied(t *testing.T) {
	_, err := Run(2, tm(), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			return nil
		}
		d, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if d[0] != 42 {
			t.Errorf("message mutated after send: %v", d[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlphaBetaModel(t *testing.T) {
	m := AlphaBeta{Alpha: 1e-5, Beta: 1e-8}
	got := m.Transfer(0, 1, 1000)
	want := 1e-5 + 1000e-8
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("Transfer = %v, want %v", got, want)
	}
}

func TestComputeNegativeIgnored(t *testing.T) {
	procs, err := Run(1, tm(), func(p *Proc) error {
		p.Compute(-5)
		p.Compute(2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs[0].Clock() != 2 {
		t.Errorf("clock = %v", procs[0].Clock())
	}
}

func BenchmarkHaloExchange64Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(64, tm(), func(p *Proc) error {
			c := p.World()
			me := p.Rank()
			x, y := me%8, me/8
			data := make([]float64, 64)
			var reqs []*Request
			for _, nb := range [][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				if nb[0] < 0 || nb[0] >= 8 || nb[1] < 0 || nb[1] >= 8 {
					continue
				}
				r := nb[1]*8 + nb[0]
				reqs = append(reqs, c.Isend(r, 0, data), c.Irecv(r, 0))
			}
			return WaitAll(reqs...)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestPhaseStats checks the per-rank, per-phase breakdown: compute,
// wait, transfer, message and byte counts land in the phase that was
// open when the activity happened.
func TestPhaseStats(t *testing.T) {
	model := AlphaBeta{Alpha: 1, Beta: 0} // 1s per message, size-free
	procs, err := Run(2, model, func(p *Proc) error {
		c := p.World()
		p.BeginPhase("compute")
		p.Compute(3)
		p.BeginPhase("exchange")
		if p.Rank() == 0 {
			p.Compute(2) // rank 0 sends late so rank 1 must wait
			c.Send(1, 0, []float64{1, 2})
			return nil
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	r0 := procs[0].Phases()
	if len(r0) != 2 || r0[0].Name != "compute" || r0[1].Name != "exchange" {
		t.Fatalf("rank 0 phases = %+v", r0)
	}
	if r0[0].Stats.Compute != 3 {
		t.Errorf("rank 0 compute-phase compute = %v, want 3", r0[0].Stats.Compute)
	}
	ex0 := r0[1].Stats
	if ex0.Compute != 2 || ex0.SendCount != 1 || ex0.SendBytes != 16 || ex0.Transfer != 1 {
		t.Errorf("rank 0 exchange stats = %+v", ex0)
	}

	ex1 := procs[1].Phases()[1].Stats
	// Rank 1 reaches Recv at t=3; the message arrives at 3+2+1=6.
	if math.Abs(ex1.Wait-3) > 1e-12 {
		t.Errorf("rank 1 wait = %v, want 3", ex1.Wait)
	}
	if ex1.RecvCount != 1 || ex1.RecvBytes != 16 {
		t.Errorf("rank 1 recv stats = %+v", ex1)
	}
	if procs[1].WaitTime() != ex1.Wait {
		t.Errorf("phase wait %v disagrees with WaitTime %v", ex1.Wait, procs[1].WaitTime())
	}
}

// TestPhaseReopenAccumulates re-opens a phase and checks accumulation
// continues rather than starting a second entry.
func TestPhaseReopenAccumulates(t *testing.T) {
	procs, err := Run(1, tm(), func(p *Proc) error {
		p.BeginPhase("a")
		p.Compute(1)
		p.BeginPhase("b")
		p.Compute(10)
		p.BeginPhase("a")
		p.Compute(2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := procs[0].Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].Stats.Compute != 3 || phases[1].Stats.Compute != 10 {
		t.Errorf("phases = %+v", phases)
	}
}

// TestPhasesOffByDefault: without BeginPhase no breakdown is recorded
// and behavior is unchanged.
func TestPhasesOffByDefault(t *testing.T) {
	procs, err := Run(2, tm(), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			return nil
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if got := p.Phases(); got != nil {
			t.Errorf("rank %d has phases without BeginPhase: %+v", p.Rank(), got)
		}
	}
}

func TestAggregatePhases(t *testing.T) {
	procs, err := Run(4, AlphaBeta{Alpha: 1}, func(p *Proc) error {
		c := p.World()
		p.BeginPhase("halo")
		p.Compute(float64(p.Rank()))
		if p.Rank() > 0 {
			c.Send(0, 0, []float64{1})
			return nil
		}
		for r := 1; r < c.Size(); r++ {
			if _, err := c.Recv(r, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	totals := AggregatePhases(procs)
	if len(totals) != 1 || totals[0].Name != "halo" || totals[0].Ranks != 4 {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Sum.Compute != 0+1+2+3 {
		t.Errorf("summed compute = %v, want 6", totals[0].Sum.Compute)
	}
	if totals[0].Sum.SendCount != 3 || totals[0].Sum.RecvCount != 3 {
		t.Errorf("message counts = %+v", totals[0].Sum)
	}
	if totals[0].MaxWait != procs[0].WaitTime() {
		t.Errorf("MaxWait = %v, want rank 0's wait %v", totals[0].MaxWait, procs[0].WaitTime())
	}
}
