package mpi

import (
	"math/bits"
	"sync"
)

// Payload pooling. Buffers are size-classed by power of two and
// recycled through free lists. Payloads flow sender → receiver, so the
// sharded runtime pools in two tiers chosen to keep supply and demand
// meeting without a global lock:
//
//   - a lock-free per-rank cache (only the owning goroutine touches
//     it), which absorbs the symmetric steady state — halo and
//     coupling exchanges where a rank frees about what it allocates
//     each step;
//   - per-size-class locked overflow lists for the asymmetric residue.
//     Sharding the overflow by class (not by rank) matters: a class's
//     frees and allocs always meet in the same list, so cross-rank
//     producer/consumer flows still recycle, while different classes
//     never contend with each other.
//
// The reference runtime keeps the original single set of lists under
// the world mutex. Both runtimes bound every free list per size class
// so a bursty phase cannot pin its peak buffer population forever, and
// both count hits/misses/frees/drops for World.PoolStats.

// payloadClasses is the number of power-of-two payload size classes the
// world pool keeps (class c holds buffers with capacity >= 1<<c).
const payloadClasses = 31

// payloadClass returns the class whose buffers can hold n floats:
// the smallest c with 1<<c >= n.
func payloadClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// classCap bounds one size class's overflow free-list length: small
// buffers are cheap to keep in quantity, large ones are capped hard so
// the worst-case retained memory stays bounded no matter how bursty a
// phase was.
func classCap(c int) int {
	switch {
	case c <= 12: // <= 32 KiB buffers
		return 64
	case c <= 18: // <= 2 MiB buffers
		return 8
	default:
		return 2
	}
}

// rankCacheCap bounds one size class in a rank's private cache. Kept
// small: across 10k ranks even a few buffers per class add up, and
// anything beyond the cap still pools via the overflow lists.
func rankCacheCap(c int) int {
	switch {
	case c <= 12:
		return 2
	case c <= 18:
		return 1
	default:
		return 0
	}
}

// rankCache is one rank's private payload cache. Only the owning
// goroutine touches it (no lock); its counters and leftover buffers
// fold into the world pool when the rank exits.
type rankCache struct {
	free        [payloadClasses][][]float64
	hits, frees uint64
}

// classPool is one size class's overflow free list with its own lock,
// padded apart so neighboring classes' locks do not false-share.
type classPool struct {
	mu                         sync.Mutex
	free                       [][]float64
	hits, misses, frees, drops uint64
	_                          [40]byte
}

// freeLists is the reference runtime's single set of size-classed free
// lists plus counters, guarded by the world mutex.
type freeLists struct {
	free                       [payloadClasses][][]float64
	hits, misses, frees, drops uint64
}

// alloc pops a buffer of class c (caller computed it for n), or
// returns nil on a pool miss. Caller holds the world mutex.
func (f *freeLists) alloc(n, c int) []float64 {
	if s := f.free[c]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		f.free[c] = s[:len(s)-1]
		f.hits++
		return b[:n]
	}
	f.misses++
	return nil
}

// put recycles a buffer into floor class cl, dropping it when the
// class is at capacity. Caller holds the world mutex.
func (f *freeLists) put(b []float64, cl int) {
	if len(f.free[cl]) >= classCap(cl) {
		f.drops++
		return
	}
	f.frees++
	f.free[cl] = append(f.free[cl], b[:0])
}

// allocPayload returns a length-n scratch slice drawn from the world
// pool (or freshly allocated on a pool miss or an over-sized request).
// Contents are unspecified; callers overwrite every element.
func (w *World) allocPayload(p *Proc, n int) []float64 {
	if n == 0 {
		return nil
	}
	c := payloadClass(n)
	if c >= payloadClasses {
		return make([]float64, n)
	}
	if w.ref {
		w.mu.Lock()
		b := w.pool.alloc(n, c)
		w.mu.Unlock()
		if b != nil {
			return b
		}
		return make([]float64, n, 1<<c)
	}
	if rc := p.pcache; rc != nil {
		if s := rc.free[c]; len(s) > 0 {
			b := s[len(s)-1]
			s[len(s)-1] = nil
			rc.free[c] = s[:len(s)-1]
			rc.hits++
			return b[:n]
		}
	}
	cp := &w.classes[c]
	cp.mu.Lock()
	if s := cp.free; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		cp.free = s[:len(s)-1]
		cp.hits++
		cp.mu.Unlock()
		return b[:n]
	}
	cp.misses++
	cp.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// freePayload returns a buffer to the world pool. The caller must not
// touch b afterwards, and must not free the same buffer twice.
func (w *World) freePayload(p *Proc, b []float64) {
	c := cap(b)
	if c == 0 {
		return
	}
	// Floor class: every pooled buffer satisfies cap >= 1<<class, which
	// is exactly what allocPayload's ceiling class requires.
	cl := bits.Len(uint(c)) - 1
	if cl >= payloadClasses {
		return
	}
	if w.ref {
		w.mu.Lock()
		w.pool.put(b, cl)
		w.mu.Unlock()
		return
	}
	if rc := p.pcache; rc != nil && len(rc.free[cl]) < rankCacheCap(cl) {
		rc.frees++
		rc.free[cl] = append(rc.free[cl], b[:0])
		return
	}
	cp := &w.classes[cl]
	cp.mu.Lock()
	if len(cp.free) >= classCap(cl) {
		cp.drops++
		cp.mu.Unlock()
		return
	}
	cp.frees++
	cp.free = append(cp.free, b[:0])
	cp.mu.Unlock()
}

// foldRankCache folds an exiting rank's private cache into the
// overflow lists and the world's folded counters, so post-run
// PoolStats sees the complete picture.
func (w *World) foldRankCache(rc *rankCache) {
	w.localHits.Add(rc.hits)
	w.localFrees.Add(rc.frees)
	for cl := range rc.free {
		lst := rc.free[cl]
		if len(lst) == 0 {
			continue
		}
		cp := &w.classes[cl]
		cp.mu.Lock()
		for _, b := range lst {
			if len(cp.free) >= classCap(cl) {
				cp.drops++
				continue
			}
			cp.free = append(cp.free, b)
		}
		cp.mu.Unlock()
		rc.free[cl] = nil
	}
}

// PoolStats describes the world payload pool: how traffic hit the free
// lists and what the lists currently retain.
type PoolStats struct {
	// Hits and Misses count allocPayload requests served from a free
	// list (per-rank cache or shared lists) vs. freshly allocated.
	Hits, Misses uint64
	// Frees counts buffers recycled into the lists; Drops counts
	// buffers discarded because their size class was at capacity.
	Frees, Drops uint64
	// Buffers and Bytes describe the currently retained free-list
	// population (excluding ranks' private caches until they exit).
	Buffers int
	Bytes   int64
}

// HitRate returns the fraction of pool requests served from a free
// list (0 when there were no requests).
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PoolStats snapshots the world's payload-pool counters. Safe to call
// concurrently with a running world (the snapshot is per-class
// consistent, not globally atomic); per-rank cache activity folds in
// when each rank exits, so post-run snapshots are complete.
func (w *World) PoolStats() PoolStats {
	var s PoolStats
	if w.ref {
		w.mu.Lock()
		f := &w.pool
		s.Hits, s.Misses, s.Frees, s.Drops = f.hits, f.misses, f.frees, f.drops
		for _, lst := range f.free {
			s.Buffers += len(lst)
			for _, b := range lst {
				s.Bytes += int64(8 * cap(b))
			}
		}
		w.mu.Unlock()
		return s
	}
	s.Hits = w.localHits.Load()
	s.Frees = w.localFrees.Load()
	for c := range w.classes {
		cp := &w.classes[c]
		cp.mu.Lock()
		s.Hits += cp.hits
		s.Misses += cp.misses
		s.Frees += cp.frees
		s.Drops += cp.drops
		s.Buffers += len(cp.free)
		for _, b := range cp.free {
			s.Bytes += int64(8 * cap(b))
		}
		cp.mu.Unlock()
	}
	return s
}
