// Package mpi is a message-passing runtime for functional simulation:
// each rank is a goroutine with a virtual clock, and MPI-style
// operations (Send/Recv, nonblocking requests, barriers, reductions,
// communicator splits) advance the clocks according to a pluggable
// transfer-time model. Time spent blocked in Recv/Wait is accounted as
// MPI_Wait time, mirroring the profiling the paper reports in
// Section 4.3.2.
//
// Virtual time is deterministic: a message's arrival time depends only
// on the sender's clock and the time model, never on goroutine
// scheduling.
//
// The runtime is sharded for scale (DESIGN.md Section 13): each rank
// owns a private mailbox (lock + condition variable), the
// blocked/queued/alive bookkeeping is atomic, and payload pools are
// lock-striped, so worlds of 10k+ virtual ranks run without funneling
// every operation through one mutex. The previous single-mutex runtime
// is retained behind SetReference and produces bit-identical virtual
// clocks, wait times and results.
package mpi

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TimeModel computes virtual transfer durations between global ranks.
type TimeModel interface {
	// Transfer returns the virtual seconds for a message of the given
	// size from src to dst (both global ranks).
	Transfer(src, dst int, bytes int) float64
}

// AlphaBeta is the classic latency/bandwidth time model:
// alpha + bytes*beta.
type AlphaBeta struct {
	Alpha float64 // per-message latency, s
	Beta  float64 // per-byte cost, s/byte
}

// Transfer implements TimeModel.
func (m AlphaBeta) Transfer(_, _ int, bytes int) float64 {
	return m.Alpha + float64(bytes)*m.Beta
}

// message is an in-flight message.
type message struct {
	src     int // global sender rank
	tag     int
	comm    int // communicator id
	data    []float64
	arrival float64 // virtual arrival time
}

// msgPool recycles message headers between Send and Recv. Payload
// slices are pooled separately and explicitly: a receiver that is done
// with a payload hands it back with Comm.FreePayload, and senders draw
// scratch from Comm.AllocPayload, so steady-state traffic recycles a
// fixed set of buffers instead of allocating per message.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// matchKey identifies a receive queue.
type matchKey struct {
	src  int
	tag  int
	comm int
}

// msgq is one (src, tag, comm) receive queue. Queues are created on
// first use and then live for the world's lifetime with their backing
// array reused, so steady-state delivery never allocates (the previous
// map-of-slices mailbox allocated a fresh one-element slice per
// message, because drained keys were deleted).
type msgq struct {
	q    []*message
	head int
}

// pop removes and returns the queue's head message. The caller must
// have checked that the queue is non-empty.
func (q *msgq) pop() *message {
	msg := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	return msg
}

// reference selects the retained single-mutex runtime: one world-wide
// lock over mailboxes, pools and the blocked/queued/alive counters,
// exactly as the code stood before the sharded runtime. The sharded
// and reference runtimes are bit-identical in every virtual-time
// observable (clocks, wait times, per-phase stats, results) and
// guarded by equivalence tests; only real-time scalability differs.
// The flag is atomic so toggling it (tests only) is race-free against
// concurrently running worlds, and it is captured once per Run so a
// mid-run flip cannot mix the two runtimes inside one world.
var reference atomic.Bool

// SetReference enables (true) or disables (false) the retained
// unsharded runtime. Only tests should call this.
func SetReference(on bool) { reference.Store(on) }

// World is one simulated job: n ranks plus shared mailboxes.
//
// In the sharded runtime each rank owns a mailbox with its own lock
// and condition variable: senders lock exactly the destination rank's
// mailbox and a delivery wakes exactly the receiving rank, so traffic
// between disjoint rank pairs never contends. Deadlock bookkeeping
// (blocked/queued/alive) is atomic, checked lock-free on the blocking
// path and confirmed under a small detector mutex before declaring.
//
// The retained reference runtime keeps the original design: one
// world-wide mutex guarding per-rank queues, per-rank condition
// variables all sharing that mutex, and plain counters.
type World struct {
	n   int
	tm  TimeModel
	ref bool // retained single-mutex runtime (SetReference)

	// commSeq allocates world-unique communicator ids (world is 0).
	commSeq atomic.Int64
	// splitRanks caches the canonical global-rank list of every
	// communicator created by Split, keyed by comm id. The split root
	// registers each group's list once; every member aliases it
	// read-only, so a split is O(n) total instead of O(n) per rank.
	splitRanks sync.Map

	// --- sharded runtime state ---

	mboxes []mailbox
	// classes are the per-size-class overflow pools; localHits and
	// localFrees accumulate exited ranks' private-cache counters.
	classes               [payloadClasses]classPool
	localHits, localFrees atomic.Uint64
	// packed holds blocked<<32 | queued in one atomic word so the
	// deadlock predicate reads a consistent snapshot of both counters.
	// blocked counts ranks currently waiting in Recv; queued counts
	// undelivered messages (incremented before a message becomes
	// visible, decremented atomically with the receiver's unblock).
	packed   atomic.Int64
	aliveS   atomic.Int64
	failedS  atomic.Bool
	detectMu sync.Mutex // serializes deadlock confirmation
	failErrS error      // under detectMu; read only after failedS is set

	// --- reference runtime state ---

	mu      sync.Mutex
	conds   []*sync.Cond // per-rank wakeups, all sharing mu
	boxes   []map[matchKey]*msgq
	pool    freeLists // single payload pool, guarded by mu
	waits   []waitRecord
	blocked int
	queued  int
	alive   int
	failed  bool
	failErr error
}

// Run executes fn on n ranks and blocks until all complete. It returns
// the first error any rank produced (or a deadlock error). The returned
// procs expose final clocks and wait times, indexed by rank.
//
// Setup is O(n) total: every rank's world communicator aliases one
// shared read-only rank list (the previous per-rank copies were O(n²),
// half a gigabyte at 8192 ranks).
func Run(n int, tm TimeModel, fn func(p *Proc) error) ([]*Proc, error) {
	if n <= 0 {
		return nil, errBadRanks(n)
	}
	w := &World{n: n, tm: tm, ref: reference.Load()}
	w.commSeq.Store(1)
	worldRanks := make([]int, n)
	for i := range worldRanks {
		worldRanks[i] = i
	}
	if w.ref {
		w.alive = n
		w.conds = make([]*sync.Cond, n)
		w.boxes = make([]map[matchKey]*msgq, n)
		w.waits = make([]waitRecord, n)
		for i := range w.boxes {
			w.conds[i] = sync.NewCond(&w.mu)
			w.boxes[i] = make(map[matchKey]*msgq)
		}
	} else {
		w.aliveS.Store(int64(n))
		w.mboxes = make([]mailbox, n)
		for i := range w.mboxes {
			mb := &w.mboxes[i]
			mb.cond.L = &mb.mu
			mb.boxes = make(map[matchKey]*msgq)
		}
	}
	procs := make([]*Proc, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	caches := make([]rankCache, n) // sharded runtime per-rank payload caches
	for r := 0; r < n; r++ {
		p := &Proc{w: w, rank: r}
		if !w.ref {
			p.pcache = &caches[r]
		}
		p.world = &Comm{w: w, id: 0, ranks: worldRanks, me: r, proc: p}
		procs[r] = p
		go func(r int) {
			defer wg.Done()
			defer w.rankExit(procs[r])
			errs[r] = fn(procs[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return procs, err
		}
	}
	return procs, nil
}

// rankExit records one rank's completion. A rank's exit can complete
// the deadlock condition for the remaining blocked ranks; wake them so
// they re-check. In a clean run nothing is blocked here and no one is
// woken.
func (w *World) rankExit(p *Proc) {
	if w.ref {
		w.mu.Lock()
		w.alive--
		if w.failed || (w.blocked >= w.alive && w.queued == 0) {
			w.wakeAll()
		}
		w.mu.Unlock()
		return
	}
	w.foldRankCache(p.pcache)
	alive := w.aliveS.Add(-1)
	st := w.packed.Load()
	if w.failedS.Load() || (st>>32 >= alive && st&queuedMask == 0) {
		w.wakeAllSharded()
	}
}

// PhaseStats aggregates one rank's virtual-time activity within one
// named phase: where the time went (compute vs. blocked wait vs.
// message transfer) and how much traffic the rank generated.
type PhaseStats struct {
	// Compute is virtual time advanced by Compute calls.
	Compute float64
	// Wait is virtual time spent blocked in Recv/Wait past the rank's
	// own clock — the MPI_Wait time of the paper's measurements.
	Wait float64
	// Transfer is the summed modeled transfer duration of the messages
	// this rank sent (network occupancy attributed to the sender).
	Transfer float64
	// SendCount/RecvCount and SendBytes/RecvBytes count the rank's
	// messages and payload bytes, including collective-internal traffic.
	SendCount, RecvCount int
	SendBytes, RecvBytes int
	// Wall is real (wall-clock) time the rank spent inside the phase,
	// accrued at BeginPhase transitions (and finalized by Phases), in
	// seconds. Unlike the virtual-time fields above it measures the
	// simulator itself, so phase-level trace spans and reports can show
	// where real execution time goes.
	Wall float64
}

// add accumulates o into s.
func (s *PhaseStats) add(o PhaseStats) {
	s.Compute += o.Compute
	s.Wait += o.Wait
	s.Transfer += o.Transfer
	s.SendCount += o.SendCount
	s.RecvCount += o.RecvCount
	s.SendBytes += o.SendBytes
	s.RecvBytes += o.RecvBytes
	s.Wall += o.Wall
}

// Phase is one named phase of one rank with its accumulated stats.
type Phase struct {
	Name  string
	Stats PhaseStats
}

// Proc is the per-rank handle passed to the rank function.
type Proc struct {
	w     *World
	rank  int // global rank
	clock float64
	wait  float64
	world *Comm

	// Phase instrumentation: nil until the first BeginPhase, so
	// uninstrumented runs pay only a nil check per operation.
	cur      *PhaseStats
	curAt    time.Time // wall-clock entry into the current phase
	phases   []Phase
	phaseIdx map[string]int

	// pcache is the rank's private payload cache (sharded runtime
	// only; nil under SetReference). See pool.go.
	pcache *rankCache
}

// Comm is a communicator: an ordered group of global ranks. Local rank
// i of the communicator is ranks[i]. The ranks slice is shared
// read-only: every member of a communicator aliases one canonical
// list.
type Comm struct {
	w     *World
	id    int
	ranks []int
	me    int // local rank of the owning Proc
	proc  *Proc
}

// Rank returns the global rank of p.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.w.n }

// World returns the world communicator (MPI_COMM_WORLD).
func (p *Proc) World() *Comm { return p.world }

// Clock returns the rank's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// WaitTime returns the accumulated virtual time spent blocked in
// Recv/Wait — the MPI_Wait time of the paper's measurements.
func (p *Proc) WaitTime() float64 { return p.wait }

// PoolStats returns the world's payload-pool counters (see
// World.PoolStats).
func (p *Proc) PoolStats() PoolStats { return p.w.PoolStats() }

// BeginPhase opens (or re-opens) the named per-rank accounting phase:
// subsequent Compute, Send and Recv activity on this rank accrues to
// it until the next BeginPhase. Re-opening a name continues its
// accumulation. Phases are purely observational — they never advance
// virtual time.
func (p *Proc) BeginPhase(name string) {
	if p.phaseIdx == nil {
		p.phaseIdx = make(map[string]int)
	}
	now := time.Now()
	if p.cur != nil {
		p.cur.Wall += now.Sub(p.curAt).Seconds()
	}
	i, ok := p.phaseIdx[name]
	if !ok {
		i = len(p.phases)
		p.phaseIdx[name] = i
		p.phases = append(p.phases, Phase{Name: name})
	}
	p.cur = &p.phases[i].Stats
	p.curAt = now
}

// Phases returns a copy of the rank's per-phase breakdown in
// first-BeginPhase order, finalizing the open phase's wall-clock
// accrual. Call it only after Run returns (or from the rank's own
// goroutine).
func (p *Proc) Phases() []Phase {
	if p.cur != nil {
		now := time.Now()
		p.cur.Wall += now.Sub(p.curAt).Seconds()
		p.curAt = now
	}
	return append([]Phase(nil), p.phases...)
}

// PhaseTotal aggregates one phase across ranks.
type PhaseTotal struct {
	Name string
	// Ranks is the number of ranks that entered the phase.
	Ranks int
	// Sum totals the per-rank stats.
	Sum PhaseStats
	// MaxWait is the worst single rank's wait time in the phase.
	MaxWait float64
}

// AggregatePhases merges the per-rank phase breakdowns of a finished
// run into per-phase totals, ordered by first appearance across ranks.
func AggregatePhases(procs []*Proc) []PhaseTotal {
	var out []PhaseTotal
	idx := map[string]int{}
	for _, p := range procs {
		for _, ph := range p.phases {
			i, ok := idx[ph.Name]
			if !ok {
				i = len(out)
				idx[ph.Name] = i
				out = append(out, PhaseTotal{Name: ph.Name})
			}
			out[i].Ranks++
			out[i].Sum.add(ph.Stats)
			if ph.Stats.Wait > out[i].MaxWait {
				out[i].MaxWait = ph.Stats.Wait
			}
		}
	}
	return out
}

// Compute advances the rank's virtual clock by the given duration.
func (p *Proc) Compute(seconds float64) {
	if seconds > 0 {
		p.clock += seconds
		if p.cur != nil {
			p.cur.Compute += seconds
		}
	}
}

// Rank returns the caller's local rank in c.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in c.
func (c *Comm) Size() int { return len(c.ranks) }

// Global returns the global rank of local rank r in c.
func (c *Comm) Global(r int) int { return c.ranks[r] }

// Send delivers data to local rank `to` of the communicator with the
// given tag. Sends are eager (buffered): the sender does not block; its
// clock advances by the local share of the transfer. The payload is
// copied (into a pooled buffer), so the caller keeps ownership of data.
func (c *Comm) Send(to, tag int, data []float64) {
	buf := c.w.allocPayload(c.proc, len(data))
	copy(buf, data)
	c.SendOwned(to, tag, buf)
}

// SendOwned is Send without the defensive payload copy: ownership of
// data passes to the runtime and then to the receiver, which gets the
// very same slice from Recv. Use it with buffers from AllocPayload (and
// FreePayload on the receive side) to make steady-state traffic
// allocation-free; after the call the sender must not touch data again.
func (c *Comm) SendOwned(to, tag int, data []float64) {
	p := c.proc
	dst := c.ranks[to]
	bytes := 8 * len(data)
	t := c.w.tm.Transfer(p.rank, dst, bytes)
	msg := msgPool.Get().(*message)
	msg.src = p.rank
	msg.tag = tag
	msg.comm = c.id
	msg.data = data
	msg.arrival = p.clock + t
	if p.cur != nil {
		p.cur.Transfer += t
		p.cur.SendCount++
		p.cur.SendBytes += bytes
	}
	key := matchKey{src: p.rank, tag: tag, comm: c.id}
	if c.w.ref {
		c.w.refSend(dst, key, msg)
	} else {
		c.w.shardSend(dst, key, msg)
	}
}

// AllocPayload returns a length-n scratch slice from the world's
// payload pool, for building a message passed to SendOwned. Contents
// are unspecified.
func (c *Comm) AllocPayload(n int) []float64 { return c.w.allocPayload(c.proc, n) }

// FreePayload recycles a payload (typically one returned by Recv) into
// the world pool. The caller must be done with it, and must not free
// the same slice twice.
func (c *Comm) FreePayload(b []float64) { c.w.freePayload(c.proc, b) }

// Recv blocks until a message with the given source (local rank) and
// tag arrives, advances the virtual clock to the arrival time, and
// accounts blocked time as wait time.
func (c *Comm) Recv(from, tag int) ([]float64, error) {
	p := c.proc
	key := matchKey{src: c.ranks[from], tag: tag, comm: c.id}
	var msg *message
	var err error
	if c.w.ref {
		msg, err = c.w.refRecv(p, key)
	} else {
		msg, err = c.w.shardRecv(p, key)
	}
	if err != nil {
		return nil, err
	}
	data, arrival := msg.data, msg.arrival
	msg.data = nil // payload ownership passes to the receiver
	msgPool.Put(msg)
	if arrival > p.clock {
		if p.cur != nil {
			p.cur.Wait += arrival - p.clock
		}
		p.wait += arrival - p.clock
		p.clock = arrival
	}
	if p.cur != nil {
		p.cur.RecvCount++
		p.cur.RecvBytes += 8 * len(data)
	}
	return data, nil
}

// Request is a handle for a nonblocking operation.
type Request struct {
	comm *Comm
	recv bool
	from int
	tag  int
	done bool
	data []float64
	err  error
}

// Isend starts a nonblocking send. In the eager model the send
// completes immediately.
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.Send(to, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a nonblocking receive; the matching happens in Wait.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{comm: c, recv: true, from: from, tag: tag}
}

// Wait completes the request, returning received data for receives.
func (r *Request) Wait() ([]float64, error) {
	if r.done {
		return r.data, r.err
	}
	r.done = true
	if r.recv {
		r.data, r.err = r.comm.Recv(r.from, r.tag)
	}
	return r.data, r.err
}

// WaitAll completes all requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Internal collective tags (user tags must be >= 0).
const (
	tagBarrier = -1
	tagReduce  = -2
	tagBcast   = -3
	tagSplit   = -4
	tagGather  = -5
)

// Barrier synchronizes the communicator: all clocks advance to the
// latest participant (plus transfer costs of the gather/release tree).
// Barrier messages carry no data, so every payload cycles through the
// world pool and a steady-state Barrier performs no allocations.
func (c *Comm) Barrier() error {
	if c.me == 0 {
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tagBarrier)
			if err != nil {
				return err
			}
			c.FreePayload(d)
		}
		for r := 1; r < c.Size(); r++ {
			c.SendOwned(r, tagBarrier, c.AllocPayload(0))
		}
		return nil
	}
	c.SendOwned(0, tagBarrier, c.AllocPayload(0))
	d, err := c.Recv(0, tagBarrier)
	if err != nil {
		return err
	}
	c.FreePayload(d)
	return nil
}

// gatherScatter funnels per-rank payloads to local root 0, applies
// combine (if non-nil), and scatters the result back. It is the
// backbone of the value collectives. Received payloads are recycled
// into the world pool after combining (the root's own payload at
// index 0 stays caller-owned).
func (c *Comm) gatherScatter(tag int, payload []float64, combine func([][]float64) []float64) ([]float64, error) {
	if c.me == 0 {
		all := make([][]float64, c.Size())
		all[0] = payload
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tag)
			if err != nil {
				return nil, err
			}
			all[r] = d
		}
		var res []float64
		if combine != nil {
			res = combine(all)
		}
		for r := 1; r < c.Size(); r++ {
			c.FreePayload(all[r])
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag, res)
		}
		return res, nil
	}
	c.Send(0, tag, payload)
	return c.Recv(0, tag)
}

// Op is a reduction operator.
type Op func(a, b float64) float64

// Reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines vals element-wise across the communicator with op
// and returns the result on every rank.
func (c *Comm) Allreduce(op Op, vals []float64) ([]float64, error) {
	return c.gatherScatter(tagReduce, vals, func(all [][]float64) []float64 {
		res := append([]float64(nil), all[0]...)
		for _, v := range all[1:] {
			for i := range res {
				res[i] = op(res[i], v[i])
			}
		}
		return res
	})
}

// Bcast distributes root's data to every rank and returns it.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if c.me == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return data, nil
	}
	return c.Recv(root, tagBcast)
}

// Gather collects every rank's payload at root (local rank 0 receives
// a per-rank slice-of-slices; others receive nil). Ownership of payload
// passes to the collective: the root may FreePayload each returned
// slice once done, completing the pool round trip.
func (c *Comm) Gather(payload []float64) ([][]float64, error) {
	if c.me == 0 {
		all := make([][]float64, c.Size())
		all[0] = payload
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tagGather)
			if err != nil {
				return nil, err
			}
			all[r] = d
		}
		return all, nil
	}
	c.SendOwned(0, tagGather, payload)
	return nil, nil
}

// Split partitions the communicator by color, ordering members by
// (key, current local rank), like MPI_Comm_split. Every rank must call
// it. Ranks passing a negative color receive nil (MPI_UNDEFINED).
//
// The exchange is O(n) total: members send their (color, key) to the
// local root, which computes the groups, registers each group's
// canonical global-rank list in the world's split cache exactly once,
// and answers every member with a fixed-size (id, local rank)
// assignment. Members alias the canonical list — no per-rank copies of
// the membership table, which previously made a world-wide split
// O(n²) in both payload bytes and memory.
func (c *Comm) Split(color, key int) (*Comm, error) {
	w := c.w
	if c.me != 0 {
		req := c.AllocPayload(2)
		req[0], req[1] = float64(color), float64(key)
		c.SendOwned(0, tagSplit, req)
		res, err := c.Recv(0, tagSplit)
		if err != nil {
			return nil, err
		}
		id, me := int(res[0]), int(res[1])
		c.FreePayload(res)
		if id < 0 {
			return nil, nil
		}
		ranks, ok := w.splitRanks.Load(id)
		if !ok {
			// Unreachable: the root registers every group before
			// answering any member.
			return nil, errSplitCache(id)
		}
		return &Comm{w: w, id: id, ranks: ranks.([]int), me: me, proc: c.proc}, nil
	}

	// Root: gather (color, key) in local-rank order.
	type member struct{ rank, color, key int }
	ms := make([]member, c.Size())
	ms[0] = member{0, color, key}
	for r := 1; r < c.Size(); r++ {
		d, err := c.Recv(r, tagSplit)
		if err != nil {
			return nil, err
		}
		ms[r] = member{rank: r, color: int(d[0]), key: int(d[1])}
		c.FreePayload(d)
	}
	colors := map[int][]member{}
	var order []int
	for _, m := range ms {
		if m.color >= 0 {
			if _, ok := colors[m.color]; !ok {
				order = append(order, m.color)
			}
			colors[m.color] = append(colors[m.color], m)
		}
	}
	sort.Ints(order)
	// Allocate world-unique communicator ids for the groups, assigned
	// deterministically by ascending color.
	firstID := int(w.commSeq.Add(int64(len(order)))) - len(order)
	type assign struct{ id, me int }
	asg := make([]assign, c.Size())
	for i := range asg {
		asg[i] = assign{id: -1}
	}
	for gi, col := range order {
		members := colors[col]
		sort.Slice(members, func(a, b int) bool {
			if members[a].key != members[b].key {
				return members[a].key < members[b].key
			}
			return members[a].rank < members[b].rank
		})
		id := firstID + gi
		globals := make([]int, len(members))
		for i, m := range members {
			globals[i] = c.ranks[m.rank]
			asg[m.rank] = assign{id: id, me: i}
		}
		w.splitRanks.Store(id, globals)
	}
	for r := 1; r < c.Size(); r++ {
		res := c.AllocPayload(2)
		res[0], res[1] = float64(asg[r].id), float64(asg[r].me)
		c.SendOwned(r, tagSplit, res)
	}
	a := asg[0]
	if a.id < 0 {
		return nil, nil
	}
	ranks, _ := w.splitRanks.Load(a.id)
	return &Comm{w: w, id: a.id, ranks: ranks.([]int), me: a.me, proc: c.proc}, nil
}
