// Package mpi is a message-passing runtime for functional simulation:
// each rank is a goroutine with a virtual clock, and MPI-style
// operations (Send/Recv, nonblocking requests, barriers, reductions,
// communicator splits) advance the clocks according to a pluggable
// transfer-time model. Time spent blocked in Recv/Wait is accounted as
// MPI_Wait time, mirroring the profiling the paper reports in
// Section 4.3.2.
//
// Virtual time is deterministic: a message's arrival time depends only
// on the sender's clock and the time model, never on goroutine
// scheduling.
package mpi

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// TimeModel computes virtual transfer durations between global ranks.
type TimeModel interface {
	// Transfer returns the virtual seconds for a message of the given
	// size from src to dst (both global ranks).
	Transfer(src, dst int, bytes int) float64
}

// AlphaBeta is the classic latency/bandwidth time model:
// alpha + bytes*beta.
type AlphaBeta struct {
	Alpha float64 // per-message latency, s
	Beta  float64 // per-byte cost, s/byte
}

// Transfer implements TimeModel.
func (m AlphaBeta) Transfer(_, _ int, bytes int) float64 {
	return m.Alpha + float64(bytes)*m.Beta
}

// message is an in-flight message.
type message struct {
	src     int // global sender rank
	tag     int
	comm    int // communicator id
	data    []float64
	arrival float64 // virtual arrival time
}

// msgPool recycles message headers between Send and Recv. Payload
// slices are pooled separately and explicitly: a receiver that is done
// with a payload hands it back with Comm.FreePayload, and senders draw
// scratch from Comm.AllocPayload, so steady-state traffic recycles a
// fixed set of buffers instead of allocating per message.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// matchKey identifies a receive queue.
type matchKey struct {
	src  int
	tag  int
	comm int
}

// msgq is one (src, tag, comm) receive queue. Queues are created on
// first use and then live for the world's lifetime with their backing
// array reused, so steady-state delivery never allocates (the previous
// map-of-slices mailbox allocated a fresh one-element slice per
// message, because drained keys were deleted).
type msgq struct {
	q    []*message
	head int
}

// payloadClasses is the number of power-of-two payload size classes the
// world pool keeps (class c holds buffers with capacity >= 1<<c).
const payloadClasses = 31

// payloadClass returns the class whose buffers can hold n floats:
// the smallest c with 1<<c >= n.
func payloadClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// World is one simulated job: n ranks plus shared mailboxes.
//
// Wakeups are targeted (DESIGN.md Section 8): each rank blocks on its
// own condition variable, so a delivery wakes exactly the receiving
// rank instead of broadcasting to every blocked goroutine — the
// thundering herd the previous single world-wide sync.Cond caused.
type World struct {
	n     int
	tm    TimeModel
	mu    sync.Mutex
	conds []*sync.Cond                // per-rank wakeups, all sharing mu
	boxes []map[matchKey]*msgq        // per receiver global rank
	pools [payloadClasses][][]float64 // payload free lists by size class
	// blocked counts ranks currently waiting in Recv; queued counts
	// undelivered messages. When every live rank is blocked and nothing
	// is queued, the job is deadlocked.
	blocked int
	queued  int
	alive   int
	failed  bool
	commSeq int
}

// allocPayload returns a length-n scratch slice drawn from the world
// pool (or freshly allocated when the pool has nothing large enough).
// Contents are unspecified; callers overwrite every element.
func (w *World) allocPayload(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := payloadClass(n)
	if c >= payloadClasses {
		return make([]float64, n)
	}
	w.mu.Lock()
	if s := w.pools[c]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		w.pools[c] = s[:len(s)-1]
		w.mu.Unlock()
		return b[:n]
	}
	w.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// freePayload returns a buffer to the world pool. The caller must not
// touch b afterwards, and must not free the same buffer twice.
func (w *World) freePayload(b []float64) {
	c := cap(b)
	if c == 0 {
		return
	}
	// Floor class: every pooled buffer satisfies cap >= 1<<class, which
	// is exactly what allocPayload's ceiling class requires.
	cl := bits.Len(uint(c)) - 1
	if cl >= payloadClasses {
		return
	}
	w.mu.Lock()
	w.pools[cl] = append(w.pools[cl], b[:0])
	w.mu.Unlock()
}

// wakeAll signals every rank's condition variable. Called with mu held,
// and only on failure/deadlock paths — never in steady state.
func (w *World) wakeAll() {
	for _, c := range w.conds {
		c.Broadcast()
	}
}

// ErrDeadlock is reported when every rank is blocked in Recv with no
// messages in flight.
var ErrDeadlock = errors.New("mpi: deadlock: all ranks blocked in Recv with empty queues")

// PhaseStats aggregates one rank's virtual-time activity within one
// named phase: where the time went (compute vs. blocked wait vs.
// message transfer) and how much traffic the rank generated.
type PhaseStats struct {
	// Compute is virtual time advanced by Compute calls.
	Compute float64
	// Wait is virtual time spent blocked in Recv/Wait past the rank's
	// own clock — the MPI_Wait time of the paper's measurements.
	Wait float64
	// Transfer is the summed modeled transfer duration of the messages
	// this rank sent (network occupancy attributed to the sender).
	Transfer float64
	// SendCount/RecvCount and SendBytes/RecvBytes count the rank's
	// messages and payload bytes, including collective-internal traffic.
	SendCount, RecvCount int
	SendBytes, RecvBytes int
	// Wall is real (wall-clock) time the rank spent inside the phase,
	// accrued at BeginPhase transitions (and finalized by Phases), in
	// seconds. Unlike the virtual-time fields above it measures the
	// simulator itself, so phase-level trace spans and reports can show
	// where real execution time goes.
	Wall float64
}

// add accumulates o into s.
func (s *PhaseStats) add(o PhaseStats) {
	s.Compute += o.Compute
	s.Wait += o.Wait
	s.Transfer += o.Transfer
	s.SendCount += o.SendCount
	s.RecvCount += o.RecvCount
	s.SendBytes += o.SendBytes
	s.RecvBytes += o.RecvBytes
	s.Wall += o.Wall
}

// Phase is one named phase of one rank with its accumulated stats.
type Phase struct {
	Name  string
	Stats PhaseStats
}

// Proc is the per-rank handle passed to the rank function.
type Proc struct {
	w     *World
	rank  int // global rank
	clock float64
	wait  float64
	world *Comm

	// Phase instrumentation: nil until the first BeginPhase, so
	// uninstrumented runs pay only a nil check per operation.
	cur      *PhaseStats
	curAt    time.Time // wall-clock entry into the current phase
	phases   []Phase
	phaseIdx map[string]int
}

// Comm is a communicator: an ordered group of global ranks. Local rank
// i of the communicator is ranks[i].
type Comm struct {
	w     *World
	id    int
	ranks []int
	me    int // local rank of the owning Proc
	proc  *Proc
}

// Run executes fn on n ranks and blocks until all complete. It returns
// the first error any rank produced (or a deadlock error). The returned
// procs expose final clocks and wait times, indexed by rank.
func Run(n int, tm TimeModel, fn func(p *Proc) error) ([]*Proc, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: need at least 1 rank, got %d", n)
	}
	w := &World{n: n, tm: tm, alive: n, commSeq: 1}
	w.conds = make([]*sync.Cond, n)
	w.boxes = make([]map[matchKey]*msgq, n)
	for i := range w.boxes {
		w.conds[i] = sync.NewCond(&w.mu)
		w.boxes[i] = make(map[matchKey]*msgq)
	}
	procs := make([]*Proc, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		p := &Proc{w: w, rank: r}
		ranks := make([]int, n)
		for i := range ranks {
			ranks[i] = i
		}
		p.world = &Comm{w: w, id: 0, ranks: ranks, me: r, proc: p}
		procs[r] = p
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				w.mu.Lock()
				w.alive--
				// A rank's exit can complete the deadlock condition for the
				// remaining blocked ranks; wake them so they re-check. In a
				// clean run nothing is blocked here and no one is woken.
				if w.failed || (w.blocked >= w.alive && w.queued == 0) {
					w.wakeAll()
				}
				w.mu.Unlock()
			}()
			errs[r] = fn(procs[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return procs, err
		}
	}
	return procs, nil
}

// Rank returns the global rank of p.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.w.n }

// World returns the world communicator (MPI_COMM_WORLD).
func (p *Proc) World() *Comm { return p.world }

// Clock returns the rank's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// WaitTime returns the accumulated virtual time spent blocked in
// Recv/Wait — the MPI_Wait time of the paper's measurements.
func (p *Proc) WaitTime() float64 { return p.wait }

// BeginPhase opens (or re-opens) the named per-rank accounting phase:
// subsequent Compute, Send and Recv activity on this rank accrues to
// it until the next BeginPhase. Re-opening a name continues its
// accumulation. Phases are purely observational — they never advance
// virtual time.
func (p *Proc) BeginPhase(name string) {
	if p.phaseIdx == nil {
		p.phaseIdx = make(map[string]int)
	}
	now := time.Now()
	if p.cur != nil {
		p.cur.Wall += now.Sub(p.curAt).Seconds()
	}
	i, ok := p.phaseIdx[name]
	if !ok {
		i = len(p.phases)
		p.phaseIdx[name] = i
		p.phases = append(p.phases, Phase{Name: name})
	}
	p.cur = &p.phases[i].Stats
	p.curAt = now
}

// Phases returns a copy of the rank's per-phase breakdown in
// first-BeginPhase order, finalizing the open phase's wall-clock
// accrual. Call it only after Run returns (or from the rank's own
// goroutine).
func (p *Proc) Phases() []Phase {
	if p.cur != nil {
		now := time.Now()
		p.cur.Wall += now.Sub(p.curAt).Seconds()
		p.curAt = now
	}
	return append([]Phase(nil), p.phases...)
}

// PhaseTotal aggregates one phase across ranks.
type PhaseTotal struct {
	Name string
	// Ranks is the number of ranks that entered the phase.
	Ranks int
	// Sum totals the per-rank stats.
	Sum PhaseStats
	// MaxWait is the worst single rank's wait time in the phase.
	MaxWait float64
}

// AggregatePhases merges the per-rank phase breakdowns of a finished
// run into per-phase totals, ordered by first appearance across ranks.
func AggregatePhases(procs []*Proc) []PhaseTotal {
	var out []PhaseTotal
	idx := map[string]int{}
	for _, p := range procs {
		for _, ph := range p.phases {
			i, ok := idx[ph.Name]
			if !ok {
				i = len(out)
				idx[ph.Name] = i
				out = append(out, PhaseTotal{Name: ph.Name})
			}
			out[i].Ranks++
			out[i].Sum.add(ph.Stats)
			if ph.Stats.Wait > out[i].MaxWait {
				out[i].MaxWait = ph.Stats.Wait
			}
		}
	}
	return out
}

// Compute advances the rank's virtual clock by the given duration.
func (p *Proc) Compute(seconds float64) {
	if seconds > 0 {
		p.clock += seconds
		if p.cur != nil {
			p.cur.Compute += seconds
		}
	}
}

// Rank returns the caller's local rank in c.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in c.
func (c *Comm) Size() int { return len(c.ranks) }

// Global returns the global rank of local rank r in c.
func (c *Comm) Global(r int) int { return c.ranks[r] }

// Send delivers data to local rank `to` of the communicator with the
// given tag. Sends are eager (buffered): the sender does not block; its
// clock advances by the local share of the transfer. The payload is
// copied (into a pooled buffer), so the caller keeps ownership of data.
func (c *Comm) Send(to, tag int, data []float64) {
	buf := c.w.allocPayload(len(data))
	copy(buf, data)
	c.SendOwned(to, tag, buf)
}

// SendOwned is Send without the defensive payload copy: ownership of
// data passes to the runtime and then to the receiver, which gets the
// very same slice from Recv. Use it with buffers from AllocPayload (and
// FreePayload on the receive side) to make steady-state traffic
// allocation-free; after the call the sender must not touch data again.
func (c *Comm) SendOwned(to, tag int, data []float64) {
	p := c.proc
	dst := c.ranks[to]
	bytes := 8 * len(data)
	t := c.w.tm.Transfer(p.rank, dst, bytes)
	msg := msgPool.Get().(*message)
	msg.src = p.rank
	msg.tag = tag
	msg.comm = c.id
	msg.data = data
	msg.arrival = p.clock + t
	if p.cur != nil {
		p.cur.Transfer += t
		p.cur.SendCount++
		p.cur.SendBytes += bytes
	}
	w := c.w
	w.mu.Lock()
	key := matchKey{src: p.rank, tag: tag, comm: c.id}
	q, ok := w.boxes[dst][key]
	if !ok {
		q = &msgq{}
		w.boxes[dst][key] = q
	}
	q.q = append(q.q, msg)
	w.queued++
	w.conds[dst].Signal() // wake only the receiver, not the whole world
	w.mu.Unlock()
}

// AllocPayload returns a length-n scratch slice from the world's
// payload pool, for building a message passed to SendOwned. Contents
// are unspecified.
func (c *Comm) AllocPayload(n int) []float64 { return c.w.allocPayload(n) }

// FreePayload recycles a payload (typically one returned by Recv) into
// the world pool. The caller must be done with it, and must not free
// the same slice twice.
func (c *Comm) FreePayload(b []float64) { c.w.freePayload(b) }

// Recv blocks until a message with the given source (local rank) and
// tag arrives, advances the virtual clock to the arrival time, and
// accounts blocked time as wait time.
func (c *Comm) Recv(from, tag int) ([]float64, error) {
	p := c.proc
	src := c.ranks[from]
	key := matchKey{src: src, tag: tag, comm: c.id}
	w := c.w
	w.mu.Lock()
	w.blocked++
	for {
		if q, ok := w.boxes[p.rank][key]; ok && q.head < len(q.q) {
			msg := q.q[q.head]
			q.q[q.head] = nil
			q.head++
			if q.head == len(q.q) {
				q.q = q.q[:0]
				q.head = 0
			}
			w.queued--
			w.blocked--
			w.mu.Unlock()
			data, arrival := msg.data, msg.arrival
			msg.data = nil // payload ownership passes to the receiver
			msgPool.Put(msg)
			if arrival > p.clock {
				if p.cur != nil {
					p.cur.Wait += arrival - p.clock
				}
				p.wait += arrival - p.clock
				p.clock = arrival
			}
			if p.cur != nil {
				p.cur.RecvCount++
				p.cur.RecvBytes += 8 * len(data)
			}
			return data, nil
		}
		if w.failed || (w.blocked >= w.alive && w.queued == 0) {
			w.failed = true
			w.blocked--
			w.wakeAll()
			w.mu.Unlock()
			return nil, ErrDeadlock
		}
		w.conds[p.rank].Wait()
	}
}

// Request is a handle for a nonblocking operation.
type Request struct {
	comm *Comm
	recv bool
	from int
	tag  int
	done bool
	data []float64
	err  error
}

// Isend starts a nonblocking send. In the eager model the send
// completes immediately.
func (c *Comm) Isend(to, tag int, data []float64) *Request {
	c.Send(to, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a nonblocking receive; the matching happens in Wait.
func (c *Comm) Irecv(from, tag int) *Request {
	return &Request{comm: c, recv: true, from: from, tag: tag}
}

// Wait completes the request, returning received data for receives.
func (r *Request) Wait() ([]float64, error) {
	if r.done {
		return r.data, r.err
	}
	r.done = true
	if r.recv {
		r.data, r.err = r.comm.Recv(r.from, r.tag)
	}
	return r.data, r.err
}

// WaitAll completes all requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Internal collective tags (user tags must be >= 0).
const (
	tagBarrier = -1
	tagReduce  = -2
	tagBcast   = -3
	tagSplit   = -4
	tagGather  = -5
)

// Barrier synchronizes the communicator: all clocks advance to the
// latest participant (plus transfer costs of the gather/release tree).
// Barrier messages carry no data, so every payload cycles through the
// world pool and a steady-state Barrier performs no allocations.
func (c *Comm) Barrier() error {
	if c.me == 0 {
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tagBarrier)
			if err != nil {
				return err
			}
			c.w.freePayload(d)
		}
		for r := 1; r < c.Size(); r++ {
			c.SendOwned(r, tagBarrier, c.w.allocPayload(0))
		}
		return nil
	}
	c.SendOwned(0, tagBarrier, c.w.allocPayload(0))
	d, err := c.Recv(0, tagBarrier)
	if err != nil {
		return err
	}
	c.w.freePayload(d)
	return nil
}

// gatherScatter funnels per-rank payloads to local root 0, applies
// combine (if non-nil), and scatters the result back. It is the
// backbone of the collectives.
func (c *Comm) gatherScatter(tag int, payload []float64, combine func([][]float64) []float64) ([]float64, error) {
	if c.me == 0 {
		all := make([][]float64, c.Size())
		all[0] = payload
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tag)
			if err != nil {
				return nil, err
			}
			all[r] = d
		}
		var res []float64
		if combine != nil {
			res = combine(all)
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag, res)
		}
		return res, nil
	}
	c.Send(0, tag, payload)
	return c.Recv(0, tag)
}

// Op is a reduction operator.
type Op func(a, b float64) float64

// Reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines vals element-wise across the communicator with op
// and returns the result on every rank.
func (c *Comm) Allreduce(op Op, vals []float64) ([]float64, error) {
	return c.gatherScatter(tagReduce, vals, func(all [][]float64) []float64 {
		res := append([]float64(nil), all[0]...)
		for _, v := range all[1:] {
			for i := range res {
				res[i] = op(res[i], v[i])
			}
		}
		return res
	})
}

// Bcast distributes root's data to every rank and returns it.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if c.me == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return data, nil
	}
	return c.Recv(root, tagBcast)
}

// Gather collects every rank's payload at root (local rank 0 receives
// a per-rank slice-of-slices; others receive nil). Ownership of payload
// passes to the collective: the root may FreePayload each returned
// slice once done, completing the pool round trip.
func (c *Comm) Gather(payload []float64) ([][]float64, error) {
	if c.me == 0 {
		all := make([][]float64, c.Size())
		all[0] = payload
		for r := 1; r < c.Size(); r++ {
			d, err := c.Recv(r, tagGather)
			if err != nil {
				return nil, err
			}
			all[r] = d
		}
		return all, nil
	}
	c.SendOwned(0, tagGather, payload)
	return nil, nil
}

// Split partitions the communicator by color, ordering members by
// (key, current local rank), like MPI_Comm_split. Every rank must call
// it. Ranks passing a negative color receive nil (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Gather (color, key) at local root 0.
	res, err := c.gatherScatter(tagSplit, []float64{float64(color), float64(key)},
		func(all [][]float64) []float64 {
			// Encode: for each member, its new comm id and the flattened
			// member list boundaries. Root assigns ids deterministically by
			// ascending color.
			type member struct{ rank, color, key int }
			ms := make([]member, len(all))
			for r, d := range all {
				ms[r] = member{rank: r, color: int(d[0]), key: int(d[1])}
			}
			colors := map[int][]member{}
			for _, m := range ms {
				if m.color >= 0 {
					colors[m.color] = append(colors[m.color], m)
				}
			}
			var order []int
			for col := range colors {
				order = append(order, col)
			}
			sort.Ints(order)
			// Payload layout: n, then per world-local-rank: (groupIndex or
			// -1), then groups: count, then for each group: size, members...
			out := []float64{float64(len(all))}
			assignment := make([]int, len(all))
			for i := range assignment {
				assignment[i] = -1
			}
			for gi, col := range order {
				members := colors[col]
				sort.Slice(members, func(a, b int) bool {
					if members[a].key != members[b].key {
						return members[a].key < members[b].key
					}
					return members[a].rank < members[b].rank
				})
				colors[col] = members
				for _, m := range members {
					assignment[m.rank] = gi
				}
			}
			for _, a := range assignment {
				out = append(out, float64(a))
			}
			// Allocate world-unique communicator ids for the groups.
			c.w.mu.Lock()
			firstID := c.w.commSeq
			c.w.commSeq += len(order)
			c.w.mu.Unlock()
			out = append(out, float64(len(order)))
			for gi, col := range order {
				out = append(out, float64(firstID+gi), float64(len(colors[col])))
				for _, m := range colors[col] {
					out = append(out, float64(m.rank))
				}
			}
			return out
		})
	if err != nil {
		return nil, err
	}
	// Decode.
	n := int(res[0])
	assignment := res[1 : 1+n]
	gi := int(assignment[c.me])
	if gi < 0 {
		return nil, nil
	}
	pos := 1 + n
	numGroups := int(res[pos])
	pos++
	var groups [][]int
	var ids []int
	for g := 0; g < numGroups; g++ {
		ids = append(ids, int(res[pos]))
		size := int(res[pos+1])
		pos += 2
		members := make([]int, size)
		for i := 0; i < size; i++ {
			members[i] = int(res[pos])
			pos++
		}
		groups = append(groups, members)
	}
	members := groups[gi]
	// Translate parent-local ranks to global ranks and find my position.
	globals := make([]int, len(members))
	me := -1
	for i, r := range members {
		globals[i] = c.ranks[r]
		if r == c.me {
			me = i
		}
	}
	return &Comm{w: c.w, id: ids[gi], ranks: globals, me: me, proc: c.proc}, nil
}
