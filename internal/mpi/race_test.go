//go:build race

package mpi

// raceEnabled reports that this build runs under the race detector,
// which multiplies the memory and time cost of high-rank worlds.
const raceEnabled = true
