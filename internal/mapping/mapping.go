// Package mapping places the 2D virtual process topology of a weather
// simulation onto a 3D torus (paper Section 3.3). It implements the
// topology-oblivious placements (the sequential default of Fig. 5(b)
// and Blue Gene's TXYZ ordering) and the paper's two topology-aware
// heuristics: partition mapping (each sibling partition onto contiguous
// torus nodes, Fig. 6(a)) and multi-level mapping (partitions folded
// across z-planes so that parent-domain neighbours are also adjacent,
// Fig. 6(b)).
package mapping

import (
	"errors"
	"fmt"

	"nestwrf/internal/alloc"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// Mapping assigns every rank of a 2D process grid to a torus node.
type Mapping struct {
	Grid   vtopo.Grid
	Torus  torus.Torus
	Name   string
	nodeOf []torus.Coord
	// key identifies the mapping's content exactly: every constructor is
	// deterministic in its parameters, so (constructor, parameters) pins
	// nodeOf. Used by the model layer's phase-cost memoization.
	key string
}

// Key returns a string that uniquely identifies the rank-to-node
// assignment: two Mappings with equal keys are guaranteed to have
// identical nodeOf tables (constructors are deterministic in the
// parameters the key encodes). Empty for hand-built Mappings.
func (m *Mapping) Key() string { return m.key }

// baseKey renders the (constructor, grid, torus) part of a mapping key.
func baseKey(name string, g vtopo.Grid, t torus.Torus) string {
	return fmt.Sprintf("%s|%dx%d|%dx%dx%d", name, g.Px, g.Py, t.X, t.Y, t.Z)
}

// Errors returned by the constructors.
var (
	ErrSizeMismatch = errors.New("mapping: grid size != torus node count")
	ErrNotFoldable  = errors.New("mapping: grid does not fold onto torus")
	ErrBadTDim      = errors.New("mapping: torus Z not divisible by cores per node")
)

// NodeOf returns the torus coordinate of rank r.
func (m *Mapping) NodeOf(r int) torus.Coord { return m.nodeOf[r] }

// Hops returns the torus hop distance between two ranks.
func (m *Mapping) Hops(a, b int) int {
	return m.Torus.Hops(m.nodeOf[a], m.nodeOf[b])
}

// Validate checks that the mapping is a bijection between ranks and
// torus nodes.
func (m *Mapping) Validate() error {
	if len(m.nodeOf) != m.Grid.Size() {
		return fmt.Errorf("mapping %q: %d entries for %d ranks", m.Name, len(m.nodeOf), m.Grid.Size())
	}
	seen := make(map[torus.Coord]int, len(m.nodeOf))
	for r, c := range m.nodeOf {
		if !m.Torus.Valid(c) {
			return fmt.Errorf("mapping %q: rank %d mapped to invalid coord %v", m.Name, r, c)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("mapping %q: ranks %d and %d both mapped to %v", m.Name, prev, r, c)
		}
		seen[c] = r
	}
	return nil
}

func check(g vtopo.Grid, t torus.Torus) error {
	if g.Size() != t.Nodes() {
		return fmt.Errorf("%w: %d ranks, %d nodes", ErrSizeMismatch, g.Size(), t.Nodes())
	}
	return nil
}

// Sequential is the topology-oblivious default placement of Fig. 5(b):
// ranks in increasing order fill torus nodes in increasing x, then y,
// then z order.
func Sequential(g vtopo.Grid, t torus.Torus) (*Mapping, error) {
	if err := check(g, t); err != nil {
		return nil, err
	}
	m := &Mapping{Grid: g, Torus: t, Name: "sequential", nodeOf: make([]torus.Coord, g.Size()), key: baseKey("sequential", g, t)}
	for r := range m.nodeOf {
		m.nodeOf[r] = t.CoordOf(r)
	}
	return m, nil
}

// TXYZ is Blue Gene's TXYZ ordering: the intra-node T dimension varies
// fastest, so groups of coresPerNode consecutive ranks land on the same
// physical node (modeled as adjacent positions along Z), then x, y, z.
func TXYZ(g vtopo.Grid, t torus.Torus, coresPerNode int) (*Mapping, error) {
	if err := check(g, t); err != nil {
		return nil, err
	}
	if coresPerNode < 1 || t.Z%coresPerNode != 0 {
		return nil, fmt.Errorf("%w: Z=%d, T=%d", ErrBadTDim, t.Z, coresPerNode)
	}
	reduced := torus.Torus{X: t.X, Y: t.Y, Z: t.Z / coresPerNode}
	m := &Mapping{Grid: g, Torus: t, Name: "txyz", nodeOf: make([]torus.Coord, g.Size()),
		key: fmt.Sprintf("%s|cores=%d", baseKey("txyz", g, t), coresPerNode)}
	for r := range m.nodeOf {
		slot := r % coresPerNode
		c := reduced.CoordOf(r / coresPerNode)
		m.nodeOf[r] = torus.Coord{X: c.X, Y: c.Y, Z: c.Z*coresPerNode + slot}
	}
	return m, nil
}

// foldParams computes the stripe counts of the double fold: the grid's
// x extent is cut into fx stripes of width t.X and the y extent into fy
// stripes of height t.Y, with the fx*fy stripe combinations laid out
// along the torus Z dimension.
func foldParams(g vtopo.Grid, t torus.Torus) (fx, fy int, err error) {
	if err := check(g, t); err != nil {
		return 0, 0, err
	}
	if g.Px%t.X != 0 || g.Py%t.Y != 0 {
		return 0, 0, fmt.Errorf("%w: grid %dx%d, torus %dx%dx%d",
			ErrNotFoldable, g.Px, g.Py, t.X, t.Y, t.Z)
	}
	fx, fy = g.Px/t.X, g.Py/t.Y
	if fx*fy != t.Z {
		return 0, 0, fmt.Errorf("%w: %d stripes for Z=%d", ErrNotFoldable, fx*fy, t.Z)
	}
	return fx, fy, nil
}

// MultiLevel is the paper's multi-level mapping (Fig. 6(b)) generalized
// to stripe folds: the process grid is folded across z-planes with
// boustrophedon (back-and-forth) stripe traversal, so neighbouring
// processes of the parent domain — and therefore of every sibling
// partition — remain neighbours in the torus wherever the fold crosses
// a stripe boundary. Requires Px divisible by the torus X extent, Py by
// the Y extent, and (Px/X)*(Py/Y) == Z.
func MultiLevel(g vtopo.Grid, t torus.Torus) (*Mapping, error) {
	fx, _, err := foldParams(g, t)
	if err != nil {
		return nil, err
	}
	m := &Mapping{Grid: g, Torus: t, Name: "multilevel", nodeOf: make([]torus.Coord, g.Size()), key: baseKey("multilevel", g, t)}
	for r := range m.nodeOf {
		x, y := g.Coord(r)
		sx, lx := x/t.X, x%t.X
		if sx%2 == 1 { // fold back, like curling the rectangle over
			lx = t.X - 1 - lx
		}
		sy, ly := y/t.Y, y%t.Y
		if sy%2 == 1 {
			ly = t.Y - 1 - ly
		}
		m.nodeOf[r] = torus.Coord{X: lx, Y: ly, Z: sx + fx*sy}
	}
	return m, nil
}

// BestEffort returns the best available topology-aware mapping for the
// given shapes: the multi-level fold when the grid folds onto the
// torus, and otherwise a serpentine space-filling placement (grid ranks
// in boustrophedon order onto torus nodes in a boustrophedon walk),
// which keeps consecutive ranks adjacent even for non-foldable shapes —
// the paper's "non-foldable mappings" future-work case.
func BestEffort(g vtopo.Grid, t torus.Torus) (*Mapping, error) {
	if m, err := MultiLevel(g, t); err == nil {
		return m, nil
	} else if !errors.Is(err, ErrNotFoldable) {
		return nil, err
	}
	m := &Mapping{Grid: g, Torus: t, Name: "besteffort", nodeOf: make([]torus.Coord, g.Size()), key: baseKey("besteffort", g, t)}
	for i, r := range serpentineRanks(g) {
		m.nodeOf[r] = serpentineCoord(t, i)
	}
	return m, nil
}

// PartitionMapping is the paper's partition mapping (Fig. 6(a)): every
// sibling partition is folded onto its own contiguous torus region so
// that neighbouring processes *within* a partition are torus
// neighbours. Unlike MultiLevel, each partition folds independently
// (the stripe-reversal parity is anchored per partition), so parent
// neighbours across partition seams may be several hops apart — the
// trade-off Section 3.3.2 describes ("process 3 is 2 hops away from
// process 4" in Fig. 6(a)).
//
// When the grid does not fold onto the torus, each partition instead
// receives a contiguous run of torus nodes in serpentine order, with
// its local ranks assigned serpentine-to-serpentine.
func PartitionMapping(g vtopo.Grid, t torus.Torus, rects []alloc.Rect) (*Mapping, error) {
	if err := check(g, t); err != nil {
		return nil, err
	}
	if err := alloc.Validate(rects, g.Px, g.Py); err != nil {
		return nil, err
	}
	key := baseKey("partition", g, t)
	for _, rect := range rects {
		key += fmt.Sprintf("|%d,%d,%d,%d", rect.X, rect.Y, rect.W, rect.H)
	}
	m := &Mapping{Grid: g, Torus: t, Name: "partition", nodeOf: make([]torus.Coord, g.Size()), key: key}

	if fx, _, err := foldParams(g, t); err == nil {
		// Foldable: fold like MultiLevel, but when every partition aligns
		// to stripe boundaries, anchor the stripe-reversal parity per
		// partition (each sibling folds independently, exactly Fig. 6(a)).
		// Per-partition parity is only injective when no stripe is shared
		// between partitions, hence the alignment requirement; otherwise
		// the global fold is used, which still gives every partition
		// 1-hop internal neighbours.
		aligned := true
		for _, rect := range rects {
			if rect.X%t.X != 0 || rect.W%t.X != 0 || rect.Y%t.Y != 0 || rect.H%t.Y != 0 {
				aligned = false
				break
			}
		}
		owner := make([]int, g.Size())
		if aligned {
			for pi, rect := range rects {
				for y := rect.Y; y < rect.Y+rect.H; y++ {
					for x := rect.X; x < rect.X+rect.W; x++ {
						owner[g.Rank(x, y)] = pi
					}
				}
			}
		}
		for r := range m.nodeOf {
			x, y := g.Coord(r)
			pi := 0
			if aligned {
				pi = owner[r]
			}
			sx, lx := x/t.X, x%t.X
			if (sx+pi)%2 == 1 {
				lx = t.X - 1 - lx
			}
			sy, ly := y/t.Y, y%t.Y
			if (sy+pi)%2 == 1 {
				ly = t.Y - 1 - ly
			}
			m.nodeOf[r] = torus.Coord{X: lx, Y: ly, Z: sx + fx*sy}
		}
		return m, nil
	}

	// Fallback: contiguous serpentine runs per partition.
	offset := 0
	for _, rect := range rects {
		sg, err := vtopo.NewSubgrid(g, rect)
		if err != nil {
			return nil, err
		}
		locals := serpentineRanks(sg.Grid())
		for i, l := range locals {
			m.nodeOf[sg.GlobalRank(l)] = serpentineCoord(t, offset+i)
		}
		offset += rect.Area()
	}
	return m, nil
}

// serpentineRanks enumerates the ranks of a grid row by row,
// alternating direction each row (boustrophedon), so consecutive ranks
// are always grid neighbours.
func serpentineRanks(g vtopo.Grid) []int {
	out := make([]int, 0, g.Size())
	for y := 0; y < g.Py; y++ {
		if y%2 == 0 {
			for x := 0; x < g.Px; x++ {
				out = append(out, g.Rank(x, y))
			}
		} else {
			for x := g.Px - 1; x >= 0; x-- {
				out = append(out, g.Rank(x, y))
			}
		}
	}
	return out
}

// serpentineCoord returns the i-th torus coordinate of a serpentine
// walk (x back and forth within y, y back and forth within z), so
// consecutive indices are always torus neighbours. The x direction
// alternates with the global row counter so that the walk stays
// continuous across z-plane transitions.
func serpentineCoord(t torus.Torus, i int) torus.Coord {
	z := i / (t.X * t.Y)
	rem := i % (t.X * t.Y)
	yIdx := rem / t.X // traversal position within the plane
	x := rem % t.X
	y := yIdx
	if z%2 == 1 {
		y = t.Y - 1 - yIdx
	}
	if (z*t.Y+yIdx)%2 == 1 {
		x = t.X - 1 - x
	}
	return torus.Coord{X: x, Y: y, Z: z}
}

// AvgHops returns the mean torus hop distance over the given rank
// pairs. It returns 0 for an empty pair list.
func AvgHops(m *Mapping, pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	total := 0
	for _, p := range pairs {
		total += m.Hops(p[0], p[1])
	}
	return float64(total) / float64(len(pairs))
}

// MaxHops returns the maximum torus hop distance over the given rank
// pairs.
func MaxHops(m *Mapping, pairs [][2]int) int {
	max := 0
	for _, p := range pairs {
		if h := m.Hops(p[0], p[1]); h > max {
			max = h
		}
	}
	return max
}

// Report summarizes the communication locality of a mapping for a
// partitioned run: hop statistics for the parent domain's halo pairs
// and for each sibling partition's internal halo pairs.
type Report struct {
	Name         string
	ParentAvg    float64
	ParentMax    int
	SiblingAvg   []float64
	SiblingMax   []int
	OverallAvg   float64 // parent and sibling pairs combined
	OverallPairs int
}

// Analyze computes a locality Report for mapping m with the sibling
// partitions given by rects.
func Analyze(m *Mapping, rects []alloc.Rect) (Report, error) {
	rep := Report{Name: m.Name}
	parentPairs := m.Grid.NeighborPairs()
	rep.ParentAvg = AvgHops(m, parentPairs)
	rep.ParentMax = MaxHops(m, parentPairs)
	total := 0
	count := 0
	for _, p := range parentPairs {
		total += m.Hops(p[0], p[1])
	}
	count += len(parentPairs)

	for _, rect := range rects {
		sg, err := vtopo.NewSubgrid(m.Grid, rect)
		if err != nil {
			return Report{}, err
		}
		local := sg.Grid()
		pairs := local.NeighborPairs()
		global := make([][2]int, len(pairs))
		for i, p := range pairs {
			global[i] = [2]int{sg.GlobalRank(p[0]), sg.GlobalRank(p[1])}
		}
		rep.SiblingAvg = append(rep.SiblingAvg, AvgHops(m, global))
		rep.SiblingMax = append(rep.SiblingMax, MaxHops(m, global))
		for _, p := range global {
			total += m.Hops(p[0], p[1])
		}
		count += len(global)
	}
	if count > 0 {
		rep.OverallAvg = float64(total) / float64(count)
	}
	rep.OverallPairs = count
	return rep, nil
}
