package mapping

import (
	"fmt"
	"strings"
)

// RenderPlanes draws the mapping as one rank-number grid per torus
// z-plane, the textual counterpart of the paper's Figs. 5(b) and 6.
// Intended for small illustrative tori; larger mappings render but get
// wide.
func (m *Mapping) RenderPlanes() string {
	width := len(fmt.Sprintf("%d", m.Grid.Size()-1))
	// Invert the mapping: torus node -> rank.
	rankAt := make(map[[3]int]int, m.Grid.Size())
	for r := 0; r < m.Grid.Size(); r++ {
		c := m.NodeOf(r)
		rankAt[[3]int{c.X, c.Y, c.Z}] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mapping %q on %dx%dx%d torus\n", m.Name, m.Torus.X, m.Torus.Y, m.Torus.Z)
	for z := 0; z < m.Torus.Z; z++ {
		fmt.Fprintf(&b, "z=%d\n", z)
		for y := 0; y < m.Torus.Y; y++ {
			for x := 0; x < m.Torus.X; x++ {
				if x > 0 {
					b.WriteByte(' ')
				}
				if r, ok := rankAt[[3]int{x, y, z}]; ok {
					fmt.Fprintf(&b, "%*d", width, r)
				} else {
					fmt.Fprintf(&b, "%*s", width, "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
