package mapping

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// The running example of the paper's Figs. 5-6: 32 processes in an 8x4
// virtual grid on a 4x4x2 torus, split into two 4x4 sibling partitions.
func paperExample(t *testing.T) (vtopo.Grid, torus.Torus, []alloc.Rect) {
	t.Helper()
	g, err := vtopo.NewGrid(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := torus.New(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rects := []alloc.Rect{{X: 0, Y: 0, W: 4, H: 4}, {X: 4, Y: 0, W: 4, H: 4}}
	return g, tor, rects
}

func TestSequentialMatchesFig5b(t *testing.T) {
	g, tor, _ := paperExample(t)
	m, err := Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 5(b): processes 0-3 on the topmost row of the first plane.
	for r := 0; r < 4; r++ {
		c := m.NodeOf(r)
		if c.Y != 0 || c.Z != 0 || c.X != r {
			t.Errorf("rank %d at %v, want (%d,0,0)", r, c, r)
		}
	}
	// "0 and 8 are neighbours in the 2D topology whereas they are 2 hops
	// apart in the torus."
	if got := m.Hops(0, 8); got != 2 {
		t.Errorf("Hops(0,8) = %d, want 2", got)
	}
	// "process 8 is 3 hops away from process 16".
	if got := m.Hops(8, 16); got != 3 {
		t.Errorf("Hops(8,16) = %d, want 3", got)
	}
}

func TestMultiLevelOneHopProperty(t *testing.T) {
	g, tor, _ := paperExample(t)
	m, err := MultiLevel(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// With fy == 1 every parent-grid neighbour pair is exactly 1 hop
	// apart: "this universal mapping scheme benefits both the nested
	// simulations and the parent simulation".
	for _, p := range g.NeighborPairs() {
		if got := m.Hops(p[0], p[1]); got != 1 {
			t.Errorf("pair %v: hops = %d, want 1", p, got)
		}
	}
}

func TestPartitionMappingContiguousPlanes(t *testing.T) {
	g, tor, rects := paperExample(t)
	m, err := PartitionMapping(g, tor, rects)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 6(a): sibling 1 occupies the z=0 plane, sibling 2 the z=1
	// plane.
	sg1, _ := vtopo.NewSubgrid(g, rects[0])
	for _, r := range sg1.Ranks() {
		if m.NodeOf(r).Z != 0 {
			t.Errorf("sibling-1 rank %d at %v, want z=0", r, m.NodeOf(r))
		}
	}
	sg2, _ := vtopo.NewSubgrid(g, rects[1])
	for _, r := range sg2.Ranks() {
		if m.NodeOf(r).Z != 1 {
			t.Errorf("sibling-2 rank %d at %v, want z=1", r, m.NodeOf(r))
		}
	}
	// Intra-sibling neighbours are 1 hop apart.
	for _, sg := range []vtopo.Subgrid{sg1, sg2} {
		local := sg.Grid()
		for _, p := range local.NeighborPairs() {
			a, b := sg.GlobalRank(p[0]), sg.GlobalRank(p[1])
			if got := m.Hops(a, b); got != 1 {
				t.Errorf("sibling pair (%d,%d): hops = %d, want 1", a, b, got)
			}
		}
	}
}

func TestMappingQualityOrdering(t *testing.T) {
	g, tor, rects := paperExample(t)
	seq, err := Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionMapping(g, tor, rects)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiLevel(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	rSeq, err := Analyze(seq, rects)
	if err != nil {
		t.Fatal(err)
	}
	rPart, err := Analyze(part, rects)
	if err != nil {
		t.Fatal(err)
	}
	rMulti, err := Analyze(multi, rects)
	if err != nil {
		t.Fatal(err)
	}
	if !(rMulti.OverallAvg <= rPart.OverallAvg && rPart.OverallAvg < rSeq.OverallAvg) {
		t.Errorf("avg hops: multi %v, partition %v, sequential %v — expected multi <= partition < sequential",
			rMulti.OverallAvg, rPart.OverallAvg, rSeq.OverallAvg)
	}
	// Partition mapping optimizes the siblings at the possible expense of
	// the parent seam (Fig. 6(a): "process 3 is 2 hops away from process
	// 4").
	for i := range rPart.SiblingAvg {
		if rPart.SiblingAvg[i] != 1 {
			t.Errorf("partition mapping sibling %d avg hops = %v, want 1", i, rPart.SiblingAvg[i])
		}
	}
}

func TestTXYZ(t *testing.T) {
	g, _ := vtopo.NewGrid(8, 4)
	tor, _ := torus.New(4, 4, 2)
	m, err := TXYZ(g, tor, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Consecutive rank pairs share a "node": adjacent z slots.
	if got := m.Hops(0, 1); got != 1 {
		t.Errorf("Hops(0,1) = %d", got)
	}
	c0, c1 := m.NodeOf(0), m.NodeOf(1)
	if c0.X != c1.X || c0.Y != c1.Y {
		t.Errorf("ranks 0,1 should differ only in z: %v vs %v", c0, c1)
	}
	if _, err := TXYZ(g, tor, 3); !errors.Is(err, ErrBadTDim) {
		t.Errorf("T=3 on Z=2: err = %v", err)
	}
}

func TestSizeMismatch(t *testing.T) {
	g, _ := vtopo.NewGrid(8, 4)
	tor, _ := torus.New(4, 4, 4)
	if _, err := Sequential(g, tor); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
	if _, err := MultiLevel(g, tor); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
	if _, err := TXYZ(g, tor, 2); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
	if _, err := PartitionMapping(g, tor, nil); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
}

func TestMultiLevelNotFoldable(t *testing.T) {
	g, _ := vtopo.NewGrid(6, 6)
	tor, _ := torus.New(4, 3, 3)
	if _, err := MultiLevel(g, tor); !errors.Is(err, ErrNotFoldable) {
		t.Errorf("err = %v, want ErrNotFoldable", err)
	}
	// Divisible stripes but wrong Z.
	g2, _ := vtopo.NewGrid(8, 8)
	tor2, _ := torus.New(4, 4, 4)
	if _, err := MultiLevel(g2, tor2); err != nil {
		t.Errorf("8x8 onto 4x4x4 should fold (fx=2, fy=2): %v", err)
	}
	// When the grid and torus have equal sizes and both stripe counts
	// divide evenly, fx*fy always equals Z, so divisibility alone decides
	// foldability.
	g3, _ := vtopo.NewGrid(16, 4)
	tor3, _ := torus.New(4, 2, 8)
	if _, err := MultiLevel(g3, tor3); err != nil {
		t.Errorf("16x4 onto 4x2x8 should fold (fx=4, fy=2): %v", err)
	}
}

// The BG/L production shape: 1024 cores as a 32x32 grid on an 8x8x16
// core-torus (fx=4, fy=4). All x-neighbours must be 1 hop; the average
// over all pairs must be well under the sequential mapping's.
func TestMultiLevelBGLShape(t *testing.T) {
	g, _ := vtopo.NewGrid(32, 32)
	tor, _ := torus.New(8, 8, 16)
	m, err := MultiLevel(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x+1 < 32; x++ {
			a, b := g.Rank(x, y), g.Rank(x+1, y)
			if got := m.Hops(a, b); got != 1 {
				t.Fatalf("x-pair (%d,%d) at y=%d: hops = %d, want 1", x, x+1, y, got)
			}
		}
	}
	seq, _ := Sequential(g, tor)
	pairs := g.NeighborPairs()
	if mAvg, sAvg := AvgHops(m, pairs), AvgHops(seq, pairs); mAvg >= sAvg/1.5 {
		t.Errorf("multilevel avg %v not clearly below sequential %v", mAvg, sAvg)
	}
}

func TestPartitionMappingUnequalPartitions(t *testing.T) {
	// 4 siblings in Table 2 proportions on a 32x32 grid, 8x8x16 torus.
	g, _ := vtopo.NewGrid(32, 32)
	tor, _ := torus.New(8, 8, 16)
	weights := []float64{432, 144, 168, 280}
	rects, err := alloc.Partition(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := PartitionMapping(g, tor, rects)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m, rects)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Sequential(g, tor)
	repSeq, err := Analyze(seq, rects)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.SiblingAvg {
		if rep.SiblingAvg[i] >= repSeq.SiblingAvg[i] {
			t.Errorf("sibling %d: partition avg %v not below sequential %v",
				i, rep.SiblingAvg[i], repSeq.SiblingAvg[i])
		}
	}
}

func TestBestEffortFoldable(t *testing.T) {
	g, _ := vtopo.NewGrid(32, 32)
	tor, _ := torus.New(8, 8, 16)
	m, err := BestEffort(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "multilevel" {
		t.Errorf("foldable shape should use the fold, got %q", m.Name)
	}
}

func TestBestEffortNonFoldable(t *testing.T) {
	// 36 ranks in a 6x6 grid on a 4x3x3 torus: 6 % 4 != 0, not foldable.
	g, _ := vtopo.NewGrid(6, 6)
	tor, _ := torus.New(4, 3, 3)
	m, err := BestEffort(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "besteffort" {
		t.Errorf("non-foldable shape should use serpentine, got %q", m.Name)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Serpentine still beats the oblivious placement on average.
	seq, _ := Sequential(g, tor)
	pairs := g.NeighborPairs()
	if AvgHops(m, pairs) > AvgHops(seq, pairs) {
		t.Errorf("best-effort avg %v worse than sequential %v",
			AvgHops(m, pairs), AvgHops(seq, pairs))
	}
	if _, err := BestEffort(g, torus.Torus{X: 2, Y: 2, Z: 2}); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestAvgMaxHopsEmptyPairs(t *testing.T) {
	g, _ := vtopo.NewGrid(2, 2)
	tor, _ := torus.New(2, 2, 1)
	m, err := Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if AvgHops(m, nil) != 0 || MaxHops(m, nil) != 0 {
		t.Error("empty pairs should give 0")
	}
}

func TestSerpentineRanksAdjacent(t *testing.T) {
	g := vtopo.Grid{Px: 5, Py: 4}
	ranks := serpentineRanks(g)
	if len(ranks) != 20 {
		t.Fatalf("len = %d", len(ranks))
	}
	seen := make(map[int]bool)
	for i, r := range ranks {
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
		if i > 0 {
			x0, y0 := g.Coord(ranks[i-1])
			x1, y1 := g.Coord(r)
			if abs(x0-x1)+abs(y0-y1) != 1 {
				t.Fatalf("serpentine step %d not grid-adjacent: (%d,%d)->(%d,%d)", i, x0, y0, x1, y1)
			}
		}
	}
}

func TestSerpentineCoordAdjacent(t *testing.T) {
	tor := torus.Torus{X: 4, Y: 3, Z: 3}
	prev := serpentineCoord(tor, 0)
	seen := map[torus.Coord]bool{prev: true}
	for i := 1; i < tor.Nodes(); i++ {
		c := serpentineCoord(tor, i)
		if seen[c] {
			t.Fatalf("duplicate coord %v at index %d", c, i)
		}
		seen[c] = true
		if tor.Hops(prev, c) != 1 {
			t.Fatalf("serpentine step %d: %v -> %v is %d hops", i, prev, c, tor.Hops(prev, c))
		}
		prev = c
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func BenchmarkMultiLevel1024(b *testing.B) {
	g, _ := vtopo.NewGrid(32, 32)
	tor, _ := torus.New(8, 8, 16)
	for i := 0; i < b.N; i++ {
		if _, err := MultiLevel(g, tor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze1024(b *testing.B) {
	g, _ := vtopo.NewGrid(32, 32)
	tor, _ := torus.New(8, 8, 16)
	rects, err := alloc.Partition([]float64{0.4, 0.3, 0.3}, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	m, err := MultiLevel(g, tor)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(m, rects); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRenderPlanes(t *testing.T) {
	g, tor, _ := paperExample(t)
	m, err := Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	out := m.RenderPlanes()
	// Fig. 5(b): first plane's top row is ranks 0..3.
	if !strings.Contains(out, "z=0\n 0  1  2  3") {
		t.Errorf("render missing Fig. 5(b) top row:\n%s", out)
	}
	if !strings.Contains(out, "z=1") {
		t.Errorf("render missing second plane:\n%s", out)
	}
	// Every rank appears exactly once.
	for r := 0; r < 32; r++ {
		want := fmt.Sprintf("%2d", r)
		if c := strings.Count(out, want); c < 1 {
			t.Errorf("rank %d missing from render (%q appears %d times)", r, want, c)
		}
	}
}
