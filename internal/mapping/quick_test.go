package mapping

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// quickShapes generates machine-consistent (ranks, weights) inputs.
func quickShapes(vals []reflect.Value, rng *rand.Rand) {
	ranks := []int{32, 64, 128, 256, 512, 1024}[rng.Intn(6)]
	k := 1 + rng.Intn(4)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()*3
	}
	vals[0] = reflect.ValueOf(ranks)
	vals[1] = reflect.ValueOf(weights)
}

// Property: every mapping kind is a bijection for every machine shape
// and partitioning.
func TestQuickMappingsBijective(t *testing.T) {
	f := func(ranks int, weights []float64) bool {
		g, err := machine.GridFor(ranks)
		if err != nil {
			return false
		}
		tor, err := machine.TorusFor(ranks)
		if err != nil {
			return false
		}
		rects, err := alloc.Partition(weights, g.Px, g.Py)
		if err != nil {
			return false
		}
		builders := []func() (*Mapping, error){
			func() (*Mapping, error) { return Sequential(g, tor) },
			func() (*Mapping, error) { return TXYZ(g, tor, 2) },
			func() (*Mapping, error) { return MultiLevel(g, tor) },
			func() (*Mapping, error) { return PartitionMapping(g, tor, rects) },
			func() (*Mapping, error) { return BestEffort(g, tor) },
		}
		for _, build := range builders {
			m, err := build()
			if err != nil {
				t.Logf("ranks=%d weights=%v: %v", ranks, weights, err)
				return false
			}
			if err := m.Validate(); err != nil {
				t.Logf("ranks=%d weights=%v: %v", ranks, weights, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11)), Values: quickShapes}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the multi-level fold's x-neighbours are always exactly one
// hop apart, and its overall average never loses to the oblivious
// mapping.
func TestQuickMultiLevelQuality(t *testing.T) {
	f := func(ranks int, weights []float64) bool {
		g, err := machine.GridFor(ranks)
		if err != nil {
			return false
		}
		tor, err := machine.TorusFor(ranks)
		if err != nil {
			return false
		}
		fold, err := MultiLevel(g, tor)
		if err != nil {
			return false
		}
		seq, err := Sequential(g, tor)
		if err != nil {
			return false
		}
		pairs := g.NeighborPairs()
		for _, p := range pairs {
			ax, ay := g.Coord(p[0])
			bx, by := g.Coord(p[1])
			if ay == by && bx == ax+1 { // x-neighbour
				if fold.Hops(p[0], p[1]) != 1 {
					t.Logf("ranks=%d: x-pair %v has %d hops", ranks, p, fold.Hops(p[0], p[1]))
					return false
				}
			}
		}
		return AvgHops(fold, pairs) <= AvgHops(seq, pairs)+1e-12
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(13)), Values: quickShapes}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: partition mapping gives every sibling internal average hops
// no worse than the oblivious mapping does.
func TestQuickPartitionSiblingLocality(t *testing.T) {
	f := func(ranks int, weights []float64) bool {
		g, err := machine.GridFor(ranks)
		if err != nil {
			return false
		}
		tor, err := machine.TorusFor(ranks)
		if err != nil {
			return false
		}
		rects, err := alloc.Partition(weights, g.Px, g.Py)
		if err != nil {
			return false
		}
		pm, err := PartitionMapping(g, tor, rects)
		if err != nil {
			return false
		}
		seq, err := Sequential(g, tor)
		if err != nil {
			return false
		}
		rp, err := Analyze(pm, rects)
		if err != nil {
			return false
		}
		rs, err := Analyze(seq, rects)
		if err != nil {
			return false
		}
		for i := range rp.SiblingAvg {
			if rp.SiblingAvg[i] > rs.SiblingAvg[i]+1e-12 {
				t.Logf("ranks=%d weights=%v sibling %d: partition %v vs oblivious %v",
					ranks, weights, i, rp.SiblingAvg[i], rs.SiblingAvg[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17)), Values: quickShapes}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: hop distances are symmetric under any mapping.
func TestQuickHopsSymmetric(t *testing.T) {
	g, _ := vtopo.NewGrid(16, 8)
	tor, _ := torus.New(4, 4, 8)
	m, err := BestEffort(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		a, b := rng.Intn(g.Size()), rng.Intn(g.Size())
		if m.Hops(a, b) != m.Hops(b, a) {
			t.Fatalf("asymmetric hops for ranks %d, %d", a, b)
		}
	}
}
