package topotime

import (
	"testing"

	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
	"nestwrf/internal/netsim"
	"nestwrf/internal/wrfsim"
)

func params() netsim.Params {
	return netsim.Params{LatencyPerHop: 2e-5, Overhead: 1e-5, Bandwidth: 175e6}
}

func build(t *testing.T, ranks int, fold bool) *Model {
	t.Helper()
	g, err := machine.GridFor(ranks)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := machine.TorusFor(ranks)
	if err != nil {
		t.Fatal(err)
	}
	var m *mapping.Mapping
	if fold {
		m, err = mapping.MultiLevel(g, tor)
	} else {
		m, err = mapping.Sequential(g, tor)
	}
	if err != nil {
		t.Fatal(err)
	}
	tm, err := New(m, params())
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, params()); err == nil {
		t.Error("nil mapping should fail")
	}
	g, _ := machine.GridFor(32)
	tor, _ := machine.TorusFor(32)
	m, _ := mapping.Sequential(g, tor)
	if _, err := New(m, netsim.Params{}); err == nil {
		t.Error("bad params should fail")
	}
}

func TestTransferScalesWithHops(t *testing.T) {
	tm := build(t, 32, false)
	// Ranks 0 and 1 are torus neighbours; 0 and 8 are 2 hops apart
	// (Fig. 5b).
	near := tm.Transfer(0, 1, 1000)
	far := tm.Transfer(0, 8, 1000)
	if far <= near {
		t.Errorf("2-hop transfer %v should exceed 1-hop %v", far, near)
	}
	want := params().Overhead + 2*params().LatencyPerHop + 1000/params().Bandwidth
	if far != want {
		t.Errorf("far = %v, want %v", far, want)
	}
	// Out-of-range ranks pay the diameter.
	worst := tm.Transfer(-1, 5, 0)
	if worst < tm.Transfer(0, 8, 0) {
		t.Error("out-of-range transfer should be worst-case")
	}
}

// The end-to-end topology claim, functionally: the same mini-WRF run
// finishes in less virtual time under the multi-level fold than under
// the oblivious mapping, with identical fields.
func TestFunctionalMappingGain(t *testing.T) {
	cfg := nest.Root("parent", 64, 64)
	cfg.AddChild("nest1", 60, 48, 3, 2, 2)
	cfg.AddChild("nest2", 48, 36, 3, 30, 30)

	run := func(fold bool) *wrfsim.Output {
		out, err := wrfsim.Run(cfg, wrfsim.Options{
			Ranks:     32,
			Steps:     3,
			Strategy:  wrfsim.Concurrent,
			PointCost: 1e-6,
			TM:        build(t, 32, fold),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	obl := run(false)
	fold := run(true)

	if d := obl.Parent.MaxDiff(fold.Parent); d != 0 {
		t.Errorf("mapping changed the forecast by %v", d)
	}
	t.Logf("virtual makespan: oblivious %.6f s, multilevel fold %.6f s", obl.MaxClock, fold.MaxClock)
	if fold.MaxClock >= obl.MaxClock {
		t.Errorf("fold makespan %.6f should beat oblivious %.6f", fold.MaxClock, obl.MaxClock)
	}
	if fold.AvgWait >= obl.AvgWait {
		t.Errorf("fold wait %.6f should beat oblivious %.6f", fold.AvgWait, obl.AvgWait)
	}
}
