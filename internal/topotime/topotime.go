// Package topotime bridges the functional MPI runtime and the torus
// topology model: a mpi.TimeModel whose per-message costs depend on the
// hop distance between the communicating ranks under a concrete
// rank-to-torus mapping. Running the functional mini-WRF with two
// different mappings then demonstrates the paper's topology-aware
// placement claim end to end — same forecast, less virtual time under
// the fold.
package topotime

import (
	"errors"

	"nestwrf/internal/mapping"
	"nestwrf/internal/netsim"
)

// Model is a topology-aware mpi.TimeModel.
type Model struct {
	m      *mapping.Mapping
	params netsim.Params
}

// ErrNil is returned when constructed without a mapping.
var ErrNil = errors.New("topotime: nil mapping")

// New builds a Model from a rank mapping and network parameters.
func New(m *mapping.Mapping, p netsim.Params) (*Model, error) {
	if m == nil {
		return nil, ErrNil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{m: m, params: p}, nil
}

// Transfer implements mpi.TimeModel: overhead + hops*latency +
// bytes/bandwidth between the mapped torus nodes of the two ranks.
// Ranks outside the mapping (should not happen in a consistent run)
// are charged the worst-case diameter.
func (t *Model) Transfer(src, dst, bytes int) float64 {
	hops := t.diameter()
	if src >= 0 && src < t.m.Grid.Size() && dst >= 0 && dst < t.m.Grid.Size() {
		hops = t.m.Hops(src, dst)
	}
	return t.params.Overhead +
		float64(hops)*t.params.LatencyPerHop +
		float64(bytes)/t.params.Bandwidth
}

// diameter returns the torus diameter in hops.
func (t *Model) diameter() int {
	tor := t.m.Torus
	return tor.X/2 + tor.Y/2 + tor.Z/2
}
