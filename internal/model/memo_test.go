package model

import (
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
	"nestwrf/internal/vtopo"
)

// buildPlacements assembles a two-sibling concurrent phase on a 64-rank
// multilevel mapping.
func buildPlacements(t *testing.T) (machine.Machine, *mapping.Mapping, []Placement) {
	t.Helper()
	m := machine.BGL()
	g, err := machine.GridFor(64)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := machine.TorusFor(64)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.MultiLevel(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	root := nest.Root("parent", 286, 307)
	c1 := root.AddChild("s1", 200, 180, 3, 5, 5)
	c2 := root.AddChild("s2", 160, 220, 3, 60, 60)
	sg1, err := vtopo.NewSubgrid(g, alloc.Rect{X: 0, Y: 0, W: 4, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	sg2, err := vtopo.NewSubgrid(g, alloc.Rect{X: 4, Y: 0, W: 4, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m, mp, []Placement{{D: c1, SG: sg1}, {D: c2, SG: sg2}}
}

// TestMemoizedMatchesUncached asserts the phase-cost cache is
// bit-exact against the uncached evaluation, for both contention
// settings, including the HopsAvg hop metric.
func TestMemoizedMatchesUncached(t *testing.T) {
	m, mp, placements := buildPlacements(t)
	defer SetMemoize(true)

	for _, contention := range []bool{true, false} {
		SetMemoize(false)
		want := phaseCosts(m, mp, placements, contention)
		SetMemoize(true)
		ResetCache()
		miss := phaseCosts(m, mp, placements, contention) // populates the cache
		hit := phaseCosts(m, mp, placements, contention)  // must be served from it
		for i := range want {
			if miss[i] != want[i] {
				t.Errorf("contention=%v placement %d: uncached %+v, first call %+v", contention, i, want[i], miss[i])
			}
			if hit[i] != want[i] {
				t.Errorf("contention=%v placement %d: uncached %+v, cached %+v", contention, i, want[i], hit[i])
			}
		}
	}
}

// TestMemoKeyDistinguishes asserts the cache key separates evaluations
// that must not share results: different contention, different machine
// constants, different mappings, different placements.
func TestMemoKeyDistinguishes(t *testing.T) {
	m, mp, placements := buildPlacements(t)

	key1, ok := phaseKey(m, mp, placements, true)
	if !ok {
		t.Fatal("phaseKey not cacheable for constructor-built mapping")
	}
	if key2, _ := phaseKey(m, mp, placements, false); key2 == key1 {
		t.Error("contention flag not encoded in key")
	}
	m2 := m
	m2.PointCost *= 2
	if key2, _ := phaseKey(m2, mp, placements, true); key2 == key1 {
		t.Error("machine PointCost not encoded in key")
	}
	mp2, err := mapping.Sequential(mp.Grid, mp.Torus)
	if err != nil {
		t.Fatal(err)
	}
	if key2, _ := phaseKey(m, mp2, placements, true); key2 == key1 {
		t.Error("mapping identity not encoded in key")
	}
	if key2, _ := phaseKey(m, mp, placements[:1], true); key2 == key1 {
		t.Error("placement set not encoded in key")
	}
}

// TestPhaseCostsCongestionMatchesPhaseCosts pins the instrumented
// entry point to the plain one: same costs, and congestion totals that
// agree with an independently constructed network.
func TestPhaseCostsCongestionMatchesPhaseCosts(t *testing.T) {
	m, mp, placements := buildPlacements(t)
	plain := PhaseCosts(m, mp, placements)
	inst, cong := PhaseCostsCongestion(m, mp, placements)
	for i := range plain {
		if plain[i] != inst[i] {
			t.Errorf("placement %d: PhaseCosts %+v, PhaseCostsCongestion %+v", i, plain[i], inst[i])
		}
	}
	if cong.Links == 0 || cong.TotalHops == 0 || cong.MaxLoad == 0 {
		t.Errorf("empty congestion summary: %+v", cong)
	}
}
