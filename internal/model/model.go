// Package model is the virtual-time cost engine of the simulated WRF:
// it computes per-sub-step computation and communication times for a
// domain decomposed over a rectangular process grid, mapped onto a
// torus, under static link contention from all concurrently executing
// siblings. All experiment timings derive from this engine, so results
// are deterministic and machine-independent; constants live in
// internal/machine and are calibrated against the paper's anchor
// numbers (see calibrate_test.go).
package model

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
	"nestwrf/internal/netsim"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// StepCost is the cost of one sub-step of one domain on its process
// subgrid.
type StepCost struct {
	// Compute is the per-rank computation time (identical across ranks
	// under balanced decomposition).
	Compute float64
	// CommMax is the worst per-rank communication time; Compute+CommMax
	// governs the synchronized step duration.
	CommMax float64
	// CommAvg is the mean per-rank communication time, the model's
	// per-rank MPI_Wait contribution.
	CommAvg float64
	// HopsAvg is the mean torus hop distance between communicating
	// neighbour ranks.
	HopsAvg float64
	// Ranks is the number of ranks the domain ran on.
	Ranks int
}

// Time returns the wall time of the synchronized sub-step.
func (c StepCost) Time() float64 { return c.Compute + c.CommMax }

// Placement binds a domain to the process subgrid it executes on.
type Placement struct {
	D  *nest.Domain
	SG vtopo.Subgrid
}

// haloPairs returns the global-rank neighbour pairs of a placement.
func haloPairs(p Placement) [][2]int {
	local := p.SG.Grid()
	pairs := local.NeighborPairs()
	out := make([][2]int, len(pairs))
	for i, pr := range pairs {
		out[i] = [2]int{p.SG.GlobalRank(pr[0]), p.SG.GlobalRank(pr[1])}
	}
	return out
}

// PhaseCosts computes the StepCost of every placement executing
// concurrently: link loads from all placements' halo exchanges are
// accumulated first, then each placement's communication times are
// evaluated under that contention. Passing a single placement models a
// phase where only that domain communicates (the default sequential
// strategy).
func PhaseCosts(m machine.Machine, mp *mapping.Mapping, placements []Placement) []StepCost {
	return phaseCosts(m, mp, placements, true)
}

// PhaseCostsNoContention evaluates the placements against an idle
// network (every message sees full link bandwidth). It exists for the
// contention ablation: comparing it with PhaseCosts isolates how much
// of the communication time the link-sharing model contributes.
func PhaseCostsNoContention(m machine.Machine, mp *mapping.Mapping, placements []Placement) []StepCost {
	return phaseCosts(m, mp, placements, false)
}

// PhaseCostsCongestion is PhaseCosts plus the congestion summary of
// the phase's accumulated link loads — the observability variant used
// when a run assembles a structured report. It is deliberately a
// separate entry point so the uninstrumented path stays allocation-
// identical.
func PhaseCostsCongestion(m machine.Machine, mp *mapping.Mapping, placements []Placement) ([]StepCost, netsim.Congestion) {
	net := acquireNet(mp.Torus, m.Net)
	addPhaseFlows(net, mp, placements)
	out := make([]StepCost, len(placements))
	for i, p := range placements {
		out[i] = stepCost(m, mp, net, p)
	}
	stats := net.Stats()
	releaseNet(net)
	return out, stats
}

// Phase-cost memoization (DESIGN.md Section 8). A phase's StepCosts
// are fully determined by the machine's cost parameters, the mapping's
// rank-to-node table, the contention flag, and the placements' domain
// extents and subgrid rectangles — all of which the key below encodes
// exactly (floats by their IEEE-754 bit patterns). Sweep experiments
// re-evaluate identical phases across steps, strategies and repeated
// configurations, so this is the model-layer analogue of the
// experiment harness's shared predictor cache.
var (
	// memoizeOff disables the phase-cost cache when set. The inverted
	// sense keeps the atomic's zero value meaning "memoize on" (the
	// default); atomicity makes toggling race-free against concurrent
	// phaseCosts calls, which read the flag exactly once per call.
	memoizeOff atomic.Bool
	phaseMu    sync.RWMutex
	phaseCache = map[string][]StepCost{}
)

// SetMemoize enables or disables the phase-cost cache. Only tests
// should call this; both settings produce identical results, so a
// concurrent simulation observes at worst a cache miss.
func SetMemoize(on bool) { memoizeOff.Store(!on) }

// ResetCache drops all memoized phase costs.
func ResetCache() {
	phaseMu.Lock()
	phaseCache = map[string][]StepCost{}
	phaseMu.Unlock()
}

// appendBits appends the exact bit pattern of a float64 to a cache key.
func appendBits(b []byte, v float64) []byte {
	return strconv.AppendUint(append(b, ':'), math.Float64bits(v), 16)
}

// phaseKey renders the memoization key for one phase evaluation, or
// ok=false when the mapping carries no content key (hand-built).
func phaseKey(m machine.Machine, mp *mapping.Mapping, placements []Placement, contention bool) (string, bool) {
	mk := mp.Key()
	if mk == "" {
		return "", false
	}
	b := make([]byte, 0, 160+32*len(placements))
	b = append(b, mk...)
	b = appendBits(b, m.PointCost)
	b = appendBits(b, m.StepOverhead)
	b = appendBits(b, m.BytesPerPoint)
	b = appendBits(b, m.Net.LatencyPerHop)
	b = appendBits(b, m.Net.Overhead)
	b = appendBits(b, m.Net.Bandwidth)
	b = strconv.AppendInt(append(b, ':'), int64(m.ExchangesPerStep), 10)
	if contention {
		b = append(b, '+')
	}
	for _, p := range placements {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(p.D.NX), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(p.D.NY), 10)
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(p.SG.Rect.X), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(p.SG.Rect.Y), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(p.SG.Rect.W), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(p.SG.Rect.H), 10)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(p.SG.Parent.Px), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(p.SG.Parent.Py), 10)
	}
	return string(b), true
}

// netPools reuses Network scratch state (the dense load array and
// touched-link list) across phaseCosts calls, keyed by the network's
// identity so pooled items are always directly reusable.
var netPools sync.Map // netPoolKey -> *sync.Pool

type netPoolKey struct {
	t torus.Torus
	p netsim.Params
}

func acquireNet(t torus.Torus, p netsim.Params) *netsim.Network {
	key := netPoolKey{t: t, p: p}
	poolAny, ok := netPools.Load(key)
	if !ok {
		poolAny, _ = netPools.LoadOrStore(key, &sync.Pool{})
	}
	pool := poolAny.(*sync.Pool)
	if n, ok := pool.Get().(*netsim.Network); ok && n != nil {
		n.Reset()
		return n
	}
	n, err := netsim.New(t, p)
	if err != nil {
		// Machine parameters are validated at construction; a failure here
		// is a programming error.
		panic(err)
	}
	return n
}

func releaseNet(n *netsim.Network) {
	if poolAny, ok := netPools.Load(netPoolKey{t: n.Torus, p: n.Params}); ok {
		poolAny.(*sync.Pool).Put(n)
	}
}

func phaseCosts(m machine.Machine, mp *mapping.Mapping, placements []Placement, contention bool) []StepCost {
	key, cacheable := "", false
	if !memoizeOff.Load() {
		key, cacheable = phaseKey(m, mp, placements, contention)
		if cacheable {
			phaseMu.RLock()
			cached, ok := phaseCache[key]
			phaseMu.RUnlock()
			if ok {
				return cached
			}
		}
	}
	net := acquireNet(mp.Torus, m.Net)
	if contention {
		addPhaseFlows(net, mp, placements)
	}
	out := make([]StepCost, len(placements))
	for i, p := range placements {
		out[i] = stepCost(m, mp, net, p)
	}
	releaseNet(net)
	if cacheable {
		phaseMu.Lock()
		phaseCache[key] = out
		phaseMu.Unlock()
	}
	return out
}

// addPhaseFlows accumulates the halo-exchange link loads of every
// placement onto net.
func addPhaseFlows(net *netsim.Network, mp *mapping.Mapping, placements []Placement) {
	for _, p := range placements {
		for _, pr := range haloPairs(p) {
			net.AddFlow(mp.NodeOf(pr[0]), mp.NodeOf(pr[1]))
			net.AddFlow(mp.NodeOf(pr[1]), mp.NodeOf(pr[0]))
		}
	}
}

// stepCost evaluates one placement under the prepared network loads.
func stepCost(m machine.Machine, mp *mapping.Mapping, net *netsim.Network, p Placement) StepCost {
	local := p.SG.Grid()
	w, h := local.Px, local.Py
	lx := ceilDiv(p.D.NX, w)
	ly := ceilDiv(p.D.NY, h)

	cost := StepCost{
		Compute: m.PointCost*float64(lx)*float64(ly) + m.StepOverhead,
		Ranks:   local.Size(),
	}

	msgs := float64(m.ExchangesPerStep)
	var commSum float64
	var hopSum, hopCnt float64
	for r := 0; r < local.Size(); r++ {
		var commR float64
		src := mp.NodeOf(p.SG.GlobalRank(r))
		for d := vtopo.West; d <= vtopo.North; d++ {
			nb := local.Neighbor(r, d)
			if nb < 0 {
				continue
			}
			dst := mp.NodeOf(p.SG.GlobalRank(nb))
			edge := ly // east/west messages carry a column of the tile
			if d == vtopo.South || d == vtopo.North {
				edge = lx
			}
			bytes := float64(edge) * m.BytesPerPoint
			perMsg := bytes / msgs
			commR += msgs * net.TransferTime(src, dst, int(perMsg))
			hopSum += float64(mp.Torus.Hops(src, dst))
			hopCnt++
		}
		commSum += commR
		if commR > cost.CommMax {
			cost.CommMax = commR
		}
	}
	cost.CommAvg = commSum / float64(local.Size())
	if hopCnt > 0 {
		cost.HopsAvg = hopSum / hopCnt
	}
	return cost
}

// SingleDomainStep computes the cost of one sub-step of a domain that
// runs alone on the full process grid (the parent simulation, or a
// sibling under the default sequential strategy).
func SingleDomainStep(m machine.Machine, mp *mapping.Mapping, d *nest.Domain) StepCost {
	full := vtopo.Subgrid{
		Parent: mp.Grid,
		Rect:   alloc.Rect{W: mp.Grid.Px, H: mp.Grid.Py},
	}
	return PhaseCosts(m, mp, []Placement{{D: d, SG: full}})[0]
}

// CouplingCost returns the per-parent-step cost of nesting
// bookkeeping for a child domain: interpolating the lateral boundary
// conditions from the parent and feeding the solution back. It is
// proportional to the nest's boundary and interior shares per rank.
func CouplingCost(m machine.Machine, d *nest.Domain, ranks int) float64 {
	if ranks <= 0 {
		return 0
	}
	boundary := float64(d.BoundaryPoints()) / float64(ranks)
	feedback := float64(d.Points()) / float64(ranks) / float64(d.Ratio*d.Ratio)
	return m.PointCost * 0.25 * (boundary + feedback)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Speedup returns t1/tp, guarding against division by zero.
func Speedup(t1, tp float64) float64 {
	if tp == 0 {
		return math.Inf(1)
	}
	return t1 / tp
}
