package model

import (
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
)

// Calibration anchors from the paper. These tests pin the model's
// absolute scale to the published measurements within generous bands;
// all comparative experiments depend only on relative behaviour, but
// keeping the absolute scale close makes the reproduced tables directly
// comparable with the paper's.

// Fig. 9 / Table 2: sibling 1 (394x418) takes about 0.4 s per nest
// sub-step on all 1024 BG/L cores and about 0.7 s on its 18x24 = 432
// core partition.
func TestCalibrationFig9Anchors(t *testing.T) {
	g, _ := machine.GridFor(1024)
	tor, _ := machine.TorusFor(1024)
	mp, err := mapping.Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.BGL()
	d := nest.Root("sib1", 394, 418)

	full := SingleDomainStep(m, mp, d)
	t.Logf("full 1024: compute=%.3f commMax=%.3f commAvg=%.3f time=%.3f hops=%.2f",
		full.Compute, full.CommMax, full.CommAvg, full.Time(), full.HopsAvg)
	if full.Time() < 0.25 || full.Time() > 0.55 {
		t.Errorf("sibling sub-step on 1024 cores = %.3f s, want ~0.4 (0.25-0.55)", full.Time())
	}

	sg, err := alloc.Partition([]float64{432, 592}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partition rects: %v", sg)
	sub := subgrid(t, mp.Grid, sg[0])
	part := PhaseCosts(m, mp, []Placement{{D: d, SG: sub}})[0]
	t.Logf("partition %d ranks: compute=%.3f commMax=%.3f time=%.3f",
		part.Ranks, part.Compute, part.CommMax, part.Time())
	if part.Time() < 0.45 || part.Time() > 0.95 {
		t.Errorf("sibling sub-step on ~432 cores = %.3f s, want ~0.7 (0.45-0.95)", part.Time())
	}
}

// Fig. 2 shape: diminishing returns for the 286x307 parent with a
// 415x445 nest on BG/L. Efficiency from 512 to 1024 cores must be well
// below ideal.
func TestCalibrationFig2Shape(t *testing.T) {
	m := machine.BGL()
	parent := nest.Root("parent", 286, 307)
	child := parent.AddChild("nest", 415, 445, 3, 50, 50)
	var t512, t1024 float64
	for _, ranks := range []int{64, 128, 256, 512, 1024} {
		g, _ := machine.GridFor(ranks)
		tor, _ := machine.TorusFor(ranks)
		mp, err := mapping.Sequential(g, tor)
		if err != nil {
			t.Fatal(err)
		}
		p := SingleDomainStep(m, mp, parent)
		c := SingleDomainStep(m, mp, child)
		iter := p.Time() + 3*c.Time()
		t.Logf("ranks=%4d iter=%.3f (parent %.3f, child step %.3f)", ranks, iter, p.Time(), c.Time())
		switch ranks {
		case 512:
			t512 = iter
		case 1024:
			t1024 = iter
		}
	}
	// The paper's own Table 2 / Fig. 9 numbers (0.7 s on 432 cores, 0.4 s
	// on 1024) imply T = W/P + C with C ~ 0.18 s, i.e. a 512->1024 gain
	// of ~1.55-1.6 for this domain — "saturation" in Fig. 2 is the
	// visual flattening of that curve, not a hard plateau.
	gain := t512 / t1024
	t.Logf("512->1024 gain: %.3f", gain)
	if gain > 1.65 {
		t.Errorf("512->1024 gain %.2f: scaling should be clearly sub-linear by 512", gain)
	}
	if gain < 1.0 {
		t.Errorf("512->1024 gain %.2f: should not lose absolute performance", gain)
	}
}
