package model

import (
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
	"nestwrf/internal/vtopo"
)

func setup1024(t *testing.T) (*mapping.Mapping, machine.Machine) {
	t.Helper()
	g, err := machine.GridFor(1024)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := machine.TorusFor(1024)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	return m, machine.BGL()
}

func subgrid(t *testing.T, g vtopo.Grid, r alloc.Rect) vtopo.Subgrid {
	t.Helper()
	sg, err := vtopo.NewSubgrid(g, r)
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestSingleDomainStepPositive(t *testing.T) {
	mp, m := setup1024(t)
	d := nest.Root("nest", 394, 418)
	c := SingleDomainStep(m, mp, d)
	if c.Compute <= 0 || c.CommMax <= 0 || c.CommAvg <= 0 {
		t.Fatalf("cost fields must be positive: %+v", c)
	}
	if c.CommAvg > c.CommMax {
		t.Errorf("CommAvg %v > CommMax %v", c.CommAvg, c.CommMax)
	}
	if c.Ranks != 1024 {
		t.Errorf("Ranks = %d", c.Ranks)
	}
	if c.Time() != c.Compute+c.CommMax {
		t.Error("Time() mismatch")
	}
}

// More processors means less compute per rank.
func TestComputeShrinksWithRanks(t *testing.T) {
	d := nest.Root("nest", 394, 418)
	var prev float64
	for i, ranks := range []int{64, 256, 1024} {
		g, _ := machine.GridFor(ranks)
		tor, _ := machine.TorusFor(ranks)
		mp, err := mapping.Sequential(g, tor)
		if err != nil {
			t.Fatal(err)
		}
		c := SingleDomainStep(machine.BGL(), mp, d)
		if i > 0 && c.Compute >= prev {
			t.Errorf("ranks=%d: compute %v not below previous %v", ranks, c.Compute, prev)
		}
		prev = c.Compute
	}
}

// Sub-linear scaling: the step time improvement from 512 to 1024 ranks
// must be clearly below the ideal 2x (the premise of the whole paper).
func TestSubLinearScaling(t *testing.T) {
	d := nest.Root("nest", 415, 445)
	times := map[int]float64{}
	for _, ranks := range []int{512, 1024} {
		g, _ := machine.GridFor(ranks)
		tor, _ := machine.TorusFor(ranks)
		mp, err := mapping.Sequential(g, tor)
		if err != nil {
			t.Fatal(err)
		}
		times[ranks] = SingleDomainStep(machine.BGL(), mp, d).Time()
	}
	ratio := times[512] / times[1024]
	if ratio >= 1.8 {
		t.Errorf("512->1024 speedup %v too close to linear", ratio)
	}
	if ratio <= 1.0 {
		t.Errorf("512->1024 ratio %v: more processors should not be slower here", ratio)
	}
}

// A sibling on a quarter of the machine takes less than 4x the step
// time it takes on the full machine (sub-linear scalability), which is
// exactly why concurrent siblings win.
func TestPartitionStepCostRatio(t *testing.T) {
	mp, m := setup1024(t)
	d := nest.Root("nest", 394, 418)
	full := SingleDomainStep(m, mp, d)
	quarter := subgrid(t, mp.Grid, alloc.Rect{X: 0, Y: 0, W: 16, H: 16})
	part := PhaseCosts(m, mp, []Placement{{D: d, SG: quarter}})[0]
	if part.Time() <= full.Time() {
		t.Errorf("quarter machine %v should be slower than full %v", part.Time(), full.Time())
	}
	if part.Time() >= 4*full.Time() {
		t.Errorf("quarter machine %v >= 4x full %v: scaling should be sub-linear", part.Time(), full.Time())
	}
}

// Communication fraction at 1024 ranks should be in the vicinity the
// paper reports ("about 40% of the total execution time in WRF is
// spent in communication").
func TestCommunicationFraction(t *testing.T) {
	mp, m := setup1024(t)
	d := nest.Root("nest", 394, 418)
	c := SingleDomainStep(m, mp, d)
	frac := c.CommMax / c.Time()
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("communication fraction = %v, want roughly 0.4 (0.2-0.6)", frac)
	}
}

// Concurrent placements see contention from each other: a sibling's
// comm cost with three other active siblings must be at least its cost
// when communicating alone.
func TestPhaseContention(t *testing.T) {
	mp, m := setup1024(t)
	d := nest.Root("nest", 300, 300)
	rects, err := alloc.Partition([]float64{1, 1, 1, 1}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	placements := make([]Placement, 4)
	for i, r := range rects {
		placements[i] = Placement{D: d, SG: subgrid(t, mp.Grid, r)}
	}
	together := PhaseCosts(m, mp, placements)
	alone := PhaseCosts(m, mp, placements[:1])
	if together[0].CommAvg < alone[0].CommAvg {
		t.Errorf("contended comm %v below uncontended %v", together[0].CommAvg, alone[0].CommAvg)
	}
}

// A topology-aware mapping must reduce both hops and communication
// time compared with the oblivious mapping for the same placement.
func TestMappingReducesComm(t *testing.T) {
	g, _ := machine.GridFor(1024)
	tor, _ := machine.TorusFor(1024)
	m := machine.BGL()
	d := nest.Root("nest", 394, 418)

	seq, err := mapping.Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := mapping.MultiLevel(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	cSeq := SingleDomainStep(m, seq, d)
	cFold := SingleDomainStep(m, fold, d)
	if cFold.HopsAvg >= cSeq.HopsAvg {
		t.Errorf("fold hops %v not below sequential %v", cFold.HopsAvg, cSeq.HopsAvg)
	}
	if cFold.CommAvg >= cSeq.CommAvg {
		t.Errorf("fold comm %v not below sequential %v", cFold.CommAvg, cSeq.CommAvg)
	}
	if cFold.Compute != cSeq.Compute {
		t.Error("mapping must not change compute time")
	}
}

func TestCouplingCost(t *testing.T) {
	m := machine.BGL()
	d := &nest.Domain{Name: "n", NX: 300, NY: 300, Ratio: 3}
	c := CouplingCost(m, d, 1024)
	if c <= 0 {
		t.Errorf("coupling cost = %v", c)
	}
	// More ranks share the work.
	if CouplingCost(m, d, 2048) >= c {
		t.Error("coupling cost should fall with ranks")
	}
	if CouplingCost(m, d, 0) != 0 {
		t.Error("zero ranks should cost 0")
	}
}

func TestSpeedupGuard(t *testing.T) {
	if Speedup(2, 1) != 2 {
		t.Error("Speedup(2,1) != 2")
	}
	if got := Speedup(1, 0); !(got > 1e308) {
		t.Errorf("Speedup(1,0) = %v, want +Inf", got)
	}
}
