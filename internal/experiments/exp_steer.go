package experiments

import (
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/steer"
	"nestwrf/internal/workload"
)

func init() {
	register("steer", "Future work: closed-loop steering of the sibling allocation from measured phase times", steerExp)
}

// steerExp bootstraps the allocation from the worst policy (equal
// split) and lets measured phase times correct it round by round.
func steerExp() (*Table, error) {
	t := &Table{
		ID:     "steer",
		Title:  "Steering rounds on the Table 2 configuration, 1024 BG/L cores (bootstrap: equal split)",
		Header: []string{"round", "iter time (s)", "imbalance", "work shares (observed)"},
	}
	opt, err := baseOptions(machine.BGL(), 1024, driver.Concurrent, driver.MapSequential)
	if err != nil {
		return nil, err
	}
	opt.Alloc = driver.AllocEqual
	ctrl := steer.DefaultController()
	ctrl.MaxRounds = 6
	out, err := ctrl.Run(workload.Table2Config(), opt)
	if err != nil {
		return nil, err
	}
	for i, r := range out.Rounds {
		w := ""
		for j, v := range r.Weights {
			if j > 0 {
				w += ":"
			}
			w += fmt.Sprintf("%.2f", v)
		}
		t.AddRow(fmt.Sprintf("%d", i+1), f(r.IterTime, 3), f(r.Imbalance, 3), w)
	}

	// Reference: the one-shot predicted allocation.
	refOpt, err := baseOptions(machine.BGL(), 1024, driver.Concurrent, driver.MapSequential)
	if err != nil {
		return nil, err
	}
	ref, err := driver.Run(workload.Table2Config(), refOpt)
	if err != nil {
		return nil, err
	}
	t.AddNote("one-shot predicted allocation: %.3f s — steering from the worst bootstrap recovers it (and can beat it: measurements correct residual prediction error)", ref.IterTime)
	t.AddNote("this implements the paper's future-work steering ('simultaneously steer these multiple nested simulations', Section 6) at the allocation level")
	return t, nil
}
