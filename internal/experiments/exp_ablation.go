package experiments

import (
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

// Ablation experiments: the design choices DESIGN.md calls out,
// isolated one at a time. They go beyond the paper's own evaluation
// but answer the questions its design raises.
func init() {
	register("abl-contention", "Ablation: link-contention model on vs off (what topology-awareness removes)", ablContention)
	register("abl-shape", "Ablation: Algorithm 1's square-like bisection vs strips with the same predicted weights", ablShape)
	register("abl-exchanges", "Ablation: sensitivity to halo-exchange message granularity", ablExchanges)
}

// ablContention compares mappings with the congestion model enabled and
// disabled. With contention off, only hop latency separates the
// mappings, showing that most of the topology-aware gain comes from
// relieving link sharing.
func ablContention() (*Table, error) {
	t := &Table{
		ID:     "abl-contention",
		Title:  "Per-iteration time (s) on 1024 BG/L cores, concurrent strategy",
		Header: []string{"mapping", "with contention", "without contention", "contention cost"},
	}
	cfg := workload.Table2Config()
	m := machine.BGL()
	var gapOn, gapOff float64
	var oblOn, oblOff float64
	for _, mk := range []struct {
		name string
		kind driver.MapKind
	}{
		{"oblivious", driver.MapSequential},
		{"partition", driver.MapPartition},
		{"multi-level", driver.MapMultiLevel},
	} {
		opt, err := baseOptions(m, 1024, driver.Concurrent, mk.kind)
		if err != nil {
			return nil, err
		}
		on, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		opt.NoContention = true
		off, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(mk.name, f(on.IterTime, 3), f(off.IterTime, 3),
			pct(stats.Improvement(on.IterTime, off.IterTime)))
		switch mk.name {
		case "oblivious":
			oblOn, oblOff = on.IterTime, off.IterTime
		case "multi-level":
			gapOn = stats.Improvement(oblOn, on.IterTime)
			gapOff = stats.Improvement(oblOff, off.IterTime)
		}
	}
	t.AddNote("multi-level's gain over oblivious: %s with contention vs %s without — link sharing, not raw hop latency, is what the fold removes", pct(gapOn), pct(gapOff))
	return t, nil
}

// ablShape isolates Algorithm 1's square-like partition shapes: both
// policies use the same predicted weights; only the rectangle shapes
// differ.
func ablShape() (*Table, error) {
	t := &Table{
		ID:     "abl-shape",
		Title:  "Partition shape with identical predicted weights, 1024 BG/L cores",
		Header: []string{"policy", "iter time (s)", "improvement vs default"},
	}
	m := machine.BGL()
	cfg := workload.Table2Config()
	seqOpt, err := baseOptions(m, 1024, driver.Sequential, driver.MapSequential)
	if err != nil {
		return nil, err
	}
	seq, err := driver.Run(cfg, seqOpt)
	if err != nil {
		return nil, err
	}
	t.AddRow("default sequential", f(seq.IterTime, 3), "-")
	for _, p := range []struct {
		name   string
		policy driver.AllocPolicy
	}{
		{"strips + predicted weights", driver.AllocStripsPredicted},
		{"Algorithm 1 + predicted weights", driver.AllocPredicted},
	} {
		opt, err := baseOptions(m, 1024, driver.Concurrent, driver.MapSequential)
		if err != nil {
			return nil, err
		}
		opt.Alloc = p.policy
		res, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, f(res.IterTime, 3), pct(stats.Improvement(seq.IterTime, res.IterTime)))
	}
	t.AddNote("the remaining gap is purely the communication cost of elongated rectangles — the reason Algorithm 1 splits along the longer dimension")
	return t, nil
}

// ablExchanges sweeps the per-step message count (WRF performs 144
// exchanges per step; Section 3.3). More, smaller messages shift the
// communication toward the latency-bound regime where concurrent
// siblings gain most.
func ablExchanges() (*Table, error) {
	t := &Table{
		ID:     "abl-exchanges",
		Title:  "Improvement vs halo-exchange granularity (messages per neighbour per sub-step)",
		Header: []string{"messages/neighbour", "total/step", "default (s)", "concurrent (s)", "improvement"},
	}
	cfg := workload.Table2Config()
	for _, ex := range []int{9, 18, 36, 72} {
		m := machine.BGL()
		m.ExchangesPerStep = ex
		// The predictor must be retrained for the modified machine; bypass
		// the shared cache.
		pred, err := driver.TrainPredictor(m)
		if err != nil {
			return nil, err
		}
		mkOpt := func(s driver.Strategy) driver.Options {
			return driver.Options{
				Machine: m, Ranks: 1024, Strategy: s,
				MapKind: driver.MapSequential, Alloc: driver.AllocPredicted,
				Predictor: pred,
			}
		}
		seq, err := driver.Run(cfg, mkOpt(driver.Sequential))
		if err != nil {
			return nil, err
		}
		con, err := driver.Run(cfg, mkOpt(driver.Concurrent))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", ex), fmt.Sprintf("%d", 4*ex),
			f(seq.IterTime, 3), f(con.IterTime, 3),
			pct(stats.Improvement(seq.IterTime, con.IterTime)))
	}
	t.AddNote("WRF's real granularity is 36 messages per neighbour (144 per step); finer granularity increases the fixed per-step communication cost, deepening sub-linear scaling and the concurrent strategy's advantage")
	return t, nil
}
