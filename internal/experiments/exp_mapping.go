package experiments

import (
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

func init() {
	register("tab4fig11", "Mappings on 1024 BG/L cores: execution and MPI_Wait times (Table 4, Fig. 11)", tab4fig11)
	register("tab5fig12", "Mappings on 4096 BG/P cores: execution, MPI_Wait and hops (Table 5, Fig. 12)", tab5fig12)
}

// mappingRow runs one configuration under the default strategy and all
// four mappings of the concurrent strategy.
type mappingRow struct {
	def, obl, txyz, part, multi driver.Result
}

func runMappings(cfg *nest.Domain, m machine.Machine, ranks int) (mappingRow, error) {
	var out mappingRow
	seqOpt, err := baseOptions(m, ranks, driver.Sequential, driver.MapSequential)
	if err != nil {
		return out, err
	}
	seqOpt.IOMode = iosim.Split
	out.def, err = driver.Run(cfg, seqOpt)
	if err != nil {
		return out, err
	}
	for _, mk := range []struct {
		kind driver.MapKind
		dst  *driver.Result
	}{
		{driver.MapSequential, &out.obl},
		{driver.MapTXYZ, &out.txyz},
		{driver.MapPartition, &out.part},
		{driver.MapMultiLevel, &out.multi},
	} {
		opt, err := baseOptions(m, ranks, driver.Concurrent, mk.kind)
		if err != nil {
			return out, err
		}
		res, err := driver.Run(cfg, opt)
		if err != nil {
			return out, err
		}
		*mk.dst = res
	}
	return out, nil
}

// tab4Configs returns the five configurations of Table 4 (three
// 2-sibling, one 3-sibling, one 4-sibling).
func tab4Configs() []*nest.Domain {
	mk2 := func(name string, a, b [2]int) *nest.Domain {
		root := nest.Root(name, workload.PacificParentNX, workload.PacificParentNY)
		root.AddChild("s1", a[0], a[1], 3, 5, 5)
		root.AddChild("s2", b[0], b[1], 3, 150, 150)
		return root
	}
	c3 := nest.Root("2sib+1", workload.PacificParentNX, workload.PacificParentNY)
	c3.AddChild("s1", 313, 337, 3, 5, 5)
	c3.AddChild("s2", 259, 229, 3, 150, 10)
	c3.AddChild("s3", 232, 256, 3, 20, 160)
	return []*nest.Domain{
		mk2("2sib-a", [2]int{259, 229}, [2]int{259, 229}),
		mk2("2sib-b", [2]int{313, 337}, [2]int{291, 301}),
		mk2("2sib-c", [2]int{394, 418}, [2]int{232, 256}),
		c3,
		workload.Table2Config(),
	}
}

// tab4fig11 reproduces Table 4 and Fig. 11 on 1024 BG/L cores.
func tab4fig11() (*Table, error) {
	t := &Table{
		ID:    "tab4fig11",
		Title: "Per-iteration times (s): default vs topology-oblivious vs topology-aware mappings",
		Header: []string{"config", "default", "oblivious", "partition", "multi-level", "TXYZ",
			"best gain vs obl"},
	}
	m := machine.BGL()
	var waitImpObl, waitImpAware []float64
	for i, cfg := range tab4Configs() {
		row, err := runMappings(cfg, m, 1024)
		if err != nil {
			return nil, err
		}
		best := row.part.IterTime
		if row.multi.IterTime < best {
			best = row.multi.IterTime
		}
		t.AddRow(
			fmt.Sprintf("%d (%d sib)", i+1, len(cfg.Children)),
			f(row.def.IterTime, 2), f(row.obl.IterTime, 2),
			f(row.part.IterTime, 2), f(row.multi.IterTime, 2), f(row.txyz.IterTime, 2),
			pct(stats.Improvement(row.obl.IterTime, best)),
		)
		waitImpObl = append(waitImpObl, stats.Improvement(row.def.WaitAvg, row.obl.WaitAvg))
		waitImpAware = append(waitImpAware, stats.Improvement(row.def.WaitAvg, row.multi.WaitAvg))
	}
	t.AddNote("paper Table 4 rows (default / oblivious / partition / multi-level / TXYZ): 2.77/2.25/2.10/2.07/2.12, 3.69/3.08/2.95/2.92/2.95, 3.43/2.89/2.72/2.72/2.83, 4.98/3.92/3.72/3.72/3.99, 4.75/3.53/3.39/3.33/3.44")
	t.AddNote("MPI_Wait improvement over default (Fig. 11b): oblivious avg %s, multi-level avg %s",
		pct(stats.Mean(waitImpObl)), pct(stats.Mean(waitImpAware)))
	return t, nil
}

// tab5Configs returns the three configurations of Table 5 (two
// 4-sibling, one 3-sibling) with larger nests suitable for 4096 cores.
func tab5Configs() []*nest.Domain {
	c1 := nest.Root("4sib-a", 420, 440)
	c1.AddChild("s1", 394, 418, 3, 5, 5)
	c1.AddChild("s2", 350, 370, 3, 160, 10)
	c1.AddChild("s3", 330, 310, 3, 10, 170)
	c1.AddChild("s4", 360, 390, 3, 170, 170)
	c2 := nest.Root("4sib-b", 420, 440)
	c2.AddChild("s1", 415, 445, 3, 5, 5)
	c2.AddChild("s2", 394, 418, 3, 170, 10)
	c2.AddChild("s3", 313, 337, 3, 10, 180)
	c2.AddChild("s4", 291, 301, 3, 180, 180)
	c3 := nest.Root("3sib", 420, 440)
	c3.AddChild("s1", 415, 445, 3, 5, 5)
	c3.AddChild("s2", 394, 418, 3, 170, 10)
	c3.AddChild("s3", 350, 370, 3, 60, 190)
	return []*nest.Domain{c1, c2, c3}
}

// tab5fig12 reproduces Table 5 and Fig. 12 on 4096 BG/P cores.
func tab5fig12() (*Table, error) {
	t := &Table{
		ID:    "tab5fig12",
		Title: "Per-iteration times (s) and hop statistics on 4096 BG/P cores",
		Header: []string{"config", "default", "oblivious", "partition", "multi-level",
			"hops: def", "obl", "part", "multi"},
	}
	m := machine.BGP()
	var waitImps []float64
	for i, cfg := range tab5Configs() {
		row, err := runMappings(cfg, m, 4096)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d (%d sib)", i+1, len(cfg.Children)),
			f(row.def.IterTime, 2), f(row.obl.IterTime, 2),
			f(row.part.IterTime, 2), f(row.multi.IterTime, 2),
			f(row.def.HopsAvg, 2), f(row.obl.HopsAvg, 2),
			f(row.part.HopsAvg, 2), f(row.multi.HopsAvg, 2),
		)
		waitImps = append(waitImps,
			stats.Improvement(row.def.WaitAvg, row.obl.WaitAvg),
			stats.Improvement(row.def.WaitAvg, row.part.WaitAvg),
			stats.Improvement(row.def.WaitAvg, row.multi.WaitAvg))
	}
	t.AddNote("paper Table 5 (default / oblivious / partition / multi-level): 5.43/3.94/3.92/3.93, 5.65/4.20/4.1/4.1, 5.61/4.39/4.28/4.39")
	t.AddNote("paper Fig. 12: MPI_Wait improvements exceed 50%% on average; topology-aware mappings halve the average hop count while the oblivious mapping's hops match the default")
	t.AddNote("our MPI_Wait improvements across configs and mappings: avg %s", pct(stats.Mean(waitImps)))
	return t, nil
}
