package experiments

import (
	"strings"
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/model"
	"nestwrf/internal/netsim"
)

// renderAll runs every registered experiment sequentially and renders
// the tables the way cmd/experiments does for a successful -all run.
func renderAll(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, o := range RunAll(1) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Experiment.ID, o.Err)
		}
		sb.WriteString(o.Table.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// resetPredictorCache drops fitted predictors so the next run rebuilds
// them through whichever netsim/model path is active.
func resetPredictorCache() {
	driver.ResetPredictorCache()
}

// TestFastPathOutputByteIdentical is the PR 4 equivalence guard: the
// dense cached-route netsim plus memoized model.stepCost must render
// the full experiment suite byte-identically to the retained reference
// slow path (map-based link loads, no phase-cost memoization).
func TestFastPathOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow; skipped with -short")
	}

	model.ResetCache()
	resetPredictorCache()
	fast := renderAll(t)

	netsim.SetReference(true)
	model.SetMemoize(false)
	defer func() {
		netsim.SetReference(false)
		model.SetMemoize(true)
	}()
	model.ResetCache()
	resetPredictorCache()
	ref := renderAll(t)

	if fast != ref {
		fastLines := strings.Split(fast, "\n")
		refLines := strings.Split(ref, "\n")
		for i := 0; i < len(fastLines) && i < len(refLines); i++ {
			if fastLines[i] != refLines[i] {
				t.Fatalf("output diverges at line %d:\nfast: %q\nref:  %q", i+1, fastLines[i], refLines[i])
			}
		}
		t.Fatalf("output lengths differ: fast %d lines, reference %d lines", len(fastLines), len(refLines))
	}
}

// TestMappingHopMetricsUnchanged pins the mapping-level hop metrics:
// the torus rework must not perturb Analyze reports in either mode.
func TestMappingHopMetricsUnchanged(t *testing.T) {
	g, err := machine.GridFor(256)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := machine.TorusFor(256)
	if err != nil {
		t.Fatal(err)
	}
	rects := []alloc.Rect{{X: 0, Y: 0, W: 8, H: 16}, {X: 8, Y: 0, W: 8, H: 16}}
	build := func() mapping.Report {
		mp, err := mapping.MultiLevel(g, tor)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mapping.Analyze(mp, rects)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fastRep := build()
	netsim.SetReference(true)
	defer netsim.SetReference(false)
	refRep := build()
	if fastRep.ParentAvg != refRep.ParentAvg || fastRep.ParentMax != refRep.ParentMax {
		t.Fatalf("parent hop metrics changed: fast %+v, reference %+v", fastRep, refRep)
	}
	for i := range fastRep.SiblingAvg {
		if fastRep.SiblingAvg[i] != refRep.SiblingAvg[i] || fastRep.SiblingMax[i] != refRep.SiblingMax[i] {
			t.Fatalf("sibling %d hop metrics changed: fast %+v, reference %+v", i, fastRep, refRep)
		}
	}
}
