// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the virtual-time simulator. Each
// experiment is registered under the paper artifact's identifier
// (fig2, tab1, tab2fig9, ...) and produces a Table whose rows mirror
// the series the paper reports, alongside the paper's own numbers
// where the text quotes them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/predict"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "*%s*\n\n", n)
		}
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

var registry []Experiment

func register(id, title string, run func() (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// canonicalOrder lists the experiment ids in the paper's presentation
// order, followed by the beyond-the-paper additions.
var canonicalOrder = []string{
	"fig2", "predict", "fig3", "fig4", "fig56",
	"periter", "fig8", "tab1", "tab2fig9", "fig10", "nsib", "tab3",
	"tab4fig11", "tab5fig12", "fig1314", "alloceff", "fig15", "seasia",
	"abl-contention", "abl-shape", "abl-exchanges", "bgq", "campaign", "steer",
}

// All returns the registered experiments in the paper's presentation
// order (unknown ids follow in registration order).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	rank := map[string]int{}
	for i, id := range canonicalOrder {
		rank[id] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		if iok && jok {
			return ri < rj
		}
		return iok && !jok
	})
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// predictors are trained once per machine and shared across
// experiments (the paper's 13 profiling runs are likewise done once).
var (
	predMu    sync.Mutex
	predCache = map[string]*predict.Model{}
)

func predictorFor(m machine.Machine) (*predict.Model, error) {
	predMu.Lock()
	defer predMu.Unlock()
	if p, ok := predCache[m.Name]; ok {
		return p, nil
	}
	p, err := driver.TrainPredictor(m)
	if err != nil {
		return nil, err
	}
	predCache[m.Name] = p
	return p, nil
}

// baseOptions builds run options with the shared predictor.
func baseOptions(m machine.Machine, ranks int, strategy driver.Strategy, kind driver.MapKind) (driver.Options, error) {
	p, err := predictorFor(m)
	if err != nil {
		return driver.Options{}, err
	}
	return driver.Options{
		Machine:   m,
		Ranks:     ranks,
		Strategy:  strategy,
		MapKind:   kind,
		Alloc:     driver.AllocPredicted,
		Predictor: p,
	}, nil
}

func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
