// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the virtual-time simulator. Each
// experiment is registered under the paper artifact's identifier
// (fig2, tab1, tab2fig9, ...) and produces a Table whose rows mirror
// the series the paper reports, alongside the paper's own numbers
// where the text quotes them.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/predict"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "*%s*\n\n", n)
		}
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

var registry []Experiment

func register(id, title string, run func() (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// canonicalOrder lists the experiment ids in the paper's presentation
// order, followed by the beyond-the-paper additions.
var canonicalOrder = []string{
	"fig2", "predict", "fig3", "fig4", "fig56",
	"periter", "fig8", "tab1", "tab2fig9", "fig10", "nsib", "tab3",
	"tab4fig11", "tab5fig12", "fig1314", "alloceff", "fig15", "seasia",
	"abl-contention", "abl-shape", "abl-exchanges", "bgq", "campaign", "steer",
	"ensemble",
}

// All returns the registered experiments in the paper's presentation
// order (unknown ids follow in registration order).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	rank := map[string]int{}
	for i, id := range canonicalOrder {
		rank[id] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		if iok && jok {
			return ri < rj
		}
		return iok && !jok
	})
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// predictors are trained once per machine and shared across
// experiments (the paper's 13 profiling runs are likewise done once).
// The cache itself lives in internal/driver so the experiment harness,
// facade and plan server all share one trained model per machine
// identity.
func predictorFor(m machine.Machine) (*predict.Model, error) {
	return driver.CachedPredictor(m)
}

// baseOptions builds run options with the shared predictor.
func baseOptions(m machine.Machine, ranks int, strategy driver.Strategy, kind driver.MapKind) (driver.Options, error) {
	p, err := predictorFor(m)
	if err != nil {
		return driver.Options{}, err
	}
	return driver.Options{
		Machine:   m,
		Ranks:     ranks,
		Strategy:  strategy,
		MapKind:   kind,
		Alloc:     driver.AllocPredicted,
		Predictor: p,
	}, nil
}

func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// parallelism is the fan-out width for independent configurations
// inside one experiment (forEach) — the harness-level counterpart of
// the paper's concurrent siblings.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// Parallelism reports the current intra-experiment fan-out width.
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism sets how many goroutines an experiment may use for
// independent configurations; n < 1 is clamped to 1 (sequential).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int64(n))
}

// forEach runs fn(i) for every i in [0, n), fanning out over at most
// Parallelism() goroutines. Callers write results to slot i of a
// pre-sized slice, so aggregate output is identical to a sequential
// loop (virtual time keeps each body deterministic). When several
// bodies fail, the error of the smallest index wins — again matching
// what a sequential loop would have reported.
func forEach(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = n
		first  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Outcome pairs an experiment with its result or error.
type Outcome struct {
	Experiment Experiment
	Table      *Table
	Err        error
}

// RunConcurrent executes the given experiments, fanning them out over
// at most parallel goroutines (parallel <= 1 runs them sequentially).
// Outcomes keep the input order regardless of completion order, so
// rendering them in sequence is byte-identical to a sequential run.
func RunConcurrent(exps []Experiment, parallel int) []Outcome {
	out := make([]Outcome, len(exps))
	if parallel > len(exps) {
		parallel = len(exps)
	}
	if parallel <= 1 {
		for i, e := range exps {
			tbl, err := e.Run()
			out[i] = Outcome{Experiment: e, Table: tbl, Err: err}
		}
		return out
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				tbl, err := exps[i].Run()
				out[i] = Outcome{Experiment: exps[i], Table: tbl, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// RunAll executes every registered experiment in the paper's
// presentation order with the given experiment-level fan-out.
func RunAll(parallel int) []Outcome { return RunConcurrent(All(), parallel) }
