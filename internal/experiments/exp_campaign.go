package experiments

import (
	"fmt"

	"nestwrf/internal/campaign"
	"nestwrf/internal/machine"
	"nestwrf/internal/stats"
)

func init() {
	register("campaign", "Dynamic regions of interest: a typhoon-season campaign with nest spawning and re-planning", campaignExp)
}

// campaignExp runs the five-phase typhoon-season storyline: nests form,
// multiply, intensify and decay; the concurrent strategy re-plans at
// every change and pays the state-redistribution cost.
func campaignExp() (*Table, error) {
	t := &Table{
		ID:    "campaign",
		Title: "Typhoon-season campaign on 1024 BG/L cores (100 iterations per phase)",
		Header: []string{"phase", "nests", "default s/iter", "concurrent s/iter",
			"phase gain", "redistribution (s)"},
	}
	opt, err := baseOptions(machine.BGL(), 1024, 0, 0)
	if err != nil {
		return nil, err
	}
	res, err := campaign.Run(campaign.Season(100), opt)
	if err != nil {
		return nil, err
	}
	for _, ph := range res.Phases {
		t.AddRow(ph.Name, fmt.Sprintf("%d", ph.Nests),
			f(ph.DefaultIter, 3), f(ph.ConcIter, 3),
			pct(stats.Improvement(ph.DefaultIter, ph.ConcIter)),
			f(ph.Redistribute, 3))
	}
	t.AddNote("campaign totals: default %.1f s vs concurrent %.1f s — %s improvement across %d re-plans (redistribution included)",
		res.TotalDefault, res.TotalConcurrent, pct(res.ImprovementPct()), res.Replans)
	t.AddNote("single-nest phases gain little (nothing to overlap); the peak 3-nest phase gains most — the paper's Section 4.3.4 trend, now across a dynamic timeline")
	return t, nil
}
