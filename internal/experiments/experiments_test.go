package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"nestwrf/internal/machine"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "predict", "fig3", "fig4", "fig56", "abl-contention", "abl-shape", "abl-exchanges", "bgq", "campaign", "seasia", "steer",
		"periter", "fig8", "tab1", "tab2fig9", "fig10", "nsib", "tab3",
		"tab4fig11", "tab5fig12", "fig1314", "alloceff", "fig15", "ensemble",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	if _, ok := ByID("fig2"); !ok {
		t.Error("ByID(fig2) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

// Every registered experiment must run and produce rows; ids must match
// the table, and both renderers must include every cell.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			text := tbl.String()
			md := tbl.Markdown()
			for _, row := range tbl.Rows {
				for _, cell := range row {
					if !strings.Contains(text, cell) {
						t.Errorf("text output missing cell %q", cell)
					}
					if !strings.Contains(md, cell) {
						t.Errorf("markdown output missing cell %q", cell)
					}
				}
			}
		})
	}
}

// pctVal parses a "12.34%" cell.
func pctVal(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

// The headline reproduction bands: who wins and by roughly what factor.
func TestHeadlineBands(t *testing.T) {
	if testing.Short() {
		t.Skip("headline band checks skipped in -short mode")
	}
	t.Run("periter", func(t *testing.T) {
		tbl, err := perIter85()
		if err != nil {
			t.Fatal(err)
		}
		avg := pctVal(t, tbl.Rows[0][1])
		max := pctVal(t, tbl.Rows[1][1])
		if avg < 15 || avg > 40 {
			t.Errorf("average improvement %.1f%% outside band around the paper's 21.14%%", avg)
		}
		if max < 25 || max > 55 {
			t.Errorf("max improvement %.1f%% outside band around the paper's 33.04%%", max)
		}
	})
	t.Run("predict", func(t *testing.T) {
		tbl, err := predictExp()
		if err != nil {
			t.Fatal(err)
		}
		ours := pctVal(t, tbl.Rows[0][1])
		naive := pctVal(t, tbl.Rows[1][1])
		if ours > 6 {
			t.Errorf("interpolation error %.2f%% above the paper's 6%%", ours)
		}
		if naive < 19 {
			t.Errorf("naive error %.2f%% below the paper's 19%%", naive)
		}
	})
	t.Run("fig10-crossover", func(t *testing.T) {
		tbl, err := fig10()
		if err != nil {
			t.Fatal(err)
		}
		first := pctVal(t, tbl.Rows[0][3])
		last := pctVal(t, tbl.Rows[len(tbl.Rows)-1][3])
		if first >= last {
			t.Errorf("improvement must grow with machine size: %.1f%% -> %.1f%%", first, last)
		}
		if first > 15 {
			t.Errorf("1024-core improvement %.1f%% too large (paper: 1.33%%)", first)
		}
		if last < 15 {
			t.Errorf("8192-core improvement %.1f%% too small (paper: 20.64%%)", last)
		}
	})
	t.Run("fig1314-io-fraction-grows", func(t *testing.T) {
		tbl, err := fig1314()
		if err != nil {
			t.Fatal(err)
		}
		firstFrac := pctVal(t, tbl.Rows[0][4])
		lastFrac := pctVal(t, tbl.Rows[len(tbl.Rows)-1][4])
		if lastFrac <= firstFrac {
			t.Errorf("sequential I/O fraction must grow with scale: %.1f%% -> %.1f%%", firstFrac, lastFrac)
		}
		if lastFrac < 50 {
			t.Errorf("I/O fraction at 8192 cores %.1f%% should dominate (paper Fig. 14)", lastFrac)
		}
	})
	t.Run("alloceff-ordering", func(t *testing.T) {
		tbl, err := allocEff()
		if err != nil {
			t.Fatal(err)
		}
		// Rows: default, equal, naive, ours (iter time in column 1).
		get := func(i int) float64 {
			v, err := strconv.ParseFloat(tbl.Rows[i][1], 64)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		def, equal, naive, ours := get(0), get(1), get(2), get(3)
		if !(ours < naive && naive < equal && equal < def) {
			t.Errorf("ordering violated: ours %.2f, naive %.2f, equal %.2f, default %.2f",
				ours, naive, equal, def)
		}
	})
}

// Two machines that share a name but differ in a cost-model field must
// not share a cached predictor (regression: the cache used to be keyed
// by Name alone).
func TestPredictorCacheKeyedByMachineIdentity(t *testing.T) {
	a := machine.BGL()
	b := machine.BGL()
	b.PointCost *= 2 // same Name, different cost model
	pa, err := predictorFor(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := predictorFor(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa == pb {
		t.Fatal("same-name machines with different cost models share a predictor")
	}
	again, err := predictorFor(a)
	if err != nil {
		t.Fatal(err)
	}
	if again != pa {
		t.Error("identical machine should hit the cache")
	}
}

func TestSetParallelismClamp(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(0), want 1", Parallelism())
	}
	SetParallelism(7)
	if Parallelism() != 7 {
		t.Errorf("Parallelism() = %d, want 7", Parallelism())
	}
}

func TestForEach(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		out := make([]int, 100)
		if err := forEach(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// When several indices fail, forEach must report the smallest index's
// error — what a sequential loop would have returned.
func TestForEachFirstErrorWins(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(8)
	err := forEach(50, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Errorf("err = %v, want the smallest-index failure", err)
	}
}

// RunConcurrent must keep outcomes in input order and capture errors
// without aborting the remaining experiments.
func TestRunConcurrentOrderAndErrors(t *testing.T) {
	boom := errors.New("boom")
	var exps []Experiment
	for i := 0; i < 8; i++ {
		i := i
		exps = append(exps, Experiment{
			ID:    fmt.Sprintf("e%d", i),
			Title: "fake",
			Run: func() (*Table, error) {
				if i == 2 {
					return nil, boom
				}
				return &Table{ID: fmt.Sprintf("e%d", i)}, nil
			},
		})
	}
	for _, parallel := range []int{1, 4} {
		outcomes := RunConcurrent(exps, parallel)
		if len(outcomes) != len(exps) {
			t.Fatalf("parallel=%d: %d outcomes", parallel, len(outcomes))
		}
		for i, o := range outcomes {
			if o.Experiment.ID != fmt.Sprintf("e%d", i) {
				t.Errorf("parallel=%d: outcome %d is %s (order lost)", parallel, i, o.Experiment.ID)
			}
			if i == 2 {
				if !errors.Is(o.Err, boom) {
					t.Errorf("parallel=%d: outcome 2 err = %v", parallel, o.Err)
				}
			} else if o.Err != nil || o.Table == nil || o.Table.ID != o.Experiment.ID {
				t.Errorf("parallel=%d: outcome %d = %+v", parallel, i, o)
			}
		}
	}
}

// The heavy experiments fan out over their configurations; their
// rendered tables must be byte-identical to the sequential run.
func TestParallelOutputMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy determinism check skipped in -short mode")
	}
	heavy := []string{"periter", "fig8", "tab1", "nsib", "tab3"}
	prev := Parallelism()
	defer SetParallelism(prev)
	render := func(workers int) string {
		SetParallelism(workers)
		var b strings.Builder
		for _, id := range heavy {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", id, workers, err)
			}
			b.WriteString(tbl.String())
			b.WriteString(tbl.Markdown())
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Error("parallel experiment output differs from sequential")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 7)
	s := tbl.String()
	if !strings.Contains(s, "== x: demo ==") || !strings.Contains(s, "note: note 7") {
		t.Errorf("text rendering:\n%s", s)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "### x: demo") || !strings.Contains(md, "| a | bb |") {
		t.Errorf("markdown rendering:\n%s", md)
	}
}
