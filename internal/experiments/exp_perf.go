package experiments

import (
	"fmt"
	"sort"

	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

func init() {
	register("periter", "Per-iteration improvement over 85 random Pacific configs, 1024 BG/L cores (Section 4.3.1)", perIter85)
	register("fig8", "Improvement incl./excl. I/O on 512-4096 BG/P cores, 30 configs (Fig. 8)", fig8)
	register("tab1", "Average and maximum MPI_Wait improvement (Table 1)", tab1)
	register("tab2fig9", "Sibling execution times, 4 siblings on 1024 BG/L cores (Table 2, Fig. 9)", tab2fig9)
	register("fig10", "Large siblings on 1024-8192 BG/P cores (Fig. 10)", fig10)
	register("nsib", "Improvement vs number of siblings (Section 4.3.4)", nsib)
	register("tab3", "Improvement vs maximum nest size on 8192 BG/P cores (Table 3)", tab3)
}

// comparePair runs one configuration under both strategies.
func comparePair(cfg *nest.Domain, m machine.Machine, ranks int, kind driver.MapKind,
	ioMode iosim.Mode, outEvery int) (seq, con driver.Result, err error) {
	seqOpt, err := baseOptions(m, ranks, driver.Sequential, driver.MapSequential)
	if err != nil {
		return seq, con, err
	}
	seqOpt.IOMode = ioMode
	seqOpt.OutputEverySteps = outEvery
	seq, err = driver.Run(cfg, seqOpt)
	if err != nil {
		return seq, con, err
	}
	conOpt, err := baseOptions(m, ranks, driver.Concurrent, kind)
	if err != nil {
		return seq, con, err
	}
	conOpt.IOMode = ioMode
	conOpt.OutputEverySteps = outEvery
	con, err = driver.Run(cfg, conOpt)
	return seq, con, err
}

// perIter85 reproduces Section 4.3.1: 85 random configurations on 1024
// BG/L cores (paper: average 21.14%, maximum 33.04%).
func perIter85() (*Table, error) {
	t := &Table{
		ID:     "periter",
		Title:  "Integration-time improvement of concurrent siblings over the default strategy",
		Header: []string{"metric", "ours", "paper"},
	}
	m := machine.BGL()
	configs := workload.PacificSuite(2012, 85)
	imps := make([]float64, len(configs))
	if err := forEach(len(configs), func(i int) error {
		seq, con, err := comparePair(configs[i], m, 1024, driver.MapSequential, iosim.Split, 0)
		if err != nil {
			return err
		}
		imps[i] = stats.Improvement(seq.IterTime, con.IterTime)
		return nil
	}); err != nil {
		return nil, err
	}
	s := stats.Summarize(imps)
	t.AddRow("average improvement", pct(s.Mean), "21.14%")
	t.AddRow("maximum improvement", pct(s.Max), "33.04%")
	t.AddRow("minimum improvement", pct(s.Min), "-")
	t.AddRow("configurations", fmt.Sprintf("%d", s.N), "85")
	t.AddNote("nest sizes 178x202-394x418 equivalent (94x124-415x445 random range), 2-4 siblings, topology-oblivious mapping")
	return t, nil
}

// fig8 reproduces Fig. 8: improvement with and without I/O time on
// BG/P at 512-4096 cores, averaged over 30 configurations.
func fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Average improvement over 30 configs, with and without I/O (PnetCDF, high-frequency output)",
		Header: []string{"procs", "excl. I/O", "incl. I/O"},
	}
	m := machine.BGP()
	configs := workload.PacificSuite(88, 30)
	ranksList := []int{512, 1024, 2048, 4096}
	// Flatten the ranks x configs sweep into one index space so the
	// fan-out covers all 120 independent runs at once.
	type cell struct{ ex, inc float64 }
	cells := make([]cell, len(ranksList)*len(configs))
	if err := forEach(len(cells), func(j int) error {
		ranks, cfg := ranksList[j/len(configs)], configs[j%len(configs)]
		seq, con, err := comparePair(cfg, m, ranks, driver.MapSequential, iosim.Collective, 5)
		if err != nil {
			return err
		}
		cells[j] = cell{
			ex:  stats.Improvement(seq.IterTime, con.IterTime),
			inc: stats.Improvement(seq.Total(), con.Total()),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for ri, ranks := range ranksList {
		ex := make([]float64, len(configs))
		inc := make([]float64, len(configs))
		for ci := range configs {
			ex[ci] = cells[ri*len(configs)+ci].ex
			inc[ci] = cells[ri*len(configs)+ci].inc
		}
		t.AddRow(fmt.Sprintf("%d", ranks), pct(stats.Mean(ex)), pct(stats.Mean(inc)))
	}
	t.AddNote("paper's Fig. 8: improvement is higher when I/O times are included, because PnetCDF does not scale with the writer count")
	return t, nil
}

// tab1 reproduces Table 1: MPI_Wait improvements.
func tab1() (*Table, error) {
	t := &Table{
		ID:     "tab1",
		Title:  "Improvement in per-rank MPI_Wait time (concurrent vs default)",
		Header: []string{"processors", "average", "maximum", "paper avg", "paper max"},
	}
	paper := map[string][2]string{
		"1024 on BG/L": {"38.42%", "66.30%"},
		"512 on BG/P":  {"30.70%", "60.92%"},
		"1024 on BG/P": {"36.01%", "60.11%"},
		"2048 on BG/P": {"27.02%", "55.54%"},
		"4096 on BG/P": {"28.68%", "43.86%"},
	}
	rows := []struct {
		label string
		m     machine.Machine
		ranks int
	}{
		{"1024 on BG/L", machine.BGL(), 1024},
		{"512 on BG/P", machine.BGP(), 512},
		{"1024 on BG/P", machine.BGP(), 1024},
		{"2048 on BG/P", machine.BGP(), 2048},
		{"4096 on BG/P", machine.BGP(), 4096},
	}
	configs := workload.PacificSuite(41, 20)
	imps := make([]float64, len(rows)*len(configs))
	if err := forEach(len(imps), func(j int) error {
		row, cfg := rows[j/len(configs)], configs[j%len(configs)]
		seq, con, err := comparePair(cfg, row.m, row.ranks, driver.MapSequential, iosim.Split, 0)
		if err != nil {
			return err
		}
		imps[j] = stats.Improvement(seq.WaitAvg, con.WaitAvg)
		return nil
	}); err != nil {
		return nil, err
	}
	for ri, row := range rows {
		s := stats.Summarize(imps[ri*len(configs) : (ri+1)*len(configs)])
		p := paper[row.label]
		t.AddRow(row.label, pct(s.Mean), pct(s.Max), p[0], p[1])
	}
	t.AddNote("20 random configurations per machine/size; paper values from Table 1")
	return t, nil
}

// tab2fig9 reproduces Table 2 and Fig. 9: the 4-sibling configuration.
func tab2fig9() (*Table, error) {
	t := &Table{
		ID:     "tab2fig9",
		Title:  "Per-sibling nest sub-step times: sequential (1024 cores each) vs concurrent (partitions)",
		Header: []string{"sibling", "size", "partition", "procs", "seq step (s)", "conc step (s)", "paper seq", "paper conc"},
	}
	cfg := workload.Table2Config()
	m := machine.BGL()
	seq, con, err := comparePair(cfg, m, 1024, driver.MapSequential, iosim.Split, 0)
	if err != nil {
		return nil, err
	}
	paperSeq := []string{"0.4", "0.2", "0.2", "0.3"}
	paperCon := []string{"0.7", "0.6", "0.6", "0.7"}
	var seqSum, conMax float64
	for i, c := range cfg.Children {
		seqSum += seq.Siblings[i].StepTime
		if con.Siblings[i].StepTime > conMax {
			conMax = con.Siblings[i].StepTime
		}
		t.AddRow(
			c.Name,
			fmt.Sprintf("%dx%d", c.NX, c.NY),
			con.Siblings[i].Rect.String(),
			fmt.Sprintf("%d", con.Siblings[i].Ranks),
			f(seq.Siblings[i].StepTime, 3),
			f(con.Siblings[i].StepTime, 3),
			paperSeq[i],
			paperCon[i],
		)
	}
	t.AddNote("sequential sum %.3f s vs concurrent max %.3f s: %.1f%% gain for the sibling phase (paper: 1.1 s vs 0.7 s, 36%%)",
		seqSum, conMax, stats.Improvement(seqSum, conMax))
	t.AddNote("paper partitions: 18x24, 18x8, 14x12, 14x20 (Table 2)")
	return t, nil
}

// fig10 reproduces Fig. 10: three large siblings on 1024-8192 BG/P
// cores (paper: 1.33% at 1024 rising to 20.64% at 8192).
func fig10() (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Improvement for 3 large siblings (586x643, 856x919, 925x850) vs BG/P cores",
		Header: []string{"procs", "default (s)", "concurrent (s)", "improvement"},
	}
	cfg := workload.Fig10Config()
	m := machine.BGP()
	for _, ranks := range []int{1024, 2048, 4096, 8192} {
		seq, con, err := comparePair(cfg, m, ranks, driver.MapSequential, iosim.Split, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", ranks), f(seq.IterTime, 3), f(con.IterTime, 3),
			pct(stats.Improvement(seq.IterTime, con.IterTime)))
	}
	t.AddNote("paper: 1.33%% at 1024 cores growing to 20.64%% at 8192 — large nests saturate later, so partitioning pays off only at scale")
	return t, nil
}

// nsib reproduces Section 4.3.4: improvement grows with the sibling
// count (paper: 19.43% for 2 siblings vs 24.22% for 4).
func nsib() (*Table, error) {
	t := &Table{
		ID:     "nsib",
		Title:  "Average improvement vs number of siblings, 1024 BG/L cores",
		Header: []string{"siblings", "avg improvement", "paper"},
	}
	m := machine.BGL()
	paper := map[int]string{2: "19.43%", 3: "-", 4: "24.22%"}
	for _, k := range []int{2, 3, 4} {
		var matching []*nest.Domain
		for _, cfg := range workload.PacificSuite(int64(100+k), 40) {
			if len(cfg.Children) == k {
				matching = append(matching, cfg)
			}
		}
		imps := make([]float64, len(matching))
		if err := forEach(len(matching), func(i int) error {
			seq, con, err := comparePair(matching[i], m, 1024, driver.MapSequential, iosim.Split, 0)
			if err != nil {
				return err
			}
			imps[i] = stats.Improvement(seq.IterTime, con.IterTime)
			return nil
		}); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d (n=%d)", k, len(matching)), pct(stats.Mean(imps)), paper[k])
	}
	t.AddNote("more siblings mean a longer sequential nest phase but an unchanged concurrent one, so the gain grows with the sibling count")
	return t, nil
}

// tab3 reproduces Table 3: improvement vs maximum nest size.
func tab3() (*Table, error) {
	t := &Table{
		ID:     "tab3",
		Title:  "Improvement vs maximum nest size, up to 8192 BG/P cores",
		Header: []string{"max nest", "improvement", "paper"},
	}
	m := machine.BGP()
	paper := map[string]string{"205x223": "25.62%", "394x418": "21.87%", "925x820": "10.11%"}
	fams := workload.Table3Configs()
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	imps := make([]float64, len(names))
	if err := forEach(len(names), func(i int) error {
		seq, con, err := comparePair(fams[names[i]], m, 8192, driver.MapSequential, iosim.Split, 0)
		if err != nil {
			return err
		}
		imps[i] = stats.Improvement(seq.IterTime, con.IterTime)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(name, pct(imps[i]), paper[name])
	}
	t.AddNote("larger nests need more processors before partitioning helps (Table 3)")
	return t, nil
}
