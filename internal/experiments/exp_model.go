package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"nestwrf/internal/alloc"
	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
	"nestwrf/internal/predict"
	"nestwrf/internal/vtopo"
	"nestwrf/internal/workload"
)

func init() {
	register("fig2", "WRF scalability with a subdomain on BG/L (286x307 parent + 415x445 nest)", fig2)
	register("predict", "Performance-prediction accuracy: interpolation vs naive models (Section 3.1)", predictExp)
	register("fig3", "Processor-space partitions in the ratio 0.15:0.3:0.35:0.2 (Fig. 3b)", fig3)
	register("fig4", "Partitioning along the longer vs shorter dimension, k=3 (Fig. 4)", fig4)
	register("fig56", "2D-to-3D mappings of 32 ranks on a 4x4x2 torus (Figs. 5-6)", fig56)
}

// fig2 sweeps the processor count for the Fig. 2 configuration under
// the default strategy and reports per-iteration times.
func fig2() (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "Execution time per iteration vs processors (default sequential strategy)",
		Header: []string{"procs", "iter time (s)", "speedup vs 64", "parallel efficiency"},
	}
	cfg := workload.Fig2Config()
	m := machine.BGL()
	var t64 float64
	var prev float64
	for _, ranks := range []int{64, 128, 256, 512, 1024} {
		opt, err := baseOptions(m, ranks, driver.Sequential, driver.MapSequential)
		if err != nil {
			return nil, err
		}
		res, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		if ranks == 64 {
			t64 = res.IterTime
		}
		speedup := t64 / res.IterTime
		eff := speedup * 64 / float64(ranks)
		t.AddRow(fmt.Sprintf("%d", ranks), f(res.IterTime, 3), f(speedup, 2), f(eff, 2))
		if ranks == 1024 {
			gain := prev / res.IterTime
			t.AddNote("512 -> 1024 gain: %.2fx — the diminishing returns the paper calls saturation around 512 processors", gain)
		}
		prev = res.IterTime
	}
	t.AddNote("paper: 'performance of WRF involving a subdomain saturates at about 512 processors' (Fig. 2)")
	return t, nil
}

// predictExp reproduces the Section 3.1 accuracy comparison.
func predictExp() (*Table, error) {
	t := &Table{
		ID:     "predict",
		Title:  "Worst relative prediction error over test domains",
		Header: []string{"model", "worst error", "paper"},
	}
	// Profiling on 256 processors: at this scale the fixed per-step
	// costs are a substantial share of the sub-step time, which is what
	// defeats the points-proportional model (paper: >19% error).
	m := machine.BGL()
	g, err := machine.GridFor(256)
	if err != nil {
		return nil, err
	}
	tor, err := machine.TorusFor(256)
	if err != nil {
		return nil, err
	}
	mp, err := mapping.Sequential(g, tor)
	if err != nil {
		return nil, err
	}
	truth := func(nx, ny int) float64 {
		return model.SingleDomainStep(m, mp, nest.Root("probe", nx, ny)).Time()
	}
	samples := predict.Profile(predict.DefaultBasis(), truth)
	interp, err := predict.Fit(samples)
	if err != nil {
		return nil, err
	}
	prop, err := predict.FitProportional(samples)
	if err != nil {
		return nil, err
	}
	lin, err := predict.FitLinear(samples)
	if err != nil {
		return nil, err
	}

	// The paper's test set: 55,900-94,990 points, aspect 0.5-1.5.
	rng := rand.New(rand.NewSource(2012))
	var wInterp, wProp, wLin float64
	for trial := 0; trial < 200; trial++ {
		points := 55900 + rng.Float64()*(94990-55900)
		aspect := 0.5 + rng.Float64()
		nx := int(math.Round(math.Sqrt(points * aspect)))
		ny := int(math.Round(float64(nx) / aspect))
		tv := truth(nx, ny)
		p := float64(nx * ny)
		wInterp = math.Max(wInterp, predict.RelErr(interp.Predict(float64(nx)/float64(ny), p), tv))
		wProp = math.Max(wProp, predict.RelErr(prop.Predict(p), tv))
		wLin = math.Max(wLin, predict.RelErr(lin.Predict(p), tv))
	}
	t.AddRow("Delaunay interpolation (ours)", pct(wInterp*100), "< 6%")
	t.AddRow("proportional to points (naive)", pct(wProp*100), "> 19%")
	t.AddRow("univariate linear", pct(wLin*100), "-")
	t.AddNote("200 random test domains, 55,900-94,990 points, aspect 0.5-1.5 (the paper's test ranges)")
	return t, nil
}

// fig3 partitions a 32x32 grid in the paper's illustrated ratios.
func fig3() (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Algorithm 1 partitions of a 32x32 processor grid",
		Header: []string{"sibling", "weight", "partition", "procs", "share", "squareness"},
	}
	weights := []float64{0.15, 0.3, 0.35, 0.2}
	rects, err := alloc.Partition(weights, 32, 32)
	if err != nil {
		return nil, err
	}
	for i, r := range rects {
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			f(weights[i], 2),
			r.String(),
			fmt.Sprintf("%d", r.Area()),
			pct(100*float64(r.Area())/1024),
			f(r.Squareness(), 2),
		)
	}
	if err := alloc.Validate(rects, 32, 32); err != nil {
		return nil, err
	}
	t.AddNote("partitions tile the grid exactly; areas proportional to the predicted execution-time ratios (max deviation %.1f%%)",
		100*alloc.ProportionalityError(rects, weights))
	return t, nil
}

// fig4 contrasts longer-dimension with shorter-dimension first splits.
func fig4() (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Average partition squareness: first split along longer vs shorter dimension",
		Header: []string{"strategy", "avg squareness", "min squareness"},
	}
	weights := []float64{1, 1, 1}
	// Longer-dimension split (Algorithm 1) on a 32x16 grid.
	long, err := alloc.Partition(weights, 32, 16)
	if err != nil {
		return nil, err
	}
	// Shorter-dimension-first strawman (Fig. 4(b)).
	short, err := alloc.PartitionShorterFirst(weights, 32, 16)
	if err != nil {
		return nil, err
	}
	avgMin := func(rects []alloc.Rect) (avg, mn float64) {
		mn = 1
		for _, r := range rects {
			s := r.Squareness()
			avg += s
			if s < mn {
				mn = s
			}
		}
		return avg / float64(len(rects)), mn
	}
	a1, m1 := avgMin(long)
	a2, m2 := avgMin(short)
	t.AddRow("longer dimension first (Alg. 1)", f(a1, 2), f(m1, 2))
	t.AddRow("shorter dimension first", f(a2, 2), f(m2, 2))
	t.AddNote("the paper's Fig. 4: splitting along the longer dimension keeps rectangles square-like, minimizing the X/Y communication-volume imbalance")
	return t, nil
}

// fig56 reproduces the mapping example of Figs. 5 and 6.
func fig56() (*Table, error) {
	t := &Table{
		ID:     "fig56",
		Title:  "Hop statistics for 32 ranks (8x4 grid, two 4x4 siblings) on a 4x4x2 torus",
		Header: []string{"mapping", "parent avg hops", "sib1 avg", "sib2 avg", "overall avg", "parent max"},
	}
	g, err := vtopo.NewGrid(8, 4)
	if err != nil {
		return nil, err
	}
	tor, err := machine.TorusFor(32)
	if err != nil {
		return nil, err
	}
	rects := []alloc.Rect{{X: 0, Y: 0, W: 4, H: 4}, {X: 4, Y: 0, W: 4, H: 4}}
	maps := []struct {
		name  string
		build func() (*mapping.Mapping, error)
	}{
		{"oblivious (Fig. 5b)", func() (*mapping.Mapping, error) { return mapping.Sequential(g, tor) }},
		{"TXYZ", func() (*mapping.Mapping, error) { return mapping.TXYZ(g, tor, 2) }},
		{"partition (Fig. 6a)", func() (*mapping.Mapping, error) { return mapping.PartitionMapping(g, tor, rects) }},
		{"multi-level (Fig. 6b)", func() (*mapping.Mapping, error) { return mapping.MultiLevel(g, tor) }},
	}
	for _, mk := range maps {
		mp, err := mk.build()
		if err != nil {
			return nil, err
		}
		rep, err := mapping.Analyze(mp, rects)
		if err != nil {
			return nil, err
		}
		t.AddRow(mk.name,
			f(rep.ParentAvg, 2), f(rep.SiblingAvg[0], 2), f(rep.SiblingAvg[1], 2),
			f(rep.OverallAvg, 2), fmt.Sprintf("%d", rep.ParentMax))
	}
	t.AddNote("paper: oblivious mapping puts 2D neighbours 2-3 hops apart; partition mapping makes sibling neighbours 1 hop; multi-level folding also keeps parent neighbours 1 hop")
	return t, nil
}
