package experiments

import (
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

func init() {
	register("seasia", "South-East Asia configurations (Section 4.1.1): eight fixed setups, three with second-level siblings", seasia)
}

// seasia evaluates the eight fixed SE-Asia configurations, including
// the two-level nesting cases, on 4096 BG/P cores.
func seasia() (*Table, error) {
	t := &Table{
		ID:     "seasia",
		Title:  "SE-Asia configurations on 4096 BG/P cores",
		Header: []string{"config", "siblings", "levels", "default (s)", "concurrent (s)", "improvement"},
	}
	m := machine.BGP()
	var imps []float64
	for _, cfg := range workload.SEAsiaSuite() {
		seq, con, err := comparePair(cfg, m, 4096, driver.MapMultiLevel, iosim.Collective, 0)
		if err != nil {
			return nil, err
		}
		imp := stats.Improvement(seq.IterTime, con.IterTime)
		imps = append(imps, imp)
		t.AddRow(cfg.Name,
			fmt.Sprintf("%d", len(cfg.Children)),
			fmt.Sprintf("%d", cfg.Depth()),
			f(seq.IterTime, 3), f(con.IterTime, 3), pct(imp))
	}
	t.AddNote("average improvement %s across the suite; the two-level configurations (depth 2) partition recursively: each mid-level domain's rectangle is subdivided among its own children", pct(stats.Mean(imps)))
	t.AddNote("the paper used these configurations for the qualitative SE-Asia study; it reports aggregate improvements only for the Pacific suite")
	return t, nil
}
