package experiments

import (
	"context"
	"fmt"

	"nestwrf/internal/ensemble"
	"nestwrf/internal/planserve"
)

func init() {
	register("ensemble", "Ensemble campaigns: perturbed-scenario families with streaming aggregate statistics", ensembleExp)
}

// ensembleExp runs one campaign per generator family and tabulates the
// streamed aggregates: the concurrent strategy's gain distribution over
// storm-track jitter, sampled nest hierarchies, and machine/allocation
// sweeps. The table reports the plan cache's distinct-geometry count —
// the quantized jitter space means a family of members shares a much
// smaller set of plans.
func ensembleExp() (*Table, error) {
	t := &Table{
		ID:    "ensemble",
		Title: "Perturbed-scenario ensembles on 512 ranks (36 members per family, streamed aggregates)",
		Header: []string{"family", "members", "mean gain", "p10 gain", "median gain",
			"p90 gain", "distinct plans"},
	}
	for _, gen := range []string{ensemble.GenSeason, ensemble.GenHierarchy, ensemble.GenSweep} {
		// A fresh cache per family keeps the distinct-plan column (cache
		// misses) a deterministic property of the family itself.
		cache := planserve.NewPlanCache(4096)
		eng := &ensemble.Engine{
			Spec: ensemble.Spec{
				Generator:     gen,
				Members:       36,
				Seed:          7,
				Ranks:         512,
				StepsPerPhase: 10,
			},
			Workers: 4,
			Cache:   cache,
		}
		sum, err := eng.Run(context.Background())
		cache.Close()
		if err != nil {
			return nil, err
		}
		imp := sum.Aggregates.ImprovementPct
		p10, err := imp.Quantile(0.1)
		if err != nil {
			return nil, err
		}
		p50, err := imp.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		p90, err := imp.Quantile(0.9)
		if err != nil {
			return nil, err
		}
		t.AddRow(gen, fmt.Sprintf("%d", sum.Committed),
			pct(imp.Mean), pct(p10), pct(p50), pct(p90),
			fmt.Sprintf("%d", sum.CacheMisses))
	}
	t.AddNote("members stream into P² quantile and Welford mean/variance accumulators: memory stays O(1) in campaign size, and checkpointed runs resume to bit-identical aggregates")
	t.AddNote("the jitter space is quantized, so each family re-plans far fewer distinct geometries than it runs members — the shared plan cache turns ensembles from O(members) into O(distinct plans) planning work")
	return t, nil
}
