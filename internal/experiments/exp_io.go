package experiments

import (
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

func init() {
	register("fig1314", "Integration, I/O and total per-iteration time vs BG/P cores with high-frequency output (Figs. 13-14)", fig1314)
	register("alloceff", "Processor-allocation efficiency: naive strips vs Algorithm 1 (Section 4.6)", allocEff)
	register("fig15", "Scalability and speedup, two 259x229 siblings on 32-1024 cores (Fig. 15)", fig15)
}

// fig1314 reproduces Figs. 13 and 14: per-iteration integration, I/O
// and total times under high-frequency output, plus the I/O fraction.
func fig1314() (*Table, error) {
	t := &Table{
		ID:    "fig1314",
		Title: "Per-iteration times (s) with output every 5 steps (PnetCDF collective writes)",
		Header: []string{"procs",
			"seq integ", "seq I/O", "seq total", "seq I/O frac",
			"conc integ", "conc I/O", "conc total", "conc I/O frac"},
	}
	m := machine.BGP()
	configs := workload.PacificSuite(77, 10)
	for _, ranks := range []int{512, 1024, 2048, 4096, 8192} {
		var sInt, sIO, cInt, cIO []float64
		for _, cfg := range configs {
			seq, con, err := comparePair(cfg, m, ranks, driver.MapSequential, iosim.Collective, 5)
			if err != nil {
				return nil, err
			}
			sInt = append(sInt, seq.IterTime)
			sIO = append(sIO, seq.IOTime)
			cInt = append(cInt, con.IterTime)
			cIO = append(cIO, con.IOTime)
		}
		si, so := stats.Mean(sInt), stats.Mean(sIO)
		ci, co := stats.Mean(cInt), stats.Mean(cIO)
		t.AddRow(fmt.Sprintf("%d", ranks),
			f(si, 3), f(so, 3), f(si+so, 3), pct(100*so/(si+so)),
			f(ci, 3), f(co, 3), f(ci+co, 3), pct(100*co/(ci+co)),
		)
	}
	t.AddNote("paper Fig. 13(b): sequential per-iteration I/O time rises steadily with processor count (PnetCDF does not scale with writers); the concurrent strategy writes sibling files with partition-sized writer groups simultaneously")
	t.AddNote("paper Fig. 14: the I/O fraction of total time grows with scale for the sequential strategy, throttling overall scalability")
	return t, nil
}

// allocEff reproduces Section 4.6: default 4.49 s; naive strips 4.08 s
// (9%); Algorithm 1 with predicted times 3.72 s (17%).
func allocEff() (*Table, error) {
	t := &Table{
		ID:     "alloceff",
		Title:  "Allocation policies on a 4-sibling configuration, 1024 BG/L cores",
		Header: []string{"policy", "iter time (s)", "improvement vs default", "paper"},
	}
	m := machine.BGL()
	cfg := workload.Table2Config()

	seqOpt, err := baseOptions(m, 1024, driver.Sequential, driver.MapSequential)
	if err != nil {
		return nil, err
	}
	seq, err := driver.Run(cfg, seqOpt)
	if err != nil {
		return nil, err
	}
	t.AddRow("default sequential", f(seq.IterTime, 2), "-", "4.49 s")

	for _, p := range []struct {
		name   string
		policy driver.AllocPolicy
		paper  string
	}{
		{"equal strips", driver.AllocEqual, "-"},
		{"naive strips (points)", driver.AllocNaivePoints, "9% (4.08 s)"},
		{"Algorithm 1 + prediction (ours)", driver.AllocPredicted, "17% (3.72 s)"},
	} {
		opt, err := baseOptions(m, 1024, driver.Concurrent, driver.MapSequential)
		if err != nil {
			return nil, err
		}
		opt.Alloc = p.policy
		res, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, f(res.IterTime, 2), pct(stats.Improvement(seq.IterTime, res.IterTime)), p.paper)
	}
	t.AddNote("paper Section 4.6: the prediction-driven partitioner beats the naive proportional policy by 8%%")
	return t, nil
}

// fig15 reproduces Fig. 15: scalability and speedup curves of both
// strategies for two equal 259x229 siblings.
func fig15() (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Scalability and speedup, two 259x229 siblings",
		Header: []string{"procs", "default (s)", "concurrent (s)", "default speedup", "concurrent speedup", "conc gain"},
	}
	m := machine.BGL()
	cfg := workload.Fig15Config()
	var d32, c32 float64
	for _, ranks := range []int{32, 64, 128, 256, 512, 1024} {
		seq, con, err := comparePair(cfg, m, ranks, driver.MapSequential, iosim.Split, 0)
		if err != nil {
			return nil, err
		}
		if ranks == 32 {
			d32, c32 = seq.IterTime, con.IterTime
		}
		t.AddRow(fmt.Sprintf("%d", ranks),
			f(seq.IterTime, 3), f(con.IterTime, 3),
			f(d32/seq.IterTime, 2), f(c32/con.IterTime, 2),
			pct(stats.Improvement(seq.IterTime, con.IterTime)))
	}
	t.AddNote("paper Fig. 15: at low processor counts the strategies tie (the nests are far from saturation); past the saturation point (~700 processors) the concurrent strategy keeps its advantage")
	return t, nil
}
