package experiments

import (
	"fmt"

	"nestwrf/internal/machine"
	"nestwrf/internal/torus5"
)

func init() {
	register("bgq", "Future work: generalized fold on the 5D torus of Blue Gene/Q (Section 6)", bgq)
}

// bgq evaluates the generalized reflected-mixed-radix fold on BG/Q
// style 5D core-tori: the paper's future-work mapping, implemented.
func bgq() (*Table, error) {
	t := &Table{
		ID:     "bgq",
		Title:  "2D process grids folded onto 5D BG/Q tori: average/maximum neighbour hops",
		Header: []string{"cores", "grid", "torus (A,B,C,D,E)", "oblivious avg", "oblivious max", "fold avg", "fold max"},
	}
	for _, cores := range []int{512, 2048, 8192, 16384} {
		tor, err := torus5.BGQTorusFor(cores)
		if err != nil {
			return nil, err
		}
		g, err := machine.GridFor(cores)
		if err != nil {
			return nil, err
		}
		xdims, err := torus5.SplitFor(g, tor)
		if err != nil {
			return nil, err
		}
		fold, err := torus5.Fold(g, tor, xdims)
		if err != nil {
			return nil, err
		}
		obl, err := torus5.Oblivious(g, tor)
		if err != nil {
			return nil, err
		}
		pairs := g.NeighborPairs()
		t.AddRow(
			fmt.Sprintf("%d", cores),
			fmt.Sprintf("%dx%d", g.Px, g.Py),
			fmt.Sprintf("%v", tor.Dims),
			f(torus5.AvgHops(obl, pairs), 2),
			fmt.Sprintf("%d", torus5.MaxHops(obl, pairs)),
			f(torus5.AvgHops(fold, pairs), 2),
			fmt.Sprintf("%d", torus5.MaxHops(fold, pairs)),
		)
	}
	t.AddNote("the reflected mixed-radix fold generalizes the multi-level mapping of Section 3.3.2 to any torus dimensionality: every neighbouring rank pair — of the parent and of every sibling partition — lands exactly 1 hop apart")
	return t, nil
}
