package planserve

import (
	"fmt"
	"math"
	"strings"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
)

// cacheKey renders the canonical identity of one planning query. Two
// requests share a cache entry exactly when they agree on the machine's
// full cost model, the rank count, every planning option, and the
// domain-set geometry. Domain names are deliberately absent: renaming a
// typhoon does not change the plan, so geometrically identical requests
// under different names share one cached plan (names are re-attached
// from the request when the response is marshalled). Sibling ORDER is
// preserved — Algorithm 1's bisection output depends on the order the
// weights arrive in, so reordered siblings are a different plan.
func cacheKey(prefix string, m machine.Machine, opt driver.Options, cfg *nest.Domain) string {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(driver.MachineKey(m))
	fmt.Fprintf(&b, "|r=%d|s=%d|a=%d|m=%d|io=%d|oe=%d|nc=%t|",
		opt.Ranks, opt.Strategy, opt.Alloc, opt.MapKind,
		opt.IOMode, opt.OutputEverySteps, opt.NoContention)
	// FixedWeights bypass the predictor and change the allocation, so
	// they are part of the plan identity. HTTP requests never carry
	// them (the segment is absent for the empty slice, keeping server
	// keys unchanged); in-process PlanCache users — the steering
	// controller, ensemble members — may.
	if len(opt.FixedWeights) > 0 {
		b.WriteString("w=")
		for _, w := range opt.FixedWeights {
			fmt.Fprintf(&b, "%x,", math.Float64bits(w))
		}
		b.WriteByte('|')
	}
	writeDomainKey(&b, cfg)
	return b.String()
}

// writeDomainKey appends the name-free geometry of the domain tree in
// depth-first sibling order.
func writeDomainKey(b *strings.Builder, d *nest.Domain) {
	fmt.Fprintf(b, "(%d,%d,%d,%d,%d", d.NX, d.NY, d.Ratio, d.OffX, d.OffY)
	for _, c := range d.Children {
		writeDomainKey(b, c)
	}
	b.WriteByte(')')
}
