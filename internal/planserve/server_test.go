package planserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nestwrf/internal/metrics"
)

// testRequest is a three-nest BG/L configuration shared by the tests.
func testRequest(strategy, alloc, mapping string) string {
	return fmt.Sprintf(`{
		"machine": "bgl",
		"ranks": 64,
		"strategy": %q,
		"alloc": %q,
		"mapping": %q,
		"domain": {
			"name": "pacific", "nx": 286, "ny": 307,
			"children": [
				{"name": "t1", "nx": 394, "ny": 418, "ratio": 3, "off_x": 5, "off_y": 5},
				{"name": "t2", "nx": 313, "ny": 337, "ratio": 3, "off_x": 140, "off_y": 150}
			]
		}
	}`, strategy, alloc, mapping)
}

// post sends one JSON query and returns the status, cache header and
// body.
func post(t *testing.T, h http.Handler, path, body string) (int, string, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get(CacheHeader), rec.Body.Bytes()
}

// TestPlanCacheByteIdentity is the acceptance guard: for every
// strategy x alloc-policy x map-kind combination, a cache-hit response
// must be byte-identical to the cold-computed response, both within one
// server (miss then hit) and against a fresh server computing cold.
func TestPlanCacheByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full combo sweep is slow; skipped with -short")
	}
	strategies := []string{"sequential", "concurrent"}
	allocs := []string{"predicted", "naive-points", "equal", "strips-predicted"}
	mappings := []string{"oblivious", "txyz", "partition", "multilevel"}

	warm := New(Config{}).Handler()
	for _, st := range strategies {
		for _, al := range allocs {
			for _, mp := range mappings {
				name := st + "/" + al + "/" + mp
				body := testRequest(st, al, mp)
				code, cache1, cold := post(t, warm, "/v1/plan", body)
				if code != http.StatusOK {
					t.Fatalf("%s: cold query failed %d: %s", name, code, cold)
				}
				if cache1 != "miss" {
					t.Errorf("%s: first query reported %q, want miss", name, cache1)
				}
				code, cache2, hot := post(t, warm, "/v1/plan", body)
				if code != http.StatusOK {
					t.Fatalf("%s: hot query failed %d", name, code)
				}
				if cache2 != "hit" {
					t.Errorf("%s: second query reported %q, want hit", name, cache2)
				}
				if !bytes.Equal(cold, hot) {
					t.Errorf("%s: cache-hit body differs from cold body:\ncold: %s\nhot:  %s", name, cold, hot)
				}
				// A fresh server must compute the identical bytes cold.
				fresh := New(Config{}).Handler()
				_, _, independent := post(t, fresh, "/v1/plan", body)
				if !bytes.Equal(cold, independent) {
					t.Errorf("%s: fresh-server cold body differs from cached body", name)
				}
			}
		}
	}
}

// TestCompareEndpoint checks /v1/compare returns both strategies and
// caches byte-identically.
func TestCompareEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	body := testRequest("concurrent", "predicted", "multilevel")
	code, cache, cold := post(t, h, "/v1/compare", body)
	if code != http.StatusOK {
		t.Fatalf("compare failed %d: %s", code, cold)
	}
	if cache != "miss" {
		t.Errorf("first compare reported %q, want miss", cache)
	}
	var resp CompareResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Default.IterTime <= 0 || resp.Concurrent.IterTime <= 0 {
		t.Errorf("degenerate iteration times: %+v", resp)
	}
	if resp.ImprovementPct <= 0 {
		t.Errorf("concurrent strategy shows no improvement: %+v", resp)
	}
	_, cache, hot := post(t, h, "/v1/compare", body)
	if cache != "hit" || !bytes.Equal(cold, hot) {
		t.Error("compare cache hit not byte-identical")
	}
}

// TestPlanNamesSharedGeometry: renaming domains must share the cache
// entry (geometry keying) while responses carry the request's names.
func TestPlanNamesSharedGeometry(t *testing.T) {
	h := New(Config{}).Handler()
	body1 := testRequest("concurrent", "predicted", "multilevel")
	if code, _, b := post(t, h, "/v1/plan", body1); code != http.StatusOK {
		t.Fatalf("query failed %d: %s", code, b)
	}
	body2 := strings.NewReplacer(`"pacific"`, `"atlantic"`, `"t1"`, `"h1"`, `"t2"`, `"h2"`).Replace(body1)
	code, cache, b := post(t, h, "/v1/plan", body2)
	if code != http.StatusOK {
		t.Fatalf("renamed query failed %d: %s", code, b)
	}
	if cache != "hit" {
		t.Errorf("renamed identical geometry reported %q, want hit", cache)
	}
	var resp PlanResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Siblings) != 2 || resp.Siblings[0].Name != "h1" || resp.Siblings[1].Name != "h2" {
		t.Errorf("response does not carry the request's names: %+v", resp.Siblings)
	}
}

// TestPlanSiblingOrderDistinct: reordered siblings are a different
// plan (Algorithm 1 is order-sensitive), so they must not share.
func TestPlanSiblingOrderDistinct(t *testing.T) {
	h := New(Config{}).Handler()
	body := `{"machine":"bgl","ranks":64,"domain":{"nx":286,"ny":307,"children":[` +
		`{"name":"a","nx":394,"ny":418,"ratio":3,"off_x":5,"off_y":5},` +
		`{"name":"b","nx":313,"ny":337,"ratio":3,"off_x":140,"off_y":150}]}}`
	swapped := `{"machine":"bgl","ranks":64,"domain":{"nx":286,"ny":307,"children":[` +
		`{"name":"b","nx":313,"ny":337,"ratio":3,"off_x":140,"off_y":150},` +
		`{"name":"a","nx":394,"ny":418,"ratio":3,"off_x":5,"off_y":5}]}}`
	if code, _, b := post(t, h, "/v1/plan", body); code != http.StatusOK {
		t.Fatalf("query failed %d: %s", code, b)
	}
	_, cache, _ := post(t, h, "/v1/plan", swapped)
	if cache != "miss" {
		t.Error("reordered siblings shared a cache entry")
	}
}

func TestBadRequests(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"garbage body", "/v1/plan", "{", http.StatusBadRequest},
		{"unknown field", "/v1/plan", `{"machine":"bgl","ranks":64,"bogus":1,"domain":{"nx":10,"ny":10}}`, http.StatusBadRequest},
		{"unknown machine", "/v1/plan", `{"machine":"cray","ranks":64,"domain":{"nx":10,"ny":10}}`, http.StatusBadRequest},
		{"bad mapping", "/v1/plan", `{"machine":"bgl","ranks":64,"mapping":"warp","domain":{"nx":10,"ny":10}}`, http.StatusBadRequest},
		{"zero ranks", "/v1/plan", `{"machine":"bgl","domain":{"nx":10,"ny":10}}`, http.StatusBadRequest},
		{"invalid domain", "/v1/plan", `{"machine":"bgl","ranks":64,"domain":{"nx":-1,"ny":10}}`, http.StatusBadRequest},
		{"child outside parent", "/v1/compare",
			`{"machine":"bgl","ranks":64,"domain":{"nx":20,"ny":20,"children":[{"nx":90,"ny":90,"ratio":1,"off_x":0,"off_y":0}]}}`,
			http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, body := post(t, h, c.path, c.body)
		if code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, code, c.want, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not a JSON error", c.name, body)
		}
	}
}

func TestHealthStatsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := New(Config{Metrics: reg})
	h := srv.Handler()

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz = %d %q", code, body)
	}

	body := testRequest("concurrent", "predicted", "multilevel")
	post(t, h, "/v1/plan", body)
	post(t, h, "/v1/plan", body)

	code, stats := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats failed %d", code)
	}
	var st map[string]float64
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st["entries"] != 1 || st["hits"] != 1 || st["misses"] != 1 {
		t.Errorf("stats %v, want entries=1 hits=1 misses=1", st)
	}

	code, text := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics failed %d", code)
	}
	for _, want := range []string{
		`planserve_requests_total{code="200",endpoint="plan"} 2`,
		`planserve_cache_total{endpoint="plan",result="hit"} 1`,
		`planserve_cache_total{endpoint="plan",result="miss"} 1`,
		"planserve_request_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestCacheEvictionBounded drives more distinct queries than the cache
// holds and checks the bound and eviction counters through the API.
func TestCacheEvictionBounded(t *testing.T) {
	srv := New(Config{CacheSize: 2})
	h := srv.Handler()
	for ranks := 1; ranks <= 4; ranks++ {
		body := fmt.Sprintf(`{"machine":"bgl","ranks":%d,"strategy":"sequential","mapping":"oblivious","domain":{"nx":64,"ny":64}}`, ranks*64)
		if code, _, b := post(t, h, "/v1/plan", body); code != http.StatusOK {
			t.Fatalf("ranks %d: %d %s", ranks*64, code, b)
		}
	}
	entries, _, misses, evictions := srv.CacheStats()
	if entries != 2 {
		t.Errorf("cache holds %d entries, want bound 2", entries)
	}
	if misses != 4 || evictions != 2 {
		t.Errorf("misses=%d evictions=%d, want 4/2", misses, evictions)
	}
}

// TestRequestTimeout: a request whose deadline lapses while waiting
// for a worker slot returns 504 without computing.
func TestRequestTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	h := srv.Handler()
	// Occupy the single worker slot.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	code, _, body := post(t, h, "/v1/plan", testRequest("concurrent", "predicted", "multilevel"))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, body)
	}
}

// TestServerClose: after Close, queries fail fast with 503.
func TestServerClose(t *testing.T) {
	srv := New(Config{})
	h := srv.Handler()
	srv.Close()
	code, _, _ := post(t, h, "/v1/plan", testRequest("concurrent", "predicted", "multilevel"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after Close, want 503", code)
	}
}

// TestConcurrentBurst hammers one warm server from many goroutines
// with a mix of hit and miss queries; run under -race in CI. All
// responses for the same body must be byte-identical.
func TestConcurrentBurst(t *testing.T) {
	srv := New(Config{})
	h := srv.Handler()
	bodies := []string{
		testRequest("concurrent", "predicted", "multilevel"),
		testRequest("concurrent", "equal", "txyz"),
		testRequest("sequential", "predicted", "oblivious"),
	}
	want := make([][]byte, len(bodies))
	for i, b := range bodies {
		code, _, resp := post(t, h, "/v1/plan", b)
		if code != http.StatusOK {
			t.Fatalf("warmup %d failed %d: %s", i, code, resp)
		}
		want[i] = resp
	}
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(bodies)
				req := httptest.NewRequest("POST", "/v1/plan", strings.NewReader(bodies[k]))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", w, rec.Code)
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want[k]) {
					errs <- fmt.Errorf("worker %d: response drifted for body %d", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeUntilGracefulShutdown exercises the real network path:
// start, serve a query, cancel, drain, clean exit.
func TestServeUntilGracefulShutdown(t *testing.T) {
	srv := New(Config{})
	bound, stop, err := StartServer("127.0.0.1:0", srv.Handler(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + bound
	resp, err := http.Post(url+"/v1/plan", "application/json",
		strings.NewReader(testRequest("concurrent", "predicted", "multilevel")))
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query over TCP failed %d: %s", resp.StatusCode, cold)
	}
	resp, err = http.Post(url+"/v1/plan", "application/json",
		strings.NewReader(testRequest("concurrent", "predicted", "multilevel")))
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(CacheHeader) != "hit" || !bytes.Equal(cold, hot) {
		t.Error("cache hit over TCP not byte-identical")
	}
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestServeUntilAlreadyCancelled covers ServeUntil directly with an
// already-cancelled context: it must shut down cleanly without serving.
func TestServeUntilAlreadyCancelled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ServeUntil(ctx, ln, http.NotFoundHandler(), time.Second); err != nil {
		t.Fatalf("ServeUntil with cancelled context returned %v", err)
	}
}
