package planserve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"nestwrf"
	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
)

// SnapshotVersion is the schema tag of persisted plan-cache snapshots.
// Any incompatible change to cached value encodings must bump it; a
// mismatched snapshot is rejected whole.
const SnapshotVersion = "nestwrf/plan-cache/v1"

// snapshotFile is the on-disk form of a plan cache: every resident
// entry with its canonical key and JSON-encoded value, most recently
// used first, plus the identity keys of the machines the entries were
// computed against.
type snapshotFile struct {
	Version  string            `json:"version"`
	Machines map[string]string `json:"machines"` // machine name -> full identity key at save time
	Entries  []snapshotEntry   `json:"entries"`
}

// snapshotEntry is one cached value. Kind selects the decode type
// ("plan", "compare" or "run"); Machine names the machine whose
// identity key must still appear in Key for the entry to load — a
// cost-model change between save and load silently changes every key,
// so stale entries are rejected instead of shadowing fresh plans.
type snapshotEntry struct {
	Key     string          `json:"key"`
	Kind    string          `json:"kind"`
	Machine string          `json:"machine"`
	Value   json.RawMessage `json:"value"`
}

// knownMachines are the machines snapshot validation checks entries
// against: the same fixed models the HTTP request resolver accepts.
func knownMachines() map[string]machine.Machine {
	bgl, bgp := nestwrf.BlueGeneL(), nestwrf.BlueGeneP()
	return map[string]machine.Machine{bgl.Name: bgl, bgp.Name: bgp}
}

// saveSnapshot writes the cache's resident entries to path atomically
// (temp file + rename) and returns how many entries were persisted.
// Entries for machines outside the known set are skipped: their keys
// could never validate at load time.
func saveSnapshot(c *cache, path string) (int, error) {
	known := knownMachines()
	names := make([]string, 0, len(known))
	keys := map[string]string{}
	for name, m := range known {
		names = append(names, name)
		keys[name] = driver.MachineKey(m)
	}
	sort.Strings(names)

	snap := snapshotFile{Version: SnapshotVersion, Machines: keys}
	for _, e := range c.dump() {
		var kind string
		switch e.val.(type) {
		case *driver.Plan:
			kind = "plan"
		case *nestwrf.Comparison:
			kind = "compare"
		case *driver.Result:
			kind = "run"
		default:
			continue
		}
		var mname string
		for _, name := range names {
			if strings.Contains(e.key, keys[name]) {
				mname = name
				break
			}
		}
		if mname == "" {
			continue
		}
		raw, err := json.Marshal(e.val)
		if err != nil {
			continue
		}
		snap.Entries = append(snap.Entries, snapshotEntry{
			Key: e.key, Kind: kind, Machine: mname, Value: raw,
		})
	}

	data, err := json.Marshal(&snap)
	if err != nil {
		return 0, fmt.Errorf("planserve: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return len(snap.Entries), nil
}

// loadSnapshot warm-loads a snapshot into the cache. A file-level
// problem (unreadable, corrupt JSON, version mismatch) returns an
// error and loads nothing; per-entry problems (unknown machine, stale
// machine identity, undecodable value, over capacity) reject just that
// entry and increment the warm-rejected counter. Loaded entries keep
// their saved recency order and are flagged warm, so later LRU churn
// shows up in the warm-evicted counter.
func loadSnapshot(c *cache, path string) (loaded, rejected int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, 0, fmt.Errorf("planserve: snapshot %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return 0, 0, fmt.Errorf("planserve: snapshot %s: version %q, want %q",
			path, snap.Version, SnapshotVersion)
	}
	known := knownMachines()
	for _, e := range snap.Entries {
		m, ok := known[e.Machine]
		if !ok || !strings.Contains(e.Key, driver.MachineKey(m)) {
			rejected++
			continue
		}
		var val any
		switch e.Kind {
		case "plan":
			p := new(driver.Plan)
			if json.Unmarshal(e.Value, p) != nil {
				rejected++
				continue
			}
			val = p
		case "compare":
			cmp := new(nestwrf.Comparison)
			if json.Unmarshal(e.Value, cmp) != nil {
				rejected++
				continue
			}
			val = cmp
		case "run":
			res := new(driver.Result)
			if json.Unmarshal(e.Value, res) != nil {
				rejected++
				continue
			}
			val = res
		default:
			rejected++
			continue
		}
		if !c.loadWarm(e.Key, val) {
			rejected++
			continue
		}
		loaded++
	}
	c.noteWarmRejected(rejected)
	return loaded, rejected, nil
}

// SaveSnapshot persists the server's plan cache to path atomically.
func (s *Server) SaveSnapshot(path string) (int, error) { return saveSnapshot(s.plans, path) }

// LoadSnapshot warm-loads a snapshot into the server's plan cache; see
// loadSnapshot for the validation rules. Call before serving traffic.
func (s *Server) LoadSnapshot(path string) (loaded, rejected int, err error) {
	return loadSnapshot(s.plans, path)
}

// CacheWarmStats reports the warm-load counters: snapshot entries
// loaded, entries rejected at load time, and warm entries later
// evicted by LRU churn.
func (s *Server) CacheWarmStats() (loaded, rejected, evicted uint64) {
	return s.plans.WarmStats()
}

// SaveSnapshot persists the cache to path atomically; see the Server
// method of the same name.
func (p *PlanCache) SaveSnapshot(path string) (int, error) { return saveSnapshot(p.c, path) }

// LoadSnapshot warm-loads a snapshot; see Server.LoadSnapshot.
func (p *PlanCache) LoadSnapshot(path string) (loaded, rejected int, err error) {
	return loadSnapshot(p.c, path)
}

// WarmStats reports the warm-load counters; see Server.CacheWarmStats.
func (p *PlanCache) WarmStats() (loaded, rejected, evicted uint64) { return p.c.WarmStats() }
