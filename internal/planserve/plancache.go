package planserve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"nestwrf/internal/driver"
	"nestwrf/internal/metrics"
	"nestwrf/internal/nest"
	"nestwrf/internal/telemetry"
)

// PlanCache is the plan cache behind the HTTP server, exported for
// in-process embedding: engines that evaluate many scenarios — the
// ensemble campaign engine foremost — share one PlanCache so repeated
// geometries plan once, with singleflight deduplication when several
// workers ask for the same geometry concurrently.
//
// Entries are keyed by the same canonical name-free key the server
// uses (machine identity + options + domain geometry, sibling order
// preserved), so renamed but geometrically identical scenarios share
// one entry. Cached values are immutable by contract: callers must
// treat the slices inside a returned Result or Plan as read-only.
type PlanCache struct {
	c *cache
}

// NewPlanCache returns a cache bounded to maxEntries (min 1).
func NewPlanCache(maxEntries int) *PlanCache {
	return &PlanCache{c: newCache(maxEntries)}
}

// Instrument mirrors the cache's hit/miss/eviction/join counters into
// reg as plancache_{hits,misses,evictions,joins}_total, so embedders
// (cmd/ensemble -metrics, the plan server) report cache effectiveness
// alongside their other instruments. A nil registry is a no-op.
func (p *PlanCache) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	p.c.instrument(reg, "plancache", labels...)
}

// startLookupSpan opens a cache-layer span for one lookup when the
// options carry a recording tracer; the caller ends it via
// endLookupSpan once the outcome is known. The driver span of a
// cache-miss computation parents under this span, so a trace shows
// hit lookups as leaf spans and misses with a driver subtree.
func startLookupSpan(opt driver.Options, name string) *telemetry.ActiveSpan {
	if !opt.Tracer.Recording() {
		return nil
	}
	return opt.Tracer.Start(opt.TraceParent, name, telemetry.LayerCache)
}

// endLookupSpan annotates the lookup span with its outcome and closes
// it. Safe on a nil span.
func endLookupSpan(sp *telemetry.ActiveSpan, out cacheOutcome, err error) {
	if sp == nil {
		return
	}
	sp.Annotate("outcome", out.String())
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	sp.End()
}

// Run returns driver.Run's result for cfg under opt, computing it at
// most once per canonical key. hit reports whether the result came
// from the cache without waiting on any computation. The options'
// Predictor, Metrics and Tracer fields are not part of the key:
// predictors are deterministic per machine identity (pass nil or the
// machine's cached predictor), and observability does not change
// results.
func (p *PlanCache) Run(ctx context.Context, cfg *nest.Domain, opt driver.Options) (driver.Result, bool, error) {
	key := cacheKey("run|", opt.Machine, opt, cfg)
	sp := startLookupSpan(opt, "plancache.run")
	v, out, err := p.c.do(ctx, key, func() (any, error) {
		inner := opt
		inner.TraceParent = sp.ID()
		res, err := driver.Run(cfg, inner)
		if err != nil {
			return nil, err
		}
		return &res, nil
	})
	endLookupSpan(sp, out, err)
	if err != nil {
		return driver.Result{}, out == outcomeHit, err
	}
	return *(v.(*driver.Result)), out == outcomeHit, nil
}

// RunJob pairs one configuration with its run options for RunBatch.
type RunJob struct {
	Config *nest.Domain
	Opt    driver.Options
}

// RunBatch resolves every job through the cache in one bounded
// parallel pass: resident keys answer immediately, identical
// concurrent keys singleflight as usual, and distinct cold keys
// compute side by side on at most `workers` goroutines (GOMAXPROCS
// when workers <= 0) sharing the machine's singleflighted predictor.
// Results keep input order and are bit-identical to per-job Run calls
// — batching only changes who computes, never what.
func (p *PlanCache) RunBatch(ctx context.Context, jobs []RunJob, workers int) ([]driver.Result, []error) {
	results := make([]driver.Result, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i], _, errs[i] = p.Run(ctx, jobs[i].Config, jobs[i].Opt)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Plan returns driver.BuildPlan's output for cfg under opt, computing
// it at most once per canonical key.
func (p *PlanCache) Plan(ctx context.Context, cfg *nest.Domain, opt driver.Options) (*driver.Plan, bool, error) {
	key := cacheKey("plan|", opt.Machine, opt, cfg)
	sp := startLookupSpan(opt, "plancache.plan")
	v, out, err := p.c.do(ctx, key, func() (any, error) {
		inner := opt
		inner.TraceParent = sp.ID()
		return driver.BuildPlan(cfg, inner)
	})
	endLookupSpan(sp, out, err)
	if err != nil {
		return nil, out == outcomeHit, err
	}
	return v.(*driver.Plan), out == outcomeHit, nil
}

// Len returns the number of resident entries.
func (p *PlanCache) Len() int { return p.c.Len() }

// Stats returns cumulative hit/miss/eviction counts. Misses count
// distinct computed keys (joiners of an in-flight computation count
// as neither), so on an eviction-free run Misses equals the number of
// distinct geometries planned.
func (p *PlanCache) Stats() (hits, misses, evictions uint64) { return p.c.Stats() }

// Joins returns how many lookups waited on another caller's in-flight
// computation instead of recomputing (singleflight deduplication).
func (p *PlanCache) Joins() uint64 { return p.c.Joins() }

// Close empties the cache; further calls fail with ErrCacheClosed.
func (p *PlanCache) Close() { p.c.Close() }
