package planserve

import (
	"context"

	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
)

// PlanCache is the plan cache behind the HTTP server, exported for
// in-process embedding: engines that evaluate many scenarios — the
// ensemble campaign engine foremost — share one PlanCache so repeated
// geometries plan once, with singleflight deduplication when several
// workers ask for the same geometry concurrently.
//
// Entries are keyed by the same canonical name-free key the server
// uses (machine identity + options + domain geometry, sibling order
// preserved), so renamed but geometrically identical scenarios share
// one entry. Cached values are immutable by contract: callers must
// treat the slices inside a returned Result or Plan as read-only.
type PlanCache struct {
	c *cache
}

// NewPlanCache returns a cache bounded to maxEntries (min 1).
func NewPlanCache(maxEntries int) *PlanCache {
	return &PlanCache{c: newCache(maxEntries)}
}

// Run returns driver.Run's result for cfg under opt, computing it at
// most once per canonical key. hit reports whether the result came
// from the cache without waiting on any computation. The options'
// Predictor and Metrics fields are not part of the key: predictors are
// deterministic per machine identity (pass nil or the machine's
// cached predictor), and metrics do not change results.
func (p *PlanCache) Run(ctx context.Context, cfg *nest.Domain, opt driver.Options) (driver.Result, bool, error) {
	key := cacheKey("run|", opt.Machine, opt, cfg)
	v, hit, err := p.c.Do(ctx, key, func() (any, error) {
		res, err := driver.Run(cfg, opt)
		if err != nil {
			return nil, err
		}
		return &res, nil
	})
	if err != nil {
		return driver.Result{}, hit, err
	}
	return *(v.(*driver.Result)), hit, nil
}

// Plan returns driver.BuildPlan's output for cfg under opt, computing
// it at most once per canonical key.
func (p *PlanCache) Plan(ctx context.Context, cfg *nest.Domain, opt driver.Options) (*driver.Plan, bool, error) {
	key := cacheKey("plan|", opt.Machine, opt, cfg)
	v, hit, err := p.c.Do(ctx, key, func() (any, error) {
		return driver.BuildPlan(cfg, opt)
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*driver.Plan), hit, nil
}

// Len returns the number of resident entries.
func (p *PlanCache) Len() int { return p.c.Len() }

// Stats returns cumulative hit/miss/eviction counts. Misses count
// distinct computed keys (joiners of an in-flight computation count
// as neither), so on an eviction-free run Misses equals the number of
// distinct geometries planned.
func (p *PlanCache) Stats() (hits, misses, evictions uint64) { return p.c.Stats() }

// Close empties the cache; further calls fail with ErrCacheClosed.
func (p *PlanCache) Close() { p.c.Close() }
