// Package planserve turns the planning pipeline into a service:
// an HTTP/JSON server over the nestwrf facade (BuildPlan / Compare)
// with a shared bounded plan cache, singleflight deduplication of
// concurrent identical queries, a worker pool bounding concurrent
// cache-miss planning, per-request metrics, and graceful shutdown.
//
// Plans are immutable once built (driver.Plan's contract), so one
// cached plan is shared by every request that matches its canonical
// key; whether a response was served from cache is reported in the
// X-Plan-Cache header — never in the body — so cache-hit responses
// are byte-identical to cold-computed ones.
package planserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nestwrf"
	"nestwrf/internal/alloc"
	"nestwrf/internal/driver"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/metrics"
	"nestwrf/internal/nest"
	"nestwrf/internal/telemetry"
)

// CacheHeader is the response header reporting "hit" or "miss".
const CacheHeader = "X-Plan-Cache"

// maxBodyBytes bounds request bodies; domain trees are tiny.
const maxBodyBytes = 1 << 20

// DomainSpec is the JSON form of one simulation domain. Ratio, OffX
// and OffY apply to nested domains only.
type DomainSpec struct {
	Name     string       `json:"name,omitempty"`
	NX       int          `json:"nx"`
	NY       int          `json:"ny"`
	Ratio    int          `json:"ratio,omitempty"`
	OffX     int          `json:"off_x,omitempty"`
	OffY     int          `json:"off_y,omitempty"`
	Children []DomainSpec `json:"children,omitempty"`
}

// build converts the spec tree into a validated nest.Domain tree.
func (sp *DomainSpec) build() (*nest.Domain, error) {
	root := nest.Root(sp.Name, sp.NX, sp.NY)
	for i := range sp.Children {
		addChildSpec(root, &sp.Children[i])
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return root, nil
}

func addChildSpec(parent *nest.Domain, sp *DomainSpec) {
	c := parent.AddChild(sp.Name, sp.NX, sp.NY, sp.Ratio, sp.OffX, sp.OffY)
	for i := range sp.Children {
		addChildSpec(c, &sp.Children[i])
	}
}

// PlanRequest is the JSON body of /v1/plan and /v1/compare.
type PlanRequest struct {
	// Machine selects the cost model: "bgl" or "bgp" (any case; the
	// full names "BlueGene/L" / "BlueGene/P" are also accepted).
	Machine string `json:"machine"`
	Ranks   int    `json:"ranks"`
	// Strategy defaults to "concurrent"; Alloc to "predicted"; Mapping
	// to "multilevel". Any parseable name (see the facade parsers) is
	// accepted, any case.
	Strategy string `json:"strategy,omitempty"`
	Alloc    string `json:"alloc,omitempty"`
	Mapping  string `json:"mapping,omitempty"`
	// IO selects the I/O mode ("pnetcdf"/"collective" or "split");
	// OutputEvery enables the I/O model when positive.
	IO           string `json:"io,omitempty"`
	OutputEvery  int    `json:"output_every,omitempty"`
	NoContention bool   `json:"no_contention,omitempty"`

	Domain DomainSpec `json:"domain"`
}

// resolve parses and defaults the request into concrete planning
// inputs.
func (r *PlanRequest) resolve() (machine.Machine, driver.Options, *nest.Domain, error) {
	var m machine.Machine
	switch strings.ToLower(r.Machine) {
	case "bgl", "bg/l", "bluegene/l":
		m = nestwrf.BlueGeneL()
	case "bgp", "bg/p", "bluegene/p":
		m = nestwrf.BlueGeneP()
	default:
		return m, driver.Options{}, nil,
			fmt.Errorf("planserve: unknown machine %q (accepted: bgl, bgp)", r.Machine)
	}
	opt := driver.Options{
		Machine:          m,
		Ranks:            r.Ranks,
		Strategy:         driver.Concurrent,
		Alloc:            driver.AllocPredicted,
		MapKind:          driver.MapMultiLevel,
		OutputEverySteps: r.OutputEvery,
		NoContention:     r.NoContention,
	}
	var err error
	if r.Strategy != "" {
		if opt.Strategy, err = nestwrf.ParseStrategy(r.Strategy); err != nil {
			return m, opt, nil, err
		}
	}
	if r.Alloc != "" {
		if opt.Alloc, err = nestwrf.ParseAllocPolicy(r.Alloc); err != nil {
			return m, opt, nil, err
		}
	}
	if r.Mapping != "" {
		if opt.MapKind, err = nestwrf.ParseMapKind(r.Mapping); err != nil {
			return m, opt, nil, err
		}
	}
	if r.IO != "" {
		if opt.IOMode, err = iosim.ParseMode(r.IO); err != nil {
			return m, opt, nil, err
		}
	}
	cfg, err := r.Domain.build()
	if err != nil {
		return m, opt, nil, err
	}
	return m, opt, cfg, nil
}

// SiblingPlan is one first-level nest's share of the plan.
type SiblingPlan struct {
	Name   string     `json:"name"`
	Weight float64    `json:"weight"`
	Rect   alloc.Rect `json:"rect"`
}

// PlanResponse is the JSON body of a /v1/plan response.
type PlanResponse struct {
	Machine  string `json:"machine"`
	Ranks    int    `json:"ranks"`
	Px       int    `json:"px"`
	Py       int    `json:"py"`
	Strategy string `json:"strategy"`
	Alloc    string `json:"alloc"`
	Mapping  string `json:"mapping"`
	// Siblings pair the request's first-level nest names with their
	// predicted weights and processor partitions.
	Siblings []SiblingPlan `json:"siblings"`
	// MappingQuality reports hop metrics per feasible mapping kind.
	MappingQuality map[string]driver.MappingQuality `json:"mapping_quality"`
	// Cost is the predicted per-iteration cost under the requested
	// strategy and mapping.
	Cost driver.Result `json:"cost"`
}

// CompareResponse is the JSON body of a /v1/compare response.
type CompareResponse struct {
	Machine             string        `json:"machine"`
	Ranks               int           `json:"ranks"`
	Default             driver.Result `json:"default"`
	Concurrent          driver.Result `json:"concurrent"`
	ImprovementPct      float64       `json:"improvement_pct"`
	TotalImprovementPct float64       `json:"total_improvement_pct"`
	WaitImprovementPct  float64       `json:"wait_improvement_pct"`
}

// errorResponse is the JSON body of any non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// Config configures a Server. The zero value gets sensible defaults.
type Config struct {
	// CacheSize bounds the shared plan cache (entries). Default 1024.
	CacheSize int
	// Workers bounds concurrent cache-miss planning. Default
	// GOMAXPROCS.
	Workers int
	// BatchWindow is how long the first concurrently arriving
	// distinct-key /v1/plan miss waits for further misses before all
	// pending plans are built in one batched driver.BuildPlans pass
	// (one trained predictor per machine, one worker-pool fan). Zero
	// selects the 500µs default; negative disables coalescing, so each
	// miss plans immediately on its own pool slot.
	BatchWindow time.Duration
	// BatchMax caps the plans coalesced into one batch. Default 64.
	BatchMax int
	// RequestTimeout bounds each request end to end. Default 30s.
	RequestTimeout time.Duration
	// Metrics receives per-request instrumentation; nil disables it
	// (a nil registry is a valid no-op sink).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records one serve-layer span per planning
	// request, with the plan-cache lookup (and, on a miss, the driver
	// run and its phases) nested under it. Nil keeps tracing off the
	// hot path entirely.
	Tracer *telemetry.Tracer
	// Log, when non-nil, receives one structured line per planning
	// request carrying the request's span ID, so log lines join
	// against exported trace dumps. Nil disables request logging.
	Log *slog.Logger
}

// Server is the planning service: share one across all connections.
type Server struct {
	cfg    Config
	plans  *cache
	sem    chan struct{}
	batch  *coalescer // nil when coalescing is disabled
	reg    *metrics.Registry
	tracer *telemetry.Tracer
	log    *slog.Logger

	// requests and inflight back /debug/progress independently of the
	// registry (which may be absent).
	requests atomic.Uint64
	inflight atomic.Int64
}

// New builds a Server from cfg (zero-value fields are defaulted).
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 500 * time.Microsecond
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	s := &Server{
		cfg:    cfg,
		plans:  newCache(cfg.CacheSize),
		sem:    make(chan struct{}, cfg.Workers),
		reg:    cfg.Metrics,
		tracer: cfg.Tracer,
		log:    cfg.Log,
	}
	if cfg.BatchWindow > 0 {
		s.batch = &coalescer{
			window:  cfg.BatchWindow,
			maxJobs: cfg.BatchMax,
			workers: cfg.Workers,
			acquire: func() { s.sem <- struct{}{} },
			release: func() { <-s.sem },
			onFlush: func(jobs int) {
				s.reg.Counter("planserve_coalesced_batches_total").Inc()
				s.reg.Counter("planserve_coalesced_plans_total").Add(float64(jobs))
			},
		}
	}
	s.plans.instrument(cfg.Metrics, "plancache")
	return s
}

// Close shuts the plan cache; queued requests fail fast afterwards.
func (s *Server) Close() { s.plans.Close() }

// CacheStats reports the shared cache's occupancy and counters.
func (s *Server) CacheStats() (entries int, hits, misses, evictions uint64) {
	hits, misses, evictions = s.plans.Stats()
	return s.plans.Len(), hits, misses, evictions
}

// CacheJoins reports how many lookups waited on another request's
// in-flight computation (singleflight deduplication).
func (s *Server) CacheJoins() uint64 { return s.plans.Joins() }

// Handler returns the service mux: POST /v1/plan, POST /v1/compare,
// GET /v1/stats, GET /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, "plan")
	})
	mux.HandleFunc("POST /v1/compare", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, "compare")
	})
	mux.HandleFunc("POST /v1/plan/batch", s.serveBatch)
	mux.HandleFunc("GET /v1/stats", s.serveStats)
	mux.HandleFunc("GET /debug/progress", s.serveProgress)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.reg.Snapshot().WriteText(w)
	})
	return mux
}

// latencyBounds are the request-duration histogram buckets (seconds):
// cache hits land in the microsecond buckets, cold plans in the
// hundreds of milliseconds.
var latencyBounds = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5, 5,
}

// serveQuery handles both planning endpoints: decode, resolve,
// cache-or-compute under the worker pool, marshal.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, endpoint string) {
	start := time.Now()
	s.requests.Add(1)
	s.inflight.Add(1)
	s.reg.Gauge("planserve_inflight_requests").Add(1)
	code := http.StatusOK
	result := "none" // cache outcome; "none" until the lookup runs
	sp := s.tracer.Start(0, "planserve."+endpoint, telemetry.LayerServe)
	sp.Annotate("endpoint", endpoint)
	defer func() {
		dur := time.Since(start).Seconds()
		s.inflight.Add(-1)
		s.reg.Gauge("planserve_inflight_requests").Add(-1)
		s.reg.Counter("planserve_requests_total",
			metrics.L("endpoint", endpoint), metrics.L("code", strconv.Itoa(code))).Inc()
		s.reg.Histogram("planserve_request_seconds", latencyBounds,
			metrics.L("endpoint", endpoint)).Observe(dur)
		s.reg.Summary("planserve_request_seconds_summary", nil,
			metrics.L("endpoint", endpoint)).Observe(dur)
		if sp != nil {
			sp.Annotate("code", strconv.Itoa(code))
			sp.Annotate("cache", result)
			sp.End()
		}
		if s.log != nil {
			s.log.Info("request",
				"endpoint", endpoint, "code", code, "seconds", dur,
				"cache", result, "span", sp.ID().String())
		}
	}()

	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	m, opt, cfg, err := req.resolve()
	if err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Thread the request span into the planning options, so a cache
	// miss's driver run (and its phases) nests under this request in
	// the exported trace. Neither field is part of the cache key.
	opt.Tracer = s.tracer
	opt.TraceParent = sp.ID()

	var val any
	var out cacheOutcome
	if endpoint == "plan" {
		var p *driver.Plan
		p, out, err = s.lookupPlan(ctx, m, opt, cfg)
		val = p
	} else {
		csp := startLookupSpan(opt, "plancache."+endpoint)
		key := cacheKey(endpoint+"|", m, opt, cfg)
		opt.TraceParent = csp.ID() // the miss computation parents under the lookup
		val, out, err = s.plans.do(ctx, key, func() (any, error) {
			// The singleflight leader claims a worker-pool slot; joiners
			// wait on the flight, not the pool.
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			defer func() { <-s.sem }()
			cmp, err := nestwrf.Compare(cfg, opt)
			if err != nil {
				return nil, err
			}
			return &cmp, nil
		})
		endLookupSpan(csp, out, err)
		s.reg.Counter("planserve_cache_total",
			metrics.L("endpoint", endpoint), metrics.L("result", out.String())).Inc()
	}
	result = out.String()
	if err != nil {
		code = statusFor(err)
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}

	// The header keeps its original two-valued contract: joiners did
	// not get a resident entry, so they report "miss".
	header := "miss"
	if out == outcomeHit {
		header = "hit"
	}
	w.Header().Set(CacheHeader, header)
	switch p := val.(type) {
	case *driver.Plan:
		writeJSON(w, http.StatusOK, planResponse(m, cfg, p))
	case *nestwrf.Comparison:
		writeJSON(w, http.StatusOK, &CompareResponse{
			Machine: m.Name, Ranks: opt.Ranks,
			Default: p.Default, Concurrent: p.Concurrent,
			ImprovementPct:      p.ImprovementPct,
			TotalImprovementPct: p.TotalImprovementPct,
			WaitImprovementPct:  p.WaitImprovementPct,
		})
	}
}

// lookupPlan runs one plan query through the shared cache: resident
// entries and singleflight joins answer immediately; a distinct-key
// miss either coalesces into the server's batch (the default) or
// computes on its own worker-pool slot when coalescing is disabled.
func (s *Server) lookupPlan(ctx context.Context, m machine.Machine, opt driver.Options, cfg *nest.Domain) (*driver.Plan, cacheOutcome, error) {
	csp := startLookupSpan(opt, "plancache.plan")
	key := cacheKey("plan|", m, opt, cfg)
	opt.TraceParent = csp.ID() // the miss computation parents under the lookup
	val, out, err := s.plans.do(ctx, key, func() (any, error) {
		if s.batch != nil {
			j := &planJob{cfg: cfg, opt: opt, done: make(chan struct{})}
			s.batch.submit(j)
			select {
			case <-j.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if j.err != nil {
				return nil, j.err
			}
			return j.plan, nil
		}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.sem }()
		return nestwrf.BuildPlan(cfg, opt)
	})
	endLookupSpan(csp, out, err)
	s.reg.Counter("planserve_cache_total",
		metrics.L("endpoint", "plan"), metrics.L("result", out.String())).Inc()
	if err != nil {
		return nil, out, err
	}
	return val.(*driver.Plan), out, nil
}

// maxBatchBodyBytes bounds /v1/plan/batch bodies; maxBatchItems bounds
// the requests per batch call.
const (
	maxBatchBodyBytes = 8 << 20
	maxBatchItems     = 256
)

// BatchRequest is the JSON body of /v1/plan/batch: a list of plan
// queries answered in one round trip. Concurrently planned distinct
// geometries coalesce into shared BuildPlans passes server-side, so a
// cold generation submitted here plans batched instead of serially.
type BatchRequest struct {
	Requests []PlanRequest `json:"requests"`
}

// BatchItemResponse is one query's outcome, in request order. Exactly
// one of Plan and Error is set; Cache reports the lookup outcome
// ("hit", "miss", "join", or "none" when the request never resolved).
type BatchItemResponse struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
	Cache string        `json:"cache"`
}

// BatchResponse is the JSON body of a /v1/plan/batch response.
type BatchResponse struct {
	Responses []BatchItemResponse `json:"responses"`
}

// serveBatch handles POST /v1/plan/batch: every item runs through the
// same cache lookup as /v1/plan, concurrently, and the response keeps
// request order. Item failures (unknown machine, invalid domain) are
// reported inline so one bad query cannot fail a whole generation.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const endpoint = "plan_batch"
	s.requests.Add(1)
	s.inflight.Add(1)
	s.reg.Gauge("planserve_inflight_requests").Add(1)
	code := http.StatusOK
	items := 0
	sp := s.tracer.Start(0, "planserve."+endpoint, telemetry.LayerServe)
	sp.Annotate("endpoint", endpoint)
	defer func() {
		dur := time.Since(start).Seconds()
		s.inflight.Add(-1)
		s.reg.Gauge("planserve_inflight_requests").Add(-1)
		s.reg.Counter("planserve_requests_total",
			metrics.L("endpoint", endpoint), metrics.L("code", strconv.Itoa(code))).Inc()
		s.reg.Histogram("planserve_request_seconds", latencyBounds,
			metrics.L("endpoint", endpoint)).Observe(dur)
		s.reg.Summary("planserve_request_seconds_summary", nil,
			metrics.L("endpoint", endpoint)).Observe(dur)
		if sp != nil {
			sp.Annotate("code", strconv.Itoa(code))
			sp.Annotate("items", strconv.Itoa(items))
			sp.End()
		}
		if s.log != nil {
			s.log.Info("request",
				"endpoint", endpoint, "code", code, "seconds", dur,
				"items", items, "span", sp.ID().String())
		}
	}()

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Requests) == 0 {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{Error: "empty batch"})
		return
	}
	if len(req.Requests) > maxBatchItems {
		code = http.StatusBadRequest
		writeJSON(w, code, errorResponse{
			Error: fmt.Sprintf("batch of %d requests exceeds the %d limit", len(req.Requests), maxBatchItems)})
		return
	}
	items = len(req.Requests)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	resp := BatchResponse{Responses: make([]BatchItemResponse, len(req.Requests))}
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, opt, cfg, err := req.Requests[i].resolve()
			if err != nil {
				resp.Responses[i] = BatchItemResponse{Error: err.Error(), Cache: "none"}
				return
			}
			opt.Tracer = s.tracer
			opt.TraceParent = sp.ID()
			p, out, err := s.lookupPlan(ctx, m, opt, cfg)
			if err != nil {
				resp.Responses[i] = BatchItemResponse{Error: err.Error(), Cache: out.String()}
				return
			}
			resp.Responses[i] = BatchItemResponse{Plan: planResponse(m, cfg, p), Cache: out.String()}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, &resp)
}

// planResponse marshals a cached (name-free) plan back under the
// request's own domain names.
func planResponse(m machine.Machine, cfg *nest.Domain, p *driver.Plan) *PlanResponse {
	resp := &PlanResponse{
		Machine: m.Name, Ranks: p.Ranks, Px: p.Px, Py: p.Py,
		Strategy: p.Strategy.String(), Alloc: p.Alloc.String(), Mapping: p.MapKind.String(),
		MappingQuality: p.Mapping,
		Cost:           p.Cost,
	}
	for i, c := range cfg.Children {
		sib := SiblingPlan{Name: c.Name}
		if i < len(p.Weights) {
			sib.Weight = p.Weights[i]
		}
		if i < len(p.Rects) {
			sib.Rect = p.Rects[i]
		}
		resp.Siblings = append(resp.Siblings, sib)
	}
	return resp
}

// serveStats reports cache occupancy and hit/miss counters as JSON.
func (s *Server) serveStats(w http.ResponseWriter, _ *http.Request) {
	entries, hits, misses, evictions := s.CacheStats()
	warmLoaded, warmRejected, warmEvicted := s.plans.WarmStats()
	var batches, batched uint64
	if s.batch != nil {
		batches, batched = s.batch.stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"entries": entries, "hits": hits, "misses": misses, "evictions": evictions,
		"joins":         s.CacheJoins(),
		"batches":       batches,
		"batched_plans": batched,
		"warm_loaded":   warmLoaded,
		"warm_rejected": warmRejected,
		"warm_evicted":  warmEvicted,
	})
}

// serveProgress reports live serving state: requests handled so far,
// requests in flight, and cache effectiveness as a hit rate over
// completed lookups.
func (s *Server) serveProgress(w http.ResponseWriter, _ *http.Request) {
	entries, hits, misses, evictions := s.CacheStats()
	var hitRate float64
	if lookups := hits + misses; lookups > 0 {
		hitRate = float64(hits) / float64(lookups)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests": s.requests.Load(),
		"inflight": s.inflight.Load(),
		"cache": map[string]any{
			"entries": entries, "hits": hits, "misses": misses,
			"evictions": evictions, "joins": s.CacheJoins(),
			"hit_rate": hitRate,
		},
	})
}

// statusFor maps a planning error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, ErrCacheClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeJSON marshals v and writes it with the given status. Marshal
// errors cannot occur for the fixed response types, but are reported
// defensively.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}
