package planserve

import (
	"sync"
	"time"

	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
)

// planJob is one coalesced cache-miss plan: the singleflight leader
// for a distinct key parks here until the batch it joined is built.
type planJob struct {
	cfg  *nest.Domain
	opt  driver.Options
	plan *driver.Plan
	err  error
	done chan struct{} // closed once plan/err are set
}

// coalescer batches concurrently arriving distinct-key plan misses:
// the first miss arms a short window timer, further misses pile onto
// the pending list, and when the window lapses (or the batch is full)
// every pending plan is built in one driver.BuildPlans pass — sharing
// one trained predictor per machine, the pooled model scratch arenas,
// and one bounded worker-pool fan instead of one pool slot per miss.
type coalescer struct {
	window  time.Duration
	maxJobs int
	workers int
	// acquire/release claim one server worker-pool slot around each
	// flush, so coalesced planning still respects the pool that gates
	// uncoalesced misses (and fails fast the same way under timeout).
	acquire func()
	release func()
	onFlush func(jobs int) // metrics hook, called once per flush

	mu      sync.Mutex
	pending []*planJob
	timerOn bool
	batches uint64
	planned uint64
}

// submit queues one miss and returns immediately; the caller waits on
// j.done. A full batch flushes on the submitter's goroutine; otherwise
// the window timer (armed by the first pending job) flushes.
func (co *coalescer) submit(j *planJob) {
	co.mu.Lock()
	co.pending = append(co.pending, j)
	if len(co.pending) >= co.maxJobs {
		batch := co.pending
		co.pending = nil
		// A still-armed timer finds an empty pending list and no-ops.
		co.mu.Unlock()
		co.flush(batch)
		return
	}
	if !co.timerOn {
		co.timerOn = true
		time.AfterFunc(co.window, co.timerFlush)
	}
	co.mu.Unlock()
}

func (co *coalescer) timerFlush() {
	co.mu.Lock()
	batch := co.pending
	co.pending = nil
	co.timerOn = false
	co.mu.Unlock()
	if len(batch) > 0 {
		co.flush(batch)
	}
}

// flush builds every job in one BuildPlans pass and releases the
// waiters.
func (co *coalescer) flush(batch []*planJob) {
	co.acquire()
	defer co.release()
	jobs := make([]driver.PlanJob, len(batch))
	for i, j := range batch {
		jobs[i] = driver.PlanJob{Config: j.cfg, Options: j.opt}
	}
	plans, errs := driver.BuildPlans(jobs, co.workers)
	co.mu.Lock()
	co.batches++
	co.planned += uint64(len(batch))
	co.mu.Unlock()
	if co.onFlush != nil {
		co.onFlush(len(batch))
	}
	for i, j := range batch {
		j.plan, j.err = plans[i], errs[i]
		close(j.done)
	}
}

// stats returns how many flushes ran and how many plans they built.
func (co *coalescer) stats() (batches, planned uint64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.batches, co.planned
}
