package planserve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
)

func cacheCfg() *nest.Domain {
	cfg := nest.Root("p", 286, 307)
	cfg.AddChild("a", 394, 418, 3, 5, 5)
	cfg.AddChild("b", 232, 202, 3, 150, 10)
	return cfg
}

func cacheOpt() driver.Options {
	return driver.Options{
		Machine:  machine.BGL(),
		Ranks:    256,
		Strategy: driver.Concurrent,
		Alloc:    driver.AllocPredicted,
		MapKind:  driver.MapSequential,
	}
}

func TestPlanCacheRunHitsAndIdentity(t *testing.T) {
	pc := NewPlanCache(16)
	ctx := context.Background()
	cold, hit, err := pc.Run(ctx, cacheCfg(), cacheOpt())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first query reported a hit")
	}
	warm, hit, err := pc.Run(ctx, cacheCfg(), cacheOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second query missed")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("cached result differs:\ncold %+v\nwarm %+v", cold, warm)
	}
	// Renaming domains must not change the key.
	renamed := cacheCfg()
	renamed.Children[0].Name = "typhoon-renamed"
	if _, hit, err = pc.Run(ctx, renamed, cacheOpt()); err != nil || !hit {
		t.Errorf("renamed geometry should hit: hit=%v err=%v", hit, err)
	}
	// A different strategy is a different plan.
	seq := cacheOpt()
	seq.Strategy = driver.Sequential
	if _, hit, err = pc.Run(ctx, cacheCfg(), seq); err != nil || hit {
		t.Errorf("different strategy should miss: hit=%v err=%v", hit, err)
	}
	hits, misses, _ := pc.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats hits=%d misses=%d, want 2/2", hits, misses)
	}
}

// FixedWeights change the allocation, so they must be part of the
// cache identity: two queries differing only in weights must not share
// an entry.
func TestPlanCacheFixedWeightsKeyed(t *testing.T) {
	pc := NewPlanCache(16)
	ctx := context.Background()
	opt := cacheOpt()
	opt.FixedWeights = []float64{0.7, 0.3}
	skewed, hit, err := pc.Run(ctx, cacheCfg(), opt)
	if err != nil || hit {
		t.Fatalf("first weighted query: hit=%v err=%v", hit, err)
	}
	opt.FixedWeights = []float64{0.5, 0.5}
	even, hit, err := pc.Run(ctx, cacheCfg(), opt)
	if err != nil || hit {
		t.Fatalf("second weighted query should miss: hit=%v err=%v", hit, err)
	}
	if reflect.DeepEqual(skewed.Rects, even.Rects) {
		t.Errorf("different weights produced identical partitions: %v", skewed.Rects)
	}
}

func TestPlanCachePlanEndpointAndClose(t *testing.T) {
	pc := NewPlanCache(16)
	ctx := context.Background()
	p1, hit, err := pc.Plan(ctx, cacheCfg(), cacheOpt())
	if err != nil || hit {
		t.Fatalf("cold plan: hit=%v err=%v", hit, err)
	}
	p2, hit, err := pc.Plan(ctx, cacheCfg(), cacheOpt())
	if err != nil || !hit {
		t.Fatalf("warm plan: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Error("warm plan is not the shared cached pointer")
	}
	pc.Close()
	if _, _, err := pc.Plan(ctx, cacheCfg(), cacheOpt()); !errors.Is(err, ErrCacheClosed) {
		t.Errorf("closed cache: %v", err)
	}
}

// Concurrent identical queries must resolve to one computation and
// identical results (singleflight through the exported wrapper).
func TestPlanCacheConcurrentRun(t *testing.T) {
	pc := NewPlanCache(16)
	ctx := context.Background()
	const n = 16
	results := make([]driver.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = pc.Run(ctx, cacheCfg(), cacheOpt())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("query %d diverged", i)
		}
	}
	_, misses, _ := pc.Stats()
	if misses != 1 {
		t.Errorf("%d misses for one distinct key", misses)
	}
}
