package planserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"nestwrf"
	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
)

// batchBody builds a /v1/plan/batch body from plan-request bodies.
func batchBody(reqs ...string) string {
	return `{"requests":[` + join(reqs, ",") + `]}`
}

func join(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}

// TestBatchEndpoint: a batch's items must round-trip in request order,
// each byte-equivalent to what the single /v1/plan endpoint returns,
// with duplicate items sharing one computation and a second call
// hitting the cache throughout.
func TestBatchEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	h := srv.Handler()

	a := testRequest("concurrent", "predicted", "multilevel")
	b := testRequest("sequential", "equal", "txyz")
	code, _, raw := post(t, h, "/v1/plan/batch", batchBody(a, a, b))
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(resp.Responses))
	}
	for i, item := range resp.Responses {
		if item.Error != "" || item.Plan == nil {
			t.Fatalf("item %d: error %q, plan %v", i, item.Error, item.Plan)
		}
	}
	if !reflect.DeepEqual(resp.Responses[0].Plan, resp.Responses[1].Plan) {
		t.Error("duplicate items returned different plans")
	}

	// Each item must match the single endpoint's body for the same
	// query (which is a cache hit now, hence byte-identical to cold).
	for i, body := range []string{a, b} {
		code, cacheHdr, single := post(t, h, "/v1/plan", body)
		if code != http.StatusOK || cacheHdr != "hit" {
			t.Fatalf("single query %d: status %d cache %q", i, code, cacheHdr)
		}
		var want PlanResponse
		if err := json.Unmarshal(single, &want); err != nil {
			t.Fatal(err)
		}
		got := resp.Responses[2*i] // items 0 and 2
		if !reflect.DeepEqual(&want, got.Plan) {
			t.Errorf("batch item %d differs from single endpoint response", 2*i)
		}
	}

	// Second batch: everything resident.
	code, _, raw = post(t, h, "/v1/plan/batch", batchBody(a, b))
	if code != http.StatusOK {
		t.Fatalf("second batch status %d", code)
	}
	resp = BatchResponse{}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Responses {
		if item.Cache != "hit" {
			t.Errorf("second batch item %d: cache %q, want hit", i, item.Cache)
		}
	}
}

// TestBatchEndpointErrors: item-level failures are inline; an empty
// batch is a request-level 400.
func TestBatchEndpointErrors(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	h := srv.Handler()

	bad := `{"machine":"cray","ranks":64,"domain":{"nx":64,"ny":64}}`
	good := testRequest("concurrent", "predicted", "oblivious")
	code, _, raw := post(t, h, "/v1/plan/batch", batchBody(bad, good))
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Responses[0].Error == "" || resp.Responses[0].Plan != nil {
		t.Errorf("bad item should fail inline: %+v", resp.Responses[0])
	}
	if resp.Responses[1].Error != "" || resp.Responses[1].Plan == nil {
		t.Errorf("good item should succeed: %+v", resp.Responses[1])
	}

	if code, _, _ := post(t, h, "/v1/plan/batch", `{"requests":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
}

// TestMissCoalescing: distinct-key misses arriving within the batch
// window must plan in shared BuildPlans passes, not one pool pass per
// miss. The window is generous so slow CI schedulers still land every
// request inside it.
func TestMissCoalescing(t *testing.T) {
	srv := New(Config{BatchWindow: 200 * time.Millisecond})
	defer srv.Close()
	h := srv.Handler()

	const distinct = 5
	var wg sync.WaitGroup
	errs := make(chan error, distinct)
	for i := 0; i < distinct; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"machine":"bgl","ranks":64,"strategy":"sequential","mapping":"oblivious","domain":{"nx":%d,"ny":64}}`, 64+8*i)
			if code, _, raw := post(t, h, "/v1/plan", body); code != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, code, raw)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	batches, planned := srv.batch.stats()
	if planned != distinct {
		t.Errorf("coalescer planned %d, want %d", planned, distinct)
	}
	if batches == 0 || batches >= distinct {
		t.Errorf("%d misses flushed in %d batches, want coalescing (1..%d)", distinct, batches, distinct-1)
	}
	_, misses, _ := func() (uint64, uint64, uint64) { return srv.plans.Stats() }()
	if misses != distinct {
		t.Errorf("cache misses %d, want %d", misses, distinct)
	}
}

// TestRunBatch: PlanCache.RunBatch must return per-job results
// bit-identical to individual Run calls, in input order, counting one
// miss per distinct key.
func TestRunBatch(t *testing.T) {
	cache := NewPlanCache(64)
	defer cache.Close()

	var jobs []RunJob
	for i := 0; i < 4; i++ {
		cfg := nest.Root("p", 286, 307)
		cfg.AddChild("t1", 394-8*i, 418, 3, 5, 5)
		jobs = append(jobs, RunJob{Config: cfg, Opt: driver.Options{
			Machine: nestwrf.BlueGeneL(), Ranks: 64, Strategy: driver.Concurrent,
		}})
	}
	jobs = append(jobs, jobs[0]) // duplicate key

	results, errs := cache.RunBatch(context.Background(), jobs, 4)
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		want, err := driver.Run(jobs[i].Config, jobs[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, results[i]) {
			t.Errorf("job %d: batch result differs from direct Run", i)
		}
	}
	_, misses, _ := cache.Stats()
	if misses != 4 {
		t.Errorf("misses %d, want 4 (duplicate shares one computation)", misses)
	}
}
