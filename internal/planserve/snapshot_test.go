package planserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotRoundTripByteIdentity is the persistence acceptance
// guard: save -> restart -> warm-load must serve the first request as
// an X-Plan-Cache hit with a body byte-identical to the original
// server's cold-computed one, for both endpoints.
func TestSnapshotRoundTripByteIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	planBody := testRequest("concurrent", "predicted", "multilevel")
	compareBody := testRequest("concurrent", "predicted", "partition")

	srvA := New(Config{})
	hA := srvA.Handler()
	_, _, wantPlan := post(t, hA, "/v1/plan", planBody)
	_, _, wantCompare := post(t, hA, "/v1/compare", compareBody)
	saved, err := srvA.SaveSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 2 {
		t.Fatalf("saved %d entries, want 2", saved)
	}
	srvA.Close()

	srvB := New(Config{})
	defer srvB.Close()
	loaded, rejected, err := srvB.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || rejected != 0 {
		t.Fatalf("loaded %d rejected %d, want 2/0", loaded, rejected)
	}
	hB := srvB.Handler()
	code, cacheHdr, gotPlan := post(t, hB, "/v1/plan", planBody)
	if code != http.StatusOK || cacheHdr != "hit" {
		t.Fatalf("warm plan: status %d cache %q, want 200 hit", code, cacheHdr)
	}
	if !bytes.Equal(wantPlan, gotPlan) {
		t.Errorf("warm plan body differs from original:\nwant %s\ngot  %s", wantPlan, gotPlan)
	}
	code, cacheHdr, gotCompare := post(t, hB, "/v1/compare", compareBody)
	if code != http.StatusOK || cacheHdr != "hit" {
		t.Fatalf("warm compare: status %d cache %q, want 200 hit", code, cacheHdr)
	}
	if !bytes.Equal(wantCompare, gotCompare) {
		t.Error("warm compare body differs from original")
	}
	if l, r, e := srvB.CacheWarmStats(); l != 2 || r != 0 || e != 0 {
		t.Errorf("warm stats %d/%d/%d, want 2/0/0", l, r, e)
	}
	if hits, misses, _ := srvB.plans.Stats(); hits != 2 || misses != 0 {
		t.Errorf("hits %d misses %d after warm load, want 2/0", hits, misses)
	}
}

// TestSnapshotRejectsCorruptFile: unreadable or corrupt snapshots fail
// whole with an error and leave the server serving cold.
func TestSnapshotRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{})
	defer srv.Close()

	if _, _, err := srv.LoadSnapshot(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("missing file should error")
	}

	corrupt := filepath.Join(dir, "corrupt.snap")
	if err := os.WriteFile(corrupt, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.LoadSnapshot(corrupt); err == nil {
		t.Error("corrupt file should error")
	}

	stale := filepath.Join(dir, "stale.snap")
	if err := os.WriteFile(stale, []byte(`{"version":"nestwrf/plan-cache/v0","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.LoadSnapshot(stale); err == nil {
		t.Error("version mismatch should error")
	}

	// The server still plans cold after the failed loads.
	code, cacheHdr, _ := post(t, srv.Handler(), "/v1/plan", testRequest("concurrent", "predicted", "oblivious"))
	if code != http.StatusOK || cacheHdr != "miss" {
		t.Errorf("cold query after failed load: status %d cache %q", code, cacheHdr)
	}
}

// TestSnapshotRejectsMachineMismatch: entries whose machine identity
// no longer matches the running binary's cost model (or names an
// unknown machine) are rejected one by one with the counter bumped.
func TestSnapshotRejectsMachineMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	srvA := New(Config{})
	hA := srvA.Handler()
	post(t, hA, "/v1/plan", testRequest("concurrent", "predicted", "multilevel"))
	if _, err := srvA.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	srvA.Close()

	// Doctor the snapshot: one entry with a stale identity key, one for
	// a machine this binary does not know.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(snap.Entries))
	}
	stale := snap.Entries[0]
	stale.Key = "plan|machine.Machine{Name:\"BlueGene/L\", stale:true}|r=64|"
	unknown := snap.Entries[0]
	unknown.Machine = "BlueGene/Q"
	snap.Entries = []snapshotEntry{stale, unknown}
	data, _ = json.Marshal(&snap)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB := New(Config{})
	defer srvB.Close()
	loaded, rejected, err := srvB.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 || rejected != 2 {
		t.Fatalf("loaded %d rejected %d, want 0/2", loaded, rejected)
	}
	if l, r, _ := srvB.CacheWarmStats(); l != 0 || r != 2 {
		t.Errorf("warm stats loaded %d rejected %d, want 0/2", l, r)
	}
}

// TestSnapshotCapacityAndWarmEviction: loading past capacity rejects
// the overflow, and warm entries pushed out by later traffic are
// counted as warm evictions.
func TestSnapshotCapacityAndWarmEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	srvA := New(Config{})
	hA := srvA.Handler()
	post(t, hA, "/v1/plan", testRequest("concurrent", "predicted", "multilevel"))
	post(t, hA, "/v1/plan", testRequest("sequential", "equal", "txyz"))
	if saved, _ := srvA.SaveSnapshot(path); saved != 2 {
		t.Fatalf("saved %d, want 2", saved)
	}
	srvA.Close()

	srvB := New(Config{CacheSize: 1})
	defer srvB.Close()
	loaded, rejected, err := srvB.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || rejected != 1 {
		t.Fatalf("loaded %d rejected %d, want 1/1", loaded, rejected)
	}

	// A distinct cold query evicts the lone warm entry.
	post(t, srvB.Handler(), "/v1/plan", `{"machine":"bgp","ranks":64,"strategy":"sequential","mapping":"oblivious","domain":{"nx":96,"ny":96}}`)
	if _, _, evicted := srvB.CacheWarmStats(); evicted != 1 {
		t.Errorf("warm evictions %d, want 1", evicted)
	}
}
