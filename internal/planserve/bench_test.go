package planserve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkPlanQueryCacheHot measures sustained cache-hot plan-query
// throughput through the full HTTP handler path (JSON decode, request
// resolution, canonical key build, LRU hit, JSON encode). The qps
// metric is the acceptance number for the plan server (>10k/s).
func BenchmarkPlanQueryCacheHot(b *testing.B) {
	srv := New(Config{})
	h := srv.Handler()
	body := testRequestBench()
	// Warm the cache so every measured request is a hit.
	req := httptest.NewRequest("POST", "/v1/plan", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup failed %d: %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/plan", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("status %d", rec.Code)
				return
			}
			if rec.Header().Get(CacheHeader) != "hit" {
				b.Error("measured request was not a cache hit")
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
}

// BenchmarkPlanQueryCacheMiss measures cold planning throughput: every
// request has a distinct rank count, so each one runs the full
// pipeline under the worker pool.
func BenchmarkPlanQueryCacheMiss(b *testing.B) {
	srv := New(Config{CacheSize: 1})
	h := srv.Handler()
	bodies := []string{
		`{"machine":"bgl","ranks":64,"strategy":"sequential","mapping":"oblivious","domain":{"nx":64,"ny":64}}`,
		`{"machine":"bgl","ranks":128,"strategy":"sequential","mapping":"oblivious","domain":{"nx":64,"ny":64}}`,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/plan", strings.NewReader(bodies[i%2]))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// testRequestBench returns the canonical three-domain benchmark query.
func testRequestBench() string {
	return `{
		"machine": "bgl",
		"ranks": 256,
		"strategy": "concurrent",
		"alloc": "predicted",
		"mapping": "multilevel",
		"domain": {
			"name": "pacific", "nx": 286, "ny": 307,
			"children": [
				{"name": "t1", "nx": 394, "ny": 418, "ratio": 3, "off_x": 5, "off_y": 5},
				{"name": "t2", "nx": 313, "ny": 337, "ratio": 3, "off_x": 140, "off_y": 150}
			]
		}
	}`
}
