package planserve

import (
	"context"
	"net"
	"net/http"
	"time"
)

// ServeUntil serves handler on ln until ctx is cancelled, then shuts
// the server down gracefully, waiting up to grace for in-flight
// requests to drain before forcing connections closed. A nil handler
// serves http.DefaultServeMux. Returns nil after a clean shutdown, or
// the serve/shutdown error.
func ServeUntil(ctx context.Context, ln net.Listener, handler http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		// Serve failed on its own before any shutdown was requested.
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
		<-errCh
		return err
	}
	if err := <-errCh; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// StartServer listens on addr and serves handler in the background via
// ServeUntil. It returns the bound address (useful with ":0") and a
// stop function that shuts the server down gracefully and returns the
// serve error, if any — so callers report serve failures at shutdown
// instead of losing them in an orphaned goroutine.
func StartServer(addr string, handler http.Handler, grace time.Duration) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- ServeUntil(ctx, ln, handler, grace) }()
	stop = func() error {
		cancel()
		return <-errCh
	}
	return ln.Addr().String(), stop, nil
}
