package planserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := newCache(4)
	ctx := context.Background()
	calls := 0
	compute := func() (any, error) { calls++; return "v", nil }

	v, hit, err := c.Do(ctx, "k", compute)
	if err != nil || hit || v != "v" {
		t.Fatalf("first Do = (%v, %v, %v), want (v, miss, nil)", v, hit, err)
	}
	v, hit, err = c.Do(ctx, "k", compute)
	if err != nil || !hit || v != "v" {
		t.Fatalf("second Do = (%v, %v, %v), want (v, hit, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheBoundedEviction(t *testing.T) {
	c := newCache(3)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(ctx, key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("cache holds %d entries after 5 inserts with max 3", n)
	}
	_, _, evictions := c.Stats()
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	// k0 and k1 were evicted (LRU); k4 must still be resident.
	if _, hit, _ := c.Do(ctx, "k4", func() (any, error) { return -1, nil }); !hit {
		t.Error("most recent entry was evicted")
	}
	if _, hit, _ := c.Do(ctx, "k0", func() (any, error) { return -1, nil }); hit {
		t.Error("least recent entry survived eviction")
	}
}

func TestCacheLRUOrderUpdatedOnHit(t *testing.T) {
	c := newCache(2)
	ctx := context.Background()
	put := func(k string) {
		if _, _, err := c.Do(ctx, k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // touch a: b becomes LRU
	put("c") // evicts b, not a
	if _, hit, _ := c.Do(ctx, "a", func() (any, error) { return "", nil }); !hit {
		t.Error("recently touched entry was evicted")
	}
	if _, hit, _ := c.Do(ctx, "b", func() (any, error) { return "", nil }); hit {
		t.Error("least recently used entry survived")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(ctx, "k", func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do(ctx, "k", func() (any, error) { calls++; return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after error = (%v, %v, %v), want fresh compute", v, hit, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (error not cached)", calls)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newCache(4)
	ctx := context.Background()
	const joiners = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(ctx, "k", func() (any, error) {
				computes.Add(1)
				<-gate // hold the flight open until all joiners queue
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the leader is in flight, then release it. Stragglers
	// that arrive after completion hit the cache; either way compute
	// must run exactly once.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for concurrent identical queries, want 1", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("joiner %d got %v, want shared", i, v)
		}
	}
}

func TestCacheJoinerContextCancel(t *testing.T) {
	c := newCache(4)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.Do(context.Background(), "k", func() (any, error) {
			<-gate
			return "late", nil
		})
	}()
	// Wait for the leader's flight to register.
	for {
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner got %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
	// The leader's result still landed in the cache for later queries.
	v, hit, err := c.Do(context.Background(), "k", func() (any, error) { return nil, nil })
	if err != nil || !hit || v != "late" {
		t.Fatalf("post-cancel Do = (%v, %v, %v), want cached leader result", v, hit, err)
	}
}

func TestCacheClose(t *testing.T) {
	c := newCache(4)
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Do(ctx, "k", func() (any, error) { return 2, nil }); !errors.Is(err, ErrCacheClosed) {
		t.Fatalf("Do after Close = %v, want ErrCacheClosed", err)
	}
	if c.Len() != 0 {
		t.Error("Close did not empty the cache")
	}
}
