package planserve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"nestwrf/internal/metrics"
)

// ErrCacheClosed is returned by Do after Close.
var ErrCacheClosed = errors.New("planserve: cache closed")

// cacheOutcome classifies how a lookup was satisfied.
type cacheOutcome int

const (
	// outcomeMiss: this caller led the computation.
	outcomeMiss cacheOutcome = iota
	// outcomeHit: served from the resident cache, no waiting.
	outcomeHit
	// outcomeJoin: waited on another caller's in-flight computation
	// (singleflight dedup).
	outcomeJoin
)

// String returns the annotation/label form of the outcome.
func (o cacheOutcome) String() string {
	switch o {
	case outcomeHit:
		return "hit"
	case outcomeJoin:
		return "join"
	}
	return "miss"
}

// flight is one in-progress computation that concurrent identical
// queries join instead of recomputing (singleflight dedup). done is
// closed exactly once, after val/err are set.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// cache is a bounded, shared LRU keyed by canonical query strings,
// with singleflight deduplication of concurrent misses. It stores
// immutable plan values: a hit hands the same pointer to every caller,
// which is safe because plans are never mutated after construction.
type cache struct {
	mu       sync.Mutex
	max      int        // maximum resident entries (> 0)
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight
	closed   bool

	hits, misses, evictions, joins uint64

	// Warm-load accounting: entries restored from a persisted snapshot
	// (loaded), snapshot entries refused at load time (rejected —
	// machine mismatch, decode failure, over capacity), and warm
	// entries later pushed out by LRU churn (evicted).
	warmLoaded, warmRejected, warmEvicted uint64

	// Optional registry counters, mirroring the internal counts; nil
	// (the default) is a no-op thanks to the metrics nil contract.
	mHits, mMisses, mEvictions, mJoins       *metrics.Counter
	mWarmLoaded, mWarmRejected, mWarmEvicted *metrics.Counter
}

// lruEntry is the list payload. warm marks entries restored from a
// snapshot rather than computed in this process.
type lruEntry struct {
	key  string
	val  any
	warm bool
}

// newCache returns an LRU cache bounded to max entries (min 1).
func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{
		max:      max,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// Do returns the cached value for key, or computes it via compute. At
// most one compute runs per key at a time: concurrent callers with the
// same key wait for the leader's result (or their own context, in
// which case the computation keeps running and lands in the cache for
// later queries). Errors are not cached; the next query retries.
// The hit result reports whether the value came from the cache without
// waiting on any computation.
func (c *cache) Do(ctx context.Context, key string, compute func() (any, error)) (val any, hit bool, err error) {
	val, out, err := c.do(ctx, key, compute)
	return val, out == outcomeHit, err
}

// do is Do with the full outcome: hit, miss (led the computation) or
// join (waited on another caller's flight).
func (c *cache) do(ctx context.Context, key string, compute func() (any, error)) (val any, out cacheOutcome, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, outcomeMiss, ErrCacheClosed
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mHits.Inc()
		val = el.Value.(*lruEntry).val
		c.mu.Unlock()
		return val, outcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.joins++
		c.mJoins.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, outcomeJoin, f.err
		case <-ctx.Done():
			return nil, outcomeJoin, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mMisses.Inc()
	c.mu.Unlock()

	f.val, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && !c.closed {
		c.insert(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, outcomeMiss, f.err
}

// insert adds key -> val and evicts the least recently used entry when
// over capacity (callers hold c.mu).
func (c *cache) insert(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.entries, e.key)
		c.evictions++
		c.mEvictions.Inc()
		if e.warm {
			c.warmEvicted++
			c.mWarmEvicted.Inc()
		}
	}
}

// dumpEntry is one resident entry in dump order.
type dumpEntry struct {
	key string
	val any
}

// dump returns the resident entries, most recently used first.
func (c *cache) dump() []dumpEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]dumpEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		out = append(out, dumpEntry{key: e.key, val: e.val})
	}
	return out
}

// loadWarm inserts one snapshot entry without touching the hit/miss
// counters. Entries must arrive most-recently-used first: each lands
// behind the previously loaded ones, reconstructing the dump's LRU
// order exactly. Returns false — the caller counts a rejection — when
// the cache is closed, already holds the key, or is at capacity.
func (c *cache) loadWarm(key string, val any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.ll.Len() >= c.max {
		return false
	}
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = c.ll.PushBack(&lruEntry{key: key, val: val, warm: true})
	c.warmLoaded++
	c.mWarmLoaded.Inc()
	return true
}

// noteWarmRejected records n snapshot entries refused at load time.
func (c *cache) noteWarmRejected(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.warmRejected += uint64(n)
	c.mWarmRejected.Add(float64(n))
}

// WarmStats returns the snapshot warm-load counters.
func (c *cache) WarmStats() (loaded, rejected, evicted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.warmLoaded, c.warmRejected, c.warmEvicted
}

// Len returns the number of resident entries.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Joins returns the cumulative count of lookups that waited on another
// caller's in-flight computation (singleflight dedup).
func (c *cache) Joins() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joins
}

// instrument mirrors the cache's counters into reg under the given
// metric name prefix (e.g. "plancache" yields plancache_hits_total and
// friends). A nil registry leaves the cache uninstrumented; counts
// recorded before instrumentation are not backfilled.
func (c *cache) instrument(reg *metrics.Registry, prefix string, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter(prefix+"_hits_total", labels...)
	c.mMisses = reg.Counter(prefix+"_misses_total", labels...)
	c.mEvictions = reg.Counter(prefix+"_evictions_total", labels...)
	c.mJoins = reg.Counter(prefix+"_joins_total", labels...)
	c.mWarmLoaded = reg.Counter("planserve_cache_warm_loaded_total", labels...)
	c.mWarmRejected = reg.Counter("planserve_cache_warm_rejected_total", labels...)
	c.mWarmEvicted = reg.Counter("planserve_cache_warm_evicted_total", labels...)
}

// Close empties the cache and makes further Do calls fail fast.
// In-flight computations complete but their results are dropped.
func (c *cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.ll.Init()
	c.entries = map[string]*list.Element{}
}
