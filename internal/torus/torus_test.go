package torus

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 4); err == nil {
		t.Error("zero dimension should fail")
	}
	if _, err := New(4, -1, 4); err == nil {
		t.Error("negative dimension should fail")
	}
	tor, err := New(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 32 {
		t.Errorf("Nodes = %d", tor.Nodes())
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	tor := Torus{5, 3, 7}
	for i := 0; i < tor.Nodes(); i++ {
		c := tor.CoordOf(i)
		if !tor.Valid(c) {
			t.Fatalf("CoordOf(%d) = %v invalid", i, c)
		}
		if got := tor.Index(c); got != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, got)
		}
	}
}

func TestHopsBasic(t *testing.T) {
	tor := Torus{4, 4, 2}
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0, 0}, Coord{0, 0, 0}, 0},
		{Coord{0, 0, 0}, Coord{1, 0, 0}, 1},
		{Coord{0, 0, 0}, Coord{3, 0, 0}, 1}, // wraparound
		{Coord{0, 0, 0}, Coord{2, 0, 0}, 2},
		{Coord{0, 0, 0}, Coord{2, 2, 1}, 5},
		{Coord{1, 1, 0}, Coord{1, 1, 1}, 1},
		{Coord{0, 3, 0}, Coord{0, 0, 0}, 1}, // y wraparound
	}
	for _, tc := range cases {
		if got := tor.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	tor := Torus{6, 5, 4}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := tor.CoordOf(rng.Intn(tor.Nodes()))
		b := tor.CoordOf(rng.Intn(tor.Nodes()))
		if tor.Hops(a, b) != tor.Hops(b, a) {
			t.Fatalf("Hops not symmetric for %v, %v", a, b)
		}
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	tor := Torus{4, 6, 3}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		a := tor.CoordOf(rng.Intn(tor.Nodes()))
		b := tor.CoordOf(rng.Intn(tor.Nodes()))
		c := tor.CoordOf(rng.Intn(tor.Nodes()))
		if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestHopsMaxDiameter(t *testing.T) {
	tor := Torus{8, 8, 16}
	want := 4 + 4 + 8 // half of each dimension
	got := 0
	for i := 0; i < tor.Nodes(); i++ {
		h := tor.Hops(Coord{0, 0, 0}, tor.CoordOf(i))
		if h > got {
			got = h
		}
	}
	if got != want {
		t.Errorf("diameter = %d, want %d", got, want)
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	tor := Torus{4, 4, 2}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := tor.CoordOf(rng.Intn(tor.Nodes()))
		b := tor.CoordOf(rng.Intn(tor.Nodes()))
		route := tor.Route(a, b)
		if len(route) != tor.Hops(a, b) {
			t.Fatalf("route length %d != hops %d for %v->%v", len(route), tor.Hops(a, b), a, b)
		}
	}
}

func TestRouteIsConnectedAndDimensionOrdered(t *testing.T) {
	tor := Torus{5, 4, 3}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		a := tor.CoordOf(rng.Intn(tor.Nodes()))
		b := tor.CoordOf(rng.Intn(tor.Nodes()))
		route := tor.Route(a, b)
		cur := a
		lastDim := Dim(0)
		for hi, l := range route {
			if l.From != cur {
				t.Fatalf("link %d starts at %v, expected %v", hi, l.From, cur)
			}
			if l.Dim < lastDim {
				t.Fatalf("route not dimension-ordered: %v after %v", l.Dim, lastDim)
			}
			lastDim = l.Dim
			cur = tor.Neighbor(cur, l.Dim, l.Dir)
		}
		if cur != b {
			t.Fatalf("route from %v ends at %v, want %v", a, cur, b)
		}
	}
}

func TestRouteSameNode(t *testing.T) {
	tor := Torus{4, 4, 4}
	if r := tor.Route(Coord{1, 2, 3}, Coord{1, 2, 3}); len(r) != 0 {
		t.Errorf("self route should be empty, got %d links", len(r))
	}
}

func TestRouteWraparound(t *testing.T) {
	tor := Torus{8, 8, 8}
	// 0 -> 7 should take the single wraparound hop in -x.
	route := tor.Route(Coord{0, 0, 0}, Coord{7, 0, 0})
	if len(route) != 1 {
		t.Fatalf("route length %d, want 1", len(route))
	}
	if route[0].Dir != -1 || route[0].Dim != DimX {
		t.Errorf("route = %+v, want -x hop", route[0])
	}
}

func TestNeighborWraps(t *testing.T) {
	tor := Torus{4, 4, 2}
	if got := tor.Neighbor(Coord{3, 0, 0}, DimX, 1); got != (Coord{0, 0, 0}) {
		t.Errorf("x+ wrap = %v", got)
	}
	if got := tor.Neighbor(Coord{0, 0, 0}, DimY, -1); got != (Coord{0, 3, 0}) {
		t.Errorf("y- wrap = %v", got)
	}
	if got := tor.Neighbor(Coord{0, 0, 1}, DimZ, 1); got != (Coord{0, 0, 0}) {
		t.Errorf("z+ wrap = %v", got)
	}
}

func TestDimString(t *testing.T) {
	if DimX.String() != "X" || DimY.String() != "Y" || DimZ.String() != "Z" {
		t.Error("Dim strings wrong")
	}
	if Dim(9).String() != "Dim(9)" {
		t.Errorf("unknown dim = %q", Dim(9).String())
	}
}

func TestLinkCount(t *testing.T) {
	// 4x4x4: every node has 6 outgoing links.
	tor := Torus{4, 4, 4}
	if got := tor.LinkCount(); got != 64*6 {
		t.Errorf("LinkCount = %d, want %d", got, 64*6)
	}
	// Degenerate 1-long dimension has no links.
	tor = Torus{4, 4, 1}
	if got := tor.LinkCount(); got != 16*4 {
		t.Errorf("LinkCount = %d, want %d", got, 16*4)
	}
}

func TestBisection(t *testing.T) {
	tor := Torus{8, 8, 16}
	// Longest dim 16, cross-section 64, 2 directions, 2 cut planes.
	if got := tor.Bisection(); got != 64*4 {
		t.Errorf("Bisection = %d, want %d", got, 64*4)
	}
	if got := (Torus{1, 1, 1}).Bisection(); got != 0 {
		t.Errorf("unit torus bisection = %d", got)
	}
}

func TestWrapDelta(t *testing.T) {
	cases := []struct {
		a, b, size, want int
	}{
		{0, 1, 8, 1},
		{0, 7, 8, -1},
		{0, 4, 8, 4}, // tie prefers positive
		{3, 3, 8, 0},
		{7, 0, 8, 1},
	}
	for _, tc := range cases {
		if got := wrapDelta(tc.a, tc.b, tc.size); got != tc.want {
			t.Errorf("wrapDelta(%d,%d,%d) = %d, want %d", tc.a, tc.b, tc.size, got, tc.want)
		}
	}
}
