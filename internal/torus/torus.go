// Package torus models the 3D torus interconnect of IBM Blue Gene/L
// and Blue Gene/P systems (paper Section 3.3): node coordinates,
// minimal wraparound hop distances, and the dimension-ordered routes
// used to account per-link traffic in the network simulator.
//
// The model treats each core as a torus endpoint; virtual-node mode
// (multiple cores per node) is represented by folding the intra-node
// "T" dimension into Z, which slightly overestimates intra-node hop
// cost (one cheap hop instead of zero) and is noted in DESIGN.md.
package torus

import (
	"errors"
	"fmt"
)

// Torus describes a 3D torus with the given dimensions.
type Torus struct {
	X, Y, Z int
}

// Coord is the coordinate of a node in the torus.
type Coord struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// ErrBadDims is returned for non-positive torus dimensions.
var ErrBadDims = errors.New("torus: dimensions must be positive")

// New returns a torus with the given dimensions.
func New(x, y, z int) (Torus, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return Torus{}, fmt.Errorf("%w: %dx%dx%d", ErrBadDims, x, y, z)
	}
	return Torus{x, y, z}, nil
}

// Nodes returns the number of nodes in the torus.
func (t Torus) Nodes() int { return t.X * t.Y * t.Z }

// Valid reports whether c is a coordinate inside t.
func (t Torus) Valid(c Coord) bool {
	return c.X >= 0 && c.X < t.X && c.Y >= 0 && c.Y < t.Y && c.Z >= 0 && c.Z < t.Z
}

// Index returns the linear index of c with x varying fastest.
func (t Torus) Index(c Coord) int {
	return c.X + t.X*(c.Y+t.Y*c.Z)
}

// CoordOf returns the coordinate of linear index i (x fastest).
func (t Torus) CoordOf(i int) Coord {
	return Coord{X: i % t.X, Y: (i / t.X) % t.Y, Z: i / (t.X * t.Y)}
}

// wrapDelta returns the signed minimal step count from a to b along a
// dimension of the given size, preferring the positive direction on
// ties.
func wrapDelta(a, b, size int) int {
	d := ((b-a)%size + size) % size
	if d*2 > size {
		return d - size
	}
	return d
}

// dimDist returns the minimal hop count between positions a and b on a
// ring of the given size.
func dimDist(a, b, size int) int {
	d := wrapDelta(a, b, size)
	if d < 0 {
		return -d
	}
	return d
}

// Hops returns the minimal number of network hops between two nodes,
// i.e. the wraparound Manhattan distance.
func (t Torus) Hops(a, b Coord) int {
	return dimDist(a.X, b.X, t.X) + dimDist(a.Y, b.Y, t.Y) + dimDist(a.Z, b.Z, t.Z)
}

// Dim identifies a torus dimension.
type Dim uint8

// The three torus dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
)

// String implements fmt.Stringer.
func (d Dim) String() string {
	switch d {
	case DimX:
		return "X"
	case DimY:
		return "Y"
	case DimZ:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// Link identifies a directed link: the cable leaving node From in
// dimension Dim towards direction Dir (+1 or -1). Each physical torus
// cable appears as two Links, one per direction, matching the
// independent send/receive channels of Blue Gene hardware.
type Link struct {
	From Coord
	Dim  Dim
	Dir  int8
}

// Route returns the sequence of directed links of the dimension-ordered
// (X, then Y, then Z) minimal route from a to b, the deterministic
// routing used by Blue Gene. An empty route means a == b.
func (t Torus) Route(a, b Coord) []Link {
	n := t.Hops(a, b)
	if n == 0 {
		return nil
	}
	return t.RouteInto(a, b, make([]Link, 0, n))
}

// RouteInto appends the dimension-ordered route from a to b onto buf
// and returns the extended slice, allowing callers to reuse a route
// buffer across messages instead of allocating per call.
func (t Torus) RouteInto(a, b Coord, buf []Link) []Link {
	cur := a
	for dim := DimX; dim <= DimZ; dim++ {
		pos, target, size := routeAxis(cur, b, t, dim)
		delta := wrapDelta(pos, target, size)
		dir := int8(1)
		if delta < 0 {
			dir = -1
			delta = -delta
		}
		for i := 0; i < delta; i++ {
			buf = append(buf, Link{From: cur, Dim: dim, Dir: dir})
			cur = t.Neighbor(cur, dim, dir)
		}
	}
	return buf
}

// RouteFunc calls fn for every directed link of the dimension-ordered
// route from a to b, in order, without allocating.
func (t Torus) RouteFunc(a, b Coord, fn func(Link)) {
	cur := a
	for dim := DimX; dim <= DimZ; dim++ {
		pos, target, size := routeAxis(cur, b, t, dim)
		delta := wrapDelta(pos, target, size)
		dir := int8(1)
		if delta < 0 {
			dir = -1
			delta = -delta
		}
		for i := 0; i < delta; i++ {
			fn(Link{From: cur, Dim: dim, Dir: dir})
			cur = t.Neighbor(cur, dim, dir)
		}
	}
}

// routeAxis extracts the current position, target position and ring
// size of one routing dimension.
func routeAxis(cur, b Coord, t Torus, d Dim) (pos, target, size int) {
	switch d {
	case DimX:
		return cur.X, b.X, t.X
	case DimY:
		return cur.Y, b.Y, t.Y
	default:
		return cur.Z, b.Z, t.Z
	}
}

// LinkIndex is the dense linear index of a directed link: every node
// owns six outgoing slots (three dimensions x two directions), so all
// per-link state fits in a flat array of 6*Nodes() entries. It exists
// so the network simulator can accumulate link loads without hashing
// Link structs.
type LinkIndex int32

// LinkIndexCount returns the size of the dense link-index space,
// 6*Nodes(). Slots for links that do not physically exist (rings of
// length <= 1) are simply never produced by routes.
func (t Torus) LinkIndexCount() int { return 6 * t.Nodes() }

// LinkIndexOf returns the dense index of l.
func (t Torus) LinkIndexOf(l Link) LinkIndex {
	slot := 2 * int(l.Dim)
	if l.Dir < 0 {
		slot++
	}
	return LinkIndex(6*t.Index(l.From) + slot)
}

// LinkAt is the inverse of LinkIndexOf.
func (t Torus) LinkAt(i LinkIndex) Link {
	node, slot := int(i)/6, int(i)%6
	dir := int8(1)
	if slot%2 == 1 {
		dir = -1
	}
	return Link{From: t.CoordOf(node), Dim: Dim(slot / 2), Dir: dir}
}

// RouteIndicesInto appends the dense link indices of the
// dimension-ordered route from a to b onto buf and returns the
// extended slice. It is the allocation-free workhorse of the network
// simulator's route cache.
func (t Torus) RouteIndicesInto(a, b Coord, buf []LinkIndex) []LinkIndex {
	cur := a
	curIdx := t.Index(cur)
	for dim := DimX; dim <= DimZ; dim++ {
		pos, target, size := routeAxis(cur, b, t, dim)
		delta := wrapDelta(pos, target, size)
		dir := int8(1)
		slot := 2 * int(dim)
		if delta < 0 {
			dir = -1
			delta = -delta
			slot++
		}
		for i := 0; i < delta; i++ {
			buf = append(buf, LinkIndex(6*curIdx+slot))
			cur = t.Neighbor(cur, dim, dir)
			curIdx = t.Index(cur)
		}
	}
	return buf
}

// Neighbor returns the coordinate one hop from c in dimension d,
// direction dir (with wraparound).
func (t Torus) Neighbor(c Coord, d Dim, dir int8) Coord {
	switch d {
	case DimX:
		c.X = ((c.X+int(dir))%t.X + t.X) % t.X
	case DimY:
		c.Y = ((c.Y+int(dir))%t.Y + t.Y) % t.Y
	case DimZ:
		c.Z = ((c.Z+int(dir))%t.Z + t.Z) % t.Z
	}
	return c
}

// LinkCount returns the total number of directed links in the torus.
// Rings of length 1 have no links; rings of length 2 have a single
// physical cable per node pair, modeled as two directed links.
func (t Torus) LinkCount() int {
	count := 0
	per := func(size int) int {
		switch {
		case size <= 1:
			return 0
		default:
			return 2 // both directions
		}
	}
	count += t.Nodes() * per(t.X)
	count += t.Nodes() * per(t.Y)
	count += t.Nodes() * per(t.Z)
	return count
}

// Bisection returns the bisection width (number of directed links
// crossing a bisecting plane of the torus along its longest dimension).
func (t Torus) Bisection() int {
	long, area := t.X, t.Y*t.Z
	if t.Y > long {
		long, area = t.Y, t.X*t.Z
	}
	if t.Z > long {
		long, area = t.Z, t.X*t.Y
	}
	if long == 1 {
		return 0
	}
	wrap := 2
	if long == 2 {
		wrap = 1
	}
	return area * 2 * wrap // both directions x both cut planes (wraparound)
}
