// Package torus models the 3D torus interconnect of IBM Blue Gene/L
// and Blue Gene/P systems (paper Section 3.3): node coordinates,
// minimal wraparound hop distances, and the dimension-ordered routes
// used to account per-link traffic in the network simulator.
//
// The model treats each core as a torus endpoint; virtual-node mode
// (multiple cores per node) is represented by folding the intra-node
// "T" dimension into Z, which slightly overestimates intra-node hop
// cost (one cheap hop instead of zero) and is noted in DESIGN.md.
package torus

import (
	"errors"
	"fmt"
)

// Torus describes a 3D torus with the given dimensions.
type Torus struct {
	X, Y, Z int
}

// Coord is the coordinate of a node in the torus.
type Coord struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// ErrBadDims is returned for non-positive torus dimensions.
var ErrBadDims = errors.New("torus: dimensions must be positive")

// New returns a torus with the given dimensions.
func New(x, y, z int) (Torus, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return Torus{}, fmt.Errorf("%w: %dx%dx%d", ErrBadDims, x, y, z)
	}
	return Torus{x, y, z}, nil
}

// Nodes returns the number of nodes in the torus.
func (t Torus) Nodes() int { return t.X * t.Y * t.Z }

// Valid reports whether c is a coordinate inside t.
func (t Torus) Valid(c Coord) bool {
	return c.X >= 0 && c.X < t.X && c.Y >= 0 && c.Y < t.Y && c.Z >= 0 && c.Z < t.Z
}

// Index returns the linear index of c with x varying fastest.
func (t Torus) Index(c Coord) int {
	return c.X + t.X*(c.Y+t.Y*c.Z)
}

// CoordOf returns the coordinate of linear index i (x fastest).
func (t Torus) CoordOf(i int) Coord {
	return Coord{X: i % t.X, Y: (i / t.X) % t.Y, Z: i / (t.X * t.Y)}
}

// wrapDelta returns the signed minimal step count from a to b along a
// dimension of the given size, preferring the positive direction on
// ties.
func wrapDelta(a, b, size int) int {
	d := ((b-a)%size + size) % size
	if d*2 > size {
		return d - size
	}
	return d
}

// dimDist returns the minimal hop count between positions a and b on a
// ring of the given size.
func dimDist(a, b, size int) int {
	d := wrapDelta(a, b, size)
	if d < 0 {
		return -d
	}
	return d
}

// Hops returns the minimal number of network hops between two nodes,
// i.e. the wraparound Manhattan distance.
func (t Torus) Hops(a, b Coord) int {
	return dimDist(a.X, b.X, t.X) + dimDist(a.Y, b.Y, t.Y) + dimDist(a.Z, b.Z, t.Z)
}

// Dim identifies a torus dimension.
type Dim uint8

// The three torus dimensions.
const (
	DimX Dim = iota
	DimY
	DimZ
)

// String implements fmt.Stringer.
func (d Dim) String() string {
	switch d {
	case DimX:
		return "X"
	case DimY:
		return "Y"
	case DimZ:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// Link identifies a directed link: the cable leaving node From in
// dimension Dim towards direction Dir (+1 or -1). Each physical torus
// cable appears as two Links, one per direction, matching the
// independent send/receive channels of Blue Gene hardware.
type Link struct {
	From Coord
	Dim  Dim
	Dir  int8
}

// Route returns the sequence of directed links of the dimension-ordered
// (X, then Y, then Z) minimal route from a to b, the deterministic
// routing used by Blue Gene. An empty route means a == b.
func (t Torus) Route(a, b Coord) []Link {
	n := t.Hops(a, b)
	if n == 0 {
		return nil
	}
	route := make([]Link, 0, n)
	cur := a
	step := func(pos, target, size int, d Dim, set func(*Coord, int)) {
		delta := wrapDelta(pos, target, size)
		dir := int8(1)
		if delta < 0 {
			dir = -1
			delta = -delta
		}
		for i := 0; i < delta; i++ {
			route = append(route, Link{From: cur, Dim: d, Dir: dir})
			next := ((pos+int(dir))%size + size) % size
			set(&cur, next)
			pos = next
		}
	}
	step(cur.X, b.X, t.X, DimX, func(c *Coord, v int) { c.X = v })
	step(cur.Y, b.Y, t.Y, DimY, func(c *Coord, v int) { c.Y = v })
	step(cur.Z, b.Z, t.Z, DimZ, func(c *Coord, v int) { c.Z = v })
	return route
}

// Neighbor returns the coordinate one hop from c in dimension d,
// direction dir (with wraparound).
func (t Torus) Neighbor(c Coord, d Dim, dir int8) Coord {
	switch d {
	case DimX:
		c.X = ((c.X+int(dir))%t.X + t.X) % t.X
	case DimY:
		c.Y = ((c.Y+int(dir))%t.Y + t.Y) % t.Y
	case DimZ:
		c.Z = ((c.Z+int(dir))%t.Z + t.Z) % t.Z
	}
	return c
}

// LinkCount returns the total number of directed links in the torus.
// Rings of length 1 have no links; rings of length 2 have a single
// physical cable per node pair, modeled as two directed links.
func (t Torus) LinkCount() int {
	count := 0
	per := func(size int) int {
		switch {
		case size <= 1:
			return 0
		default:
			return 2 // both directions
		}
	}
	count += t.Nodes() * per(t.X)
	count += t.Nodes() * per(t.Y)
	count += t.Nodes() * per(t.Z)
	return count
}

// Bisection returns the bisection width (number of directed links
// crossing a bisecting plane of the torus along its longest dimension).
func (t Torus) Bisection() int {
	long, area := t.X, t.Y*t.Z
	if t.Y > long {
		long, area = t.Y, t.X*t.Z
	}
	if t.Z > long {
		long, area = t.Z, t.X*t.Y
	}
	if long == 1 {
		return 0
	}
	wrap := 2
	if long == 2 {
		wrap = 1
	}
	return area * 2 * wrap // both directions x both cut planes (wraparound)
}
