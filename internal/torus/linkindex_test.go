package torus

import (
	"math/rand"
	"testing"
)

// TestLinkIndexRoundTrip checks LinkIndexOf and LinkAt are inverses
// over every slot of several torus shapes.
func TestLinkIndexRoundTrip(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 2, 2}, {4, 2, 4}, {8, 8, 16}, {3, 5, 7}} {
		tor, err := New(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := tor.LinkIndexCount(), 6*tor.Nodes(); got != want {
			t.Fatalf("%v: LinkIndexCount = %d, want %d", dims, got, want)
		}
		for i := 0; i < tor.LinkIndexCount(); i++ {
			l := tor.LinkAt(LinkIndex(i))
			if back := tor.LinkIndexOf(l); back != LinkIndex(i) {
				t.Fatalf("%v: LinkIndexOf(LinkAt(%d)) = %d", dims, i, back)
			}
		}
	}
}

// TestRouteVariantsAgree checks that Route, RouteInto, RouteFunc and
// RouteIndicesInto produce the same link sequence for random pairs, and
// that the route length always equals the hop distance.
func TestRouteVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 2, 2}, {4, 2, 4}, {8, 8, 8}, {3, 5, 7}, {1, 6, 2}} {
		tor, err := New(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		linkBuf := make([]Link, 0, 32)
		idxBuf := make([]LinkIndex, 0, 32)
		for trial := 0; trial < 200; trial++ {
			a := Coord{rng.Intn(tor.X), rng.Intn(tor.Y), rng.Intn(tor.Z)}
			b := Coord{rng.Intn(tor.X), rng.Intn(tor.Y), rng.Intn(tor.Z)}
			route := tor.Route(a, b)
			if len(route) != tor.Hops(a, b) {
				t.Fatalf("%v: Route(%v,%v) has %d links, Hops = %d", dims, a, b, len(route), tor.Hops(a, b))
			}
			into := tor.RouteInto(a, b, linkBuf[:0])
			if len(into) != len(route) {
				t.Fatalf("%v: RouteInto length %d != Route length %d", dims, len(into), len(route))
			}
			var viaFunc []Link
			tor.RouteFunc(a, b, func(l Link) { viaFunc = append(viaFunc, l) })
			idx := tor.RouteIndicesInto(a, b, idxBuf[:0])
			if len(idx) != len(route) {
				t.Fatalf("%v: RouteIndicesInto length %d != Route length %d", dims, len(idx), len(route))
			}
			for i := range route {
				if into[i] != route[i] {
					t.Fatalf("%v: RouteInto[%d] = %v, Route[%d] = %v", dims, i, into[i], i, route[i])
				}
				if viaFunc[i] != route[i] {
					t.Fatalf("%v: RouteFunc[%d] = %v, Route[%d] = %v", dims, i, viaFunc[i], i, route[i])
				}
				if got := tor.LinkAt(idx[i]); got != route[i] {
					t.Fatalf("%v: LinkAt(RouteIndices[%d]) = %v, Route[%d] = %v", dims, i, got, i, route[i])
				}
			}
		}
	}
}

// TestRouteSelfEmpty preserves the original contract: a == b routes are
// empty, and Route returns nil.
func TestRouteSelfEmpty(t *testing.T) {
	tor, _ := New(4, 4, 4)
	c := Coord{1, 2, 3}
	if r := tor.Route(c, c); r != nil {
		t.Fatalf("Route(c,c) = %v, want nil", r)
	}
	if r := tor.RouteInto(c, c, nil); len(r) != 0 {
		t.Fatalf("RouteInto(c,c,nil) = %v, want empty", r)
	}
}
