package machine

import (
	"testing"

	"nestwrf/internal/mapping"
)

func TestMachineBasics(t *testing.T) {
	bgl, bgp := BGL(), BGP()
	if bgl.CoresPerNode != 2 || bgp.CoresPerNode != 4 {
		t.Error("cores per node wrong")
	}
	if err := bgl.Net.Validate(); err != nil {
		t.Errorf("BGL net params: %v", err)
	}
	if err := bgp.Net.Validate(); err != nil {
		t.Errorf("BGP net params: %v", err)
	}
	if err := bgl.IO.Validate(); err != nil {
		t.Errorf("BGL IO params: %v", err)
	}
	if err := bgp.IO.Validate(); err != nil {
		t.Errorf("BGP IO params: %v", err)
	}
	// BG/P is the faster machine per core.
	if bgp.PointCost >= bgl.PointCost {
		t.Error("BGP should have lower point cost than BGL")
	}
	if bgp.Net.Bandwidth <= bgl.Net.Bandwidth {
		t.Error("BGP should have higher link bandwidth")
	}
}

func TestRanksPerNode(t *testing.T) {
	bgl, bgp := BGL(), BGP()
	if bgl.RanksPerNode(CO) != 1 || bgl.RanksPerNode(VN) != 2 {
		t.Error("BGL modes wrong")
	}
	if bgp.RanksPerNode(SMP) != 1 || bgp.RanksPerNode(Dual) != 2 || bgp.RanksPerNode(VN) != 4 {
		t.Error("BGP modes wrong")
	}
	// "1024 cores (512 nodes in VN mode) on BG/L".
	if got := bgl.NodesFor(1024, VN); got != 512 {
		t.Errorf("BGL nodes for 1024 VN ranks = %d, want 512", got)
	}
	if got := bgp.NodesFor(4096, VN); got != 1024 {
		t.Errorf("BGP nodes for 4096 VN ranks = %d, want 1024", got)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{CO: "CO", VN: "VN", SMP: "SMP", Dual: "Dual"} {
		if m.String() != want {
			t.Errorf("%v string = %q", m, m.String())
		}
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}

func TestGridForShapes(t *testing.T) {
	cases := map[int][2]int{
		32:   {8, 4}, // the paper's Fig. 5(a) example
		64:   {8, 8},
		512:  {32, 16},
		1024: {32, 32},
		4096: {64, 64},
		8192: {128, 64},
		48:   {8, 6},
	}
	for ranks, want := range cases {
		g, err := GridFor(ranks)
		if err != nil {
			t.Fatalf("GridFor(%d): %v", ranks, err)
		}
		if g.Px != want[0] || g.Py != want[1] {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", ranks, g.Px, g.Py, want[0], want[1])
		}
		if g.Size() != ranks {
			t.Errorf("GridFor(%d) size = %d", ranks, g.Size())
		}
	}
	if _, err := GridFor(0); err == nil {
		t.Error("GridFor(0) should fail")
	}
}

func TestTorusForShapes(t *testing.T) {
	cases := map[int][3]int{
		32:   {4, 4, 2},  // Fig. 5(b)'s torus
		512:  {8, 8, 8},  // one BG/L midplane
		1024: {8, 8, 16}, // one BG/L rack in cores
		4096: {16, 16, 16},
	}
	for ranks, want := range cases {
		tor, err := TorusFor(ranks)
		if err != nil {
			t.Fatalf("TorusFor(%d): %v", ranks, err)
		}
		if tor.X != want[0] || tor.Y != want[1] || tor.Z != want[2] {
			t.Errorf("TorusFor(%d) = %dx%dx%d, want %v", ranks, tor.X, tor.Y, tor.Z, want)
		}
		if tor.Nodes() != ranks {
			t.Errorf("TorusFor(%d) nodes = %d", ranks, tor.Nodes())
		}
	}
}

// Every experiment core count must give a grid that folds onto its
// torus (multi-level mapping feasible) — the paper's experiments use
// only foldable configurations.
func TestAllCoreCountsFoldable(t *testing.T) {
	for _, ranks := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		g, err := GridFor(ranks)
		if err != nil {
			t.Fatalf("GridFor(%d): %v", ranks, err)
		}
		tor, err := TorusFor(ranks)
		if err != nil {
			t.Fatalf("TorusFor(%d): %v", ranks, err)
		}
		m, err := mapping.MultiLevel(g, tor)
		if err != nil {
			t.Fatalf("MultiLevel fold for %d ranks: %v", ranks, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("fold for %d ranks invalid: %v", ranks, err)
		}
	}
}
