// Package machine describes the IBM Blue Gene/L and Blue Gene/P
// systems the paper evaluates on (Section 4.2): core organization,
// execution modes, network parameters, I/O parameters, and the torus
// shapes and virtual process grids used at each core count.
//
// The model treats each core as a torus endpoint (virtual-node mode
// with the intra-node T dimension folded into Z); absolute constants
// are calibrated in internal/model so that the simulated WRF matches
// the paper's anchor numbers in shape.
package machine

import (
	"errors"
	"fmt"
	"math"

	"nestwrf/internal/iosim"
	"nestwrf/internal/netsim"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// Mode is a Blue Gene application execution mode (Section 4.2).
type Mode int

// Execution modes. BG/L supports CO and VN; BG/P supports SMP, Dual
// and VN. All experiments of the paper run in VN mode.
const (
	CO   Mode = iota // coprocessor: 1 compute core per node (BG/L)
	VN               // virtual node: every core runs an MPI rank
	SMP              // 1 process per node, up to 4 threads (BG/P)
	Dual             // 2 processes per node, 2 threads each (BG/P)
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CO:
		return "CO"
	case VN:
		return "VN"
	case SMP:
		return "SMP"
	case Dual:
		return "Dual"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Machine describes one system.
type Machine struct {
	Name         string
	ClockHz      float64
	CoresPerNode int
	Modes        []Mode

	// PointCost is the effective wall time one core spends per grid
	// point per sub-step (dynamics + physics across all vertical
	// levels). Calibrated against the paper's per-iteration times.
	PointCost float64

	// StepOverhead is the fixed per-sub-step runtime cost (time-step
	// bookkeeping, implicit barriers) that bounds strong scaling.
	StepOverhead float64

	// ExchangesPerStep is the number of halo messages each rank sends
	// per neighbour per sub-step. The paper reports 144 total exchanges
	// with the four neighbours per WRF step, i.e. 36 per direction.
	ExchangesPerStep int

	// BytesPerPoint is the halo payload per boundary grid point per
	// exchange message (a slice of the vertical column).
	BytesPerPoint float64

	Net netsim.Params
	IO  iosim.Params
}

// ErrBadCores is returned when a core count cannot be arranged.
var ErrBadCores = errors.New("machine: unsupported core count")

// BGL returns the Blue Gene/L model: 700 MHz PPC440, 2 cores per node,
// 175 MB/s torus links.
func BGL() Machine {
	return Machine{
		Name:             "BlueGene/L",
		ClockHz:          700e6,
		CoresPerNode:     2,
		Modes:            []Mode{CO, VN},
		PointCost:        1.2e-3,
		StepOverhead:     5.0e-3,
		ExchangesPerStep: 36,
		BytesPerPoint:    25e3,
		Net: netsim.Params{
			LatencyPerHop: 9.0e-7,
			Overhead:      8.0e-4,
			Bandwidth:     175e6,
		},
		IO: iosim.Params{
			BaseLatency:         5e-3,
			PerWriterOverhead:   3.5e-4,
			AggregateBandwidth:  1.0e9,
			PerProcessBandwidth: 4e6,
		},
	}
}

// BGP returns the Blue Gene/P model: 850 MHz PPC450, 4 cores per node,
// 425 MB/s torus links, DMA-driven messaging.
func BGP() Machine {
	return Machine{
		Name:             "BlueGene/P",
		ClockHz:          850e6,
		CoresPerNode:     4,
		Modes:            []Mode{SMP, Dual, VN},
		PointCost:        6.8e-4,
		StepOverhead:     2.5e-3,
		ExchangesPerStep: 36,
		BytesPerPoint:    25e3,
		Net: netsim.Params{
			LatencyPerHop: 5.0e-7,
			Overhead:      4.0e-4,
			Bandwidth:     425e6,
		},
		IO: iosim.Params{
			BaseLatency:         5e-3,
			PerWriterOverhead:   3.5e-4,
			AggregateBandwidth:  2.0e9,
			PerProcessBandwidth: 8e6,
		},
	}
}

// RanksPerNode returns the MPI ranks per node in the given mode.
func (m Machine) RanksPerNode(mode Mode) int {
	switch mode {
	case CO, SMP:
		return 1
	case Dual:
		return 2
	default: // VN
		return m.CoresPerNode
	}
}

// GridFor returns the virtual Px × Py process grid WRF would use for
// the given rank count: the divisor pair closest to square, with
// Px >= Py (matching the paper's Fig. 5(a), where 32 ranks form an
// 8x4 grid).
func GridFor(ranks int) (vtopo.Grid, error) {
	if ranks <= 0 {
		return vtopo.Grid{}, fmt.Errorf("%w: %d", ErrBadCores, ranks)
	}
	best := -1
	for d := 1; d*d <= ranks; d++ {
		if ranks%d == 0 {
			best = d
		}
	}
	py := best
	px := ranks / py
	return vtopo.NewGrid(px, py)
}

// TorusFor returns the torus shape (in cores) used for the given rank
// count, chosen so that the process grid of GridFor folds onto it
// (multi-level mapping feasible): Tx divides Px, Ty divides Py, and
// (Px/Tx)*(Py/Ty) = Tz. Stripe factors of 4 are used for large grids,
// yielding the production shapes 8x8x8 (512 cores) and 8x8x16 (1024
// cores, one BG/L rack).
func TorusFor(ranks int) (torus.Torus, error) {
	g, err := GridFor(ranks)
	if err != nil {
		return torus.Torus{}, err
	}
	stripe := func(dim int) int {
		switch {
		case dim >= 32 && dim%4 == 0:
			return 4
		case dim >= 8 && dim%2 == 0:
			return 2
		default:
			return 1
		}
	}
	a, b := stripe(g.Px), stripe(g.Py)
	return torus.New(g.Px/a, g.Py/b, a*b)
}

// NodesFor returns the number of physical nodes hosting the given
// number of ranks in the given mode.
func (m Machine) NodesFor(ranks int, mode Mode) int {
	per := m.RanksPerNode(mode)
	return int(math.Ceil(float64(ranks) / float64(per)))
}
