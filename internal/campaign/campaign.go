// Package campaign simulates multi-day forecast campaigns in which the
// set of tracked regions of interest changes over time — depressions
// form, intensify and dissipate, each spawning or retiring a
// high-resolution nest ("multiple simulations need to be spawned within
// the main parent simulation", Section 1 of the paper). Each phase of a
// campaign re-plans the processor allocation; the concurrent strategy
// additionally pays a modeled redistribution cost when partitions
// change, so the comparison against the default strategy stays honest.
package campaign

import (
	"errors"
	"fmt"

	"nestwrf/internal/alloc"
	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
)

// Phase is one segment of a campaign: a domain configuration that stays
// active for a number of parent iterations.
type Phase struct {
	Steps  int
	Config *nest.Domain
}

// PhaseResult reports one phase's per-iteration times under both
// strategies.
type PhaseResult struct {
	Name        string
	Steps       int
	Nests       int
	DefaultIter float64
	ConcIter    float64
	// Redistribute is the one-off cost the concurrent strategy paid at
	// the phase boundary to move nest state onto the new partitions.
	Redistribute float64
}

// Result aggregates a whole campaign.
type Result struct {
	Phases []PhaseResult
	// TotalDefault and TotalConcurrent are the campaign wall times
	// (virtual seconds), including redistribution for the concurrent
	// strategy.
	TotalDefault    float64
	TotalConcurrent float64
	// Replans counts partition changes.
	Replans int
}

// ImprovementPct returns the campaign-level gain of the concurrent
// strategy.
func (r Result) ImprovementPct() float64 {
	if r.TotalDefault == 0 {
		return 0
	}
	return 100 * (r.TotalDefault - r.TotalConcurrent) / r.TotalDefault
}

// Errors.
var (
	ErrNoPhases = errors.New("campaign: no phases")
	ErrBadSteps = errors.New("campaign: phase steps must be positive")
	// ErrBadOptions reports options the redistribution model cannot
	// work with: a zero rank count or torus bandwidth would divide the
	// transferred bytes by zero and report +Inf/NaN campaign times.
	ErrBadOptions = errors.New("campaign: bad options")
)

// StateBytesPerPoint is the nest state volume that must move when a
// nest's partition changes (full prognostic state, all levels).
const StateBytesPerPoint = 4500.0

// Runner executes one phase configuration under one set of options.
// Run uses driver.Run; the ensemble engine substitutes a plan-cache-
// backed runner so repeated phase geometries across campaign members
// are simulated once.
type Runner func(cfg *nest.Domain, opt driver.Options) (driver.Result, error)

// Run executes the campaign under both strategies with the given base
// options (Strategy is set per run; everything else is honoured).
func Run(phases []Phase, opt driver.Options) (Result, error) {
	return RunWith(phases, opt, driver.Run)
}

// RunWith is Run with a pluggable phase runner (nil falls back to
// driver.Run).
func RunWith(phases []Phase, opt driver.Options, run Runner) (Result, error) {
	if len(phases) == 0 {
		return Result{}, ErrNoPhases
	}
	if err := opt.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrBadOptions, err)
	}
	if run == nil {
		run = driver.Run
	}
	var res Result
	var prevRects []alloc.Rect // previous partition layout, for change detection
	havePrev := false
	for i, ph := range phases {
		if ph.Steps <= 0 {
			return Result{}, fmt.Errorf("%w: phase %d", ErrBadSteps, i)
		}
		seqOpt := opt
		seqOpt.Strategy = driver.Sequential
		seqOpt.MapKind = driver.MapSequential
		seq, err := run(ph.Config, seqOpt)
		if err != nil {
			return Result{}, fmt.Errorf("phase %d (%s): %w", i, ph.Config.Name, err)
		}
		conOpt := opt
		conOpt.Strategy = driver.Concurrent
		con, err := run(ph.Config, conOpt)
		if err != nil {
			return Result{}, fmt.Errorf("phase %d (%s): %w", i, ph.Config.Name, err)
		}

		// Redistribution: when the partition layout changes, every nest's
		// state crosses the network once. The aggregate transfer is
		// bounded by the machine's per-link bandwidth times the torus
		// bisection-ish capacity; a simple aggregate-bandwidth model
		// (#ranks/4 concurrent links) captures the scale.
		redist := 0.0
		if !havePrev || !rectsEqual(prevRects, con.Rects) {
			if havePrev {
				res.Replans++
				var bytes float64
				for _, c := range ph.Config.Children {
					bytes += float64(c.Points()) * StateBytesPerPoint
				}
				agg := opt.Machine.Net.Bandwidth * float64(opt.Ranks) / 4
				redist = bytes/agg + opt.Machine.Net.Overhead*float64(len(ph.Config.Children))
			}
			prevRects = con.Rects
			havePrev = true
		}

		res.Phases = append(res.Phases, PhaseResult{
			Name:         ph.Config.Name,
			Steps:        ph.Steps,
			Nests:        len(ph.Config.Children),
			DefaultIter:  seq.IterTime,
			ConcIter:     con.IterTime,
			Redistribute: redist,
		})
		res.TotalDefault += float64(ph.Steps) * seq.IterTime
		res.TotalConcurrent += float64(ph.Steps)*con.IterTime + redist
	}
	return res, nil
}

// rectsEqual reports whether two partition layouts are identical
// rect-for-rect. Comparing the slices directly (rather than a
// formatted rendering) keeps layout-change detection exact and
// allocation-free.
func rectsEqual(a, b []alloc.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Season builds a typical typhoon-season storyline on the Pacific
// parent: one depression forms, a second joins, both intensify as a
// third appears, then the system decays back to a single region.
func Season(stepsPerPhase int) []Phase {
	mk := func(name string, sibs [][4]int) *nest.Domain {
		cfg := nest.Root(name, 286, 307)
		for i, s := range sibs {
			cfg.AddChild(fmt.Sprintf("dep%d", i+1), s[0], s[1], 3, s[2], s[3])
		}
		return cfg
	}
	return []Phase{
		{Steps: stepsPerPhase, Config: mk("formation", [][4]int{
			{259, 229, 20, 30},
		})},
		{Steps: stepsPerPhase, Config: mk("pairing", [][4]int{
			{313, 337, 10, 10},
			{259, 229, 150, 160},
		})},
		{Steps: stepsPerPhase, Config: mk("peak", [][4]int{
			{394, 418, 5, 5},
			{313, 337, 150, 10},
			{259, 229, 20, 170},
		})},
		{Steps: stepsPerPhase, Config: mk("landfall", [][4]int{
			{415, 445, 30, 30},
			{232, 256, 170, 170},
		})},
		{Steps: stepsPerPhase, Config: mk("decay", [][4]int{
			{232, 202, 80, 90},
		})},
	}
}
