package campaign

import (
	"errors"
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
)

func opts(t *testing.T) driver.Options {
	t.Helper()
	pred, err := driver.TrainPredictor(machine.BGL())
	if err != nil {
		t.Fatal(err)
	}
	return driver.Options{
		Machine:   machine.BGL(),
		Ranks:     1024,
		MapKind:   driver.MapSequential,
		Alloc:     driver.AllocPredicted,
		Predictor: pred,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, opts(t)); !errors.Is(err, ErrNoPhases) {
		t.Errorf("empty: %v", err)
	}
	cfg := nest.Root("p", 286, 307)
	cfg.AddChild("c", 200, 200, 3, 10, 10)
	if _, err := Run([]Phase{{Steps: 0, Config: cfg}}, opts(t)); !errors.Is(err, ErrBadSteps) {
		t.Errorf("zero steps: %v", err)
	}
	bad := nest.Root("bad", -1, 10)
	if _, err := Run([]Phase{{Steps: 1, Config: bad}}, opts(t)); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestSeasonCampaign(t *testing.T) {
	phases := Season(100)
	if len(phases) != 5 {
		t.Fatalf("season has %d phases", len(phases))
	}
	for _, ph := range phases {
		if err := ph.Config.Validate(); err != nil {
			t.Fatalf("%s: %v", ph.Config.Name, err)
		}
	}
	res, err := Run(phases, opts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("results for %d phases", len(res.Phases))
	}
	// The nest sets differ each phase, so every boundary replans.
	if res.Replans != 4 {
		t.Errorf("replans = %d, want 4", res.Replans)
	}
	// The concurrent strategy must win overall despite redistribution.
	if res.TotalConcurrent >= res.TotalDefault {
		t.Errorf("campaign totals: concurrent %.1f should beat default %.1f",
			res.TotalConcurrent, res.TotalDefault)
	}
	imp := res.ImprovementPct()
	t.Logf("campaign improvement: %.1f%% over %d replans", imp, res.Replans)
	if imp < 5 || imp > 50 {
		t.Errorf("campaign improvement %.1f%% implausible", imp)
	}
	// Multi-nest phases gain more than single-nest ones.
	single := res.Phases[0]
	multi := res.Phases[2]
	gainSingle := 100 * (single.DefaultIter - single.ConcIter) / single.DefaultIter
	gainMulti := 100 * (multi.DefaultIter - multi.ConcIter) / multi.DefaultIter
	if gainMulti <= gainSingle {
		t.Errorf("3-nest phase gain %.1f%% should exceed 1-nest %.1f%%", gainMulti, gainSingle)
	}
}

// Redistribution must be charged only when the partition layout
// actually changes.
func TestNoRedistributionForStablePhases(t *testing.T) {
	cfg := nest.Root("stable", 286, 307)
	cfg.AddChild("a", 300, 300, 3, 10, 10)
	cfg.AddChild("b", 250, 250, 3, 150, 150)
	phases := []Phase{
		{Steps: 10, Config: cfg},
		{Steps: 10, Config: cfg},
		{Steps: 10, Config: cfg},
	}
	res, err := Run(phases, opts(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 {
		t.Errorf("stable campaign replanned %d times", res.Replans)
	}
	for i, ph := range res.Phases {
		if ph.Redistribute != 0 {
			t.Errorf("phase %d charged redistribution %v", i, ph.Redistribute)
		}
	}
}

// Redistribution costs are small against a phase's integration time
// (one state move vs hundreds of iterations) but strictly positive on
// change.
func TestRedistributionMagnitude(t *testing.T) {
	res, err := Run(Season(100), opts(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range res.Phases {
		if i == 0 {
			continue
		}
		if ph.Redistribute <= 0 {
			t.Errorf("phase %d: no redistribution charged", i)
		}
		phaseTime := float64(ph.Steps) * ph.ConcIter
		if ph.Redistribute > phaseTime/10 {
			t.Errorf("phase %d: redistribution %v implausibly large vs phase %v",
				i, ph.Redistribute, phaseTime)
		}
	}
}

func TestImprovementPctZeroGuard(t *testing.T) {
	if (Result{}).ImprovementPct() != 0 {
		t.Error("zero totals should give 0")
	}
}

// Options whose redistribution model would divide by zero must be
// rejected up front with a typed error instead of reporting +Inf/NaN
// campaign times.
func TestInvalidOptionsRejected(t *testing.T) {
	cfg := nest.Root("p", 286, 307)
	cfg.AddChild("c", 200, 200, 3, 10, 10)
	phases := []Phase{{Steps: 1, Config: cfg}, {Steps: 1, Config: cfg}}

	zeroRanks := opts(t)
	zeroRanks.Ranks = 0
	if _, err := Run(phases, zeroRanks); !errors.Is(err, ErrBadOptions) {
		t.Errorf("zero ranks: %v", err)
	} else if !errors.Is(err, driver.ErrBadRanks) {
		t.Errorf("zero ranks should carry the driver cause: %v", err)
	}

	zeroBW := opts(t)
	zeroBW.Machine.Net.Bandwidth = 0
	if _, err := Run(phases, zeroBW); !errors.Is(err, ErrBadOptions) {
		t.Errorf("zero bandwidth: %v", err)
	} else if !errors.Is(err, driver.ErrBadMachine) {
		t.Errorf("zero bandwidth should carry the driver cause: %v", err)
	}
}

// An unchanged layout must not replan even when the comparison crosses
// distinct (but geometrically equal) Rect slices.
func TestRectsEqual(t *testing.T) {
	a := []alloc.Rect{{X: 0, Y: 0, W: 16, H: 32}, {X: 16, Y: 0, W: 16, H: 32}}
	b := []alloc.Rect{{X: 0, Y: 0, W: 16, H: 32}, {X: 16, Y: 0, W: 16, H: 32}}
	if !rectsEqual(a, b) {
		t.Error("equal layouts compared unequal")
	}
	if rectsEqual(a, b[:1]) {
		t.Error("length mismatch compared equal")
	}
	c := append([]alloc.Rect(nil), b...)
	c[1].X = 17
	if rectsEqual(a, c) {
		t.Error("shifted rect compared equal")
	}
	if !rectsEqual(nil, nil) {
		t.Error("nil layouts should compare equal")
	}
}

// RunWith must feed every phase run through the supplied runner and
// reproduce Run's output when the runner is driver.Run itself.
func TestRunWithCustomRunner(t *testing.T) {
	phases := Season(10)
	base, err := Run(phases, opts(t))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res, err := RunWith(phases, opts(t), func(cfg *nest.Domain, opt driver.Options) (driver.Result, error) {
		calls++
		return driver.Run(cfg, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(phases); calls != want {
		t.Errorf("runner called %d times, want %d", calls, want)
	}
	if res.TotalDefault != base.TotalDefault || res.TotalConcurrent != base.TotalConcurrent ||
		res.Replans != base.Replans {
		t.Errorf("RunWith diverged from Run: %+v vs %+v", res, base)
	}
}
