// Package workload generates the simulation configurations of the
// paper's evaluation (Section 4.1): randomly generated Pacific-Ocean
// typhoon-tracking configurations (85 configs, 2-4 siblings, nest sizes
// 94x124 to 415x445, aspect ratio 0.5-1.5, 24 km parent with 8 km
// nests) and fixed South-East-Asia style configurations with up to two
// nesting levels, plus the named fixed configurations behind individual
// tables and figures.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"nestwrf/internal/nest"
)

// Pacific region parameters (Section 4.1.2).
const (
	PacificParentNX = 286
	PacificParentNY = 307
	PacificRatio    = 3 // 24 km parent, 8 km nests
	MinNestPoints   = 94 * 124
	MaxNestPoints   = 415 * 445
	MinAspect       = 0.5
	MaxAspect       = 1.5
)

// RandomSibling draws a nest shape uniformly from the paper's size and
// aspect ranges.
func RandomSibling(rng *rand.Rand) (nx, ny int) {
	points := MinNestPoints + rng.Float64()*(MaxNestPoints-MinNestPoints)
	aspect := MinAspect + rng.Float64()*(MaxAspect-MinAspect)
	nx = int(math.Round(math.Sqrt(points * aspect)))
	ny = int(math.Round(float64(nx) / aspect))
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return nx, ny
}

// RandomPacific builds a Pacific configuration with the given number of
// sibling nests at the first level, placed at non-overlapping positions
// when possible (overlap is tolerated after repeated failures, as
// overlapping regions of interest are physically meaningful).
func RandomPacific(rng *rand.Rand, siblings int) *nest.Domain {
	root := nest.Root("pacific", PacificParentNX, PacificParentNY)
	type box struct{ x, y, w, h int }
	var placed []box
	for s := 0; s < siblings; s++ {
		nx, ny := RandomSibling(rng)
		fw := ceilDiv(nx, PacificRatio)
		fh := ceilDiv(ny, PacificRatio)
		if fw > PacificParentNX {
			fw = PacificParentNX
			nx = fw * PacificRatio
		}
		if fh > PacificParentNY {
			fh = PacificParentNY
			ny = fh * PacificRatio
		}
		ox, oy := 0, 0
		for attempt := 0; attempt < 50; attempt++ {
			ox = rng.Intn(PacificParentNX - fw + 1)
			oy = rng.Intn(PacificParentNY - fh + 1)
			overlaps := false
			for _, b := range placed {
				if ox < b.x+b.w && b.x < ox+fw && oy < b.y+b.h && b.y < oy+fh {
					overlaps = true
					break
				}
			}
			if !overlaps {
				break
			}
		}
		placed = append(placed, box{ox, oy, fw, fh})
		root.AddChild(fmt.Sprintf("nest%d", s+1), nx, ny, PacificRatio, ox, oy)
	}
	return root
}

// PacificSuite generates the paper's 85 random Pacific configurations
// (Section 4.1.2) with 2-4 siblings each, deterministically from the
// seed.
func PacificSuite(seed int64, n int) []*nest.Domain {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*nest.Domain, n)
	for i := range out {
		out[i] = RandomPacific(rng, 2+rng.Intn(3))
	}
	return out
}

// SEAsiaSuite returns eight fixed South-East-Asia style configurations
// (Section 4.1.1): a 4.5 km parent with 1.5 km innermost nests over the
// major business centres; three of the configurations nest at the
// second level.
func SEAsiaSuite() []*nest.Domain {
	mk := func(name string, build func(*nest.Domain)) *nest.Domain {
		root := nest.Root(name, 340, 360)
		build(root)
		return root
	}
	return []*nest.Domain{
		mk("sea-2sib", func(r *nest.Domain) {
			r.AddChild("singapore", 220, 180, 3, 20, 30)
			r.AddChild("kuala-lumpur", 200, 240, 3, 140, 120)
		}),
		mk("sea-3sib", func(r *nest.Domain) {
			r.AddChild("singapore", 220, 180, 3, 10, 20)
			r.AddChild("bangkok", 260, 220, 3, 120, 110)
			r.AddChild("manila", 180, 240, 3, 220, 230)
		}),
		mk("sea-4sib", func(r *nest.Domain) {
			r.AddChild("singapore", 220, 180, 3, 5, 10)
			r.AddChild("bangkok", 260, 220, 3, 100, 100)
			r.AddChild("manila", 180, 240, 3, 210, 200)
			r.AddChild("hanoi", 200, 200, 3, 20, 250)
		}),
		mk("sea-2sib-wide", func(r *nest.Domain) {
			r.AddChild("gulf", 380, 260, 3, 30, 40)
			r.AddChild("borneo", 300, 330, 3, 180, 180)
		}),
		mk("sea-3sib-mixed", func(r *nest.Domain) {
			r.AddChild("jakarta", 320, 240, 3, 10, 10)
			r.AddChild("saigon", 240, 260, 3, 150, 120)
			r.AddChild("cebu", 200, 180, 3, 250, 250)
		}),
		// Two-level configurations: siblings at the second level.
		mk("sea-l2-pair", func(r *nest.Domain) {
			mid := r.AddChild("peninsula", 600, 540, 3, 60, 80)
			mid.AddChild("kl-metro", 280, 240, 3, 40, 50)
			mid.AddChild("sg-metro", 260, 220, 3, 320, 280)
		}),
		mk("sea-l2-triple", func(r *nest.Domain) {
			mid := r.AddChild("indochina", 660, 600, 3, 40, 60)
			mid.AddChild("bangkok-metro", 260, 220, 3, 20, 30)
			mid.AddChild("phnom-penh", 220, 200, 3, 300, 120)
			mid.AddChild("saigon-metro", 240, 260, 3, 420, 300)
		}),
		mk("sea-l2-deep", func(r *nest.Domain) {
			mid := r.AddChild("malaya", 540, 600, 3, 80, 40)
			mid.AddChild("west-coast", 240, 280, 3, 30, 60)
			mid.AddChild("east-coast", 220, 260, 3, 280, 300)
		}),
	}
}

// Table2Config returns the 4-sibling configuration of Table 2 / Fig. 9:
// siblings 394x418, 232x202, 232x256 and 313x337 on the Pacific parent.
func Table2Config() *nest.Domain {
	root := nest.Root("table2", PacificParentNX, PacificParentNY)
	root.AddChild("sibling1", 394, 418, PacificRatio, 5, 5)
	root.AddChild("sibling2", 232, 202, PacificRatio, 150, 10)
	root.AddChild("sibling3", 232, 256, PacificRatio, 10, 160)
	root.AddChild("sibling4", 313, 337, PacificRatio, 140, 150)
	return root
}

// Fig10Config returns the 3-large-sibling configuration of Fig. 10:
// 586x643, 856x919 and 925x850. The parent is enlarged so the large
// footprints fit.
func Fig10Config() *nest.Domain {
	root := nest.Root("fig10", 640, 660)
	root.AddChild("large1", 586, 643, PacificRatio, 10, 10)
	root.AddChild("large2", 856, 919, PacificRatio, 230, 10)
	root.AddChild("large3", 925, 850, PacificRatio, 10, 330)
	return root
}

// Fig15Config returns the two-sibling 259x229 configuration of the
// scalability study of Fig. 15.
func Fig15Config() *nest.Domain {
	root := nest.Root("fig15", PacificParentNX, PacificParentNY)
	root.AddChild("sibling1", 259, 229, PacificRatio, 10, 20)
	root.AddChild("sibling2", 259, 229, PacificRatio, 150, 180)
	return root
}

// Table3Configs returns three 3-sibling configuration families keyed by
// their maximum nest size as in Table 3: 205x223, 394x418 and 925x820.
func Table3Configs() map[string]*nest.Domain {
	small := nest.Root("table3-small", PacificParentNX, PacificParentNY)
	small.AddChild("s1", 205, 223, PacificRatio, 10, 10)
	small.AddChild("s2", 178, 202, PacificRatio, 120, 30)
	small.AddChild("s3", 190, 210, PacificRatio, 60, 150)

	mid := nest.Root("table3-mid", PacificParentNX, PacificParentNY)
	mid.AddChild("m1", 394, 418, PacificRatio, 5, 5)
	mid.AddChild("m2", 320, 340, PacificRatio, 150, 20)
	mid.AddChild("m3", 350, 300, PacificRatio, 40, 160)

	large := nest.Root("table3-large", 640, 660)
	large.AddChild("l1", 925, 820, PacificRatio, 10, 10)
	large.AddChild("l2", 780, 840, PacificRatio, 320, 10)
	large.AddChild("l3", 820, 800, PacificRatio, 10, 300)

	return map[string]*nest.Domain{
		"205x223": small,
		"394x418": mid,
		"925x820": large,
	}
}

// Fig2Config returns the Fig. 2 scalability configuration: the Pacific
// parent with a single 415x445 nest.
func Fig2Config() *nest.Domain {
	root := nest.Root("fig2", PacificParentNX, PacificParentNY)
	root.AddChild("nest", 415, 445, PacificRatio, 50, 50)
	return root
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
