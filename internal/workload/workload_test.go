package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomSiblingRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		nx, ny := RandomSibling(rng)
		points := nx * ny
		aspect := float64(nx) / float64(ny)
		// Rounding can push slightly beyond the nominal range.
		if float64(points) < MinNestPoints*0.9 || float64(points) > MaxNestPoints*1.1 {
			t.Fatalf("points %d outside range", points)
		}
		if aspect < MinAspect*0.85 || aspect > MaxAspect*1.15 {
			t.Fatalf("aspect %v outside range", aspect)
		}
	}
}

func TestRandomPacificValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		k := 2 + rng.Intn(3)
		cfg := RandomPacific(rng, k)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if len(cfg.Children) != k {
			t.Fatalf("config %d: %d siblings, want %d", i, len(cfg.Children), k)
		}
		if cfg.NX != PacificParentNX || cfg.NY != PacificParentNY {
			t.Fatalf("config %d: parent %dx%d", i, cfg.NX, cfg.NY)
		}
	}
}

func TestPacificSuiteDeterministic(t *testing.T) {
	a := PacificSuite(123, 85)
	b := PacificSuite(123, 85)
	if len(a) != 85 || len(b) != 85 {
		t.Fatal("suite size wrong")
	}
	for i := range a {
		if a[i].Children[0].NX != b[i].Children[0].NX {
			t.Fatalf("config %d differs between equal seeds", i)
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}
	c := PacificSuite(124, 85)
	same := true
	for i := range a {
		if a[i].Children[0].NX != c[i].Children[0].NX ||
			a[i].Children[0].NY != c[i].Children[0].NY {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical suites")
	}
}

func TestSEAsiaSuite(t *testing.T) {
	suite := SEAsiaSuite()
	if len(suite) != 8 {
		t.Fatalf("SE-Asia suite has %d configs, want 8 as in the paper", len(suite))
	}
	twoLevel := 0
	for _, cfg := range suite {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if cfg.Depth() == 2 {
			twoLevel++
		}
	}
	if twoLevel != 3 {
		t.Errorf("%d two-level configs, want 3 ('Three configurations had sibling domains at the second level')", twoLevel)
	}
}

func TestNamedConfigs(t *testing.T) {
	t2 := Table2Config()
	if err := t2.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(t2.Children) != 4 {
		t.Fatalf("Table 2 config has %d siblings", len(t2.Children))
	}
	if t2.Children[0].NX != 394 || t2.Children[0].NY != 418 {
		t.Error("Table 2 sibling 1 dims wrong")
	}

	f10 := Fig10Config()
	if err := f10.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f10.Children) != 3 {
		t.Fatal("Fig 10 should have 3 siblings")
	}

	f15 := Fig15Config()
	if err := f15.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range f15.Children {
		if c.NX != 259 || c.NY != 229 {
			t.Errorf("Fig 15 sibling = %dx%d, want 259x229", c.NX, c.NY)
		}
	}

	f2 := Fig2Config()
	if err := f2.Validate(); err != nil {
		t.Fatal(err)
	}
	if f2.Children[0].NX != 415 {
		t.Error("Fig 2 nest dims wrong")
	}

	t3 := Table3Configs()
	if len(t3) != 3 {
		t.Fatalf("Table 3 has %d families", len(t3))
	}
	for name, cfg := range t3 {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cfg.Children) != 3 {
			t.Errorf("%s: %d siblings, want 3", name, len(cfg.Children))
		}
	}
	// Family keys must reflect the actual maximum sibling.
	if t3["925x820"].Children[0].NX != 925 {
		t.Error("large family should lead with the 925x820 nest")
	}
}

// Siblings of random configs should rarely overlap (placement retries).
func TestRandomPlacementMostlyDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	overlapping, total := 0, 0
	for i := 0; i < 50; i++ {
		cfg := RandomPacific(rng, 2)
		a, b := cfg.Children[0], cfg.Children[1]
		ax2 := a.OffX + a.FootprintX()
		ay2 := a.OffY + a.FootprintY()
		bx2 := b.OffX + b.FootprintX()
		by2 := b.OffY + b.FootprintY()
		if a.OffX < bx2 && b.OffX < ax2 && a.OffY < by2 && b.OffY < ay2 {
			overlapping++
		}
		total++
	}
	if overlapping > total/2 {
		t.Errorf("%d/%d configs have overlapping siblings", overlapping, total)
	}
}

func TestAspectPointsDistribution(t *testing.T) {
	// Statistical sanity: mean aspect near 1.0, mean points near middle.
	rng := rand.New(rand.NewSource(11))
	var sumA, sumP float64
	n := 2000
	for i := 0; i < n; i++ {
		nx, ny := RandomSibling(rng)
		sumA += float64(nx) / float64(ny)
		sumP += float64(nx * ny)
	}
	meanA, meanP := sumA/float64(n), sumP/float64(n)
	if math.Abs(meanA-1.0) > 0.1 {
		t.Errorf("mean aspect %v, want ~1.0", meanA)
	}
	mid := (MinNestPoints + MaxNestPoints) / 2.0
	if math.Abs(meanP-mid)/mid > 0.1 {
		t.Errorf("mean points %v, want ~%v", meanP, mid)
	}
}
