// Package torus5 implements the paper's future-work item: mapping the
// 2D virtual process topologies of nested weather simulations onto the
// 5D torus of IBM Blue Gene/Q ("In future, we plan to ... develop novel
// schemes for the 5D torus topology of Blue Gene/Q system",
// Section 6).
//
// The multi-level fold of Section 3.3.2 generalizes: assign a subset of
// the five torus dimensions to the grid's x extent and the rest to y,
// and expand each grid coordinate in *reflected mixed-radix* digits
// (the boustrophedon fold applied recursively). Consecutive values then
// differ by one step in exactly one torus dimension, so every
// neighbouring rank pair of the parent domain — and of every sibling
// partition — is exactly one hop apart.
package torus5

import (
	"errors"
	"fmt"

	"nestwrf/internal/vtopo"
)

// Torus is a 5D torus; unused trailing dimensions may be 1.
type Torus struct {
	Dims [5]int
}

// Coord is a 5D torus coordinate.
type Coord [5]int

// New returns a 5D torus with the given dimensions.
func New(a, b, c, d, e int) (Torus, error) {
	t := Torus{Dims: [5]int{a, b, c, d, e}}
	for _, d := range t.Dims {
		if d <= 0 {
			return Torus{}, fmt.Errorf("torus5: dimensions must be positive: %v", t.Dims)
		}
	}
	return t, nil
}

// Nodes returns the number of nodes.
func (t Torus) Nodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Valid reports whether c lies inside t.
func (t Torus) Valid(c Coord) bool {
	for i, d := range t.Dims {
		if c[i] < 0 || c[i] >= d {
			return false
		}
	}
	return true
}

// Hops returns the wraparound Manhattan distance between two nodes.
func (t Torus) Hops(a, b Coord) int {
	total := 0
	for i, d := range t.Dims {
		delta := a[i] - b[i]
		if delta < 0 {
			delta = -delta
		}
		if wrap := d - delta; wrap < delta {
			delta = wrap
		}
		total += delta
	}
	return total
}

// Index returns the linear index of c with dimension 0 varying fastest.
func (t Torus) Index(c Coord) int {
	idx, stride := 0, 1
	for i, d := range t.Dims {
		idx += c[i] * stride
		stride *= d
	}
	return idx
}

// CoordOf returns the coordinate of linear index i.
func (t Torus) CoordOf(i int) Coord {
	var c Coord
	for k, d := range t.Dims {
		c[k] = i % d
		i /= d
	}
	return c
}

// Mapping assigns ranks of a 2D grid to 5D torus nodes.
type Mapping struct {
	Grid   vtopo.Grid
	Torus  Torus
	Name   string
	nodeOf []Coord
}

// NodeOf returns the torus coordinate of rank r.
func (m *Mapping) NodeOf(r int) Coord { return m.nodeOf[r] }

// Hops returns the torus distance between two ranks.
func (m *Mapping) Hops(a, b int) int { return m.Torus.Hops(m.nodeOf[a], m.nodeOf[b]) }

// Validate checks bijectivity.
func (m *Mapping) Validate() error {
	if len(m.nodeOf) != m.Grid.Size() {
		return fmt.Errorf("torus5: mapping %q has %d entries for %d ranks", m.Name, len(m.nodeOf), m.Grid.Size())
	}
	seen := make(map[Coord]int, len(m.nodeOf))
	for r, c := range m.nodeOf {
		if !m.Torus.Valid(c) {
			return fmt.Errorf("torus5: rank %d mapped to invalid %v", r, c)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("torus5: ranks %d and %d both at %v", prev, r, c)
		}
		seen[c] = r
	}
	return nil
}

// AvgHops returns the mean hop distance over rank pairs.
func AvgHops(m *Mapping, pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	total := 0
	for _, p := range pairs {
		total += m.Hops(p[0], p[1])
	}
	return float64(total) / float64(len(pairs))
}

// MaxHops returns the maximum hop distance over rank pairs.
func MaxHops(m *Mapping, pairs [][2]int) int {
	max := 0
	for _, p := range pairs {
		if h := m.Hops(p[0], p[1]); h > max {
			max = h
		}
	}
	return max
}

// Errors.
var (
	ErrSizeMismatch = errors.New("torus5: grid size != torus node count")
	ErrNoSplit      = errors.New("torus5: no dimension split matches the grid extents")
)

// Oblivious places ranks in increasing order on nodes in linear
// (dimension-0 fastest) order, the 5D analogue of Fig. 5(b).
func Oblivious(g vtopo.Grid, t Torus) (*Mapping, error) {
	if g.Size() != t.Nodes() {
		return nil, fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, g.Size(), t.Nodes())
	}
	m := &Mapping{Grid: g, Torus: t, Name: "oblivious", nodeOf: make([]Coord, g.Size())}
	for r := range m.nodeOf {
		m.nodeOf[r] = t.CoordOf(r)
	}
	return m, nil
}

// SplitFor finds a partition of the five torus dimensions into an
// x-subset whose sizes multiply to g.Px and a y-subset multiplying to
// g.Py. It returns the x-subset as dimension indices (the remaining
// dimensions serve y).
func SplitFor(g vtopo.Grid, t Torus) ([]int, error) {
	if g.Size() != t.Nodes() {
		return nil, fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, g.Size(), t.Nodes())
	}
	for mask := 0; mask < 1<<5; mask++ {
		px, py := 1, 1
		for i, d := range t.Dims {
			if mask&(1<<i) != 0 {
				px *= d
			} else {
				py *= d
			}
		}
		if px == g.Px && py == g.Py {
			var xdims []int
			for i := 0; i < 5; i++ {
				if mask&(1<<i) != 0 {
					xdims = append(xdims, i)
				}
			}
			return xdims, nil
		}
	}
	return nil, fmt.Errorf("%w: grid %dx%d on torus %v", ErrNoSplit, g.Px, g.Py, t.Dims)
}

// Fold is the generalized multi-level mapping: grid x is expanded in
// reflected mixed-radix digits over the xdims dimensions (fastest
// first) and grid y over the remaining dimensions. Every grid-neighbour
// pair maps exactly one hop apart.
func Fold(g vtopo.Grid, t Torus, xdims []int) (*Mapping, error) {
	if g.Size() != t.Nodes() {
		return nil, fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, g.Size(), t.Nodes())
	}
	inX := map[int]bool{}
	px := 1
	for _, i := range xdims {
		if i < 0 || i >= 5 || inX[i] {
			return nil, fmt.Errorf("torus5: bad x dimension index %d", i)
		}
		inX[i] = true
		px *= t.Dims[i]
	}
	var ydims []int
	py := 1
	for i := 0; i < 5; i++ {
		if !inX[i] {
			ydims = append(ydims, i)
			py *= t.Dims[i]
		}
	}
	if px != g.Px || py != g.Py {
		return nil, fmt.Errorf("%w: split gives %dx%d, grid is %dx%d", ErrNoSplit, px, py, g.Px, g.Py)
	}
	m := &Mapping{Grid: g, Torus: t, Name: "fold5d", nodeOf: make([]Coord, g.Size())}
	for r := range m.nodeOf {
		x, y := g.Coord(r)
		var c Coord
		writeReflected(&c, t, xdims, x)
		writeReflected(&c, t, ydims, y)
		m.nodeOf[r] = c
	}
	return m, nil
}

// writeReflected expands v in reflected mixed-radix digits over the
// given dimensions (fastest first): each digit is mirrored when the
// remaining quotient is odd, which is exactly the boustrophedon fold —
// incrementing v changes exactly one digit by ±1.
func writeReflected(c *Coord, t Torus, dims []int, v int) {
	for _, i := range dims {
		d := t.Dims[i]
		q, r := v/d, v%d
		if q%2 == 1 {
			r = d - 1 - r
		}
		c[i] = r
		v = q
	}
}

// BGQTorusFor returns a Blue Gene/Q-style 5D core-torus for the given
// core count (16 cores per node folded into the node torus's
// dimensions; the E dimension of real BG/Q hardware is 2). Supported
// counts are powers of two from 32 to 16384.
func BGQTorusFor(cores int) (Torus, error) {
	shapes := map[int][5]int{
		32:    {4, 2, 2, 2, 1},
		64:    {4, 4, 2, 2, 1},
		128:   {4, 4, 4, 2, 1},
		256:   {4, 4, 4, 2, 2},
		512:   {4, 4, 4, 4, 2},
		1024:  {8, 4, 4, 4, 2},
		2048:  {8, 8, 4, 4, 2},
		4096:  {8, 8, 8, 4, 2},
		8192:  {8, 8, 8, 8, 2},
		16384: {16, 8, 8, 8, 2},
	}
	s, ok := shapes[cores]
	if !ok {
		return Torus{}, fmt.Errorf("torus5: unsupported BG/Q core count %d", cores)
	}
	return New(s[0], s[1], s[2], s[3], s[4])
}
