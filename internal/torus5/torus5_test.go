package torus5

import (
	"math/rand"
	"testing"

	"nestwrf/internal/machine"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 4, 0, 2, 1); err == nil {
		t.Error("zero dimension should fail")
	}
	tor, err := New(4, 4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 512 {
		t.Errorf("Nodes = %d", tor.Nodes())
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	tor, _ := New(3, 4, 2, 5, 2)
	for i := 0; i < tor.Nodes(); i++ {
		c := tor.CoordOf(i)
		if !tor.Valid(c) {
			t.Fatalf("CoordOf(%d) = %v invalid", i, c)
		}
		if got := tor.Index(c); got != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, got)
		}
	}
}

func TestHops(t *testing.T) {
	tor, _ := New(4, 4, 4, 4, 2)
	a := Coord{0, 0, 0, 0, 0}
	if got := tor.Hops(a, Coord{1, 0, 0, 0, 0}); got != 1 {
		t.Errorf("1 step = %d hops", got)
	}
	if got := tor.Hops(a, Coord{3, 0, 0, 0, 0}); got != 1 {
		t.Errorf("wraparound = %d hops", got)
	}
	if got := tor.Hops(a, Coord{2, 2, 2, 2, 1}); got != 9 {
		t.Errorf("far corner = %d hops", got)
	}
	// Symmetry.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := tor.CoordOf(rng.Intn(tor.Nodes()))
		y := tor.CoordOf(rng.Intn(tor.Nodes()))
		if tor.Hops(x, y) != tor.Hops(y, x) {
			t.Fatalf("asymmetric hops for %v %v", x, y)
		}
	}
}

func TestSplitFor(t *testing.T) {
	tor, _ := New(8, 8, 8, 8, 2) // 8192
	g, err := machine.GridFor(8192)
	if err != nil {
		t.Fatal(err)
	}
	xdims, err := SplitFor(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	px := 1
	for _, i := range xdims {
		px *= tor.Dims[i]
	}
	if px != g.Px {
		t.Errorf("split product %d != Px %d", px, g.Px)
	}
	// Impossible split.
	tor2, _ := New(3, 3, 3, 3, 3) // 243 nodes
	g2, _ := machine.GridFor(243) // 27x9? GridFor gives closest divisors
	if _, err := SplitFor(g2, tor2); err == nil {
		// 243 = 27x9: x needs product 27 = 3^3: subset of three dims: fine!
		// So this particular case IS splittable; use a mismatched size.
		t.Log("3^5 torus splits 27x9; trying size mismatch instead")
	}
	gBad, _ := machine.GridFor(128)
	if _, err := SplitFor(gBad, tor2); err == nil {
		t.Error("size mismatch should fail")
	}
}

// The headline property: the generalized fold puts every neighbouring
// rank pair exactly one hop apart on the 5D torus.
func TestFoldOneHopEverywhere(t *testing.T) {
	for _, cores := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		tor, err := BGQTorusFor(cores)
		if err != nil {
			t.Fatal(err)
		}
		g, err := machine.GridFor(cores)
		if err != nil {
			t.Fatal(err)
		}
		xdims, err := SplitFor(g, tor)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		m, err := Fold(g, tor, xdims)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		for _, p := range g.NeighborPairs() {
			if h := m.Hops(p[0], p[1]); h != 1 {
				t.Fatalf("cores=%d: pair %v is %d hops", cores, p, h)
			}
		}
	}
}

func TestFoldBeatsOblivious(t *testing.T) {
	tor, _ := BGQTorusFor(8192)
	g, _ := machine.GridFor(8192)
	xdims, err := SplitFor(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := Fold(g, tor, xdims)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := Oblivious(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	if err := obl.Validate(); err != nil {
		t.Fatal(err)
	}
	pairs := g.NeighborPairs()
	fAvg, oAvg := AvgHops(fold, pairs), AvgHops(obl, pairs)
	t.Logf("avg hops on BG/Q 8192: oblivious %.2f, fold %.2f", oAvg, fAvg)
	if fAvg != 1 {
		t.Errorf("fold avg hops = %v, want exactly 1", fAvg)
	}
	if oAvg <= 1.2 {
		t.Errorf("oblivious avg hops = %v suspiciously low", oAvg)
	}
	if MaxHops(fold, pairs) != 1 {
		t.Error("fold max hops should be 1")
	}
}

func TestFoldErrors(t *testing.T) {
	tor, _ := New(4, 4, 2, 1, 1)
	g, _ := machine.GridFor(32)
	if _, err := Fold(g, tor, []int{0, 0}); err == nil {
		t.Error("duplicate dim index should fail")
	}
	if _, err := Fold(g, tor, []int{7}); err == nil {
		t.Error("out-of-range dim index should fail")
	}
	if _, err := Fold(g, tor, []int{1}); err == nil {
		t.Error("wrong split product should fail")
	}
	gBig, _ := machine.GridFor(64)
	if _, err := Fold(gBig, tor, []int{0}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := Oblivious(gBig, tor); err == nil {
		t.Error("oblivious size mismatch should fail")
	}
}

func TestBGQTorusForShapes(t *testing.T) {
	for _, cores := range []int{32, 512, 8192, 16384} {
		tor, err := BGQTorusFor(cores)
		if err != nil {
			t.Fatal(err)
		}
		if tor.Nodes() != cores {
			t.Errorf("cores=%d: torus has %d nodes", cores, tor.Nodes())
		}
	}
	if _, err := BGQTorusFor(100); err == nil {
		t.Error("unsupported count should fail")
	}
}

func TestAvgMaxHopsEmpty(t *testing.T) {
	tor, _ := BGQTorusFor(32)
	g, _ := machine.GridFor(32)
	m, _ := Oblivious(g, tor)
	if AvgHops(m, nil) != 0 || MaxHops(m, nil) != 0 {
		t.Error("empty pairs should give 0")
	}
}

// Reflected mixed-radix expansion: consecutive values differ in exactly
// one digit by exactly one.
func TestWriteReflectedGrayProperty(t *testing.T) {
	tor, _ := New(3, 4, 2, 5, 2)
	dims := []int{0, 1, 2, 3, 4}
	var prev Coord
	writeReflected(&prev, tor, dims, 0)
	for v := 1; v < tor.Nodes(); v++ {
		var c Coord
		writeReflected(&c, tor, dims, v)
		diffs := 0
		for i := range c {
			d := c[i] - prev[i]
			if d != 0 {
				diffs++
				if d != 1 && d != -1 {
					t.Fatalf("v=%d: digit %d jumped by %d", v, i, d)
				}
			}
		}
		if diffs != 1 {
			t.Fatalf("v=%d: %d digits changed (%v -> %v)", v, diffs, prev, c)
		}
		prev = c
	}
}
