// Package netsim models message transfer times on a 3D torus with
// static link contention. During a communication phase (e.g. one halo
// exchange of all ranks), every message's dimension-ordered route is
// accumulated onto the directed links it traverses; a message's
// effective bandwidth is the raw link bandwidth divided by the maximum
// link multiplicity along its route. This reproduces the paper's
// observation that placing siblings on small, compact torus regions
// "leads to lesser congestion and smaller delay for point-to-point
// message transfer between neighbouring processes" (Section 4.3.2).
//
// Hot-path engineering (DESIGN.md Section 8): link loads live in a
// dense []int32 indexed by torus.LinkIndex rather than a map keyed by
// Link structs, routes are resolved through a per-torus cache shared
// by all Networks (halo pairs repeat across phases, steps and sweep
// configurations), and Reset clears only the links touched since the
// previous phase. AddFlow, PathLoad and TransferTime are
// allocation-free in the steady state. A map-based reference
// implementation is retained behind an unexported switch so the
// equivalence tests can mechanically compare the two paths.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nestwrf/internal/torus"
)

// Params are the link-level parameters of the network. Times are in
// seconds, sizes in bytes.
type Params struct {
	// LatencyPerHop is the per-hop propagation/router delay.
	LatencyPerHop float64
	// Overhead is the fixed per-message software (MPI stack) overhead.
	Overhead float64
	// Bandwidth is the raw bandwidth of one directed link, bytes/s.
	Bandwidth float64
}

// ErrBadParams is returned for non-positive network parameters.
var ErrBadParams = errors.New("netsim: parameters must be positive")

// Validate checks p.
func (p Params) Validate() error {
	if p.LatencyPerHop <= 0 || p.Overhead < 0 || p.Bandwidth <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// reference switches newly constructed Networks onto the original
// map-based load accounting and per-call route construction. It exists
// solely for the equivalence tests, which assert the dense fast path
// produces byte-identical results. The flag is atomic so a toggle is
// race-free against concurrent Network construction (each Network
// commits to one path at New and never re-reads the flag).
var reference atomic.Bool

// SetReference selects the retained slow path (true) or the dense fast
// path (false, the default) for Networks constructed after the call.
// Only tests should call this.
func SetReference(on bool) { reference.Store(on) }

// routeCache memoizes dimension-ordered routes (as dense link indices)
// per source/destination node pair of one torus shape. Halo pairs
// repeat across phases, steps and sweep configurations, so the cache
// is shared by every Network over the same torus and guarded for the
// experiment harness's parallel runs.
type routeCache struct {
	mu sync.RWMutex
	m  map[int64][]torus.LinkIndex
}

// routeCaches maps torus.Torus (comparable) -> *routeCache.
var routeCaches sync.Map

func cacheFor(t torus.Torus) *routeCache {
	if c, ok := routeCaches.Load(t); ok {
		return c.(*routeCache)
	}
	c, _ := routeCaches.LoadOrStore(t, &routeCache{m: make(map[int64][]torus.LinkIndex)})
	return c.(*routeCache)
}

// route returns the cached dense-index route from a to b, computing
// and caching it on first use. The returned slice is shared and must
// not be mutated. len(route) equals the hop count.
func (c *routeCache) route(t torus.Torus, a, b torus.Coord) []torus.LinkIndex {
	key := int64(t.Index(a))<<32 | int64(t.Index(b))
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return r
	}
	r = t.RouteIndicesInto(a, b, make([]torus.LinkIndex, 0, t.Hops(a, b)))
	c.mu.Lock()
	if prev, ok := c.m[key]; ok {
		r = prev // another goroutine won the race; keep its slice
	} else {
		c.m[key] = r
	}
	c.mu.Unlock()
	return r
}

// Network accumulates per-link loads for a communication phase and
// computes message transfer times under the resulting contention.
type Network struct {
	Torus  torus.Torus
	Params Params

	// Fast path: dense per-link loads indexed by torus.LinkIndex, the
	// unique list of touched (load > 0) links for O(touched) Reset and
	// stats, and the shared per-torus route cache.
	load    []int32
	touched []torus.LinkIndex
	routes  *routeCache

	// Reference path (enabled by SetReference): the original map-based
	// accounting.
	refLoad map[torus.Link]int
}

// New returns a Network for the given torus and parameters.
func New(t torus.Torus, p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := &Network{Torus: t, Params: p}
	if reference.Load() {
		n.refLoad = make(map[torus.Link]int)
		return n, nil
	}
	n.load = make([]int32, t.LinkIndexCount())
	n.routes = cacheFor(t)
	return n, nil
}

// Reset clears the accumulated link loads, starting a new phase. Only
// links touched since the previous Reset are cleared.
func (n *Network) Reset() {
	if n.refLoad != nil {
		n.refLoad = make(map[torus.Link]int)
		return
	}
	for _, li := range n.touched {
		n.load[li] = 0
	}
	n.touched = n.touched[:0]
}

// AddFlow registers one message from a to b for the current phase,
// loading every directed link along its dimension-ordered route.
// Self-messages add no load.
func (n *Network) AddFlow(a, b torus.Coord) {
	if n.refLoad != nil {
		for _, l := range n.Torus.Route(a, b) {
			n.refLoad[l]++
		}
		return
	}
	for _, li := range n.routes.route(n.Torus, a, b) {
		if n.load[li] == 0 {
			n.touched = append(n.touched, li)
		}
		n.load[li]++
	}
}

// AddFlows registers all messages of a phase given as coordinate pairs;
// each pair is counted in both directions, as halo exchanges are.
func (n *Network) AddFlows(pairs [][2]torus.Coord) {
	for _, p := range pairs {
		n.AddFlow(p[0], p[1])
		n.AddFlow(p[1], p[0])
	}
}

// PathLoad returns the maximum link multiplicity along the route from a
// to b under the current phase's loads. The returned value is at least
// 1 for distinct endpoints (the message itself always uses its links)
// and 0 for a == b.
func (n *Network) PathLoad(a, b torus.Coord) int {
	max := 0
	if n.refLoad != nil {
		for _, l := range n.Torus.Route(a, b) {
			c := n.refLoad[l]
			if c == 0 {
				c = 1 // count the message under consideration
			}
			if c > max {
				max = c
			}
		}
		return max
	}
	for _, li := range n.routes.route(n.Torus, a, b) {
		c := int(n.load[li])
		if c == 0 {
			c = 1 // count the message under consideration
		}
		if c > max {
			max = c
		}
	}
	return max
}

// MaxLinkLoad returns the highest load on any link in the current
// phase.
func (n *Network) MaxLinkLoad() int {
	max := 0
	if n.refLoad != nil {
		for _, c := range n.refLoad {
			if c > max {
				max = c
			}
		}
		return max
	}
	for _, li := range n.touched {
		if c := int(n.load[li]); c > max {
			max = c
		}
	}
	return max
}

// TotalHops returns the total number of link traversals registered in
// the current phase — the hop-byte style congestion metric of the
// paper's Section 2.3 (with unit message size).
func (n *Network) TotalHops() int {
	sum := 0
	if n.refLoad != nil {
		for _, c := range n.refLoad {
			sum += c
		}
		return sum
	}
	for _, li := range n.touched {
		sum += int(n.load[li])
	}
	return sum
}

// LoadBucket is one entry of a link-load histogram: Links links carry
// exactly Load concurrent messages.
type LoadBucket struct {
	Load  int `json:"load"`
	Links int `json:"links"`
}

// Congestion summarizes the link loads of one communication phase.
type Congestion struct {
	// Links is the number of distinct directed links carrying traffic.
	Links int `json:"links"`
	// TotalHops is the total number of link traversals (hop-byte style
	// congestion with unit message size).
	TotalHops int `json:"total_hops"`
	// MaxLoad is the highest multiplicity on any link — the kappa that
	// divides the bandwidth of the worst message.
	MaxLoad int `json:"max_load"`
	// Histogram counts links by exact multiplicity, ascending by load.
	Histogram []LoadBucket `json:"histogram"`
}

// Stats summarizes the current phase's accumulated link loads. The
// histogram makes visible *why* compact mappings cut MPI_Wait: better
// placements shift links toward lower multiplicities.
func (n *Network) Stats() Congestion {
	var c Congestion
	counts := map[int]int{}
	if n.refLoad != nil {
		c.Links = len(n.refLoad)
		for _, load := range n.refLoad {
			c.TotalHops += load
			if load > c.MaxLoad {
				c.MaxLoad = load
			}
			counts[load]++
		}
	} else {
		c.Links = len(n.touched)
		for _, li := range n.touched {
			load := int(n.load[li])
			c.TotalHops += load
			if load > c.MaxLoad {
				c.MaxLoad = load
			}
			counts[load]++
		}
	}
	loads := make([]int, 0, len(counts))
	for l := range counts {
		loads = append(loads, l)
	}
	sort.Ints(loads)
	for _, l := range loads {
		c.Histogram = append(c.Histogram, LoadBucket{Load: l, Links: counts[l]})
	}
	return c
}

// TransferTime returns the modeled time for one message of the given
// size from a to b under the current phase's contention:
//
//	overhead + hops·latency + bytes / (bandwidth / pathLoad)
//
// A self-message costs only the software overhead.
func (n *Network) TransferTime(a, b torus.Coord, bytes int) float64 {
	if n.refLoad != nil {
		hops := n.Torus.Hops(a, b)
		if hops == 0 {
			return n.Params.Overhead
		}
		kappa := float64(n.PathLoad(a, b))
		if kappa < 1 {
			kappa = 1
		}
		return n.Params.Overhead +
			float64(hops)*n.Params.LatencyPerHop +
			float64(bytes)*kappa/n.Params.Bandwidth
	}
	route := n.routes.route(n.Torus, a, b)
	if len(route) == 0 {
		return n.Params.Overhead
	}
	max := int32(1)
	for _, li := range route {
		if c := n.load[li]; c > max {
			max = c
		}
	}
	return n.Params.Overhead +
		float64(len(route))*n.Params.LatencyPerHop +
		float64(bytes)*float64(max)/n.Params.Bandwidth
}

// UncontendedTime is TransferTime with an empty network (path load 1).
func (n *Network) UncontendedTime(a, b torus.Coord, bytes int) float64 {
	hops := n.Torus.Hops(a, b)
	if hops == 0 {
		return n.Params.Overhead
	}
	return n.Params.Overhead +
		float64(hops)*n.Params.LatencyPerHop +
		float64(bytes)/n.Params.Bandwidth
}
