// Package netsim models message transfer times on a 3D torus with
// static link contention. During a communication phase (e.g. one halo
// exchange of all ranks), every message's dimension-ordered route is
// accumulated onto the directed links it traverses; a message's
// effective bandwidth is the raw link bandwidth divided by the maximum
// link multiplicity along its route. This reproduces the paper's
// observation that placing siblings on small, compact torus regions
// "leads to lesser congestion and smaller delay for point-to-point
// message transfer between neighbouring processes" (Section 4.3.2).
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"nestwrf/internal/torus"
)

// Params are the link-level parameters of the network. Times are in
// seconds, sizes in bytes.
type Params struct {
	// LatencyPerHop is the per-hop propagation/router delay.
	LatencyPerHop float64
	// Overhead is the fixed per-message software (MPI stack) overhead.
	Overhead float64
	// Bandwidth is the raw bandwidth of one directed link, bytes/s.
	Bandwidth float64
}

// ErrBadParams is returned for non-positive network parameters.
var ErrBadParams = errors.New("netsim: parameters must be positive")

// Validate checks p.
func (p Params) Validate() error {
	if p.LatencyPerHop <= 0 || p.Overhead < 0 || p.Bandwidth <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// Network accumulates per-link loads for a communication phase and
// computes message transfer times under the resulting contention.
type Network struct {
	Torus  torus.Torus
	Params Params
	load   map[torus.Link]int
}

// New returns a Network for the given torus and parameters.
func New(t torus.Torus, p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Network{Torus: t, Params: p, load: make(map[torus.Link]int)}, nil
}

// Reset clears the accumulated link loads, starting a new phase.
func (n *Network) Reset() {
	n.load = make(map[torus.Link]int)
}

// AddFlow registers one message from a to b for the current phase,
// loading every directed link along its dimension-ordered route.
// Self-messages add no load.
func (n *Network) AddFlow(a, b torus.Coord) {
	for _, l := range n.Torus.Route(a, b) {
		n.load[l]++
	}
}

// AddFlows registers all messages of a phase given as coordinate pairs;
// each pair is counted in both directions, as halo exchanges are.
func (n *Network) AddFlows(pairs [][2]torus.Coord) {
	for _, p := range pairs {
		n.AddFlow(p[0], p[1])
		n.AddFlow(p[1], p[0])
	}
}

// PathLoad returns the maximum link multiplicity along the route from a
// to b under the current phase's loads. The returned value is at least
// 1 for distinct endpoints (the message itself always uses its links)
// and 0 for a == b.
func (n *Network) PathLoad(a, b torus.Coord) int {
	max := 0
	for _, l := range n.Torus.Route(a, b) {
		c := n.load[l]
		if c == 0 {
			c = 1 // count the message under consideration
		}
		if c > max {
			max = c
		}
	}
	return max
}

// MaxLinkLoad returns the highest load on any link in the current
// phase.
func (n *Network) MaxLinkLoad() int {
	max := 0
	for _, c := range n.load {
		if c > max {
			max = c
		}
	}
	return max
}

// TotalHops returns the total number of link traversals registered in
// the current phase — the hop-byte style congestion metric of the
// paper's Section 2.3 (with unit message size).
func (n *Network) TotalHops() int {
	sum := 0
	for _, c := range n.load {
		sum += c
	}
	return sum
}

// LoadBucket is one entry of a link-load histogram: Links links carry
// exactly Load concurrent messages.
type LoadBucket struct {
	Load  int `json:"load"`
	Links int `json:"links"`
}

// Congestion summarizes the link loads of one communication phase.
type Congestion struct {
	// Links is the number of distinct directed links carrying traffic.
	Links int `json:"links"`
	// TotalHops is the total number of link traversals (hop-byte style
	// congestion with unit message size).
	TotalHops int `json:"total_hops"`
	// MaxLoad is the highest multiplicity on any link — the kappa that
	// divides the bandwidth of the worst message.
	MaxLoad int `json:"max_load"`
	// Histogram counts links by exact multiplicity, ascending by load.
	Histogram []LoadBucket `json:"histogram"`
}

// Stats summarizes the current phase's accumulated link loads. The
// histogram makes visible *why* compact mappings cut MPI_Wait: better
// placements shift links toward lower multiplicities.
func (n *Network) Stats() Congestion {
	c := Congestion{Links: len(n.load)}
	counts := map[int]int{}
	for _, load := range n.load {
		c.TotalHops += load
		if load > c.MaxLoad {
			c.MaxLoad = load
		}
		counts[load]++
	}
	loads := make([]int, 0, len(counts))
	for l := range counts {
		loads = append(loads, l)
	}
	sort.Ints(loads)
	for _, l := range loads {
		c.Histogram = append(c.Histogram, LoadBucket{Load: l, Links: counts[l]})
	}
	return c
}

// TransferTime returns the modeled time for one message of the given
// size from a to b under the current phase's contention:
//
//	overhead + hops·latency + bytes / (bandwidth / pathLoad)
//
// A self-message costs only the software overhead.
func (n *Network) TransferTime(a, b torus.Coord, bytes int) float64 {
	hops := n.Torus.Hops(a, b)
	if hops == 0 {
		return n.Params.Overhead
	}
	kappa := float64(n.PathLoad(a, b))
	if kappa < 1 {
		kappa = 1
	}
	return n.Params.Overhead +
		float64(hops)*n.Params.LatencyPerHop +
		float64(bytes)*kappa/n.Params.Bandwidth
}

// UncontendedTime is TransferTime with an empty network (path load 1).
func (n *Network) UncontendedTime(a, b torus.Coord, bytes int) float64 {
	hops := n.Torus.Hops(a, b)
	if hops == 0 {
		return n.Params.Overhead
	}
	return n.Params.Overhead +
		float64(hops)*n.Params.LatencyPerHop +
		float64(bytes)/n.Params.Bandwidth
}
