package netsim

import (
	"testing"

	"nestwrf/internal/torus"
)

// TestHotPathAllocationFree asserts the netsim inner loops allocate
// nothing in the steady state (after the first AddFlow per pair has
// populated the shared route cache). A regression here silently undoes
// the PR 4 hot-path rework, so it is enforced, not just benchmarked.
func TestHotPathAllocationFree(t *testing.T) {
	tor, err := torus.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{LatencyPerHop: 9e-7, Overhead: 8e-4, Bandwidth: 175e6}
	n, err := New(tor, p)
	if err != nil {
		t.Fatal(err)
	}
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	b := torus.Coord{X: 5, Y: 3, Z: 6}
	c := torus.Coord{X: 2, Y: 7, Z: 1}
	// Warm the route cache and the touched-links buffer.
	n.AddFlow(a, b)
	n.AddFlow(b, c)
	n.AddFlow(c, a)
	n.Reset()
	n.AddFlow(a, b)

	if avg := testing.AllocsPerRun(100, func() {
		n.Reset()
		n.AddFlow(a, b)
		n.AddFlow(b, c)
		n.AddFlow(c, a)
	}); avg != 0 {
		t.Errorf("Reset+AddFlow allocates %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if n.PathLoad(a, b) < 1 {
			t.Fatal("unexpected path load")
		}
	}); avg != 0 {
		t.Errorf("PathLoad allocates %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if n.TransferTime(a, b, 4096) <= 0 {
			t.Fatal("unexpected transfer time")
		}
	}); avg != 0 {
		t.Errorf("TransferTime allocates %v allocs/op, want 0", avg)
	}
}
