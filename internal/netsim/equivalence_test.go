package netsim

import (
	"math/rand"
	"reflect"
	"testing"

	"nestwrf/internal/torus"
)

// newPair builds a fast-path and a reference-path Network over the same
// torus and parameters.
func newPair(t *testing.T, tor torus.Torus, p Params) (fast, ref *Network) {
	t.Helper()
	fast, err := New(tor, p)
	if err != nil {
		t.Fatal(err)
	}
	SetReference(true)
	defer SetReference(false)
	ref, err = New(tor, p)
	if err != nil {
		t.Fatal(err)
	}
	return fast, ref
}

// TestDenseMatchesReference drives random flow patterns through the
// dense fast path and the retained map-based reference path and
// asserts every observable — path loads, transfer times, congestion
// stats — is identical, including across Reset.
func TestDenseMatchesReference(t *testing.T) {
	p := Params{LatencyPerHop: 9e-7, Overhead: 8e-4, Bandwidth: 175e6}
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{2, 2, 2}, {4, 2, 4}, {8, 8, 8}, {3, 5, 2}} {
		tor, err := torus.New(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		fast, ref := newPair(t, tor, p)
		randCoord := func() torus.Coord {
			return torus.Coord{X: rng.Intn(tor.X), Y: rng.Intn(tor.Y), Z: rng.Intn(tor.Z)}
		}
		for phase := 0; phase < 3; phase++ {
			var pairs [][2]torus.Coord
			for i := 0; i < 40; i++ {
				pairs = append(pairs, [2]torus.Coord{randCoord(), randCoord()})
			}
			fast.AddFlows(pairs)
			ref.AddFlows(pairs)

			if got, want := fast.MaxLinkLoad(), ref.MaxLinkLoad(); got != want {
				t.Fatalf("%v phase %d: MaxLinkLoad = %d, reference %d", dims, phase, got, want)
			}
			if got, want := fast.TotalHops(), ref.TotalHops(); got != want {
				t.Fatalf("%v phase %d: TotalHops = %d, reference %d", dims, phase, got, want)
			}
			if got, want := fast.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v phase %d: Stats = %+v, reference %+v", dims, phase, got, want)
			}
			for i := 0; i < 100; i++ {
				a, b := randCoord(), randCoord()
				if got, want := fast.PathLoad(a, b), ref.PathLoad(a, b); got != want {
					t.Fatalf("%v phase %d: PathLoad(%v,%v) = %d, reference %d", dims, phase, a, b, got, want)
				}
				bytes := rng.Intn(1 << 20)
				if got, want := fast.TransferTime(a, b, bytes), ref.TransferTime(a, b, bytes); got != want {
					t.Fatalf("%v phase %d: TransferTime(%v,%v,%d) = %v, reference %v", dims, phase, a, b, bytes, got, want)
				}
				if got, want := fast.UncontendedTime(a, b, bytes), ref.UncontendedTime(a, b, bytes); got != want {
					t.Fatalf("%v phase %d: UncontendedTime(%v,%v,%d) = %v, reference %v", dims, phase, a, b, bytes, got, want)
				}
			}
			fast.Reset()
			ref.Reset()
			if got := fast.MaxLinkLoad(); got != 0 {
				t.Fatalf("%v phase %d: MaxLinkLoad after Reset = %d", dims, phase, got)
			}
			if got := fast.Stats(); got.Links != 0 || got.TotalHops != 0 {
				t.Fatalf("%v phase %d: Stats after Reset = %+v", dims, phase, got)
			}
		}
	}
}

// TestSelfMessage preserves the self-message contract on the fast path.
func TestSelfMessage(t *testing.T) {
	tor, _ := torus.New(4, 4, 4)
	p := Params{LatencyPerHop: 1e-6, Overhead: 1e-4, Bandwidth: 1e8}
	n, err := New(tor, p)
	if err != nil {
		t.Fatal(err)
	}
	c := torus.Coord{X: 1, Y: 1, Z: 1}
	n.AddFlow(c, c)
	if got := n.TotalHops(); got != 0 {
		t.Fatalf("self flow added load: TotalHops = %d", got)
	}
	if got := n.TransferTime(c, c, 1000); got != p.Overhead {
		t.Fatalf("self TransferTime = %v, want overhead %v", got, p.Overhead)
	}
	if got := n.PathLoad(c, c); got != 0 {
		t.Fatalf("self PathLoad = %d, want 0", got)
	}
}
