package netsim

import (
	"math"
	"reflect"
	"testing"

	"nestwrf/internal/torus"
)

func params() Params {
	return Params{LatencyPerHop: 1e-6, Overhead: 2e-6, Bandwidth: 175e6}
}

func TestParamsValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{LatencyPerHop: 0, Overhead: 1, Bandwidth: 1},
		{LatencyPerHop: 1, Overhead: -1, Bandwidth: 1},
		{LatencyPerHop: 1, Overhead: 1, Bandwidth: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
	tor, _ := torus.New(2, 2, 2)
	if _, err := New(tor, bad[0]); err == nil {
		t.Error("New should reject bad params")
	}
}

func TestTransferTimeSelfMessage(t *testing.T) {
	tor, _ := torus.New(4, 4, 4)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a := torus.Coord{X: 1, Y: 1, Z: 1}
	if got := n.TransferTime(a, a, 1000); got != params().Overhead {
		t.Errorf("self message = %v, want overhead only", got)
	}
}

func TestTransferTimeUncontended(t *testing.T) {
	tor, _ := torus.New(8, 8, 8)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	b := torus.Coord{X: 2, Y: 0, Z: 0}
	bytes := 8192
	want := params().Overhead + 2*params().LatencyPerHop + float64(bytes)/params().Bandwidth
	if got := n.TransferTime(a, b, bytes); math.Abs(got-want) > 1e-15 {
		t.Errorf("uncontended transfer = %v, want %v", got, want)
	}
	if got := n.UncontendedTime(a, b, bytes); math.Abs(got-want) > 1e-15 {
		t.Errorf("UncontendedTime = %v, want %v", got, want)
	}
}

func TestContentionSlowsTransfers(t *testing.T) {
	tor, _ := torus.New(8, 1, 1)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	b := torus.Coord{X: 1, Y: 0, Z: 0}
	base := n.TransferTime(a, b, 100000)
	// Three more flows over the same link.
	for i := 0; i < 3; i++ {
		n.AddFlow(a, b)
	}
	loaded := n.TransferTime(a, b, 100000)
	if loaded <= base {
		t.Errorf("loaded %v should exceed uncontended %v", loaded, base)
	}
	// Path load is 3 registered flows; bandwidth term scales by 3.
	want := params().Overhead + params().LatencyPerHop + 100000.0*3/params().Bandwidth
	if math.Abs(loaded-want) > 1e-12 {
		t.Errorf("loaded = %v, want %v", loaded, want)
	}
}

func TestResetClearsLoad(t *testing.T) {
	tor, _ := torus.New(4, 4, 1)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a, b := torus.Coord{X: 0, Y: 0, Z: 0}, torus.Coord{X: 1, Y: 0, Z: 0}
	n.AddFlow(a, b)
	n.AddFlow(a, b)
	if n.MaxLinkLoad() != 2 {
		t.Errorf("MaxLinkLoad = %d", n.MaxLinkLoad())
	}
	n.Reset()
	if n.MaxLinkLoad() != 0 {
		t.Errorf("after Reset MaxLinkLoad = %d", n.MaxLinkLoad())
	}
	if n.TotalHops() != 0 {
		t.Errorf("after Reset TotalHops = %d", n.TotalHops())
	}
}

func TestAddFlowsBothDirections(t *testing.T) {
	tor, _ := torus.New(4, 1, 1)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a, b := torus.Coord{X: 0, Y: 0, Z: 0}, torus.Coord{X: 1, Y: 0, Z: 0}
	n.AddFlows([][2]torus.Coord{{a, b}})
	// Forward and reverse use distinct directed links, so no link sees
	// more than one message.
	if n.MaxLinkLoad() != 1 {
		t.Errorf("MaxLinkLoad = %d, want 1 (directions are independent)", n.MaxLinkLoad())
	}
	if n.TotalHops() != 2 {
		t.Errorf("TotalHops = %d, want 2", n.TotalHops())
	}
}

func TestPathLoadCountsOwnMessage(t *testing.T) {
	tor, _ := torus.New(4, 4, 4)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a, b := torus.Coord{X: 0, Y: 0, Z: 0}, torus.Coord{X: 2, Y: 1, Z: 0}
	if got := n.PathLoad(a, b); got != 1 {
		t.Errorf("empty-phase PathLoad = %d, want 1", got)
	}
	if got := n.PathLoad(a, a); got != 0 {
		t.Errorf("self PathLoad = %d, want 0", got)
	}
}

// Far messages crossing a shared bottleneck slow down more than near
// ones: the core argument for compact sibling placement.
func TestLongRoutesPickUpMoreContention(t *testing.T) {
	tor, _ := torus.New(8, 1, 1)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	orig := torus.Coord{X: 0, Y: 0, Z: 0}
	// Many 1-hop flows spread along the ring.
	for x := 0; x < 4; x++ {
		n.AddFlow(torus.Coord{X: x, Y: 0, Z: 0}, torus.Coord{X: x + 1, Y: 0, Z: 0})
	}
	near := n.TransferTime(orig, torus.Coord{X: 1, Y: 0, Z: 0}, 50000)
	far := n.TransferTime(orig, torus.Coord{X: 4, Y: 0, Z: 0}, 50000)
	if far <= near {
		t.Errorf("far %v should exceed near %v", far, near)
	}
}

func TestTotalHopsMatchesRouteLengths(t *testing.T) {
	tor, _ := torus.New(4, 4, 2)
	n, err := New(tor, params())
	if err != nil {
		t.Fatal(err)
	}
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	b := torus.Coord{X: 2, Y: 1, Z: 1}
	n.AddFlow(a, b) // 2+1+1 = 4 hops
	n.AddFlow(b, a)
	if got := n.TotalHops(); got != 8 {
		t.Errorf("TotalHops = %d, want 8", got)
	}
}

func BenchmarkTransferTimeLoaded(b *testing.B) {
	tor, _ := torus.New(8, 8, 16)
	n, err := New(tor, params())
	if err != nil {
		b.Fatal(err)
	}
	for x := 0; x < 8; x++ {
		n.AddFlow(torus.Coord{X: x, Y: 0, Z: 0}, torus.Coord{X: x, Y: 4, Z: 8})
	}
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	c := torus.Coord{X: 3, Y: 2, Z: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TransferTime(a, c, 65536)
	}
}

// TestStats checks the congestion summary against a hand-built phase.
func TestStats(t *testing.T) {
	tor, err := torus.New(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(tor, Params{LatencyPerHop: 1e-7, Overhead: 1e-6, Bandwidth: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Links != 0 || s.MaxLoad != 0 || s.TotalHops != 0 || s.Histogram != nil {
		t.Fatalf("empty network stats = %+v", s)
	}
	// Two flows sharing the first hop of a straight-line route.
	a := torus.Coord{X: 0, Y: 0, Z: 0}
	b := torus.Coord{X: 1, Y: 0, Z: 0}
	c := torus.Coord{X: 2, Y: 0, Z: 0}
	n.AddFlow(a, b) // loads link a->b
	n.AddFlow(a, c) // loads a->b and b->c
	s := n.Stats()
	if s.Links != 2 {
		t.Errorf("Links = %d, want 2", s.Links)
	}
	if s.TotalHops != 3 || s.TotalHops != n.TotalHops() {
		t.Errorf("TotalHops = %d (method %d), want 3", s.TotalHops, n.TotalHops())
	}
	if s.MaxLoad != 2 || s.MaxLoad != n.MaxLinkLoad() {
		t.Errorf("MaxLoad = %d, want 2", s.MaxLoad)
	}
	want := []LoadBucket{{Load: 1, Links: 1}, {Load: 2, Links: 1}}
	if !reflect.DeepEqual(s.Histogram, want) {
		t.Errorf("Histogram = %+v, want %+v", s.Histogram, want)
	}
	n.Reset()
	if s := n.Stats(); s.Links != 0 {
		t.Errorf("stats after Reset = %+v", s)
	}
}
