// Package vtopo models the 2D virtual process topologies of WRF-style
// weather codes (paper Fig. 5a): the parent simulation decomposes its
// domain over a Px × Py process grid, and each nested simulation runs
// on a rectangular sub-grid of it with its own local topology.
package vtopo

import (
	"errors"
	"fmt"

	"nestwrf/internal/alloc"
)

// Grid is a 2D process grid with Px columns and Py rows. Ranks are
// row-major with x varying fastest: rank = y*Px + x, matching the
// process numbering of the paper's Fig. 5(a).
type Grid struct {
	Px, Py int
}

// ErrBadGrid is returned for non-positive grid dimensions.
var ErrBadGrid = errors.New("vtopo: grid dimensions must be positive")

// NewGrid returns a Px × Py process grid.
func NewGrid(px, py int) (Grid, error) {
	if px <= 0 || py <= 0 {
		return Grid{}, fmt.Errorf("%w: %dx%d", ErrBadGrid, px, py)
	}
	return Grid{px, py}, nil
}

// Size returns the number of processes in the grid.
func (g Grid) Size() int { return g.Px * g.Py }

// Rank returns the rank at grid position (x, y).
func (g Grid) Rank(x, y int) int { return y*g.Px + x }

// Coord returns the grid position of rank r.
func (g Grid) Coord(r int) (x, y int) { return r % g.Px, r / g.Px }

// Valid reports whether (x, y) is inside the grid.
func (g Grid) Valid(x, y int) bool {
	return x >= 0 && x < g.Px && y >= 0 && y < g.Py
}

// Direction identifies one of the four halo-exchange neighbours.
type Direction int

// The four 2D neighbour directions.
const (
	West Direction = iota
	East
	South
	North
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case West:
		return "west"
	case East:
		return "east"
	case South:
		return "south"
	case North:
		return "north"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case West:
		return East
	case East:
		return West
	case South:
		return North
	default:
		return South
	}
}

// Neighbor returns the rank of the neighbour of r in direction d, or
// -1 at the (non-periodic) domain boundary. Weather domains do not wrap.
func (g Grid) Neighbor(r int, d Direction) int {
	x, y := g.Coord(r)
	switch d {
	case West:
		x--
	case East:
		x++
	case South:
		y--
	case North:
		y++
	}
	if !g.Valid(x, y) {
		return -1
	}
	return g.Rank(x, y)
}

// Neighbors returns the existing neighbours of rank r in order
// West, East, South, North.
func (g Grid) Neighbors(r int) []int {
	out := make([]int, 0, 4)
	for d := West; d <= North; d++ {
		if n := g.Neighbor(r, d); n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// NeighborPairs returns every adjacent pair (a < b) of the grid, the
// communicating pairs of a halo exchange.
func (g Grid) NeighborPairs() [][2]int {
	pairs := make([][2]int, 0, 2*g.Size())
	for y := 0; y < g.Py; y++ {
		for x := 0; x < g.Px; x++ {
			r := g.Rank(x, y)
			if x+1 < g.Px {
				pairs = append(pairs, [2]int{r, g.Rank(x+1, y)})
			}
			if y+1 < g.Py {
				pairs = append(pairs, [2]int{r, g.Rank(x, y+1)})
			}
		}
	}
	return pairs
}

// Subgrid is the process grid of one nested simulation: a rectangular
// region of the parent grid with its own dense local ranks (the
// sub-communicator of Section 3 of the paper).
type Subgrid struct {
	Parent Grid
	Rect   alloc.Rect
}

// ErrBadRect is returned when a sub-rectangle does not fit its parent.
var ErrBadRect = errors.New("vtopo: rectangle outside parent grid")

// NewSubgrid returns the subgrid of parent covered by rect.
func NewSubgrid(parent Grid, rect alloc.Rect) (Subgrid, error) {
	if rect.W <= 0 || rect.H <= 0 || rect.X < 0 || rect.Y < 0 ||
		rect.X+rect.W > parent.Px || rect.Y+rect.H > parent.Py {
		return Subgrid{}, fmt.Errorf("%w: %v in %dx%d", ErrBadRect, rect, parent.Px, parent.Py)
	}
	return Subgrid{Parent: parent, Rect: rect}, nil
}

// Size returns the number of processes in the subgrid.
func (s Subgrid) Size() int { return s.Rect.Area() }

// Grid returns the local process grid of the subgrid.
func (s Subgrid) Grid() Grid { return Grid{Px: s.Rect.W, Py: s.Rect.H} }

// GlobalRank converts a local rank to the corresponding parent rank.
func (s Subgrid) GlobalRank(local int) int {
	lx, ly := s.Grid().Coord(local)
	return s.Parent.Rank(s.Rect.X+lx, s.Rect.Y+ly)
}

// LocalRank converts a parent rank to the local rank, or -1 if the
// parent rank is outside the subgrid.
func (s Subgrid) LocalRank(global int) int {
	gx, gy := s.Parent.Coord(global)
	if !s.Rect.Contains(gx, gy) {
		return -1
	}
	return s.Grid().Rank(gx-s.Rect.X, gy-s.Rect.Y)
}

// Ranks returns the parent ranks belonging to the subgrid in local
// rank order.
func (s Subgrid) Ranks() []int {
	out := make([]int, s.Size())
	for l := range out {
		out[l] = s.GlobalRank(l)
	}
	return out
}
