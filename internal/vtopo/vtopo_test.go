package vtopo

import (
	"testing"

	"nestwrf/internal/alloc"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4); err == nil {
		t.Error("zero Px should fail")
	}
	if _, err := NewGrid(4, -2); err == nil {
		t.Error("negative Py should fail")
	}
	g, err := NewGrid(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 32 {
		t.Errorf("Size = %d", g.Size())
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	g := Grid{Px: 7, Py: 5}
	for r := 0; r < g.Size(); r++ {
		x, y := g.Coord(r)
		if !g.Valid(x, y) {
			t.Fatalf("Coord(%d) = (%d,%d) invalid", r, x, y)
		}
		if got := g.Rank(x, y); got != r {
			t.Fatalf("Rank(Coord(%d)) = %d", r, got)
		}
	}
}

// The paper's Fig. 5(a) numbering: 32 processes in an 8x4 grid, rank 0
// top-left, x fastest. Rank 0's neighbours are 1 (east) and 8 (north
// row below in rank order).
func TestFig5aNumbering(t *testing.T) {
	g := Grid{Px: 8, Py: 4}
	if g.Rank(0, 0) != 0 || g.Rank(3, 0) != 3 || g.Rank(0, 1) != 8 {
		t.Error("rank numbering mismatch with Fig. 5(a)")
	}
	if got := g.Neighbor(0, East); got != 1 {
		t.Errorf("east of 0 = %d", got)
	}
	if got := g.Neighbor(0, North); got != 8 {
		t.Errorf("north of 0 = %d", got)
	}
	if got := g.Neighbor(8, North); got != 16 {
		t.Errorf("north of 8 = %d", got)
	}
}

func TestNeighborBoundaries(t *testing.T) {
	g := Grid{Px: 4, Py: 3}
	if g.Neighbor(0, West) != -1 {
		t.Error("west of left edge should be -1")
	}
	if g.Neighbor(3, East) != -1 {
		t.Error("east of right edge should be -1")
	}
	if g.Neighbor(0, South) != -1 {
		t.Error("south of bottom row should be -1")
	}
	if g.Neighbor(g.Rank(0, 2), North) != -1 {
		t.Error("north of top row should be -1")
	}
}

func TestNeighborsCount(t *testing.T) {
	g := Grid{Px: 4, Py: 4}
	if got := len(g.Neighbors(g.Rank(1, 1))); got != 4 {
		t.Errorf("interior neighbours = %d, want 4", got)
	}
	if got := len(g.Neighbors(g.Rank(0, 0))); got != 2 {
		t.Errorf("corner neighbours = %d, want 2", got)
	}
	if got := len(g.Neighbors(g.Rank(1, 0))); got != 3 {
		t.Errorf("edge neighbours = %d, want 3", got)
	}
}

func TestDirectionOpposite(t *testing.T) {
	for d := West; d <= North; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("double opposite of %v != itself", d)
		}
	}
	if East.Opposite() != West || North.Opposite() != South {
		t.Error("opposite wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction string empty")
	}
}

func TestNeighborPairsCount(t *testing.T) {
	g := Grid{Px: 5, Py: 4}
	// Horizontal pairs: (Px-1)*Py, vertical: Px*(Py-1).
	want := 4*4 + 5*3
	pairs := g.NeighborPairs()
	if len(pairs) != want {
		t.Fatalf("pairs = %d, want %d", len(pairs), want)
	}
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSubgridValidation(t *testing.T) {
	parent := Grid{Px: 8, Py: 4}
	if _, err := NewSubgrid(parent, alloc.Rect{X: 6, Y: 0, W: 4, H: 4}); err == nil {
		t.Error("overflowing rect should fail")
	}
	if _, err := NewSubgrid(parent, alloc.Rect{X: 0, Y: 0, W: 0, H: 4}); err == nil {
		t.Error("empty rect should fail")
	}
	if _, err := NewSubgrid(parent, alloc.Rect{X: -1, Y: 0, W: 2, H: 2}); err == nil {
		t.Error("negative origin should fail")
	}
}

func TestSubgridRankMapping(t *testing.T) {
	parent := Grid{Px: 8, Py: 4}
	// Fig. 5(a): sibling 1 is the left 4x4 block: parent ranks 0-3,
	// 8-11, 16-19, 24-27.
	sg, err := NewSubgrid(parent, alloc.Rect{X: 0, Y: 0, W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19, 24, 25, 26, 27}
	got := sg.Ranks()
	if len(got) != len(want) {
		t.Fatalf("ranks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
	// Round trip local <-> global.
	for l := 0; l < sg.Size(); l++ {
		if back := sg.LocalRank(sg.GlobalRank(l)); back != l {
			t.Fatalf("round trip local %d -> %d", l, back)
		}
	}
	// Ranks outside the subgrid map to -1.
	if sg.LocalRank(4) != -1 || sg.LocalRank(31) != -1 {
		t.Error("outside ranks should map to -1")
	}
}

func TestSubgridLocalTopology(t *testing.T) {
	parent := Grid{Px: 8, Py: 4}
	sg, err := NewSubgrid(parent, alloc.Rect{X: 4, Y: 0, W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	local := sg.Grid()
	if local.Px != 4 || local.Py != 4 {
		t.Fatalf("local grid = %+v", local)
	}
	// Local rank 0 is parent rank 4 (Fig. 5a sibling 2 starts at column 4).
	if sg.GlobalRank(0) != 4 {
		t.Errorf("GlobalRank(0) = %d, want 4", sg.GlobalRank(0))
	}
	// Local east neighbour of local 0 is parent 5.
	le := local.Neighbor(0, East)
	if sg.GlobalRank(le) != 5 {
		t.Errorf("east neighbour global = %d, want 5", sg.GlobalRank(le))
	}
}
