package output

import (
	"fmt"
	"strings"

	"nestwrf/internal/alloc"
)

// partition fill colors (cycled), chosen for adjacent contrast.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
	"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
}

// PartitionsSVG renders the processor-grid partitions as a scalable
// vector diagram — the counterpart of the paper's Fig. 3(b). Each
// sibling's rectangle is drawn with its index, dimensions and share.
func PartitionsSVG(rects []alloc.Rect, px, py int) string {
	const cell = 16 // pixels per processor
	w, h := px*cell, py*cell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w+2, h+2, w+2, h+2)
	fmt.Fprintf(&b, `<rect x="1" y="1" width="%d" height="%d" fill="#ffffff" stroke="#333333"/>`+"\n", w, h)
	total := px * py
	for i, r := range rects {
		color := svgPalette[i%len(svgPalette)]
		x, y := 1+r.X*cell, 1+r.Y*cell
		rw, rh := r.W*cell, r.H*cell
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.55" stroke="#222222" stroke-width="1.5"/>`+"\n",
			x, y, rw, rh, color)
		share := 100 * float64(r.Area()) / float64(total)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%d: %dx%d (%.0f%%)</text>`+"\n",
			x+rw/2, y+rh/2+4, i+1, r.W, r.H, share)
	}
	// Light grid lines every 4 processors.
	for gx := 4; gx < px; gx += 4 {
		fmt.Fprintf(&b, `<line x1="%d" y1="1" x2="%d" y2="%d" stroke="#00000022"/>`+"\n", 1+gx*cell, 1+gx*cell, 1+h)
	}
	for gy := 4; gy < py; gy += 4 {
		fmt.Fprintf(&b, `<line x1="1" y1="%d" x2="%d" y2="%d" stroke="#00000022"/>`+"\n", 1+gy*cell, 1+w, 1+gy*cell)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
