// Package output implements the forecast-output substrate: a compact
// self-describing binary format for solver states (the stand-in for
// WRF's wrfout NetCDF files, whose write costs Section 4.5 of the paper
// analyzes) and a portable greymap renderer for the simultaneous
// visualization the paper's introduction motivates.
package output

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"nestwrf/internal/solver"
)

// Format constants.
const (
	magic   = "NWRF"
	version = 1
)

// Errors returned by the decoder.
var (
	ErrBadMagic    = errors.New("output: not a nestwrf forecast file")
	ErrBadVersion  = errors.New("output: unsupported format version")
	ErrBadChecksum = errors.New("output: checksum mismatch")
	ErrCorrupt     = errors.New("output: corrupt header")
)

// Snapshot is one forecast record: a domain state at a simulation step.
type Snapshot struct {
	Domain string
	Step   int
	State  *solver.State
}

// Encode writes the snapshot to w:
//
//	magic[4] version[u32] nameLen[u32] name
//	step[u64] nx[u32] ny[u32]
//	H[nx*ny]f64  HU[...]  HV[...]
//	crc32(payload)[u32]
func Encode(w io.Writer, s Snapshot) error {
	if s.State == nil || len(s.Domain) == 0 {
		return fmt.Errorf("output: snapshot needs a domain name and state")
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	hdr := []uint32{version, uint32(len(s.Domain))}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := mw.Write([]byte(s.Domain)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint64(s.Step)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(s.State.NX)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(s.State.NY)); err != nil {
		return err
	}
	for _, field := range [][]float64{s.State.H, s.State.HU, s.State.HV} {
		if err := binary.Write(mw, binary.LittleEndian, field); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Decode reads one snapshot from r, verifying the checksum.
func Decode(r io.Reader) (Snapshot, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var s Snapshot
	m := make([]byte, 4)
	if _, err := io.ReadFull(tr, m); err != nil {
		return s, err
	}
	if string(m) != magic {
		return s, ErrBadMagic
	}
	var ver, nameLen uint32
	if err := binary.Read(tr, binary.LittleEndian, &ver); err != nil {
		return s, err
	}
	if ver != version {
		return s, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	if err := binary.Read(tr, binary.LittleEndian, &nameLen); err != nil {
		return s, err
	}
	if nameLen == 0 || nameLen > 4096 {
		return s, fmt.Errorf("%w: name length %d", ErrCorrupt, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(tr, name); err != nil {
		return s, err
	}
	s.Domain = string(name)
	var step uint64
	if err := binary.Read(tr, binary.LittleEndian, &step); err != nil {
		return s, err
	}
	s.Step = int(step)
	var nx, ny uint32
	if err := binary.Read(tr, binary.LittleEndian, &nx); err != nil {
		return s, err
	}
	if err := binary.Read(tr, binary.LittleEndian, &ny); err != nil {
		return s, err
	}
	if nx == 0 || ny == 0 || uint64(nx)*uint64(ny) > 1<<28 {
		return s, fmt.Errorf("%w: dims %dx%d", ErrCorrupt, nx, ny)
	}
	st := solver.NewState(int(nx), int(ny))
	for _, field := range [][]float64{st.H, st.HU, st.HV} {
		if err := binary.Read(tr, binary.LittleEndian, field); err != nil {
			return s, err
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return s, err
	}
	if got != want {
		return s, ErrBadChecksum
	}
	s.State = st
	return s, nil
}

// EncodeSeries writes multiple snapshots back to back.
func EncodeSeries(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, s := range snaps {
		if err := Encode(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSeries reads snapshots until EOF.
func DecodeSeries(r io.Reader) ([]Snapshot, error) {
	br := bufio.NewReader(r)
	var out []Snapshot
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return out, nil
		}
		s, err := Decode(br)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

// Field selects which state variable to render.
type Field int

// Renderable fields.
const (
	FieldH Field = iota
	FieldHU
	FieldHV
	FieldSpeed // |(hu, hv)| / h
)

// values extracts the selected field.
func values(st *solver.State, f Field) []float64 {
	switch f {
	case FieldHU:
		return st.HU
	case FieldHV:
		return st.HV
	case FieldSpeed:
		out := make([]float64, len(st.H))
		for i := range out {
			if st.H[i] > 0 {
				out[i] = math.Hypot(st.HU[i], st.HV[i]) / st.H[i]
			}
		}
		return out
	default:
		return st.H
	}
}

// WritePGM renders the field as a binary 8-bit PGM greymap, min-max
// normalized — enough for any image viewer to display the forecast, the
// "simultaneous online visualization" of the paper's introduction.
func WritePGM(w io.Writer, st *solver.State, f Field) error {
	vals := values(st, f)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", st.NX, st.NY); err != nil {
		return err
	}
	// PGM rows run top to bottom; our y axis runs south to north.
	for y := st.NY - 1; y >= 0; y-- {
		for x := 0; x < st.NX; x++ {
			v := vals[st.At(x, y)]
			if err := bw.WriteByte(byte((v - lo) * scale)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ASCIIArt renders a coarse text heatmap of the field (width columns),
// handy for terminal demos and tests.
func ASCIIArt(st *solver.State, f Field, width int) string {
	if width <= 0 || width > st.NX {
		width = st.NX
	}
	height := width * st.NY / st.NX
	if height < 1 {
		height = 1
	}
	vals := values(st, f)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	ramp := []byte(" .:-=+*#%@")
	var b []byte
	for row := height - 1; row >= 0; row-- {
		y := row * st.NY / height
		for col := 0; col < width; col++ {
			x := col * st.NX / width
			v := vals[st.At(x, y)]
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
			}
			b = append(b, ramp[idx])
		}
		b = append(b, '\n')
	}
	return string(b)
}
