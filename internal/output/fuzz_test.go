package output

import (
	"bytes"
	"testing"

	"nestwrf/internal/solver"
)

// FuzzDecode hardens the forecast decoder against corrupt and
// adversarial inputs: it must never panic or allocate absurd amounts,
// only return errors. (Seed corpus runs under plain `go test`; use
// `go test -fuzz=FuzzDecode ./internal/output` for a real fuzz
// session.)
func FuzzDecode(f *testing.F) {
	// Seed with a valid record and a few mutations.
	st := solver.NewState(4, 3)
	for i := range st.H {
		st.H[i] = 1 + float64(i)*0.1
	}
	var valid bytes.Buffer
	if err := Encode(&valid, Snapshot{Domain: "seed", Step: 7, State: st}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NWRF"))
	f.Add([]byte("JUNKJUNKJUNKJUNK"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	truncated := valid.Bytes()[:valid.Len()/3]
	f.Add(truncated)
	// Huge claimed dimensions.
	huge := append([]byte("NWRF"), []byte{
		1, 0, 0, 0, // version
		1, 0, 0, 0, // name len 1
		'x',
		0, 0, 0, 0, 0, 0, 0, 0, // step
		0xFF, 0xFF, 0xFF, 0x7F, // nx huge
		0xFF, 0xFF, 0xFF, 0x7F, // ny huge
	}...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // errors are the expected outcome for garbage
		}
		// A successful decode must be internally consistent.
		if s.State == nil || s.State.NX <= 0 || s.State.NY <= 0 {
			t.Fatalf("successful decode with bad state: %+v", s)
		}
		if len(s.State.H) != s.State.NX*s.State.NY {
			t.Fatalf("field length %d for %dx%d", len(s.State.H), s.State.NX, s.State.NY)
		}
		// Re-encoding must round-trip.
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.Domain != s.Domain || s2.Step != s.Step {
			t.Fatal("round trip changed metadata")
		}
	})
}
