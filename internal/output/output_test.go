package output

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nestwrf/internal/alloc"
	"nestwrf/internal/solver"
)

func sampleState() *solver.State {
	st := solver.NewState(12, 8)
	f := solver.GaussianHill(12, 8, 6, 4, 0.5, 2)
	for y := 0; y < 8; y++ {
		for x := 0; x < 12; x++ {
			i := st.At(x, y)
			st.H[i], st.HU[i], st.HV[i] = f(x, y)
			st.HU[i] = float64(x) * 0.01
			st.HV[i] = -float64(y) * 0.02
		}
	}
	return st
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Snapshot{Domain: "pacific", Step: 42, State: sampleState()}
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != "pacific" || got.Step != 42 {
		t.Errorf("metadata = %q step %d", got.Domain, got.Step)
	}
	if got.State.NX != 12 || got.State.NY != 8 {
		t.Errorf("dims = %dx%d", got.State.NX, got.State.NY)
	}
	if d := got.State.MaxDiff(want.State); d != 0 {
		t.Errorf("fields differ by %v", d)
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Snapshot{Domain: "", State: sampleState()}); err == nil {
		t.Error("empty domain should fail")
	}
	if err := Encode(&buf, Snapshot{Domain: "x", State: nil}); err == nil {
		t.Error("nil state should fail")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(strings.NewReader("JUNKJUNKJUNK")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Snapshot{Domain: "d", Step: 1, State: sampleState()}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0xFF // flip a payload byte
	if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Snapshot{Domain: "d", Step: 1, State: sampleState()}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestDecodeCorruptHeader(t *testing.T) {
	// Valid magic and version, absurd name length.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{1, 0, 0, 0})       // version 1
	buf.Write([]byte{0xFF, 0xFF, 0, 1}) // huge name length
	if _, err := Decode(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	snaps := []Snapshot{
		{Domain: "parent", Step: 1, State: sampleState()},
		{Domain: "nest1", Step: 1, State: sampleState()},
		{Domain: "parent", Step: 2, State: sampleState()},
	}
	var buf bytes.Buffer
	if err := EncodeSeries(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d snapshots", len(got))
	}
	if got[1].Domain != "nest1" || got[2].Step != 2 {
		t.Errorf("series metadata wrong: %+v", got)
	}
}

func TestDecodeSeriesEmpty(t *testing.T) {
	got, err := DecodeSeries(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty series: %v, %v", got, err)
	}
}

func TestWritePGM(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := WritePGM(&buf, st, FieldH); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n12 8\n255\n")) {
		t.Errorf("PGM header wrong: %q", out[:12])
	}
	wantLen := len("P5\n12 8\n255\n") + 12*8
	if len(out) != wantLen {
		t.Errorf("PGM size %d, want %d", len(out), wantLen)
	}
	// A constant field renders as all zeros without dividing by zero.
	flat := solver.NewState(4, 4)
	for i := range flat.H {
		flat.H[i] = 1
	}
	buf.Reset()
	if err := WritePGM(&buf, flat, FieldSpeed); err != nil {
		t.Fatal(err)
	}
}

func TestFieldSelection(t *testing.T) {
	st := sampleState()
	if &values(st, FieldH)[0] != &st.H[0] {
		t.Error("FieldH should return H")
	}
	if &values(st, FieldHU)[0] != &st.HU[0] {
		t.Error("FieldHU should return HU")
	}
	if &values(st, FieldHV)[0] != &st.HV[0] {
		t.Error("FieldHV should return HV")
	}
	sp := values(st, FieldSpeed)
	if len(sp) != len(st.H) {
		t.Error("speed length wrong")
	}
	for i, v := range sp {
		if v < 0 {
			t.Fatalf("speed[%d] = %v negative", i, v)
		}
	}
}

func TestASCIIArt(t *testing.T) {
	st := sampleState()
	art := ASCIIArt(st, FieldH, 12)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("art has %d rows, want 8", len(lines))
	}
	for _, l := range lines {
		if len(l) != 12 {
			t.Fatalf("row width %d, want 12", len(l))
		}
	}
	// The peak (center) should be the densest glyph.
	if !strings.Contains(art, "@") {
		t.Error("no peak glyph in art")
	}
	// Degenerate width handling.
	if got := ASCIIArt(st, FieldH, 0); got == "" {
		t.Error("zero width should fall back to full resolution")
	}
	if got := ASCIIArt(st, FieldH, 1000); got == "" {
		t.Error("excess width should clamp")
	}
}

// Encode must be stable: two encodings of the same snapshot are
// byte-identical (the format has no timestamps or randomness).
func TestEncodeDeterministic(t *testing.T) {
	s := Snapshot{Domain: "d", Step: 3, State: sampleState()}
	var a, b bytes.Buffer
	if err := Encode(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encodings differ")
	}
}

func TestDecodeShortReader(t *testing.T) {
	// io.ReadFull failure path on the magic itself.
	if _, err := Decode(io.LimitReader(strings.NewReader(magic), 2)); err == nil {
		t.Error("short read should fail")
	}
}

func TestPartitionsSVG(t *testing.T) {
	rects := []alloc.Rect{
		{X: 0, Y: 0, W: 11, H: 14},
		{X: 11, Y: 0, W: 21, H: 15},
		{X: 11, Y: 15, W: 21, H: 17},
		{X: 0, Y: 14, W: 11, H: 18},
	}
	svg := PartitionsSVG(rects, 32, 32)
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	// One background rect + one per partition.
	if got := strings.Count(svg, "<rect "); got != 5 {
		t.Errorf("rect count = %d, want 5", got)
	}
	// Labels include dims and shares.
	if !strings.Contains(svg, "1: 11x14") || !strings.Contains(svg, "(15%)") {
		t.Errorf("labels missing:\n%s", svg)
	}
	// Grid lines appear.
	if !strings.Contains(svg, "<line ") {
		t.Error("grid lines missing")
	}
}
