package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Triangle indexes three vertices of a Triangulation in
// counter-clockwise order.
type Triangle struct {
	A, B, C int
}

// Vertices returns the three vertex indices of t.
func (t Triangle) Vertices() [3]int { return [3]int{t.A, t.B, t.C} }

// Triangulation is a Delaunay triangulation of a planar point set. The
// paper (Section 3.1) triangulates the 13 profiled domains in the
// (aspect-ratio, total-points) plane and interpolates inside each
// triangle with barycentric coordinates.
type Triangulation struct {
	Points    []Point
	Triangles []Triangle

	// Point-location acceleration (DESIGN.md Section 8), built lazily on
	// first use so hand-assembled Triangulations keep working: nbr holds
	// the edge-adjacent neighbour of each triangle (slot 0 across (A,B),
	// 1 across (B,C), 2 across (C,A); -1 on the hull), verts the
	// deduplicated set of vertex indices referenced by any triangle, and
	// lastTri the remembered start of the next orientation walk. walkable
	// is false when some triangle is not counter-clockwise (possible only
	// for hand-built inputs), in which case Locate always scans.
	locOnce  sync.Once
	nbr      [][3]int32
	verts    []int32
	walkable bool
	lastTri  atomic.Int32
}

// ensureLocator builds the adjacency and vertex-set caches once.
func (tr *Triangulation) ensureLocator() {
	tr.locOnce.Do(func() {
		tr.nbr = make([][3]int32, len(tr.Triangles))
		tr.walkable = true
		type side struct {
			tri  int32
			slot int8
		}
		adj := make(map[edge][]side, 3*len(tr.Triangles)/2+1)
		used := make([]bool, len(tr.Points))
		for ti, t := range tr.Triangles {
			tr.nbr[ti] = [3]int32{-1, -1, -1}
			if Orient(tr.Points[t.A], tr.Points[t.B], tr.Points[t.C]) != CounterClockwise {
				tr.walkable = false
			}
			for _, v := range t.Vertices() {
				if v >= 0 && v < len(used) {
					used[v] = true
				}
			}
			for slot, e := range triEdges(t) {
				adj[e] = append(adj[e], side{tri: int32(ti), slot: int8(slot)})
			}
		}
		for _, sides := range adj {
			if len(sides) == 2 {
				tr.nbr[sides[0].tri][sides[0].slot] = sides[1].tri
				tr.nbr[sides[1].tri][sides[1].slot] = sides[0].tri
			}
		}
		for i, u := range used {
			if u {
				tr.verts = append(tr.verts, int32(i))
			}
		}
	})
}

// triEdges returns the edges of t in neighbour-slot order.
func triEdges(t Triangle) [3]edge {
	return [3]edge{mkEdge(t.A, t.B), mkEdge(t.B, t.C), mkEdge(t.C, t.A)}
}

// ErrTooFewPoints is returned when fewer than three non-collinear
// points are supplied to Delaunay.
var ErrTooFewPoints = errors.New("geom: Delaunay needs at least 3 non-collinear points")

// ErrDuplicatePoint is returned when the input contains coincident
// points.
var ErrDuplicatePoint = errors.New("geom: duplicate input point")

// edge is an undirected edge used during Bowyer-Watson cavity
// re-triangulation.
type edge struct {
	u, v int
}

func mkEdge(u, v int) edge {
	if u > v {
		u, v = v, u
	}
	return edge{u, v}
}

// bw carries the state of an incremental Bowyer-Watson run. Instead of
// a finite super-triangle (whose vertices can fall inside the huge
// circumcircles of nearly-collinear real triples and corrupt the
// result), it uses three *ideal* ghost vertices at infinity, with all
// predicates evaluated in the limit.
type bw struct {
	pts  []Point  // real points
	dirs [3]Point // unit directions of the ideal vertices n, n+1, n+2
	n    int      // number of real points
}

func (w *bw) isIdeal(i int) bool { return i >= w.n }
func (w *bw) dir(i int) Point    { return w.dirs[i-w.n] }

func sgn(x float64) Orientation {
	switch {
	case x > 0:
		return CounterClockwise
	case x < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// rotateIdealLast cyclically rotates the triple (preserving orientation
// and incircle sign) so that all real vertices precede all ideal ones.
func (w *bw) rotateIdealLast(i, j, k int) (int, int, int) {
	for r := 0; r < 3; r++ {
		ideals := 0
		if w.isIdeal(i) {
			ideals++
		}
		if w.isIdeal(j) {
			ideals++
		}
		if w.isIdeal(k) {
			ideals++
		}
		ok := false
		switch ideals {
		case 0, 3:
			ok = true
		case 1:
			ok = w.isIdeal(k)
		case 2:
			ok = !w.isIdeal(i)
		}
		if ok {
			return i, j, k
		}
		i, j, k = j, k, i
	}
	return i, j, k
}

// orient is the limit-aware orientation predicate over vertex indices.
func (w *bw) orient(i, j, k int) Orientation {
	i, j, k = w.rotateIdealLast(i, j, k)
	switch {
	case !w.isIdeal(i) && !w.isIdeal(j) && !w.isIdeal(k):
		return Orient(w.pts[i], w.pts[j], w.pts[k])
	case !w.isIdeal(i) && !w.isIdeal(j): // (real, real, ideal)
		d := w.dir(k)
		e := w.pts[j].Sub(w.pts[i])
		return sgn(e.Cross(d))
	case !w.isIdeal(i): // (real, ideal, ideal)
		return sgn(w.dir(j).Cross(w.dir(k)))
	default: // all ideal
		u, v := w.dirs[0], w.dirs[1]
		return sgn(v.Sub(u).Cross(w.dirs[2].Sub(u)))
	}
}

// incircle reports whether real point p lies inside the (limit)
// circumdisk of the CCW triangle t.
func (w *bw) incircle(t Triangle, p Point) bool {
	a, b, c := w.rotateIdealLast(t.A, t.B, t.C)
	switch {
	case !w.isIdeal(a) && !w.isIdeal(b) && !w.isIdeal(c):
		return InCircle(w.pts[a], w.pts[b], w.pts[c], p)
	case !w.isIdeal(a) && !w.isIdeal(b):
		// Ghost (a, b, ideal): the limit circumdisk is the open half-plane
		// to the left of a->b plus the open segment (a, b).
		pa, pb := w.pts[a], w.pts[b]
		switch Orient(pa, pb, p) {
		case CounterClockwise:
			return true
		case Clockwise:
			return false
		default: // collinear: inside iff strictly within the segment
			return p.X >= math.Min(pa.X, pb.X) && p.X <= math.Max(pa.X, pb.X) &&
				p.Y >= math.Min(pa.Y, pb.Y) && p.Y <= math.Max(pa.Y, pb.Y) &&
				p != pa && p != pb
		}
	case !w.isIdeal(a):
		// Ghost (a, ideal u, ideal v): limit of the incircle determinant is
		// sign((a-p).x*(u.y-v.y) - (a-p).y*(u.x-v.x)) for unit directions.
		u, v := w.dir(b), w.dir(c)
		ax, ay := w.pts[a].X-p.X, w.pts[a].Y-p.Y
		return ax*(u.Y-v.Y)-ay*(u.X-v.X) > 0
	default:
		return true // the all-ideal triangle contains every real point
	}
}

// edgeSide returns the limit orientation of real point p with respect
// to the directed edge i->j.
func (w *bw) edgeSide(i, j int, p Point) Orientation {
	switch {
	case !w.isIdeal(i) && !w.isIdeal(j):
		return Orient(w.pts[i], w.pts[j], p)
	case !w.isIdeal(i): // real -> ideal d: lim Orient(a, M·d, p) = cross(d, p-a)
		d := w.dir(j)
		return sgn(d.Cross(p.Sub(w.pts[i])))
	case !w.isIdeal(j): // ideal d -> real a: lim Orient(M·d, a, p) = cross(d, a-p)
		d := w.dir(i)
		return sgn(d.Cross(w.pts[j].Sub(p)))
	default: // ideal -> ideal
		return sgn(w.dir(i).Cross(w.dir(j)))
	}
}

// contains reports whether real point p lies inside or on the CCW
// (possibly ghost) triangle t.
func (w *bw) contains(t Triangle, p Point) bool {
	return w.edgeSide(t.A, t.B, p) != Clockwise &&
		w.edgeSide(t.B, t.C, p) != Clockwise &&
		w.edgeSide(t.C, t.A, p) != Clockwise
}

// locateSeed finds a triangle of tris containing real point p,
// preferring an orientation walk from the remembered triangle `start`
// (limit-aware, so it traverses ghost triangles too). It falls back to
// the original exhaustive scan when the walk leaves through an
// unpaired edge or exceeds its step budget, and returns -1 only when
// even the scan finds nothing.
func (w *bw) locateSeed(tris []Triangle, adj map[edge][]int, start int, p Point) int {
	cur := start
	if cur < 0 || cur >= len(tris) {
		cur = len(tris) - 1
	}
	other := func(sides []int) int {
		for _, ti := range sides {
			if ti != cur {
				return ti
			}
		}
		return -1
	}
	for steps := 2*len(tris) + 8; steps > 0; steps-- {
		t := tris[cur]
		next := -1
		switch {
		case w.edgeSide(t.A, t.B, p) == Clockwise:
			next = other(adj[mkEdge(t.A, t.B)])
		case w.edgeSide(t.B, t.C, p) == Clockwise:
			next = other(adj[mkEdge(t.B, t.C)])
		case w.edgeSide(t.C, t.A, p) == Clockwise:
			next = other(adj[mkEdge(t.C, t.A)])
		default:
			return cur // no separating edge: contained
		}
		if next < 0 {
			break
		}
		cur = next
	}
	for ti, t := range tris {
		if w.contains(t, p) {
			return ti
		}
	}
	return -1
}

// ccw returns t reordered counter-clockwise under the limit predicate.
func (w *bw) ccw(t Triangle) Triangle {
	if w.orient(t.A, t.B, t.C) == Clockwise {
		t.B, t.C = t.C, t.B
	}
	return t
}

// Delaunay computes the Delaunay triangulation of pts using the
// incremental Bowyer-Watson algorithm with ideal ghost vertices. The
// returned triangulation references the input points by index; the
// input slice is copied.
func Delaunay(pts []Point) (*Triangulation, error) {
	if len(pts) < 3 {
		return nil, ErrTooFewPoints
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i] == pts[j] {
				return nil, fmt.Errorf("%w: index %d and %d both %v", ErrDuplicatePoint, i, j, pts[i])
			}
		}
	}

	points := make([]Point, len(pts))
	copy(points, pts)
	n := len(points)
	s := math.Sqrt(3) / 2
	w := &bw{
		pts: points,
		// Three ideal directions at 120 degrees (down-left, down-right,
		// up), in counter-clockwise order.
		dirs: [3]Point{{-s, -0.5}, {s, -0.5}, {0, 1}},
		n:    n,
	}

	tris := []Triangle{{n, n + 1, n + 2}} // the all-ideal root triangle

	// Persistent edge adjacency, maintained incrementally across
	// insertions (the previous implementation rebuilt it from scratch
	// for every inserted point). It serves both the seeding walk and the
	// cavity flood fill.
	adj := make(map[edge][]int, 16)
	addTri := func(ti int) {
		for _, e := range triEdges(tris[ti]) {
			adj[e] = append(adj[e], ti)
		}
	}
	removeTri := func(ti int) {
		for _, e := range triEdges(tris[ti]) {
			s := adj[e]
			for i, x := range s {
				if x == ti {
					s[i] = s[len(s)-1]
					s = s[:len(s)-1]
					break
				}
			}
			if len(s) == 0 {
				delete(adj, e)
			} else {
				adj[e] = s
			}
		}
	}
	renumber := func(from, to int) {
		for _, e := range triEdges(tris[to]) {
			for i, x := range adj[e] {
				if x == from {
					adj[e][i] = to
					break
				}
			}
		}
	}
	addTri(0)

	// Insert points in a deterministic order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})

	seed := 0 // remembered triangle: insertion order is spatially sorted
	for _, pi := range order {
		p := points[pi]

		// Locate a triangle containing p; it seeds the cavity. An
		// orientation walk from the previous insertion's triangle replaces
		// the former whole-slice scan; the scan remains as the fallback
		// for walks that exit through an unpaired edge or fail to settle.
		seed = w.locateSeed(tris, adj, seed, p)
		if seed < 0 {
			return nil, fmt.Errorf("geom: Delaunay insertion failed for point %v", p)
		}

		// Grow the cavity by flood fill over edge-adjacent triangles whose
		// circumdisk contains p. Restricting the cavity to the connected
		// component of the seed keeps its boundary a simple polygon even
		// when floating-point noise misclassifies a distant triangle.
		inCavity := map[int]bool{seed: true}
		queue := []int{seed}
		for len(queue) > 0 {
			ti := queue[0]
			queue = queue[1:]
			t := tris[ti]
			for _, e := range []edge{mkEdge(t.A, t.B), mkEdge(t.B, t.C), mkEdge(t.C, t.A)} {
				for _, ni := range adj[e] {
					if ni == ti || inCavity[ni] {
						continue
					}
					if w.incircle(tris[ni], p) {
						inCavity[ni] = true
						queue = append(queue, ni)
					}
				}
			}
		}

		// Boundary of the cavity: edges incident to exactly one cavity
		// triangle.
		edgeCount := make(map[edge]int)
		for ti := range inCavity {
			t := tris[ti]
			edgeCount[mkEdge(t.A, t.B)]++
			edgeCount[mkEdge(t.B, t.C)]++
			edgeCount[mkEdge(t.C, t.A)]++
		}

		// Remove cavity triangles (descending index swap-delete), keeping
		// the adjacency in sync with each removal and index move.
		bad := make([]int, 0, len(inCavity))
		for ti := range inCavity {
			bad = append(bad, ti)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(bad)))
		for _, ti := range bad {
			removeTri(ti)
			last := len(tris) - 1
			if ti != last {
				tris[ti] = tris[last]
				renumber(last, ti)
			}
			tris = tris[:last]
		}

		// Re-triangulate the cavity around p.
		for e, cnt := range edgeCount {
			if cnt != 1 {
				continue
			}
			tris = append(tris, w.ccw(Triangle{e.u, e.v, pi}))
			addTri(len(tris) - 1)
		}
		seed = len(tris) - 1 // a fresh triangle incident to the new point
	}

	// Drop ghost triangles.
	out := tris[:0]
	for _, t := range tris {
		if t.A >= n || t.B >= n || t.C >= n {
			continue
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, ErrTooFewPoints // all input points collinear
	}

	final := make([]Triangle, len(out))
	copy(final, out)
	sortTriangles(final)
	return &Triangulation{Points: points, Triangles: final}, nil
}

// triangleContains reports whether p is inside or on triangle (a,b,c).
func triangleContains(a, b, c, p Point) bool {
	if Orient(a, b, c) == Clockwise {
		b, c = c, b
	}
	return Orient(a, b, p) != Clockwise &&
		Orient(b, c, p) != Clockwise &&
		Orient(c, a, p) != Clockwise
}

// sortTriangles canonicalizes triangle order for deterministic output:
// each triangle rotated so its smallest index is first (preserving
// orientation), then sorted lexicographically.
func sortTriangles(tris []Triangle) {
	for i, t := range tris {
		tris[i] = canonical(t)
	}
	sort.Slice(tris, func(i, j int) bool {
		a, b := tris[i], tris[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
}

func canonical(t Triangle) Triangle {
	for t.B < t.A || t.C < t.A {
		t.A, t.B, t.C = t.B, t.C, t.A
	}
	return t
}

// Locate returns the index of a triangle containing p along with its
// barycentric coordinates with respect to that triangle. ok is false
// when p lies outside the triangulation's convex hull.
//
// Interior queries are answered by a remembered-triangle orientation
// walk over the edge adjacency (expected O(sqrt n) instead of the
// previous O(n) scan). Queries the walk cannot settle unambiguously —
// points on an edge or vertex, points outside the hull, or non-CCW
// hand-built triangulations — fall back to the original first-match
// linear scan, so results are identical to the scan in every case.
func (tr *Triangulation) Locate(p Point) (ti int, bc Barycentric, ok bool) {
	tr.ensureLocator()
	if tr.walkable {
		if wi, ok := tr.walk(p); ok {
			t := tr.Triangles[wi]
			a, b, c := tr.Points[t.A], tr.Points[t.B], tr.Points[t.C]
			tr.lastTri.Store(int32(wi))
			return wi, BarycentricCoords(a, b, c, p), true
		}
	}
	for i, t := range tr.Triangles {
		a, b, c := tr.Points[t.A], tr.Points[t.B], tr.Points[t.C]
		if triangleContains(a, b, c, p) {
			tr.lastTri.Store(int32(i))
			return i, BarycentricCoords(a, b, c, p), true
		}
	}
	return -1, Barycentric{}, false
}

// walk runs the orientation walk from the remembered triangle. ok is
// true only when p lies strictly inside the returned triangle — the
// unambiguous case, where the walk's answer provably equals the linear
// scan's. Boundary hits, hull exits and step-limit overruns report
// false so the caller can fall back to the scan.
func (tr *Triangulation) walk(p Point) (int, bool) {
	cur := int(tr.lastTri.Load())
	if cur < 0 || cur >= len(tr.Triangles) {
		cur = 0
	}
	for steps := 2*len(tr.Triangles) + 4; steps > 0; steps-- {
		t := tr.Triangles[cur]
		a, b, c := tr.Points[t.A], tr.Points[t.B], tr.Points[t.C]
		o0 := Orient(a, b, p)
		if o0 == Clockwise {
			if cur = int(tr.nbr[cur][0]); cur < 0 {
				return 0, false // exited through the hull
			}
			continue
		}
		o1 := Orient(b, c, p)
		if o1 == Clockwise {
			if cur = int(tr.nbr[cur][1]); cur < 0 {
				return 0, false
			}
			continue
		}
		o2 := Orient(c, a, p)
		if o2 == Clockwise {
			if cur = int(tr.nbr[cur][2]); cur < 0 {
				return 0, false
			}
			continue
		}
		// Contained; only a strict interior hit is unambiguous.
		return cur, o0 == CounterClockwise && o1 == CounterClockwise && o2 == CounterClockwise
	}
	return 0, false
}

// NearestVertex returns the index of the triangulation vertex nearest
// to p. Only vertices referenced by a triangle are considered, via the
// deduplicated vertex set (the earlier fallback visited every vertex
// once per incident triangle).
func (tr *Triangulation) NearestVertex(p Point) int {
	tr.ensureLocator()
	best, bestD := 0, math.Inf(1)
	if len(tr.verts) > 0 {
		for _, i := range tr.verts {
			if d := p.Dist2(tr.Points[i]); d < bestD {
				best, bestD = int(i), d
			}
		}
		return best
	}
	for i, q := range tr.Points {
		if d := p.Dist2(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Hull returns the convex hull of the triangulated points in
// counter-clockwise order.
func (tr *Triangulation) Hull() []Point { return ConvexHull(tr.Points) }

// Validate checks the structural invariants of the triangulation:
// vertex indices in range, non-degenerate CCW triangles, and the empty
// circumcircle property (no input point strictly inside any triangle's
// circumcircle). It returns the first violation found.
func (tr *Triangulation) Validate() error {
	n := len(tr.Points)
	for ti, t := range tr.Triangles {
		for _, v := range t.Vertices() {
			if v < 0 || v >= n {
				return fmt.Errorf("triangle %d: vertex index %d out of range [0,%d)", ti, v, n)
			}
		}
		a, b, c := tr.Points[t.A], tr.Points[t.B], tr.Points[t.C]
		if Orient(a, b, c) != CounterClockwise {
			return fmt.Errorf("triangle %d (%v %v %v): not counter-clockwise", ti, a, b, c)
		}
		for pi, p := range tr.Points {
			if pi == t.A || pi == t.B || pi == t.C {
				continue
			}
			if InCircle(a, b, c, p) {
				return fmt.Errorf("triangle %d: point %d %v violates empty-circumcircle property", ti, pi, p)
			}
		}
	}
	return nil
}
