// Package geom provides the 2D computational-geometry substrate used by
// the performance-prediction model of Malakar et al. (SC 2012): robust
// orientation and in-circle predicates, convex hulls, Delaunay
// triangulations and barycentric interpolation.
//
// Points live in the (aspect-ratio, total-points) feature plane of the
// paper's Section 3.1, but the package is fully general.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{x, y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Orientation classifies the turn formed by three points.
type Orientation int

// Turn directions returned by Orient.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// orientEps bounds the relative rounding error of the 2x2 determinant
// used by Orient. Determinants smaller than the scaled epsilon are
// treated as zero so that nearly-collinear inputs are classified
// deterministically.
const orientEps = 1e-12

// Orient returns the orientation of the triangle (a, b, c):
// CounterClockwise if the points make a left turn, Clockwise for a
// right turn, and Collinear if the signed area is (numerically) zero.
func Orient(a, b, c Point) Orientation {
	det := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Scale tolerance by the magnitude of the inputs so the predicate is
	// stable for both tiny and huge coordinates.
	scale := math.Abs((b.X-a.X)*(c.Y-a.Y)) + math.Abs((b.Y-a.Y)*(c.X-a.X))
	if math.Abs(det) <= orientEps*scale {
		return Collinear
	}
	if det > 0 {
		return CounterClockwise
	}
	return Clockwise
}

// SignedArea returns the signed area of triangle (a, b, c). The result
// is positive when the vertices are in counter-clockwise order.
func SignedArea(a, b, c Point) float64 {
	return 0.5 * ((b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X))
}

// InCircle reports whether point d lies strictly inside the
// circumcircle of the counter-clockwise triangle (a, b, c).
func InCircle(a, b, c, d Point) bool {
	// Translate so d is the origin; the predicate is the sign of a 3x3
	// determinant.
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y

	al := ax*ax + ay*ay
	bl := bx*bx + by*by
	cl := cx*cx + cy*cy

	det := al*(bx*cy-by*cx) - bl*(ax*cy-ay*cx) + cl*(ax*by-ay*bx)
	scale := math.Abs(al*(bx*cy)) + math.Abs(al*(by*cx)) +
		math.Abs(bl*(ax*cy)) + math.Abs(bl*(ay*cx)) +
		math.Abs(cl*(ax*by)) + math.Abs(cl*(ay*bx))
	if math.Abs(det) <= orientEps*scale {
		return false // on or numerically on the circle: not strictly inside
	}
	return det > 0
}

// Circumcenter returns the circumcenter of triangle (a, b, c) and the
// squared circumradius. ok is false for (nearly) degenerate triangles.
func Circumcenter(a, b, c Point) (center Point, r2 float64, ok bool) {
	d := 2 * ((a.X)*(b.Y-c.Y) + (b.X)*(c.Y-a.Y) + (c.X)*(a.Y-b.Y))
	if math.Abs(d) < 1e-300 {
		return Point{}, 0, false
	}
	al := a.X*a.X + a.Y*a.Y
	bl := b.X*b.X + b.Y*b.Y
	cl := c.X*c.X + c.Y*c.Y
	ux := (al*(b.Y-c.Y) + bl*(c.Y-a.Y) + cl*(a.Y-b.Y)) / d
	uy := (al*(c.X-b.X) + bl*(a.X-c.X) + cl*(b.X-a.X)) / d
	center = Point{ux, uy}
	return center, center.Dist2(a), true
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max Point
}

// Bounds returns the bounding box of pts. It panics if pts is empty.
func Bounds(pts []Point) BBox {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	bb := BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		bb.Min.X = math.Min(bb.Min.X, p.X)
		bb.Min.Y = math.Min(bb.Min.Y, p.Y)
		bb.Max.X = math.Max(bb.Max.X, p.X)
		bb.Max.Y = math.Max(bb.Max.Y, p.Y)
	}
	return bb
}

// Width returns the x extent of the box.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the y extent of the box.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center of the box.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}
