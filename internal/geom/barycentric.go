package geom

import "math"

// Barycentric holds the barycentric coordinates (λ1, λ2, λ3) of a point
// with respect to a triangle, as used by Eqs. (1)-(4) of the paper.
// For a point inside the triangle all three are in [0, 1] and they sum
// to 1.
//
// Note: Eq. (3) of the published text reads "λ3 = λ1 − λ2", a typo for
// the standard identity λ3 = 1 − λ1 − λ2, which is what both the
// original barycentric-coordinate definition (the paper cites Coxeter)
// and a correct interpolation require; we implement the latter.
type Barycentric struct {
	L1, L2, L3 float64
}

// BarycentricCoords returns the barycentric coordinates of p with
// respect to the triangle (a, b, c), following Eqs. (1)-(2) of the
// paper with λ3 = 1 − λ1 − λ2.
func BarycentricCoords(a, b, c, p Point) Barycentric {
	den := (b.Y-c.Y)*(a.X-c.X) + (c.X-b.X)*(a.Y-c.Y)
	if den == 0 {
		// Degenerate triangle: fall back to nearest-vertex weights.
		d1, d2, d3 := p.Dist2(a), p.Dist2(b), p.Dist2(c)
		switch {
		case d1 <= d2 && d1 <= d3:
			return Barycentric{1, 0, 0}
		case d2 <= d3:
			return Barycentric{0, 1, 0}
		default:
			return Barycentric{0, 0, 1}
		}
	}
	l1 := ((b.Y-c.Y)*(p.X-c.X) + (c.X-b.X)*(p.Y-c.Y)) / den
	l2 := ((c.Y-a.Y)*(p.X-c.X) + (a.X-c.X)*(p.Y-c.Y)) / den
	return Barycentric{L1: l1, L2: l2, L3: 1 - l1 - l2}
}

// Inside reports whether the coordinates describe a point inside or on
// the triangle, within tolerance eps.
func (bc Barycentric) Inside(eps float64) bool {
	return bc.L1 >= -eps && bc.L2 >= -eps && bc.L3 >= -eps
}

// Interpolate linearly combines the three vertex values with the
// barycentric weights, implementing Eq. (4) of the paper:
//
//	T_D = λ1·T1 + λ2·T2 + λ3·T3.
func (bc Barycentric) Interpolate(v1, v2, v3 float64) float64 {
	return bc.L1*v1 + bc.L2*v2 + bc.L3*v3
}

// Clamp projects slightly-outside coordinates back onto the triangle by
// clamping negatives to zero and renormalizing. Useful when a query
// point sits on an edge shared with floating-point noise.
func (bc Barycentric) Clamp() Barycentric {
	l1 := math.Max(bc.L1, 0)
	l2 := math.Max(bc.L2, 0)
	l3 := math.Max(bc.L3, 0)
	s := l1 + l2 + l3
	if s == 0 {
		return Barycentric{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	return Barycentric{l1 / s, l2 / s, l3 / s}
}
