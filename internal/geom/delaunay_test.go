package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDelaunaySquare(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 2 {
		t.Fatalf("square should triangulate into 2 triangles, got %d", len(tr.Triangles))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunaySinglePointInside(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), Pt(2, 2)}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 4 {
		t.Fatalf("want 4 triangles around center point, got %d", len(tr.Triangles))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunayErrors(t *testing.T) {
	if _, err := Delaunay([]Point{Pt(0, 0), Pt(1, 1)}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("2 points: err = %v, want ErrTooFewPoints", err)
	}
	if _, err := Delaunay([]Point{Pt(0, 0), Pt(1, 1), Pt(0, 0)}); !errors.Is(err, ErrDuplicatePoint) {
		t.Errorf("duplicates: err = %v, want ErrDuplicatePoint", err)
	}
	if _, err := Delaunay([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}); err == nil {
		t.Error("all-collinear input should fail")
	}
}

// Euler-style count: a Delaunay triangulation of n points with h hull
// vertices (no interior collinear degeneracies) has 2n - h - 2 triangles.
func TestDelaunayTriangleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		pts := randomPoints(rng, n)
		tr, err := Delaunay(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// h counts every point on the hull boundary, including points
		// collinear on hull edges (which the corner-only hull drops).
		hull := ConvexHull(pts)
		h := 0
		for _, p := range pts {
			onBoundary := false
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				if Orient(a, b, p) == Collinear &&
					p.X >= math.Min(a.X, b.X) && p.X <= math.Max(a.X, b.X) &&
					p.Y >= math.Min(a.Y, b.Y) && p.Y <= math.Max(a.Y, b.Y) {
					onBoundary = true
					break
				}
			}
			if onBoundary {
				h++
			}
		}
		want := 2*n - h - 2
		if len(tr.Triangles) != want {
			t.Errorf("trial %d: n=%d h=%d: got %d triangles, want %d",
				trial, n, h, len(tr.Triangles), want)
		}
	}
}

func TestDelaunayEmptyCircumcircleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(rng, 5+rng.Intn(45))
		tr, err := Delaunay(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// Total triangulated area must equal the convex hull area: the
// triangulation covers the hull exactly, with no overlaps or gaps.
func TestDelaunayAreaCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(rng, 5+rng.Intn(30))
		tr, err := Delaunay(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sum float64
		for _, tri := range tr.Triangles {
			sum += math.Abs(SignedArea(tr.Points[tri.A], tr.Points[tri.B], tr.Points[tri.C]))
		}
		hullArea := PolygonArea(ConvexHull(pts))
		if math.Abs(sum-hullArea) > 1e-6*hullArea {
			t.Errorf("trial %d: triangulated area %v != hull area %v", trial, sum, hullArea)
		}
	}
}

func TestLocateInsideAndOutside(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10), Pt(5, 5)}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	ti, bc, ok := tr.Locate(Pt(5, 2))
	if !ok {
		t.Fatal("interior point not located")
	}
	if ti < 0 || ti >= len(tr.Triangles) {
		t.Fatalf("triangle index %d out of range", ti)
	}
	if s := bc.L1 + bc.L2 + bc.L3; math.Abs(s-1) > 1e-12 {
		t.Errorf("barycentric sum = %v", s)
	}
	if !bc.Inside(1e-9) {
		t.Errorf("barycentric %v should be inside", bc)
	}
	if _, _, ok := tr.Locate(Pt(20, 20)); ok {
		t.Error("outside point should not be located")
	}
}

func TestLocateEveryVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 25)
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Points {
		_, bc, ok := tr.Locate(p)
		if !ok {
			t.Fatalf("vertex %d %v not located in own triangulation", i, p)
		}
		if !bc.Inside(1e-9) {
			t.Errorf("vertex %d: coords %v not inside", i, bc)
		}
	}
}

func TestLocateRandomInteriorPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 30)
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	hull := ConvexHull(pts)
	located, tried := 0, 0
	for i := 0; i < 200; i++ {
		q := Pt(rng.Float64()*100, rng.Float64()*100)
		inHull := InConvexPolygon(q, hull)
		_, _, ok := tr.Locate(q)
		// Boundary-of-hull points can disagree by rounding; only check
		// points clearly inside.
		if inHull {
			tried++
			if ok {
				located++
			}
		} else if ok {
			t.Errorf("point %v outside hull but located", q)
		}
	}
	if tried > 0 && located < tried {
		t.Errorf("located %d/%d interior points", located, tried)
	}
}

func TestNearestVertex(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(0, 10), Pt(10, 10)}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.NearestVertex(Pt(1, 1)); got != 0 {
		t.Errorf("NearestVertex(1,1) = %d, want 0", got)
	}
	if got := tr.NearestVertex(Pt(9, 9)); tr.Points[got] != Pt(10, 10) {
		t.Errorf("NearestVertex(9,9) = %v", tr.Points[got])
	}
}

func TestTriangulationHull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 20)
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Hull()), len(ConvexHull(pts)); got != want {
		t.Errorf("Hull size %d, want %d", got, want)
	}
}

func TestBarycentricIdentities(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(4, 0), Pt(0, 4)
	cases := []struct {
		p    Point
		want Barycentric
	}{
		{a, Barycentric{1, 0, 0}},
		{b, Barycentric{0, 1, 0}},
		{c, Barycentric{0, 0, 1}},
		{Pt(4.0/3, 4.0/3), Barycentric{1.0 / 3, 1.0 / 3, 1.0 / 3}},
	}
	for _, tc := range cases {
		got := BarycentricCoords(a, b, c, tc.p)
		if math.Abs(got.L1-tc.want.L1) > 1e-12 ||
			math.Abs(got.L2-tc.want.L2) > 1e-12 ||
			math.Abs(got.L3-tc.want.L3) > 1e-12 {
			t.Errorf("BarycentricCoords(%v) = %+v, want %+v", tc.p, got, tc.want)
		}
	}
}

// Barycentric interpolation must reproduce any affine function exactly.
func TestBarycentricReproducesAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(p Point) float64 { return 3*p.X - 2*p.Y + 7 }
	for trial := 0; trial < 100; trial++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		if Orient(a, b, c) == Collinear {
			continue
		}
		// Random point as a convex combination.
		w1, w2 := rng.Float64(), rng.Float64()
		if w1+w2 > 1 {
			w1, w2 = 1-w1, 1-w2
		}
		p := a.Scale(w1).Add(b.Scale(w2)).Add(c.Scale(1 - w1 - w2))
		bc := BarycentricCoords(a, b, c, p)
		got := bc.Interpolate(f(a), f(b), f(c))
		if math.Abs(got-f(p)) > 1e-8 {
			t.Fatalf("trial %d: interpolated %v, want %v", trial, got, f(p))
		}
	}
}

func TestBarycentricDegenerateTriangle(t *testing.T) {
	// All three vertices collinear: falls back to nearest vertex.
	bc := BarycentricCoords(Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(0.1, 0.1))
	if bc != (Barycentric{1, 0, 0}) {
		t.Errorf("nearest-vertex fallback = %+v", bc)
	}
	bc = BarycentricCoords(Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(1.9, 1.9))
	if bc != (Barycentric{0, 0, 1}) {
		t.Errorf("nearest-vertex fallback = %+v", bc)
	}
}

func TestBarycentricClamp(t *testing.T) {
	bc := Barycentric{-0.1, 0.6, 0.5}.Clamp()
	if bc.L1 != 0 {
		t.Errorf("clamped L1 = %v", bc.L1)
	}
	if s := bc.L1 + bc.L2 + bc.L3; math.Abs(s-1) > 1e-12 {
		t.Errorf("clamped sum = %v", s)
	}
	// Pathological all-negative input.
	bc = Barycentric{-1, -1, -1}.Clamp()
	if math.Abs(bc.L1-1.0/3) > 1e-12 {
		t.Errorf("all-negative clamp = %+v", bc)
	}
}

func TestTriangleCanonical(t *testing.T) {
	tr := canonical(Triangle{5, 1, 3})
	if tr != (Triangle{1, 3, 5}) {
		t.Errorf("canonical = %+v", tr)
	}
	// Orientation (cyclic order) is preserved.
	tr = canonical(Triangle{3, 5, 1})
	if tr != (Triangle{1, 3, 5}) {
		t.Errorf("canonical = %+v", tr)
	}
}

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, 0, n)
	seen := make(map[Point]bool)
	for len(pts) < n {
		p := Pt(math.Round(rng.Float64()*10000)/100, math.Round(rng.Float64()*10000)/100)
		if seen[p] {
			continue
		}
		seen[p] = true
		pts = append(pts, p)
	}
	return pts
}

func BenchmarkDelaunay100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Delaunay(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 100)
	tr, err := Delaunay(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Locate(Pt(50, 50))
	}
}
