package geom

import (
	"math/rand"
	"testing"
)

// randomTriangulation builds a Delaunay triangulation of n random
// points in the unit square.
func randomTriangulation(t *testing.T, rng *rand.Rand, n int) *Triangulation {
	t.Helper()
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// locateByScan is the pre-PR-4 reference: first triangle (in slice
// order) containing p.
func locateByScan(tr *Triangulation, p Point) (int, bool) {
	for i, tri := range tr.Triangles {
		a, b, c := tr.Points[tri.A], tr.Points[tri.B], tr.Points[tri.C]
		if triangleContains(a, b, c, p) {
			return i, true
		}
	}
	return -1, false
}

// TestLocateOutsideHull is the regression test for out-of-hull
// queries: the orientation walk exits through a hull edge and must
// still report "not found", exactly like the scan, for points beyond
// every side of the hull.
func TestLocateOutsideHull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTriangulation(t, rng, 60)
	outside := []Point{
		Pt(-5, 0.5), Pt(5, 0.5), Pt(0.5, -5), Pt(0.5, 5),
		Pt(-3, -3), Pt(3, 3), Pt(-0.001, -0.001), Pt(1.5, 0.5),
	}
	for _, p := range outside {
		ti, _, ok := tr.Locate(p)
		if ok {
			t.Errorf("Locate(%v) = triangle %d, want not found (point is outside the hull)", p, ti)
		}
		// The walk must not poison the remembered triangle: an interior
		// query right after an out-of-hull miss still succeeds.
		q := tr.Points[tr.Triangles[0].A].
			Add(tr.Points[tr.Triangles[0].B]).
			Add(tr.Points[tr.Triangles[0].C]).Scale(1.0 / 3.0)
		if _, _, ok := tr.Locate(q); !ok {
			t.Fatalf("interior Locate(%v) failed after out-of-hull query %v", q, p)
		}
	}
}

// TestLocateMatchesScan is the walk-vs-scan agreement property test:
// for random interior, boundary-ish and exterior queries, Locate must
// return exactly what the original linear scan returned.
func TestLocateMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		tr := randomTriangulation(t, rng, 20+trial*30)
		for q := 0; q < 400; q++ {
			// Mix of in-square points and points well outside it.
			p := Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
			if q%7 == 0 {
				// Exact vertex hits exercise the boundary fallback.
				p = tr.Points[rng.Intn(len(tr.Points))]
			}
			wantTi, wantOK := locateByScan(tr, p)
			gotTi, bc, gotOK := tr.Locate(p)
			if gotOK != wantOK || gotTi != wantTi {
				t.Fatalf("trial %d: Locate(%v) = (%d, %v), scan = (%d, %v)",
					trial, p, gotTi, gotOK, wantTi, wantOK)
			}
			if gotOK {
				tri := tr.Triangles[gotTi]
				a, b, c := tr.Points[tri.A], tr.Points[tri.B], tr.Points[tri.C]
				want := BarycentricCoords(a, b, c, p)
				if bc != want {
					t.Fatalf("trial %d: Locate(%v) barycentric %v, want %v", trial, p, bc, want)
				}
			}
		}
	}
}

// TestNearestVertexDeduped checks NearestVertex agrees with a direct
// minimum over the points, and that the vertex set it iterates is
// deduplicated (each referenced vertex appears exactly once).
func TestNearestVertexDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := randomTriangulation(t, rng, 40)
	tr.ensureLocator()

	seen := map[int32]bool{}
	for _, v := range tr.verts {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in the deduplicated vertex set", v)
		}
		seen[v] = true
	}
	referenced := map[int32]bool{}
	for _, tri := range tr.Triangles {
		for _, v := range tri.Vertices() {
			referenced[int32(v)] = true
		}
	}
	if len(seen) != len(referenced) {
		t.Fatalf("vertex set has %d entries, triangles reference %d vertices", len(seen), len(referenced))
	}

	for q := 0; q < 200; q++ {
		p := Pt(rng.Float64()*3-1, rng.Float64()*3-1)
		got := tr.NearestVertex(p)
		best, bestD := -1, 0.0
		for v := range referenced {
			if d := p.Dist2(tr.Points[v]); best < 0 || d < bestD {
				best, bestD = int(v), d
			}
		}
		if p.Dist2(tr.Points[got]) != bestD {
			t.Fatalf("NearestVertex(%v) = %d (dist2 %v), want dist2 %v",
				p, got, p.Dist2(tr.Points[got]), bestD)
		}
	}
}
