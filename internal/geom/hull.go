package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone-chain algorithm. Collinear points on hull
// edges are dropped. The input slice is not modified. Degenerate inputs
// (fewer than three non-collinear points) return the distinct extreme
// points in sorted order.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		out := make([]Point, len(uniq))
		copy(out, uniq)
		return out
	}

	hull := make([]Point, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point equals the first
}

// InConvexPolygon reports whether p lies inside or on the boundary of
// the convex polygon poly given in counter-clockwise order.
func InConvexPolygon(p Point, poly []Point) bool {
	n := len(poly)
	switch n {
	case 0:
		return false
	case 1:
		return p == poly[0]
	case 2:
		// On-segment test.
		if Orient(poly[0], poly[1], p) != Collinear {
			return false
		}
		bb := Bounds(poly)
		return bb.Contains(p)
	}
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if Orient(a, b, p) == Clockwise {
			return false
		}
	}
	return true
}

// PolygonArea returns the (positive) area of a simple polygon.
func PolygonArea(poly []Point) float64 {
	n := len(poly)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += poly[i].Cross(poly[j])
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}
