package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOrientBasic(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orient(a, b, Pt(0, 1)); got != CounterClockwise {
		t.Errorf("left turn: got %v, want CounterClockwise", got)
	}
	if got := Orient(a, b, Pt(0, -1)); got != Clockwise {
		t.Errorf("right turn: got %v, want Clockwise", got)
	}
	if got := Orient(a, b, Pt(2, 0)); got != Collinear {
		t.Errorf("collinear: got %v, want Collinear", got)
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return Orient(a, b, c) == -Orient(a, c, b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestOrientCyclicInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		o := Orient(a, b, c)
		return o == Orient(b, c, a) && o == Orient(c, a, b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSignedAreaMatchesOrient(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		area := SignedArea(a, b, c)
		switch Orient(a, b, c) {
		case CounterClockwise:
			return area > 0
		case Clockwise:
			return area < 0
		default:
			return true // near-zero area tolerated
		}
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, 2)
	if got := p.Sub(q); got != Pt(2, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != Pt(4, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 2 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(0, 0).Dist(p); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Pt(0, 0).Dist2(p); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestInCircleUnitCircle(t *testing.T) {
	// CCW triangle inscribed in the unit circle centered at origin.
	a := Pt(1, 0)
	b := Pt(-0.5, math.Sqrt(3)/2)
	c := Pt(-0.5, -math.Sqrt(3)/2)
	if !InCircle(a, b, c, Pt(0, 0)) {
		t.Error("origin should be inside the unit circumcircle")
	}
	if InCircle(a, b, c, Pt(2, 0)) {
		t.Error("(2,0) should be outside the unit circumcircle")
	}
	if InCircle(a, b, c, Pt(0, 1)) {
		t.Error("point on the circle should not be strictly inside")
	}
}

func TestCircumcenter(t *testing.T) {
	ctr, r2, ok := Circumcenter(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok {
		t.Fatal("circumcenter not found")
	}
	if math.Abs(ctr.X-1) > 1e-12 || math.Abs(ctr.Y-1) > 1e-12 {
		t.Errorf("center = %v, want (1,1)", ctr)
	}
	if math.Abs(r2-2) > 1e-12 {
		t.Errorf("r2 = %v, want 2", r2)
	}
	if _, _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("degenerate triangle should fail")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if Orient(a, b, c) == Collinear {
			return true
		}
		ctr, r2, ok := Circumcenter(a, b, c)
		if !ok {
			return true
		}
		tol := 1e-6 * (1 + r2)
		return math.Abs(ctr.Dist2(a)-r2) < tol &&
			math.Abs(ctr.Dist2(b)-r2) < tol &&
			math.Abs(ctr.Dist2(c)-r2) < tol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestBounds(t *testing.T) {
	bb := Bounds([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if bb.Min != Pt(-2, -1) || bb.Max != Pt(4, 5) {
		t.Errorf("Bounds = %+v", bb)
	}
	if bb.Width() != 6 || bb.Height() != 6 {
		t.Errorf("Width/Height = %v/%v", bb.Width(), bb.Height())
	}
	if !bb.Contains(Pt(0, 0)) || bb.Contains(Pt(10, 0)) {
		t.Error("Contains wrong")
	}
	if bb.Center() != Pt(1, 2) {
		t.Errorf("Center = %v", bb.Center())
	}
}

func TestBoundsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty point set")
		}
	}()
	Bounds(nil)
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1), Pt(0.5, 0.5), Pt(0.25, 0.75)}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(hull), hull)
	}
	area := PolygonArea(hull)
	if math.Abs(area-1) > 1e-12 {
		t.Errorf("hull area = %v, want 1", area)
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	hull := ConvexHull(pts)
	if len(hull) != 2 {
		t.Fatalf("collinear hull size = %d, want 2: %v", len(hull), hull)
	}
}

func TestConvexHullSmall(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Error("empty input should return nil")
	}
	if h := ConvexHull([]Point{Pt(1, 2)}); len(h) != 1 {
		t.Errorf("single point hull = %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 2), Pt(1, 2)}); len(h) != 1 {
		t.Errorf("duplicate point hull = %v", h)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for _, p := range pts {
			if !InConvexPolygon(p, hull) {
				t.Fatalf("trial %d: point %v outside its own hull %v", trial, p, hull)
			}
		}
		// Hull must be convex: every consecutive triple turns left or is straight.
		for i := range hull {
			a, b, c := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
			if Orient(a, b, c) == Clockwise {
				t.Fatalf("trial %d: hull not convex at %v %v %v", trial, a, b, c)
			}
		}
	}
}

func TestInConvexPolygonEdgeCases(t *testing.T) {
	if InConvexPolygon(Pt(0, 0), nil) {
		t.Error("empty polygon contains nothing")
	}
	if !InConvexPolygon(Pt(1, 1), []Point{Pt(1, 1)}) {
		t.Error("single point polygon should contain itself")
	}
	seg := []Point{Pt(0, 0), Pt(2, 2)}
	if !InConvexPolygon(Pt(1, 1), seg) {
		t.Error("segment midpoint")
	}
	if InConvexPolygon(Pt(1, 0), seg) {
		t.Error("off-segment point")
	}
	if InConvexPolygon(Pt(3, 3), seg) {
		t.Error("beyond segment end")
	}
}

func TestPolygonAreaDegenerate(t *testing.T) {
	if PolygonArea([]Point{Pt(0, 0), Pt(1, 1)}) != 0 {
		t.Error("degenerate polygon area should be 0")
	}
	// Clockwise square still yields positive area.
	sq := []Point{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}
	if got := PolygonArea(sq); math.Abs(got-1) > 1e-12 {
		t.Errorf("clockwise square area = %v", got)
	}
}

func quickCfg() *quick.Config {
	rng := rand.New(rand.NewSource(7))
	return &quick.Config{
		MaxCount: 300,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64()*200 - 100)
			}
		},
	}
}
