package steer

import (
	"errors"
	"math"
	"testing"

	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
	"nestwrf/internal/workload"
)

func opts(t *testing.T, alloc driver.AllocPolicy) driver.Options {
	t.Helper()
	pred, err := driver.TrainPredictor(machine.BGL())
	if err != nil {
		t.Fatal(err)
	}
	return driver.Options{
		Machine:   machine.BGL(),
		Ranks:     1024,
		MapKind:   driver.MapSequential,
		Alloc:     alloc,
		Predictor: pred,
	}
}

func TestValidation(t *testing.T) {
	cfg := workload.Table2Config()
	if _, err := (Controller{}).Run(cfg, opts(t, driver.AllocPredicted)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("zero controller: %v", err)
	}
	leaf := nest.Root("leaf", 100, 100)
	if _, err := DefaultController().Run(leaf, opts(t, driver.AllocPredicted)); !errors.Is(err, ErrNoSiblings) {
		t.Errorf("no siblings: %v", err)
	}
}

// Starting from the already-good predicted weights, steering should
// converge quickly and not regress.
func TestSteeringFromPredictedWeights(t *testing.T) {
	cfg := workload.Table2Config()
	out, err := DefaultController().Run(cfg, opts(t, driver.AllocPredicted))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	first := out.Rounds[0].IterTime
	if out.Final.IterTime > first*1.02 {
		t.Errorf("steering regressed: %.3f -> %.3f", first, out.Final.IterTime)
	}
	t.Logf("rounds=%d converged=%v imbalance %.3f -> %.3f",
		len(out.Rounds), out.Converged,
		out.Rounds[0].Imbalance, out.Rounds[len(out.Rounds)-1].Imbalance)
}

// The headline steering demo: bootstrap from the bad equal-split
// allocation and let measurements correct it. Steering must recover
// most of the gap to the predicted allocation.
func TestSteeringRecoversFromBadBootstrap(t *testing.T) {
	cfg := workload.Table2Config()

	// Reference: the predicted allocation's one-shot time.
	ref, err := driver.Run(cfg, func() driver.Options {
		o := opts(t, driver.AllocPredicted)
		o.Strategy = driver.Concurrent
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}

	ctrl := DefaultController()
	ctrl.MaxRounds = 6
	out, err := ctrl.Run(cfg, opts(t, driver.AllocEqual))
	if err != nil {
		t.Fatal(err)
	}
	start := out.Rounds[0].IterTime
	final := out.Final.IterTime
	t.Logf("equal-split %.3f -> steered %.3f (predicted reference %.3f, %d rounds)",
		start, final, ref.IterTime, len(out.Rounds))
	if final >= start {
		t.Errorf("steering did not improve: %.3f -> %.3f", start, final)
	}
	// Recover at least 60% of the gap between equal-split and predicted.
	gap := start - ref.IterTime
	recovered := start - final
	if gap > 0 && recovered < 0.6*gap {
		t.Errorf("recovered only %.3f of the %.3f gap", recovered, gap)
	}
}

// Imbalance must be non-increasing-ish across rounds (with damping it
// may plateau, but the final round should not be worse than the first).
func TestImbalanceShrinks(t *testing.T) {
	cfg := workload.Table2Config()
	ctrl := DefaultController()
	ctrl.MaxRounds = 6
	out, err := ctrl.Run(cfg, opts(t, driver.AllocNaivePoints))
	if err != nil {
		t.Fatal(err)
	}
	first := out.Rounds[0].Imbalance
	last := out.Rounds[len(out.Rounds)-1].Imbalance
	if last > first {
		t.Errorf("imbalance grew: %.3f -> %.3f", first, last)
	}
}

func TestOutcomeImprovementGuard(t *testing.T) {
	if (Outcome{}).ImprovementPct() != 0 {
		t.Error("empty outcome should give 0")
	}
}

// All-zero sibling phase times must not produce NaN weights: the
// controller falls back to uniform weights instead of dividing by a
// zero sum (which used to poison FixedWeights in the next round).
func TestMeasuredWeightsZeroPhaseTimes(t *testing.T) {
	res := driver.Result{
		Siblings: []driver.DomainMetrics{
			{Name: "a", Ranks: 256, PhaseTime: 0},
			{Name: "b", Ranks: 512, PhaseTime: 0},
			{Name: "c", Ranks: 256, PhaseTime: 0},
		},
	}
	w := measuredWeights(res)
	if len(w) != 3 {
		t.Fatalf("got %d weights", len(w))
	}
	var sum float64
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("weight %d is %v", i, v)
		}
		if v != w[0] {
			t.Errorf("weights not uniform: %v", w)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

// A steering session must report the best-observed round as its final
// result: the outcome's iteration time equals the minimum over the
// recorded rounds, and BestRound points at it.
func TestFinalIsBestObservedRound(t *testing.T) {
	cfg := workload.Table2Config()
	ctrl := DefaultController()
	ctrl.MaxRounds = 6
	out, err := ctrl.Run(cfg, opts(t, driver.AllocEqual))
	if err != nil {
		t.Fatal(err)
	}
	best := out.Rounds[0].IterTime
	for _, r := range out.Rounds {
		if r.IterTime < best {
			best = r.IterTime
		}
	}
	if out.Final.IterTime != best {
		t.Errorf("Final.IterTime %.6f, best observed %.6f", out.Final.IterTime, best)
	}
	if out.BestRound < 0 || out.BestRound >= len(out.Rounds) ||
		out.Rounds[out.BestRound].IterTime != best {
		t.Errorf("BestRound %d does not point at the best round", out.BestRound)
	}
	if out.ImprovementPct() < 0 {
		t.Errorf("improvement went negative: %.3f%%", out.ImprovementPct())
	}
}
