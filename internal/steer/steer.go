// Package steer implements closed-loop allocation steering, the
// paper's third future-work item ("We also plan to simultaneously
// steer these multiple nested simulations", Section 6): instead of
// trusting the performance model once, the controller observes the
// siblings' measured phase times from the running simulation and
// re-partitions the processor grid whenever the imbalance exceeds a
// threshold — predictions bootstrap the run, measurements refine it.
package steer

import (
	"errors"
	"fmt"

	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
	"nestwrf/internal/stats"
)

// Controller tunes the sibling allocation from observed phase times.
type Controller struct {
	// Threshold is the relative imbalance (max-min over mean of sibling
	// phase times) above which the controller re-partitions. Typical:
	// 0.05-0.15.
	Threshold float64
	// MaxRounds bounds the number of correction rounds.
	MaxRounds int
	// Damping blends new weights with old: w' = (1-d)*measured + d*old.
	// Zero means full correction each round.
	Damping float64
}

// DefaultController returns a controller with a 5% threshold, up to 5
// rounds and light damping.
func DefaultController() Controller {
	return Controller{Threshold: 0.05, MaxRounds: 5, Damping: 0.25}
}

// Round is one steering step's record.
type Round struct {
	// Weights used for this round's allocation.
	Weights []float64
	// IterTime and Imbalance observed under those weights.
	IterTime  float64
	Imbalance float64
}

// Outcome reports a steering session.
type Outcome struct {
	Rounds []Round
	// Final is the best-observed round's result: the lowest iteration
	// time seen across the session. A steering step that overshoots in
	// the last round therefore cannot drag the reported outcome below
	// an earlier, faster round (Rounds keeps the full history).
	Final driver.Result
	// BestRound is the index into Rounds that Final came from.
	BestRound int
	// Converged reports whether the imbalance fell below the threshold
	// within MaxRounds.
	Converged bool
}

// ImprovementPct returns the gain of the final round over the first.
func (o Outcome) ImprovementPct() float64 {
	if len(o.Rounds) == 0 {
		return 0
	}
	return stats.Improvement(o.Rounds[0].IterTime, o.Final.IterTime)
}

// Errors.
var (
	ErrNoSiblings = errors.New("steer: configuration has no siblings")
	ErrBadOptions = errors.New("steer: controller needs positive threshold and rounds")
)

// imbalance returns (max-min)/mean over the sibling phase times.
func imbalance(res driver.Result) float64 {
	var times []float64
	for _, s := range res.Siblings {
		times = append(times, s.PhaseTime)
	}
	m := stats.Mean(times)
	if m == 0 {
		return 0
	}
	return (stats.Max(times) - stats.Min(times)) / m
}

// measuredWeights extracts normalized weights from observed phase
// times: a sibling that ran longer than its share deserves more
// processors. The observed per-step work of sibling i is approximately
// PhaseTime_i x Ranks_i (time x resources); allocating proportionally
// to that product rebalances the next round.
func measuredWeights(res driver.Result) []float64 {
	w := make([]float64, len(res.Siblings))
	var sum float64
	for i, s := range res.Siblings {
		w[i] = s.PhaseTime * float64(s.Ranks)
		sum += w[i]
	}
	if sum == 0 {
		// All sibling phase times were zero (a degenerate cost model or
		// empty siblings): dividing by the zero sum would make every
		// weight NaN, which the next round would feed back through
		// FixedWeights and poison the allocation. Fall back to uniform
		// weights instead.
		u := 1 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Run steers the concurrent execution of cfg: it runs with the given
// options, measures the sibling imbalance, and re-runs with corrected
// weights until balanced or MaxRounds is hit. opt.Strategy is forced to
// Concurrent; the initial weights come from opt's allocation policy.
func (c Controller) Run(cfg *nest.Domain, opt driver.Options) (Outcome, error) {
	if c.Threshold <= 0 || c.MaxRounds <= 0 {
		return Outcome{}, ErrBadOptions
	}
	if len(cfg.Children) == 0 {
		return Outcome{}, ErrNoSiblings
	}
	opt.Strategy = driver.Concurrent

	var out Outcome
	var weights []float64
	for round := 0; round < c.MaxRounds; round++ {
		runOpt := opt
		if weights != nil {
			// Inject the corrected weights through a predictor-free path:
			// Algorithm 1 consumes them directly.
			runOpt.Alloc = driver.AllocPredicted
			runOpt.Predictor = nil
			runOpt.FixedWeights = weights
		}
		res, err := driver.Run(cfg, runOpt)
		if err != nil {
			return Outcome{}, fmt.Errorf("steer round %d: %w", round, err)
		}
		imb := imbalance(res)
		used := weights
		if used == nil {
			used = measuredWeights(res) // record the effective shares
		}
		out.Rounds = append(out.Rounds, Round{
			Weights:   append([]float64(nil), used...),
			IterTime:  res.IterTime,
			Imbalance: imb,
		})
		// Keep the best-observed round as the outcome: a correction can
		// overshoot, and a non-converged session must not report a
		// worse-than-best final result.
		if round == 0 || res.IterTime < out.Final.IterTime {
			out.Final = res
			out.BestRound = round
		}
		if imb <= c.Threshold {
			out.Converged = true
			return out, nil
		}
		// Correct: blend measured work shares with the current weights.
		next := measuredWeights(res)
		if weights != nil && c.Damping > 0 {
			for i := range next {
				next[i] = (1-c.Damping)*next[i] + c.Damping*weights[i]
			}
		}
		weights = next
	}
	return out, nil
}
