// Package metrics is a race-safe instrumentation substrate: labelled
// counters, gauges and fixed-bucket histograms registered in a
// Registry, snapshotted into an immutable value and rendered as text
// or JSON. The simulator's layers (mpi, netsim, driver, iosim) record
// into a Registry only when one is supplied, so instrumentation is off
// the hot path by default; the CLIs surface snapshots with -metrics
// and publish them over expvar for live profiling.
//
// Instruments are identified by name plus a label set; asking the
// registry twice for the same identity returns the same instrument.
// All instrument operations are lock-free atomics and safe for
// concurrent use; a nil *Registry (and the nil instruments it hands
// out) is a valid no-op sink, so call sites need no guards.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nestwrf/internal/stats"
)

// Label is one name/value dimension of an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelID renders a label set in a canonical (sorted, escaped) form
// used for instrument identity and snapshot ordering.
func labelID(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing float64.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v; negative or NaN deltas are ignored.
// Safe on a nil receiver.
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrarily settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (which may be negative). Safe on a nil
// receiver.
func (g *Gauge) Add(v float64) {
	if g == nil || v == 0 || math.IsNaN(v) {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level. A nil gauge reads zero.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. An observation v
// lands in the first bucket whose upper bound satisfies v <= bound;
// values above every bound land in the implicit overflow bucket.
type Histogram struct {
	bounds   []float64 // sorted, finite upper bounds
	counts   []atomic.Uint64
	overflow atomic.Uint64
	sumBits  atomic.Uint64
	count    atomic.Uint64
}

// newHistogram builds a histogram over the given bounds (sorted and
// deduplicated defensively; non-finite bounds are dropped).
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq))}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// DefaultQuantiles are the probabilities a Summary tracks unless the
// caller asks for others: the p10/p50/p90 the ensemble aggregates and
// the serving latency reports standardize on.
var DefaultQuantiles = []float64{0.1, 0.5, 0.9}

// Summary estimates arbitrary quantiles of an observation stream with
// O(1) memory: one stats.P2 estimator per tracked probability, plus
// sum and count. Unlike Histogram its quantile readings adapt to the
// data instead of quantizing to fixed bucket bounds. Observations are
// serialized under a mutex (the P² update is stateful), so Observe is
// safe for concurrent use; a nil *Summary is a valid no-op sink.
type Summary struct {
	mu    sync.Mutex
	qs    []*stats.P2
	sum   float64
	count uint64
}

// newSummary builds a summary over the given quantile probabilities
// (invalid probabilities outside (0,1) are dropped; empty falls back
// to DefaultQuantiles).
func newSummary(quantiles []float64) *Summary {
	s := &Summary{}
	for _, p := range quantiles {
		if p > 0 && p < 1 {
			s.qs = append(s.qs, stats.NewP2(p))
		}
	}
	if len(s.qs) == 0 {
		for _, p := range DefaultQuantiles {
			s.qs = append(s.qs, stats.NewP2(p))
		}
	}
	return s
}

// Observe records one value. Safe on a nil receiver.
func (s *Summary) Observe(v float64) {
	if s == nil || math.IsNaN(v) {
		return
	}
	s.mu.Lock()
	s.sum += v
	s.count++
	for _, q := range s.qs {
		q.Add(v)
	}
	s.mu.Unlock()
}

// Registry holds instruments keyed by (name, label set). The zero
// value is not usable; use NewRegistry. A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	summaries map[string]*Summary
	meta      map[string]instrumentMeta
}

type instrumentMeta struct {
	name   string
	labels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		summaries: map[string]*Summary{},
		meta:      map[string]instrumentMeta{},
	}
}

// id builds the identity key for an instrument and records its
// metadata (callers hold r.mu).
func (r *Registry) id(kind, name string, labels []Label) string {
	key := kind + "\x00" + name + "\x00" + labelID(labels)
	if _, ok := r.meta[key]; !ok {
		r.meta[key] = instrumentMeta{name: name, labels: append([]Label(nil), labels...)}
	}
	return key
}

// Counter returns the counter with the given identity, creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.id("c", name, labels)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge with the given identity, creating it on
// first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.id("g", name, labels)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram with the given identity, creating it
// with the given bucket upper bounds on first use (later calls reuse
// the first bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.id("h", name, labels)
	h, ok := r.hists[key]
	if !ok {
		h = newHistogram(bounds)
		r.hists[key] = h
	}
	return h
}

// Summary returns the summary with the given identity, creating it
// with the given quantile probabilities on first use (later calls
// reuse the first probabilities; nil falls back to DefaultQuantiles).
// A nil registry returns a nil (no-op) summary.
func (r *Registry) Summary(name string, quantiles []float64, labels ...Label) *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := r.id("s", name, labels)
	s, ok := r.summaries[key]
	if !ok {
		s = newSummary(quantiles)
		r.summaries[key] = s
	}
	return s
}

// MetricValue is one counter or gauge reading in a snapshot.
type MetricValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// BucketValue is one histogram bucket in a snapshot.
type BucketValue struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramValue is one histogram reading in a snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Labels  []Label       `json:"labels,omitempty"`
	Buckets []BucketValue `json:"buckets"`
	// Overflow counts observations above the last bucket bound.
	Overflow uint64  `json:"overflow"`
	Sum      float64 `json:"sum"`
	Count    uint64  `json:"count"`
}

// QuantileValue is one quantile estimate in a summary snapshot.
type QuantileValue struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
}

// SummaryValue is one summary reading in a snapshot.
type SummaryValue struct {
	Name      string          `json:"name"`
	Labels    []Label         `json:"labels,omitempty"`
	Quantiles []QuantileValue `json:"quantiles"`
	Sum       float64         `json:"sum"`
	Count     uint64          `json:"count"`
}

// Snapshot is an immutable, deeply copied view of a registry at one
// instant, ordered by (name, label set) within each section. Mutating
// a snapshot never affects the registry, and vice versa.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Summaries  []SummaryValue   `json:"summaries,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := func(m map[string]instrumentMeta, prefix string) []string {
		var ks []string
		for k := range m {
			if strings.HasPrefix(k, prefix) {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		return ks
	}
	for _, k := range keys(r.meta, "c\x00") {
		m := r.meta[k]
		s.Counters = append(s.Counters, MetricValue{
			Name: m.name, Labels: append([]Label(nil), m.labels...), Value: r.counters[k].Value(),
		})
	}
	for _, k := range keys(r.meta, "g\x00") {
		m := r.meta[k]
		s.Gauges = append(s.Gauges, MetricValue{
			Name: m.name, Labels: append([]Label(nil), m.labels...), Value: r.gauges[k].Value(),
		})
	}
	for _, k := range keys(r.meta, "h\x00") {
		m := r.meta[k]
		h := r.hists[k]
		hv := HistogramValue{
			Name: m.name, Labels: append([]Label(nil), m.labels...),
			Overflow: h.overflow.Load(),
			Sum:      math.Float64frombits(h.sumBits.Load()),
			Count:    h.count.Load(),
			Buckets:  make([]BucketValue, len(h.bounds)),
		}
		for i, b := range h.bounds {
			hv.Buckets[i] = BucketValue{UpperBound: b, Count: h.counts[i].Load()}
		}
		s.Histograms = append(s.Histograms, hv)
	}
	for _, k := range keys(r.meta, "s\x00") {
		m := r.meta[k]
		sm := r.summaries[k]
		sv := SummaryValue{Name: m.name, Labels: append([]Label(nil), m.labels...)}
		sm.mu.Lock()
		sv.Sum = sm.sum
		sv.Count = sm.count
		for _, q := range sm.qs {
			sv.Quantiles = append(sv.Quantiles, QuantileValue{Quantile: q.P, Value: q.Value()})
		}
		sm.mu.Unlock()
		s.Summaries = append(s.Summaries, sv)
	}
	return s
}

// labelSuffix renders a label set for the text format.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelID(labels) + "}"
}

// WriteText renders the snapshot in a Prometheus-like line format:
// one `name{k="v"} value` line per reading, histograms as cumulative
// `_bucket`, `_sum` and `_count` series.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s%s %g\n", c.Name, labelSuffix(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s%s %g\n", g.Name, labelSuffix(g.Labels), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			ls := append(append([]Label(nil), h.Labels...), L("le", fmt.Sprintf("%g", b.UpperBound)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, labelSuffix(ls), cum); err != nil {
				return err
			}
		}
		ls := append(append([]Label(nil), h.Labels...), L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, labelSuffix(ls), cum+h.Overflow); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", h.Name, labelSuffix(h.Labels), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, labelSuffix(h.Labels), h.Count); err != nil {
			return err
		}
	}
	for _, sm := range s.Summaries {
		for _, q := range sm.Quantiles {
			ls := append(append([]Label(nil), sm.Labels...), L("quantile", fmt.Sprintf("%g", q.Quantile)))
			if _, err := fmt.Fprintf(w, "%s%s %g\n", sm.Name, labelSuffix(ls), q.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", sm.Name, labelSuffix(sm.Labels), sm.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", sm.Name, labelSuffix(sm.Labels), sm.Count); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the WriteText rendering as a string.
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
