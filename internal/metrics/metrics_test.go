package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", L("strategy", "concurrent"))
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	if again := r.Counter("runs_total", L("strategy", "concurrent")); again != c {
		t.Fatal("same identity should return the same counter")
	}
	if other := r.Counter("runs_total", L("strategy", "sequential")); other == c {
		t.Fatal("different labels should return a different counter")
	}

	g := r.Gauge("iter_seconds")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("a", "1"), L("b", "2"))
	b := r.Counter("x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order must not change instrument identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("load", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	want := []BucketValue{{1, 2}, {2, 2}, {4, 2}}
	if !reflect.DeepEqual(hv.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", hv.Buckets, want)
	}
	if hv.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2", hv.Overflow)
	}
	if hv.Count != 8 || hv.Sum != 117 {
		t.Fatalf("count/sum = %d/%g, want 8/117", hv.Count, hv.Sum)
	}
}

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines; run under -race this is the package's
// thread-safety regression test, and the totals check that no update
// is lost.
func TestConcurrentInstruments(t *testing.T) {
	const goroutines = 16
	const perG = 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				// Identity lookups race with updates and snapshots.
				r.Counter("ops").Inc()
				r.Gauge("level", L("g", "x")).Add(1)
				r.Histogram("obs", []float64{10, 100}).Observe(float64(j % 150))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != goroutines*perG {
		t.Fatalf("counter = %g, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("level", L("g", "x")).Value(); got != goroutines*perG {
		t.Fatalf("gauge = %g, want %d", got, goroutines*perG)
	}
	s := r.Snapshot()
	h := s.Histograms[0]
	var total uint64 = h.Overflow
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != goroutines*perG || h.Count != goroutines*perG {
		t.Fatalf("histogram total = %d (count %d), want %d", total, h.Count, goroutines*perG)
	}
}

// TestSnapshotIsolation mutates a snapshot and checks the registry is
// unaffected, then mutates the registry and checks the snapshot is
// unaffected.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(1)
	r.Histogram("h", []float64{1, 2}).Observe(1)

	s := r.Snapshot()
	s.Counters[0].Value = 999
	s.Counters[0].Labels[0] = L("k", "mutated")
	s.Histograms[0].Buckets[0].Count = 999

	if got := r.Counter("c", L("k", "v")).Value(); got != 1 {
		t.Fatalf("registry counter changed to %g after snapshot mutation", got)
	}
	s2 := r.Snapshot()
	if s2.Counters[0].Value != 1 || s2.Counters[0].Labels[0].Value != "v" {
		t.Fatalf("fresh snapshot sees mutation: %+v", s2.Counters[0])
	}
	if s2.Histograms[0].Buckets[0].Count != 1 {
		t.Fatalf("fresh snapshot histogram sees mutation: %+v", s2.Histograms[0])
	}

	// The other direction: registry updates must not leak into the
	// already-taken snapshot.
	before := s2.Counters[0].Value
	r.Counter("c", L("k", "v")).Add(5)
	if s2.Counters[0].Value != before {
		t.Fatal("snapshot changed after registry update")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", []float64{1}).Observe(2)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if s.Text() != "" {
		t.Fatalf("nil registry text not empty: %q", s.Text())
	}
}

func TestTextAndJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", L("strategy", "concurrent")).Add(2)
	r.Gauge("iter_seconds").Set(1.25)
	h := r.Histogram("link_load", []float64{1, 4})
	h.Observe(1)
	h.Observe(8)
	s := r.Snapshot()

	text := s.Text()
	for _, want := range []string{
		`runs_total{strategy="concurrent"} 2`,
		`iter_seconds 1.25`,
		`link_load_bucket{le="1"} 1`,
		`link_load_bucket{le="4"} 1`,
		`link_load_bucket{le="+Inf"} 2`,
		`link_load_sum 9`,
		`link_load_count 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("JSON round-trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1})
	h.Observe(math.NaN())
	if s := r.Snapshot(); s.Histograms[0].Count != 0 {
		t.Fatalf("NaN observed: %+v", s.Histograms[0])
	}
}
