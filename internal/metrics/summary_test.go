package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", nil) // DefaultQuantiles: p10/p50/p90
	// A deterministic non-monotonic stream over 1..1000 (linear
	// congruential walk), so the P² estimators see shuffled data.
	v := 1
	for i := 0; i < 1000; i++ {
		s.Observe(float64(v))
		v = (v*31 + 17) % 1000
	}
	snap := r.Snapshot()
	if len(snap.Summaries) != 1 {
		t.Fatalf("got %d summaries, want 1", len(snap.Summaries))
	}
	sv := snap.Summaries[0]
	if sv.Name != "lat" || sv.Count != 1000 {
		t.Fatalf("summary = %+v, want name lat count 1000", sv)
	}
	if len(sv.Quantiles) != len(DefaultQuantiles) {
		t.Fatalf("got %d quantiles, want %d", len(sv.Quantiles), len(DefaultQuantiles))
	}
	for _, q := range sv.Quantiles {
		// P² is an estimator; for ~uniform data over [0,1000) the
		// estimate should land well within 10% of the true quantile.
		want := q.Quantile * 1000
		if math.Abs(q.Value-want) > 100 {
			t.Errorf("p%g = %g, want ~%g", 100*q.Quantile, q.Value, want)
		}
	}
}

func TestSummaryNilAndNaN(t *testing.T) {
	var nilReg *Registry
	nilReg.Summary("x", nil).Observe(1) // must not panic

	var nilSum *Summary
	nilSum.Observe(2) // must not panic

	r := NewRegistry()
	s := r.Summary("y", nil)
	s.Observe(math.NaN())
	if sv := r.Snapshot().Summaries[0]; sv.Count != 0 {
		t.Fatalf("NaN observed: %+v", sv)
	}
}

func TestSummaryReusesFirstQuantiles(t *testing.T) {
	r := NewRegistry()
	a := r.Summary("q", []float64{0.5})
	b := r.Summary("q", []float64{0.25, 0.75}) // later probabilities ignored
	if a != b {
		t.Fatal("same identity returned distinct summaries")
	}
	a.Observe(1)
	sv := r.Snapshot().Summaries[0]
	if len(sv.Quantiles) != 1 || sv.Quantiles[0].Quantile != 0.5 {
		t.Fatalf("quantiles = %+v, want the first registration's [0.5]", sv.Quantiles)
	}
}

func TestSummaryInvalidQuantilesFallBack(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("bad", []float64{-1, 0, 1, 2})
	s.Observe(1)
	if sv := r.Snapshot().Summaries[0]; len(sv.Quantiles) != len(DefaultQuantiles) {
		t.Fatalf("quantiles = %+v, want DefaultQuantiles fallback", sv.Quantiles)
	}
}

func TestSummaryTextRendering(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("req_seconds", nil, L("endpoint", "plan"))
	for i := 1; i <= 10; i++ {
		s.Observe(float64(i))
	}
	text := r.Snapshot().Text()
	for _, want := range []string{
		`req_seconds{endpoint="plan",quantile="0.1"}`,
		`req_seconds{endpoint="plan",quantile="0.5"}`,
		`req_seconds{endpoint="plan",quantile="0.9"}`,
		`req_seconds_sum{endpoint="plan"} 55`,
		`req_seconds_count{endpoint="plan"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}
