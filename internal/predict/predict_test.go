package predict

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
)

// groundTruth returns a model-backed profiler on the paper's fixed
// profiling configuration (a small processor count, as in Section 3.1:
// "experiments on a fixed number of processors").
func groundTruth(t *testing.T, ranks int) Profiler {
	t.Helper()
	g, err := machine.GridFor(ranks)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := machine.TorusFor(ranks)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mapping.Sequential(g, tor)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.BGL()
	return func(nx, ny int) float64 {
		return model.SingleDomainStep(m, mp, nest.Root("probe", nx, ny)).Time()
	}
}

func fitDefault(t *testing.T) (*Model, []Sample, Profiler) {
	t.Helper()
	prof := groundTruth(t, 64)
	samples := Profile(DefaultBasis(), prof)
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	return m, samples, prof
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty: %v", err)
	}
	bad := []Sample{{1, 100, 1}, {1.2, 200, -1}, {0.8, 300, 2}}
	if _, err := Fit(bad); !errors.Is(err, ErrBadSample) {
		t.Errorf("negative time: %v", err)
	}
	flat := []Sample{{1, 100, 1}, {1, 200, 2}, {1, 300, 3}}
	if _, err := Fit(flat); !errors.Is(err, ErrBadSample) {
		t.Errorf("degenerate aspect range: %v", err)
	}
}

func TestPredictReproducesSamples(t *testing.T) {
	m, samples, _ := fitDefault(t)
	for i, s := range samples {
		got := m.Predict(s.Aspect, s.Points)
		if RelErr(got, s.Time) > 1e-6 {
			t.Errorf("sample %d: predicted %v, measured %v", i, got, s.Time)
		}
	}
}

// The headline claim of Section 3.1: less than 6% prediction error on
// test domains with 55,900-94,990 points and aspect 0.5-1.5.
func TestPredictionErrorUnder6Percent(t *testing.T) {
	m, _, prof := fitDefault(t)
	rng := rand.New(rand.NewSource(42))
	worst := 0.0
	for trial := 0; trial < 100; trial++ {
		points := 55900 + rng.Float64()*(94990-55900)
		aspect := 0.5 + rng.Float64()
		nx := int(math.Round(math.Sqrt(points * aspect)))
		ny := int(math.Round(float64(nx) / aspect))
		truth := prof(nx, ny)
		got := m.Predict(float64(nx)/float64(ny), float64(nx*ny))
		if e := RelErr(got, truth); e > worst {
			worst = e
		}
	}
	t.Logf("worst relative error over 100 test domains: %.2f%%", worst*100)
	if worst > 0.06 {
		t.Errorf("worst prediction error %.2f%% exceeds the paper's 6%%", worst*100)
	}
}

// "We also tested by scaling up the number of points in each sibling,
// while retaining the aspect ratio": out-of-hull domains must still
// give useful relative predictions.
func TestScaleDownExtrapolation(t *testing.T) {
	m, _, prof := fitDefault(t)
	// 586x643, 856x919, 925x850: the large siblings of Fig. 10.
	shapes := [][2]int{{586, 643}, {856, 919}, {925, 850}}
	var preds, truths []float64
	for _, s := range shapes {
		preds = append(preds, m.Predict(float64(s[0])/float64(s[1]), float64(s[0]*s[1])))
		truths = append(truths, prof(s[0], s[1]))
	}
	// Relative times are what matters for allocation: compare ratios.
	for i := 1; i < len(shapes); i++ {
		predRatio := preds[i] / preds[0]
		truthRatio := truths[i] / truths[0]
		if RelErr(predRatio, truthRatio) > 0.15 {
			t.Errorf("shape %d: predicted ratio %v vs true ratio %v", i, predRatio, truthRatio)
		}
	}
}

// The naive univariate models must be clearly worse than interpolation
// (the paper reports >19% for the proportional strawman).
func TestNaiveModelsAreWorse(t *testing.T) {
	m, samples, prof := fitDefault(t)
	prop, err := FitProportional(samples)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := FitLinear(samples)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var worstOurs, worstProp, worstLin float64
	for trial := 0; trial < 200; trial++ {
		// Test across the full profiled region, including the small
		// domains where a proportional model misses the fixed costs.
		points := 12000 + rng.Float64()*(184000-12000)
		aspect := 0.5 + rng.Float64()
		nx := int(math.Round(math.Sqrt(points * aspect)))
		ny := int(math.Round(float64(nx) / aspect))
		truth := prof(nx, ny)
		p := float64(nx * ny)
		worstOurs = math.Max(worstOurs, RelErr(m.Predict(float64(nx)/float64(ny), p), truth))
		worstProp = math.Max(worstProp, RelErr(prop.Predict(p), truth))
		worstLin = math.Max(worstLin, RelErr(lin.Predict(p), truth))
	}
	t.Logf("worst errors: interpolation %.2f%%, proportional %.2f%%, linear %.2f%%",
		worstOurs*100, worstProp*100, worstLin*100)
	if worstProp < 0.15 {
		t.Errorf("proportional model error %.2f%% suspiciously low (paper: >19%%)", worstProp*100)
	}
	if worstOurs >= worstProp || worstOurs >= worstLin {
		t.Errorf("interpolation (%.2f%%) must beat proportional (%.2f%%) and linear (%.2f%%)",
			worstOurs*100, worstProp*100, worstLin*100)
	}
}

func TestWeightsNormalized(t *testing.T) {
	m, _, _ := fitDefault(t)
	domains := []*nest.Domain{
		nest.Root("a", 394, 418),
		nest.Root("b", 232, 202),
		nest.Root("c", 232, 256),
		nest.Root("d", 313, 337),
	}
	w := m.Weights(domains)
	var sum float64
	for _, v := range w {
		if v <= 0 {
			t.Errorf("weight %v not positive", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// The largest domain must get the largest weight.
	if !(w[0] > w[1] && w[0] > w[2] && w[0] > w[3]) {
		t.Errorf("weights %v: 394x418 should dominate", w)
	}
}

func TestPredictZeroPoints(t *testing.T) {
	m, _, _ := fitDefault(t)
	if m.Predict(1.0, 0) != 0 {
		t.Error("zero points should predict 0")
	}
}

func TestFitNaiveErrors(t *testing.T) {
	if _, err := FitProportional(nil); err == nil {
		t.Error("empty proportional fit should fail")
	}
	if _, err := FitLinear([]Sample{{1, 1, 1}}); err == nil {
		t.Error("single-sample linear fit should fail")
	}
	if _, err := FitLinear([]Sample{{1, 100, 1}, {1, 100, 2}}); err == nil {
		t.Error("degenerate linear fit should fail")
	}
	if _, err := FitProportional([]Sample{{1, 0, 1}}); err == nil {
		t.Error("zero-points proportional fit should fail")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Error("RelErr wrong")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr with zero truth should be +Inf")
	}
}

func TestDefaultBasisCoverage(t *testing.T) {
	shapes := DefaultBasis()
	if len(shapes) != 13 {
		t.Fatalf("basis has %d shapes, want 13 as in the paper", len(shapes))
	}
	minAsp, maxAsp := math.Inf(1), math.Inf(-1)
	minPts, maxPts := math.Inf(1), math.Inf(-1)
	for _, s := range shapes {
		a := float64(s.NX) / float64(s.NY)
		p := float64(s.NX * s.NY)
		minAsp, maxAsp = math.Min(minAsp, a), math.Max(maxAsp, a)
		minPts, maxPts = math.Min(minPts, p), math.Max(maxPts, p)
	}
	if minAsp > 0.51 || maxAsp < 1.49 {
		t.Errorf("aspect coverage [%v, %v] should span [0.5, 1.5]", minAsp, maxAsp)
	}
	if minPts > 12000 || maxPts < 184000 {
		t.Errorf("points coverage [%v, %v] should span the paper's size range", minPts, maxPts)
	}
}

func TestCrossValidate(t *testing.T) {
	_, samples, _ := fitDefault(t)
	errs, err := CrossValidate(samples)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := InteriorMask(samples)
	if err != nil {
		t.Fatal(err)
	}
	var intSum, hullSum float64
	var intN, hullN int
	for i, e := range errs {
		if mask[i] {
			intSum += e
			intN++
		} else {
			hullSum += e
			hullN++
		}
	}
	if intN == 0 || hullN == 0 {
		t.Fatalf("mask degenerate: %d interior, %d hull", intN, hullN)
	}
	intMean := intSum / float64(intN)
	hullMean := hullSum / float64(hullN)
	t.Logf("LOOCV: interior mean %.2f%% (%d samples), hull mean %.2f%% (%d samples)",
		intMean*100, intN, hullMean*100, hullN)
	// Interior leave-one-out predictions are interpolations and must be
	// accurate; hull samples extrapolate and are expected to be worse.
	if intMean > 0.10 {
		t.Errorf("interior LOOCV mean %.2f%% too high", intMean*100)
	}
	if hullMean < intMean {
		t.Errorf("hull LOOCV %.2f%% should exceed interior %.2f%%", hullMean*100, intMean*100)
	}
	if _, err := CrossValidate(samples[:3]); err == nil {
		t.Error("too few samples should fail")
	}
	if _, err := InteriorMask(samples[:3]); err == nil {
		t.Error("too few samples should fail for mask")
	}
}
