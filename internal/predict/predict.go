// Package predict implements the paper's performance-prediction model
// (Section 3.1): the execution time of a nested simulation is
// interpolated from a small set of profiled domains using barycentric
// coordinates over a Delaunay triangulation in the
// (aspect-ratio, total-points) feature plane. Domains outside the
// profiled convex hull are scaled into the region of coverage first,
// which preserves relative execution times (the only thing processor
// allocation needs).
//
// Two naive baselines are provided for the paper's comparisons: a
// proportional model (time ~ points, the ">19% error" strawman) and a
// univariate least-squares linear model.
package predict

import (
	"errors"
	"fmt"
	"math"

	"nestwrf/internal/geom"
	"nestwrf/internal/nest"
)

// Sample is one profiling observation: a domain's features and its
// measured execution time per sub-step.
type Sample struct {
	Aspect float64 // nx/ny
	Points float64 // nx*ny
	Time   float64 // seconds
}

// Errors returned by the fitters.
var (
	ErrTooFewSamples = errors.New("predict: need at least 3 samples")
	ErrBadSample     = errors.New("predict: samples must have positive features and time")
)

// Model is the Delaunay-interpolation predictor.
type Model struct {
	tri     *geom.Triangulation
	times   []float64
	minAsp  float64
	maxAsp  float64
	minPts  float64
	maxPts  float64
	aspSpan float64
	ptsSpan float64
}

// Fit builds the predictor from profiling samples. The features are
// normalized to the unit square before triangulation so that the very
// different scales of aspect (~1) and points (~10^5) do not skew the
// Delaunay construction.
func Fit(samples []Sample) (*Model, error) {
	if len(samples) < 3 {
		return nil, ErrTooFewSamples
	}
	m := &Model{
		minAsp: math.Inf(1), maxAsp: math.Inf(-1),
		minPts: math.Inf(1), maxPts: math.Inf(-1),
	}
	for i, s := range samples {
		if s.Aspect <= 0 || s.Points <= 0 || s.Time <= 0 {
			return nil, fmt.Errorf("%w: sample %d = %+v", ErrBadSample, i, s)
		}
		m.minAsp = math.Min(m.minAsp, s.Aspect)
		m.maxAsp = math.Max(m.maxAsp, s.Aspect)
		m.minPts = math.Min(m.minPts, s.Points)
		m.maxPts = math.Max(m.maxPts, s.Points)
	}
	m.aspSpan = m.maxAsp - m.minAsp
	m.ptsSpan = m.maxPts - m.minPts
	if m.aspSpan == 0 || m.ptsSpan == 0 {
		return nil, fmt.Errorf("%w: degenerate feature range", ErrBadSample)
	}
	pts := make([]geom.Point, len(samples))
	m.times = make([]float64, len(samples))
	for i, s := range samples {
		pts[i] = m.normalize(s.Aspect, s.Points)
		m.times[i] = s.Time
	}
	tri, err := geom.Delaunay(pts)
	if err != nil {
		return nil, fmt.Errorf("predict: triangulating samples: %w", err)
	}
	m.tri = tri
	return m, nil
}

func (m *Model) normalize(aspect, points float64) geom.Point {
	return geom.Pt((aspect-m.minAsp)/m.aspSpan, (points-m.minPts)/m.ptsSpan)
}

// Predict returns the predicted execution time for a domain with the
// given aspect ratio and total point count. Queries outside the
// profiled region are clamped in aspect and scaled in points: the
// prediction at the coverage boundary is extrapolated linearly in the
// point count, matching the paper's scale-down approach for larger
// domains.
func (m *Model) Predict(aspect, points float64) float64 {
	if points <= 0 {
		return 0
	}
	a := clamp(aspect, m.minAsp, m.maxAsp)
	p := clamp(points, m.minPts, m.maxPts)
	base := m.interior(a, p)
	if p == points {
		return base
	}
	// Scale-down (or up) extrapolation: relative times follow the point
	// count to first order.
	return base * points / p
}

// PredictDomain predicts for a nest domain.
func (m *Model) PredictDomain(d *nest.Domain) float64 {
	return m.Predict(d.Aspect(), float64(d.Points()))
}

// interior interpolates within (or on the numeric boundary of) the
// profiled region.
func (m *Model) interior(aspect, points float64) float64 {
	q := m.normalize(aspect, points)
	if ti, bc, ok := m.tri.Locate(q); ok {
		t := m.tri.Triangles[ti]
		return bc.Clamp().Interpolate(m.times[t.A], m.times[t.B], m.times[t.C])
	}
	// The clamped query can fall just outside the hull when the hull is
	// not the full bounding rectangle. Use the triangle whose clamped
	// barycentric interpolation point is nearest the query.
	bestD := math.Inf(1)
	var best float64
	for _, t := range m.tri.Triangles {
		a, b, c := m.tri.Points[t.A], m.tri.Points[t.B], m.tri.Points[t.C]
		bc := geom.BarycentricCoords(a, b, c, q).Clamp()
		proj := a.Scale(bc.L1).Add(b.Scale(bc.L2)).Add(c.Scale(bc.L3))
		if d := proj.Dist2(q); d < bestD {
			bestD = d
			best = bc.Interpolate(m.times[t.A], m.times[t.B], m.times[t.C])
		}
	}
	return best
}

// Weights returns the predicted relative execution times of the given
// domains, normalized to sum to 1 — the input of the processor
// allocation of Section 3.2.
func (m *Model) Weights(domains []*nest.Domain) []float64 {
	w := make([]float64, len(domains))
	var sum float64
	for i, d := range domains {
		w[i] = m.PredictDomain(d)
		sum += w[i]
	}
	if sum > 0 {
		for i := range w {
			w[i] /= sum
		}
	}
	return w
}

// Proportional is the naive model the paper dismisses: execution time
// directly proportional to the domain's point count.
type Proportional struct {
	PerPoint float64
}

// FitProportional fits time = c * points by least squares through the
// origin.
func FitProportional(samples []Sample) (*Proportional, error) {
	if len(samples) == 0 {
		return nil, ErrTooFewSamples
	}
	var num, den float64
	for _, s := range samples {
		num += s.Points * s.Time
		den += s.Points * s.Points
	}
	if den == 0 {
		return nil, ErrBadSample
	}
	return &Proportional{PerPoint: num / den}, nil
}

// Predict returns the proportional-model prediction.
func (p *Proportional) Predict(points float64) float64 { return p.PerPoint * points }

// Linear is a univariate least-squares model time = a + b*points.
type Linear struct {
	Intercept, Slope float64
}

// FitLinear fits the univariate linear model.
func FitLinear(samples []Sample) (*Linear, error) {
	n := float64(len(samples))
	if len(samples) < 2 {
		return nil, ErrTooFewSamples
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		sx += s.Points
		sy += s.Time
		sxx += s.Points * s.Points
		sxy += s.Points * s.Time
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, ErrBadSample
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return &Linear{Intercept: a, Slope: b}, nil
}

// Predict returns the linear-model prediction.
func (l *Linear) Predict(points float64) float64 { return l.Intercept + l.Slope*points }

// BasisShape is a profiling domain shape.
type BasisShape struct {
	NX, NY int
}

// DefaultBasis returns the 13 profiling domain shapes used to train the
// predictor, covering the paper's workload region: domain sizes from
// 94x124 to 415x445 (11,656 to 184,675 points) and aspect ratios from
// 0.5 to 1.5 — three aspect levels at three point levels plus four
// interior fill points, chosen so the region triangulates well
// (Section 3.1: the 13 points "nicely cover the rectangular region").
func DefaultBasis() []BasisShape {
	return []BasisShape{
		// aspect ~0.5: small, medium, large
		{77, 155}, {187, 375}, {304, 608},
		// aspect ~1.0
		{108, 108}, {265, 265}, {430, 430},
		// aspect ~1.5
		{132, 88}, {324, 216}, {527, 351},
		// interior fill
		{173, 231}, {224, 179}, {300, 400}, {387, 310},
	}
}

// Profiler measures (or models) the per-sub-step execution time of an
// nx x ny domain on the fixed profiling processor configuration.
type Profiler func(nx, ny int) float64

// Profile runs the profiler over the basis shapes and returns samples.
func Profile(shapes []BasisShape, prof Profiler) []Sample {
	out := make([]Sample, len(shapes))
	for i, s := range shapes {
		out[i] = Sample{
			Aspect: float64(s.NX) / float64(s.NY),
			Points: float64(s.NX * s.NY),
			Time:   prof(s.NX, s.NY),
		}
	}
	return out
}

// CrossValidate estimates the model's accuracy by leave-one-out
// cross-validation over the profiling samples: each sample is predicted
// from a model fitted on the others. It returns the per-sample relative
// errors, aligned with the input.
//
// Interpretation caveat: a sample on the convex hull of the feature set
// must be *extrapolated* when left out (aspect clamping plus the linear
// points scale-down, which misses the fixed per-step costs at the small
// end), so hull samples carry much larger LOOCV errors than the
// interior interpolation error the paper quotes. Use InteriorMask to
// separate the two regimes.
func CrossValidate(samples []Sample) ([]float64, error) {
	if len(samples) < 4 {
		return nil, ErrTooFewSamples
	}
	errs := make([]float64, len(samples))
	for i := range samples {
		rest := make([]Sample, 0, len(samples)-1)
		rest = append(rest, samples[:i]...)
		rest = append(rest, samples[i+1:]...)
		m, err := Fit(rest)
		if err != nil {
			return nil, err
		}
		errs[i] = RelErr(m.Predict(samples[i].Aspect, samples[i].Points), samples[i].Time)
	}
	return errs, nil
}

// InteriorMask reports, for each sample, whether it lies strictly
// inside the convex hull of the other samples' feature points — i.e.
// whether its leave-one-out prediction is an interpolation rather than
// an extrapolation.
func InteriorMask(samples []Sample) ([]bool, error) {
	if len(samples) < 4 {
		return nil, ErrTooFewSamples
	}
	mask := make([]bool, len(samples))
	for i := range samples {
		rest := make([]Sample, 0, len(samples)-1)
		rest = append(rest, samples[:i]...)
		rest = append(rest, samples[i+1:]...)
		m, err := Fit(rest)
		if err != nil {
			return nil, err
		}
		q := m.normalize(samples[i].Aspect, samples[i].Points)
		_, _, ok := m.tri.Locate(q)
		mask[i] = ok &&
			samples[i].Aspect > m.minAsp && samples[i].Aspect < m.maxAsp &&
			samples[i].Points > m.minPts && samples[i].Points < m.maxPts
	}
	return mask, nil
}

// RelErr returns |pred-truth|/truth.
func RelErr(pred, truth float64) float64 {
	if truth == 0 {
		return math.Inf(1)
	}
	return math.Abs(pred-truth) / truth
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
