package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// fixedClock returns a deterministic clock ticking one second per
// call, starting at 1.
func fixedClock() func() float64 {
	var now float64
	return func() float64 {
		now++
		return now
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Recording() {
		t.Fatal("nil tracer must not be recording")
	}
	if tr.Sampled(0) {
		t.Fatal("nil tracer must sample nothing")
	}
	sp := tr.Start(0, "x", LayerDriver)
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil handle", sp)
	}
	// Every method must be safe on the nil handle.
	if sp.Recording() {
		t.Fatal("nil span must not be recording")
	}
	if got := sp.ID(); got != 0 {
		t.Fatalf("nil span ID = %d, want 0", got)
	}
	sp.Annotate("k", "v")
	sp.End()
	sp.End()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer Len/Dropped = %d/%d, want 0/0", tr.Len(), tr.Dropped())
	}
	d := tr.Dump()
	if d.Schema != DumpSchema || len(d.Spans) != 0 {
		t.Fatalf("nil tracer dump = %+v, want empty %s dump", d, DumpSchema)
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Config{Clock: fixedClock()})
	root := tr.Start(0, "campaign", LayerCampaign) // start 1
	child := tr.Start(root.ID(), "member", LayerMember)
	child.Annotate("member", "0")
	grand := tr.Start(child.ID(), "driver.run", LayerDriver)
	grand.End() // end 4
	child.End()
	root.End()

	d := tr.Dump()
	if len(d.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(d.Spans))
	}
	// Dump orders by (start, id): root, child, grand.
	byName := map[string]Span{}
	for _, s := range d.Spans {
		byName[s.Name] = s
	}
	if got := []string{d.Spans[0].Name, d.Spans[1].Name, d.Spans[2].Name}; got[0] != "campaign" || got[1] != "member" || got[2] != "driver.run" {
		t.Fatalf("dump order = %v, want campaign, member, driver.run", got)
	}
	if byName["campaign"].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", byName["campaign"].Parent)
	}
	if byName["member"].Parent != byName["campaign"].ID {
		t.Fatalf("member parent = %d, want campaign id %d", byName["member"].Parent, byName["campaign"].ID)
	}
	if byName["driver.run"].Parent != byName["member"].ID {
		t.Fatalf("driver parent = %d, want member id %d", byName["driver.run"].Parent, byName["member"].ID)
	}
	if m := byName["member"]; len(m.Attrs) != 1 || m.Attrs[0] != (Attr{Key: "member", Value: "0"}) {
		t.Fatalf("member attrs = %v, want [{member 0}]", m.Attrs)
	}
	for _, s := range d.Spans {
		if s.End <= s.Start {
			t.Fatalf("span %s has end %v <= start %v", s.Name, s.End, s.Start)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Clock: fixedClock()})
	sp := tr.Start(0, "x", LayerDriver)
	sp.End()
	sp.End()
	sp.End()
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len = %d after repeated End, want 1", got)
	}
}

func TestMaxSpansDrops(t *testing.T) {
	tr := New(Config{MaxSpans: 2, Clock: fixedClock()})
	for i := 0; i < 5; i++ {
		tr.Start(0, "s", LayerPhase).End()
	}
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (MaxSpans)", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if d := tr.Dump(); d.Dropped != 3 {
		t.Fatalf("dump Dropped = %d, want 3", d.Dropped)
	}
}

func TestSampled(t *testing.T) {
	tr := New(Config{}) // default SampleEvery 100
	for _, tc := range []struct {
		id   int
		want bool
	}{{0, true}, {1, false}, {99, false}, {100, true}, {250, false}, {-1, false}} {
		if got := tr.Sampled(tc.id); got != tc.want {
			t.Errorf("Sampled(%d) = %v, want %v", tc.id, got, tc.want)
		}
	}
	all := New(Config{SampleEvery: 1})
	for id := 0; id < 5; id++ {
		if !all.Sampled(id) {
			t.Errorf("SampleEvery=1: Sampled(%d) = false, want true", id)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start(0, "w", LayerMember)
				sp.Annotate("i", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 800 {
		t.Fatalf("Len = %d, want 800", got)
	}
	seen := map[SpanID]bool{}
	for _, s := range tr.Dump().Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestSpanIDString(t *testing.T) {
	if got := SpanID(42).String(); got != "42" {
		t.Fatalf("SpanID(42).String() = %q, want 42", got)
	}
	if got := SpanID(0).String(); !strings.EqualFold(got, "0") {
		t.Fatalf("SpanID(0).String() = %q, want 0", got)
	}
}
