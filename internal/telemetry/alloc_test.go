package telemetry

import "testing"

// The nil-tracer path must add zero allocations to instrumented hot
// paths. The sequence below mirrors the exact call shapes the
// instrumentation points use — driver.run's guarded Start, the phase
// spans in costs(), the plan-cache lookup spans, and the coupling
// exchanges' Recording guard — so this test is the allocation guard
// for every nil-tracer call site at once.
func TestNilTracerPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	var parent SpanID
	avg := testing.AllocsPerRun(200, func() {
		// driver.run / wrfsim.Run shape: guarded root span.
		var sp *ActiveSpan
		if tr.Recording() {
			sp = tr.Start(parent, "driver.run", LayerDriver)
		}
		sp.Annotate("machine", "bgl")
		parent = sp.ID()

		// costs() / coupling shape: guarded child span with deferred End.
		if tr.Recording() {
			ph := tr.Start(parent, "coarse", LayerPhase)
			defer ph.End()
		}

		// ensemble worker shape: head-sampling check.
		if tr.Recording() && tr.Sampled(42) {
			t.Fatal("nil tracer sampled a member")
		}

		sp.End()
		sp.End() // idempotent-End path
	})
	if avg != 0 {
		t.Fatalf("nil-tracer instrumentation sequence: %v allocs per run, want 0", avg)
	}
}
