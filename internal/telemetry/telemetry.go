// Package telemetry is the cross-layer span tracer: hierarchical
// wall-clock spans with explicit parent propagation from the serving
// edge (a planserve HTTP request, an ensemble campaign) down through
// the plan cache, the driver, and the per-phase accounting. It answers
// the question flat counters cannot: where did *this* plan query or
// *this* campaign member spend its time, layer by layer.
//
// The contract mirrors internal/metrics: a nil *Tracer is a valid
// no-op sink whose Start returns a nil *ActiveSpan, and every
// *ActiveSpan method is safe on a nil receiver, so instrumentation
// points need no guards and the uninstrumented path performs zero
// allocations (callers that build span names or attribute values must
// still guard those with Recording, since argument construction
// happens before the call).
//
// Parents are passed explicitly as SpanID values — through function
// arguments, driver.Options fields, or struct fields — never through
// goroutine-local state, so the span tree is exactly the call tree the
// caller wired. Finished spans accumulate in a bounded buffer (spans
// past MaxSpans are counted as dropped, not stored), and campaigns
// keep memory O(window) by head-sampling members: only every Nth
// member's subtree is traced (Sampled).
//
// Finished spans export two ways: Dump is a schema-stable JSON record
// (nestwrf/spans/v1) that joins against log lines by span ID, and
// ChromeLog/WriteChrome render the same spans through the existing
// internal/trace Chrome trace-event writer with one lane per layer,
// loadable in Perfetto.
package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within one Tracer. Zero means "no span"
// and is the parent of root spans.
type SpanID uint64

// String renders the ID the way log lines and span dumps agree on.
func (id SpanID) String() string { return strconv.FormatUint(uint64(id), 10) }

// Layer names the lanes spans are drawn on in the Chrome export. Using
// the shared constants keeps one lane per layer across packages.
const (
	LayerCampaign = "campaign"
	LayerMember   = "member"
	LayerServe    = "planserve"
	LayerCache    = "cache"
	LayerDriver   = "driver"
	LayerPhase    = "phase"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished span: a named wall-clock interval on a layer,
// linked to its parent by ID. Times are seconds since the tracer's
// epoch (its construction instant), so a span dump is self-contained.
type Span struct {
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Layer  string  `json:"layer"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// Config configures a Tracer. The zero value gets sensible defaults.
type Config struct {
	// MaxSpans bounds the finished-span buffer; spans ending past the
	// cap are counted as dropped instead of stored. Default 16384.
	MaxSpans int
	// SampleEvery head-samples campaign members: Sampled(id) is true
	// for every SampleEvery-th id (id 0 always). Default 100; values
	// <= 1 trace every member.
	SampleEvery int
	// Clock returns seconds since the tracer's epoch. Nil uses the
	// monotonic wall clock from construction time; tests inject a
	// deterministic clock to pin golden exports.
	Clock func() float64
}

// Tracer collects spans. Construct with New; a nil *Tracer is a valid
// no-op sink. All methods are safe for concurrent use.
type Tracer struct {
	clock       func() float64
	maxSpans    int
	sampleEvery int
	nextID      atomic.Uint64
	dropped     atomic.Uint64

	mu    sync.Mutex
	spans []Span
}

// New returns a Tracer with the given config (zero-value fields are
// defaulted).
func New(cfg Config) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 16384
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100
	}
	if cfg.Clock == nil {
		epoch := time.Now()
		cfg.Clock = func() float64 { return time.Since(epoch).Seconds() }
	}
	return &Tracer{clock: cfg.Clock, maxSpans: cfg.MaxSpans, sampleEvery: cfg.SampleEvery}
}

// Recording reports whether spans are being collected. Callers guard
// span-name or attribute-value construction with it so the nil-tracer
// path stays allocation-free.
func (t *Tracer) Recording() bool { return t != nil }

// Sampled reports whether member id's subtree should be traced under
// the tracer's head-sampling interval. A nil tracer samples nothing.
func (t *Tracer) Sampled(id int) bool {
	if t == nil || id < 0 {
		return false
	}
	return t.sampleEvery <= 1 || id%t.sampleEvery == 0
}

// Start opens a span under parent (zero for a root span) and returns
// its handle. A nil tracer returns a nil handle, on which every method
// is a no-op — the zero-alloc uninstrumented path.
func (t *Tracer) Start(parent SpanID, name, layer string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{
		t:      t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		layer:  layer,
		start:  t.clock(),
	}
}

// ActiveSpan is one in-progress span. It is owned by the goroutine
// that started it: Annotate and End are not safe for concurrent use on
// the same handle (different handles are independent).
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	layer  string
	start  float64
	attrs  []Attr
	ended  bool
}

// ID returns the span's ID for propagation to children and log lines.
// A nil handle reads zero (the "no span" parent).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Recording reports whether the handle records anything; guards
// attribute-value construction like Tracer.Recording.
func (s *ActiveSpan) Recording() bool { return s != nil }

// Annotate attaches one key/value attribute. Safe on a nil receiver.
func (s *ActiveSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and commits it to the tracer's buffer (or the
// dropped counter when the buffer is full). Safe on a nil receiver;
// repeated End calls commit once.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.clock()
	s.t.mu.Lock()
	if len(s.t.spans) >= s.t.maxSpans {
		s.t.mu.Unlock()
		s.t.dropped.Add(1)
		return
	}
	s.t.spans = append(s.t.spans, Span{
		ID: s.id, Parent: s.parent, Name: s.name, Layer: s.layer,
		Start: s.start, End: end, Attrs: s.attrs,
	})
	s.t.mu.Unlock()
}

// Len returns the number of finished spans currently buffered. A nil
// tracer reads zero.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded past MaxSpans.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
