package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTree builds the same small cross-layer span tree every time,
// on a deterministic clock, so exports of it are byte-stable.
func fixedTree() *Tracer {
	tr := New(Config{Clock: fixedClock()})
	camp := tr.Start(0, "campaign", LayerCampaign) // start 1
	camp.Annotate("members", "2")
	mem := tr.Start(camp.ID(), "member", LayerMember) // start 2
	mem.Annotate("member", "0")
	cch := tr.Start(mem.ID(), "plancache.run", LayerCache) // start 3
	cch.Annotate("outcome", "miss")
	drv := tr.Start(cch.ID(), "driver.run", LayerDriver) // start 4
	ph := tr.Start(drv.ID(), "coarse", LayerPhase)       // start 5
	ph.End()                                             // end 6
	drv.End()                                            // end 7
	cch.End()                                            // end 8
	mem.End()                                            // end 9
	camp.End()                                           // end 10
	return tr
}

func TestDumpRoundTrip(t *testing.T) {
	tr := fixedTree()
	d := tr.Dump()
	var buf bytes.Buffer
	if err := d.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch:\nencoded %+v\ndecoded %+v", d, got)
	}
}

func TestDecodeDumpRejectsUnknownSchema(t *testing.T) {
	_, err := DecodeDump(strings.NewReader(`{"schema":"nestwrf/spans/v99","unit":"seconds","spans":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported span schema") {
		t.Fatalf("DecodeDump err = %v, want unsupported-schema error", err)
	}
	_, err = DecodeDump(strings.NewReader(`{not json`))
	if err == nil {
		t.Fatal("DecodeDump accepted malformed JSON")
	}
}

func TestChromeLogLaneOrder(t *testing.T) {
	d := fixedTree().Dump()
	log := d.ChromeLog()
	if got := log.Lanes(); !reflect.DeepEqual(got,
		[]string{LayerCampaign, LayerMember, LayerCache, LayerDriver, LayerPhase}) {
		t.Fatalf("lanes = %v, want canonical outermost-first order", got)
	}
	// Attributes travel as args, plus the span/parent join keys.
	for _, s := range log.Spans {
		if s.Args["span"] == "" {
			t.Fatalf("span %s has no span arg: %v", s.Name, s.Args)
		}
		if s.Name != "campaign" && s.Args["parent"] == "" {
			t.Fatalf("non-root span %s has no parent arg: %v", s.Name, s.Args)
		}
	}
}

// TestChromeGolden pins the Chrome export of the fixed tree byte for
// byte. Regenerate with `go test ./internal/telemetry -run Golden -update`
// after a deliberate format change.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTree().WriteChrome(&buf, "golden"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
