package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nestwrf/internal/trace"
)

// DumpSchema tags the JSON span dump. Bump the version suffix on any
// incompatible field change.
const DumpSchema = "nestwrf/spans/v1"

// Dump is the schema-stable record of a tracer's finished spans,
// ordered by (start, id) so the encoding is deterministic for a given
// span set. Span IDs in the dump join against slog lines that carry
// the same IDs.
type Dump struct {
	Schema string `json:"schema"`
	// Unit documents the time base of Start/End (seconds since the
	// tracer epoch).
	Unit  string `json:"unit"`
	Spans []Span `json:"spans"`
	// Dropped counts spans discarded past the tracer's MaxSpans cap —
	// nonzero means the trace is a prefix, not the whole story.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Dump snapshots the tracer's finished spans. A nil tracer yields an
// empty (but valid) dump.
func (t *Tracer) Dump() Dump {
	d := Dump{Schema: DumpSchema, Unit: "seconds", Spans: []Span{}}
	if t == nil {
		return d
	}
	t.mu.Lock()
	d.Spans = append(d.Spans, t.spans...)
	t.mu.Unlock()
	d.Dropped = t.dropped.Load()
	sort.SliceStable(d.Spans, func(i, j int) bool {
		if d.Spans[i].Start != d.Spans[j].Start {
			return d.Spans[i].Start < d.Spans[j].Start
		}
		return d.Spans[i].ID < d.Spans[j].ID
	})
	return d
}

// EncodeJSON writes the dump as indented JSON.
func (d Dump) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeDump reads a JSON span dump, rejecting unknown schemas.
func DecodeDump(r io.Reader) (Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return d, fmt.Errorf("telemetry: decoding span dump: %w", err)
	}
	if d.Schema != DumpSchema {
		return d, fmt.Errorf("telemetry: unsupported span schema %q (want %s)", d.Schema, DumpSchema)
	}
	return d, nil
}

// layerRank orders the Chrome lanes outermost layer first; layers not
// in the canonical list sort after, alphabetically.
var layerRank = map[string]int{
	LayerCampaign: 0,
	LayerMember:   1,
	LayerServe:    2,
	LayerCache:    3,
	LayerDriver:   4,
	LayerPhase:    5,
}

// ChromeLog renders the dump as a trace.Log with one lane per layer:
// span attributes become Chrome event args, and lanes appear in
// canonical layer order (campaign, member, planserve, cache, driver,
// phase) so every export reads the same top to bottom.
func (d Dump) ChromeLog() *trace.Log {
	spans := append([]Span(nil), d.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		ri, iOK := layerRank[spans[i].Layer]
		rj, jOK := layerRank[spans[j].Layer]
		switch {
		case iOK && jOK && ri != rj:
			return ri < rj
		case iOK != jOK:
			return iOK
		case !iOK && spans[i].Layer != spans[j].Layer:
			return spans[i].Layer < spans[j].Layer
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	log := &trace.Log{}
	for _, s := range spans {
		ts := trace.Span{Name: s.Name, Lane: s.Layer, Start: s.Start, End: s.End}
		if len(s.Attrs) > 0 {
			ts.Args = make(map[string]string, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				ts.Args[a.Key] = a.Value
			}
		} else {
			ts.Args = make(map[string]string, 2)
		}
		ts.Args["span"] = s.ID.String()
		if s.Parent != 0 {
			ts.Args["parent"] = s.Parent.String()
		}
		log.Spans = append(log.Spans, ts)
	}
	return log
}

// WriteChrome writes the tracer's spans in the Chrome trace-event
// format (loadable in Perfetto) as one process named name.
func (t *Tracer) WriteChrome(w io.Writer, name string) error {
	return trace.WriteChrome(w, trace.ChromeProcess{Name: name, Log: t.Dump().ChromeLog()})
}
