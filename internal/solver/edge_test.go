package solver

import (
	"math"
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

// Degenerate domain shapes must integrate stably.
func TestOneDimensionalDomains(t *testing.T) {
	for _, dims := range [][2]int{{100, 1}, {1, 100}, {2, 50}} {
		st, err := RunSerial(dims[0], dims[1], 50, DefaultParams(),
			GaussianHill(dims[0], dims[1], float64(dims[0])/2, float64(dims[1])/2, 0.3, 5))
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i, h := range st.H {
			if math.IsNaN(h) || h <= 0 {
				t.Fatalf("%v: cell %d height %v", dims, i, h)
			}
		}
	}
}

// A tile of a single cell works (more ranks than rows/columns).
func TestSingleCellTiles(t *testing.T) {
	nx, ny := 6, 6
	grid := vtopo.Grid{Px: 6, Py: 6} // every rank owns exactly one cell
	p := DefaultParams()
	init := GaussianHill(nx, ny, 3, 3, 0.3, 1.5)
	ref, err := RunSerial(nx, ny, 20, p, init)
	if err != nil {
		t.Fatal(err)
	}
	var got *State
	_, err = mpi.Run(grid.Size(), mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9}, func(proc *mpi.Proc) error {
		c := proc.World()
		x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
		tile, err := NewTile(nx, ny, x0, y0, w, h, p)
		if err != nil {
			return err
		}
		tile.Fill(init)
		for s := 0; s < 20; s++ {
			if err := tile.Exchange(c, grid); err != nil {
				return err
			}
			tile.Step()
		}
		st, err := Gather(c, tile)
		if err != nil {
			return err
		}
		if st != nil {
			got = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxDiff(got); d != 0 {
		t.Errorf("single-cell tiles differ from serial by %v", d)
	}
}

// Zero water height must not divide by zero in the flux function.
func TestDryCellsHandled(t *testing.T) {
	tile, err := NewTile(10, 10, 0, 0, 10, 10, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tile.Fill(func(gx, gy int) (float64, float64, float64) {
		if gx < 5 {
			return 0, 0, 0 // dry region
		}
		return 1, 0, 0
	})
	for s := 0; s < 10; s++ {
		tile.SetReflective()
		tile.Step()
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			h, hu, hv := tile.Cell(x, y)
			if math.IsNaN(h) || math.IsNaN(hu) || math.IsNaN(hv) {
				t.Fatalf("NaN at (%d,%d) after dry-cell run", x, y)
			}
		}
	}
}

// Extremely small time steps change almost nothing; the scheme is
// consistent as dt -> 0.
func TestConsistencyAsDtShrinks(t *testing.T) {
	n := 21
	init := GaussianHill(n, n, 10, 10, 0.2, 3)
	p := DefaultParams()
	p.Dt = 1e-8
	st, err := RunSerial(n, n, 1, p, init)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewState(n, n)
	tile, _ := NewTile(n, n, 0, 0, n, n, p)
	tile.Fill(init)
	tile.Interior(ref)
	// After one vanishing step, only the 4-point average smoothing of
	// Lax-Friedrichs remains; values stay within the initial range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range ref.H {
		lo, hi = math.Min(lo, h), math.Max(hi, h)
	}
	for i, h := range st.H {
		if h < lo-1e-9 || h > hi+1e-9 {
			t.Fatalf("cell %d: %v outside initial range [%v, %v]", i, h, lo, hi)
		}
	}
}
