package solver

// Scheme selects the time-integration scheme of a Tile.
type Scheme int

// Available schemes.
const (
	// LaxFriedrichs is the robust first-order default.
	LaxFriedrichs Scheme = iota
	// Richtmyer is the two-step Lax-Wendroff variant: second-order in
	// space and time, markedly less diffusive, with the same one-cell
	// halo and one exchange per step (half states live on cell faces and
	// are computed locally).
	Richtmyer
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s == Richtmyer {
		return "richtmyer"
	}
	return "lax-friedrichs"
}

// stepRichtmyer advances the owned region one step with the two-step
// Lax-Wendroff (Richtmyer) scheme, assuming halos are current. Like
// Step, every cell update reads the same values in the same order
// regardless of the decomposition, so parallel runs match the serial
// run bit for bit.
func (t *Tile) stepRichtmyer() {
	dtdx := t.P.Dt / t.P.Dx
	half := 0.5 * dtdx
	g := t.P.G

	// fluxX / fluxY evaluate the physical fluxes of a state triple.
	fluxX := func(h, hu, hv float64) (fh, fhu, fhv float64) {
		if h <= 0 {
			return 0, 0, 0
		}
		u := hu / h
		return hu, hu*u + 0.5*g*h*h, hu * (hv / h)
	}
	fluxY := func(h, hu, hv float64) (gh, ghu, ghv float64) {
		if h <= 0 {
			return 0, 0, 0
		}
		v := hv / h
		return hv, hv * (hu / h), hv*v + 0.5*g*h*h
	}

	// halfX returns the predicted half-step state on the x face between
	// local cells i and i+1 (indices into the halo buffers).
	halfX := func(l, r int) (h, hu, hv float64) {
		flh, flhu, flhv := fluxX(t.h[l], t.hu[l], t.hv[l])
		frh, frhu, frhv := fluxX(t.h[r], t.hu[r], t.hv[r])
		h = 0.5*(t.h[l]+t.h[r]) - half*(frh-flh)
		hu = 0.5*(t.hu[l]+t.hu[r]) - half*(frhu-flhu)
		hv = 0.5*(t.hv[l]+t.hv[r]) - half*(frhv-flhv)
		return h, hu, hv
	}
	halfY := func(b, a int) (h, hu, hv float64) {
		fbh, fbhu, fbhv := fluxY(t.h[b], t.hu[b], t.hv[b])
		fah, fahu, fahv := fluxY(t.h[a], t.hu[a], t.hv[a])
		h = 0.5*(t.h[b]+t.h[a]) - half*(fah-fbh)
		hu = 0.5*(t.hu[b]+t.hu[a]) - half*(fahu-fbhu)
		hv = 0.5*(t.hv[b]+t.hv[a]) - half*(fahv-fbhv)
		return h, hu, hv
	}

	fcor := t.P.F * t.P.Dt
	drag := t.P.Drag * t.P.Dt
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			c := t.idx(x, y)
			e, w := t.idx(x+1, y), t.idx(x-1, y)
			n, s := t.idx(x, y+1), t.idx(x, y-1)

			// Face half states.
			ehh, ehu, ehv := halfX(c, e) // east face
			whh, whu, whv := halfX(w, c) // west face
			nhh, nhu2, nhv2 := halfY(c, n)
			shh, shu2, shv2 := halfY(s, c)

			feh, fehu, fehv := fluxX(ehh, ehu, ehv)
			fwh, fwhu, fwhv := fluxX(whh, whu, whv)
			gnh, gnhu, gnhv := fluxY(nhh, nhu2, nhv2)
			gsh, gshu, gshv := fluxY(shh, shu2, shv2)

			nh := t.h[c] - dtdx*((feh-fwh)+(gnh-gsh))
			nhu := t.hu[c] - dtdx*((fehu-fwhu)+(gnhu-gshu))
			nhv := t.hv[c] - dtdx*((fehv-fwhv)+(gnhv-gshv))
			if fcor != 0 {
				nhu, nhv = nhu+fcor*nhv, nhv-fcor*nhu
			}
			if drag != 0 {
				nhu -= drag * nhu
				nhv -= drag * nhv
			}
			t.nh[c] = nh
			t.nhu[c] = nhu
			t.nhv[c] = nhv
		}
	}
	t.h, t.nh = t.nh, t.h
	t.hu, t.nhu = t.nhu, t.hu
	t.hv, t.nhv = t.nhv, t.hv
}
