package solver

import (
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

// The fast flux-once kernel must reproduce the reference closure-based
// kernel bit for bit: same arithmetic, same evaluation order.
func TestFastKernelMatchesReference(t *testing.T) {
	nx, ny, steps := 41, 33, 80
	p := DefaultParams()
	p.F = 0.1
	p.Drag = 0.01
	init := GaussianHill(nx, ny, 20, 16, 0.4, 5)

	run := func(ref bool) *State {
		SetReference(ref)
		defer SetReference(false)
		st, err := RunSerial(nx, ny, steps, p, init)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	fast := run(false)
	slow := run(true)
	if d := fast.MaxDiff(slow); d != 0 {
		t.Errorf("fast kernel differs from reference by %v (want exactly 0)", d)
	}
}

// The fast Exchange (pooled pack buffers, owned sends, ordered receives)
// must produce the same fields as the reference Isend/Irecv path.
func TestFastExchangeMatchesReference(t *testing.T) {
	nx, ny, steps := 37, 29, 40
	grid := vtopo.Grid{Px: 3, Py: 2}
	p := DefaultParams()
	init := GaussianHill(nx, ny, 18, 14, 0.4, 4)

	run := func(ref bool) *State {
		SetReference(ref)
		defer SetReference(false)
		var got *State
		_, err := mpi.Run(grid.Size(), tm(), func(proc *mpi.Proc) error {
			c := proc.World()
			x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
			tile, err := NewTile(nx, ny, x0, y0, w, h, p)
			if err != nil {
				return err
			}
			tile.Fill(init)
			for s := 0; s < steps; s++ {
				if err := tile.Exchange(c, grid); err != nil {
					return err
				}
				tile.Step()
			}
			st, err := Gather(c, tile)
			if err != nil {
				return err
			}
			if st != nil {
				got = st
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	fast := run(false)
	slow := run(true)
	if d := fast.MaxDiff(slow); d != 0 {
		t.Errorf("fast exchange differs from reference by %v (want exactly 0)", d)
	}
}

// Steady-state halo exchange must be allocation-free: pack buffers are
// persistent, sends are pooled owned buffers, and received payloads are
// returned to the pool. The allocation counter is process-global, so
// rank 0 measures while the other ranks run the identical iteration
// sequence bare: their exchanges overlap rank 0's window (message
// dependencies keep the ranks in lockstep), so any allocation on any
// rank is caught, without testing machinery polluting the count.
func TestExchangeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	nx, ny := 32, 24
	grid := vtopo.Grid{Px: 2, Py: 2}
	p := DefaultParams()
	init := GaussianHill(nx, ny, 16, 12, 0.4, 4)
	const runs = 10
	var avg float64
	_, err := mpi.Run(grid.Size(), tm(), func(proc *mpi.Proc) error {
		c := proc.World()
		x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
		tile, err := NewTile(nx, ny, x0, y0, w, h, p)
		if err != nil {
			return err
		}
		tile.Fill(init)
		iter := func() {
			if err := tile.Exchange(c, grid); err != nil {
				t.Error(err)
			}
			tile.Step()
		}
		for i := 0; i < 3; i++ {
			iter()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, iter)
		} else {
			for i := 0; i < runs+1; i++ { // AllocsPerRun runs 1 warmup + runs
				iter()
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("%v allocs per exchange+step, want 0", avg)
	}
}
