package solver

import (
	"math"
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

func tm() mpi.AlphaBeta { return mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9} }

func TestNewTileValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := NewTile(10, 10, 8, 0, 4, 4, p); err == nil {
		t.Error("overflowing tile should fail")
	}
	if _, err := NewTile(10, 10, 0, 0, 0, 4, p); err == nil {
		t.Error("empty tile should fail")
	}
	if _, err := NewTile(10, 10, -1, 0, 4, 4, p); err == nil {
		t.Error("negative origin should fail")
	}
}

func TestMassConservation(t *testing.T) {
	nx, ny := 40, 30
	init := GaussianHill(nx, ny, 20, 15, 0.5, 4)
	tile, err := NewTile(nx, ny, 0, 0, nx, ny, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tile.Fill(init)
	m0 := tile.Mass()
	for s := 0; s < 200; s++ {
		tile.SetReflective()
		tile.Step()
	}
	m1 := tile.Mass()
	if math.Abs(m1-m0)/m0 > 1e-9 {
		t.Errorf("mass drifted: %v -> %v", m0, m1)
	}
}

func TestStability(t *testing.T) {
	// The hill should disperse, not blow up: heights stay within a sane
	// band around the rest depth.
	st, err := RunSerial(50, 50, 500, DefaultParams(), GaussianHill(50, 50, 25, 25, 0.3, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range st.H {
		if math.IsNaN(h) || h < 0.2 || h > 2.0 {
			t.Fatalf("cell %d: height %v unstable", i, h)
		}
	}
}

func TestSymmetryPreserved(t *testing.T) {
	// A centred hill on a square domain must stay 4-fold symmetric.
	n := 31
	st, err := RunSerial(n, n, 100, DefaultParams(), GaussianHill(n, n, 15, 15, 0.4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			hx := st.H[st.At(n-1-x, y)]
			hy := st.H[st.At(x, n-1-y)]
			h := st.H[st.At(x, y)]
			if math.Abs(h-hx) > 1e-12 || math.Abs(h-hy) > 1e-12 {
				t.Fatalf("symmetry broken at (%d,%d): %v vs %v vs %v", x, y, h, hx, hy)
			}
		}
	}
}

func TestWaveSpreads(t *testing.T) {
	n := 41
	init := GaussianHill(n, n, 20, 20, 0.5, 3)
	st0 := NewState(n, n)
	tile, _ := NewTile(n, n, 0, 0, n, n, DefaultParams())
	tile.Fill(init)
	tile.Interior(st0)
	st, err := RunSerial(n, n, 150, DefaultParams(), init)
	if err != nil {
		t.Fatal(err)
	}
	// The central peak must decay as the wave propagates outward.
	if st.H[st.At(20, 20)] >= st0.H[st0.At(20, 20)] {
		t.Errorf("central peak did not decay: %v -> %v",
			st0.H[st0.At(20, 20)], st.H[st.At(20, 20)])
	}
	// And the far corner must have been perturbed.
	if math.Abs(st.H[st.At(1, 1)]-1.0) < 1e-9 {
		t.Error("wave never reached the corner")
	}
}

func TestDecomposeCoversDomain(t *testing.T) {
	for _, tc := range []struct{ nx, ny, px, py int }{
		{40, 30, 4, 3}, {41, 31, 4, 3}, {7, 5, 3, 2}, {100, 1, 8, 1},
	} {
		grid := vtopo.Grid{Px: tc.px, Py: tc.py}
		covered := make([]bool, tc.nx*tc.ny)
		for r := 0; r < grid.Size(); r++ {
			x0, y0, w, h := Decompose(tc.nx, tc.ny, grid, r)
			if w <= 0 || h <= 0 {
				t.Fatalf("%+v rank %d: empty tile %dx%d", tc, r, w, h)
			}
			for y := y0; y < y0+h; y++ {
				for x := x0; x < x0+w; x++ {
					i := y*tc.nx + x
					if covered[i] {
						t.Fatalf("%+v: cell (%d,%d) covered twice", tc, x, y)
					}
					covered[i] = true
				}
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("%+v: cell %d not covered", tc, i)
			}
		}
	}
}

// The core correctness property: the parallel solution over any process
// grid equals the serial solution bit for bit.
func TestParallelMatchesSerial(t *testing.T) {
	nx, ny, steps := 37, 29, 60
	p := DefaultParams()
	init := GaussianHill(nx, ny, 18, 14, 0.4, 4)
	ref, err := RunSerial(nx, ny, steps, p, init)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][2]int{{2, 2}, {4, 3}, {1, 4}, {6, 1}} {
		grid := vtopo.Grid{Px: shape[0], Py: shape[1]}
		var got *State
		_, err := mpi.Run(grid.Size(), tm(), func(proc *mpi.Proc) error {
			c := proc.World()
			x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
			tile, err := NewTile(nx, ny, x0, y0, w, h, p)
			if err != nil {
				return err
			}
			tile.Fill(init)
			for s := 0; s < steps; s++ {
				if err := tile.Exchange(c, grid); err != nil {
					return err
				}
				tile.Step()
			}
			st, err := Gather(c, tile)
			if err != nil {
				return err
			}
			if st != nil {
				got = st
			}
			return nil
		})
		if err != nil {
			t.Fatalf("grid %v: %v", shape, err)
		}
		if got == nil {
			t.Fatalf("grid %v: no gathered state", shape)
		}
		if d := ref.MaxDiff(got); d != 0 {
			t.Errorf("grid %v: parallel differs from serial by %v", shape, d)
		}
	}
}

// Parallel mass conservation across ranks via Allreduce.
func TestParallelMassConservation(t *testing.T) {
	nx, ny := 32, 32
	grid := vtopo.Grid{Px: 4, Py: 2}
	p := DefaultParams()
	init := GaussianHill(nx, ny, 16, 16, 0.5, 4)
	_, err := mpi.Run(grid.Size(), tm(), func(proc *mpi.Proc) error {
		c := proc.World()
		x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
		tile, err := NewTile(nx, ny, x0, y0, w, h, p)
		if err != nil {
			return err
		}
		tile.Fill(init)
		m0, err := c.Allreduce(mpi.OpSum, []float64{tile.Mass()})
		if err != nil {
			return err
		}
		for s := 0; s < 50; s++ {
			if err := tile.Exchange(c, grid); err != nil {
				return err
			}
			tile.Step()
		}
		m1, err := c.Allreduce(mpi.OpSum, []float64{tile.Mass()})
		if err != nil {
			return err
		}
		if math.Abs(m1[0]-m0[0])/m0[0] > 1e-9 {
			t.Errorf("rank %d: mass %v -> %v", c.Rank(), m0[0], m1[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCellAndSetHaloCell(t *testing.T) {
	tile, err := NewTile(10, 10, 0, 0, 5, 5, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tile.SetHaloCell(-1, 2, 1.5, 0.1, -0.2)
	h, hu, hv := tile.Cell(-1, 2)
	if h != 1.5 || hu != 0.1 || hv != -0.2 {
		t.Errorf("halo cell = %v %v %v", h, hu, hv)
	}
}

func TestGatherPayloadValidation(t *testing.T) {
	// Gather on a single rank round-trips the tile.
	nx, ny := 8, 6
	_, err := mpi.Run(1, tm(), func(proc *mpi.Proc) error {
		tile, err := NewTile(nx, ny, 0, 0, nx, ny, DefaultParams())
		if err != nil {
			return err
		}
		tile.Fill(GaussianHill(nx, ny, 4, 3, 0.2, 2))
		st, err := Gather(proc.World(), tile)
		if err != nil {
			return err
		}
		want := NewState(nx, ny)
		tile.Interior(want)
		if st.MaxDiff(want) != 0 {
			t.Error("gathered state differs from tile interior")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerialStep100x100(b *testing.B) {
	tile, err := NewTile(100, 100, 0, 0, 100, 100, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	tile.Fill(GaussianHill(100, 100, 50, 50, 0.3, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.SetReflective()
		tile.Step()
	}
}
