package solver

import (
	"math"
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

// run integrates a full-domain tile for the given steps and returns the
// final state.
func run(t *testing.T, n, steps int, p Params, init InitFunc) *State {
	t.Helper()
	st, err := RunSerial(n, n, steps, p, init)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// angularMomentum returns the total z angular momentum about the domain
// centre.
func angularMomentum(st *State) float64 {
	cx, cy := float64(st.NX-1)/2, float64(st.NY-1)/2
	var l float64
	for y := 0; y < st.NY; y++ {
		for x := 0; x < st.NX; x++ {
			i := st.At(x, y)
			rx, ry := float64(x)-cx, float64(y)-cy
			l += rx*st.HV[i] - ry*st.HU[i]
		}
	}
	return l
}

// With F > 0 a collapsing bump spins up rotation: the flow acquires
// negative (clockwise, anticyclonic-outflow) angular momentum, while
// the irrotational F = 0 collapse stays at zero by symmetry.
func TestCoriolisSpinsUpRotation(t *testing.T) {
	n, steps := 41, 120
	init := GaussianHill(n, n, 20, 20, 0.4, 4)
	still := run(t, n, steps, DefaultParams(), init)
	if l := angularMomentum(still); math.Abs(l) > 1e-9 {
		t.Errorf("no-rotation run has angular momentum %v", l)
	}
	p := DefaultParams()
	p.F = 0.5
	spun := run(t, n, steps, p, init)
	if l := angularMomentum(spun); l >= -1e-6 {
		t.Errorf("Coriolis run angular momentum = %v, want clearly negative (clockwise outflow)", l)
	}
}

// The Coriolis term rotates momentum without changing mass.
func TestCoriolisConservesMass(t *testing.T) {
	n := 31
	p := GeophysicalParams()
	init := GaussianHill(n, n, 15, 15, 0.3, 3)
	tile, err := NewTile(n, n, 0, 0, n, n, p)
	if err != nil {
		t.Fatal(err)
	}
	tile.Fill(init)
	m0 := tile.Mass()
	for s := 0; s < 150; s++ {
		tile.SetReflective()
		tile.Step()
	}
	if m1 := tile.Mass(); math.Abs(m1-m0)/m0 > 1e-9 {
		t.Errorf("mass drifted under rotation: %v -> %v", m0, m1)
	}
}

// Friction damps kinetic energy faster than the frictionless run.
func TestDragDampsMotion(t *testing.T) {
	n, steps := 41, 200
	init := GaussianHill(n, n, 20, 20, 0.4, 4)
	free := run(t, n, steps, DefaultParams(), init)
	p := DefaultParams()
	p.Drag = 0.05
	damped := run(t, n, steps, p, init)
	ke := func(st *State) float64 {
		var k float64
		for i := range st.H {
			if st.H[i] > 0 {
				k += (st.HU[i]*st.HU[i] + st.HV[i]*st.HV[i]) / st.H[i]
			}
		}
		return k
	}
	if ke(damped) >= ke(free) {
		t.Errorf("drag did not damp: KE %v vs free %v", ke(damped), ke(free))
	}
	if ke(damped) <= 0 {
		t.Error("damped run should still be moving after 200 steps")
	}
}

// Rotation must not break the bit-exact serial/parallel equivalence:
// the Coriolis and drag terms are point-local.
func TestGeophysicalParallelMatchesSerial(t *testing.T) {
	nx, ny, steps := 33, 27, 50
	p := GeophysicalParams()
	init := GaussianHill(nx, ny, 16, 13, 0.4, 4)
	ref, err := RunSerial(nx, ny, steps, p, init)
	if err != nil {
		t.Fatal(err)
	}
	grid := vtopo.Grid{Px: 3, Py: 2}
	var got *State
	_, err = mpi.Run(grid.Size(), mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9}, func(proc *mpi.Proc) error {
		c := proc.World()
		x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
		tile, err := NewTile(nx, ny, x0, y0, w, h, p)
		if err != nil {
			return err
		}
		tile.Fill(init)
		for s := 0; s < steps; s++ {
			if err := tile.Exchange(c, grid); err != nil {
				return err
			}
			tile.Step()
		}
		st, err := Gather(c, tile)
		if err != nil {
			return err
		}
		if st != nil {
			got = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxDiff(got); d != 0 {
		t.Errorf("rotating parallel run differs from serial by %v", d)
	}
}

// GeophysicalParams must be stable over a long run.
func TestGeophysicalStability(t *testing.T) {
	st := run(t, 51, 600, GeophysicalParams(), GaussianHill(51, 51, 25, 25, 0.3, 5))
	for i, h := range st.H {
		if math.IsNaN(h) || h < 0.2 || h > 2.0 {
			t.Fatalf("cell %d: height %v unstable under rotation", i, h)
		}
	}
}
