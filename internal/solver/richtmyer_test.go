package solver

import (
	"math"
	"testing"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

func richtmyerParams() Params {
	p := DefaultParams()
	p.Scheme = Richtmyer
	return p
}

func TestSchemeString(t *testing.T) {
	if LaxFriedrichs.String() != "lax-friedrichs" || Richtmyer.String() != "richtmyer" {
		t.Error("scheme strings wrong")
	}
}

func TestRichtmyerStable(t *testing.T) {
	st, err := RunSerial(51, 51, 400, richtmyerParams(), GaussianHill(51, 51, 25, 25, 0.3, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range st.H {
		if math.IsNaN(h) || h < 0.2 || h > 2.0 {
			t.Fatalf("cell %d: height %v unstable", i, h)
		}
	}
}

func TestRichtmyerConservesMass(t *testing.T) {
	n := 41
	tile, err := NewTile(n, n, 0, 0, n, n, richtmyerParams())
	if err != nil {
		t.Fatal(err)
	}
	tile.Fill(GaussianHill(n, n, 20, 20, 0.4, 4))
	m0 := tile.Mass()
	for s := 0; s < 200; s++ {
		tile.SetReflective()
		tile.Step()
	}
	if m1 := tile.Mass(); math.Abs(m1-m0)/m0 > 1e-9 {
		t.Errorf("mass drifted: %v -> %v", m0, m1)
	}
}

// Second order pays off: after the same integration time, the
// Richtmyer solution retains more of the initial perturbation than the
// diffusive Lax-Friedrichs solution.
func TestRichtmyerLessDiffusive(t *testing.T) {
	n, steps := 61, 150
	init := GaussianHill(n, n, 30, 30, 0.3, 4)
	lf, err := RunSerial(n, n, steps, DefaultParams(), init)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RunSerial(n, n, steps, richtmyerParams(), init)
	if err != nil {
		t.Fatal(err)
	}
	// Total squared deviation from the rest state measures how much
	// signal survives.
	energy := func(st *State) float64 {
		var e float64
		for _, h := range st.H {
			d := h - 1
			e += d * d
		}
		return e
	}
	elf, erm := energy(lf), energy(rm)
	t.Logf("surviving signal: lax-friedrichs %.4f, richtmyer %.4f", elf, erm)
	if erm <= elf {
		t.Errorf("richtmyer (%.4f) should retain more signal than lax-friedrichs (%.4f)", erm, elf)
	}
}

// The one-cell-halo, one-exchange-per-step structure is preserved:
// parallel Richtmyer matches serial bit for bit.
func TestRichtmyerParallelMatchesSerial(t *testing.T) {
	nx, ny, steps := 37, 29, 60
	p := richtmyerParams()
	init := GaussianHill(nx, ny, 18, 14, 0.4, 4)
	ref, err := RunSerial(nx, ny, steps, p, init)
	if err != nil {
		t.Fatal(err)
	}
	grid := vtopo.Grid{Px: 4, Py: 3}
	var got *State
	_, err = mpi.Run(grid.Size(), mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9}, func(proc *mpi.Proc) error {
		c := proc.World()
		x0, y0, w, h := Decompose(nx, ny, grid, c.Rank())
		tile, err := NewTile(nx, ny, x0, y0, w, h, p)
		if err != nil {
			return err
		}
		tile.Fill(init)
		for s := 0; s < steps; s++ {
			if err := tile.Exchange(c, grid); err != nil {
				return err
			}
			tile.Step()
		}
		st, err := Gather(c, tile)
		if err != nil {
			return err
		}
		if st != nil {
			got = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxDiff(got); d != 0 {
		t.Errorf("parallel Richtmyer differs from serial by %v", d)
	}
}

// Rotation works with the second-order scheme too.
func TestRichtmyerWithCoriolis(t *testing.T) {
	p := richtmyerParams()
	p.F = 0.5
	st, err := RunSerial(41, 41, 120, p, GaussianHill(41, 41, 20, 20, 0.3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if l := angularMomentum(st); l >= -1e-6 {
		t.Errorf("angular momentum = %v, want clearly negative", l)
	}
}
