// Package solver is the numerical dynamical core of the functional
// weather-simulation substrate: the 2D shallow-water equations
// integrated with a Lax-Friedrichs scheme over a halo-decomposed grid.
// It plays the role WRF's dynamics play in the paper — a real stencil
// computation whose parallel execution requires the 4-neighbour halo
// exchanges that the mapping and allocation strategies optimize.
//
// The parallel solution is bit-identical to the serial solution: each
// cell's update reads the same values in the same order regardless of
// the decomposition, so integration tests can verify halo exchange and
// nesting logic exactly.
package solver

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"nestwrf/internal/mpi"
	"nestwrf/internal/vtopo"
)

// Params are the integration parameters.
type Params struct {
	Dt float64 // time step
	Dx float64 // grid spacing (same in x and y)
	G  float64 // gravitational acceleration
	// F is the Coriolis parameter (positive in the northern
	// hemisphere): momentum rotates clockwise-of-motion when F > 0,
	// which is what turns a pressure anomaly into a cyclone. Zero
	// disables rotation.
	F float64
	// Drag is a linear bottom-friction coefficient applied to momentum
	// (1/s). Zero disables friction.
	Drag float64
	// Scheme selects the integrator (default LaxFriedrichs).
	Scheme Scheme
}

// DefaultParams returns stable parameters for O(1) initial heights
// (no rotation, no friction).
func DefaultParams() Params {
	return Params{Dt: 0.01, Dx: 1.0, G: 9.81}
}

// GeophysicalParams returns parameters with rotation and weak friction,
// for cyclone-like demonstrations.
func GeophysicalParams() Params {
	return Params{Dt: 0.01, Dx: 1.0, G: 9.81, F: 0.5, Drag: 0.01}
}

// State is a full-domain snapshot (no halo), row-major with x fastest.
type State struct {
	NX, NY    int
	H, HU, HV []float64
}

// NewState allocates a zero state.
func NewState(nx, ny int) *State {
	n := nx * ny
	return &State{NX: nx, NY: ny, H: make([]float64, n), HU: make([]float64, n), HV: make([]float64, n)}
}

// At returns the linear index of (x, y).
func (s *State) At(x, y int) int { return y*s.NX + x }

// Mass returns the total water volume, conserved by the scheme under
// reflective boundaries.
func (s *State) Mass() float64 {
	var m float64
	for _, h := range s.H {
		m += h
	}
	return m
}

// MaxDiff returns the maximum absolute difference of all fields
// between two states.
func (s *State) MaxDiff(o *State) float64 {
	var d float64
	for i := range s.H {
		d = math.Max(d, math.Abs(s.H[i]-o.H[i]))
		d = math.Max(d, math.Abs(s.HU[i]-o.HU[i]))
		d = math.Max(d, math.Abs(s.HV[i]-o.HV[i]))
	}
	return d
}

// InitFunc provides the initial condition at a global cell.
type InitFunc func(gx, gy int) (h, hu, hv float64)

// GaussianHill returns an initial condition with a Gaussian water bump
// centred at (cx, cy) on a unit-depth lake — the classic dam-break-like
// test case (and a stand-in for a tropical depression).
func GaussianHill(nx, ny int, cx, cy, amp, sigma float64) InitFunc {
	return func(gx, gy int) (float64, float64, float64) {
		dx := float64(gx) - cx
		dy := float64(gy) - cy
		return 1.0 + amp*math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma)), 0, 0
	}
}

// Tile is one rank's rectangular portion of a domain, stored with a
// one-cell halo ring.
type Tile struct {
	GNX, GNY int // global domain dims
	X0, Y0   int // global origin of the owned region
	W, H     int // owned region dims
	P        Params

	// Double-buffered fields, (W+2)*(H+2) with halo.
	h, hu, hv    []float64
	nh, nhu, nhv []float64

	// Rolling per-row flux scratch for the flux-once kernel (DESIGN §9):
	// lines for rows y-1, y and y+1 of the sweep. Each cell's six flux
	// components are computed exactly once per step instead of four
	// times, with bit-identical results (same expressions, same inputs).
	flm, flc, flp *fluxLine
}

// fluxLine holds the six flux components of one halo-extended row
// (x = -1 .. W), indexed by x+1: F = (fh, fhu, fhv) is the x-direction
// flux, G = (gh, ghu, ghv) the y-direction flux.
type fluxLine struct {
	fh, fhu, fhv []float64
	gh, ghu, ghv []float64
}

// newFluxLine allocates a flux line for n cells in one backing slab.
func newFluxLine(n int) *fluxLine {
	b := make([]float64, 6*n)
	return &fluxLine{
		fh: b[0:n], fhu: b[n : 2*n], fhv: b[2*n : 3*n],
		gh: b[3*n : 4*n], ghu: b[4*n : 5*n], ghv: b[5*n : 6*n],
	}
}

// reference selects the retained pre-PR5 slow paths (closure-based
// kernel, per-message allocating halo exchange) used as the
// bit-identity oracle for the fast paths. The flag is atomic so that
// toggling it (tests only) is race-free against concurrently stepping
// tiles; both paths compute bit-identical fields, so whichever value a
// step observes yields the same result.
var reference atomic.Bool

// SetReference enables (true) or disables (false) the retained
// reference implementations of Step and Exchange. Only tests should
// call this.
func SetReference(on bool) { reference.Store(on) }

// Errors returned by the tile operations.
var (
	ErrBadTile   = errors.New("solver: tile outside global domain")
	ErrBadDecomp = errors.New("solver: decomposition mismatch")
)

// NewTile creates a tile for the owned region [x0, x0+w) x [y0, y0+h).
func NewTile(gnx, gny, x0, y0, w, h int, p Params) (*Tile, error) {
	if w <= 0 || h <= 0 || x0 < 0 || y0 < 0 || x0+w > gnx || y0+h > gny {
		return nil, fmt.Errorf("%w: [%d,%d)+%dx%d in %dx%d", ErrBadTile, x0, y0, w, h, gnx, gny)
	}
	n := (w + 2) * (h + 2)
	return &Tile{
		GNX: gnx, GNY: gny, X0: x0, Y0: y0, W: w, H: h, P: p,
		h: make([]float64, n), hu: make([]float64, n), hv: make([]float64, n),
		nh: make([]float64, n), nhu: make([]float64, n), nhv: make([]float64, n),
		flm: newFluxLine(w + 2), flc: newFluxLine(w + 2), flp: newFluxLine(w + 2),
	}, nil
}

// idx returns the buffer index of local cell (x, y), where (0,0) is the
// first owned cell and -1/W..H are halo positions.
func (t *Tile) idx(x, y int) int { return (y+1)*(t.W+2) + (x + 1) }

// Fill sets the owned region from the initial condition.
func (t *Tile) Fill(f InitFunc) {
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			i := t.idx(x, y)
			t.h[i], t.hu[i], t.hv[i] = f(t.X0+x, t.Y0+y)
		}
	}
}

// Interior copies the owned region into a state fragment at its global
// position within dst (dst must be the full-domain size).
func (t *Tile) Interior(dst *State) {
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			i := t.idx(x, y)
			j := dst.At(t.X0+x, t.Y0+y)
			dst.H[j], dst.HU[j], dst.HV[j] = t.h[i], t.hu[i], t.hv[i]
		}
	}
}

// Mass returns the owned region's water volume.
func (t *Tile) Mass() float64 {
	var m float64
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			m += t.h[t.idx(x, y)]
		}
	}
	return m
}

// SetReflective fills halo cells on global domain edges with reflective
// (free-slip wall) boundary values: height mirrored, normal momentum
// negated.
func (t *Tile) SetReflective() {
	if t.X0 == 0 {
		for y := -1; y <= t.H; y++ {
			src, dst := t.idx(0, y), t.idx(-1, y)
			t.h[dst], t.hu[dst], t.hv[dst] = t.h[src], -t.hu[src], t.hv[src]
		}
	}
	if t.X0+t.W == t.GNX {
		for y := -1; y <= t.H; y++ {
			src, dst := t.idx(t.W-1, y), t.idx(t.W, y)
			t.h[dst], t.hu[dst], t.hv[dst] = t.h[src], -t.hu[src], t.hv[src]
		}
	}
	if t.Y0 == 0 {
		for x := -1; x <= t.W; x++ {
			src, dst := t.idx(x, 0), t.idx(x, -1)
			t.h[dst], t.hu[dst], t.hv[dst] = t.h[src], t.hu[src], -t.hv[src]
		}
	}
	if t.Y0+t.H == t.GNY {
		for x := -1; x <= t.W; x++ {
			src, dst := t.idx(x, t.H-1), t.idx(x, t.H)
			t.h[dst], t.hu[dst], t.hv[dst] = t.h[src], t.hu[src], -t.hv[src]
		}
	}
}

// SetHaloCell sets one halo (or interior) cell by local coordinates;
// used by the nesting coupler to impose parent-interpolated boundary
// conditions.
func (t *Tile) SetHaloCell(x, y int, h, hu, hv float64) {
	i := t.idx(x, y)
	t.h[i], t.hu[i], t.hv[i] = h, hu, hv
}

// Cell returns the values of a local cell (halo positions allowed).
func (t *Tile) Cell(x, y int) (h, hu, hv float64) {
	i := t.idx(x, y)
	return t.h[i], t.hu[i], t.hv[i]
}

// Step advances the owned region one time step with the configured
// scheme, assuming halos are current.
func (t *Tile) Step() {
	if t.P.Scheme == Richtmyer {
		t.stepRichtmyer()
		return
	}
	if reference.Load() {
		t.stepLFReference()
		return
	}
	t.stepLF()
}

// fillFluxLine evaluates the six flux components of every cell of the
// halo-extended row y into ln. The expressions are exactly those of the
// reference kernel's flux closure, so the stored values are bit-for-bit
// the values the reference recomputes at each of a cell's four uses.
func (t *Tile) fillFluxLine(y int, ln *fluxLine) {
	g := t.P.G
	base := (y + 1) * (t.W + 2) // == t.idx(-1, y)
	for j := 0; j <= t.W+1; j++ {
		i := base + j
		h := t.h[i]
		if h <= 0 {
			ln.fh[j], ln.fhu[j], ln.fhv[j] = 0, 0, 0
			ln.gh[j], ln.ghu[j], ln.ghv[j] = 0, 0, 0
			continue
		}
		hu, hv := t.hu[i], t.hv[i]
		u, v := hu/h, hv/h
		p := 0.5 * g * h * h
		ln.fh[j], ln.fhu[j], ln.fhv[j] = hu, hu*u+p, hu*v
		ln.gh[j], ln.ghu[j], ln.ghv[j] = hv, hv*u, hv*v+p
	}
}

// stepLF is the flux-once Lax-Friedrichs kernel: a rolling window of
// three per-row flux lines replaces the reference kernel's four flux
// recomputations per cell. Output is bit-identical to stepLFReference
// by construction — the guard tests in fast_test.go enforce MaxDiff==0.
func (t *Tile) stepLF() {
	lx := t.P.Dt / (2 * t.P.Dx)
	fcor := t.P.F * t.P.Dt
	drag := t.P.Drag * t.P.Dt
	stride := t.W + 2
	lm, lc, lp := t.flm, t.flc, t.flp
	t.fillFluxLine(-1, lm)
	t.fillFluxLine(0, lc)
	t.fillFluxLine(1, lp)
	for y := 0; y < t.H; y++ {
		row := (y + 1) * stride
		for x := 0; x < t.W; x++ {
			c := row + x + 1
			e, w := c+1, c-1
			n, s := c+stride, c-stride
			j := x + 1

			feh, fehu, fehv := lc.fh[j+1], lc.fhu[j+1], lc.fhv[j+1]
			fwh, fwhu, fwhv := lc.fh[j-1], lc.fhu[j-1], lc.fhv[j-1]
			gnh, gnhu, gnhv := lp.gh[j], lp.ghu[j], lp.ghv[j]
			gsh, gshu, gshv := lm.gh[j], lm.ghu[j], lm.ghv[j]

			nh := 0.25*(t.h[e]+t.h[w]+t.h[n]+t.h[s]) - lx*((feh-fwh)+(gnh-gsh))
			nhu := 0.25*(t.hu[e]+t.hu[w]+t.hu[n]+t.hu[s]) - lx*((fehu-fwhu)+(gnhu-gshu))
			nhv := 0.25*(t.hv[e]+t.hv[w]+t.hv[n]+t.hv[s]) - lx*((fehv-fwhv)+(gnhv-gshv))
			if fcor != 0 {
				// Coriolis source terms: du/dt = +f v, dv/dt = -f u, applied
				// to the provisional momenta (point-local, so parallel runs
				// stay bit-identical to serial).
				nhu, nhv = nhu+fcor*nhv, nhv-fcor*nhu
			}
			if drag != 0 {
				nhu -= drag * nhu
				nhv -= drag * nhv
			}
			t.nh[c] = nh
			t.nhu[c] = nhu
			t.nhv[c] = nhv
		}
		if y+1 < t.H {
			// Row y+2 <= H is always a valid halo-extended row.
			lm, lc, lp = lc, lp, lm
			t.fillFluxLine(y+2, lp)
		}
	}
	t.h, t.nh = t.nh, t.h
	t.hu, t.nhu = t.nhu, t.hu
	t.hv, t.nhv = t.nhv, t.hv
}

// stepLFReference is the retained pre-PR5 Lax-Friedrichs kernel: a
// 6-return flux closure evaluated at all four neighbours of every cell,
// i.e. each cell's flux computed four times. It is the oracle the
// flux-once kernel is tested against.
func (t *Tile) stepLFReference() {
	lx := t.P.Dt / (2 * t.P.Dx)
	g := t.P.G
	flux := func(i int) (fh, fhu, fhv, gh, ghu, ghv float64) {
		h, hu, hv := t.h[i], t.hu[i], t.hv[i]
		if h <= 0 {
			return 0, 0, 0, 0, 0, 0
		}
		u, v := hu/h, hv/h
		p := 0.5 * g * h * h
		return hu, hu*u + p, hu * v, hv, hv * u, hv*v + p
	}
	fcor := t.P.F * t.P.Dt
	drag := t.P.Drag * t.P.Dt
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			c := t.idx(x, y)
			e, w := t.idx(x+1, y), t.idx(x-1, y)
			n, s := t.idx(x, y+1), t.idx(x, y-1)

			feh, fehu, fehv, _, _, _ := flux(e)
			fwh, fwhu, fwhv, _, _, _ := flux(w)
			_, _, _, gnh, gnhu, gnhv := flux(n)
			_, _, _, gsh, gshu, gshv := flux(s)

			nh := 0.25*(t.h[e]+t.h[w]+t.h[n]+t.h[s]) - lx*((feh-fwh)+(gnh-gsh))
			nhu := 0.25*(t.hu[e]+t.hu[w]+t.hu[n]+t.hu[s]) - lx*((fehu-fwhu)+(gnhu-gshu))
			nhv := 0.25*(t.hv[e]+t.hv[w]+t.hv[n]+t.hv[s]) - lx*((fehv-fwhv)+(gnhv-gshv))
			if fcor != 0 {
				nhu, nhv = nhu+fcor*nhv, nhv-fcor*nhu
			}
			if drag != 0 {
				nhu -= drag * nhu
				nhv -= drag * nhv
			}
			t.nh[c] = nh
			t.nhu[c] = nhu
			t.nhv[c] = nhv
		}
	}
	t.h, t.nh = t.nh, t.h
	t.hu, t.nhu = t.nhu, t.hu
	t.hv, t.nhv = t.nhv, t.hv
}

// Halo-exchange tags: one per direction so concurrent exchanges match
// deterministically.
const (
	tagEast = iota + 100
	tagWest
	tagNorth
	tagSouth
)

// dirTag maps a direction to its halo tag (indexed by vtopo.Direction).
var dirTag = [4]int{
	vtopo.West:  tagWest,
	vtopo.East:  tagEast,
	vtopo.South: tagSouth,
	vtopo.North: tagNorth,
}

// edgeCells returns the number of boundary cells on the given edge.
func (t *Tile) edgeCells(dir vtopo.Direction) int {
	if dir == vtopo.West || dir == vtopo.East {
		return t.H
	}
	return t.W
}

// packEdge writes the owned boundary row/column facing dir into buf
// (3 values per cell).
func (t *Tile) packEdge(dir vtopo.Direction, buf []float64) {
	switch dir {
	case vtopo.West:
		for y := 0; y < t.H; y++ {
			i := t.idx(0, y)
			buf[3*y], buf[3*y+1], buf[3*y+2] = t.h[i], t.hu[i], t.hv[i]
		}
	case vtopo.East:
		for y := 0; y < t.H; y++ {
			i := t.idx(t.W-1, y)
			buf[3*y], buf[3*y+1], buf[3*y+2] = t.h[i], t.hu[i], t.hv[i]
		}
	case vtopo.South:
		for x := 0; x < t.W; x++ {
			i := t.idx(x, 0)
			buf[3*x], buf[3*x+1], buf[3*x+2] = t.h[i], t.hu[i], t.hv[i]
		}
	default: // North
		for x := 0; x < t.W; x++ {
			i := t.idx(x, t.H-1)
			buf[3*x], buf[3*x+1], buf[3*x+2] = t.h[i], t.hu[i], t.hv[i]
		}
	}
}

// unpackEdge writes a neighbour's boundary data into the halo cells
// facing dir.
func (t *Tile) unpackEdge(dir vtopo.Direction, data []float64) {
	switch dir {
	case vtopo.West:
		for y := 0; y < t.H; y++ {
			i := t.idx(-1, y)
			t.h[i], t.hu[i], t.hv[i] = data[3*y], data[3*y+1], data[3*y+2]
		}
	case vtopo.East:
		for y := 0; y < t.H; y++ {
			i := t.idx(t.W, y)
			t.h[i], t.hu[i], t.hv[i] = data[3*y], data[3*y+1], data[3*y+2]
		}
	case vtopo.South:
		for x := 0; x < t.W; x++ {
			i := t.idx(x, -1)
			t.h[i], t.hu[i], t.hv[i] = data[3*x], data[3*x+1], data[3*x+2]
		}
	default: // North
		for x := 0; x < t.W; x++ {
			i := t.idx(x, t.H)
			t.h[i], t.hu[i], t.hv[i] = data[3*x], data[3*x+1], data[3*x+2]
		}
	}
}

// Exchange performs the 4-neighbour halo exchange over the
// communicator, whose ranks form the given process grid (local rank i
// at grid position (i%Px, i/Px)). Ranks on domain edges fill reflective
// boundaries instead.
//
// The fast path is allocation-free in steady state: edges are packed
// into pooled payloads sent with ownership transfer, and received
// payloads are recycled after unpacking. Because sends are eager in
// this runtime, posting all sends first and then receiving in fixed
// direction order has exactly the virtual-time behavior of the retained
// nonblocking reference path (total wait telescopes to the latest
// arrival regardless of receive order).
func (t *Tile) Exchange(c *mpi.Comm, grid vtopo.Grid) error {
	if reference.Load() {
		return t.exchangeReference(c, grid)
	}
	me := c.Rank()
	for d := vtopo.West; d <= vtopo.North; d++ {
		nb := grid.Neighbor(me, d)
		if nb < 0 {
			continue
		}
		buf := c.AllocPayload(3 * t.edgeCells(d))
		t.packEdge(d, buf)
		c.SendOwned(nb, dirTag[d], buf)
	}
	for d := vtopo.West; d <= vtopo.North; d++ {
		nb := grid.Neighbor(me, d)
		if nb < 0 {
			continue
		}
		// The neighbour's message towards us carries the tag of the
		// direction it sent (its d.Opposite() is our d).
		data, err := c.Recv(nb, dirTag[d.Opposite()])
		if err != nil {
			return err
		}
		t.unpackEdge(d, data)
		c.FreePayload(data)
	}
	t.SetReflective()
	return nil
}

// exchangeReference is the retained pre-PR5 halo exchange: fresh pack
// slices per direction per step, copying sends and nonblocking request
// handles. It computes identical fields and virtual times to Exchange.
func (t *Tile) exchangeReference(c *mpi.Comm, grid vtopo.Grid) error {
	me := c.Rank()
	pack := func(dir vtopo.Direction) []float64 {
		var out []float64
		switch dir {
		case vtopo.West:
			out = make([]float64, 0, 3*t.H)
			for y := 0; y < t.H; y++ {
				i := t.idx(0, y)
				out = append(out, t.h[i], t.hu[i], t.hv[i])
			}
		case vtopo.East:
			out = make([]float64, 0, 3*t.H)
			for y := 0; y < t.H; y++ {
				i := t.idx(t.W-1, y)
				out = append(out, t.h[i], t.hu[i], t.hv[i])
			}
		case vtopo.South:
			out = make([]float64, 0, 3*t.W)
			for x := 0; x < t.W; x++ {
				i := t.idx(x, 0)
				out = append(out, t.h[i], t.hu[i], t.hv[i])
			}
		default: // North
			out = make([]float64, 0, 3*t.W)
			for x := 0; x < t.W; x++ {
				i := t.idx(x, t.H-1)
				out = append(out, t.h[i], t.hu[i], t.hv[i])
			}
		}
		return out
	}
	unpack := func(dir vtopo.Direction, data []float64) {
		switch dir {
		case vtopo.West:
			for y := 0; y < t.H; y++ {
				i := t.idx(-1, y)
				t.h[i], t.hu[i], t.hv[i] = data[3*y], data[3*y+1], data[3*y+2]
			}
		case vtopo.East:
			for y := 0; y < t.H; y++ {
				i := t.idx(t.W, y)
				t.h[i], t.hu[i], t.hv[i] = data[3*y], data[3*y+1], data[3*y+2]
			}
		case vtopo.South:
			for x := 0; x < t.W; x++ {
				i := t.idx(x, -1)
				t.h[i], t.hu[i], t.hv[i] = data[3*x], data[3*x+1], data[3*x+2]
			}
		default: // North
			for x := 0; x < t.W; x++ {
				i := t.idx(x, t.H)
				t.h[i], t.hu[i], t.hv[i] = data[3*x], data[3*x+1], data[3*x+2]
			}
		}
	}
	tags := map[vtopo.Direction]int{
		vtopo.East: tagEast, vtopo.West: tagWest,
		vtopo.North: tagNorth, vtopo.South: tagSouth,
	}

	var sends []*mpi.Request
	recvs := map[vtopo.Direction]*mpi.Request{}
	for d := vtopo.West; d <= vtopo.North; d++ {
		nb := grid.Neighbor(me, d)
		if nb < 0 {
			continue
		}
		sends = append(sends, c.Isend(nb, tags[d], pack(d)))
		// The neighbour's message towards us carries the tag of the
		// direction it sent (its d.Opposite() is our d).
		recvs[d] = c.Irecv(nb, tags[d.Opposite()])
	}
	for d, r := range recvs {
		data, err := r.Wait()
		if err != nil {
			return err
		}
		unpack(d, data)
	}
	if err := mpi.WaitAll(sends...); err != nil {
		return err
	}
	t.SetReflective()
	return nil
}

// Decompose returns the owned rectangle of local rank r in a Px x Py
// block decomposition of an nx x ny domain: start/size with remainders
// spread over the leading ranks.
func Decompose(nx, ny int, grid vtopo.Grid, r int) (x0, y0, w, h int) {
	px, py := grid.Px, grid.Py
	cx, cy := grid.Coord(r)
	w, x0 = share(nx, px, cx)
	h, y0 = share(ny, py, cy)
	return x0, y0, w, h
}

func share(n, parts, i int) (size, start int) {
	base := n / parts
	rem := n % parts
	size = base
	if i < rem {
		size++
	}
	start = i*base + min(i, rem)
	return size, start
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunSerial integrates the full domain on a single tile for the given
// number of steps and returns the final state — the reference solution
// for parallel-equivalence tests.
func RunSerial(nx, ny, steps int, p Params, init InitFunc) (*State, error) {
	t, err := NewTile(nx, ny, 0, 0, nx, ny, p)
	if err != nil {
		return nil, err
	}
	t.Fill(init)
	for s := 0; s < steps; s++ {
		t.SetReflective()
		t.Step()
	}
	out := NewState(nx, ny)
	t.Interior(out)
	return out, nil
}

// Gather assembles the full state from every rank's tile at local rank
// 0 of the communicator; other ranks receive nil. Payloads travel as
// pooled owned buffers and are recycled at the root after decoding.
func Gather(c *mpi.Comm, t *Tile) (*State, error) {
	// Payload: x0, y0, w, h, then fields.
	payload := c.AllocPayload(4 + 3*t.W*t.H)
	payload[0], payload[1] = float64(t.X0), float64(t.Y0)
	payload[2], payload[3] = float64(t.W), float64(t.H)
	k := 4
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			i := t.idx(x, y)
			payload[k], payload[k+1], payload[k+2] = t.h[i], t.hu[i], t.hv[i]
			k += 3
		}
	}
	all, err := c.Gather(payload)
	if err != nil {
		return nil, err
	}
	if all == nil {
		return nil, nil
	}
	out := NewState(t.GNX, t.GNY)
	for _, d := range all {
		x0, y0 := int(d[0]), int(d[1])
		w, h := int(d[2]), int(d[3])
		if len(d) != 4+3*w*h {
			return nil, fmt.Errorf("%w: payload %d for %dx%d tile", ErrBadDecomp, len(d), w, h)
		}
		k := 4
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				j := out.At(x0+x, y0+y)
				out.H[j], out.HU[j], out.HV[j] = d[k], d[k+1], d[k+2]
				k += 3
			}
		}
		c.FreePayload(d)
	}
	return out, nil
}
