//go:build !race

package driver

const raceEnabled = false
