// Package driver orchestrates complete simulated WRF runs and
// implements the two execution strategies the paper compares
// (Section 3): the default strategy, which integrates every nested
// simulation sequentially on the full processor set, and the proposed
// concurrent strategy, which partitions the virtual processor grid
// among the siblings using predicted execution times and runs them
// simultaneously on sub-communicators, optionally with topology-aware
// mappings on the torus.
package driver

import (
	"errors"
	"fmt"
	"strconv"

	"nestwrf/internal/alloc"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/metrics"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
	"nestwrf/internal/netsim"
	"nestwrf/internal/predict"
	"nestwrf/internal/telemetry"
	"nestwrf/internal/torus"
	"nestwrf/internal/vtopo"
)

// Strategy selects how sibling nests are executed.
type Strategy int

// Execution strategies.
const (
	// Sequential is WRF's default: each nest in turn on all processors.
	Sequential Strategy = iota
	// Concurrent is the paper's strategy: siblings simultaneously on
	// disjoint rectangular processor partitions.
	Concurrent
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Sequential {
		return "sequential"
	}
	return "concurrent"
}

// MapKind selects the rank-to-torus mapping.
type MapKind int

// Mappings (Section 3.3).
const (
	MapSequential MapKind = iota // topology-oblivious default (Fig. 5b)
	MapTXYZ                      // Blue Gene's TXYZ ordering
	MapPartition                 // partition mapping (Fig. 6a)
	MapMultiLevel                // multi-level folded mapping (Fig. 6b)
)

// String implements fmt.Stringer.
func (k MapKind) String() string {
	switch k {
	case MapSequential:
		return "oblivious"
	case MapTXYZ:
		return "txyz"
	case MapPartition:
		return "partition"
	case MapMultiLevel:
		return "multilevel"
	}
	return fmt.Sprintf("MapKind(%d)", int(k))
}

// AllocPolicy selects how sibling partitions are sized.
type AllocPolicy int

// Allocation policies (Sections 3.2 and 4.6).
const (
	// AllocPredicted: Algorithm 1 with execution-time ratios from the
	// interpolation-based performance model.
	AllocPredicted AllocPolicy = iota
	// AllocNaivePoints: consecutive strips proportional to point counts.
	AllocNaivePoints
	// AllocEqual: equal strips regardless of workload.
	AllocEqual
	// AllocStripsPredicted: consecutive strips sized by the predicted
	// execution times — the shape ablation: same weights as
	// AllocPredicted but without Algorithm 1's square-like bisection.
	AllocStripsPredicted
)

// String implements fmt.Stringer.
func (p AllocPolicy) String() string {
	switch p {
	case AllocPredicted:
		return "predicted"
	case AllocNaivePoints:
		return "naive-points"
	case AllocEqual:
		return "equal"
	case AllocStripsPredicted:
		return "strips-predicted"
	}
	return fmt.Sprintf("AllocPolicy(%d)", int(p))
}

// Options configure a simulated run.
type Options struct {
	Machine  machine.Machine
	Ranks    int
	Strategy Strategy
	MapKind  MapKind
	Alloc    AllocPolicy

	// Predictor supplies execution-time ratios for AllocPredicted. When
	// nil, a predictor is trained from the machine's cost model on the
	// default 13-shape basis (the paper's 13 profiling runs).
	Predictor *predict.Model

	// IOMode and OutputEverySteps control the I/O model: every
	// OutputEverySteps parent iterations, each domain writes a forecast
	// file. Zero disables I/O.
	IOMode           iosim.Mode
	OutputEverySteps int

	// NoContention disables the link-sharing congestion model (every
	// message sees full link bandwidth). Used by the contention
	// ablation experiment.
	NoContention bool

	// FixedWeights, when non-nil and matching the first-level sibling
	// count, bypasses the predictor and feeds these weights directly to
	// Algorithm 1. Used by the steering controller, which corrects the
	// allocation from measured phase times. Deeper nesting levels still
	// use the predictor.
	FixedWeights []float64

	// Metrics, when non-nil, receives the run's instrumentation
	// (per-phase time breakdowns, link congestion, I/O volumes). Nil —
	// the default — keeps all metric collection off the hot path.
	Metrics *metrics.Registry

	// Tracer, when non-nil, receives hierarchical wall-clock spans: one
	// driver-layer span for the run, with a phase-layer child per phase
	// cost evaluation. TraceParent links the run span under a caller
	// span (a plan-cache lookup, a campaign member); zero makes it a
	// root. A nil Tracer is a zero-alloc no-op, and neither field is
	// part of any plan-cache key.
	Tracer      *telemetry.Tracer
	TraceParent telemetry.SpanID

	// Parallel lets Run fan independent sibling-subtree cost
	// evaluations over spare worker-pool slots. The merged result is
	// byte-identical to the sequential evaluation (accounting is
	// journaled and replayed in sibling order), so the flag trades
	// nothing but determinism of *who* computes: BuildPlan sets it on
	// its cost run, and plan-cache keys ignore it. Runs that build
	// reports or record trace spans stay sequential regardless.
	Parallel bool
}

// OutputBytesPerPoint is the forecast output volume per horizontal grid
// point (3D fields over all vertical levels).
const OutputBytesPerPoint = 4500.0

// DomainMetrics reports the per-sibling timings behind Figs. 9 and 10.
type DomainMetrics struct {
	Name string
	// Ranks the sibling ran on.
	Ranks int
	// StepTime is the duration of one nest sub-step (including nested
	// descendants).
	StepTime float64
	// PhaseTime is Ratio * StepTime + coupling: the sibling's share of
	// one parent iteration.
	PhaseTime float64
	// Rect is the processor partition (concurrent strategy only).
	Rect alloc.Rect
}

// Result aggregates one run's virtual-time metrics, per parent
// iteration.
type Result struct {
	// IterTime is the integration time (no I/O).
	IterTime float64
	// IOTime is the amortized per-iteration I/O time.
	IOTime float64
	// WaitAvg and WaitMax are the mean and maximum accumulated per-rank
	// MPI_Wait times per iteration.
	WaitAvg, WaitMax float64
	// HopsAvg is the communication-weighted mean hop distance.
	HopsAvg float64
	// Siblings reports the first-level nests.
	Siblings []DomainMetrics
	// Rects are the first-level partitions (concurrent strategy only).
	Rects []alloc.Rect
}

// Total returns integration plus I/O time per iteration.
func (r Result) Total() float64 { return r.IterTime + r.IOTime }

// Errors returned by Run.
var (
	ErrBadRanks   = errors.New("driver: rank count must be positive")
	ErrNoSiblings = errors.New("driver: concurrent strategy needs at least one nest")
	ErrBadMachine = errors.New("driver: machine model incomplete")
)

// Validate reports whether the options can drive runs whose derived
// quantities stay finite. Run itself only requires a positive rank
// count, but layers that build arithmetic on top of run results — the
// campaign redistribution model divides by Bandwidth*Ranks, the
// ensemble engine aggregates thousands of members — call Validate up
// front so a zero bandwidth or rank count surfaces as a typed error
// instead of Inf/NaN in the output.
func (o Options) Validate() error {
	if o.Ranks <= 0 {
		return fmt.Errorf("%w: ranks=%d", ErrBadRanks, o.Ranks)
	}
	if !(o.Machine.Net.Bandwidth > 0) {
		return fmt.Errorf("%w: %q has torus bandwidth %v", ErrBadMachine,
			o.Machine.Name, o.Machine.Net.Bandwidth)
	}
	return nil
}

// TrainPredictor fits the interpolation model from the machine's cost
// model on the default basis, profiled on a fixed 64-rank grid — the
// counterpart of the paper's 13 profiling runs.
func TrainPredictor(m machine.Machine) (*predict.Model, error) {
	trainCount.Add(1)
	const profileRanks = 64
	g, err := machine.GridFor(profileRanks)
	if err != nil {
		return nil, err
	}
	tor, err := machine.TorusFor(profileRanks)
	if err != nil {
		return nil, err
	}
	mp, err := mapping.Sequential(g, tor)
	if err != nil {
		return nil, err
	}
	samples := predict.Profile(predict.DefaultBasis(), func(nx, ny int) float64 {
		return model.SingleDomainStep(m, mp, nest.Root("probe", nx, ny)).Time()
	})
	return predict.Fit(samples)
}

// run tracks the state of one simulated iteration.
type run struct {
	opt     Options
	pred    *predict.Model // resolved predictor, trained at most once per Run
	mp      *mapping.Mapping
	waitAvg []float64 // per-rank accumulated wait (average-case comm)
	waitMax []float64 // per-rank accumulated wait (worst-case comm)
	hopNum  float64   // hops weighted by communicating rank-steps
	hopDen  float64
	rep     *reportBuilder   // nil unless a report or metrics were requested
	span    telemetry.SpanID // the run span phase spans parent under

	// journaling runs (parallel sibling evaluation) record accounting
	// ops here instead of mutating waitAvg/waitMax/hopNum/hopDen; the
	// parent replays the journal in sequential sibling order.
	journaling bool
	journal    []acctOp
}

// predictor returns the run's predictor, resolving the shared cached
// model for the machine on first use (training it if this machine has
// never been seen). The caller's Options are never written to, so a
// single Options value can safely configure concurrent Runs.
func (r *run) predictor() (*predict.Model, error) {
	if r.pred == nil {
		p, err := CachedPredictor(r.opt.Machine)
		if err != nil {
			return nil, err
		}
		r.pred = p
	}
	return r.pred, nil
}

// Run simulates one parent iteration of the domain tree cfg under the
// given options and returns its virtual-time metrics. When
// opt.Metrics is set, the run additionally records its breakdown into
// the registry.
func Run(cfg *nest.Domain, opt Options) (Result, error) {
	res, _, err := run0(cfg, opt, opt.Metrics != nil)
	return res, err
}

// RunWithReport is Run plus the structured per-run Report: per-domain
// phase breakdowns, predicted-vs-realized sibling phase times,
// link-congestion summaries and I/O events.
func RunWithReport(cfg *nest.Domain, opt Options) (Result, *Report, error) {
	return run0(cfg, opt, true)
}

func run0(cfg *nest.Domain, opt Options, observe bool) (res Result, rep *Report, err error) {
	if opt.Ranks <= 0 {
		return Result{}, nil, ErrBadRanks
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	var sp *telemetry.ActiveSpan
	if opt.Tracer.Recording() {
		sp = opt.Tracer.Start(opt.TraceParent, "driver.run", telemetry.LayerDriver)
		sp.Annotate("machine", opt.Machine.Name)
		sp.Annotate("strategy", opt.Strategy.String())
		sp.Annotate("alloc", opt.Alloc.String())
		sp.Annotate("mapping", opt.MapKind.String())
		sp.Annotate("ranks", strconv.Itoa(opt.Ranks))
		defer func() {
			if err != nil {
				sp.Annotate("error", err.Error())
			} else {
				sp.Annotate("iter_seconds", strconv.FormatFloat(res.IterTime, 'g', -1, 64))
			}
			sp.End()
		}()
	}
	g, err := machine.GridFor(opt.Ranks)
	if err != nil {
		return Result{}, nil, err
	}
	tor, err := machine.TorusFor(opt.Ranks)
	if err != nil {
		return Result{}, nil, err
	}

	r := &run{
		opt:     opt,
		pred:    opt.Predictor,
		waitAvg: make([]float64, opt.Ranks),
		waitMax: make([]float64, opt.Ranks),
		span:    sp.ID(),
	}
	if observe {
		r.rep = newReportBuilder()
	}

	// The first-level partitions are needed up front: the partition
	// mapping is defined by them.
	var rects []alloc.Rect
	if opt.Strategy == Concurrent {
		if len(cfg.Children) == 0 {
			return Result{}, nil, ErrNoSiblings
		}
		rects, err = r.allocate(cfg.Children, g.Px, g.Py)
		if err != nil {
			return Result{}, nil, err
		}
	}

	r.mp, err = buildMapping(opt.MapKind, g, tor, rects, opt.Machine)
	if err != nil {
		return Result{}, nil, err
	}

	full, err := vtopo.NewSubgrid(g, alloc.Rect{W: g.Px, H: g.Py})
	if err != nil {
		return Result{}, nil, err
	}

	res = Result{Rects: rects}
	iter, sibs, err := r.domainIter(cfg, full, rects, 1)
	if err != nil {
		return Result{}, nil, err
	}
	res.IterTime = iter
	res.Siblings = sibs

	// Aggregate wait statistics.
	var sum float64
	for _, w := range r.waitAvg {
		sum += w
	}
	res.WaitAvg = sum / float64(opt.Ranks)
	for _, w := range r.waitMax {
		if w > res.WaitMax {
			res.WaitMax = w
		}
	}
	if r.hopDen > 0 {
		res.HopsAvg = r.hopNum / r.hopDen
	}

	if opt.OutputEverySteps > 0 {
		res.IOTime = r.ioTime(cfg, rects) / float64(opt.OutputEverySteps)
	}
	if !observe {
		return res, nil, nil
	}
	rep, err = r.buildReport(cfg, res)
	if err != nil {
		return Result{}, nil, err
	}
	if opt.Metrics != nil {
		recordMetrics(opt.Metrics, rep)
	}
	return res, rep, nil
}

// allocate partitions a w x h processor rectangle among the children.
func (r *run) allocate(children []*nest.Domain, w, h int) ([]alloc.Rect, error) {
	switch r.opt.Alloc {
	case AllocEqual:
		return alloc.EqualSplit(len(children), w, h)
	case AllocNaivePoints:
		weights := make([]float64, len(children))
		for i, c := range children {
			weights[i] = float64(c.Points())
		}
		return alloc.NaiveStrips(weights, w, h)
	case AllocStripsPredicted:
		p, err := r.predictor()
		if err != nil {
			return nil, err
		}
		return alloc.NaiveStrips(p.Weights(children), w, h)
	default: // AllocPredicted
		if len(r.opt.FixedWeights) == len(children) {
			return alloc.Partition(r.opt.FixedWeights, w, h)
		}
		p, err := r.predictor()
		if err != nil {
			return nil, err
		}
		return alloc.Partition(p.Weights(children), w, h)
	}
}

// buildMapping constructs the requested rank-to-torus mapping. The
// partition mapping needs the first-level partitions; when they are
// absent (sequential strategy) it falls back to the oblivious mapping,
// which is what the unpartitioned default run uses anyway.
func buildMapping(kind MapKind, g vtopo.Grid, tor torus.Torus, rects []alloc.Rect, m machine.Machine) (*mapping.Mapping, error) {
	switch kind {
	case MapTXYZ:
		return mapping.TXYZ(g, tor, m.CoresPerNode)
	case MapMultiLevel:
		return mapping.MultiLevel(g, tor)
	case MapPartition:
		if len(rects) == 0 {
			return mapping.Sequential(g, tor)
		}
		return mapping.PartitionMapping(g, tor, rects)
	default:
		return mapping.Sequential(g, tor)
	}
}

// domainIter returns the duration of one step of domain d on subgrid
// sg, including the nested phases of its children, and the per-sibling
// metrics for d's immediate children. rects, when non-nil, are the
// precomputed partitions for d's children (only used at the top level
// of the concurrent strategy; deeper levels allocate on the fly).
// mult is the number of times this step executes per parent iteration,
// used to accumulate per-rank wait times correctly across nesting
// levels.
// costs evaluates a phase under the run's contention setting. When a
// report is being built (and contention is on), the phase's link-
// congestion summary is captured alongside the costs.
func (r *run) costs(placements []model.Placement) []model.StepCost {
	var sp *telemetry.ActiveSpan
	if r.opt.Tracer.Recording() {
		// phaseName allocates, so it is only evaluated on the traced path.
		sp = r.opt.Tracer.Start(r.span, phaseName(placements), telemetry.LayerPhase)
	}
	var cs []model.StepCost
	switch {
	case r.opt.NoContention:
		cs = model.PhaseCostsNoContention(r.opt.Machine, r.mp, placements)
	case r.rep != nil:
		var cong netsim.Congestion
		cs, cong = model.PhaseCostsCongestion(r.opt.Machine, r.mp, placements)
		r.rep.observeCongestion(phaseName(placements), cong)
	default:
		cs = model.PhaseCosts(r.opt.Machine, r.mp, placements)
	}
	if sp != nil {
		var longest float64
		for _, c := range cs {
			if t := c.Time(); t > longest {
				longest = t
			}
		}
		sp.Annotate("domains", strconv.Itoa(len(placements)))
		sp.Annotate("virtual_seconds", strconv.FormatFloat(longest, 'g', -1, 64))
		sp.End()
	}
	return cs
}

func (r *run) domainIter(d *nest.Domain, sg vtopo.Subgrid, rects []alloc.Rect, mult float64) (float64, []DomainMetrics, error) {
	own := r.costs([]model.Placement{{D: d, SG: sg}})[0]
	r.account(d.Name, sg, mult, own)
	t := own.Time()
	if len(d.Children) == 0 {
		return t, nil, nil
	}

	var sibs []DomainMetrics
	switch r.opt.Strategy {
	case Sequential:
		if r.fanSiblings(len(d.Children)) {
			// Evaluate each sibling subtree on a journaling clone in
			// parallel, then merge in sequential child order: replaying
			// the journals reproduces the sequential path's exact float
			// operation sequence, so the merged state is byte-identical.
			outs := make([]siblingEval, len(d.Children))
			fanOut(len(d.Children), func(i int) {
				rc := r.journalClone()
				c := d.Children[i]
				step, _, err := rc.domainIter(c, sg, nil, mult*float64(c.Ratio))
				outs[i] = siblingEval{step: step, ops: rc.journal, err: err}
			})
			for i, c := range d.Children {
				if outs[i].err != nil {
					return 0, nil, outs[i].err
				}
				r.replay(outs[i].ops)
				couple := model.CouplingCost(r.opt.Machine, c, sg.Size())
				phase := float64(c.Ratio)*outs[i].step + couple
				t += phase
				sibs = append(sibs, DomainMetrics{
					Name:      c.Name,
					Ranks:     sg.Size(),
					StepTime:  outs[i].step,
					PhaseTime: phase,
					Rect:      sg.Rect,
				})
			}
			break
		}
		for _, c := range d.Children {
			step, _, err := r.domainIter(c, sg, nil, mult*float64(c.Ratio))
			if err != nil {
				return 0, nil, err
			}
			// The sub-steps repeat Ratio times; coupling happens once per
			// parent step.
			couple := model.CouplingCost(r.opt.Machine, c, sg.Size())
			if r.rep != nil {
				r.rep.phase(c.Name, sg.Size()).CouplingSeconds += mult * couple
			}
			phase := float64(c.Ratio)*step + couple
			t += phase
			sibs = append(sibs, DomainMetrics{
				Name:      c.Name,
				Ranks:     sg.Size(),
				StepTime:  step,
				PhaseTime: phase,
				Rect:      sg.Rect,
			})
		}
	case Concurrent:
		var err error
		if rects == nil {
			rects, err = r.allocate(d.Children, sg.Rect.W, sg.Rect.H)
			if err != nil {
				return 0, nil, err
			}
			// Deeper-level rects are relative to the subgrid.
			for i := range rects {
				rects[i].X += sg.Rect.X
				rects[i].Y += sg.Rect.Y
			}
		}
		placements := make([]model.Placement, len(d.Children))
		subgrids := make([]vtopo.Subgrid, len(d.Children))
		for i, c := range d.Children {
			csg, err := vtopo.NewSubgrid(sg.Parent, rects[i])
			if err != nil {
				return 0, nil, err
			}
			subgrids[i] = csg
			placements[i] = model.Placement{D: c, SG: csg}
		}
		costs := r.costs(placements)
		// With more than one nested sibling subtree, pre-compute the
		// subtrees' extra costs on journaling clones in parallel; the
		// merge loop below replays each journal at the exact point the
		// sequential path would have produced it.
		var extras []siblingEval
		nested := make([]int, 0, len(d.Children))
		for i, c := range d.Children {
			if len(c.Children) > 0 {
				nested = append(nested, i)
			}
		}
		if r.fanSiblings(len(nested)) {
			extras = make([]siblingEval, len(d.Children))
			fanOut(len(nested), func(k int) {
				i := nested[k]
				rc := r.journalClone()
				c := d.Children[i]
				extra, _, err := rc.nestedExtra(c, subgrids[i], mult*float64(c.Ratio))
				extras[i] = siblingEval{step: extra, ops: rc.journal, err: err}
			})
		}
		var longest float64
		for i, c := range d.Children {
			// One sub-step's communication occurs under full sibling
			// contention; nested descendants recurse on the partition.
			step := costs[i].Time()
			r.account(c.Name, subgrids[i], mult*float64(c.Ratio), costs[i])
			if len(c.Children) > 0 {
				var inner float64
				if extras != nil {
					if extras[i].err != nil {
						return 0, nil, extras[i].err
					}
					r.replay(extras[i].ops)
					inner = extras[i].step
				} else {
					var err error
					inner, _, err = r.nestedExtra(c, subgrids[i], mult*float64(c.Ratio))
					if err != nil {
						return 0, nil, err
					}
				}
				step += inner
			}
			couple := model.CouplingCost(r.opt.Machine, c, subgrids[i].Size())
			if r.rep != nil {
				r.rep.phase(c.Name, subgrids[i].Size()).CouplingSeconds += mult * couple
			}
			phase := float64(c.Ratio)*step + couple
			if phase > longest {
				longest = phase
			}
			sibs = append(sibs, DomainMetrics{
				Name:      c.Name,
				Ranks:     subgrids[i].Size(),
				StepTime:  step,
				PhaseTime: phase,
				Rect:      rects[i],
			})
		}
		// Siblings run simultaneously; the parent resumes when the slowest
		// finishes (the synchronization step of Section 3.2).
		t += longest
	}
	return t, sibs, nil
}

// nestedExtra returns the extra per-step time a domain spends driving
// its own children (used when the domain itself already has a phase
// cost computed as part of a sibling phase).
func (r *run) nestedExtra(d *nest.Domain, sg vtopo.Subgrid, mult float64) (float64, []DomainMetrics, error) {
	total, sibs, err := r.domainIter(d, sg, nil, mult)
	if err != nil {
		return 0, nil, err
	}
	// domainIter includes d's own step cost; subtract it since the
	// caller already accounted for it.
	own := r.costs([]model.Placement{{D: d, SG: sg}})[0]
	extra := total - own.Time()
	// Remove the double-counted own-step wait.
	r.unaccount(d.Name, sg, mult, own)
	if extra < 0 {
		extra = 0
	}
	return extra, sibs, nil
}

// account accrues wait times and hop statistics for the ranks of sg
// executing `steps` sub-steps of domain `name` with the given cost,
// and feeds the report's per-domain phase breakdown when one is being
// built.
func (r *run) account(name string, sg vtopo.Subgrid, steps float64, c model.StepCost) {
	if r.journaling {
		r.journal = append(r.journal, acctOp{name: name, sg: sg, steps: steps, c: c})
		return
	}
	for _, rank := range sg.Ranks() {
		r.waitAvg[rank] += steps * c.CommAvg
		r.waitMax[rank] += steps * c.CommMax
	}
	w := steps * float64(c.Ranks)
	r.hopNum += c.HopsAvg * w
	r.hopDen += w
	if r.rep != nil {
		p := r.rep.phase(name, sg.Size())
		p.Steps += steps
		p.ComputeSeconds += steps * c.Compute
		p.TransferSeconds += steps * c.CommAvg
		p.WaitSeconds += steps * (c.CommMax - c.CommAvg)
	}
}

func (r *run) unaccount(name string, sg vtopo.Subgrid, steps float64, c model.StepCost) {
	if r.journaling {
		r.journal = append(r.journal, acctOp{name: name, sg: sg, steps: steps, c: c, un: true})
		return
	}
	for _, rank := range sg.Ranks() {
		r.waitAvg[rank] -= steps * c.CommAvg
		r.waitMax[rank] -= steps * c.CommMax
	}
	w := steps * float64(c.Ranks)
	r.hopNum -= c.HopsAvg * w
	r.hopDen -= w
	if r.rep != nil {
		p := r.rep.phase(name, sg.Size())
		p.Steps -= steps
		p.ComputeSeconds -= steps * c.Compute
		p.TransferSeconds -= steps * c.CommAvg
		p.WaitSeconds -= steps * (c.CommMax - c.CommAvg)
	}
}

// ioTime returns the cost of one output event: every domain writes a
// forecast file. In the sequential strategy all ranks write every file
// in turn; in the concurrent strategy each sibling's partition writes
// its file, and sibling files are written simultaneously.
func (r *run) ioTime(cfg *nest.Domain, rects []alloc.Rect) float64 {
	p := r.opt.Machine.IO
	mode := r.opt.IOMode
	// write models one domain's forecast file and records the event in
	// the report when one is being built.
	write := func(d *nest.Domain, writers int) float64 {
		bytes := float64(d.Points()) * OutputBytesPerPoint
		t := p.WriteTime(mode, writers, bytes)
		if r.rep != nil {
			r.rep.io = append(r.rep.io, WriteReport{
				Domain: d.Name, Writers: writers, Bytes: bytes, Seconds: t,
			})
		}
		return t
	}
	t := write(cfg, r.opt.Ranks)
	if r.opt.Strategy == Sequential || rects == nil {
		cfg.Walk(func(d *nest.Domain) {
			if d == cfg {
				return
			}
			t += write(d, r.opt.Ranks)
		})
		return t
	}
	// Concurrent: sibling subtrees write in parallel on their partitions.
	var slowest float64
	for i, c := range cfg.Children {
		writers := rects[i].Area()
		var sub float64
		c.Walk(func(d *nest.Domain) {
			sub += write(d, writers)
		})
		if sub > slowest {
			slowest = sub
		}
	}
	return t + slowest
}
