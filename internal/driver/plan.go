package driver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nestwrf/internal/alloc"
	"nestwrf/internal/machine"
	"nestwrf/internal/mapping"
	"nestwrf/internal/nest"
	"nestwrf/internal/predict"
)

// MappingQuality summarizes the communication locality of one mapping
// kind: the average torus hop distance between neighbouring ranks, for
// the parent's full-grid decomposition, per sibling partition, and
// overall.
type MappingQuality struct {
	ParentAvgHops  float64
	SiblingAvgHops []float64
	OverallAvgHops float64
}

// Plan is the immutable outcome of the paper's planning pipeline for
// one configuration under one set of options: the predicted sibling
// weights, the processor partitions of Algorithm 1 under the requested
// allocation policy, the mapping quality of every feasible mapping
// kind, and the predicted cost of running the configuration with the
// requested strategy/mapping. A Plan is built once by BuildPlan and
// never mutated afterwards, so a single value can safely be shared
// across concurrent readers (the plan server hands cached Plans to
// many requests at once).
type Plan struct {
	// Ranks is the total processor count; the virtual grid is Px x Py.
	Ranks, Px, Py int
	// Strategy, Alloc and MapKind echo the options the plan was built
	// for.
	Strategy Strategy
	Alloc    AllocPolicy
	MapKind  MapKind
	// Weights are the predicted relative execution times of the
	// first-level siblings (summing to 1), from the interpolation model
	// (or Options.FixedWeights when supplied).
	Weights []float64
	// Rects are the processor partitions, one per first-level sibling,
	// sized by the requested allocation policy.
	Rects []alloc.Rect
	// Mapping reports hop quality per feasible mapping kind, keyed by
	// the kind's String (infeasible kinds, e.g. non-foldable shapes for
	// the multi-level mapping, are absent).
	Mapping map[string]MappingQuality
	// Cost is the predicted per-iteration cost of executing the
	// configuration under the plan's options on the virtual-time
	// simulator.
	Cost Result
}

// Shared predictor cache. Predictors are deterministic functions of
// the machine's full identity (the paper's 13 profiling runs produce
// the same model every time), so one trained model is shared by every
// run, experiment and server request on the same machine. The key
// covers every field of the machine, not just its name: two machines
// that share a name but differ in any cost-model parameter must not
// share a predictor.
// predEntry is one machine's singleflight training slot: the first
// caller trains inside the Once, and every concurrent first-touch
// caller waits on the same slot instead of training a redundant copy
// (Delaunay training is the most expensive step of a cold plan).
type predEntry struct {
	once sync.Once
	p    *predict.Model
	err  error
}

var (
	predMu    sync.Mutex
	predCache = map[string]*predEntry{}

	// trainCount tallies TrainPredictor invocations; the thundering-herd
	// regression test asserts N concurrent first-touch CachedPredictor
	// calls add exactly one.
	trainCount atomic.Int64
)

// TrainCalls reports how many times TrainPredictor has run in this
// process. Diagnostic: tests use the delta to prove the predictor
// singleflight holds under concurrency.
func TrainCalls() int64 { return trainCount.Load() }

// MachineKey renders the machine's full identity for cache keying: any
// cost-model difference yields a distinct key.
func MachineKey(m machine.Machine) string { return fmt.Sprintf("%#v", m) }

// CachedPredictor returns the shared predictor for m, training it on
// first use. Training is deterministic, so the cached model is
// interchangeable with a freshly trained one; concurrent first-touch
// callers for the same machine share a single training pass.
func CachedPredictor(m machine.Machine) (*predict.Model, error) {
	key := MachineKey(m)
	predMu.Lock()
	e, ok := predCache[key]
	if !ok {
		e = &predEntry{}
		predCache[key] = e
	}
	predMu.Unlock()
	e.once.Do(func() { e.p, e.err = TrainPredictor(m) })
	if e.err != nil {
		// Failed trainings are not cached: drop the entry (unless a
		// reset already replaced it) so the next caller retries.
		predMu.Lock()
		if predCache[key] == e {
			delete(predCache, key)
		}
		predMu.Unlock()
		return nil, e.err
	}
	return e.p, nil
}

// ResetPredictorCache drops all cached predictors, forcing the next
// CachedPredictor call to retrain. Only tests use this, to rebuild
// predictors through whichever reference/fast path is active.
func ResetPredictorCache() {
	predMu.Lock()
	predCache = map[string]*predEntry{}
	predMu.Unlock()
}

// BuildPlan runs performance prediction, processor allocation, mapping
// analysis and cost prediction for cfg under the given options,
// returning the reusable Plan value. The caller's Options are never
// written to.
func BuildPlan(cfg *nest.Domain, opt Options) (*Plan, error) {
	if opt.Ranks <= 0 {
		return nil, ErrBadRanks
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := machine.GridFor(opt.Ranks)
	if err != nil {
		return nil, err
	}
	tor, err := machine.TorusFor(opt.Ranks)
	if err != nil {
		return nil, err
	}

	r := &run{opt: opt, pred: opt.Predictor}
	plan := &Plan{
		Ranks: opt.Ranks, Px: g.Px, Py: g.Py,
		Strategy: opt.Strategy, Alloc: opt.Alloc, MapKind: opt.MapKind,
		Mapping: map[string]MappingQuality{},
	}

	if len(cfg.Children) > 0 {
		if len(opt.FixedWeights) == len(cfg.Children) {
			plan.Weights = append([]float64(nil), opt.FixedWeights...)
		} else {
			pred, err := r.predictor()
			if err != nil {
				return nil, err
			}
			plan.Weights = pred.Weights(cfg.Children)
		}
		plan.Rects, err = r.allocate(cfg.Children, g.Px, g.Py)
		if err != nil {
			return nil, err
		}
	}

	// Mapping quality for every kind that is feasible at this grid and
	// torus shape (e.g. the multi-level mapping needs foldable shapes;
	// infeasible kinds are simply absent from the report).
	builders := []struct {
		kind  MapKind
		build func() (*mapping.Mapping, error)
	}{
		{MapSequential, func() (*mapping.Mapping, error) { return mapping.Sequential(g, tor) }},
		{MapTXYZ, func() (*mapping.Mapping, error) { return mapping.TXYZ(g, tor, opt.Machine.CoresPerNode) }},
		{MapPartition, func() (*mapping.Mapping, error) { return mapping.PartitionMapping(g, tor, plan.Rects) }},
		{MapMultiLevel, func() (*mapping.Mapping, error) { return mapping.MultiLevel(g, tor) }},
	}
	if reference.Load() {
		// Retained sequential reference: builders in order, then the
		// cost run.
		for _, b := range builders {
			mp, err := b.build()
			if err != nil {
				continue
			}
			rep, err := mapping.Analyze(mp, plan.Rects)
			if err != nil {
				return nil, err
			}
			plan.Mapping[b.kind.String()] = MappingQuality{
				ParentAvgHops:  rep.ParentAvg,
				SiblingAvgHops: rep.SiblingAvg,
				OverallAvgHops: rep.OverallAvg,
			}
		}
		runOpt := opt
		runOpt.Predictor = r.pred
		plan.Cost, err = Run(cfg, runOpt)
		if err != nil {
			return nil, err
		}
		return plan, nil
	}

	// Fast cold path: the four mapping build+analyze units and the cost
	// run are independent once weights and partitions exist, so they fan
	// over spare worker-pool slots; the merge below visits slots in
	// builder order, so output and first-error choice match the
	// sequential reference byte for byte. The cost run itself may fan
	// sibling subtrees (Options.Parallel); its result is journal-merged
	// to the identical bits. Phase costs stay memoized across plans, so
	// repeated BuildPlan calls on warm caches remain cheap either way.
	type mapOut struct {
		ok  bool
		q   MappingQuality
		err error
	}
	outs := make([]mapOut, len(builders))
	var cost Result
	var costErr error
	fanOut(len(builders)+1, func(i int) {
		if i == len(builders) {
			runOpt := opt
			runOpt.Predictor = r.pred
			runOpt.Parallel = true
			cost, costErr = Run(cfg, runOpt)
			return
		}
		mp, err := builders[i].build()
		if err != nil {
			return // infeasible kind: absent, as in the sequential skip
		}
		rep, err := mapping.Analyze(mp, plan.Rects)
		if err != nil {
			outs[i].err = err
			return
		}
		outs[i] = mapOut{ok: true, q: MappingQuality{
			ParentAvgHops:  rep.ParentAvg,
			SiblingAvgHops: rep.SiblingAvg,
			OverallAvgHops: rep.OverallAvg,
		}}
	})
	for i, b := range builders {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if outs[i].ok {
			plan.Mapping[b.kind.String()] = outs[i].q
		}
	}
	if costErr != nil {
		return nil, costErr
	}
	plan.Cost = cost
	return plan, nil
}
