package driver

import (
	"math"
	"reflect"
	"testing"

	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
)

func planConfig() *nest.Domain {
	cfg := nest.Root("plan", 286, 307)
	cfg.AddChild("s1", 394, 418, 3, 5, 5)
	cfg.AddChild("s2", 232, 202, 3, 150, 10)
	cfg.AddChild("s3", 313, 337, 3, 140, 150)
	return cfg
}

func TestBuildPlan(t *testing.T) {
	cfg := planConfig()
	opt := Options{
		Machine:  machine.BGL(),
		Ranks:    256,
		Strategy: Concurrent,
		MapKind:  MapMultiLevel,
	}
	p, err := BuildPlan(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks != 256 || p.Px*p.Py != 256 {
		t.Errorf("grid %dx%d for %d ranks", p.Px, p.Py, p.Ranks)
	}
	var sum float64
	for _, w := range p.Weights {
		sum += w
	}
	if len(p.Weights) != 3 || math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights %v sum %v, want 3 weights summing to 1", p.Weights, sum)
	}
	if len(p.Rects) != 3 {
		t.Fatalf("got %d rects, want 3", len(p.Rects))
	}
	area := 0
	for _, r := range p.Rects {
		area += r.Area()
	}
	if area != 256 {
		t.Errorf("partitions cover %d cores, want 256", area)
	}
	for _, kind := range []string{"oblivious", "txyz", "partition", "multilevel"} {
		if _, ok := p.Mapping[kind]; !ok {
			t.Errorf("mapping quality for %q missing (got %v)", kind, p.Mapping)
		}
	}
	// The embedded cost prediction is exactly what Run reports.
	want, err := Run(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Cost, want) {
		t.Errorf("plan cost %+v != Run result %+v", p.Cost, want)
	}
}

func TestBuildPlanFixedWeights(t *testing.T) {
	cfg := planConfig()
	opt := Options{
		Machine:      machine.BGL(),
		Ranks:        64,
		Strategy:     Concurrent,
		FixedWeights: []float64{0.5, 0.25, 0.25},
	}
	p, err := BuildPlan(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Weights, opt.FixedWeights) {
		t.Errorf("weights %v, want the fixed weights %v", p.Weights, opt.FixedWeights)
	}
	// The plan must have copied, not aliased, the caller's slice.
	opt.FixedWeights[0] = 0.9
	if p.Weights[0] != 0.5 {
		t.Error("plan weights alias the caller's FixedWeights slice")
	}
}

func TestBuildPlanBadInput(t *testing.T) {
	if _, err := BuildPlan(planConfig(), Options{Machine: machine.BGL()}); err == nil {
		t.Error("BuildPlan accepted zero ranks")
	}
	bad := nest.Root("bad", -1, 10)
	if _, err := BuildPlan(bad, Options{Machine: machine.BGL(), Ranks: 64}); err == nil {
		t.Error("BuildPlan accepted invalid domain")
	}
}

func TestCachedPredictorSharing(t *testing.T) {
	p1, err := CachedPredictor(machine.BGL())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CachedPredictor(machine.BGL())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same machine identity did not share a predictor")
	}
	// A machine differing in any cost parameter must not share.
	m := machine.BGL()
	m.PointCost *= 2
	p3, err := CachedPredictor(m)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different machine identity shared a predictor")
	}
}
