package driver

import (
	"fmt"
	"strings"
)

// The parsers below are the inverses of the corresponding String
// methods, shared by every front end (CLI flags, the plan server's
// JSON fields) so that accepted spellings and error messages cannot
// drift apart. All of them are case-insensitive and list the accepted
// names in their errors.

// ParseStrategy parses an execution-strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "sequential", "default":
		return Sequential, nil
	case "concurrent":
		return Concurrent, nil
	}
	return 0, fmt.Errorf("driver: unknown strategy %q (accepted: sequential, concurrent)", s)
}

// ParseMapKind parses a mapping name.
func ParseMapKind(s string) (MapKind, error) {
	switch strings.ToLower(s) {
	case "oblivious", "sequential":
		return MapSequential, nil
	case "txyz":
		return MapTXYZ, nil
	case "partition":
		return MapPartition, nil
	case "multilevel", "multi-level":
		return MapMultiLevel, nil
	}
	return 0, fmt.Errorf("driver: unknown mapping %q (accepted: oblivious, txyz, partition, multilevel)", s)
}

// ParseAllocPolicy parses an allocation-policy name.
func ParseAllocPolicy(s string) (AllocPolicy, error) {
	switch strings.ToLower(s) {
	case "predicted":
		return AllocPredicted, nil
	case "naive-points", "naive", "points":
		return AllocNaivePoints, nil
	case "equal":
		return AllocEqual, nil
	case "strips-predicted", "strips":
		return AllocStripsPredicted, nil
	}
	return 0, fmt.Errorf("driver: unknown allocation policy %q (accepted: predicted, naive-points, equal, strips-predicted)", s)
}
