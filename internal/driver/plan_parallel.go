package driver

import (
	"runtime"
	"sync"
	"sync/atomic"

	"nestwrf/internal/model"
	"nestwrf/internal/nest"
	"nestwrf/internal/predict"
	"nestwrf/internal/vtopo"
)

// reference forces the fully sequential planning path when set: BuildPlan
// evaluates its mapping analyses and cost run one after the other, and
// Run never fans sibling subtrees, regardless of Options.Parallel. The
// sequential path is retained as the byte-identity oracle for the
// parallel one (same pattern as netsim/model/solver/wrfsim/mpi).
var reference atomic.Bool

// SetReference toggles the retained sequential planning path. Safe to
// flip concurrently with in-flight plans: both paths produce identical
// bytes, so a mid-flight flip only changes who computes them.
func SetReference(on bool) { reference.Store(on) }

// planPool bounds the goroutines that all parallel planning work in the
// process — intra-plan fan-out and per-sibling subtree evaluation — may
// add beyond their callers. BuildPlans batches bound their own cross-job
// workers separately.
var planPool = make(chan struct{}, runtime.GOMAXPROCS(0))

// fanOut runs fn(0..n-1), spilling onto spare planPool slots; indices
// that cannot get a slot run inline on the calling goroutine, so a
// saturated pool degrades to plain sequential execution instead of
// deadlocking under nested fan-out. Returns after every fn completed.
func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case planPool <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() { <-planPool; wg.Done() }()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}

// acctOp is one deferred account/unaccount mutation. Per-sibling
// subtree evaluations run on journaling run clones that record these
// instead of touching shared accumulators; the parent replays the
// journals in sequential child order, so every float lands in
// waitAvg/waitMax/hopNum/hopDen through the exact operation sequence
// the sequential path performs (float addition is not associative —
// merging per-worker partial sums would drift in the last bits).
type acctOp struct {
	name  string
	sg    vtopo.Subgrid
	steps float64
	c     model.StepCost
	un    bool
}

// journalClone returns a run that shares r's immutable inputs (options,
// predictor, mapping) but records accounting into a private journal
// instead of mutating shared state. Clones never build reports or trace
// spans — fanSiblings gates on both.
func (r *run) journalClone() *run {
	return &run{opt: r.opt, pred: r.pred, mp: r.mp, journaling: true}
}

// replay applies a journal in recorded order through the real
// account/unaccount methods (or appends it, when r itself journals for
// a parent — nested fans compose).
func (r *run) replay(ops []acctOp) {
	for _, op := range ops {
		if op.un {
			r.unaccount(op.name, op.sg, op.steps, op.c)
		} else {
			r.account(op.name, op.sg, op.steps, op.c)
		}
	}
}

// fanSiblings reports whether n sibling subtree evaluations may run on
// journaling clones in parallel. Reports and recording tracers need the
// true sequential interleaving (per-phase congestion capture, span
// ordering), so either disables the fan; so does the reference toggle.
func (r *run) fanSiblings(n int) bool {
	return n > 1 && r.opt.Parallel && r.rep == nil &&
		!r.opt.Tracer.Recording() && !reference.Load()
}

// siblingEval carries one fanned sibling-subtree evaluation back to the
// deterministic merge: the subtree's step (or nested-extra) time, its
// accounting journal, and any error.
type siblingEval struct {
	step float64
	ops  []acctOp
	err  error
}

// PlanJob pairs one domain configuration with its planning options for
// BuildPlans.
type PlanJob struct {
	Config  *nest.Domain
	Options Options
}

// BuildPlans builds every job's plan in one batched pass: jobs fan out
// over at most `workers` goroutines (GOMAXPROCS when workers <= 0), and
// each distinct machine's predictor is resolved once up front so a
// cold batch shares one training per machine. Outputs keep input order:
// plans[i] and errs[i] belong to jobs[i], and each plan is byte-
// identical to what BuildPlan(jobs[i]...) returns on its own. Under
// SetReference(true) the jobs run sequentially through the retained
// reference path.
func BuildPlans(jobs []PlanJob, workers int) ([]*Plan, []error) {
	plans := make([]*Plan, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return plans, errs
	}
	// Machines whose training fails are left to the per-job path, which
	// reports the error only if the job actually needs a predictor
	// (fixed-weight and equal-split jobs do not).
	shared := map[string]*predict.Model{}
	for _, j := range jobs {
		if j.Options.Predictor != nil {
			continue
		}
		key := MachineKey(j.Options.Machine)
		if _, seen := shared[key]; seen {
			continue
		}
		p, err := CachedPredictor(j.Options.Machine)
		if err != nil {
			p = nil
		}
		shared[key] = p
	}
	build := func(i int) {
		opt := jobs[i].Options
		if opt.Predictor == nil {
			if p := shared[MachineKey(opt.Machine)]; p != nil {
				opt.Predictor = p
			}
		}
		plans[i], errs[i] = BuildPlan(jobs[i].Config, opt)
	}
	if reference.Load() {
		for i := range jobs {
			build(i)
		}
		return plans, errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				build(i)
			}
		}()
	}
	wg.Wait()
	return plans, errs
}
