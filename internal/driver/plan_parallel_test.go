package driver

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"nestwrf/internal/machine"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
)

// parallelOracleDomain is a three-level tree with two nested sibling
// subtrees plus a flat sibling, so both the sequential-strategy sibling
// fan and the concurrent-strategy nestedExtra fan have real work.
func parallelOracleDomain() *nest.Domain {
	cfg := nest.Root("p", 340, 360)
	a := cfg.AddChild("a", 600, 540, 3, 10, 10)
	a.AddChild("a1", 280, 240, 3, 40, 50)
	a.AddChild("a2", 260, 220, 3, 320, 280)
	b := cfg.AddChild("b", 330, 300, 3, 220, 220)
	b.AddChild("b1", 150, 150, 3, 30, 30)
	cfg.AddChild("c", 120, 150, 3, 215, 15)
	return cfg
}

// TestBuildPlanParallelMatchesReference is the acceptance oracle: for
// every strategy x alloc-policy x map-kind combination, the parallel
// BuildPlan must produce a Plan byte-identical (and DeepEqual) to the
// retained sequential reference.
func TestBuildPlanParallelMatchesReference(t *testing.T) {
	defer SetReference(false)
	cfg := parallelOracleDomain()
	for _, strat := range []Strategy{Sequential, Concurrent} {
		for _, pol := range []AllocPolicy{AllocPredicted, AllocNaivePoints, AllocEqual, AllocStripsPredicted} {
			for _, kind := range []MapKind{MapSequential, MapTXYZ, MapPartition, MapMultiLevel} {
				opt := Options{
					Machine: machine.BGL(), Ranks: 64,
					Strategy: strat, Alloc: pol, MapKind: kind,
					IOMode: 1, OutputEverySteps: 4,
				}
				name := fmt.Sprintf("%v/%v/%v", strat, pol, kind)
				SetReference(true)
				model.ResetCache()
				want, wantErr := BuildPlan(cfg, opt)
				SetReference(false)
				model.ResetCache()
				got, gotErr := BuildPlan(cfg, opt)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: reference err %v, parallel err %v", name, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: parallel plan differs from reference", name)
					continue
				}
				wb, _ := json.Marshal(want)
				gb, _ := json.Marshal(got)
				if string(wb) != string(gb) {
					t.Errorf("%s: plan bytes differ:\nref: %s\npar: %s", name, wb, gb)
				}
			}
		}
	}
}

// TestRunParallelSiblingsIdentity checks the journal-replay merge at
// the Run level: Options.Parallel must not change a single bit of the
// Result, including the accumulated wait and hop statistics.
func TestRunParallelSiblingsIdentity(t *testing.T) {
	cfg := parallelOracleDomain()
	for _, strat := range []Strategy{Sequential, Concurrent} {
		opt := Options{
			Machine: machine.BGP(), Ranks: 256,
			Strategy: strat, MapKind: MapMultiLevel,
			IOMode: 1, OutputEverySteps: 2,
		}
		want, err := Run(cfg, opt)
		if err != nil {
			t.Fatalf("%v: sequential run: %v", strat, err)
		}
		opt.Parallel = true
		for i := 0; i < 3; i++ { // repeat: scheduling must not matter
			got, err := Run(cfg, opt)
			if err != nil {
				t.Fatalf("%v: parallel run: %v", strat, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v: parallel Result differs from sequential:\nwant %+v\ngot  %+v", strat, want, got)
			}
		}
	}
}

// TestBuildPlansMatchesReference: a batch through BuildPlans must equal
// a per-job sequential-reference loop, job for job, with errors (here a
// zero-rank job in the middle) surfacing in the matching slot.
func TestBuildPlansMatchesReference(t *testing.T) {
	defer SetReference(false)
	var jobs []PlanJob
	for i := 0; i < 6; i++ {
		cfg := nest.Root("p", 286, 307)
		cfg.AddChild("t1", 394-6*i, 418, 3, 5+i, 5)
		cfg.AddChild("t2", 313, 337-4*i, 3, 140, 150)
		jobs = append(jobs, PlanJob{Config: cfg, Options: Options{
			Machine: machine.BGL(), Ranks: 64,
			Strategy: Concurrent, Alloc: AllocPredicted, MapKind: MapKind(i % 4),
		}})
	}
	jobs[3].Options.Ranks = 0 // must fail in place without harming neighbours

	SetReference(true)
	want := make([]*Plan, len(jobs))
	wantErr := make([]error, len(jobs))
	for i, j := range jobs {
		want[i], wantErr[i] = BuildPlan(j.Config, j.Options)
	}
	SetReference(false)
	got, gotErr := BuildPlans(jobs, 4)
	for i := range jobs {
		if (wantErr[i] == nil) != (gotErr[i] == nil) {
			t.Fatalf("job %d: reference err %v, batch err %v", i, wantErr[i], gotErr[i])
		}
		if wantErr[i] != nil {
			continue
		}
		wb, _ := json.Marshal(want[i])
		gb, _ := json.Marshal(got[i])
		if string(wb) != string(gb) {
			t.Errorf("job %d: batch plan differs from reference", i)
		}
	}
	if gotErr[3] == nil {
		t.Error("job 3 (zero ranks) should have failed")
	}
}

// TestCachedPredictorTrainsOnce is the thundering-herd guard: many
// concurrent first-touch cold planners for one machine must share a
// single training pass.
func TestCachedPredictorTrainsOnce(t *testing.T) {
	ResetPredictorCache()
	defer ResetPredictorCache()
	before := TrainCalls()
	const callers = 16
	models := make([]any, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p, err := CachedPredictor(machine.BGL())
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			models[i] = p
		}(i)
	}
	close(start)
	wg.Wait()
	if got := TrainCalls() - before; got != 1 {
		t.Fatalf("%d concurrent first-touch callers trained %d times, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d got a different model instance", i)
		}
	}
}

// TestConcurrentBuildPlansWithReferenceToggle flips the reference
// toggle while batches are in flight: every plan must still come out
// byte-identical, whichever path a flip lands it on. Run under -race
// in CI.
func TestConcurrentBuildPlansWithReferenceToggle(t *testing.T) {
	defer SetReference(false)
	cfg := parallelOracleDomain()
	opt := Options{Machine: machine.BGL(), Ranks: 64, Strategy: Concurrent, MapKind: MapMultiLevel}
	want, err := BuildPlan(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)

	stop := make(chan struct{})
	var toggler sync.WaitGroup
	toggler.Add(1)
	go func() {
		defer toggler.Done()
		on := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			on = !on
			SetReference(on)
		}
	}()
	const workers, iters = 4, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				plans, errs := BuildPlans([]PlanJob{{Config: cfg, Options: opt}}, 2)
				if errs[0] != nil {
					t.Errorf("worker %d: %v", w, errs[0])
					return
				}
				gb, _ := json.Marshal(plans[0])
				if string(gb) != string(wb) {
					t.Errorf("worker %d: plan drifted under toggle flips", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	toggler.Wait()
}
