package driver

import (
	"reflect"
	"sync"
	"testing"

	"nestwrf/internal/machine"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
	"nestwrf/internal/netsim"
)

// TestConcurrentRunWithToggles is the concurrent-server guard for the
// package-level toggles: many goroutines Run simultaneously while
// another flips model.SetMemoize and netsim.SetReference. Before the
// toggles became atomic this was a data race (a server could observe a
// torn read mid-request); now every Run must complete race-free and —
// because the fast and reference paths are equivalence-guarded —
// produce the identical Result regardless of the toggle state it
// observed. Run under -race in CI.
func TestConcurrentRunWithToggles(t *testing.T) {
	defer func() {
		netsim.SetReference(false)
		model.SetMemoize(true)
		model.ResetCache()
	}()

	cfg := nest.Root("race", 286, 307)
	cfg.AddChild("s1", 394, 418, 3, 5, 5)
	cfg.AddChild("s2", 313, 337, 3, 140, 150)
	opt := Options{
		Machine:  machine.BGL(),
		Ranks:    64,
		Strategy: Concurrent,
		MapKind:  MapMultiLevel,
	}
	want, err := Run(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // toggler: flip both switches while runs are in flight
		defer wg.Done()
		on := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			on = !on
			netsim.SetReference(on)
			model.SetMemoize(!on)
		}
	}()
	errs := make(chan error, workers*iters)
	results := make(chan Result, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := Run(cfg, opt)
				if err != nil {
					errs <- err
					return
				}
				results <- res
			}
		}()
	}
	for i := 0; i < workers*iters; i++ {
		select {
		case err := <-errs:
			close(stop)
			t.Fatal(err)
		case res := <-results:
			if !reflect.DeepEqual(res, want) {
				close(stop)
				t.Fatalf("result drifted under toggle flips:\n got %+v\nwant %+v", res, want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
