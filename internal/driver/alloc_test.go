package driver

import (
	"testing"

	"nestwrf/internal/telemetry"
	"nestwrf/internal/workload"
)

// The nil-tracer path through Run must be allocation-identical run to
// run: with Options.Tracer nil the instrumentation compiles down to
// nil checks that never allocate (the sequence itself is pinned at
// zero allocations by the telemetry package's guard test), so two
// measurements of the same uninstrumented Run must agree exactly —
// any drift would mean the tracing hooks leak work onto the untraced
// path. A traced run of the same query must differ only by emitting
// spans.
func TestRunNilTracerAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapMultiLevel)
	run := func() {
		if _, err := Run(cfg, opt); err != nil {
			t.Fatal(err)
		}
	}
	const runs = 10
	first := testing.AllocsPerRun(runs, run)
	second := testing.AllocsPerRun(runs, run)
	if first != second {
		t.Errorf("nil-tracer Run allocations unstable: %v vs %v allocs/run", first, second)
	}

	tr := telemetry.New(telemetry.Config{})
	opt.Tracer = tr
	traced := testing.AllocsPerRun(runs, run)
	if traced < first {
		t.Errorf("traced Run allocates less (%v) than untraced (%v)?", traced, first)
	}
	if tr.Len() == 0 {
		t.Error("traced Run emitted no spans")
	}
	// One driver.run span plus one span per phase — a handful of
	// allocations against Run's thousands. If tracing ever costs more
	// than a sliver, the guards are mis-scoped.
	if added := traced - first; added > 100 {
		t.Errorf("tracing added %v allocs/run, want a small constant (<= 100)", added)
	}
}
