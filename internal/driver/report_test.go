package driver

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"nestwrf/internal/iosim"
	"nestwrf/internal/metrics"
	"nestwrf/internal/workload"
)

func TestRunWithReportMatchesRun(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapMultiLevel)
	plain := mustRun(t, cfg, opt)
	res, rep, err := RunWithReport(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Errorf("observed run differs from plain run:\n plain %+v\n obs   %+v", plain, res)
	}
	if rep == nil || rep.Schema != ReportSchema {
		t.Fatalf("report = %+v", rep)
	}
}

func TestReportPhaseBreakdownSequential(t *testing.T) {
	cfg := workload.Table2Config()
	_, rep, err := RunWithReport(cfg, bglOpts(Sequential, MapSequential))
	if err != nil {
		t.Fatal(err)
	}
	// Every domain appears, parent first (domain-tree order).
	if len(rep.Phases) != 5 || rep.Phases[0].Domain != cfg.Name {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	// In the sequential strategy every sub-step serializes, so the
	// compute+transfer+wait+coupling totals reconstruct the iteration
	// time exactly.
	var sum float64
	for _, p := range rep.Phases {
		if p.ComputeSeconds <= 0 || p.TransferSeconds <= 0 {
			t.Errorf("phase %s has empty breakdown: %+v", p.Domain, p)
		}
		if p.WaitSeconds < 0 {
			t.Errorf("phase %s has negative wait: %+v", p.Domain, p)
		}
		sum += p.ComputeSeconds + p.TransferSeconds + p.WaitSeconds + p.CouplingSeconds
	}
	if math.Abs(sum-rep.Totals.IterSeconds) > 1e-9*rep.Totals.IterSeconds {
		t.Errorf("phase breakdown sums to %v, IterSeconds %v", sum, rep.Totals.IterSeconds)
	}
	// Sub-step counts follow the refinement ratio.
	if rep.Phases[0].Steps != 1 || rep.Phases[1].Steps != 3 {
		t.Errorf("steps = %v / %v, want 1 / 3", rep.Phases[0].Steps, rep.Phases[1].Steps)
	}
}

func TestReportSiblingsPredictedVsRealized(t *testing.T) {
	cfg := workload.Table2Config()
	_, rep, err := RunWithReport(cfg, bglOpts(Concurrent, MapMultiLevel))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Siblings) != len(cfg.Children) {
		t.Fatalf("siblings = %+v", rep.Siblings)
	}
	var predSum, realSum float64
	for _, s := range rep.Siblings {
		if s.PredictedShare <= 0 || s.RealizedShare <= 0 || s.PhaseSeconds <= 0 {
			t.Errorf("sibling %s has empty prediction data: %+v", s.Name, s)
		}
		predSum += s.PredictedShare
		realSum += s.RealizedShare
		wantErr := 100 * math.Abs(s.PredictedShare-s.RealizedShare) / s.RealizedShare
		if math.Abs(s.PredictionErrorPct-wantErr) > 1e-9 {
			t.Errorf("sibling %s error = %v, want %v", s.Name, s.PredictionErrorPct, wantErr)
		}
		if s.Rect.Area() != s.Ranks {
			t.Errorf("sibling %s rect %v does not match ranks %d", s.Name, s.Rect, s.Ranks)
		}
	}
	if math.Abs(predSum-1) > 1e-9 || math.Abs(realSum-1) > 1e-9 {
		t.Errorf("shares sum to %v predicted / %v realized, want 1", predSum, realSum)
	}
	// Realized share is the work share (phase time x ranks), which
	// undoes the allocator's proportional partitioning; on the paper's
	// configuration the residual error is the integer-granularity
	// effect of rectangle splitting and stays within ~10 %.
	for _, s := range rep.Siblings {
		if s.PredictionErrorPct > 15 {
			t.Errorf("sibling %s prediction error %.1f%% is implausibly large", s.Name, s.PredictionErrorPct)
		}
	}
}

func TestReportCongestion(t *testing.T) {
	cfg := workload.Table2Config()
	_, rep, err := RunWithReport(cfg, bglOpts(Concurrent, MapMultiLevel))
	if err != nil {
		t.Fatal(err)
	}
	var sibPhase bool
	for _, c := range rep.Congestion {
		if strings.HasPrefix(c.Phase, "siblings(") {
			sibPhase = true
			if c.MaxLoad < 1 || c.Links == 0 || len(c.Histogram) == 0 {
				t.Errorf("sibling congestion looks empty: %+v", c)
			}
		}
	}
	if !sibPhase {
		t.Errorf("no sibling-phase congestion recorded: %+v", rep.Congestion)
	}

	// The no-contention ablation cannot observe congestion.
	opt := bglOpts(Concurrent, MapMultiLevel)
	opt.NoContention = true
	_, rep, err = RunWithReport(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Congestion) != 0 {
		t.Errorf("NoContention run recorded congestion: %+v", rep.Congestion)
	}
}

func TestReportIOEvents(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapMultiLevel)
	opt.OutputEverySteps = 10
	opt.IOMode = iosim.Collective
	_, rep, err := RunWithReport(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.OutputEverySteps != 10 || rep.Config.IOMode == "" {
		t.Errorf("config = %+v", rep.Config)
	}
	if len(rep.IO) != 5 { // parent + 4 siblings
		t.Fatalf("io events = %+v", rep.IO)
	}
	if rep.IO[0].Domain != cfg.Name || rep.IO[0].Writers != opt.Ranks {
		t.Errorf("parent write = %+v", rep.IO[0])
	}
	for _, w := range rep.IO[1:] {
		if w.Writers >= opt.Ranks || w.Bytes <= 0 || w.Seconds <= 0 {
			t.Errorf("sibling write = %+v", w)
		}
	}
}

// TestReportJSONRoundTrip is the schema stability test: encode →
// decode → deep-equal, for both the run report and the comparison
// report.
func TestReportJSONRoundTrip(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapMultiLevel)
	opt.OutputEverySteps = 10
	opt.IOMode = iosim.Collective
	_, con, err := RunWithReport(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := con.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(con, back) {
		t.Errorf("report round-trip mismatch:\n in  %+v\n out %+v", con, back)
	}

	_, def, err := RunWithReport(cfg, bglOpts(Sequential, MapSequential))
	if err != nil {
		t.Fatal(err)
	}
	cr := NewComparisonReport(def, con)
	buf.Reset()
	if err := cr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	crBack, err := DecodeComparisonReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr, crBack) {
		t.Errorf("comparison round-trip mismatch")
	}
	if cr.ImprovementPct <= 0 {
		t.Errorf("expected concurrent improvement, got %v", cr.ImprovementPct)
	}

	// Wrong schema is rejected.
	if _, err := DecodeReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bogus schema accepted")
	}
	if _, err := DecodeComparisonReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bogus comparison schema accepted")
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapMultiLevel)
	opt.Metrics = metrics.NewRegistry()
	if _, err := Run(cfg, opt); err != nil {
		t.Fatal(err)
	}
	s := opt.Metrics.Snapshot()
	text := s.Text()
	for _, want := range []string{
		"driver_runs_total", "driver_iter_seconds", "driver_phase_seconds",
		"netsim_link_load_bucket", "netsim_max_link_load",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
