// Run-level observability: a structured Report assembled while a run
// executes, decomposing the four scalar aggregates of Result into
// per-domain phase breakdowns (compute vs. transfer vs. wait),
// per-sibling predicted-vs-realized phase times (the paper's < 6 %
// prediction-error claim observed in situ, and the input the steering
// controller consumes), per-phase link-congestion summaries and the
// I/O write events. The report has a stable JSON schema so harnesses
// can diff runs across revisions.

package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"nestwrf/internal/alloc"
	"nestwrf/internal/metrics"
	"nestwrf/internal/model"
	"nestwrf/internal/nest"
	"nestwrf/internal/netsim"
	"nestwrf/internal/stats"
)

// Schema identifiers embedded in the encoded reports. Bump the
// version suffix on any incompatible field change.
const (
	ReportSchema     = "nestwrf/run-report/v1"
	ComparisonSchema = "nestwrf/compare-report/v1"
)

// ReportConfig records what was run.
type ReportConfig struct {
	Domain   string `json:"domain"`
	Machine  string `json:"machine"`
	Ranks    int    `json:"ranks"`
	Strategy string `json:"strategy"`
	Mapping  string `json:"mapping"`
	Alloc    string `json:"alloc"`
	// IOMode and OutputEverySteps are present only when I/O is enabled.
	IOMode           string `json:"io_mode,omitempty"`
	OutputEverySteps int    `json:"output_every_steps,omitempty"`
}

// ReportTotals mirrors Result in schema-stable form.
type ReportTotals struct {
	IterSeconds    float64 `json:"iter_seconds"`
	IOSeconds      float64 `json:"io_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	WaitAvgSeconds float64 `json:"wait_avg_seconds"`
	WaitMaxSeconds float64 `json:"wait_max_seconds"`
	HopsAvg        float64 `json:"hops_avg"`
}

// PhaseBreakdown decomposes one domain's contribution to a parent
// iteration. Per sub-step, the synchronized duration is compute +
// worst-rank communication; the breakdown splits the communication
// into the average rank's transfer time and the residual
// synchronization wait (worst minus average), which is what accrues as
// MPI_Wait on the average rank.
type PhaseBreakdown struct {
	Domain string `json:"domain"`
	// Ranks the domain ran on.
	Ranks int `json:"ranks"`
	// Steps is the number of sub-steps per parent iteration (the
	// product of refinement ratios down to this domain).
	Steps float64 `json:"steps"`
	// Per-parent-iteration virtual seconds.
	ComputeSeconds  float64 `json:"compute_seconds"`
	TransferSeconds float64 `json:"transfer_seconds"`
	WaitSeconds     float64 `json:"wait_seconds"`
	// CouplingSeconds is the nesting bookkeeping (boundary
	// interpolation + feedback) charged once per parent step.
	CouplingSeconds float64 `json:"coupling_seconds,omitempty"`
}

// SiblingReport contrasts the allocator's prediction with the realized
// timing for one first-level sibling.
type SiblingReport struct {
	Name  string     `json:"name"`
	Ranks int        `json:"ranks"`
	Rect  alloc.Rect `json:"rect"`
	// PredictedShare is the allocation policy's predicted fraction of
	// the total sibling workload. RealizedShare is the measured one:
	// phase time x ranks over the sum across siblings — in a sequential
	// run (equal rank counts) this reduces to the phase-time ratio the
	// paper's Table 2 profiles, and in a concurrent run it undoes the
	// allocator's proportional partitioning so the two remain
	// comparable.
	PredictedShare float64 `json:"predicted_share"`
	RealizedShare  float64 `json:"realized_share"`
	// PredictionErrorPct is |predicted-realized| / realized, in percent
	// — the per-sibling counterpart of the paper's < 6 % claim,
	// observed in situ.
	PredictionErrorPct float64 `json:"prediction_error_pct"`
	// PredictedPhaseSeconds is the phase time the sibling would have
	// shown had its realized workload matched the prediction exactly on
	// its allocated ranks; PhaseSeconds and StepSeconds are measured.
	PredictedPhaseSeconds float64 `json:"predicted_phase_seconds"`
	PhaseSeconds          float64 `json:"phase_seconds"`
	StepSeconds           float64 `json:"step_seconds"`
}

// CongestionPhase is the link-congestion summary of one communication
// phase (one domain alone, or a set of concurrent siblings).
type CongestionPhase struct {
	Phase string `json:"phase"`
	netsim.Congestion
}

// WriteReport is one forecast output event of the run.
type WriteReport struct {
	Domain  string  `json:"domain"`
	Writers int     `json:"writers"`
	Bytes   float64 `json:"bytes"`
	Seconds float64 `json:"seconds"`
}

// Report is the structured record of one run.
type Report struct {
	Schema     string            `json:"schema"`
	Config     ReportConfig      `json:"config"`
	Totals     ReportTotals      `json:"totals"`
	Phases     []PhaseBreakdown  `json:"phases"`
	Siblings   []SiblingReport   `json:"siblings,omitempty"`
	Congestion []CongestionPhase `json:"congestion,omitempty"`
	IO         []WriteReport     `json:"io,omitempty"`
}

// EncodeJSON writes the report as indented JSON.
func (rep *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// DecodeReport reads a JSON run report, rejecting unknown schemas.
func DecodeReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("driver: decoding run report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("driver: unsupported report schema %q (want %s)", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// ComparisonReport pairs the two strategies' reports with the headline
// improvements, the JSON counterpart of the CLI's -compare output.
type ComparisonReport struct {
	Schema              string  `json:"schema"`
	Default             *Report `json:"default"`
	Concurrent          *Report `json:"concurrent"`
	ImprovementPct      float64 `json:"improvement_pct"`
	TotalImprovementPct float64 `json:"total_improvement_pct"`
	WaitImprovementPct  float64 `json:"wait_improvement_pct"`
}

// NewComparisonReport assembles a ComparisonReport from the two
// strategies' run reports.
func NewComparisonReport(def, con *Report) *ComparisonReport {
	return &ComparisonReport{
		Schema:              ComparisonSchema,
		Default:             def,
		Concurrent:          con,
		ImprovementPct:      stats.Improvement(def.Totals.IterSeconds, con.Totals.IterSeconds),
		TotalImprovementPct: stats.Improvement(def.Totals.TotalSeconds, con.Totals.TotalSeconds),
		WaitImprovementPct:  stats.Improvement(def.Totals.WaitAvgSeconds, con.Totals.WaitAvgSeconds),
	}
}

// EncodeJSON writes the comparison report as indented JSON.
func (cr *ComparisonReport) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cr)
}

// DecodeComparisonReport reads a JSON comparison report.
func DecodeComparisonReport(r io.Reader) (*ComparisonReport, error) {
	var rep ComparisonReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("driver: decoding comparison report: %w", err)
	}
	if rep.Schema != ComparisonSchema {
		return nil, fmt.Errorf("driver: unsupported comparison schema %q (want %s)", rep.Schema, ComparisonSchema)
	}
	return &rep, nil
}

// reportBuilder accumulates observations during a run. It exists only
// when the caller asked for a report or metrics, so the default path
// pays a single nil check per accounting call.
type reportBuilder struct {
	phaseIdx   map[string]*PhaseBreakdown
	phaseOrder []string
	congSeen   map[string]bool
	congestion []CongestionPhase
	io         []WriteReport
}

func newReportBuilder() *reportBuilder {
	return &reportBuilder{
		phaseIdx: map[string]*PhaseBreakdown{},
		congSeen: map[string]bool{},
	}
}

// phase returns the accumulator for a domain, creating it on first use.
func (b *reportBuilder) phase(name string, ranks int) *PhaseBreakdown {
	p, ok := b.phaseIdx[name]
	if !ok {
		p = &PhaseBreakdown{Domain: name, Ranks: ranks}
		b.phaseIdx[name] = p
		b.phaseOrder = append(b.phaseOrder, name)
	}
	return p
}

// observeCongestion records a phase's congestion summary once (repeat
// evaluations of the same phase are identical, so the first wins).
func (b *reportBuilder) observeCongestion(phase string, c netsim.Congestion) {
	if b.congSeen[phase] {
		return
	}
	b.congSeen[phase] = true
	b.congestion = append(b.congestion, CongestionPhase{Phase: phase, Congestion: c})
}

// phaseName labels a costs() evaluation: the lone domain, or the
// concurrently communicating sibling set.
func phaseName(placements []model.Placement) string {
	if len(placements) == 1 {
		return placements[0].D.Name
	}
	names := make([]string, len(placements))
	for i, p := range placements {
		names[i] = p.D.Name
	}
	return "siblings(" + strings.Join(names, "+") + ")"
}

// predictedShares returns the allocation policy's predicted relative
// phase times for the given children, mirroring allocate's weight
// selection (FixedWeights, predictor, point counts or equal split).
func (r *run) predictedShares(children []*nest.Domain) ([]float64, error) {
	n := len(children)
	w := make([]float64, n)
	switch r.opt.Alloc {
	case AllocEqual:
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w, nil
	case AllocNaivePoints:
		var sum float64
		for i, c := range children {
			w[i] = float64(c.Points())
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		return w, nil
	default: // AllocPredicted, AllocStripsPredicted
		if len(r.opt.FixedWeights) == n {
			var sum float64
			for _, v := range r.opt.FixedWeights {
				sum += v
			}
			for i, v := range r.opt.FixedWeights {
				if sum > 0 {
					w[i] = v / sum
				}
			}
			return w, nil
		}
		p, err := r.predictor()
		if err != nil {
			return nil, err
		}
		return p.Weights(children), nil
	}
}

// buildReport assembles the final Report after the iteration finished.
func (r *run) buildReport(cfg *nest.Domain, res Result) (*Report, error) {
	b := r.rep
	rep := &Report{
		Schema: ReportSchema,
		Config: ReportConfig{
			Domain:   cfg.Name,
			Machine:  r.opt.Machine.Name,
			Ranks:    r.opt.Ranks,
			Strategy: r.opt.Strategy.String(),
			Mapping:  r.opt.MapKind.String(),
			Alloc:    r.opt.Alloc.String(),
		},
		Totals: ReportTotals{
			IterSeconds:    res.IterTime,
			IOSeconds:      res.IOTime,
			TotalSeconds:   res.Total(),
			WaitAvgSeconds: res.WaitAvg,
			WaitMaxSeconds: res.WaitMax,
			HopsAvg:        res.HopsAvg,
		},
		Congestion: b.congestion,
		IO:         b.io,
	}
	if r.opt.OutputEverySteps > 0 {
		rep.Config.IOMode = r.opt.IOMode.String()
		rep.Config.OutputEverySteps = r.opt.OutputEverySteps
	}
	// Phases in domain-tree order (stable regardless of evaluation
	// order), falling back to first-observation order for any leftovers.
	seen := map[string]bool{}
	cfg.Walk(func(d *nest.Domain) {
		if p, ok := b.phaseIdx[d.Name]; ok && !seen[d.Name] {
			seen[d.Name] = true
			rep.Phases = append(rep.Phases, *p)
		}
	})
	for _, name := range b.phaseOrder {
		if !seen[name] {
			seen[name] = true
			rep.Phases = append(rep.Phases, *b.phaseIdx[name])
		}
	}

	// Predicted vs. realized sibling phase times.
	if len(res.Siblings) > 0 {
		shares, err := r.predictedShares(cfg.Children)
		if err != nil {
			return nil, err
		}
		// Work = phase time x ranks; its distribution is what the
		// predictor forecast, independent of how the allocator then
		// spread it over partitions.
		var work float64
		for _, s := range res.Siblings {
			work += s.PhaseTime * float64(s.Ranks)
		}
		for i, s := range res.Siblings {
			sr := SiblingReport{
				Name:         s.Name,
				Ranks:        s.Ranks,
				Rect:         s.Rect,
				PhaseSeconds: s.PhaseTime,
				StepSeconds:  s.StepTime,
			}
			if i < len(shares) && work > 0 && s.Ranks > 0 {
				sr.PredictedShare = shares[i]
				sr.RealizedShare = s.PhaseTime * float64(s.Ranks) / work
				sr.PredictedPhaseSeconds = shares[i] * work / float64(s.Ranks)
				if sr.RealizedShare > 0 {
					sr.PredictionErrorPct = 100 * math.Abs(sr.PredictedShare-sr.RealizedShare) / sr.RealizedShare
				}
			}
			rep.Siblings = append(rep.Siblings, sr)
		}
	}
	return rep, nil
}

// Bucket bounds for the link-load histogram metric.
var linkLoadBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// recordMetrics publishes a finished run's report into the registry.
func recordMetrics(reg *metrics.Registry, rep *Report) {
	strat := metrics.L("strategy", rep.Config.Strategy)
	reg.Counter("driver_runs_total", strat, metrics.L("mapping", rep.Config.Mapping), metrics.L("alloc", rep.Config.Alloc)).Inc()
	reg.Gauge("driver_iter_seconds", strat).Set(rep.Totals.IterSeconds)
	reg.Gauge("driver_io_seconds", strat).Set(rep.Totals.IOSeconds)
	reg.Gauge("driver_wait_avg_seconds", strat).Set(rep.Totals.WaitAvgSeconds)
	reg.Gauge("driver_wait_max_seconds", strat).Set(rep.Totals.WaitMaxSeconds)
	reg.Gauge("driver_hops_avg", strat).Set(rep.Totals.HopsAvg)
	for _, p := range rep.Phases {
		dom := metrics.L("domain", p.Domain)
		reg.Counter("driver_phase_seconds", strat, dom, metrics.L("component", "compute")).Add(p.ComputeSeconds)
		reg.Counter("driver_phase_seconds", strat, dom, metrics.L("component", "transfer")).Add(p.TransferSeconds)
		reg.Counter("driver_phase_seconds", strat, dom, metrics.L("component", "wait")).Add(p.WaitSeconds)
	}
	for _, c := range rep.Congestion {
		h := reg.Histogram("netsim_link_load", linkLoadBounds, strat, metrics.L("phase", c.Phase))
		for _, bkt := range c.Histogram {
			for i := 0; i < bkt.Links; i++ {
				h.Observe(float64(bkt.Load))
			}
		}
		reg.Gauge("netsim_max_link_load", strat, metrics.L("phase", c.Phase)).Set(float64(c.MaxLoad))
	}
	for _, w := range rep.IO {
		reg.Counter("iosim_write_bytes_total", strat, metrics.L("domain", w.Domain)).Add(w.Bytes)
		reg.Counter("iosim_write_seconds_total", strat, metrics.L("domain", w.Domain)).Add(w.Seconds)
	}
}
