package driver

import (
	"strings"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"sequential": Sequential, "default": Sequential,
		"concurrent": Concurrent, "Concurrent": Concurrent, "SEQUENTIAL": Sequential,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("parallel"); err == nil {
		t.Error("ParseStrategy accepted unknown strategy")
	} else if !strings.Contains(err.Error(), "sequential") {
		t.Errorf("ParseStrategy error %q does not list accepted names", err)
	}
}

func TestParseMapKind(t *testing.T) {
	cases := map[string]MapKind{
		"oblivious": MapSequential, "sequential": MapSequential,
		"txyz": MapTXYZ, "TXYZ": MapTXYZ,
		"partition":  MapPartition,
		"multilevel": MapMultiLevel, "Multi-Level": MapMultiLevel,
	}
	for in, want := range cases {
		got, err := ParseMapKind(in)
		if err != nil || got != want {
			t.Errorf("ParseMapKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// Round trip: every kind's String parses back to itself.
	for _, k := range []MapKind{MapSequential, MapTXYZ, MapPartition, MapMultiLevel} {
		got, err := ParseMapKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseMapKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseMapKind("snake"); err == nil {
		t.Error("ParseMapKind accepted unknown mapping")
	}
}

func TestParseAllocPolicy(t *testing.T) {
	cases := map[string]AllocPolicy{
		"predicted": AllocPredicted, "Predicted": AllocPredicted,
		"naive-points": AllocNaivePoints, "naive": AllocNaivePoints, "points": AllocNaivePoints,
		"equal":            AllocEqual,
		"strips-predicted": AllocStripsPredicted, "strips": AllocStripsPredicted,
	}
	for in, want := range cases {
		got, err := ParseAllocPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseAllocPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, p := range []AllocPolicy{AllocPredicted, AllocNaivePoints, AllocEqual, AllocStripsPredicted} {
		got, err := ParseAllocPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseAllocPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseAllocPolicy("greedy"); err == nil {
		t.Error("ParseAllocPolicy accepted unknown policy")
	}
}
