package driver

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
	"nestwrf/internal/stats"
	"nestwrf/internal/workload"
)

func bglOpts(strategy Strategy, kind MapKind) Options {
	return Options{
		Machine:  machine.BGL(),
		Ranks:    1024,
		Strategy: strategy,
		MapKind:  kind,
		Alloc:    AllocPredicted,
	}
}

func mustRun(t *testing.T, cfg *nest.Domain, opt Options) Result {
	t.Helper()
	res, err := Run(cfg, opt)
	if err != nil {
		t.Fatalf("Run(%s, %v/%v): %v", cfg.Name, opt.Strategy, opt.MapKind, err)
	}
	return res
}

func TestRunErrors(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Sequential, MapSequential)
	opt.Ranks = 0
	if _, err := Run(cfg, opt); !errors.Is(err, ErrBadRanks) {
		t.Errorf("zero ranks: %v", err)
	}
	leaf := nest.Root("leaf", 100, 100)
	if _, err := Run(leaf, bglOpts(Concurrent, MapSequential)); !errors.Is(err, ErrNoSiblings) {
		t.Errorf("no siblings: %v", err)
	}
	bad := nest.Root("bad", -1, 100)
	if _, err := Run(bad, bglOpts(Sequential, MapSequential)); err == nil {
		t.Error("invalid config should fail")
	}
}

// The central claim: concurrent execution of siblings on partitions
// beats the default sequential strategy (Section 4.3.1 reports 21%
// average, 33% maximum on 1024 BG/L cores).
func TestConcurrentBeatsSequential(t *testing.T) {
	cfg := workload.Table2Config()
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	imp := stats.Improvement(seq.IterTime, con.IterTime)
	t.Logf("sequential %.3f s, concurrent %.3f s: %.1f%% improvement", seq.IterTime, con.IterTime, imp)
	if imp < 10 || imp > 45 {
		t.Errorf("improvement %.1f%%, want in the paper's neighbourhood (10-45%%)", imp)
	}
}

// Fig. 9: the concurrent nest phase equals the slowest sibling, and
// individual sibling step times rise on fewer processors while the
// total falls.
func TestSiblingTimesFig9Shape(t *testing.T) {
	cfg := workload.Table2Config()
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	if len(seq.Siblings) != 4 || len(con.Siblings) != 4 {
		t.Fatalf("sibling counts: %d, %d", len(seq.Siblings), len(con.Siblings))
	}
	var seqSum, conMax float64
	for i := range seq.Siblings {
		seqSum += seq.Siblings[i].PhaseTime
		if con.Siblings[i].PhaseTime > conMax {
			conMax = con.Siblings[i].PhaseTime
		}
		// Each sibling is slower on its partition than on the full machine.
		if con.Siblings[i].StepTime <= seq.Siblings[i].StepTime {
			t.Errorf("sibling %d: partition step %.3f should exceed full-machine step %.3f",
				i, con.Siblings[i].StepTime, seq.Siblings[i].StepTime)
		}
	}
	if conMax >= seqSum {
		t.Errorf("concurrent nest phase %.3f should beat sequential sum %.3f", conMax, seqSum)
	}
	imp := stats.Improvement(seqSum, conMax)
	t.Logf("nest phases: sequential sum %.3f, concurrent max %.3f (%.1f%% gain; paper: 36%%)",
		seqSum, conMax, imp)
	if imp < 20 || imp > 55 {
		t.Errorf("sibling phase improvement %.1f%%, want ~36%% (20-55%%)", imp)
	}
}

// Load balance: with predicted allocation the sibling phase times
// should be close to each other (the goal of Section 3.2).
func TestConcurrentLoadBalance(t *testing.T) {
	cfg := workload.Table2Config()
	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	var times []float64
	for _, s := range con.Siblings {
		times = append(times, s.PhaseTime)
	}
	spread := (stats.Max(times) - stats.Min(times)) / stats.Mean(times)
	t.Logf("sibling phases: %v (relative spread %.2f)", times, spread)
	if spread > 0.35 {
		t.Errorf("sibling phase spread %.2f too high for balanced allocation", spread)
	}
}

// MPI_Wait improvement (Table 1: 27-38% average on BG/L and BG/P).
func TestWaitImprovement(t *testing.T) {
	cfg := workload.Table2Config()
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	imp := stats.Improvement(seq.WaitAvg, con.WaitAvg)
	t.Logf("wait: sequential %.3f, concurrent %.3f (%.1f%% improvement)", seq.WaitAvg, con.WaitAvg, imp)
	if imp < 15 || imp > 75 {
		t.Errorf("wait improvement %.1f%%, want in the paper's band (15-75%%)", imp)
	}
}

// Topology-aware mappings add improvement over the oblivious concurrent
// run (Table 4: up to ~7%).
func TestTopologyAwareMappings(t *testing.T) {
	cfg := workload.Table2Config()
	obl := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	part := mustRun(t, cfg, bglOpts(Concurrent, MapPartition))
	multi := mustRun(t, cfg, bglOpts(Concurrent, MapMultiLevel))
	txyz := mustRun(t, cfg, bglOpts(Concurrent, MapTXYZ))

	t.Logf("iter: oblivious %.3f, partition %.3f, multilevel %.3f, txyz %.3f",
		obl.IterTime, part.IterTime, multi.IterTime, txyz.IterTime)
	if part.IterTime >= obl.IterTime {
		t.Errorf("partition mapping %.3f should beat oblivious %.3f", part.IterTime, obl.IterTime)
	}
	if multi.IterTime >= obl.IterTime {
		t.Errorf("multilevel mapping %.3f should beat oblivious %.3f", multi.IterTime, obl.IterTime)
	}
	// Topology-aware hop counts drop (Fig. 12(b): ~50% reduction).
	if multi.HopsAvg >= obl.HopsAvg {
		t.Errorf("multilevel hops %.2f should be below oblivious %.2f", multi.HopsAvg, obl.HopsAvg)
	}
	impPart := stats.Improvement(obl.IterTime, part.IterTime)
	impMulti := stats.Improvement(obl.IterTime, multi.IterTime)
	t.Logf("topology-aware gains over oblivious: partition %.1f%%, multilevel %.1f%% (paper: up to ~7%%)",
		impPart, impMulti)
	if impMulti > 25 {
		t.Errorf("multilevel gain %.1f%% implausibly large vs paper's ~7%%", impMulti)
	}
}

// Our predicted allocation beats the naive points-proportional strips
// (Section 4.6: 17% vs 9% over default).
func TestAllocationPolicies(t *testing.T) {
	cfg := workload.Table2Config()
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))

	ours := bglOpts(Concurrent, MapSequential)
	naive := ours
	naive.Alloc = AllocNaivePoints
	equal := ours
	equal.Alloc = AllocEqual

	rOurs := mustRun(t, cfg, ours)
	rNaive := mustRun(t, cfg, naive)
	rEqual := mustRun(t, cfg, equal)

	iOurs := stats.Improvement(seq.IterTime, rOurs.IterTime)
	iNaive := stats.Improvement(seq.IterTime, rNaive.IterTime)
	iEqual := stats.Improvement(seq.IterTime, rEqual.IterTime)
	t.Logf("improvement over default: ours %.1f%%, naive strips %.1f%%, equal %.1f%%", iOurs, iNaive, iEqual)
	if rOurs.IterTime >= rNaive.IterTime {
		t.Errorf("predicted allocation %.3f should beat naive strips %.3f", rOurs.IterTime, rNaive.IterTime)
	}
	if rNaive.IterTime >= seq.IterTime {
		t.Errorf("even naive strips %.3f should beat sequential %.3f", rNaive.IterTime, seq.IterTime)
	}
}

// I/O: concurrent sibling output shrinks the per-file writer groups and
// writes sibling files simultaneously (Section 4.5).
func TestIOImprovement(t *testing.T) {
	cfg := workload.Table2Config()
	mk := func(s Strategy) Options {
		o := Options{
			Machine:          machine.BGP(),
			Ranks:            4096,
			Strategy:         s,
			MapKind:          MapSequential,
			Alloc:            AllocPredicted,
			IOMode:           iosim.Collective,
			OutputEverySteps: 5,
		}
		return o
	}
	seq := mustRun(t, cfg, mk(Sequential))
	con := mustRun(t, cfg, mk(Concurrent))
	if seq.IOTime <= 0 || con.IOTime <= 0 {
		t.Fatalf("I/O times: %v, %v", seq.IOTime, con.IOTime)
	}
	if con.IOTime >= seq.IOTime {
		t.Errorf("concurrent I/O %.3f should beat sequential %.3f", con.IOTime, seq.IOTime)
	}
	imp := stats.Improvement(seq.IOTime, con.IOTime)
	t.Logf("I/O per iteration: sequential %.3f, concurrent %.3f (%.1f%%)", seq.IOTime, con.IOTime, imp)
	if seq.Total() <= seq.IterTime {
		t.Error("Total should include I/O")
	}
}

// Two-level SE-Asia configurations must run under both strategies.
func TestTwoLevelConfigs(t *testing.T) {
	for _, cfg := range workload.SEAsiaSuite() {
		if cfg.Depth() != 2 {
			continue
		}
		seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
		con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
		if seq.IterTime <= 0 || con.IterTime <= 0 {
			t.Fatalf("%s: nonpositive times %v %v", cfg.Name, seq.IterTime, con.IterTime)
		}
		t.Logf("%s: sequential %.3f, concurrent %.3f", cfg.Name, seq.IterTime, con.IterTime)
	}
}

// Larger nests gain less from partitioning at fixed machine size
// (Table 3) because their scalability saturates later.
func TestGainShrinksWithNestSize(t *testing.T) {
	fams := workload.Table3Configs()
	opts := func(s Strategy) Options {
		o := Options{Machine: machine.BGP(), Ranks: 8192, Strategy: s, MapKind: MapSequential, Alloc: AllocPredicted}
		return o
	}
	imp := map[string]float64{}
	for name, cfg := range fams {
		seq := mustRun(t, cfg, opts(Sequential))
		con := mustRun(t, cfg, opts(Concurrent))
		imp[name] = stats.Improvement(seq.IterTime, con.IterTime)
		t.Logf("%s: %.1f%% improvement", name, imp[name])
	}
	if !(imp["205x223"] > imp["925x820"]) {
		t.Errorf("small nests (%.1f%%) should gain more than large nests (%.1f%%)",
			imp["205x223"], imp["925x820"])
	}
}

// Determinism: the same run twice gives identical results.
// Run must not write anything back into the caller's Options — in
// particular it must not publish the predictor it trains when
// Options.Predictor is nil (regression: allocate() used to store it
// through the *Options pointer, a data race once two runs share an
// Options value).
func TestRunLeavesOptionsUnchanged(t *testing.T) {
	cfg := workload.Table2Config()
	for _, alloc := range []AllocPolicy{AllocPredicted, AllocStripsPredicted} {
		opt := bglOpts(Concurrent, MapMultiLevel)
		opt.Alloc = alloc
		before := opt
		if _, err := Run(cfg, opt); err != nil {
			t.Fatalf("%v: %v", alloc, err)
		}
		if opt.Predictor != nil {
			t.Errorf("%v: Run published a trained predictor into the caller's Options", alloc)
		}
		if !reflect.DeepEqual(opt, before) {
			t.Errorf("%v: Options mutated by Run:\nbefore %+v\nafter  %+v", alloc, before, opt)
		}
	}
}

// A single Options value must be safe to share across concurrent Runs
// (go test -race makes this a real hazard check).
func TestConcurrentRunsShareOptions(t *testing.T) {
	cfg := workload.Table2Config()
	opt := bglOpts(Concurrent, MapSequential)
	results := make([]Result, 4)
	done := make(chan error, len(results))
	for i := range results {
		go func(i int) {
			res, err := Run(cfg, opt)
			results[i] = res
			done <- err
		}(i)
	}
	for range results {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(results); i++ {
		if results[i].IterTime != results[0].IterTime {
			t.Errorf("run %d iter time %v != run 0 %v (determinism lost)", i, results[i].IterTime, results[0].IterTime)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := workload.Table2Config()
	a := mustRun(t, cfg, bglOpts(Concurrent, MapMultiLevel))
	b := mustRun(t, cfg, bglOpts(Concurrent, MapMultiLevel))
	if a.IterTime != b.IterTime || a.WaitAvg != b.WaitAvg || a.HopsAvg != b.HopsAvg {
		t.Error("identical runs differ")
	}
}

// Non-power-of-two rank counts still produce valid grids, tori and
// runs.
func TestOddRankCounts(t *testing.T) {
	cfg := workload.Table2Config()
	for _, ranks := range []int{96, 384, 768, 1536} {
		opt := bglOpts(Concurrent, MapSequential)
		opt.Ranks = ranks
		res := mustRun(t, cfg, opt)
		if res.IterTime <= 0 {
			t.Errorf("ranks=%d: iter time %v", ranks, res.IterTime)
		}
		total := 0
		for _, r := range res.Rects {
			total += r.Area()
		}
		if total != ranks {
			t.Errorf("ranks=%d: partitions cover %d", ranks, total)
		}
	}
}

// In the concurrent strategy, a two-level config's grandchildren are
// partitioned within their parent sibling's rectangle.
func TestSecondLevelPartitioning(t *testing.T) {
	cfg := nest.Root("p", 340, 360)
	mid := cfg.AddChild("mid", 600, 540, 3, 60, 80)
	mid.AddChild("inner1", 280, 240, 3, 40, 50)
	mid.AddChild("inner2", 260, 220, 3, 320, 280)

	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	// One first-level sibling: its rect is the whole grid; recursion
	// handles the two inner domains. The sibling metrics list the first
	// level only.
	if len(con.Siblings) != 1 {
		t.Fatalf("first-level siblings = %d", len(con.Siblings))
	}
	if con.Siblings[0].Rect.Area() != 1024 {
		t.Errorf("single sibling should get the full grid, got %v", con.Siblings[0].Rect)
	}
	// The step time of the mid domain must include its children's phases:
	// clearly larger than a childless domain of the same size.
	bare := nest.Root("p", 340, 360)
	bare.AddChild("mid", 600, 540, 3, 60, 80)
	bcon := mustRun(t, bare, bglOpts(Concurrent, MapSequential))
	if con.Siblings[0].StepTime <= bcon.Siblings[0].StepTime {
		t.Errorf("two-level step %.3f should exceed childless step %.3f",
			con.Siblings[0].StepTime, bcon.Siblings[0].StepTime)
	}
}

func TestTraceIteration(t *testing.T) {
	cfg := workload.Table2Config()
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
	con := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))

	seqLog := TraceIteration(seq, Sequential)
	// Sequential: one lane, 5 spans (parent + 4 siblings).
	if lanes := seqLog.Lanes(); len(lanes) != 1 || lanes[0] != "all ranks" {
		t.Errorf("sequential lanes = %v", lanes)
	}
	if len(seqLog.Spans) != 5 {
		t.Errorf("sequential spans = %d, want 5", len(seqLog.Spans))
	}
	if d := seqLog.Duration(); d > seq.IterTime*1.001 || d < seq.IterTime*0.999 {
		t.Errorf("sequential trace duration %v != iter time %v", d, seq.IterTime)
	}

	conLog := TraceIteration(con, Concurrent)
	// Concurrent: the all-ranks lane plus one lane per partition.
	if lanes := conLog.Lanes(); len(lanes) != 5 {
		t.Errorf("concurrent lanes = %v", lanes)
	}
	if d := conLog.Duration(); d > con.IterTime*1.001 {
		t.Errorf("concurrent trace duration %v exceeds iter time %v", d, con.IterTime)
	}
	// Rendering works and shows all sibling names.
	out := conLog.Render(72)
	for _, s := range con.Siblings {
		prefix := s.Name
		if len(prefix) > 8 {
			prefix = prefix[:8]
		}
		if !strings.Contains(out, prefix) {
			t.Errorf("trace render missing %q:\n%s", prefix, out)
		}
	}
}

func TestStringers(t *testing.T) {
	if Sequential.String() != "sequential" || Concurrent.String() != "concurrent" {
		t.Error("strategy strings")
	}
	for k, want := range map[MapKind]string{
		MapSequential: "oblivious", MapTXYZ: "txyz", MapPartition: "partition", MapMultiLevel: "multilevel",
	} {
		if k.String() != want {
			t.Errorf("%v = %q", k, k.String())
		}
	}
	for p, want := range map[AllocPolicy]string{
		AllocPredicted: "predicted", AllocNaivePoints: "naive-points", AllocEqual: "equal",
	} {
		if p.String() != want {
			t.Errorf("%v = %q", p, p.String())
		}
	}
	if MapKind(9).String() == "" || AllocPolicy(9).String() == "" {
		t.Error("unknown stringers empty")
	}
}

// Stress: eight siblings on one rack still tile, run and win.
func TestEightSiblings(t *testing.T) {
	cfg := nest.Root("p", 286, 307)
	rng := []struct{ nx, ny, ox, oy int }{
		{160, 180, 0, 0}, {170, 150, 70, 0}, {150, 160, 140, 0}, {180, 170, 210, 0},
		{160, 160, 0, 120}, {150, 180, 70, 120}, {170, 170, 140, 120}, {160, 150, 210, 120},
	}
	for i, s := range rng {
		cfg.AddChild(fmt.Sprintf("s%d", i), s.nx, s.ny, 3, s.ox, s.oy)
	}
	seq := mustRun(t, cfg, bglOpts(Sequential, MapSequential))
	con := mustRun(t, cfg, bglOpts(Concurrent, MapMultiLevel))
	if len(con.Rects) != 8 {
		t.Fatalf("rects = %d", len(con.Rects))
	}
	imp := stats.Improvement(seq.IterTime, con.IterTime)
	t.Logf("8 siblings: %.1f%% improvement", imp)
	if imp < 25 {
		t.Errorf("8-sibling improvement %.1f%% suspiciously low", imp)
	}
}

// A sibling bigger than the machine can balance (extreme skew) still
// works: allocation clamps to feasible rectangles.
func TestExtremeSkew(t *testing.T) {
	cfg := nest.Root("p", 640, 660)
	cfg.AddChild("huge", 925, 850, 3, 10, 10)
	cfg.AddChild("tiny", 100, 120, 3, 500, 500)
	res := mustRun(t, cfg, bglOpts(Concurrent, MapSequential))
	if res.Siblings[0].Ranks <= res.Siblings[1].Ranks {
		t.Errorf("huge sibling got %d ranks vs tiny's %d",
			res.Siblings[0].Ranks, res.Siblings[1].Ranks)
	}
}

// Validate must reject the option shapes that turn derived arithmetic
// (campaign redistribution, ensemble aggregates) into Inf/NaN.
func TestOptionsValidate(t *testing.T) {
	good := Options{Machine: machine.BGL(), Ranks: 256}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := good
	bad.Ranks = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadRanks) {
		t.Errorf("zero ranks: %v", err)
	}
	bad = good
	bad.Machine.Net.Bandwidth = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadMachine) {
		t.Errorf("zero bandwidth: %v", err)
	}
	bad = good
	bad.Machine.Net.Bandwidth = math.NaN()
	if err := bad.Validate(); !errors.Is(err, ErrBadMachine) {
		t.Errorf("NaN bandwidth: %v", err)
	}
}
