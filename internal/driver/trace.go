package driver

import (
	"fmt"

	"nestwrf/internal/trace"
)

// TraceIteration reconstructs the virtual-time schedule of one parent
// iteration from a run's Result: the parent step, each sibling's nest
// phase (consecutive on the full machine for the sequential strategy,
// parallel on partition lanes for the concurrent one) and the
// amortized I/O, rendered with trace.Log.
func TraceIteration(res Result, strategy Strategy) *trace.Log {
	log := &trace.Log{}
	var nestPhase float64
	for _, s := range res.Siblings {
		if strategy == Sequential {
			nestPhase += s.PhaseTime
		} else if s.PhaseTime > nestPhase {
			nestPhase = s.PhaseTime
		}
	}
	parentStep := res.IterTime - nestPhase
	if parentStep < 0 {
		parentStep = 0
	}
	log.Add("parent", "all ranks", 0, parentStep)

	at := parentStep
	for _, s := range res.Siblings {
		switch strategy {
		case Sequential:
			log.Add(s.Name, "all ranks", at, at+s.PhaseTime)
			at += s.PhaseTime
		default:
			lane := fmt.Sprintf("%dx%d@(%d,%d)", s.Rect.W, s.Rect.H, s.Rect.X, s.Rect.Y)
			log.Add(s.Name, lane, parentStep, parentStep+s.PhaseTime)
		}
	}
	if res.IOTime > 0 {
		log.Add("output", "all ranks", res.IterTime, res.IterTime+res.IOTime)
	}
	return log
}
