package ensemble

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
)

// sharedCache is reused across tests: member geometries are drawn from
// the same quantized jitter space, so later tests run cache-warm.
var sharedCache = planserve.NewPlanCache(8192)

func TestSpecValidation(t *testing.T) {
	good := Spec{Members: 10}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
	cases := []Spec{
		{Members: 0},
		{Members: 10, Generator: "chaos"},
		{Members: 10, Machine: "summit"},
		{Members: 10, Ranks: -1},
		{Members: 10, StepsPerPhase: -5},
	}
	for i, c := range cases {
		s := c.WithDefaults()
		if c.Generator != "" {
			s.Generator = c.Generator
		}
		if c.Machine != "" {
			s.Machine = c.Machine
		}
		if c.Ranks != 0 {
			s.Ranks = c.Ranks
		}
		if c.StepsPerPhase != 0 {
			s.StepsPerPhase = c.StepsPerPhase
		}
		if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d (%+v): err=%v, want ErrBadSpec", i, s, err)
		}
	}
	if _, err := good.Member(-1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Member(-1): %v", err)
	}
	if _, err := good.Member(good.Members); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Member(len): %v", err)
	}
}

// Every generator must produce members that validate, over a large ID
// range: the clamped quantized samplers may never emit a nest that
// overflows its parent.
func TestGeneratorsProduceValidMembers(t *testing.T) {
	for _, gen := range Generators() {
		spec := Spec{Generator: gen, Members: 300, Seed: 42}.WithDefaults()
		kinds := map[string]int{}
		for id := 0; id < spec.Members; id++ {
			m, err := spec.Member(id)
			if err != nil {
				t.Fatalf("%s member %d: %v", gen, id, err)
			}
			kinds[m.Kind]++
			switch m.Kind {
			case GenSeason:
				if len(m.Phases) != 5 {
					t.Fatalf("%s member %d: %d phases, want 5", gen, id, len(m.Phases))
				}
			case GenHierarchy, GenSweep:
				if m.Config == nil {
					t.Fatalf("%s member %d: nil config", gen, id)
				}
			}
			if err := m.Opt.Validate(); err != nil {
				t.Fatalf("%s member %d options: %v", gen, id, err)
			}
		}
		if gen == GenMixed && len(kinds) != 3 {
			t.Errorf("mixed produced kinds %v, want all three", kinds)
		}
	}
}

// Hierarchy members must include genuinely 3-level configurations
// (coarse -> regional -> local) somewhere in the sampled population.
func TestHierarchyReachesThreeLevels(t *testing.T) {
	spec := Spec{Generator: GenHierarchy, Members: 50, Seed: 7}.WithDefaults()
	deep := 0
	for id := 0; id < spec.Members; id++ {
		m, err := spec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range m.Config.Children {
			if len(reg.Children) > 0 {
				deep++
			}
		}
	}
	if deep == 0 {
		t.Error("no 3-level hierarchy in 50 sampled members")
	}
}

// Member realization is a pure function of (Spec, ID): any order, any
// repetition, same scenario.
func TestMembersDeterministic(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 30, Seed: 99}.WithDefaults()
	for _, id := range []int{29, 3, 17, 3, 0, 29} {
		a, err := spec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("member %d not deterministic", id)
		}
	}
}

func aggJSON(t *testing.T, a *Aggregates) string {
	t.Helper()
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// Two runs of the same spec — different worker counts, so completion
// order differs — must produce identical aggregates: the in-order
// committer makes aggregation independent of scheduling.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 45, Seed: 1, Ranks: 512, StepsPerPhase: 10}
	ctx := context.Background()
	one, err := (&Engine{Spec: spec, Workers: 1, Cache: sharedCache}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	many, err := (&Engine{Spec: spec, Workers: 8, Cache: sharedCache}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if one.Committed != 45 || many.Committed != 45 {
		t.Fatalf("committed %d / %d, want 45", one.Committed, many.Committed)
	}
	if a, b := aggJSON(t, one.Aggregates), aggJSON(t, many.Aggregates); a != b {
		t.Errorf("aggregates depend on worker count:\n1 worker: %s\n8 workers: %s", a, b)
	}
	if one.Aggregates.ImprovementPct.Count != 45 {
		t.Errorf("improvement stream count %d, want 45", one.Aggregates.ImprovementPct.Count)
	}
}

// Kill/resume: a run stopped mid-campaign and resumed from its
// checkpoint must reproduce the uninterrupted run's aggregates bit for
// bit, without recomputing finished members.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 45, Seed: 2, Ranks: 512, StepsPerPhase: 10}
	ctx := context.Background()

	full, err := (&Engine{Spec: spec, Workers: 6, Cache: sharedCache}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	reg := metrics.NewRegistry()
	stoppedRun, err := (&Engine{
		Spec: spec, Workers: 6, Cache: sharedCache, Metrics: reg,
		CheckpointPath: path, CheckpointEvery: 7, StopAfter: 17,
	}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stoppedRun.Stopped {
		t.Fatal("StopAfter run not marked Stopped")
	}
	if stoppedRun.Committed != 17 {
		t.Fatalf("stopped run committed %d, want 17", stoppedRun.Committed)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Committed != 17 {
		t.Fatalf("checkpoint frontier %d, want 17", cp.Committed)
	}

	resumed, err := (&Engine{
		Spec: spec, Workers: 6, Cache: sharedCache, CheckpointPath: path,
	}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedFrom != 17 {
		t.Fatalf("resumed from %d, want 17", resumed.ResumedFrom)
	}
	if resumed.Committed != spec.Members {
		t.Fatalf("resumed run committed %d, want %d", resumed.Committed, spec.Members)
	}
	if a, b := aggJSON(t, full.Aggregates), aggJSON(t, resumed.Aggregates); a != b {
		t.Errorf("resume broke bit-identity:\nfull:    %s\nresumed: %s", a, b)
	}

	// Resuming a completed campaign is a no-op with the same aggregates.
	again, err := (&Engine{Spec: spec, Cache: sharedCache, CheckpointPath: path}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.ResumedFrom != spec.Members || again.Committed != spec.Members {
		t.Fatalf("no-op resume: from=%d committed=%d", again.ResumedFrom, again.Committed)
	}
	if a, b := aggJSON(t, full.Aggregates), aggJSON(t, again.Aggregates); a != b {
		t.Error("no-op resume changed aggregates")
	}
}

// A checkpoint written by a different campaign must be rejected, not
// silently mixed in.
func TestCheckpointSpecMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	ctx := context.Background()
	specA := Spec{Generator: GenSweep, Members: 9, Seed: 5, StepsPerPhase: 10}
	if _, err := (&Engine{Spec: specA, Cache: sharedCache, CheckpointPath: path, StopAfter: 4}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	specB := specA
	specB.Seed = 6
	if _, err := (&Engine{Spec: specB, Cache: sharedCache, CheckpointPath: path}).Run(ctx); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("mismatched spec resumed: %v", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("absent checkpoint: %v", err)
	}
}

// Worker-pool burst under the race detector: many members, small
// window, cancellation mid-flight. Run with -race in CI.
func TestEngineBurst(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 120, Seed: 3, Ranks: 256, StepsPerPhase: 5}
	sum, err := (&Engine{Spec: spec, Workers: 8, Window: 9, Cache: sharedCache, Metrics: metrics.NewRegistry()}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Committed != 120 {
		t.Fatalf("committed %d, want 120", sum.Committed)
	}
	if sum.MembersPerSec <= 0 {
		t.Error("members/sec not reported")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Engine{Spec: spec, Workers: 8, Cache: sharedCache}).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: %v", err)
	}
}
