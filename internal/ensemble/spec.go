// Package ensemble grows the paper's single-scenario campaign and
// steering loops into a runtime-scale ensemble engine (the ProWis
// direction, and the paper's Section 6 future work of steering
// multiple nested simulations at once): it generates thousands of
// perturbed scenarios — storm-track jitter over typhoon-season
// storylines, mgrid-style coarse→regional→local nest hierarchies,
// machine and allocation-policy sweeps — and executes them over a
// bounded worker pool that shares one plan cache, streaming members
// into online aggregate statistics instead of retaining outputs.
//
// Everything a member is, is a deterministic function of (Spec, member
// ID): a per-member PRNG is seeded from a splitmix64 hash of the
// campaign seed and the ID, so members can be re-generated in any
// order — a killed campaign resumes from its checkpoint and reproduces
// the uninterrupted run's aggregates bit for bit.
package ensemble

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"nestwrf/internal/campaign"
	"nestwrf/internal/driver"
	"nestwrf/internal/machine"
	"nestwrf/internal/nest"
)

// Generator names.
const (
	// GenSeason jitters the typhoon-season storyline: every member is
	// a 5-phase campaign whose depression tracks are shifted and
	// scaled.
	GenSeason = "season-jitter"
	// GenHierarchy samples mgrid-style 3-level coarse→regional→local
	// nest hierarchies: 1-3 regional nests (refinement 3 or 5), each
	// optionally carrying a finer local nest.
	GenHierarchy = "hierarchy"
	// GenSweep sweeps machines, rank counts and allocation policies
	// over a jittered peak-season configuration.
	GenSweep = "sweep"
	// GenMixed interleaves the three families round-robin by member ID.
	GenMixed = "mixed"
)

// Generators lists the accepted generator names.
func Generators() []string {
	return []string{GenSeason, GenHierarchy, GenSweep, GenMixed}
}

// Spec identifies a campaign: every field participates in checkpoint
// matching, and member scenarios are pure functions of (Spec, ID).
type Spec struct {
	// Generator is one of Generators(). Default: mixed.
	Generator string `json:"generator"`
	// Members is the campaign size.
	Members int `json:"members"`
	// Seed drives all scenario sampling.
	Seed int64 `json:"seed"`
	// Machine is the base machine, "bgl" or "bgp" (the sweep generator
	// samples its own). Default: bgl.
	Machine string `json:"machine"`
	// Ranks is the base processor count (the sweep generator samples
	// its own). Default: 1024.
	Ranks int `json:"ranks"`
	// StepsPerPhase is the season storyline phase length. Default: 100.
	StepsPerPhase int `json:"steps_per_phase"`
}

// Errors.
var (
	ErrBadSpec = errors.New("ensemble: bad spec")
)

// WithDefaults returns the spec with zero fields defaulted.
func (s Spec) WithDefaults() Spec {
	if s.Generator == "" {
		s.Generator = GenMixed
	}
	if s.Machine == "" {
		s.Machine = "bgl"
	}
	if s.Ranks == 0 {
		s.Ranks = 1024
	}
	if s.StepsPerPhase == 0 {
		s.StepsPerPhase = 100
	}
	return s
}

// Validate checks the (defaulted) spec.
func (s Spec) Validate() error {
	if s.Members <= 0 {
		return fmt.Errorf("%w: members=%d", ErrBadSpec, s.Members)
	}
	switch s.Generator {
	case GenSeason, GenHierarchy, GenSweep, GenMixed:
	default:
		return fmt.Errorf("%w: unknown generator %q (accepted: %s)",
			ErrBadSpec, s.Generator, strings.Join(Generators(), ", "))
	}
	if _, err := s.baseMachine(); err != nil {
		return err
	}
	if s.Ranks <= 0 {
		return fmt.Errorf("%w: ranks=%d", ErrBadSpec, s.Ranks)
	}
	if s.StepsPerPhase <= 0 {
		return fmt.Errorf("%w: steps_per_phase=%d", ErrBadSpec, s.StepsPerPhase)
	}
	return nil
}

func (s Spec) baseMachine() (machine.Machine, error) {
	switch strings.ToLower(s.Machine) {
	case "bgl", "bg/l", "bluegene/l":
		return machine.BGL(), nil
	case "bgp", "bg/p", "bluegene/p":
		return machine.BGP(), nil
	}
	return machine.Machine{}, fmt.Errorf("%w: unknown machine %q (accepted: bgl, bgp)", ErrBadSpec, s.Machine)
}

// kindFor returns the realized generator family of one member.
func (s Spec) kindFor(id int) string {
	if s.Generator != GenMixed {
		return s.Generator
	}
	return []string{GenSeason, GenHierarchy, GenSweep}[id%3]
}

// Member is one realized scenario: either a multi-phase storyline
// (Phases set) or a single configuration (Config set), plus the
// options to run it under.
type Member struct {
	ID   int
	Kind string
	// Phases is the storyline for season members.
	Phases []campaign.Phase
	// Config is the single configuration for hierarchy/sweep members.
	Config *nest.Domain
	// Opt carries machine, ranks and allocation policy. Strategy is
	// chosen by the runner (members compare sequential vs concurrent).
	Opt driver.Options
}

// Member realizes scenario id. It is deterministic: the same (Spec,
// id) always yields the same scenario, independent of the order
// members are generated in.
func (s Spec) Member(id int) (Member, error) {
	if id < 0 || id >= s.Members {
		return Member{}, fmt.Errorf("%w: member %d of %d", ErrBadSpec, id, s.Members)
	}
	base, err := s.baseMachine()
	if err != nil {
		return Member{}, err
	}
	r := memberRNG(s.Seed, id)
	m := Member{
		ID:   id,
		Kind: s.kindFor(id),
		Opt: driver.Options{
			Machine: base,
			Ranks:   s.Ranks,
			MapKind: driver.MapSequential,
			Alloc:   driver.AllocPredicted,
		},
	}
	switch m.Kind {
	case GenSeason:
		m.Phases = seasonJitter(r, s.StepsPerPhase)
		for _, ph := range m.Phases {
			if err := ph.Config.Validate(); err != nil {
				return Member{}, fmt.Errorf("ensemble: member %d: %w", id, err)
			}
		}
	case GenHierarchy:
		m.Config = hierarchyConfig(r)
	case GenSweep:
		m.Opt.Machine = []machine.Machine{machine.BGL(), machine.BGP()}[r.Intn(2)]
		m.Opt.Ranks = []int{256, 512, 1024}[r.Intn(3)]
		m.Opt.Alloc = []driver.AllocPolicy{
			driver.AllocPredicted, driver.AllocEqual, driver.AllocNaivePoints,
		}[r.Intn(3)]
		m.Config = sweepConfig(r)
	}
	if m.Config != nil {
		if err := m.Config.Validate(); err != nil {
			return Member{}, fmt.Errorf("ensemble: member %d: %w", id, err)
		}
	}
	return m, nil
}

// memberRNG derives a per-member PRNG from the campaign seed and the
// member ID via a splitmix64 finalizer, so member scenarios are
// independent of generation order.
func memberRNG(seed int64, id int) *rand.Rand {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// addClamped attaches a child of roughly nx x ny at refinement ratio,
// clamping the size into the parent's capacity and snapping the offset
// into the feasible range, so every sampled scenario validates.
func addClamped(parent *nest.Domain, name string, nx, ny, ratio, offX, offY int) *nest.Domain {
	if nx < ratio {
		nx = ratio
	}
	if maxNX := parent.NX * ratio; nx > maxNX {
		nx = maxNX
	}
	if ny < ratio {
		ny = ratio
	}
	if maxNY := parent.NY * ratio; ny > maxNY {
		ny = maxNY
	}
	fx := (nx + ratio - 1) / ratio
	fy := (ny + ratio - 1) / ratio
	offX = clamp(offX, 0, parent.NX-fx)
	offY = clamp(offY, 0, parent.NY-fy)
	return parent.AddChild(name, nx, ny, ratio, offX, offY)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// snap rounds v down to a multiple of q. Sampled sizes and offsets are
// snapped so distinct members still share plan-cache geometries: the
// jitter space is deliberately quantized.
func snap(v, q int) int {
	if v < 0 {
		return -snap(-v, q)
	}
	return v - v%q
}

// seasonJitter perturbs the typhoon-season storyline: all depressions
// shift along a common track offset (the storm track moved) and scale
// together (the season ran stronger or weaker). Offsets snap to 12
// grid points and scales to 10%, bounding the jitter space so the plan
// cache amortizes across members.
func seasonJitter(r *rand.Rand, steps int) []campaign.Phase {
	tdx := 12 * (r.Intn(3) - 1)
	tdy := 12 * (r.Intn(3) - 1)
	scale := []float64{0.9, 1.0, 1.1}[r.Intn(3)]
	base := campaign.Season(steps)
	out := make([]campaign.Phase, 0, len(base))
	for _, ph := range base {
		root := nest.Root(ph.Config.Name, ph.Config.NX, ph.Config.NY)
		for _, c := range ph.Config.Children {
			nx := snap(int(float64(c.NX)*scale), 10)
			ny := snap(int(float64(c.NY)*scale), 10)
			addClamped(root, c.Name, nx, ny, c.Ratio, c.OffX+tdx, c.OffY+tdy)
		}
		out = append(out, campaign.Phase{Steps: ph.Steps, Config: root})
	}
	return out
}

// hierarchyConfig samples an mgrid-style 3-level hierarchy on the
// Pacific parent: 1-3 regional nests at refinement 3 or 5, each with a
// 50% chance of carrying a finer local nest (refinement 3) — the
// coarse→regional→local shape of multi-resolution weather setups.
func hierarchyConfig(r *rand.Rand) *nest.Domain {
	root := nest.Root("coarse", 286, 307)
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		ratio := []int{3, 5}[r.Intn(2)]
		nx := 150 + 30*r.Intn(4)
		ny := 150 + 30*r.Intn(4)
		fx := (nx + ratio - 1) / ratio
		fy := (ny + ratio - 1) / ratio
		offX := snap((root.NX-fx)*r.Intn(3)/2, 4)
		offY := snap((root.NY-fy)*r.Intn(3)/2, 4)
		reg := addClamped(root, fmt.Sprintf("regional%d", i+1), nx, ny, ratio, offX, offY)
		if r.Intn(2) == 0 {
			lnx := snap(reg.NX/2+10*r.Intn(3), 10)
			lny := snap(reg.NY/2+10*r.Intn(3), 10)
			lfx := (lnx + 2) / 3
			lfy := (lny + 2) / 3
			loffX := snap((reg.NX-lfx)*r.Intn(3)/2, 4)
			loffY := snap((reg.NY-lfy)*r.Intn(3)/2, 4)
			addClamped(reg, fmt.Sprintf("local%d", i+1), lnx, lny, 3, loffX, loffY)
		}
	}
	return root
}

// sweepConfig jitters the peak-season 3-depression configuration the
// same way seasonJitter does; the sweep dimension is the machine,
// rank count and allocation policy sampled in Member.
func sweepConfig(r *rand.Rand) *nest.Domain {
	tdx := 12 * (r.Intn(3) - 1)
	tdy := 12 * (r.Intn(3) - 1)
	scale := []float64{0.9, 1.0, 1.1}[r.Intn(3)]
	peak := campaign.Season(1)[2].Config
	root := nest.Root("peak", peak.NX, peak.NY)
	for _, c := range peak.Children {
		nx := snap(int(float64(c.NX)*scale), 10)
		ny := snap(int(float64(c.NY)*scale), 10)
		addClamped(root, c.Name, nx, ny, c.Ratio, c.OffX+tdx, c.OffY+tdy)
	}
	return root
}
