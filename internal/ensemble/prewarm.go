package ensemble

import (
	"context"
	"strconv"

	"nestwrf/internal/driver"
	"nestwrf/internal/nest"
	"nestwrf/internal/planserve"
	"nestwrf/internal/telemetry"
)

// generationJobs expands members [lo, hi) into the plan-cache jobs
// they will issue when executed: for storyline members one sequential
// and one concurrent run per phase, for single-configuration members
// one of each for the whole config — exactly mirroring runMember and
// campaign.RunWith, so the prewarmed keys are the ones the workers
// look up.
func generationJobs(spec Spec, lo, hi int) []planserve.RunJob {
	var jobs []planserve.RunJob
	add := func(cfg *nest.Domain, opt driver.Options) {
		seqOpt := opt
		seqOpt.Strategy = driver.Sequential
		seqOpt.MapKind = driver.MapSequential
		conOpt := opt
		conOpt.Strategy = driver.Concurrent
		jobs = append(jobs,
			planserve.RunJob{Config: cfg, Opt: seqOpt},
			planserve.RunJob{Config: cfg, Opt: conOpt})
	}
	for id := lo; id < hi; id++ {
		m, err := spec.Member(id)
		if err != nil {
			// The worker that draws this ID reports the error with full
			// member context; prewarming just skips it.
			continue
		}
		if len(m.Phases) > 0 {
			for _, ph := range m.Phases {
				add(ph.Config, m.Opt)
			}
			continue
		}
		add(m.Config, m.Opt)
	}
	return jobs
}

// prewarmGeneration batch-plans one generation of members through the
// shared cache before the dispatcher releases their IDs. Errors are
// deliberately dropped: the cache does not retain them, so the worker
// that executes the failing member recomputes and surfaces the error
// in commit order, identical to an unprewarmed run.
func (e *Engine) prewarmGeneration(ctx context.Context, spec Spec, cache *planserve.PlanCache, lo, hi, workers int, campID telemetry.SpanID) {
	jobs := generationJobs(spec, lo, hi)
	if len(jobs) == 0 {
		return
	}
	var sp *telemetry.ActiveSpan
	if e.Tracer.Recording() {
		sp = e.Tracer.Start(campID, "prewarm", telemetry.LayerCampaign)
		sp.Annotate("generation_lo", strconv.Itoa(lo))
		sp.Annotate("jobs", strconv.Itoa(len(jobs)))
	}
	cache.RunBatch(ctx, jobs, workers)
	e.Metrics.Counter("ensemble_prewarm_generations_total").Inc()
	e.Metrics.Counter("ensemble_prewarm_jobs_total").Add(float64(len(jobs)))
	if sp != nil {
		sp.End()
	}
	if e.Log != nil {
		e.Log.Info("generation prewarmed",
			"lo", lo, "hi", hi, "jobs", len(jobs), "campaign", campID.String())
	}
}
