package ensemble

import (
	"context"
	"testing"

	"nestwrf/internal/planserve"
)

// BenchmarkCampaign1000 measures a cache-warm 1000-member mixed
// campaign: the first (untimed) run populates the shared plan cache,
// so the steady-state figure reflects member realization, cache
// lookups and streaming aggregation rather than planning.
func BenchmarkCampaign1000(b *testing.B) {
	spec := Spec{Generator: GenMixed, Members: 1000, Seed: 11, StepsPerPhase: 10}
	cache := planserve.NewPlanCache(8192)
	defer cache.Close()
	ctx := context.Background()
	warm := &Engine{Spec: spec, Workers: 8, Cache: cache}
	if _, err := warm.Run(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var perSec float64
	for i := 0; i < b.N; i++ {
		sum, err := (&Engine{Spec: spec, Workers: 8, Cache: cache}).Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		perSec = sum.MembersPerSec
	}
	b.ReportMetric(perSec, "members/sec")
}
