package ensemble

import (
	"context"
	"testing"

	"nestwrf/internal/metrics"
	"nestwrf/internal/planserve"
)

// TestGenerationPrewarmBitIdentity: batch-prewarming generations must
// not change what a campaign computes — aggregates and distinct-key
// miss counts match an unprewarmed cold run exactly; only the hit/miss
// timing moves (workers mostly hit after each generation's batch).
func TestGenerationPrewarmBitIdentity(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 36, Seed: 11, Ranks: 512, StepsPerPhase: 10}
	ctx := context.Background()

	coldA := planserve.NewPlanCache(8192)
	defer coldA.Close()
	plain, err := (&Engine{Spec: spec, Workers: 6, Cache: coldA}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	coldB := planserve.NewPlanCache(8192)
	defer coldB.Close()
	reg := metrics.NewRegistry()
	warmed, err := (&Engine{
		Spec: spec, Workers: 6, Cache: coldB, Generation: 10, Metrics: reg,
	}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Committed != spec.Members || warmed.Committed != spec.Members {
		t.Fatalf("committed %d / %d, want %d", plain.Committed, warmed.Committed, spec.Members)
	}
	if a, b := aggJSON(t, plain.Aggregates), aggJSON(t, warmed.Aggregates); a != b {
		t.Errorf("prewarming changed aggregates:\nplain:  %s\nwarmed: %s", a, b)
	}
	if plain.CacheMisses != warmed.CacheMisses {
		t.Errorf("distinct geometries planned: plain %d, warmed %d",
			plain.CacheMisses, warmed.CacheMisses)
	}
	if warmed.CacheHits < plain.CacheHits {
		t.Errorf("prewarmed run hit less than plain: %d < %d",
			warmed.CacheHits, plain.CacheHits)
	}

	snap := reg.Snapshot()
	gens := findMetric(snap, "ensemble_prewarm_generations_total")
	if want := float64((spec.Members + 9) / 10); gens != want {
		t.Errorf("prewarm generations %v, want %v", gens, want)
	}
	if jobs := findMetric(snap, "ensemble_prewarm_jobs_total"); jobs <= 0 {
		t.Errorf("prewarm jobs %v, want > 0", jobs)
	}
}

// TestGenerationJobsMirrorRunMember: the jobs a generation expands to
// must cover exactly the (config, option) pairs runMember issues —
// storyline members contribute 2 jobs per phase, single-config members
// 2 jobs total.
func TestGenerationJobsMirrorRunMember(t *testing.T) {
	spec := Spec{Generator: GenMixed, Members: 12, Seed: 4}.WithDefaults()
	jobs := generationJobs(spec, 0, spec.Members)
	want := 0
	for id := 0; id < spec.Members; id++ {
		m, err := spec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(m.Phases); n > 0 {
			want += 2 * n
		} else {
			want += 2
		}
	}
	if len(jobs) != want {
		t.Fatalf("generation expanded to %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Config == nil {
			t.Fatalf("job %d: nil config", i)
		}
		if err := j.Opt.Validate(); err != nil {
			t.Fatalf("job %d: invalid options: %v", i, err)
		}
	}
}

// findMetric pulls one counter value out of a registry snapshot.
func findMetric(snap metrics.Snapshot, name string) float64 {
	for _, m := range snap.Counters {
		if m.Name == name {
			return m.Value
		}
	}
	return -1
}
