package ensemble

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nestwrf/internal/campaign"
	"nestwrf/internal/driver"
	"nestwrf/internal/metrics"
	"nestwrf/internal/nest"
	"nestwrf/internal/planserve"
	"nestwrf/internal/stats"
	"nestwrf/internal/telemetry"
)

// Errors.
var (
	// ErrCheckpointMismatch reports a checkpoint written by a different
	// campaign spec: resuming it would mix incompatible aggregates.
	ErrCheckpointMismatch = errors.New("ensemble: checkpoint spec does not match")
	// ErrBadCheckpoint reports an unreadable or wrong-version file.
	ErrBadCheckpoint = errors.New("ensemble: bad checkpoint")
)

// checkpointVersion tags the on-disk format.
const checkpointVersion = "nestwrf/ensemble-checkpoint/v1"

// MemberResult is the per-member outcome that feeds the aggregates:
// campaign wall time under the default and concurrent strategies (for
// storyline members: the whole storyline; for single-configuration
// members: one iteration) and the relative gain.
type MemberResult struct {
	ID             int     `json:"id"`
	Kind           string  `json:"kind"`
	Default        float64 `json:"default"`
	Concurrent     float64 `json:"concurrent"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// Aggregates holds the streaming statistics a campaign maintains in
// place of per-member retention: online mean/variance/extrema plus P²
// p10/p50/p90 estimates for the default time, the concurrent time and
// the improvement. Memory is O(1) regardless of campaign size, and the
// whole struct round-trips through JSON bit-exactly for checkpoints.
type Aggregates struct {
	DefaultTime    *stats.Stream `json:"default_time"`
	ConcurrentTime *stats.Stream `json:"concurrent_time"`
	ImprovementPct *stats.Stream `json:"improvement_pct"`
}

// NewAggregates returns empty accumulators tracking p10/p50/p90.
func NewAggregates() *Aggregates {
	return &Aggregates{
		DefaultTime:    stats.NewStream(0.1, 0.5, 0.9),
		ConcurrentTime: stats.NewStream(0.1, 0.5, 0.9),
		ImprovementPct: stats.NewStream(0.1, 0.5, 0.9),
	}
}

// Ingest commits one member. Aggregates are order-sensitive (P² marker
// positions depend on arrival order), so the engine always ingests in
// member-ID order regardless of completion order.
func (a *Aggregates) Ingest(mr MemberResult) {
	a.DefaultTime.Add(mr.Default)
	a.ConcurrentTime.Add(mr.Concurrent)
	a.ImprovementPct.Add(mr.ImprovementPct)
}

// Checkpoint is the campaign state written to disk: after ingesting
// members [0, Committed) in ID order, the aggregates are exactly these.
// A resumed run restores them and continues from member Committed, so
// the final aggregates equal an uninterrupted run's bit for bit.
type Checkpoint struct {
	Version    string      `json:"version"`
	Spec       Spec        `json:"spec"`
	Committed  int         `json:"committed"`
	Aggregates *Aggregates `json:"aggregates"`
}

// LoadCheckpoint reads and version-checks a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCheckpoint, err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCheckpoint, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %q, want %q", ErrBadCheckpoint, cp.Version, checkpointVersion)
	}
	if cp.Aggregates == nil || cp.Committed < 0 {
		return nil, fmt.Errorf("%w: missing aggregates", ErrBadCheckpoint)
	}
	return &cp, nil
}

// save writes the checkpoint atomically (temp file + rename in the
// destination directory), so a kill mid-write leaves the previous
// checkpoint intact.
func (cp *Checkpoint) save(path string) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ensemble-ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Summary reports a finished (or stopped) campaign run.
type Summary struct {
	Spec Spec `json:"spec"`
	// Committed is the total number of members ingested into the
	// aggregates, including those restored from a checkpoint.
	Committed int `json:"committed"`
	// ResumedFrom is the checkpoint frontier this run started at.
	ResumedFrom int `json:"resumed_from"`
	// Stopped is true when StopAfter ended the run before the campaign
	// completed (the checkpoint, if configured, holds the frontier).
	Stopped    bool        `json:"stopped"`
	Aggregates *Aggregates `json:"aggregates"`
	// CacheHits/CacheMisses are the plan cache's cumulative counters
	// (the cache may be shared across runs). Misses count distinct
	// geometries planned.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// ElapsedSec and MembersPerSec measure this run's wall clock over
	// the members it executed (not checkpoint-restored ones).
	ElapsedSec    float64 `json:"elapsed_sec"`
	MembersPerSec float64 `json:"members_per_sec"`
}

// Engine executes a campaign: a bounded worker pool realizes and
// simulates members through a shared plan cache, and a single committer
// folds results into the streaming aggregates strictly in member-ID
// order, so aggregates are independent of scheduling. In-flight memory
// is bounded by Window members.
type Engine struct {
	Spec Spec
	// Workers is the pool size. Default: GOMAXPROCS.
	Workers int
	// Window bounds members in flight (dispatched but not yet
	// committed). Default: 4*Workers.
	Window int
	// Cache is the shared plan cache. Nil allocates a private one for
	// the run. All workers share it, and it deduplicates concurrent
	// identical plans via singleflight.
	Cache *planserve.PlanCache
	// Metrics, when non-nil, receives progress instrumentation.
	Metrics *metrics.Registry
	// CheckpointPath enables kill/resume: the engine resumes from the
	// file when it exists and writes it periodically and on exit.
	CheckpointPath string
	// CheckpointEvery is the commit interval between periodic
	// checkpoint writes. Default: 64.
	CheckpointEvery int
	// StopAfter, when positive, stops the run after that many commits
	// this run (simulating a kill for resume testing). The summary has
	// Stopped=true and a nil error.
	StopAfter int
	// Generation, when positive, groups member IDs into generations of
	// that many and batch-submits each generation's plan-cache jobs
	// (every phase of every member, sequential and concurrent) through
	// PlanCache.RunBatch before dispatching its members. Cold campaigns
	// then pay one coalesced parallel planning pass per generation
	// instead of demand-faulting misses one worker at a time; workers
	// mostly hit. Results and aggregates are bit-identical with or
	// without it — prewarming only moves when planning happens.
	Generation int
	// Tracer, when non-nil, records one campaign-layer span for the
	// run, with member-layer spans for head-sampled members (every
	// tracer.SampleEvery-th member ID) wrapping their plan-cache
	// lookups and driver runs. Unsampled members skip tracing
	// entirely, so 10k-member campaigns stay O(window) in span count
	// per sampled member. Nil keeps tracing off the hot path.
	Tracer *telemetry.Tracer
	// Log, when non-nil, receives structured campaign lifecycle lines
	// (start, checkpoints, completion) and one line per sampled
	// member, each carrying the campaign/member span IDs that join
	// against exported trace dumps.
	Log *slog.Logger

	// Live progress state behind Progress(); guarded by progMu. The
	// committer updates it as members are ingested.
	progMu   sync.Mutex
	progOn   bool // a run has started populating the fields below
	progDone int
	progFrom int
	progTot  int
	progAt   time.Time
	progAgg  *Aggregates
	progCch  *planserve.PlanCache
}

// Progress is a live snapshot of a running (or finished) campaign:
// how far it has advanced, its throughput and ETA, the streaming gain
// aggregates so far, and the plan cache's effectiveness.
type Progress struct {
	// Done/Total count committed members (Done includes ResumedFrom
	// checkpoint-restored ones).
	Done        int `json:"done"`
	Total       int `json:"total"`
	ResumedFrom int `json:"resumed_from"`
	// ElapsedSec covers this run; MembersPerSec covers members this
	// run executed; EtaSec extrapolates the remainder at that rate
	// (zero until the first commit).
	ElapsedSec    float64 `json:"elapsed_sec"`
	MembersPerSec float64 `json:"members_per_sec"`
	EtaSec        float64 `json:"eta_sec"`
	// Gain summarizes the improvement-percent stream so far.
	GainMean float64 `json:"gain_mean"`
	GainP10  float64 `json:"gain_p10"`
	GainP50  float64 `json:"gain_p50"`
	GainP90  float64 `json:"gain_p90"`
	// Cache effectiveness (cumulative over the shared cache).
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Progress reports the campaign's live state. Before Run has started
// it returns a zero Progress with ok=false. Safe for concurrent use
// with a running campaign: the /debug/progress endpoint polls it.
func (e *Engine) Progress() (Progress, bool) {
	e.progMu.Lock()
	defer e.progMu.Unlock()
	if !e.progOn {
		return Progress{}, false
	}
	p := Progress{
		Done:        e.progDone,
		Total:       e.progTot,
		ResumedFrom: e.progFrom,
		ElapsedSec:  time.Since(e.progAt).Seconds(),
	}
	if ran := e.progDone - e.progFrom; ran > 0 && p.ElapsedSec > 0 {
		p.MembersPerSec = float64(ran) / p.ElapsedSec
		p.EtaSec = float64(e.progTot-e.progDone) / p.MembersPerSec
	}
	if g := e.progAgg.ImprovementPct; g != nil && g.Count > 0 {
		p.GainMean = g.Mean
		p.GainP10, _ = g.Quantile(0.1)
		p.GainP50, _ = g.Quantile(0.5)
		p.GainP90, _ = g.Quantile(0.9)
	}
	if e.progCch != nil {
		p.CacheHits, p.CacheMisses, _ = e.progCch.Stats()
		if lookups := p.CacheHits + p.CacheMisses; lookups > 0 {
			p.CacheHitRate = float64(p.CacheHits) / float64(lookups)
		}
	}
	return p, true
}

// commitMsg carries one worker's outcome to the committer.
type commitMsg struct {
	id  int
	res MemberResult
	err error
}

// Run executes the campaign until completion, StopAfter, a member
// error, or context cancellation.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	spec := e.Spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := e.Window
	if window <= 0 {
		window = 4 * workers
	}
	checkpointEvery := e.CheckpointEvery
	if checkpointEvery <= 0 {
		checkpointEvery = 64
	}

	agg := NewAggregates()
	start := 0
	if e.CheckpointPath != "" {
		if _, err := os.Stat(e.CheckpointPath); err == nil {
			cp, err := LoadCheckpoint(e.CheckpointPath)
			if err != nil {
				return nil, err
			}
			if cp.Spec != spec {
				return nil, fmt.Errorf("%w: checkpoint %+v, campaign %+v", ErrCheckpointMismatch, cp.Spec, spec)
			}
			agg = cp.Aggregates
			start = cp.Committed
		}
	}

	cache := e.Cache
	if cache == nil {
		cache = planserve.NewPlanCache(4096)
		defer cache.Close()
	}

	sum := &Summary{Spec: spec, ResumedFrom: start, Aggregates: agg}
	committedGauge := e.Metrics.Gauge("ensemble_committed")
	committedGauge.Set(float64(start))
	begin := time.Now()

	e.progMu.Lock()
	e.progOn = true
	e.progDone, e.progFrom, e.progTot = start, start, spec.Members
	e.progAt = begin
	e.progAgg = agg
	e.progCch = cache
	e.progMu.Unlock()

	next := start
	thisRun := 0
	stopped := false
	var firstErr error

	// The campaign span is the root every sampled member parents
	// under; its ID also appears in every campaign log line.
	csp := e.Tracer.Start(0, "campaign", telemetry.LayerCampaign)
	campID := csp.ID()
	if csp != nil {
		csp.Annotate("members", strconv.Itoa(spec.Members))
		csp.Annotate("resumed_from", strconv.Itoa(start))
		csp.Annotate("workers", strconv.Itoa(workers))
		defer func() {
			csp.Annotate("committed", strconv.Itoa(next))
			if firstErr != nil {
				csp.Annotate("error", firstErr.Error())
			}
			csp.End()
		}()
	}
	if e.Log != nil {
		e.Log.Info("campaign start",
			"members", spec.Members, "resumed_from", start,
			"workers", workers, "window", window, "campaign", campID.String())
	}

	if start < spec.Members {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		sem := make(chan struct{}, window) // in-flight window tokens
		jobs := make(chan int)
		results := make(chan commitMsg, window)

		go func() { // dispatcher
			defer close(jobs)
			for id := start; id < spec.Members; id++ {
				if e.Generation > 0 && (id-start)%e.Generation == 0 {
					hi := id + e.Generation
					if hi > spec.Members {
						hi = spec.Members
					}
					e.prewarmGeneration(runCtx, spec, cache, id, hi, workers, campID)
				}
				select {
				case sem <- struct{}{}:
				case <-runCtx.Done():
					return
				}
				select {
				case jobs <- id:
				case <-runCtx.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range jobs {
					// Head sampling: every SampleEvery-th member gets a
					// member-layer span under the campaign; the rest run
					// with tracing fully off.
					var msp *telemetry.ActiveSpan
					if e.Tracer.Recording() && e.Tracer.Sampled(id) {
						msp = e.Tracer.Start(campID, "member", telemetry.LayerMember)
						msp.Annotate("member", strconv.Itoa(id))
					}
					t0 := time.Now()
					mr, err := e.runMember(runCtx, spec, cache, id, msp.ID())
					dur := time.Since(t0).Seconds()
					e.Metrics.Summary("ensemble_member_seconds", nil,
						metrics.L("kind", mr.Kind)).Observe(dur)
					if err == nil {
						e.Metrics.Summary("ensemble_improvement_pct", nil).Observe(mr.ImprovementPct)
					}
					if msp != nil {
						msp.Annotate("kind", mr.Kind)
						if err != nil {
							msp.Annotate("error", err.Error())
						} else {
							msp.Annotate("improvement_pct",
								strconv.FormatFloat(mr.ImprovementPct, 'g', -1, 64))
						}
						msp.End()
						if e.Log != nil {
							e.Log.Info("member sampled",
								"member", id, "kind", mr.Kind, "seconds", dur,
								"campaign", campID.String(), "span", msp.ID().String())
						}
					}
					select {
					case results <- commitMsg{id: id, res: mr, err: err}:
					case <-runCtx.Done():
						return
					}
				}
			}()
		}
		go func() { wg.Wait(); close(results) }()

		// Committer: ingest strictly in member-ID order. Out-of-order
		// completions wait in pending, which the window token bounds.
		pending := make(map[int]commitMsg, window)
	commitLoop:
		for msg := range results {
			if msg.err != nil {
				firstErr = fmt.Errorf("ensemble: member %d: %w", msg.id, msg.err)
				if e.Log != nil {
					e.Log.Error("member failed",
						"member", msg.id, "error", msg.err, "campaign", campID.String())
				}
				cancel()
				break
			}
			pending[msg.id] = msg
			for {
				m, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				<-sem // release the window slot
				// Ingest under progMu so Progress() can snapshot the
				// streaming aggregates mid-run without racing the P²
				// marker updates.
				e.progMu.Lock()
				agg.Ingest(m.res)
				next++
				e.progDone = next
				e.progMu.Unlock()
				thisRun++
				e.Metrics.Counter("ensemble_members_total", metrics.L("kind", m.res.Kind)).Inc()
				committedGauge.Set(float64(next))
				if e.CheckpointPath != "" && thisRun%checkpointEvery == 0 && next < spec.Members {
					if err := e.writeCheckpoint(spec, next, agg); err != nil {
						firstErr = err
						cancel()
						break commitLoop
					}
				}
				if e.StopAfter > 0 && thisRun >= e.StopAfter && next < spec.Members {
					stopped = true
					cancel()
					break commitLoop
				}
			}
		}
		if firstErr == nil && !stopped && next < spec.Members {
			// The pool wound down early without an error of its own:
			// the caller's context was cancelled.
			firstErr = context.Cause(ctx)
			if firstErr == nil {
				firstErr = ctx.Err()
			}
		}
	}

	if e.CheckpointPath != "" && firstErr == nil {
		if err := e.writeCheckpoint(spec, next, agg); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	elapsed := time.Since(begin)
	sum.Committed = next
	sum.Stopped = stopped
	sum.CacheHits, sum.CacheMisses, _ = cache.Stats()
	sum.ElapsedSec = elapsed.Seconds()
	if thisRun > 0 && elapsed > 0 {
		sum.MembersPerSec = float64(thisRun) / elapsed.Seconds()
	}
	if e.Log != nil {
		e.Log.Info("campaign done",
			"committed", next, "stopped", stopped,
			"members_per_sec", sum.MembersPerSec,
			"cache_hits", sum.CacheHits, "cache_misses", sum.CacheMisses,
			"campaign", campID.String())
	}
	return sum, nil
}

func (e *Engine) writeCheckpoint(spec Spec, committed int, agg *Aggregates) error {
	cp := &Checkpoint{Version: checkpointVersion, Spec: spec, Committed: committed, Aggregates: agg}
	if err := cp.save(e.CheckpointPath); err != nil {
		return fmt.Errorf("ensemble: checkpoint: %w", err)
	}
	e.Metrics.Counter("ensemble_checkpoints_total").Inc()
	return nil
}

// runMember realizes and simulates one member. Storyline members run
// the full multi-phase campaign comparison; single-configuration
// members compare one sequential against one concurrent iteration. All
// driver runs go through the shared plan cache. parent, when nonzero,
// is the member span every cache lookup (and miss computation) of
// this member parents under; zero leaves the member untraced.
func (e *Engine) runMember(ctx context.Context, spec Spec, cache *planserve.PlanCache, id int, parent telemetry.SpanID) (MemberResult, error) {
	m, err := spec.Member(id)
	if err != nil {
		return MemberResult{}, err
	}
	run := func(cfg *nest.Domain, opt driver.Options) (driver.Result, error) {
		if parent != 0 {
			opt.Tracer = e.Tracer
			opt.TraceParent = parent
		}
		res, _, err := cache.Run(ctx, cfg, opt)
		return res, err
	}
	mr := MemberResult{ID: id, Kind: m.Kind}
	if len(m.Phases) > 0 {
		cres, err := campaign.RunWith(m.Phases, m.Opt, run)
		if err != nil {
			return mr, err
		}
		mr.Default = cres.TotalDefault
		mr.Concurrent = cres.TotalConcurrent
		mr.ImprovementPct = cres.ImprovementPct()
		return mr, nil
	}
	seqOpt := m.Opt
	seqOpt.Strategy = driver.Sequential
	seqOpt.MapKind = driver.MapSequential
	seq, err := run(m.Config, seqOpt)
	if err != nil {
		return mr, err
	}
	conOpt := m.Opt
	conOpt.Strategy = driver.Concurrent
	con, err := run(m.Config, conOpt)
	if err != nil {
		return mr, err
	}
	mr.Default = seq.IterTime
	mr.Concurrent = con.IterTime
	mr.ImprovementPct = stats.Improvement(seq.IterTime, con.IterTime)
	return mr, nil
}
