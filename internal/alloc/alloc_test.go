package alloc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRectBasics(t *testing.T) {
	r := Rect{2, 3, 4, 5}
	if r.Area() != 20 {
		t.Errorf("Area = %d", r.Area())
	}
	if r.Aspect() != 0.8 {
		t.Errorf("Aspect = %v", r.Aspect())
	}
	if got := r.Squareness(); got != 0.8 {
		t.Errorf("Squareness = %v", got)
	}
	if !r.Contains(2, 3) || !r.Contains(5, 7) {
		t.Error("Contains should include corners inside")
	}
	if r.Contains(6, 3) || r.Contains(2, 8) {
		t.Error("Contains should exclude outside coords")
	}
	if (Rect{0, 0, 0, 5}).Squareness() != 0 {
		t.Error("empty rect squareness should be 0")
	}
	if (Rect{0, 0, 5, 4}).Squareness() != 0.8 {
		t.Error("wide rect squareness")
	}
}

func TestRectOverlaps(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{4, 0, 4, 4}, false}, // adjacent right
		{Rect{0, 4, 4, 4}, false}, // adjacent below
		{Rect{3, 3, 2, 2}, true},  // corner overlap
		{Rect{1, 1, 2, 2}, true},  // contained
		{Rect{10, 10, 1, 1}, false},
	}
	for _, tc := range cases {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, 4, 4); !errors.Is(err, ErrNoDomains) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Partition([]float64{1}, 0, 4); !errors.Is(err, ErrBadGrid) {
		t.Errorf("bad grid: %v", err)
	}
	if _, err := Partition([]float64{1, 1, 1, 1, 1}, 2, 2); !errors.Is(err, ErrTooManyDomains) {
		t.Errorf("too many: %v", err)
	}
	if _, err := Partition([]float64{1, -1}, 4, 4); !errors.Is(err, ErrBadWeight) {
		t.Errorf("bad weight: %v", err)
	}
	if _, err := Partition([]float64{1, 0}, 4, 4); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight: %v", err)
	}
}

func TestPartitionSingleDomain(t *testing.T) {
	rects, err := Partition([]float64{1}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 1 || rects[0] != (Rect{0, 0, 8, 4}) {
		t.Errorf("single domain = %v", rects)
	}
}

func TestPartitionPaperRatios(t *testing.T) {
	// Fig. 3(b): 4 nested simulations in the ratio 0.15:0.3:0.35:0.2.
	weights := []float64{0.15, 0.3, 0.35, 0.2}
	rects, err := Partition(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 32, 32); err != nil {
		t.Fatal(err)
	}
	if got := ProportionalityError(rects, weights); got > 0.10 {
		t.Errorf("proportionality error %v > 10%%", got)
	}
}

// Table 2 of the paper: 4 siblings on a 32x32 grid (1024 BG/L cores)
// receive 18x24, 18x8, 14x12, 14x20 processors. Our partitioner need
// not match those exact rectangles, but the areas must be close to the
// same proportions (432:144:168:280).
func TestPartitionTable2Proportions(t *testing.T) {
	weights := []float64{432, 144, 168, 280}
	rects, err := Partition(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 32, 32); err != nil {
		t.Fatal(err)
	}
	if got := ProportionalityError(rects, weights); got > 0.15 {
		t.Errorf("proportionality error %v > 15%%", got)
	}
}

func TestPartitionExactTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	grids := [][2]int{{8, 8}, {16, 8}, {32, 32}, {64, 32}, {32, 64}, {7, 9}, {128, 64}}
	for trial := 0; trial < 200; trial++ {
		g := grids[rng.Intn(len(grids))]
		k := 1 + rng.Intn(6)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
		rects, err := Partition(weights, g[0], g[1])
		if err != nil {
			t.Fatalf("trial %d (%dx%d, k=%d): %v", trial, g[0], g[1], k, err)
		}
		if err := Validate(rects, g[0], g[1]); err != nil {
			t.Fatalf("trial %d (%dx%d, k=%d): %v", trial, g[0], g[1], k, err)
		}
	}
}

// Splitting along the longer dimension must produce more square-like
// partitions than splitting along the shorter one (Fig. 4).
func TestPartitionSquareness(t *testing.T) {
	weights := []float64{1, 1, 1, 1}
	rects, err := Partition(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rects {
		if r.Squareness() < 0.45 {
			t.Errorf("rect %d %v too elongated: squareness %v", i, r, r.Squareness())
		}
	}
	// With equal weights on a square grid, all partitions are quadrants.
	for _, r := range rects {
		if r.W != 16 || r.H != 16 {
			t.Errorf("equal weights on 32x32 should give 16x16 quadrants, got %v", r)
		}
	}
}

func TestPartitionMoreSquareThanStrips(t *testing.T) {
	weights := []float64{0.25, 0.25, 0.3, 0.2}
	part, err := Partition(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	strips, err := NaiveStrips(weights, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(rs []Rect) float64 {
		var s float64
		for _, r := range rs {
			s += r.Squareness()
		}
		return s / float64(len(rs))
	}
	if avg(part) <= avg(strips) {
		t.Errorf("Algorithm 1 squareness %v should beat strips %v", avg(part), avg(strips))
	}
}

func TestPartitionTinyGrids(t *testing.T) {
	// k domains on a grid with exactly k processors. (Weights must give a
	// balanced Huffman shape: a (3,1)-shaped tree cannot tile a 2x2 grid
	// with rectangles.)
	rects, err := Partition([]float64{1, 1, 2, 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 2, 2); err != nil {
		t.Fatal(err)
	}
	for _, r := range rects {
		if r.Area() != 1 {
			t.Errorf("each rect should be a single processor, got %v", r)
		}
	}
	// 1xN grid.
	rects, err = Partition([]float64{5, 1, 1}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 1, 8); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSkewedWeights(t *testing.T) {
	// One huge and several tiny weights must still give everyone space.
	weights := []float64{1000, 1, 1, 1}
	rects, err := Partition(weights, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 16, 16); err != nil {
		t.Fatal(err)
	}
	if rects[0].Area() < 200 {
		t.Errorf("dominant weight got only %d processors", rects[0].Area())
	}
}

func TestNaiveStripsProportions(t *testing.T) {
	weights := []float64{1, 2, 1}
	rects, err := NaiveStrips(weights, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 16, 8); err != nil {
		t.Fatal(err)
	}
	// Strips along x (the longer dim): widths 4, 8, 4.
	if rects[0].W != 4 || rects[1].W != 8 || rects[2].W != 4 {
		t.Errorf("strip widths = %d,%d,%d", rects[0].W, rects[1].W, rects[2].W)
	}
	for _, r := range rects {
		if r.H != 8 {
			t.Errorf("strip should span full height, got %v", r)
		}
	}
}

func TestNaiveStripsVerticalGrid(t *testing.T) {
	rects, err := NaiveStrips([]float64{1, 1}, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 4, 16); err != nil {
		t.Fatal(err)
	}
	for _, r := range rects {
		if r.W != 4 || r.H != 8 {
			t.Errorf("vertical strip = %v", r)
		}
	}
}

func TestEqualSplit(t *testing.T) {
	rects, err := EqualSplit(4, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rects, 32, 32); err != nil {
		t.Fatal(err)
	}
	for _, r := range rects {
		if r.Area() != 256 {
			t.Errorf("equal split area = %d, want 256", r.Area())
		}
	}
}

func TestApportionSumsAndMinimums(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		total := k + rng.Intn(100)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = 0.01 + rng.Float64()*10
		}
		parts, err := apportion(weights, total)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0
		for _, p := range parts {
			if p < 1 {
				t.Fatalf("trial %d: strip of width %d", trial, p)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("trial %d: parts sum to %d, want %d", trial, sum, total)
		}
	}
}

func TestApportionInfeasible(t *testing.T) {
	if _, err := apportion([]float64{1, 1, 1}, 2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestProportionalityErrorPerfect(t *testing.T) {
	rects := []Rect{{0, 0, 2, 4}, {2, 0, 2, 4}}
	if got := ProportionalityError(rects, []float64{1, 1}); got != 0 {
		t.Errorf("perfect proportion error = %v", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	if err := Validate([]Rect{{0, 0, 2, 2}}, 4, 4); err == nil {
		t.Error("undercoverage should fail")
	}
	if err := Validate([]Rect{{0, 0, 4, 4}, {0, 0, 1, 1}}, 4, 4); err == nil {
		t.Error("overlap should fail")
	}
	if err := Validate([]Rect{{0, 0, 5, 4}}, 4, 4); err == nil {
		t.Error("out of bounds should fail")
	}
	if err := Validate([]Rect{{0, 0, 0, 4}, {0, 0, 4, 4}}, 4, 4); err == nil {
		t.Error("empty rect should fail")
	}
	if err := Validate([]Rect{{0, 0, 4, 4}}, 4, 4); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
}

// Partition areas must track weights: a sibling with twice the
// predicted time gets roughly twice the processors.
func TestPartitionAreaMonotonicity(t *testing.T) {
	weights := []float64{1, 2, 4}
	rects, err := Partition(weights, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(rects[0].Area() < rects[1].Area() && rects[1].Area() < rects[2].Area()) {
		t.Errorf("areas %d, %d, %d not monotone in weights",
			rects[0].Area(), rects[1].Area(), rects[2].Area())
	}
	r01 := float64(rects[1].Area()) / float64(rects[0].Area())
	r12 := float64(rects[2].Area()) / float64(rects[1].Area())
	if math.Abs(r01-2) > 0.4 || math.Abs(r12-2) > 0.4 {
		t.Errorf("area ratios %v, %v stray from 2", r01, r12)
	}
}

func BenchmarkPartition4Siblings(b *testing.B) {
	weights := []float64{0.42, 0.14, 0.17, 0.27}
	for i := 0; i < b.N; i++ {
		if _, err := Partition(weights, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveStrips(b *testing.B) {
	weights := []float64{0.42, 0.14, 0.17, 0.27}
	for i := 0; i < b.N; i++ {
		if _, err := NaiveStrips(weights, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}
