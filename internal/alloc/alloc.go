// Package alloc implements the processor-allocation strategies of
// Malakar et al. (Section 3.2). The virtual Px × Py processor grid is
// partitioned into k disjoint rectangular sub-grids, one per nested
// simulation, with areas proportional to the siblings' predicted
// execution times so that all siblings finish their r sub-steps
// together.
//
// Three strategies are provided:
//
//   - Partition: the paper's Algorithm 1 — a Huffman tree over the
//     execution-time ratios turned into a balanced split-tree by
//     recursive bisection along the longer grid dimension, keeping
//     partitions as square-like as possible.
//   - NaiveStrips: the baseline of Section 4.6 — consecutive
//     rectangular strips proportional to the given weights (the paper
//     uses the siblings' total point counts).
//   - EqualSplit: equal-width strips ignoring weights.
package alloc

import (
	"errors"
	"fmt"

	"nestwrf/internal/huffman"
)

// Rect is a rectangular region [X, X+W) × [Y, Y+H) of the virtual
// processor grid.
type Rect struct {
	X, Y, W, H int
}

// Area returns the number of processors in r.
func (r Rect) Area() int { return r.W * r.H }

// Aspect returns the width/height aspect ratio of r.
func (r Rect) Aspect() float64 { return float64(r.W) / float64(r.H) }

// Squareness returns min(W,H)/max(W,H) in (0, 1]; 1 is a perfect
// square. Algorithm 1 splits along the longer dimension precisely to
// maximize this.
func (r Rect) Squareness() float64 {
	if r.W == 0 || r.H == 0 {
		return 0
	}
	if r.W < r.H {
		return float64(r.W) / float64(r.H)
	}
	return float64(r.H) / float64(r.W)
}

// Contains reports whether processor-grid coordinate (x, y) is in r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Overlaps reports whether r and s share any processor.
func (r Rect) Overlaps(s Rect) bool {
	return r.X < s.X+s.W && s.X < r.X+r.W && r.Y < s.Y+s.H && s.Y < r.Y+r.H
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%dx%d at (%d,%d)]", r.W, r.H, r.X, r.Y)
}

// Errors returned by the allocation strategies.
var (
	ErrNoDomains      = errors.New("alloc: no domains")
	ErrBadGrid        = errors.New("alloc: processor grid dimensions must be positive")
	ErrTooManyDomains = errors.New("alloc: more domains than processors")
	ErrBadWeight      = errors.New("alloc: weights must be positive")
	ErrInfeasible     = errors.New("alloc: grid cannot be split for these domains")
)

func validate(weights []float64, px, py int) error {
	if len(weights) == 0 {
		return ErrNoDomains
	}
	if px <= 0 || py <= 0 {
		return ErrBadGrid
	}
	if len(weights) > px*py {
		return fmt.Errorf("%w: %d domains on %dx%d grid", ErrTooManyDomains, len(weights), px, py)
	}
	for i, w := range weights {
		if w <= 0 {
			return fmt.Errorf("%w: weight %g at index %d", ErrBadWeight, w, i)
		}
	}
	return nil
}

// Partition implements Algorithm 1 of the paper. It divides the
// px × py virtual processor grid into one rectangle per weight, with
// rectangle areas approximately proportional to the weights (predicted
// execution-time ratios) and each rectangle as square-like as possible.
// The i-th returned rectangle belongs to the i-th weight.
func Partition(weights []float64, px, py int) ([]Rect, error) {
	if err := validate(weights, px, py); err != nil {
		return nil, err
	}
	root, err := huffman.Build(weights)
	if err != nil {
		return nil, err
	}
	out := make([]Rect, len(weights))
	if err := split(root, Rect{0, 0, px, py}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PartitionShorterFirst is the strawman of the paper's Fig. 4(b): the
// same Huffman-driven recursive bisection as Partition, but always
// splitting along the *shorter* grid dimension, which produces
// elongated rectangles with imbalanced X/Y communication volumes. It
// exists for the Fig. 4 comparison only.
func PartitionShorterFirst(weights []float64, px, py int) ([]Rect, error) {
	if err := validate(weights, px, py); err != nil {
		return nil, err
	}
	root, err := huffman.Build(weights)
	if err != nil {
		return nil, err
	}
	out := make([]Rect, len(weights))
	if err := splitDim(root, Rect{0, 0, px, py}, out, false); err != nil {
		return nil, err
	}
	return out, nil
}

// split recursively bisects rect along its longer dimension in the
// ratio of the left and right subtree weights, assigning leaf
// rectangles into out (indexed by domain). It mirrors lines 2-18 of
// Algorithm 1; the BFS traversal of the paper visits nodes in the same
// parent-before-child order as this recursion.
func split(n *huffman.Node, rect Rect, out []Rect) error {
	return splitDim(n, rect, out, true)
}

// splitDim implements split with a selectable dimension preference:
// longer=true is Algorithm 1; longer=false is the Fig. 4(b) strawman.
func splitDim(n *huffman.Node, rect Rect, out []Rect, longer bool) error {
	if n.Leaf() {
		out[n.Index] = rect
		return nil
	}
	wl := huffman.SubtreeWeight(n.Left)
	wr := huffman.SubtreeWeight(n.Right)
	nl := len(huffman.Leaves(n.Left))
	nr := len(huffman.Leaves(n.Right))

	// Split the preferred dimension (Algorithm 1 splits the longer one,
	// ties split x, so the resulting rectangles stay square-like —
	// Fig. 4 of the paper). Each side must keep enough width for its
	// leaves to fit one processor apiece given the unchanged other
	// dimension. If the preferred dimension cannot accommodate the
	// leaves, the other dimension is used.
	splitX := rect.W >= rect.H
	if !longer {
		splitX = rect.W < rect.H
	}
	if splitX {
		if _, err := divide(rect.W, wl, wr, ceilDiv(nl, rect.H), ceilDiv(nr, rect.H)); err != nil {
			splitX = false
		}
	} else {
		if _, err := divide(rect.H, wl, wr, ceilDiv(nl, rect.W), ceilDiv(nr, rect.W)); err != nil {
			splitX = true
		}
	}
	if splitX {
		pl, err := divide(rect.W, wl, wr, ceilDiv(nl, rect.H), ceilDiv(nr, rect.H))
		if err != nil {
			return fmt.Errorf("%w: %dx%d into %d+%d leaves", ErrInfeasible, rect.W, rect.H, nl, nr)
		}
		left := Rect{rect.X, rect.Y, pl, rect.H}
		right := Rect{rect.X + pl, rect.Y, rect.W - pl, rect.H}
		if err := splitDim(n.Left, left, out, longer); err != nil {
			return err
		}
		return splitDim(n.Right, right, out, longer)
	}
	pl, err := divide(rect.H, wl, wr, ceilDiv(nl, rect.W), ceilDiv(nr, rect.W))
	if err != nil {
		return fmt.Errorf("%w: %dx%d into %d+%d leaves", ErrInfeasible, rect.W, rect.H, nl, nr)
	}
	left := Rect{rect.X, rect.Y, rect.W, pl}
	right := Rect{rect.X, rect.Y + pl, rect.W, rect.H - pl}
	if err := splitDim(n.Left, left, out, longer); err != nil {
		return err
	}
	return splitDim(n.Right, right, out, longer)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// divide splits length p into (pl, p-pl) in the ratio wl:wr, keeping at
// least minL on the left and minR on the right so that every leaf can
// still receive a nonempty rectangle.
func divide(p int, wl, wr float64, minL, minR int) (int, error) {
	if minL+minR > p {
		return 0, ErrInfeasible
	}
	pl := int(float64(p)*wl/(wl+wr) + 0.5)
	if pl < minL {
		pl = minL
	}
	if p-pl < minR {
		pl = p - minR
	}
	return pl, nil
}

// NaiveStrips is the baseline allocation of Section 4.6: the processor
// grid is cut into consecutive strips along its longer dimension with
// widths proportional to the weights (the paper's naive policy weighs
// by the siblings' total point counts).
func NaiveStrips(weights []float64, px, py int) ([]Rect, error) {
	if err := validate(weights, px, py); err != nil {
		return nil, err
	}
	k := len(weights)
	long := px
	if py > px {
		long = py
	}
	widths, err := apportion(weights, long)
	if err != nil {
		return nil, err
	}
	out := make([]Rect, k)
	pos := 0
	for i, w := range widths {
		if px >= py {
			out[i] = Rect{pos, 0, w, py}
		} else {
			out[i] = Rect{0, pos, px, w}
		}
		pos += w
	}
	return out, nil
}

// EqualSplit divides the grid into k equal-width strips along the
// longer dimension, the "simple processor allocation strategy" the
// paper dismisses for causing load imbalance.
func EqualSplit(k, px, py int) ([]Rect, error) {
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1
	}
	return NaiveStrips(weights, px, py)
}

// apportion distributes total units among weights using the
// largest-remainder method, guaranteeing every entry at least one unit.
func apportion(weights []float64, total int) ([]int, error) {
	k := len(weights)
	if total < k {
		return nil, fmt.Errorf("%w: %d strips from %d units", ErrInfeasible, k, total)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]int, k)
	rem := make([]float64, k)
	used := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		out[i] = int(exact)
		if out[i] < 1 {
			out[i] = 1
		}
		rem[i] = exact - float64(out[i])
		used += out[i]
	}
	// Distribute leftovers (or claw back overshoot) by largest remainder.
	for used < total {
		best := -1
		for i := range rem {
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] -= 1
		used++
	}
	for used > total {
		best := -1
		for i := range rem {
			if out[i] <= 1 {
				continue
			}
			if best < 0 || rem[i] < rem[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, ErrInfeasible
		}
		out[best]--
		rem[best] += 1
		used--
	}
	return out, nil
}

// Validate checks that rects exactly tile the px × py grid with no
// overlaps and no empty rectangles. It returns the first violation.
func Validate(rects []Rect, px, py int) error {
	area := 0
	for i, r := range rects {
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("alloc: rectangle %d is empty: %v", i, r)
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > px || r.Y+r.H > py {
			return fmt.Errorf("alloc: rectangle %d out of grid bounds: %v", i, r)
		}
		area += r.Area()
		for j := i + 1; j < len(rects); j++ {
			if r.Overlaps(rects[j]) {
				return fmt.Errorf("alloc: rectangles %d and %d overlap: %v, %v", i, j, r, rects[j])
			}
		}
	}
	if area != px*py {
		return fmt.Errorf("alloc: rectangles cover %d of %d processors", area, px*py)
	}
	return nil
}

// ProportionalityError returns the maximum relative deviation between a
// rectangle's share of the grid area and its weight's share of the
// total weight. Zero means perfectly proportional allocation.
func ProportionalityError(rects []Rect, weights []float64) float64 {
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	total := 0
	for _, r := range rects {
		total += r.Area()
	}
	var worst float64
	for i, r := range rects {
		want := weights[i] / wsum
		got := float64(r.Area()) / float64(total)
		dev := (got - want) / want
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}
