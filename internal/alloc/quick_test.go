package alloc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickInputs generates (weights, px, py) tuples with 1-6 positive
// weights on modest power-of-two-ish grids.
func quickInputs(vals []reflect.Value, rng *rand.Rand) {
	k := 1 + rng.Intn(6)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 0.05 + rng.Float64()*5
	}
	grids := [][2]int{{8, 8}, {16, 8}, {16, 16}, {32, 16}, {32, 32}, {12, 10}, {64, 32}}
	g := grids[rng.Intn(len(grids))]
	vals[0] = reflect.ValueOf(weights)
	vals[1] = reflect.ValueOf(g[0])
	vals[2] = reflect.ValueOf(g[1])
}

// Property: Partition always tiles the grid exactly, with every
// rectangle non-empty and area deviation bounded.
func TestQuickPartitionTiles(t *testing.T) {
	f := func(weights []float64, px, py int) bool {
		rects, err := Partition(weights, px, py)
		if err != nil {
			return false
		}
		if err := Validate(rects, px, py); err != nil {
			t.Logf("weights=%v grid=%dx%d: %v", weights, px, py, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(3)), Values: quickInputs}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the same holds for the strips baselines.
func TestQuickStripsTile(t *testing.T) {
	f := func(weights []float64, px, py int) bool {
		rects, err := NaiveStrips(weights, px, py)
		if err != nil {
			return false
		}
		return Validate(rects, px, py) == nil
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(4)), Values: quickInputs}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: partition areas track weights — on grids much larger than
// the weight count, the proportionality error stays bounded.
func TestQuickProportionality(t *testing.T) {
	f := func(weights []float64, px, py int) bool {
		if px*py < 64*len(weights) {
			return true // tiny grids necessarily quantize coarsely
		}
		var sum, min float64
		for i, w := range weights {
			sum += w
			if i == 0 || w < min {
				min = w
			}
		}
		if min/sum*float64(px*py) < 32 {
			return true // a near-zero weight quantizes with large relative error
		}
		rects, err := Partition(weights, px, py)
		if err != nil {
			return false
		}
		dev := ProportionalityError(rects, weights)
		if dev > 0.6 {
			t.Logf("weights=%v grid=%dx%d: deviation %v", weights, px, py, dev)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(5)), Values: quickInputs}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: scaling all weights by a constant does not change the
// partition (only ratios matter).
func TestQuickScaleInvariance(t *testing.T) {
	f := func(weights []float64, px, py int) bool {
		a, err := Partition(weights, px, py)
		if err != nil {
			return false
		}
		scaled := make([]float64, len(weights))
		for i, w := range weights {
			scaled[i] = w * 37.5
		}
		b, err := Partition(scaled, px, py)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6)), Values: quickInputs}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Algorithm 1 is never less square-like on average than the
// shorter-dimension strawman.
func TestQuickLongerBeatsShorter(t *testing.T) {
	f := func(weights []float64, px, py int) bool {
		long, err := Partition(weights, px, py)
		if err != nil {
			return false
		}
		short, err := PartitionShorterFirst(weights, px, py)
		if err != nil {
			return true // the strawman may be infeasible where Alg. 1 is not
		}
		avg := func(rs []Rect) float64 {
			var s float64
			for _, r := range rs {
				s += r.Squareness()
			}
			return s / float64(len(rs))
		}
		// Allow a tiny tolerance for rounding-induced ties.
		return avg(long) >= avg(short)-0.15
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7)), Values: quickInputs}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: apportion is exact and monotone-ish — a strictly larger
// weight never gets fewer units than a smaller one (largest-remainder
// with min-1 floor preserves order up to the floor).
func TestQuickApportionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(5)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()*10
		}
		total := k + rng.Intn(200)
		parts, err := apportion(weights, total)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if weights[i] > weights[j]*1.5 && parts[i] < parts[j] &&
					float64(parts[j]) > math.Max(1, float64(total)/float64(k)*0.1) {
					t.Fatalf("trial %d: weight %v got %d units but %v got %d",
						trial, weights[i], parts[i], weights[j], parts[j])
				}
			}
		}
	}
}
