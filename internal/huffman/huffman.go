// Package huffman builds the weight-balanced binary trees used by the
// processor-allocation algorithm of Malakar et al. (Section 3.2,
// Algorithm 1). The Huffman construction repeatedly merges the two
// lightest subtrees, so at every internal node the left and right
// children are fairly well balanced in total weight — exactly the
// property the recursive-bisection partitioner relies on.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
)

// Node is a node of a Huffman tree. Leaves carry the index of the item
// they represent (e.g. a nested-simulation domain); internal nodes have
// exactly two children. Weight is the item weight for a leaf and the
// sum of the children's weights for an internal node.
type Node struct {
	Weight      float64
	Index       int // item index for leaves; -1 for internal nodes
	Left, Right *Node
	seq         int // tie-break sequence for deterministic construction
}

// Leaf reports whether n is a leaf node.
func (n *Node) Leaf() bool { return n.Left == nil && n.Right == nil }

// ErrNoWeights is returned by Build when no weights are supplied.
var ErrNoWeights = errors.New("huffman: no weights")

// Build constructs a Huffman tree over the given non-negative weights.
// Leaf i corresponds to weights[i]. A single weight yields a bare leaf.
// Construction is deterministic: ties are broken by insertion order.
func Build(weights []float64) (*Node, error) {
	if len(weights) == 0 {
		return nil, ErrNoWeights
	}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("huffman: negative weight %g at index %d", w, i)
		}
	}
	h := &nodeHeap{}
	heap.Init(h)
	seq := 0
	for i, w := range weights {
		heap.Push(h, &Node{Weight: w, Index: i, seq: seq})
		seq++
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*Node)
		b := heap.Pop(h).(*Node)
		heap.Push(h, &Node{
			Weight: a.Weight + b.Weight,
			Index:  -1,
			Left:   a,
			Right:  b,
			seq:    seq,
		})
		seq++
	}
	return heap.Pop(h).(*Node), nil
}

// nodeHeap is a min-heap of nodes ordered by (weight, seq).
type nodeHeap []*Node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].Weight != h[j].Weight {
		return h[i].Weight < h[j].Weight
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*Node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// BFS returns the internal nodes of the tree in breadth-first order,
// the traversal order used by Algorithm 1 of the paper.
func BFS(root *Node) []*Node {
	if root == nil {
		return nil
	}
	var internal []*Node
	queue := []*Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Leaf() {
			continue
		}
		internal = append(internal, n)
		queue = append(queue, n.Left, n.Right)
	}
	return internal
}

// Leaves returns the leaves of the subtree rooted at n in left-to-right
// order.
func Leaves(n *Node) []*Node {
	if n == nil {
		return nil
	}
	if n.Leaf() {
		return []*Node{n}
	}
	return append(Leaves(n.Left), Leaves(n.Right)...)
}

// LeafIndices returns the item indices of the leaves of the subtree
// rooted at n in left-to-right order.
func LeafIndices(n *Node) []int {
	leaves := Leaves(n)
	idx := make([]int, len(leaves))
	for i, l := range leaves {
		idx[i] = l.Index
	}
	return idx
}

// SubtreeWeight returns the total leaf weight of the subtree rooted at
// n (which equals n.Weight by construction; recomputed here for
// validation).
func SubtreeWeight(n *Node) float64 {
	if n == nil {
		return 0
	}
	if n.Leaf() {
		return n.Weight
	}
	return SubtreeWeight(n.Left) + SubtreeWeight(n.Right)
}

// Depth returns the height of the tree (a bare leaf has depth 0).
func Depth(n *Node) int {
	if n == nil || n.Leaf() {
		return 0
	}
	l, r := Depth(n.Left), Depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// WeightedPathLength returns the sum over leaves of weight × depth, the
// quantity Huffman trees minimize.
func WeightedPathLength(root *Node) float64 {
	var walk func(n *Node, d int) float64
	walk = func(n *Node, d int) float64 {
		if n == nil {
			return 0
		}
		if n.Leaf() {
			return n.Weight * float64(d)
		}
		return walk(n.Left, d+1) + walk(n.Right, d+1)
	}
	return walk(root, 0)
}
