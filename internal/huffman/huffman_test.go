package huffman

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); !errors.Is(err, ErrNoWeights) {
		t.Errorf("empty: err = %v, want ErrNoWeights", err)
	}
	if _, err := Build([]float64{1, -2}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	root, err := Build([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !root.Leaf() || root.Index != 0 || root.Weight != 5 {
		t.Errorf("single leaf root = %+v", root)
	}
	if Depth(root) != 0 {
		t.Errorf("depth = %d", Depth(root))
	}
	if got := BFS(root); len(got) != 0 {
		t.Errorf("BFS of leaf should have no internal nodes, got %d", len(got))
	}
}

func TestBuildClassic(t *testing.T) {
	// Classic example: weights 1,1,2,4. Optimal WPL = 1*3+1*3+2*2+4*1 = 14.
	root, err := Build([]float64{1, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := WeightedPathLength(root); got != 14 {
		t.Errorf("WPL = %v, want 14", got)
	}
	if root.Weight != 8 {
		t.Errorf("root weight = %v, want 8", root.Weight)
	}
}

func TestLeafIndicesCoverAllItems(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, v := range raw {
			w[i] = math.Abs(v)
		}
		root, err := Build(w)
		if err != nil {
			return false
		}
		idx := LeafIndices(root)
		sort.Ints(idx)
		want := make([]int, len(w))
		for i := range want {
			want[i] = i
		}
		return reflect.DeepEqual(idx, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInternalNodeCount(t *testing.T) {
	for n := 1; n <= 40; n++ {
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(i + 1)
		}
		root, err := Build(w)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(BFS(root)); got != n-1 {
			t.Errorf("n=%d: internal nodes = %d, want %d", n, got, n-1)
		}
		if got := len(Leaves(root)); got != n {
			t.Errorf("n=%d: leaves = %d, want %d", n, got, n)
		}
	}
}

func TestSubtreeWeightConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		root, err := Build(w)
		if err != nil {
			t.Fatal(err)
		}
		var check func(node *Node)
		check = func(node *Node) {
			if node == nil {
				return
			}
			if got := SubtreeWeight(node); math.Abs(got-node.Weight) > 1e-9 {
				t.Fatalf("node weight %v != subtree sum %v", node.Weight, got)
			}
			check(node.Left)
			check(node.Right)
		}
		check(root)
	}
}

func TestBFSOrderIsTopDown(t *testing.T) {
	root, err := Build([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := BFS(root)
	if nodes[0] != root {
		t.Error("BFS must start at the root")
	}
	// Every node must appear after its parent.
	pos := make(map[*Node]int)
	for i, n := range nodes {
		pos[n] = i
	}
	for _, n := range nodes {
		for _, c := range []*Node{n.Left, n.Right} {
			if c != nil && !c.Leaf() {
				if pos[c] <= pos[n] {
					t.Errorf("child appears before parent in BFS order")
				}
			}
		}
	}
}

// Huffman optimality: WPL must not exceed that of a balanced tree and
// must equal the information-theoretic optimum for dyadic weights.
func TestDyadicOptimality(t *testing.T) {
	// Weights 1/2, 1/4, 1/8, 1/8 have optimal depths 1, 2, 3, 3.
	root, err := Build([]float64{0.5, 0.25, 0.125, 0.125})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*1 + 0.25*2 + 0.125*3 + 0.125*3
	if got := WeightedPathLength(root); math.Abs(got-want) > 1e-12 {
		t.Errorf("WPL = %v, want %v", got, want)
	}
}

func TestEqualWeightsGiveBalancedTree(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		root, err := Build(w)
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := int(math.Log2(float64(n)))
		if got := Depth(root); got != wantDepth {
			t.Errorf("n=%d: depth = %d, want %d", n, got, wantDepth)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	if !sameShape(a, b) {
		t.Error("two builds of the same weights differ")
	}
}

func sameShape(a, b *Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Leaf() != b.Leaf() || a.Index != b.Index || a.Weight != b.Weight {
		return false
	}
	return sameShape(a.Left, b.Left) && sameShape(a.Right, b.Right)
}

func TestZeroWeightsAllowed(t *testing.T) {
	root, err := Build([]float64{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Leaves(root)); got != 3 {
		t.Errorf("leaves = %d, want 3", got)
	}
	if root.Weight != 1 {
		t.Errorf("root weight = %v", root.Weight)
	}
}
