package nest

import (
	"errors"
	"testing"
)

func TestRootAndChildren(t *testing.T) {
	root := Root("pacific", 286, 307)
	if root.Ratio != 1 || root.Points() != 286*307 {
		t.Errorf("root = %+v", root)
	}
	c := root.AddChild("nest1", 415, 445, 3, 10, 20)
	if len(root.Children) != 1 || root.Children[0] != c {
		t.Error("AddChild did not attach")
	}
	if err := root.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAspectAndPoints(t *testing.T) {
	d := &Domain{NX: 300, NY: 200, Ratio: 1}
	if d.Aspect() != 1.5 {
		t.Errorf("Aspect = %v", d.Aspect())
	}
	if d.Points() != 60000 {
		t.Errorf("Points = %d", d.Points())
	}
}

func TestFootprint(t *testing.T) {
	d := &Domain{NX: 415, NY: 445, Ratio: 3}
	if d.FootprintX() != 139 { // ceil(415/3)
		t.Errorf("FootprintX = %d", d.FootprintX())
	}
	if d.FootprintY() != 149 { // ceil(445/3)
		t.Errorf("FootprintY = %d", d.FootprintY())
	}
}

func TestBoundaryPoints(t *testing.T) {
	d := &Domain{NX: 10, NY: 5}
	if got := d.BoundaryPoints(); got != 2*10+2*5-4 {
		t.Errorf("BoundaryPoints = %d", got)
	}
	tiny := &Domain{NX: 1, NY: 3}
	if got := tiny.BoundaryPoints(); got != 3 {
		t.Errorf("degenerate BoundaryPoints = %d", got)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := &Domain{Name: "bad", NX: 0, NY: 5, Ratio: 1}
	if err := bad.Validate(); !errors.Is(err, ErrBadSize) {
		t.Errorf("err = %v, want ErrBadSize", err)
	}
	badRatio := &Domain{Name: "r", NX: 5, NY: 5, Ratio: 0}
	if err := badRatio.Validate(); !errors.Is(err, ErrBadRatio) {
		t.Errorf("err = %v, want ErrBadRatio", err)
	}
	root := Root("p", 100, 100)
	root.AddChild("c", 150, 150, 3, 80, 0) // footprint 50 from offset 80 > 100
	if err := root.Validate(); !errors.Is(err, ErrOutOfBound) {
		t.Errorf("err = %v, want ErrOutOfBound", err)
	}
	root2 := Root("p", 100, 100)
	root2.AddChild("c", 90, 90, 0, 0, 0)
	if err := root2.Validate(); !errors.Is(err, ErrBadRatio) {
		t.Errorf("err = %v, want ErrBadRatio", err)
	}
}

func TestValidateNestedChild(t *testing.T) {
	// SE-Asia style two-level nesting: 4.5 km parent, 1.5 km siblings.
	root := Root("seasia", 400, 400)
	mid := root.AddChild("mid", 600, 600, 3, 50, 50)
	mid.AddChild("inner", 300, 300, 3, 10, 10)
	if err := root.Validate(); err != nil {
		t.Fatalf("two-level config rejected: %v", err)
	}
	if root.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", root.Depth())
	}
	if root.Count() != 3 {
		t.Errorf("Count = %d, want 3", root.Count())
	}
}

func TestWalkOrder(t *testing.T) {
	root := Root("p", 100, 100)
	root.AddChild("a", 30, 30, 3, 0, 0)
	b := root.AddChild("b", 30, 30, 3, 50, 50)
	b.AddChild("b1", 30, 30, 3, 0, 0)
	var names []string
	root.Walk(func(d *Domain) { names = append(names, d.Name) })
	want := []string{"p", "a", "b", "b1"}
	if len(names) != len(want) {
		t.Fatalf("Walk visited %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", names, want)
		}
	}
}

func TestTotalWork(t *testing.T) {
	root := Root("p", 10, 10) // 100 points x 1 step
	root.AddChild("c", 30, 30, 3, 0, 0)
	// Child: 900 points x 3 sub-steps = 2700; total 2800.
	if got := root.TotalWork(); got != 100+2700 {
		t.Errorf("TotalWork = %d", got)
	}
	grand := root.Children[0].AddChild("g", 30, 30, 3, 0, 0)
	_ = grand
	// Grandchild: 900 points x 9 sub-steps = 8100.
	if got := root.TotalWork(); got != 100+2700+8100 {
		t.Errorf("TotalWork with grandchild = %d", got)
	}
}

func TestSiblingOverlapAllowed(t *testing.T) {
	root := Root("p", 286, 307)
	root.AddChild("s1", 200, 200, 2, 0, 0)
	root.AddChild("s2", 200, 200, 2, 50, 50)
	if err := root.Validate(); err != nil {
		t.Errorf("overlapping siblings should validate: %v", err)
	}
}

func TestString(t *testing.T) {
	d := &Domain{Name: "n", NX: 3, NY: 4, Ratio: 2}
	if got := d.String(); got != "n[3x4 r=2]" {
		t.Errorf("String = %q", got)
	}
}
