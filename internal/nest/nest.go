// Package nest models WRF-style nested simulation domains (paper
// Sections 1 and 4.1): a coarse parent domain containing finer nested
// child domains ("nests"); nests at the same level are "siblings".
// Each nest runs Ratio sub-steps per parent step, receives its boundary
// conditions by interpolation from the parent at the start and feeds
// its solution back at the end.
package nest

import (
	"errors"
	"fmt"
)

// Domain is one simulation domain. NX and NY are its horizontal grid
// dimensions at its own resolution. For a nested domain, Ratio is the
// parent-to-nest resolution ratio r (the nest advances r steps per
// parent step) and (OffX, OffY) is the position of the nest's lower
// left corner in parent grid coordinates.
type Domain struct {
	Name     string
	NX, NY   int
	Ratio    int
	OffX     int
	OffY     int
	Children []*Domain
}

// Errors returned by Validate.
var (
	ErrBadSize    = errors.New("nest: domain dimensions must be positive")
	ErrBadRatio   = errors.New("nest: refinement ratio must be >= 1")
	ErrOutOfBound = errors.New("nest: child footprint outside parent")
)

// Points returns the number of horizontal grid points, the first
// feature of the paper's performance model.
func (d *Domain) Points() int { return d.NX * d.NY }

// Aspect returns nx/ny, the second feature of the paper's performance
// model.
func (d *Domain) Aspect() float64 { return float64(d.NX) / float64(d.NY) }

// FootprintX returns the east-west extent of d in its parent's grid
// coordinates (NX divided by the refinement ratio, rounded up).
func (d *Domain) FootprintX() int { return (d.NX + d.Ratio - 1) / d.Ratio }

// FootprintY returns the north-south extent of d in its parent's grid
// coordinates.
func (d *Domain) FootprintY() int { return (d.NY + d.Ratio - 1) / d.Ratio }

// BoundaryPoints returns the number of lateral boundary points of the
// nest, which sets the cost of interpolating parent data each parent
// step.
func (d *Domain) BoundaryPoints() int {
	if d.NX < 2 || d.NY < 2 {
		return d.Points()
	}
	return 2*d.NX + 2*d.NY - 4
}

// Validate checks the domain tree rooted at d: positive dimensions,
// valid ratios, and every child's footprint inside its parent.
// Sibling overlap is allowed (the paper's regions of interest may
// overlap in principle), but each child must fit.
func (d *Domain) Validate() error {
	if d.NX <= 0 || d.NY <= 0 {
		return fmt.Errorf("%w: %s is %dx%d", ErrBadSize, d.Name, d.NX, d.NY)
	}
	if d.Ratio < 1 {
		return fmt.Errorf("%w: %s has ratio %d", ErrBadRatio, d.Name, d.Ratio)
	}
	for _, c := range d.Children {
		if c.Ratio < 1 {
			return fmt.Errorf("%w: %s has ratio %d", ErrBadRatio, c.Name, c.Ratio)
		}
		if c.OffX < 0 || c.OffY < 0 ||
			c.OffX+c.FootprintX() > d.NX || c.OffY+c.FootprintY() > d.NY {
			return fmt.Errorf("%w: %s at (%d,%d) size %dx%d (footprint %dx%d) in %s %dx%d",
				ErrOutOfBound, c.Name, c.OffX, c.OffY, c.NX, c.NY,
				c.FootprintX(), c.FootprintY(), d.Name, d.NX, d.NY)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Depth returns the nesting depth below d: 0 for a leaf domain.
func (d *Domain) Depth() int {
	max := 0
	for _, c := range d.Children {
		if dd := c.Depth() + 1; dd > max {
			max = dd
		}
	}
	return max
}

// Count returns the number of domains in the tree rooted at d,
// including d itself.
func (d *Domain) Count() int {
	n := 1
	for _, c := range d.Children {
		n += c.Count()
	}
	return n
}

// Walk visits every domain in the tree in depth-first order, parents
// before children.
func (d *Domain) Walk(fn func(*Domain)) {
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// TotalWork returns the per-parent-step work in point-substeps of the
// whole tree: each domain's points times the product of the refinement
// ratios down to it.
func (d *Domain) TotalWork() int {
	return d.work(1)
}

func (d *Domain) work(stepsPerParent int) int {
	steps := stepsPerParent * d.Ratio
	if d.Ratio == 0 {
		steps = stepsPerParent
	}
	total := d.Points() * steps
	for _, c := range d.Children {
		total += c.work(steps)
	}
	return total
}

// String implements fmt.Stringer.
func (d *Domain) String() string {
	return fmt.Sprintf("%s[%dx%d r=%d]", d.Name, d.NX, d.NY, d.Ratio)
}

// Root constructs a top-level (parent) domain; its ratio is 1.
func Root(name string, nx, ny int) *Domain {
	return &Domain{Name: name, NX: nx, NY: ny, Ratio: 1}
}

// AddChild appends a nested domain to parent and returns it.
func (d *Domain) AddChild(name string, nx, ny, ratio, offX, offY int) *Domain {
	c := &Domain{Name: name, NX: nx, NY: ny, Ratio: ratio, OffX: offX, OffY: offY}
	d.Children = append(d.Children, c)
	return c
}
