package wrfsim

import (
	"testing"
)

func ioOpts(s Strategy) Options {
	o := baseOptsForIO(s)
	o.OutputEverySteps = 1 // high-frequency output, the paper's §4.5 regime
	return o
}

func baseOptsForIO(s Strategy) Options {
	return Options{
		Ranks:     32,
		Steps:     3,
		Strategy:  s,
		PointCost: 1e-6,
	}
}

func TestOutputsCaptured(t *testing.T) {
	out, err := Run(testConfig(), ioOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	// 3 steps x (parent + 2 nests) = 9 records.
	if len(out.Snapshots) != 9 {
		t.Fatalf("snapshots = %d, want 9", len(out.Snapshots))
	}
	// Deterministic order: by step then domain name.
	for i := 1; i < len(out.Snapshots); i++ {
		a, b := out.Snapshots[i-1], out.Snapshots[i]
		if a.Step > b.Step || (a.Step == b.Step && a.Domain > b.Domain) {
			t.Fatalf("snapshots unordered at %d: %v then %v", i, a, b)
		}
	}
	// Snapshot dims match the domains.
	for _, s := range out.Snapshots {
		switch s.Domain {
		case "parent":
			if s.State.NX != 64 {
				t.Errorf("parent snapshot %dx%d", s.State.NX, s.State.NY)
			}
		case "nest1":
			if s.State.NX != 60 || s.State.NY != 48 {
				t.Errorf("nest1 snapshot %dx%d", s.State.NX, s.State.NY)
			}
		}
	}
}

// The paper's I/O claim, functionally: with high-frequency output, the
// concurrent strategy's partition-sized writer groups and overlapped
// sibling writes beat the sequential strategy's all-rank writes.
func TestConcurrentIOFasterFunctionally(t *testing.T) {
	seq, err := Run(testConfig(), ioOpts(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	con, err := Run(testConfig(), ioOpts(Concurrent))
	if err != nil {
		t.Fatal(err)
	}
	// Identical forecasts on disk.
	if len(seq.Snapshots) != len(con.Snapshots) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(seq.Snapshots), len(con.Snapshots))
	}
	for i := range seq.Snapshots {
		a, b := seq.Snapshots[i], con.Snapshots[i]
		if a.Domain != b.Domain || a.Step != b.Step {
			t.Fatalf("snapshot %d metadata differs: %v vs %v", i, a, b)
		}
		if d := a.State.MaxDiff(b.State); d != 0 {
			t.Errorf("snapshot %d (%s step %d) differs by %v", i, a.Domain, a.Step, d)
		}
	}
	t.Logf("makespan with output every step: sequential %.6f, concurrent %.6f",
		seq.MaxClock, con.MaxClock)
	if con.MaxClock >= seq.MaxClock {
		t.Errorf("concurrent with I/O %.6f should beat sequential %.6f", con.MaxClock, seq.MaxClock)
	}
	// Output must cost something: compare with a no-output run.
	noIO, err := Run(testConfig(), baseOptsForIO(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	if seq.MaxClock <= noIO.MaxClock {
		t.Error("output events should add virtual time")
	}
}

func TestOutputIntervalRespected(t *testing.T) {
	opt := baseOptsForIO(Sequential)
	opt.Steps = 4
	opt.OutputEverySteps = 2
	out, err := Run(testConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs at steps 2 and 4 only: 2 events x 3 domains.
	if len(out.Snapshots) != 6 {
		t.Fatalf("snapshots = %d, want 6", len(out.Snapshots))
	}
	for _, s := range out.Snapshots {
		if s.Step != 2 && s.Step != 4 {
			t.Errorf("unexpected output step %d", s.Step)
		}
	}
}
