package wrfsim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/solver"
	"nestwrf/internal/telemetry"
	"nestwrf/internal/vtopo"
)

// floorDiv is integer division rounding toward negative infinity, used
// to map child halo coordinates (which can be -1) to parent cells.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ownerOf returns the rank (in the given process grid) owning global
// cell (gx, gy) of an nx x ny domain under the block decomposition of
// solver.Decompose.
func ownerOf(nx, ny int, grid vtopo.Grid, gx, gy int) int {
	return grid.Rank(ownerIdx(nx, grid.Px, gx), ownerIdx(ny, grid.Py, gy))
}

// ownerIdx inverts solver.Decompose's share function along one
// dimension.
func ownerIdx(n, parts, g int) int {
	base := n / parts
	rem := n % parts
	// The first rem parts have size base+1.
	bound := rem * (base + 1)
	if g < bound {
		return g / (base + 1)
	}
	if base == 0 {
		return rem // degenerate: more parts than cells
	}
	return rem + (g-bound)/base
}

// reference selects the retained slow coupling paths: patterns and
// plans recomputed from scratch at every coupling step with fresh
// allocations and copying sends, exactly as before the PR5 plan cache.
// The fast and reference paths are bit-identical by construction and
// guarded by equivalence tests. The flag is atomic so toggling it
// (tests only) is race-free against concurrently running simulations.
var reference atomic.Bool

// SetReference enables (true) or disables (false) the retained
// recompute-every-step coupling implementations. Only tests should
// call this.
func SetReference(on bool) { reference.Store(on) }

// bcTransfer is one (src, dst) message of the boundary-condition
// exchange: parent cells read at src, halo cells written at dst.
type bcTransfer struct {
	src, dst int      // world ranks
	pcells   [][2]int // parent global cells, in message order
	hcells   [][2]int // child halo cells (child-global), in message order
}

// haloRing enumerates the child's halo-ring cells in canonical order.
func haloRing(c *nest.Domain) [][2]int {
	var out [][2]int
	for x := -1; x <= c.NX; x++ {
		out = append(out, [2]int{x, -1}, [2]int{x, c.NY})
	}
	for y := 0; y < c.NY; y++ {
		out = append(out, [2]int{-1, y}, [2]int{c.NX, y})
	}
	return out
}

// bcPlan indexes a nest's BC transfer pattern by world rank, so each
// rank walks only its own sends and receives instead of scanning the
// full pattern (which is O(world) per rank per step at scale). Both
// lists preserve global pattern order, so per-rank message order — and
// therefore every virtual clock — is identical to a filtered scan of
// the full pattern.
type bcPlan struct {
	send [][]*bcTransfer // by world rank: transfers sourced there (incl. self)
	recv [][]*bcTransfer // by world rank: remote transfers received there
}

// newBCPlan indexes pattern by rank.
func newBCPlan(pattern []*bcTransfer, nranks int) *bcPlan {
	p := &bcPlan{
		send: make([][]*bcTransfer, nranks),
		recv: make([][]*bcTransfer, nranks),
	}
	for _, tr := range pattern {
		p.send[tr.src] = append(p.send[tr.src], tr)
		if tr.dst != tr.src {
			p.recv[tr.dst] = append(p.recv[tr.dst], tr)
		}
	}
	return p
}

// bcPattern computes the full deterministic BC exchange pattern of one
// nest: which world rank sends which parent cells to which world rank.
// It depends only on the domain geometry and process grids, so Run
// builds it once (indexed by rank, see bcPlan) and shares it read-only
// across ranks; the reference path recomputes it every step.
func bcPattern(cfg *nest.Domain, grid vtopo.Grid, c *nest.Domain, cgrid vtopo.Grid, cworld []int) []*bcTransfer {
	byPair := map[[2]int]*bcTransfer{}
	var order [][2]int
	for _, hc := range haloRing(c) {
		hx, hy := hc[0], hc[1]
		// Owning child rank: the tile adjacent to the halo cell.
		ox := clampInt(hx, 0, c.NX-1)
		oy := clampInt(hy, 0, c.NY-1)
		childLocal := ownerOf(c.NX, c.NY, cgrid, ox, oy)
		dst := cworld[childLocal]
		// Parent cell supplying the value.
		pgx := clampInt(c.OffX+floorDiv(hx, c.Ratio), 0, cfg.NX-1)
		pgy := clampInt(c.OffY+floorDiv(hy, c.Ratio), 0, cfg.NY-1)
		src := ownerOf(cfg.NX, cfg.NY, grid, pgx, pgy)
		key := [2]int{src, dst}
		tr, ok := byPair[key]
		if !ok {
			tr = &bcTransfer{src: src, dst: dst}
			byPair[key] = tr
			order = append(order, key)
		}
		tr.pcells = append(tr.pcells, [2]int{pgx, pgy})
		tr.hcells = append(tr.hcells, [2]int{hx, hy})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	out := make([]*bcTransfer, len(order))
	for i, k := range order {
		out[i] = byPair[k]
	}
	return out
}

// exchangeBC moves parent boundary values to the nest's halo owners and
// stores them in nc.bc (cleared first). Every rank participates as a
// potential sender; only nest members receive.
//
// The fast path walks the plan cached on the nest context (built once
// in Run) and moves payloads through the pooled owned-send path, so a
// steady-state coupling step performs no allocations; the reference
// path recomputes the pattern and allocates fresh payloads every call,
// as the code did before the plan cache existed.
func exchangeBC(world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nc *nestCtx, cfg *nest.Domain) error {
	if nc.tracer.Recording() {
		sp := nc.tracer.Start(nc.span, "bc:"+nc.d.Name, telemetry.LayerPhase)
		defer sp.End()
	}
	me := world.Rank()
	sends, recvs, pooled := nc.bcPlan.send[me], nc.bcPlan.recv[me], true
	if reference.Load() {
		// Recompute the pattern and filter it by scanning, with fresh
		// allocations, as the code did before the plan cache existed.
		pooled = false
		sends, recvs = nil, nil
		for _, tr := range bcPattern(cfg, grid, nc.d, nc.grid, nc.world) {
			if tr.src == me {
				sends = append(sends, tr)
			}
			if tr.dst == me && tr.src != me {
				recvs = append(recvs, tr)
			}
		}
	}
	tag := tagBC + nc.idx

	if nc.tile != nil {
		nc.bc = nc.bc[:0]
	}

	// Post sends (and handle self-transfers locally).
	for _, tr := range sends {
		n := 3 * len(tr.pcells)
		var data []float64
		if pooled {
			data = world.AllocPayload(n)
		} else {
			data = make([]float64, n)
		}
		for i, pc := range tr.pcells {
			data[3*i], data[3*i+1], data[3*i+2] = parent.Cell(pc[0]-parent.X0, pc[1]-parent.Y0)
		}
		if tr.dst == me {
			storeBC(nc, tr, data)
			if pooled {
				world.FreePayload(data)
			}
			continue
		}
		if pooled {
			world.SendOwned(tr.dst, tag, data)
		} else {
			world.Send(tr.dst, tag, data)
		}
	}
	// Receive in deterministic pattern order.
	for _, tr := range recvs {
		data, err := world.Recv(tr.src, tag)
		if err != nil {
			return err
		}
		if len(data) != 3*len(tr.pcells) {
			return fmt.Errorf("wrfsim: BC payload %d for %d cells", len(data), len(tr.pcells))
		}
		storeBC(nc, tr, data)
		if pooled {
			world.FreePayload(data)
		}
	}
	return nil
}

// storeBC appends received boundary values as local halo cells of the
// receiving rank's nest tile.
func storeBC(nc *nestCtx, tr *bcTransfer, data []float64) {
	t := nc.tile
	for i, hc := range tr.hcells {
		nc.bc = append(nc.bc, bcCell{
			lx: hc[0] - t.X0,
			ly: hc[1] - t.Y0,
			h:  data[3*i],
			hu: data[3*i+1],
			hv: data[3*i+2],
		})
	}
}

// fbEntry is one parent cell's feedback contribution from one child
// rank: the intersection of the child-cell block with that rank's tile.
// The message carries the raw child cells of the rectangle (row-major,
// 3 values per cell) rather than a partial sum, so the parent owner can
// accumulate every block in one canonical order — the property that
// makes feedback, and therefore the whole functional run, bit-identical
// across process decompositions.
type fbEntry struct {
	pcell  [2]int // parent global cell
	x0, y0 int    // child-global intersection origin
	w, h   int
	off    int // float offset of this entry's cells in the transfer payload
}

// fbTransfer is one (src, dst) message of the feedback exchange.
type fbTransfer struct {
	src, dst int
	entries  []fbEntry
	floats   int // payload length: 3 * total cells
	slot     int // index in dst's inbox (the per-rank payload stash)
}

// fbCellRef locates one child cell's (h, hu, hv) triple inside the
// step's received payloads: the destination rank's inbox slot and the
// float offset within that payload. Slots are per destination rank, so
// a rank's stash is sized by its own inbox, not the nest's global
// transfer count — the latter made per-rank stash memory O(world) and
// the whole run O(world²) at startup.
type fbCellRef struct {
	slot int32
	off  int32
}

// fbOwnedCell is the accumulation recipe for one parent cell owned by
// this rank: its child-block cells in canonical (child-global
// row-major) order, pre-resolved to payload positions.
type fbOwnedCell struct {
	lx, ly int     // parent-local coordinates
	n      float64 // block cell count (the averaging denominator)
	srcs   []fbCellRef
}

// fbPlan is the complete precomputed feedback exchange of one nest:
// the deterministic transfer pattern plus every rank's canonical
// accumulation recipe. It depends only on the domain geometry and
// process grids, so Run builds it once and shares it read-only across
// ranks (per-step payload stashes live on the rank's nestCtx); the
// reference path rebuilds it every step.
type fbPlan struct {
	transfers   []*fbTransfer
	ownedByRank [][]fbOwnedCell // indexed by parent world rank
	// Per-rank indexes over transfers, in global pattern order (so
	// per-rank message order matches a filtered scan of transfers):
	// sendByRank includes self-transfers, recvByRank excludes them, and
	// inboxLen is each rank's stash size (slots cover both).
	sendByRank [][]*fbTransfer
	recvByRank [][]*fbTransfer
	inboxLen   []int
}

// buildFBPlan computes the feedback plan of one nest.
func buildFBPlan(cfg *nest.Domain, grid vtopo.Grid, c *nest.Domain, cgrid vtopo.Grid, cworld []int) *fbPlan {
	byPair := map[[2]int]*fbTransfer{}
	var order [][2]int
	// Child tile rectangles by nest-local rank.
	tiles := make([][4]int, cgrid.Size())
	for r := range tiles {
		x0, y0, w, h := solver.Decompose(c.NX, c.NY, cgrid, r)
		tiles[r] = [4]int{x0, y0, w, h}
	}
	// entryRef remembers where the entry of (parent cell, child world
	// rank) landed, for resolving the accumulation recipe below.
	type entryKey struct{ px, py, src int }
	type entryLoc struct {
		pair [2]int
		ei   int
	}
	entryRef := map[entryKey]entryLoc{}
	for py := c.OffY; py < c.OffY+c.FootprintY(); py++ {
		for px := c.OffX; px < c.OffX+c.FootprintX(); px++ {
			dst := ownerOf(cfg.NX, cfg.NY, grid, px, py)
			// Child-cell block of this parent cell.
			bx0 := (px - c.OffX) * c.Ratio
			by0 := (py - c.OffY) * c.Ratio
			bx1 := min(bx0+c.Ratio, c.NX)
			by1 := min(by0+c.Ratio, c.NY)
			for r, tl := range tiles {
				ix0 := max(bx0, tl[0])
				iy0 := max(by0, tl[1])
				ix1 := min(bx1, tl[0]+tl[2])
				iy1 := min(by1, tl[1]+tl[3])
				if ix0 >= ix1 || iy0 >= iy1 {
					continue
				}
				src := cworld[r]
				key := [2]int{src, dst}
				tr, ok := byPair[key]
				if !ok {
					tr = &fbTransfer{src: src, dst: dst}
					byPair[key] = tr
					order = append(order, key)
				}
				entryRef[entryKey{px, py, src}] = entryLoc{pair: key, ei: len(tr.entries)}
				tr.entries = append(tr.entries, fbEntry{
					pcell: [2]int{px, py},
					x0:    ix0, y0: iy0, w: ix1 - ix0, h: iy1 - iy0,
				})
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	nranks := grid.Size()
	plan := &fbPlan{
		transfers:  make([]*fbTransfer, len(order)),
		sendByRank: make([][]*fbTransfer, nranks),
		recvByRank: make([][]*fbTransfer, nranks),
		inboxLen:   make([]int, nranks),
	}
	for i, k := range order {
		tr := byPair[k]
		tr.slot = plan.inboxLen[tr.dst]
		plan.inboxLen[tr.dst]++
		plan.sendByRank[tr.src] = append(plan.sendByRank[tr.src], tr)
		if tr.dst != tr.src {
			plan.recvByRank[tr.dst] = append(plan.recvByRank[tr.dst], tr)
		}
		off := 0
		for ei := range tr.entries {
			tr.entries[ei].off = off
			off += 3 * tr.entries[ei].w * tr.entries[ei].h
		}
		tr.floats = off
		plan.transfers[i] = tr
	}

	// Accumulation recipe per owning parent rank: each block's cells in
	// child-global row-major order, regardless of how the nest is
	// decomposed. One pass over the footprint fills every rank's list.
	plan.ownedByRank = make([][]fbOwnedCell, grid.Size())
	origins := make([][2]int, grid.Size())
	for r := range origins {
		x0, y0, _, _ := solver.Decompose(cfg.NX, cfg.NY, grid, r)
		origins[r] = [2]int{x0, y0}
	}
	for py := c.OffY; py < c.OffY+c.FootprintY(); py++ {
		for px := c.OffX; px < c.OffX+c.FootprintX(); px++ {
			owner := ownerOf(cfg.NX, cfg.NY, grid, px, py)
			bx0 := (px - c.OffX) * c.Ratio
			by0 := (py - c.OffY) * c.Ratio
			bx1 := min(bx0+c.Ratio, c.NX)
			by1 := min(by0+c.Ratio, c.NY)
			srcs := make([]fbCellRef, 0, (bx1-bx0)*(by1-by0))
			for cy := by0; cy < by1; cy++ {
				for cx := bx0; cx < bx1; cx++ {
					src := cworld[ownerOf(c.NX, c.NY, cgrid, cx, cy)]
					loc := entryRef[entryKey{px, py, src}]
					tr := byPair[loc.pair]
					e := &tr.entries[loc.ei]
					off := e.off + 3*((cy-e.y0)*e.w+(cx-e.x0))
					srcs = append(srcs, fbCellRef{slot: int32(tr.slot), off: int32(off)})
				}
			}
			plan.ownedByRank[owner] = append(plan.ownedByRank[owner], fbOwnedCell{
				lx: px - origins[owner][0], ly: py - origins[owner][1],
				n:    float64((bx1 - bx0) * (by1 - by0)),
				srcs: srcs,
			})
		}
	}
	return plan
}

// exchangeFeedback averages each nest's solution back onto the parent
// cells it overlaps: child owners send their cells of each block, and
// the parent owner accumulates every block in canonical child-global
// row-major order before normalizing. The fast path reuses the plan
// cached on the nest context and pooled payload buffers; the reference
// path rebuilds the plan and allocates afresh at every call.
func exchangeFeedback(world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nc *nestCtx, cfg *nest.Domain) error {
	if nc.tracer.Recording() {
		sp := nc.tracer.Start(nc.span, "fb:"+nc.d.Name, telemetry.LayerPhase)
		defer sp.End()
	}
	tag := tagFeedback + nc.idx
	if reference.Load() {
		plan := buildFBPlan(cfg, grid, nc.d, nc.grid, nc.world)
		payloads := make([][]float64, plan.inboxLen[world.Rank()])
		return runFeedback(world, parent, nc, plan, payloads, tag, false)
	}
	return runFeedback(world, parent, nc, nc.fbPlan, nc.fbPayloads, tag, true)
}

// runFeedback executes one feedback exchange according to plan, using
// payloads as this rank's inbox stash (one slot per incoming transfer,
// including self-transfers) for the step's buffers.
func runFeedback(world *mpi.Comm, parent *solver.Tile, nc *nestCtx, plan *fbPlan, payloads [][]float64, tag int, pooled bool) error {
	me := world.Rank()
	t := nc.tile

	// Sends (self-transfers stash their payload directly).
	for _, tr := range plan.sendByRank[me] {
		var buf []float64
		if pooled {
			buf = world.AllocPayload(tr.floats)
		} else {
			buf = make([]float64, tr.floats)
		}
		k := 0
		for _, e := range tr.entries {
			for y := e.y0; y < e.y0+e.h; y++ {
				for x := e.x0; x < e.x0+e.w; x++ {
					buf[k], buf[k+1], buf[k+2] = t.Cell(x-t.X0, y-t.Y0)
					k += 3
				}
			}
		}
		if tr.dst == me {
			payloads[tr.slot] = buf
			continue
		}
		if pooled {
			world.SendOwned(tr.dst, tag, buf)
		} else {
			world.Send(tr.dst, tag, buf)
		}
	}
	// Receive in deterministic pattern order.
	for _, tr := range plan.recvByRank[me] {
		data, err := world.Recv(tr.src, tag)
		if err != nil {
			return err
		}
		if len(data) != tr.floats {
			return fmt.Errorf("wrfsim: feedback payload %d floats, want %d", len(data), tr.floats)
		}
		payloads[tr.slot] = data
	}

	// Canonical accumulation into the owned parent cells.
	owned := plan.ownedByRank[me]
	for i := range owned {
		oc := &owned[i]
		var h, hu, hv float64
		for _, ref := range oc.srcs {
			p := payloads[ref.slot]
			h += p[ref.off]
			hu += p[ref.off+1]
			hv += p[ref.off+2]
		}
		parent.SetHaloCell(oc.lx, oc.ly, h/oc.n, hu/oc.n, hv/oc.n)
	}

	// Recycle the step's payloads.
	for i, b := range payloads {
		if b == nil {
			continue
		}
		if pooled {
			world.FreePayload(b)
		}
		payloads[i] = nil
	}
	return nil
}

// collectStates gathers the parent and all nest states at world rank 0.
func collectStates(world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nests []*nestCtx, out *Output) error {
	st, err := solver.Gather(world, parent)
	if err != nil {
		return err
	}
	if st != nil {
		out.Parent = st
	}
	for i, nc := range nests {
		tag := tagState + i
		if nc.tile != nil {
			sub, err := solver.Gather(nc.comm, nc.tile)
			if err != nil {
				return err
			}
			if sub != nil { // nest-comm root
				root := nc.world[0]
				if root == 0 {
					out.Nests[i] = sub
					continue
				}
				if world.Rank() == root {
					world.Send(0, tag, encodeState(sub))
				}
			}
		}
		if world.Rank() == 0 && nc.world[0] != 0 {
			data, err := world.Recv(nc.world[0], tag)
			if err != nil {
				return err
			}
			out.Nests[i] = decodeState(data)
		}
	}
	return nil
}

func encodeState(s *solver.State) []float64 {
	out := make([]float64, 0, 2+3*len(s.H))
	out = append(out, float64(s.NX), float64(s.NY))
	out = append(out, s.H...)
	out = append(out, s.HU...)
	out = append(out, s.HV...)
	return out
}

func decodeState(d []float64) *solver.State {
	nx, ny := int(d[0]), int(d[1])
	n := nx * ny
	s := solver.NewState(nx, ny)
	copy(s.H, d[2:2+n])
	copy(s.HU, d[2+n:2+2*n])
	copy(s.HV, d[2+2*n:2+3*n])
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
