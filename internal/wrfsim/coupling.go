package wrfsim

import (
	"fmt"
	"sort"

	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/solver"
	"nestwrf/internal/vtopo"
)

// floorDiv is integer division rounding toward negative infinity, used
// to map child halo coordinates (which can be -1) to parent cells.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ownerOf returns the rank (in the given process grid) owning global
// cell (gx, gy) of an nx x ny domain under the block decomposition of
// solver.Decompose.
func ownerOf(nx, ny int, grid vtopo.Grid, gx, gy int) int {
	return grid.Rank(ownerIdx(nx, grid.Px, gx), ownerIdx(ny, grid.Py, gy))
}

// ownerIdx inverts solver.Decompose's share function along one
// dimension.
func ownerIdx(n, parts, g int) int {
	base := n / parts
	rem := n % parts
	// The first rem parts have size base+1.
	bound := rem * (base + 1)
	if g < bound {
		return g / (base + 1)
	}
	if base == 0 {
		return rem // degenerate: more parts than cells
	}
	return rem + (g-bound)/base
}

// bcTransfer is one (src, dst) message of the boundary-condition
// exchange: parent cells read at src, halo cells written at dst.
type bcTransfer struct {
	src, dst int      // world ranks
	pcells   [][2]int // parent global cells, in message order
	hcells   [][2]int // child halo cells (child-global), in message order
}

// haloRing enumerates the child's halo-ring cells in canonical order.
func haloRing(c *nest.Domain) [][2]int {
	var out [][2]int
	for x := -1; x <= c.NX; x++ {
		out = append(out, [2]int{x, -1}, [2]int{x, c.NY})
	}
	for y := 0; y < c.NY; y++ {
		out = append(out, [2]int{-1, y}, [2]int{c.NX, y})
	}
	return out
}

// bcPattern computes the full deterministic BC exchange pattern of one
// nest: which world rank sends which parent cells to which world rank.
func bcPattern(cfg *nest.Domain, grid vtopo.Grid, nc *nestCtx) []*bcTransfer {
	c := nc.d
	byPair := map[[2]int]*bcTransfer{}
	var order [][2]int
	for _, hc := range haloRing(c) {
		hx, hy := hc[0], hc[1]
		// Owning child rank: the tile adjacent to the halo cell.
		ox := clampInt(hx, 0, c.NX-1)
		oy := clampInt(hy, 0, c.NY-1)
		childLocal := ownerOf(c.NX, c.NY, nc.grid, ox, oy)
		dst := nc.world[childLocal]
		// Parent cell supplying the value.
		pgx := clampInt(c.OffX+floorDiv(hx, c.Ratio), 0, cfg.NX-1)
		pgy := clampInt(c.OffY+floorDiv(hy, c.Ratio), 0, cfg.NY-1)
		src := ownerOf(cfg.NX, cfg.NY, grid, pgx, pgy)
		key := [2]int{src, dst}
		tr, ok := byPair[key]
		if !ok {
			tr = &bcTransfer{src: src, dst: dst}
			byPair[key] = tr
			order = append(order, key)
		}
		tr.pcells = append(tr.pcells, [2]int{pgx, pgy})
		tr.hcells = append(tr.hcells, [2]int{hx, hy})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	out := make([]*bcTransfer, len(order))
	for i, k := range order {
		out[i] = byPair[k]
	}
	return out
}

// exchangeBC moves parent boundary values to the nest's halo owners and
// stores them in nc.bc (cleared first). Every rank participates as a
// potential sender; only nest members receive.
func exchangeBC(p *mpi.Proc, world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nc *nestCtx, cfg *nest.Domain) error {
	me := world.Rank()
	pattern := bcPattern(cfg, grid, nc)
	tag := tagBC + nc.idx

	if nc.tile != nil {
		nc.bc = nc.bc[:0]
	}

	// Post sends (and handle self-transfers locally).
	for _, tr := range pattern {
		if tr.src == me {
			data := make([]float64, 0, 3*len(tr.pcells))
			for _, pc := range tr.pcells {
				h, hu, hv := parent.Cell(pc[0]-parent.X0, pc[1]-parent.Y0)
				data = append(data, h, hu, hv)
			}
			if tr.dst == me {
				storeBC(nc, tr, data)
				continue
			}
			world.Send(tr.dst, tag, data)
		}
	}
	// Receive in deterministic pattern order.
	for _, tr := range pattern {
		if tr.dst != me || tr.src == me {
			continue
		}
		data, err := world.Recv(tr.src, tag)
		if err != nil {
			return err
		}
		if len(data) != 3*len(tr.pcells) {
			return fmt.Errorf("wrfsim: BC payload %d for %d cells", len(data), len(tr.pcells))
		}
		storeBC(nc, tr, data)
	}
	return nil
}

// storeBC appends received boundary values as local halo cells of the
// receiving rank's nest tile.
func storeBC(nc *nestCtx, tr *bcTransfer, data []float64) {
	t := nc.tile
	for i, hc := range tr.hcells {
		nc.bc = append(nc.bc, bcCell{
			lx: hc[0] - t.X0,
			ly: hc[1] - t.Y0,
			h:  data[3*i],
			hu: data[3*i+1],
			hv: data[3*i+2],
		})
	}
}

// fbEntry is one parent cell's partial feedback from one child rank:
// the intersection of the child-cell block with that rank's tile.
type fbEntry struct {
	pcell  [2]int // parent global cell
	x0, y0 int    // child-global intersection origin
	w, h   int
}

// fbTransfer is one (src, dst) message of the feedback exchange.
type fbTransfer struct {
	src, dst int
	entries  []fbEntry
}

// fbPattern computes the deterministic feedback pattern of one nest.
func fbPattern(cfg *nest.Domain, grid vtopo.Grid, nc *nestCtx) []*fbTransfer {
	c := nc.d
	byPair := map[[2]int]*fbTransfer{}
	var order [][2]int
	// Child tile rectangles by nest-local rank.
	tiles := make([][4]int, nc.grid.Size())
	for r := range tiles {
		x0, y0, w, h := solver.Decompose(c.NX, c.NY, nc.grid, r)
		tiles[r] = [4]int{x0, y0, w, h}
	}
	for py := c.OffY; py < c.OffY+c.FootprintY(); py++ {
		for px := c.OffX; px < c.OffX+c.FootprintX(); px++ {
			dst := ownerOf(cfg.NX, cfg.NY, grid, px, py)
			// Child-cell block of this parent cell.
			bx0 := (px - c.OffX) * c.Ratio
			by0 := (py - c.OffY) * c.Ratio
			bx1 := min(bx0+c.Ratio, c.NX)
			by1 := min(by0+c.Ratio, c.NY)
			for r, tl := range tiles {
				ix0 := max(bx0, tl[0])
				iy0 := max(by0, tl[1])
				ix1 := min(bx1, tl[0]+tl[2])
				iy1 := min(by1, tl[1]+tl[3])
				if ix0 >= ix1 || iy0 >= iy1 {
					continue
				}
				src := nc.world[r]
				key := [2]int{src, dst}
				tr, ok := byPair[key]
				if !ok {
					tr = &fbTransfer{src: src, dst: dst}
					byPair[key] = tr
					order = append(order, key)
				}
				tr.entries = append(tr.entries, fbEntry{
					pcell: [2]int{px, py},
					x0:    ix0, y0: iy0, w: ix1 - ix0, h: iy1 - iy0,
				})
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	out := make([]*fbTransfer, len(order))
	for i, k := range order {
		out[i] = byPair[k]
	}
	return out
}

// exchangeFeedback averages each nest's solution back onto the parent
// cells it overlaps: child owners send partial sums, parent owners
// accumulate and normalize.
func exchangeFeedback(p *mpi.Proc, world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nc *nestCtx, cfg *nest.Domain) error {
	me := world.Rank()
	pattern := fbPattern(cfg, grid, nc)
	tag := tagFeedback + nc.idx

	// acc accumulates (sumH, sumHU, sumHV, count) per parent cell.
	type acc struct {
		h, hu, hv float64
		n         float64
	}
	sums := map[[2]int]*acc{}

	apply := func(tr *fbTransfer, data []float64) {
		for i, e := range tr.entries {
			a, ok := sums[e.pcell]
			if !ok {
				a = &acc{}
				sums[e.pcell] = a
			}
			a.h += data[4*i]
			a.hu += data[4*i+1]
			a.hv += data[4*i+2]
			a.n += data[4*i+3]
		}
	}

	for _, tr := range pattern {
		if tr.src == me {
			data := make([]float64, 0, 4*len(tr.entries))
			for _, e := range tr.entries {
				var sh, shu, shv float64
				for y := e.y0; y < e.y0+e.h; y++ {
					for x := e.x0; x < e.x0+e.w; x++ {
						h, hu, hv := nc.tile.Cell(x-nc.tile.X0, y-nc.tile.Y0)
						sh += h
						shu += hu
						shv += hv
					}
				}
				data = append(data, sh, shu, shv, float64(e.w*e.h))
			}
			if tr.dst == me {
				apply(tr, data)
				continue
			}
			world.Send(tr.dst, tag, data)
		}
	}
	for _, tr := range pattern {
		if tr.dst != me || tr.src == me {
			continue
		}
		data, err := world.Recv(tr.src, tag)
		if err != nil {
			return err
		}
		if len(data) != 4*len(tr.entries) {
			return fmt.Errorf("wrfsim: feedback payload %d for %d entries", len(data), len(tr.entries))
		}
		apply(tr, data)
	}

	// Write the averaged values into the owned parent cells.
	for pc, a := range sums {
		if a.n == 0 {
			continue
		}
		parent.SetHaloCell(pc[0]-parent.X0, pc[1]-parent.Y0, a.h/a.n, a.hu/a.n, a.hv/a.n)
	}
	return nil
}

// collectStates gathers the parent and all nest states at world rank 0.
func collectStates(world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile, nests []*nestCtx, out *Output) error {
	st, err := solver.Gather(world, parent)
	if err != nil {
		return err
	}
	if st != nil {
		out.Parent = st
	}
	for i, nc := range nests {
		tag := tagState + i
		if nc.tile != nil {
			sub, err := solver.Gather(nc.comm, nc.tile)
			if err != nil {
				return err
			}
			if sub != nil { // nest-comm root
				root := nc.world[0]
				if root == 0 {
					out.Nests[i] = sub
					continue
				}
				if world.Rank() == root {
					world.Send(0, tag, encodeState(sub))
				}
			}
		}
		if world.Rank() == 0 && nc.world[0] != 0 {
			data, err := world.Recv(nc.world[0], tag)
			if err != nil {
				return err
			}
			out.Nests[i] = decodeState(data)
		}
	}
	return nil
}

func encodeState(s *solver.State) []float64 {
	out := make([]float64, 0, 2+3*len(s.H))
	out = append(out, float64(s.NX), float64(s.NY))
	out = append(out, s.H...)
	out = append(out, s.HU...)
	out = append(out, s.HV...)
	return out
}

func decodeState(d []float64) *solver.State {
	nx, ny := int(d[0]), int(d[1])
	n := nx * ny
	s := solver.NewState(nx, ny)
	copy(s.H, d[2:2+n])
	copy(s.HU, d[2+n:2+2*n])
	copy(s.HV, d[2+2*n:2+3*n])
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
