package wrfsim

import (
	"sort"
	"sync"

	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/output"
	"nestwrf/internal/solver"
	"nestwrf/internal/vtopo"
)

// outputBytesPerPoint is the forecast volume per horizontal grid point
// (all fields and levels), matching the driver's I/O model.
const outputBytesPerPoint = 4500.0

// snapMu guards Output.Snapshots, which is appended to by the
// communicator roots of different domains (distinct goroutines).
var snapMu sync.Mutex

// writeOutputs performs one forecast-output event: every domain's
// fields are gathered to its communicator root with real messages, the
// modeled write cost is charged to every participating rank's clock
// (collective writes block all writers), and the root records the
// snapshot.
func writeOutputs(p *mpi.Proc, world *mpi.Comm, grid vtopo.Grid, parent *solver.Tile,
	nests []*nestCtx, cfg *nest.Domain, opt Options, step int, out *Output) error {
	// Parent file: all ranks write.
	st, err := solver.Gather(world, parent)
	if err != nil {
		return err
	}
	p.Compute(opt.IO.WriteTime(opt.IOMode, world.Size(), float64(cfg.Points())*outputBytesPerPoint))
	if st != nil {
		record(out, output.Snapshot{Domain: cfg.Name, Step: step, State: st})
	}

	// Sibling files: each nest's communicator writes its own file. In
	// the concurrent strategy the writer groups are disjoint partitions,
	// so the writes overlap in virtual time; in the sequential strategy
	// every rank participates in every file.
	for _, nc := range nests {
		if nc.tile == nil {
			continue
		}
		sub, err := solver.Gather(nc.comm, nc.tile)
		if err != nil {
			return err
		}
		p.Compute(opt.IO.WriteTime(opt.IOMode, nc.comm.Size(), float64(nc.d.Points())*outputBytesPerPoint))
		if sub != nil {
			record(out, output.Snapshot{Domain: nc.d.Name, Step: step, State: sub})
		}
	}
	return nil
}

func record(out *Output, s output.Snapshot) {
	snapMu.Lock()
	out.Snapshots = append(out.Snapshots, s)
	snapMu.Unlock()
}

// sortSnapshots orders the records deterministically by (step, domain).
func sortSnapshots(snaps []output.Snapshot) {
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].Step != snaps[j].Step {
			return snaps[i].Step < snaps[j].Step
		}
		return snaps[i].Domain < snaps[j].Domain
	})
}
