// Package wrfsim is the functional weather-simulation substrate: a
// miniature WRF that integrates a parent shallow-water domain with
// nested sibling domains on the mpi runtime, under either the default
// sequential strategy (every nest on all ranks, one after another) or
// the paper's concurrent strategy (siblings simultaneously on disjoint
// processor partitions via communicator splits).
//
// Both strategies compute the same physics: each parent step, every
// nest receives boundary conditions interpolated from the parent
// (moved with real point-to-point messages between the owning ranks),
// advances Ratio sub-steps, and feeds its solution back to the parent
// cells it overlaps. Integration tests verify that the two strategies
// produce matching fields while the concurrent strategy finishes in
// less virtual time — the paper's claim, demonstrated end to end.
package wrfsim

import (
	"errors"
	"fmt"
	"strconv"

	"nestwrf/internal/alloc"
	"nestwrf/internal/iosim"
	"nestwrf/internal/machine"
	"nestwrf/internal/metrics"
	"nestwrf/internal/mpi"
	"nestwrf/internal/nest"
	"nestwrf/internal/output"
	"nestwrf/internal/solver"
	"nestwrf/internal/telemetry"
	"nestwrf/internal/vtopo"
)

// Strategy selects sequential or concurrent sibling execution.
type Strategy int

// Strategies.
const (
	Sequential Strategy = iota
	Concurrent
)

// Options configure a functional run.
type Options struct {
	Ranks    int
	Steps    int // parent steps
	Strategy Strategy
	// TM is the virtual transfer-time model (default: 1us + 1ns/byte).
	TM mpi.TimeModel
	// PointCost is the virtual compute time per grid point per sub-step.
	PointCost float64
	// Weights sets the concurrent partition proportions (default:
	// sibling point counts).
	Weights []float64
	// Solver parameters (default solver.DefaultParams, with the nest
	// time step scaled by 1/Ratio).
	Params solver.Params
	// OutputEverySteps makes every domain write a forecast record every
	// N parent steps: the fields are gathered to each domain
	// communicator's root with real messages and the write cost is
	// charged to the writer's clock via the IO model. Zero disables
	// output.
	OutputEverySteps int
	// IO is the write-cost model (defaults to a PnetCDF-like profile).
	IO iosim.Params
	// IOMode selects collective or split writes.
	IOMode iosim.Mode
	// Tracer, when non-nil, records one driver-layer span for the run
	// (annotated with the per-phase wall-clock breakdown from the mpi
	// accounting) plus phase-layer coupling spans on rank 0. TraceParent
	// links the run span under a caller span; zero makes it a root. Nil
	// keeps the functional hot path allocation-identical to an
	// uninstrumented build.
	Tracer      *telemetry.Tracer
	TraceParent telemetry.SpanID
	// Metrics, when non-nil, records runtime gauges about the run into
	// the registry (currently the mpi payload-pool counters, as
	// mpi_payload_pool_*).
	Metrics *metrics.Registry
}

// Output is the result of a run.
type Output struct {
	Parent *solver.State
	Nests  []*solver.State
	// MaxClock is the virtual makespan (slowest rank's clock).
	MaxClock float64
	// AvgWait and MaxWait aggregate the per-rank MPI wait times.
	AvgWait, MaxWait float64
	// Phases is the per-phase breakdown of the run aggregated across
	// ranks (parent steps, per-nest sub-steps, coupling, output,
	// collection): where the virtual time went, and the message traffic
	// of each phase.
	Phases []mpi.PhaseTotal
	// Snapshots are the forecast records written during the run (in
	// write order), when OutputEverySteps is enabled.
	Snapshots []output.Snapshot
	// Pools is the run's final mpi payload-pool snapshot (hit rate,
	// retained buffers), for capacity diagnostics at high rank counts.
	Pools mpi.PoolStats
}

// Errors.
var (
	ErrTooDeep  = errors.New("wrfsim: functional mode supports one nesting level")
	ErrBadSteps = errors.New("wrfsim: steps must be positive")
)

// coupling tags (user space, distinct from solver halo tags).
const (
	tagBC       = 1000 // parent -> child boundary conditions (+child index)
	tagFeedback = 2000 // child -> parent feedback (+child index)
	tagState    = 3000 // final state shipping (+domain index)
)

// Run executes the functional simulation and gathers final states.
func Run(cfg *nest.Domain, opt Options) (out *Output, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Depth() > 1 {
		return nil, ErrTooDeep
	}
	if opt.Steps <= 0 {
		return nil, ErrBadSteps
	}
	if opt.TM == nil {
		opt.TM = mpi.AlphaBeta{Alpha: 1e-6, Beta: 1e-9}
	}
	if opt.PointCost == 0 {
		opt.PointCost = 1e-7
	}
	if opt.Params == (solver.Params{}) {
		opt.Params = solver.DefaultParams()
	}
	if opt.OutputEverySteps > 0 && opt.IO == (iosim.Params{}) {
		opt.IO = iosim.Params{
			BaseLatency:         5e-3,
			PerWriterOverhead:   3.5e-4,
			AggregateBandwidth:  2.0e9,
			PerProcessBandwidth: 8e6,
		}
	}

	var sp *telemetry.ActiveSpan
	if opt.Tracer.Recording() {
		sp = opt.Tracer.Start(opt.TraceParent, "wrfsim.run", telemetry.LayerDriver)
		sp.Annotate("ranks", strconv.Itoa(opt.Ranks))
		sp.Annotate("steps", strconv.Itoa(opt.Steps))
		sp.Annotate("strategy", map[Strategy]string{Sequential: "sequential", Concurrent: "concurrent"}[opt.Strategy])
		opt.TraceParent = sp.ID() // rank-0 coupling spans parent here
		defer func() {
			if err != nil {
				sp.Annotate("error", err.Error())
			} else if out != nil {
				// The honest per-phase breakdown: real wall-clock accrued
				// by the mpi phase accounting, aggregated across ranks.
				for _, ph := range out.Phases {
					sp.Annotate("wall:"+ph.Name, strconv.FormatFloat(ph.Sum.Wall, 'g', -1, 64))
				}
				sp.Annotate("virtual_makespan", strconv.FormatFloat(out.MaxClock, 'g', -1, 64))
			}
			sp.End()
		}()
	}

	grid, err := machine.GridFor(opt.Ranks)
	if err != nil {
		return nil, err
	}

	// Concurrent partitions (computed identically on every rank).
	var rects []alloc.Rect
	if opt.Strategy == Concurrent && len(cfg.Children) > 0 {
		weights := opt.Weights
		if weights == nil {
			weights = make([]float64, len(cfg.Children))
			for i, c := range cfg.Children {
				weights[i] = float64(c.Points())
			}
		}
		rects, err = alloc.Partition(weights, grid.Px, grid.Py)
		if err != nil {
			return nil, err
		}
	}

	// Coupling plans and nest process grids depend only on the domain
	// geometry and the decomposition, so they are built once here and
	// shared read-only by every rank — the reference path recomputes
	// them at every coupling step instead.
	plans := make([]*nestPlans, len(cfg.Children))
	// Sequential nests all share one identity rank list and one
	// identity local-rank index — O(ranks) total, not per nest.
	var idWorld []int
	var idLocal []int32
	if opt.Strategy == Sequential && len(cfg.Children) > 0 {
		idWorld = make([]int, grid.Size())
		idLocal = make([]int32, grid.Size())
		for r := range idWorld {
			idWorld[r] = r
			idLocal[r] = int32(r)
		}
	}
	for i, c := range cfg.Children {
		np := &nestPlans{phase: "nest:" + c.Name}
		switch opt.Strategy {
		case Sequential:
			np.grid = grid
			np.world = idWorld
			np.localOf = idLocal
		case Concurrent:
			sg, err := vtopo.NewSubgrid(grid, rects[i])
			if err != nil {
				return nil, err
			}
			np.grid = sg.Grid()
			np.world = sg.Ranks()
			np.localOf = make([]int32, opt.Ranks)
			for r := range np.localOf {
				np.localOf[r] = -1
			}
			for l, wr := range np.world {
				np.localOf[wr] = int32(l)
			}
		}
		np.bc = newBCPlan(bcPattern(cfg, grid, c, np.grid, np.world), opt.Ranks)
		np.fb = buildFBPlan(cfg, grid, c, np.grid, np.world)
		plans[i] = np
	}

	out = &Output{Nests: make([]*solver.State, len(cfg.Children))}
	procs, err := mpi.Run(opt.Ranks, opt.TM, func(p *mpi.Proc) error {
		return rankMain(p, cfg, grid, plans, opt, out)
	})
	if err != nil {
		return nil, err
	}
	sortSnapshots(out.Snapshots)
	out.Phases = mpi.AggregatePhases(procs)
	out.Pools = procs[0].PoolStats()
	if opt.Metrics != nil {
		recordPoolMetrics(opt.Metrics, out.Pools)
	}
	var sum float64
	for _, p := range procs {
		if p.Clock() > out.MaxClock {
			out.MaxClock = p.Clock()
		}
		if p.WaitTime() > out.MaxWait {
			out.MaxWait = p.WaitTime()
		}
		sum += p.WaitTime()
	}
	out.AvgWait = sum / float64(len(procs))
	return out, nil
}

// nestPlans is the shared precomputed per-nest state: the nest's
// process grid and the coupling plans, identical on every rank and
// read-only during the run.
type nestPlans struct {
	grid    vtopo.Grid // the nest's process grid
	world   []int      // world rank of each nest-local rank
	localOf []int32    // world rank -> nest-local rank, -1 if not a member
	phase   string     // phase label ("nest:" + name)
	bc      *bcPlan
	fb      *fbPlan
}

// nestCtx holds one rank's view of one nested domain.
type nestCtx struct {
	d     *nest.Domain
	idx   int
	comm  *mpi.Comm    // sub-communicator (nil if this rank not a member)
	grid  vtopo.Grid   // the nest's process grid
	world []int        // world rank of each nest-local rank
	tile  *solver.Tile // nil if not a member
	bc    []bcCell     // parent-interpolated boundary values (members only)
	phase string       // precomputed phase label ("nest:" + name)

	// Coupling plans shared across ranks (see nestPlans), plus this
	// rank's per-step feedback inbox stash (sized by the rank's own
	// incoming-transfer count, so total stash memory is O(world), not
	// O(world²)).
	bcPlan     *bcPlan
	fbPlan     *fbPlan
	fbPayloads [][]float64

	// tracer/span, when set (rank 0 of a traced run only), wrap each
	// coupling exchange in a phase-layer span under the run span. The
	// zero value keeps the coupled step allocation-free.
	tracer *telemetry.Tracer
	span   telemetry.SpanID
}

// bcCell is one child halo cell awaiting a parent value.
type bcCell struct {
	lx, ly    int // local halo coordinates in the child tile
	h, hu, hv float64
}

func rankMain(p *mpi.Proc, cfg *nest.Domain, grid vtopo.Grid, plans []*nestPlans, opt Options, out *Output) error {
	world := p.World()
	me := world.Rank()
	p.BeginPhase("init")

	// Parent tile on the full grid.
	pinit := solver.GaussianHill(cfg.NX, cfg.NY, float64(cfg.NX)/2, float64(cfg.NY)/2, 0.4, float64(cfg.NX)/8)
	px0, py0, pw, ph := solver.Decompose(cfg.NX, cfg.NY, grid, me)
	parent, err := solver.NewTile(cfg.NX, cfg.NY, px0, py0, pw, ph, opt.Params)
	if err != nil {
		return err
	}
	parent.Fill(pinit)

	// Build per-nest contexts from the shared plans (every rank holds
	// one per nest, members or not: non-members still source boundary
	// conditions from their parent cells and sink feedback into them).
	nests := make([]*nestCtx, len(cfg.Children))
	for i, c := range cfg.Children {
		np := plans[i]
		nc := &nestCtx{
			d: c, idx: i,
			grid: np.grid, world: np.world, phase: np.phase,
			bcPlan: np.bc, fbPlan: np.fb,
			fbPayloads: make([][]float64, np.fb.inboxLen[me]),
		}
		if me == 0 && opt.Tracer.Recording() {
			// Only rank 0 emits coupling spans: one tracing rank keeps
			// the export readable and the buffer O(steps), while the
			// other ranks run the untraced (zero-alloc) path.
			nc.tracer = opt.Tracer
			nc.span = opt.TraceParent
		}
		// Local rank within the nest, if a member.
		local := int(np.localOf[me])
		switch opt.Strategy {
		case Sequential:
			nc.comm = world
		case Concurrent:
			color := -1
			if local >= 0 {
				color = i
			}
			sub, err := world.Split(color, me)
			if err != nil {
				return err
			}
			if color < 0 {
				// Not a member of this nest; still participates in coupling.
				nests[i] = nc
				continue
			}
			nc.comm = sub
		}
		// Member: build the nest tile.
		if local != nc.comm.Rank() {
			return fmt.Errorf("wrfsim: local rank mismatch: %d vs %d", local, nc.comm.Rank())
		}
		nestParams := opt.Params
		nestParams.Dt = opt.Params.Dt / float64(c.Ratio)
		nestParams.Dx = opt.Params.Dx / float64(c.Ratio)
		x0, y0, w, h := solver.Decompose(c.NX, c.NY, nc.grid, local)
		tile, err := solver.NewTile(c.NX, c.NY, x0, y0, w, h, nestParams)
		if err != nil {
			return err
		}
		// The nest starts from the parent field sampled at its footprint.
		tile.Fill(func(gx, gy int) (float64, float64, float64) {
			return pinit(c.OffX+gx/c.Ratio, c.OffY+gy/c.Ratio)
		})
		nc.tile = tile
		nests[i] = nc
	}

	// Main loop.
	for step := 0; step < opt.Steps; step++ {
		// Parent step.
		p.BeginPhase("parent")
		if err := parent.Exchange(world, grid); err != nil {
			return err
		}
		p.Compute(opt.PointCost * float64(pw*ph))
		parent.Step()

		// Boundary conditions for every nest, moved parent-owner ->
		// child-owner.
		p.BeginPhase("coupling")
		for _, nc := range nests {
			if err := exchangeBC(world, grid, parent, nc, cfg); err != nil {
				return err
			}
		}

		// Nest sub-steps.
		switch opt.Strategy {
		case Sequential:
			for _, nc := range nests {
				if err := nestSubsteps(p, nc, opt); err != nil {
					return err
				}
			}
		case Concurrent:
			for _, nc := range nests {
				if nc.tile != nil {
					if err := nestSubsteps(p, nc, opt); err != nil {
						return err
					}
				}
			}
		}

		// Feedback child -> parent.
		p.BeginPhase("coupling")
		for _, nc := range nests {
			if err := exchangeFeedback(world, grid, parent, nc, cfg); err != nil {
				return err
			}
		}

		// Forecast output.
		if opt.OutputEverySteps > 0 && (step+1)%opt.OutputEverySteps == 0 {
			p.BeginPhase("output")
			if err := writeOutputs(p, world, grid, parent, nests, cfg, opt, step+1, out); err != nil {
				return err
			}
		}
	}

	// Gather final states at world rank 0.
	p.BeginPhase("collect")
	if err := collectStates(world, grid, parent, nests, out); err != nil {
		return err
	}
	return nil
}

// recordPoolMetrics publishes a run's payload-pool snapshot as gauges.
func recordPoolMetrics(reg *metrics.Registry, ps mpi.PoolStats) {
	reg.Gauge("mpi_payload_pool_hits").Set(float64(ps.Hits))
	reg.Gauge("mpi_payload_pool_misses").Set(float64(ps.Misses))
	reg.Gauge("mpi_payload_pool_frees").Set(float64(ps.Frees))
	reg.Gauge("mpi_payload_pool_drops").Set(float64(ps.Drops))
	reg.Gauge("mpi_payload_pool_buffers").Set(float64(ps.Buffers))
	reg.Gauge("mpi_payload_pool_bytes").Set(float64(ps.Bytes))
	reg.Gauge("mpi_payload_pool_hit_rate").Set(ps.HitRate())
}

// initialParentValue evaluates the parent's initial condition (used to
// seed nests before the first parent data arrives).
func initialParentValue(cfg *nest.Domain, gx, gy int) (float64, float64, float64) {
	f := solver.GaussianHill(cfg.NX, cfg.NY, float64(cfg.NX)/2, float64(cfg.NY)/2, 0.4, float64(cfg.NX)/8)
	return f(gx, gy)
}

// nestSubsteps advances one nest Ratio sub-steps with its stored
// boundary conditions applied after every halo exchange.
func nestSubsteps(p *mpi.Proc, nc *nestCtx, opt Options) error {
	p.BeginPhase(nc.phase)
	t := nc.tile
	cells := float64(t.W * t.H)
	for s := 0; s < nc.d.Ratio; s++ {
		if err := t.Exchange(nc.comm, nc.grid); err != nil {
			return err
		}
		for _, b := range nc.bc {
			t.SetHaloCell(b.lx, b.ly, b.h, b.hu, b.hv)
		}
		p.Compute(opt.PointCost * cells)
		t.Step()
	}
	return nil
}
